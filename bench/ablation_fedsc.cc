// Ablations of Fed-SC's design choices (Section IV), on one fixed synthetic
// federation:
//   (a) samples per local cluster — the paper uploads exactly one; more
//       samples trade communication for central-clustering robustness;
//   (b) basis dimension d_t — auto numerical rank vs fixed small d_t
//       (the paper's real-world setting is d_t = 1);
//   (c) r^(z) estimation — eigengap heuristic vs fixed upper bound;
//   (d) server algorithm — SSC vs TSC.
// Reported: accuracy, pooled sample count, uplink kilobits, total time.

#include <cstdio>

#include "bench_util.h"
#include "core/fedsc.h"
#include "data/synthetic.h"
#include "fed/partition.h"
#include "metrics/clustering_metrics.h"

namespace fedsc {
namespace {

void Run(bool csv) {
  SyntheticOptions synth;
  synth.ambient_dim = 20;
  synth.subspace_dim = 4;
  synth.num_subspaces = 10;
  synth.points_per_subspace = 12 * 7;  // ~12 holder devices x 7 points
  synth.noise_stddev = 0.02;           // mild noise to make d_t matter
  synth.seed = 0xAB1A'7E0ULL;
  auto data = GenerateUnionOfSubspaces(synth);
  if (!data.ok()) return;

  PartitionOptions partition;
  partition.num_devices = 60;
  partition.clusters_per_device = 2;
  partition.seed = 0xAB1A'7E1ULL;
  auto fed = PartitionAcrossDevices(*data, partition);
  if (!fed.ok()) return;

  bench::Table table({"variant", "ACC a%", "samples", "uplink kb", "T (s)"});
  auto run_variant = [&](const char* name, const FedScOptions& options) {
    auto result = RunFedSc(*fed, synth.num_subspaces, options);
    if (result.ok()) {
      table.AddRow({name,
                    bench::Fmt(ClusteringAccuracy(data->labels,
                                                  result->global_labels)),
                    bench::Fmt(result->total_samples),
                    bench::Fmt(static_cast<double>(result->comm.uplink_bits) /
                                   1000.0,
                               1),
                    bench::Fmt(result->seconds, 3)});
    } else {
      table.AddRow({name, "-", "-", "-", "-"});
    }
  };

  FedScOptions base;
  run_variant("baseline (1 sample, auto d_t, eigengap, SSC server)", base);

  for (int64_t samples : {2, 4}) {
    FedScOptions options = base;
    options.samples_per_cluster = samples;
    const std::string name =
        std::to_string(samples) + " samples per cluster";
    run_variant(name.c_str(), options);
  }

  for (int64_t dim : {1, 2}) {
    FedScOptions options = base;
    options.sample_dim = dim;
    const std::string name = "fixed d_t = " + std::to_string(dim);
    run_variant(name.c_str(), options);
  }

  {
    FedScOptions options = base;
    options.use_eigengap = false;
    options.max_local_clusters = 2;
    run_variant("fixed r^(z) = L' (no eigengap)", options);
  }
  {
    FedScOptions options = base;
    options.rank_rel_tol = 1e-6;
    run_variant("permissive rank cutoff (1e-6)", options);
  }
  {
    FedScOptions options = base;
    options.central_method = ScMethod::kTsc;
    run_variant("TSC server", options);
  }
  for (int bits : {8, 4}) {
    FedScOptions options = base;
    options.channel.quantize = true;
    options.channel.bits_per_value = bits;
    const std::string name =
        "uplink quantized to " + std::to_string(bits) + " bits";
    run_variant(name.c_str(), options);
  }

  std::printf("Ablation — Fed-SC design choices (Z=60, L=10, L'=2, "
              "noise 0.02)\n");
  table.Print(csv);
}

}  // namespace
}  // namespace fedsc

int main(int argc, char** argv) {
  fedsc::bench::Observability observability(argc, argv);
  fedsc::Run(fedsc::bench::HasFlag(argc, argv, "--csv"));
  return 0;
}
