// Shared helpers for the experiment-reproduction benches: aligned table
// printing (the paper's rows/series) with optional CSV emission via --csv.

#ifndef FEDSC_BENCH_BENCH_UTIL_H_
#define FEDSC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace fedsc::bench {

inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

// Accumulates rows of strings and prints them as an aligned text table or as
// CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print(bool csv) const {
    if (csv) {
      PrintDelimited(",");
      return;
    }
    std::vector<size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);

    PrintAligned(header_, widths);
    std::string rule;
    for (size_t i = 0; i < widths.size(); ++i) {
      rule += std::string(widths[i], '-');
      if (i + 1 < widths.size()) rule += "-+-";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) PrintAligned(row, widths);
  }

 private:
  void PrintAligned(const std::vector<std::string>& row,
                    const std::vector<size_t>& widths) const {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      std::printf("%-*s", static_cast<int>(widths[i]), cell.c_str());
      if (i + 1 < widths.size()) std::printf(" | ");
    }
    std::printf("\n");
  }

  void PrintDelimited(const char* sep) const {
    auto line = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size(); ++i) {
        std::printf("%s%s", i == 0 ? "" : sep, row[i].c_str());
      }
      std::printf("\n");
    };
    line(header_);
    for (const auto& row : rows_) line(row);
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double value, int decimals = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

inline std::string Fmt(int64_t value) { return std::to_string(value); }

}  // namespace fedsc::bench

#endif  // FEDSC_BENCH_BENCH_UTIL_H_
