// Shared helpers for the experiment-reproduction benches: aligned table
// printing (the paper's rows/series) with optional CSV emission via --csv,
// and opt-in observability (--trace-out= / --metrics-out= / --report-out=)
// shared by every bench through the Observability guard.

#ifndef FEDSC_BENCH_BENCH_UTIL_H_
#define FEDSC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/journal.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/report.h"

namespace fedsc::bench {

inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

// Declared at the top of a bench's main(), this turns tracing/metrics on
// when --trace-out=PATH / --metrics-out=PATH were passed and writes the
// outputs when the bench finishes. The metrics file embeds the registry
// snapshot under the bench's name:
//
//   {"bench": "fig4_devices", "metrics": {...}}
//
// --report-out=PATH turns all three surfaces on (trace, metrics, journal)
// and writes a full RunReport with has_run = false: the bench drives many
// RunFedSc invocations, so the report carries the aggregate journal,
// span/roofline profile, and metrics rather than any single run's summary.
//
// Without any flag the guard does nothing and the instrumented kernels
// stay on their single-atomic-load disabled path.
class Observability {
 public:
  Observability(int argc, char** argv) {
    if (argc > 0) {
      const char* slash = std::strrchr(argv[0], '/');
      name_ = slash == nullptr ? argv[0] : slash + 1;
    }
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
        metrics_path_ = arg + 14;
      } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
        trace_path_ = arg + 12;
      } else if (std::strncmp(arg, "--report-out=", 13) == 0) {
        report_path_ = arg + 13;
      }
    }
    if (!metrics_path_.empty() || !report_path_.empty()) EnableMetrics(true);
    if (!trace_path_.empty() || !report_path_.empty()) EnableTracing(true);
    if (!report_path_.empty()) EnableJournal(true);
  }

  ~Observability() { Finish(); }
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  // Idempotent; the destructor calls it for benches that just fall off the
  // end of main().
  void Finish() {
    if (finished_) return;
    finished_ = true;
    if (!metrics_path_.empty()) {
      std::ofstream out(metrics_path_);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", metrics_path_.c_str());
      } else {
        out << "{\"bench\":\"" << name_ << "\",\"metrics\":"
            << MetricsJsonString() << "}\n";
        std::fprintf(stderr, "wrote metrics to %s\n", metrics_path_.c_str());
      }
    }
    if (!trace_path_.empty()) {
      const Status written = WriteChromeTraceFile(trace_path_);
      if (!written.ok()) {
        std::fprintf(stderr, "writing trace failed: %s\n",
                     written.ToString().c_str());
      } else {
        std::fprintf(stderr, "wrote trace to %s\n", trace_path_.c_str());
      }
    }
    if (!report_path_.empty()) {
      const Status well_formed = CheckTraceWellFormed();
      if (!well_formed.ok()) {
        std::fprintf(stderr, "trace is malformed; refusing to write %s: %s\n",
                     report_path_.c_str(), well_formed.ToString().c_str());
        return;
      }
      const RunReport report =
          BuildRunReport(/*seed=*/0, /*fault_seed=*/0, /*num_threads=*/0);
      const Status written = WriteRunReportJsonFile(report, report_path_);
      if (!written.ok()) {
        std::fprintf(stderr, "writing report failed: %s\n",
                     written.ToString().c_str());
      } else {
        std::fprintf(stderr, "wrote run report to %s\n",
                     report_path_.c_str());
      }
    }
  }

 private:
  std::string name_ = "bench";
  std::string metrics_path_;
  std::string trace_path_;
  std::string report_path_;
  bool finished_ = false;
};

// Accumulates rows of strings and prints them as an aligned text table or as
// CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print(bool csv) const {
    if (csv) {
      PrintDelimited(",");
      return;
    }
    std::vector<size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);

    PrintAligned(header_, widths);
    std::string rule;
    for (size_t i = 0; i < widths.size(); ++i) {
      rule += std::string(widths[i], '-');
      if (i + 1 < widths.size()) rule += "-+-";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) PrintAligned(row, widths);
  }

 private:
  void PrintAligned(const std::vector<std::string>& row,
                    const std::vector<size_t>& widths) const {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      std::printf("%-*s", static_cast<int>(widths[i]), cell.c_str());
      if (i + 1 < widths.size()) std::printf(" | ");
    }
    std::printf("\n");
  }

  void PrintDelimited(const char* sep) const {
    auto line = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size(); ++i) {
        std::printf("%s%s", i == 0 ? "" : sep, row[i].c_str());
      }
      std::printf("\n");
    };
    line(header_);
    for (const auto& row : rows_) line(row);
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double value, int decimals = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

inline std::string Fmt(int64_t value) { return std::to_string(value); }

}  // namespace fedsc::bench

#endif  // FEDSC_BENCH_BENCH_UTIL_H_
