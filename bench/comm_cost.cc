// Communication-cost accounting (Section IV-E): measured uplink/downlink
// bits of Fed-SC and k-FED as functions of Z, against the paper's analytic
// formulas — uplink n*q*sum_z r^(z) bits, downlink sum_z r^(z) * log2(L)
// bits, one round total. Also reports the 8-bit quantized uplink.
//
// The second table is the accuracy-vs-bits frontier over the serialized
// uplink codecs (fed/codec.h) at D=1024, subspace dim m=4: raw f64/f32,
// uniform quantization at 2/4/8/16 bits, and subspace-aware basis+coeffs
// compression. Wire bytes are the true serialized message sizes
// (CommStats::uplink_wire_bytes), headers and CRCs included. With
// --json-out=PATH the frontier is also written as JSON for
// scripts/bench_baseline.sh, which folds it into BENCH_linalg.json where
// scripts/check_bench_json.py enforces the >= 2x basis reduction floor.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/fedsc.h"
#include "data/synthetic.h"
#include "fed/codec.h"
#include "fed/kfed.h"
#include "fed/partition.h"
#include "metrics/clustering_metrics.h"

namespace fedsc {
namespace {

constexpr int64_t kAmbientDim = 20;
constexpr int64_t kSubspaceDim = 4;
constexpr int64_t kNumSubspaces = 10;
constexpr int64_t kLPrime = 2;

void Run(bool csv) {
  bench::Table table({"Z", "method", "ACC a%", "uplink kb", "downlink kb",
                      "rounds", "analytic uplink kb"});
  for (int64_t num_devices : {25, 50, 100, 200}) {
    const int64_t holders =
        std::max<int64_t>(1, num_devices * kLPrime / kNumSubspaces);
    SyntheticOptions synth;
    synth.ambient_dim = kAmbientDim;
    synth.subspace_dim = kSubspaceDim;
    synth.num_subspaces = kNumSubspaces;
    synth.points_per_subspace = holders * 8;
    synth.seed = 0xC057'0000ULL + static_cast<uint64_t>(num_devices);
    auto data = GenerateUnionOfSubspaces(synth);
    if (!data.ok()) continue;
    PartitionOptions partition;
    partition.num_devices = num_devices;
    partition.clusters_per_device = kLPrime;
    partition.seed = 0xC057'1111ULL + static_cast<uint64_t>(num_devices);
    auto fed = PartitionAcrossDevices(*data, partition);
    if (!fed.ok()) continue;

    auto add = [&](const char* method, double acc, const CommStats& comm,
                   double analytic_kb) {
      table.AddRow({bench::Fmt(num_devices), method, bench::Fmt(acc),
                    bench::Fmt(static_cast<double>(comm.uplink_bits) / 1000.0,
                               1),
                    bench::Fmt(comm.downlink_bits / 1000.0, 2),
                    bench::Fmt(static_cast<int64_t>(comm.rounds)),
                    analytic_kb > 0 ? bench::Fmt(analytic_kb, 1)
                                    : std::string("-")});
    };

    {
      FedScOptions options;
      auto result = RunFedSc(*fed, kNumSubspaces, options);
      if (result.ok()) {
        // Section IV-E: n * q * sum_z r^(z).
        const double analytic_kb =
            static_cast<double>(kAmbientDim) * 64.0 *
            static_cast<double>(result->total_samples) / 1000.0;
        add("Fed-SC (SSC)",
            ClusteringAccuracy(data->labels, result->global_labels),
            result->comm, analytic_kb);
      }
    }
    {
      FedScOptions options;
      options.channel.quantize = true;
      options.channel.bits_per_value = 8;
      auto result = RunFedSc(*fed, kNumSubspaces, options);
      if (result.ok()) {
        add("Fed-SC (SSC, 8-bit)",
            ClusteringAccuracy(data->labels, result->global_labels),
            result->comm, 0.0);
      }
    }
    {
      KFedOptions options;
      options.local_k = kLPrime;
      auto result = RunKFed(*fed, kNumSubspaces, options);
      if (result.ok()) {
        add("k-FED", ClusteringAccuracy(data->labels, result->global_labels),
            result->comm, 0.0);
      }
    }
  }
  std::printf("Communication cost — Section IV-E accounting (n=%ld, L=%ld, "
              "L'=%ld)\n",
              static_cast<long>(kAmbientDim),
              static_cast<long>(kNumSubspaces), static_cast<long>(kLPrime));
  table.Print(csv);
}

// One codec point on the accuracy-vs-bits frontier.
struct FrontierPoint {
  std::string key;      // JSON key, e.g. "quant_8"
  std::string label;    // table label, e.g. "quant 8-bit"
  double acc = 0.0;     // ACC a% in [0, 100]
  int64_t wire_bytes = 0;
  double reduction = 0.0;  // raw-f64 bytes / this codec's bytes
};

// Accuracy-vs-bits frontier at D=1024, subspace dim m=4. Devices upload
// samples_per_cluster=12 samples per local cluster from its estimated
// (rank-4) subspace, so each upload is a tall 1024 x 24 matrix of rank <= 8
// — the m > 1 regime where kBasisCoeffs pays: a D x k basis plus k x S
// coefficients instead of D x S raw columns.
std::vector<FrontierPoint> RunFrontier(bool csv) {
  constexpr int64_t kD = 1024;
  constexpr int64_t kM = 4;  // generating subspace dimension
  constexpr int64_t kL = 5;
  constexpr int64_t kDevices = 10;

  SyntheticOptions synth;
  synth.ambient_dim = kD;
  synth.subspace_dim = kM;
  synth.num_subspaces = kL;
  synth.points_per_subspace = 32;
  synth.seed = 0xC057'F207ULL;
  auto data = GenerateUnionOfSubspaces(synth);
  if (!data.ok()) return {};
  PartitionOptions partition;
  partition.num_devices = kDevices;
  partition.clusters_per_device = kLPrime;
  partition.seed = 0xC057'F208ULL;
  auto fed = PartitionAcrossDevices(*data, partition);
  if (!fed.ok()) return {};

  auto base_options = [] {
    FedScOptions options;
    options.samples_per_cluster = 12;
    return options;
  };

  struct Config {
    std::string key;
    std::string label;
    CodecOptions codec;
  };
  std::vector<Config> configs;
  configs.push_back({"raw_f64", "raw f64", CodecOptions{}});
  {
    CodecOptions f32;
    f32.raw_f32 = true;
    configs.push_back({"raw_f32", "raw f32", f32});
  }
  for (int bits : {16, 8, 4, 2}) {
    CodecOptions quant;
    quant.mode = CodecMode::kUniformQuant;
    quant.quant_bits = bits;
    configs.push_back({"quant_" + std::to_string(bits),
                       "quant " + std::to_string(bits) + "-bit", quant});
  }
  {
    CodecOptions basis;
    basis.mode = CodecMode::kBasisCoeffs;
    configs.push_back({"basis", "basis+coeffs", basis});
  }

  std::vector<FrontierPoint> points;
  for (const Config& config : configs) {
    FedScOptions options = base_options();
    options.channel.codec = config.codec;
    auto result = RunFedSc(*fed, kL, options);
    if (!result.ok()) {
      std::fprintf(stderr, "frontier %s failed: %s\n", config.key.c_str(),
                   result.status().ToString().c_str());
      continue;
    }
    FrontierPoint point;
    point.key = config.key;
    point.label = config.label;
    point.acc = ClusteringAccuracy(data->labels, result->global_labels);
    point.wire_bytes = result->comm.uplink_wire_bytes;
    points.push_back(point);
  }
  if (!points.empty() && points.front().key == "raw_f64") {
    const double raw_bytes = static_cast<double>(points.front().wire_bytes);
    for (auto& point : points) {
      point.reduction =
          point.wire_bytes > 0
              ? raw_bytes / static_cast<double>(point.wire_bytes)
              : 0.0;
    }
  }

  bench::Table table(
      {"codec", "ACC a%", "wire bytes", "bits/value", "vs raw f64"});
  const int64_t raw_values =
      points.empty() ? 0
                     : points.front().wire_bytes > 0
                           ? points.front().wire_bytes * 8 / 64
                           : 0;
  for (const auto& point : points) {
    const double bits_per_value =
        raw_values > 0 ? static_cast<double>(point.wire_bytes) * 8.0 /
                             static_cast<double>(raw_values)
                       : 0.0;
    table.AddRow({point.label, bench::Fmt(point.acc),
                  bench::Fmt(point.wire_bytes), bench::Fmt(bits_per_value, 2),
                  bench::Fmt(point.reduction, 2) + "x"});
  }
  std::printf("\nAccuracy-vs-bits frontier — serialized codecs "
              "(D=%ld, m=%ld, d_t=rank, samples/cluster=12, Z=%ld)\n",
              static_cast<long>(kD), static_cast<long>(kM),
              static_cast<long>(kDevices));
  table.Print(csv);
  return points;
}

void WriteFrontierJson(const std::vector<FrontierPoint>& points,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  double basis_reduction = 0.0;
  out << "{\"comm_cost\":{\"config\":\"D=1024,m=4,d_t=rank,spc=12\","
      << "\"frontier\":{";
  for (size_t i = 0; i < points.size(); ++i) {
    const FrontierPoint& point = points[i];
    if (point.key == "basis") basis_reduction = point.reduction;
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "%s\"%s\":{\"acc\":%.2f,\"wire_bytes\":%lld,"
                  "\"reduction\":%.3f}",
                  i == 0 ? "" : ",", point.key.c_str(), point.acc,
                  static_cast<long long>(point.wire_bytes), point.reduction);
    out << buffer;
  }
  char tail[64];
  std::snprintf(tail, sizeof(tail), "},\"basis_reduction\":%.3f}}\n",
                basis_reduction);
  out << tail;
  std::fprintf(stderr, "wrote frontier to %s\n", path.c_str());
}

}  // namespace
}  // namespace fedsc

int main(int argc, char** argv) {
  fedsc::bench::Observability observability(argc, argv);
  const bool csv = fedsc::bench::HasFlag(argc, argv, "--csv");
  fedsc::Run(csv);
  const auto points = fedsc::RunFrontier(csv);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      fedsc::WriteFrontierJson(points, argv[i] + 11);
    }
  }
  return 0;
}
