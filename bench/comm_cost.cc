// Communication-cost accounting (Section IV-E): measured uplink/downlink
// bits of Fed-SC and k-FED as functions of Z, against the paper's analytic
// formulas — uplink n*q*sum_z r^(z) bits, downlink sum_z r^(z) * log2(L)
// bits, one round total. Also reports the 8-bit quantized uplink.

#include <cstdio>

#include "bench_util.h"
#include "core/fedsc.h"
#include "data/synthetic.h"
#include "fed/kfed.h"
#include "fed/partition.h"
#include "metrics/clustering_metrics.h"

namespace fedsc {
namespace {

constexpr int64_t kAmbientDim = 20;
constexpr int64_t kSubspaceDim = 4;
constexpr int64_t kNumSubspaces = 10;
constexpr int64_t kLPrime = 2;

void Run(bool csv) {
  bench::Table table({"Z", "method", "ACC a%", "uplink kb", "downlink kb",
                      "rounds", "analytic uplink kb"});
  for (int64_t num_devices : {25, 50, 100, 200}) {
    const int64_t holders =
        std::max<int64_t>(1, num_devices * kLPrime / kNumSubspaces);
    SyntheticOptions synth;
    synth.ambient_dim = kAmbientDim;
    synth.subspace_dim = kSubspaceDim;
    synth.num_subspaces = kNumSubspaces;
    synth.points_per_subspace = holders * 8;
    synth.seed = 0xC057'0000ULL + static_cast<uint64_t>(num_devices);
    auto data = GenerateUnionOfSubspaces(synth);
    if (!data.ok()) continue;
    PartitionOptions partition;
    partition.num_devices = num_devices;
    partition.clusters_per_device = kLPrime;
    partition.seed = 0xC057'1111ULL + static_cast<uint64_t>(num_devices);
    auto fed = PartitionAcrossDevices(*data, partition);
    if (!fed.ok()) continue;

    auto add = [&](const char* method, double acc, const CommStats& comm,
                   double analytic_kb) {
      table.AddRow({bench::Fmt(num_devices), method, bench::Fmt(acc),
                    bench::Fmt(static_cast<double>(comm.uplink_bits) / 1000.0,
                               1),
                    bench::Fmt(comm.downlink_bits / 1000.0, 2),
                    bench::Fmt(static_cast<int64_t>(comm.rounds)),
                    analytic_kb > 0 ? bench::Fmt(analytic_kb, 1)
                                    : std::string("-")});
    };

    {
      FedScOptions options;
      auto result = RunFedSc(*fed, kNumSubspaces, options);
      if (result.ok()) {
        // Section IV-E: n * q * sum_z r^(z).
        const double analytic_kb =
            static_cast<double>(kAmbientDim) * 64.0 *
            static_cast<double>(result->total_samples) / 1000.0;
        add("Fed-SC (SSC)",
            ClusteringAccuracy(data->labels, result->global_labels),
            result->comm, analytic_kb);
      }
    }
    {
      FedScOptions options;
      options.channel.quantize = true;
      options.channel.bits_per_value = 8;
      auto result = RunFedSc(*fed, kNumSubspaces, options);
      if (result.ok()) {
        add("Fed-SC (SSC, 8-bit)",
            ClusteringAccuracy(data->labels, result->global_labels),
            result->comm, 0.0);
      }
    }
    {
      KFedOptions options;
      options.local_k = kLPrime;
      auto result = RunKFed(*fed, kNumSubspaces, options);
      if (result.ok()) {
        add("k-FED", ClusteringAccuracy(data->labels, result->global_labels),
            result->comm, 0.0);
      }
    }
  }
  std::printf("Communication cost — Section IV-E accounting (n=%ld, L=%ld, "
              "L'=%ld)\n",
              static_cast<long>(kAmbientDim),
              static_cast<long>(kNumSubspaces), static_cast<long>(kLPrime));
  table.Print(csv);
}

}  // namespace
}  // namespace fedsc

int main(int argc, char** argv) {
  fedsc::bench::Observability observability(argc, argv);
  fedsc::Run(fedsc::bench::HasFlag(argc, argv, "--csv"));
  return 0;
}
