// Reproduces Fig. 4: clustering accuracy and NMI of the one-shot federated
// methods — Fed-SC (SSC), Fed-SC (TSC), k-FED — as functions of the number
// of devices Z, under IID and non-IID (L' = 2, L' = 10) partitions.
//
// Paper setup: L = 20 subspaces of dimension 5 in R^20, Z in [200, 2000].
// Scaled-down setup (single-core container; see EXPERIMENTS.md): d = 4,
// Z in {40, 80, 160, 240}, every device holding ~120 points regardless of
// the partition. Fixing the per-device budget is what produces the paper's
// heterogeneity benefit: under IID a device spreads its 120 points over all
// 20 clusters (6 per cluster — barely enough to self-express), while under
// Non-IID-2 the same budget gives 60 points per cluster.

#include <cstdio>

#include "bench_util.h"
#include "core/fedsc.h"
#include "data/synthetic.h"
#include "fed/kfed.h"
#include "fed/partition.h"
#include "metrics/clustering_metrics.h"

namespace fedsc {
namespace {

constexpr int64_t kAmbientDim = 20;
constexpr int64_t kSubspaceDim = 4;
constexpr int64_t kNumSubspaces = 20;
constexpr int64_t kPointsPerDevice = 120;

struct PartitionSpec {
  const char* name;
  int64_t l_prime;  // 0 = IID
};

void Run(bool csv) {
  bench::Table table({"partition", "Z", "FedSC(SSC) a%", "FedSC(SSC) n%",
                      "FedSC(TSC) a%", "FedSC(TSC) n%", "k-FED a%",
                      "k-FED n%"});

  const PartitionSpec specs[] = {
      {"IID", 0}, {"Non-IID-2", 2}, {"Non-IID-10", 10}};
  const int64_t device_counts[] = {40, 80, 160, 240};

  for (const PartitionSpec& spec : specs) {
    for (int64_t num_devices : device_counts) {
      const int64_t l_prime =
          spec.l_prime == 0 ? kNumSubspaces : spec.l_prime;
      SyntheticOptions synth;
      synth.ambient_dim = kAmbientDim;
      synth.subspace_dim = kSubspaceDim;
      synth.num_subspaces = kNumSubspaces;
      // Fixed per-device budget: the dataset scales with Z only.
      synth.points_per_subspace =
          kPointsPerDevice * num_devices / kNumSubspaces;
      synth.seed = 0xF14'0000ULL + static_cast<uint64_t>(num_devices);
      auto data = GenerateUnionOfSubspaces(synth);
      if (!data.ok()) {
        std::fprintf(stderr, "data: %s\n", data.status().ToString().c_str());
        continue;
      }
      PartitionOptions partition;
      partition.num_devices = num_devices;
      partition.clusters_per_device = spec.l_prime;
      partition.seed = 0xF14'1111ULL + static_cast<uint64_t>(num_devices);
      auto fed = PartitionAcrossDevices(*data, partition);
      if (!fed.ok()) {
        std::fprintf(stderr, "partition: %s\n",
                     fed.status().ToString().c_str());
        continue;
      }

      std::vector<std::string> row{spec.name, bench::Fmt(num_devices)};
      for (ScMethod central : {ScMethod::kSsc, ScMethod::kTsc}) {
        FedScOptions options;
        options.central_method = central;
        auto result = RunFedSc(*fed, kNumSubspaces, options);
        if (result.ok()) {
          row.push_back(bench::Fmt(
              ClusteringAccuracy(data->labels, result->global_labels)));
          row.push_back(bench::Fmt(NormalizedMutualInformation(
              data->labels, result->global_labels)));
        } else {
          row.push_back("-");
          row.push_back("-");
        }
      }
      KFedOptions kfed;
      kfed.local_k = l_prime;
      auto result = RunKFed(*fed, kNumSubspaces, kfed);
      if (result.ok()) {
        row.push_back(bench::Fmt(
            ClusteringAccuracy(data->labels, result->global_labels)));
        row.push_back(bench::Fmt(NormalizedMutualInformation(
            data->labels, result->global_labels)));
      } else {
        row.push_back("-");
        row.push_back("-");
      }
      table.AddRow(std::move(row));
    }
  }
  std::printf("Fig. 4 — federated methods vs number of devices Z\n");
  table.Print(csv);
}

}  // namespace
}  // namespace fedsc

int main(int argc, char** argv) {
  fedsc::bench::Observability observability(argc, argv);
  fedsc::Run(fedsc::bench::HasFlag(argc, argv, "--csv"));
  return 0;
}
