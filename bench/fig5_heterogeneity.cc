// Reproduces Fig. 5: heatmaps of Fed-SC (SSC) and Fed-SC (TSC) clustering
// accuracy as functions of the heterogeneity ratio L'/L and the number of
// subspaces L, at a fixed device count.
//
// Paper setup: Z = 400. Scaled-down setup: Z = 60, L in {8, 16, 24, 32},
// L'/L in {0.25, 0.5, 0.75, 1.0} (see EXPERIMENTS.md). Brighter (higher)
// cells should concentrate at small L'/L and small L.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/fedsc.h"
#include "data/synthetic.h"
#include "fed/partition.h"
#include "metrics/clustering_metrics.h"

namespace fedsc {
namespace {

constexpr int64_t kNumDevices = 60;
constexpr int64_t kAmbientDim = 20;
constexpr int64_t kSubspaceDim = 4;
// Fixed per-device budget (see fig4_devices.cc): heterogeneity benefits
// appear because a device spreads the same budget over fewer clusters.
constexpr int64_t kPointsPerDevice = 120;

void Run(bool csv) {
  const int64_t subspace_counts[] = {8, 16, 24, 32};
  const double ratios[] = {0.25, 0.5, 0.75, 1.0};

  for (ScMethod central : {ScMethod::kSsc, ScMethod::kTsc}) {
    bench::Table table({"L'/L", "L=8", "L=16", "L=24", "L=32"});
    for (double ratio : ratios) {
      std::vector<std::string> row{bench::Fmt(ratio)};
      for (int64_t num_subspaces : subspace_counts) {
        const int64_t l_prime = std::max<int64_t>(
            1, static_cast<int64_t>(std::lround(ratio * num_subspaces)));
        SyntheticOptions synth;
        synth.ambient_dim = kAmbientDim;
        synth.subspace_dim = kSubspaceDim;
        synth.num_subspaces = num_subspaces;
        synth.points_per_subspace =
            kPointsPerDevice * kNumDevices / num_subspaces;
        synth.seed = 0xF15'0000ULL + static_cast<uint64_t>(num_subspaces);
        auto data = GenerateUnionOfSubspaces(synth);
        if (!data.ok()) {
          row.push_back("-");
          continue;
        }
        PartitionOptions partition;
        partition.num_devices = kNumDevices;
        partition.clusters_per_device =
            l_prime >= num_subspaces ? 0 : l_prime;
        partition.seed =
            0xF15'1111ULL + static_cast<uint64_t>(100 * ratio);
        auto fed = PartitionAcrossDevices(*data, partition);
        if (!fed.ok()) {
          row.push_back("-");
          continue;
        }
        FedScOptions options;
        options.central_method = central;
        auto result = RunFedSc(*fed, num_subspaces, options);
        row.push_back(result.ok()
                          ? bench::Fmt(ClusteringAccuracy(
                                data->labels, result->global_labels))
                          : "-");
      }
      table.AddRow(std::move(row));
    }
    std::printf("Fig. 5 — Fed-SC (%s) accuracy heatmap, Z=%ld\n",
                central == ScMethod::kSsc ? "SSC" : "TSC",
                static_cast<long>(kNumDevices));
    table.Print(csv);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace fedsc

int main(int argc, char** argv) {
  fedsc::bench::Observability observability(argc, argv);
  fedsc::Run(fedsc::bench::HasFlag(argc, argv, "--csv"));
  return 0;
}
