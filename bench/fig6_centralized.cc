// Reproduces Fig. 6: Fed-SC (SSC/TSC) against the centralized subspace
// clustering baselines (SSC, TSC, SSC-OMP, EnSC, NSN) on statistically
// heterogeneous federations — accuracy, NMI, graph connectivity, and total
// running time as functions of Z.
//
// Paper setup: L = 50 subspaces, L' = 3, Z growing. Scaled-down setup:
// L = 25, L' = 3, Z in {15, 30, 60, 120} (see EXPERIMENTS.md). The expected
// shape: Fed-SC matches or beats the centralized methods in ACC/NMI once Z
// gives each subspace enough devices, improves connectivity, and its total
// time grows far slower than the centralized methods'.

#include <cstdio>

#include "bench_util.h"
#include "core/fedsc.h"
#include "data/synthetic.h"
#include "fed/partition.h"
#include "metrics/clustering_metrics.h"
#include "metrics/connectivity.h"
#include "sc/pipeline.h"

namespace fedsc {
namespace {

constexpr int64_t kAmbientDim = 20;
constexpr int64_t kSubspaceDim = 4;
constexpr int64_t kNumSubspaces = 25;
constexpr int64_t kLPrime = 3;
constexpr int64_t kPointsPerDeviceCluster = 8;

void Run(bool csv) {
  bench::Table table({"Z", "N", "method", "ACC a%", "NMI n%", "CONN c-bar",
                      "T (s)"});
  const int64_t device_counts[] = {15, 30, 60, 120};

  for (int64_t num_devices : device_counts) {
    const int64_t holders =
        std::max<int64_t>(1, num_devices * kLPrime / kNumSubspaces);
    SyntheticOptions synth;
    synth.ambient_dim = kAmbientDim;
    synth.subspace_dim = kSubspaceDim;
    synth.num_subspaces = kNumSubspaces;
    synth.points_per_subspace = holders * kPointsPerDeviceCluster;
    synth.seed = 0xF16'0000ULL + static_cast<uint64_t>(num_devices);
    auto data = GenerateUnionOfSubspaces(synth);
    if (!data.ok()) continue;
    const int64_t total_points = data->points.cols();

    PartitionOptions partition;
    partition.num_devices = num_devices;
    partition.clusters_per_device = kLPrime;
    partition.seed = 0xF16'1111ULL + static_cast<uint64_t>(num_devices);
    auto fed = PartitionAcrossDevices(*data, partition);
    if (!fed.ok()) continue;

    // Federated methods.
    for (ScMethod central : {ScMethod::kSsc, ScMethod::kTsc}) {
      FedScOptions options;
      options.central_method = central;
      auto result = RunFedSc(*fed, kNumSubspaces, options);
      std::vector<std::string> row{
          bench::Fmt(num_devices), bench::Fmt(total_points),
          central == ScMethod::kSsc ? "Fed-SC (SSC)" : "Fed-SC (TSC)"};
      if (result.ok()) {
        row.push_back(bench::Fmt(
            ClusteringAccuracy(data->labels, result->global_labels)));
        row.push_back(bench::Fmt(NormalizedMutualInformation(
            data->labels, result->global_labels)));
        auto conn = InducedConnectivity(*fed, *result);
        row.push_back(conn.ok() ? bench::Fmt(conn->mean_lambda2, 4) : "-");
        row.push_back(bench::Fmt(result->seconds, 3));
      } else {
        row.insert(row.end(), {"-", "-", "-", "-"});
      }
      table.AddRow(std::move(row));
    }

    // Centralized baselines on the pooled dataset.
    for (ScMethod method :
         {ScMethod::kSsc, ScMethod::kSscOmp, ScMethod::kEnsc, ScMethod::kTsc,
          ScMethod::kNsn}) {
      ScPipelineOptions options;
      options.method = method;
      options.tsc.q = std::max<int64_t>(
          3, total_points / (100 * kNumSubspaces));
      options.ssc_omp.max_support = kSubspaceDim + 2;
      options.nsn.num_neighbors = 2 * kSubspaceDim;
      options.nsn.max_subspace_dim = kSubspaceDim;
      auto result =
          RunSubspaceClustering(data->points, kNumSubspaces, options);
      std::vector<std::string> row{bench::Fmt(num_devices),
                                   bench::Fmt(total_points),
                                   ScMethodName(method)};
      if (result.ok()) {
        row.push_back(
            bench::Fmt(ClusteringAccuracy(data->labels, result->labels)));
        row.push_back(bench::Fmt(
            NormalizedMutualInformation(data->labels, result->labels)));
        auto conn = GraphConnectivity(result->affinity, data->labels);
        row.push_back(conn.ok() ? bench::Fmt(conn->mean_lambda2, 4) : "-");
        row.push_back(bench::Fmt(result->seconds, 3));
      } else {
        row.insert(row.end(), {"-", "-", "-", "-"});
      }
      table.AddRow(std::move(row));
    }
  }
  std::printf(
      "Fig. 6 — Fed-SC vs centralized subspace clustering (L=%ld, L'=%ld)\n",
      static_cast<long>(kNumSubspaces), static_cast<long>(kLPrime));
  table.Print(csv);
}

}  // namespace
}  // namespace fedsc

int main(int argc, char** argv) {
  fedsc::bench::Observability observability(argc, argv);
  fedsc::Run(fedsc::bench::HasFlag(argc, argv, "--csv"));
  return 0;
}
