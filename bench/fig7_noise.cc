// Reproduces Fig. 7: robustness of Fed-SC to communication noise — accuracy
// heatmaps over the noise scale delta and the number of devices Z, where
// each device's uploaded samples receive Gaussian noise of standard
// deviation delta / sqrt(r^(z)).
//
// Paper setup: a delta x Z grid at synthetic scale. Scaled-down setup:
// Z in {25, 50, 100, 200}, delta in {0, 0.05, 0.1, 0.2, 0.4}
// (see EXPERIMENTS.md). Expected shape: near-flat accuracy across a wide
// delta range, degrading only at the largest delta / smallest Z corner.

#include <cstdio>

#include "bench_util.h"
#include "core/fedsc.h"
#include "data/synthetic.h"
#include "fed/partition.h"
#include "metrics/clustering_metrics.h"

namespace fedsc {
namespace {

constexpr int64_t kAmbientDim = 20;
constexpr int64_t kSubspaceDim = 4;
constexpr int64_t kNumSubspaces = 10;
constexpr int64_t kLPrime = 2;
constexpr int64_t kPointsPerDeviceCluster = 7;

void Run(bool csv) {
  const int64_t device_counts[] = {25, 50, 100, 200};
  const double deltas[] = {0.0, 0.05, 0.1, 0.2, 0.4};

  for (ScMethod central : {ScMethod::kSsc, ScMethod::kTsc}) {
    bench::Table table(
        {"delta", "Z=25", "Z=50", "Z=100", "Z=200"});
    for (double delta : deltas) {
      std::vector<std::string> row{bench::Fmt(delta)};
      for (int64_t num_devices : device_counts) {
        const int64_t holders =
            std::max<int64_t>(1, num_devices * kLPrime / kNumSubspaces);
        SyntheticOptions synth;
        synth.ambient_dim = kAmbientDim;
        synth.subspace_dim = kSubspaceDim;
        synth.num_subspaces = kNumSubspaces;
        synth.points_per_subspace = holders * kPointsPerDeviceCluster;
        synth.seed = 0xF17'0000ULL + static_cast<uint64_t>(num_devices);
        auto data = GenerateUnionOfSubspaces(synth);
        if (!data.ok()) {
          row.push_back("-");
          continue;
        }
        PartitionOptions partition;
        partition.num_devices = num_devices;
        partition.clusters_per_device = kLPrime;
        partition.seed = 0xF17'1111ULL + static_cast<uint64_t>(num_devices);
        auto fed = PartitionAcrossDevices(*data, partition);
        if (!fed.ok()) {
          row.push_back("-");
          continue;
        }
        FedScOptions options;
        options.central_method = central;
        options.channel.noise_delta = delta;
        auto result = RunFedSc(*fed, kNumSubspaces, options);
        row.push_back(result.ok()
                          ? bench::Fmt(ClusteringAccuracy(
                                data->labels, result->global_labels))
                          : "-");
      }
      table.AddRow(std::move(row));
    }
    std::printf("Fig. 7 — Fed-SC (%s) accuracy under channel noise\n",
                central == ScMethod::kSsc ? "SSC" : "TSC");
    table.Print(csv);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace fedsc

int main(int argc, char** argv) {
  fedsc::bench::Observability observability(argc, argv);
  fedsc::Run(fedsc::bench::HasFlag(argc, argv, "--csv"));
  return 0;
}
