// Robustness under partial participation: accuracy of the surviving points
// as device dropout and Byzantine fractions grow, under the deterministic
// failure model of fed/faults.h.
//
// The paper assumes every device uploads successfully; this bench measures
// how gracefully the implementation degrades when they do not. Two sweeps:
//
//   1. Dropout 0 .. 0.4 at quorum 0.5, retrying uplinks (3 attempts): the
//      surviving points' accuracy should stay near the fault-free accuracy
//      while coverage shrinks with the dropped devices.
//   2. Byzantine fraction 0 .. 0.3: adversarial-but-well-formed uploads pass
//      validation, so accuracy (not coverage) absorbs the damage.
//   3. Colluding Byzantine fraction 0 .. 0.3, defense off vs on: coordinated
//      adversaries plant a shared fake subspace, the worst case for the
//      central solve; the DefensePlan screens them and the robust k-engine
//      absorbs whatever leaks through. With --json-out=PATH this sweep is
//      also written as a `robustness` JSON section for
//      scripts/bench_baseline.sh, which folds it into BENCH_linalg.json
//      where scripts/check_bench_json.py enforces the defended-accuracy
//      floors.
//
// Columns: participation, covered point fraction, accuracy over covered
// points, quarantined samples, rounds consumed (worst per-device attempts).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/fedsc.h"
#include "data/synthetic.h"
#include "fed/partition.h"
#include "metrics/clustering_metrics.h"

namespace fedsc {
namespace {

constexpr int64_t kAmbientDim = 20;
constexpr int64_t kSubspaceDim = 3;
constexpr int64_t kNumSubspaces = 6;
constexpr int64_t kNumDevices = 24;
constexpr int64_t kLPrime = 2;
constexpr int64_t kPointsPerDeviceCluster = 8;

struct SweepPoint {
  double participation = 0.0;
  double covered_fraction = 0.0;
  double accuracy = 0.0;
  int64_t quarantined = 0;
  int64_t screened = 0;
  int64_t rounds = 0;
  bool ok = false;
};

// One colluding-Byzantine rate measured with the defense off and on.
struct DefensePoint {
  double byzantine = 0.0;
  SweepPoint undefended;
  SweepPoint defended;
};

SweepPoint RunOnce(const FederatedDataset& fed,
                   const std::vector<int64_t>& truth,
                   const FedScOptions& options) {
  SweepPoint point;
  auto result = RunFedSc(fed, kNumSubspaces, options);
  if (!result.ok()) return point;
  std::vector<int64_t> covered_truth;
  std::vector<int64_t> covered_pred;
  for (size_t i = 0; i < result->global_labels.size(); ++i) {
    if (result->global_labels[i] == FedScResult::kFailedDeviceLabel) continue;
    covered_truth.push_back(truth[i]);
    covered_pred.push_back(result->global_labels[i]);
  }
  if (covered_truth.empty()) return point;
  point.ok = true;
  point.participation = static_cast<double>(result->participating_devices) /
                        static_cast<double>(fed.num_devices());
  point.covered_fraction = static_cast<double>(covered_truth.size()) /
                           static_cast<double>(truth.size());
  point.accuracy = ClusteringAccuracy(covered_truth, covered_pred);
  point.quarantined = result->quarantined_samples;
  point.screened = result->screened_devices;
  point.rounds = result->comm.rounds;
  return point;
}

void WriteRobustnessJson(const std::vector<DefensePoint>& points,
                         double clean_acc, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"robustness\":{\"config\":\"D=%ld,d=%ld,L=%ld,Z=%ld,"
                "Lp=%ld,mode=collude\",\"clean_acc\":%.4f,\"collude\":{",
                static_cast<long>(kAmbientDim), static_cast<long>(kSubspaceDim),
                static_cast<long>(kNumSubspaces), static_cast<long>(kNumDevices),
                static_cast<long>(kLPrime), clean_acc);
  out << buffer;
  for (size_t i = 0; i < points.size(); ++i) {
    const DefensePoint& point = points[i];
    std::snprintf(buffer, sizeof(buffer),
                  "%s\"%.1f\":{\"undefended_acc\":%.4f,\"defended_acc\":%.4f,"
                  "\"screened_devices\":%lld}",
                  i == 0 ? "" : ",", point.byzantine,
                  point.undefended.ok ? point.undefended.accuracy : -1.0,
                  point.defended.ok ? point.defended.accuracy : -1.0,
                  static_cast<long long>(point.defended.screened));
    out << buffer;
  }
  // The headline acceptance pair at the 20% colluding rate.
  double defended_at_02 = -1.0;
  double undefended_at_02 = -1.0;
  for (const DefensePoint& point : points) {
    if (point.byzantine > 0.19 && point.byzantine < 0.21) {
      if (point.defended.ok) defended_at_02 = point.defended.accuracy;
      if (point.undefended.ok) undefended_at_02 = point.undefended.accuracy;
    }
  }
  std::snprintf(buffer, sizeof(buffer),
                "},\"acceptance\":{\"defended_minus_undefended_at_0.2\":%.4f,"
                "\"clean_minus_defended_at_0.2\":%.4f}}}\n",
                defended_at_02 - undefended_at_02,
                clean_acc - defended_at_02);
  out << buffer;
  std::fprintf(stderr, "wrote robustness sweep to %s\n", path.c_str());
}

void Run(bool csv, const std::string& json_out) {
  SyntheticOptions synth;
  synth.ambient_dim = kAmbientDim;
  synth.subspace_dim = kSubspaceDim;
  synth.num_subspaces = kNumSubspaces;
  synth.points_per_subspace =
      kNumDevices * kLPrime / kNumSubspaces * kPointsPerDeviceCluster;
  synth.seed = 0x0b0e'0001ULL;
  auto data = GenerateUnionOfSubspaces(synth);
  if (!data.ok()) {
    std::fprintf(stderr, "synthetic data failed: %s\n",
                 data.status().ToString().c_str());
    return;
  }
  PartitionOptions partition;
  partition.num_devices = kNumDevices;
  partition.clusters_per_device = kLPrime;
  partition.seed = 0x0b0e'1111ULL;
  auto fed = PartitionAcrossDevices(*data, partition);
  if (!fed.ok()) {
    std::fprintf(stderr, "partition failed: %s\n",
                 fed.status().ToString().c_str());
    return;
  }
  const std::vector<int64_t> truth = fed->GlobalTruth();

  {
    bench::Table table({"dropout", "participation", "covered", "ACC",
                        "quarantined", "rounds"});
    for (double dropout : {0.0, 0.1, 0.2, 0.3, 0.4}) {
      FedScOptions options;
      options.faults.dropout_rate = dropout;
      options.quorum = 0.5;
      options.retry.max_attempts = 3;
      const SweepPoint point = RunOnce(*fed, truth, options);
      table.AddRow({bench::Fmt(dropout),
                    point.ok ? bench::Fmt(point.participation) : "-",
                    point.ok ? bench::Fmt(point.covered_fraction) : "-",
                    point.ok ? bench::Fmt(point.accuracy) : "-",
                    point.ok ? bench::Fmt(point.quarantined) : "-",
                    point.ok ? bench::Fmt(point.rounds) : "-"});
    }
    std::printf("Robustness — surviving accuracy under device dropout "
                "(quorum 0.5, 3 attempts)\n");
    table.Print(csv);
    std::printf("\n");
  }

  {
    bench::Table table({"byzantine", "participation", "covered", "ACC",
                        "quarantined", "rounds"});
    for (double byzantine : {0.0, 0.1, 0.2, 0.3}) {
      FedScOptions options;
      options.faults.byzantine_rate = byzantine;
      options.quorum = 0.5;
      const SweepPoint point = RunOnce(*fed, truth, options);
      table.AddRow({bench::Fmt(byzantine),
                    point.ok ? bench::Fmt(point.participation) : "-",
                    point.ok ? bench::Fmt(point.covered_fraction) : "-",
                    point.ok ? bench::Fmt(point.accuracy) : "-",
                    point.ok ? bench::Fmt(point.quarantined) : "-",
                    point.ok ? bench::Fmt(point.rounds) : "-"});
    }
    std::printf("Robustness — accuracy under Byzantine uploads "
                "(well-formed adversarial samples)\n");
    table.Print(csv);
    std::printf("\n");
  }

  {
    bench::Table table({"byzantine", "ACC off", "ACC on", "screened",
                        "participation on", "covered on"});
    std::vector<DefensePoint> points;
    double clean_acc = 0.0;
    for (double byzantine : {0.0, 0.1, 0.2, 0.3}) {
      DefensePoint point;
      point.byzantine = byzantine;
      FedScOptions options;
      options.faults.byzantine_rate = byzantine;
      options.faults.byzantine_mode = ByzantineMode::kCollude;
      options.quorum = 0.5;
      point.undefended = RunOnce(*fed, truth, options);
      options.defense.enabled = true;
      point.defended = RunOnce(*fed, truth, options);
      if (byzantine == 0.0 && point.undefended.ok) {
        clean_acc = point.undefended.accuracy;
      }
      table.AddRow(
          {bench::Fmt(byzantine),
           point.undefended.ok ? bench::Fmt(point.undefended.accuracy) : "-",
           point.defended.ok ? bench::Fmt(point.defended.accuracy) : "-",
           point.defended.ok ? bench::Fmt(point.defended.screened) : "-",
           point.defended.ok ? bench::Fmt(point.defended.participation) : "-",
           point.defended.ok ? bench::Fmt(point.defended.covered_fraction)
                             : "-"});
      points.push_back(point);
    }
    std::printf("Robustness — colluding Byzantine uploads, defense off vs on "
                "(screened devices count against the quorum)\n");
    table.Print(csv);
    std::printf("\n");
    if (!json_out.empty()) WriteRobustnessJson(points, clean_acc, json_out);
  }
}

}  // namespace
}  // namespace fedsc

int main(int argc, char** argv) {
  fedsc::bench::Observability observability(argc, argv);
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) json_out = argv[i] + 11;
  }
  fedsc::Run(fedsc::bench::HasFlag(argc, argv, "--csv"), json_out);
  return 0;
}
