// Robustness under partial participation: accuracy of the surviving points
// as device dropout and Byzantine fractions grow, under the deterministic
// failure model of fed/faults.h.
//
// The paper assumes every device uploads successfully; this bench measures
// how gracefully the implementation degrades when they do not. Two sweeps:
//
//   1. Dropout 0 .. 0.4 at quorum 0.5, retrying uplinks (3 attempts): the
//      surviving points' accuracy should stay near the fault-free accuracy
//      while coverage shrinks with the dropped devices.
//   2. Byzantine fraction 0 .. 0.3: adversarial-but-well-formed uploads pass
//      validation, so accuracy (not coverage) absorbs the damage.
//
// Columns: participation, covered point fraction, accuracy over covered
// points, quarantined samples, rounds consumed (worst per-device attempts).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/fedsc.h"
#include "data/synthetic.h"
#include "fed/partition.h"
#include "metrics/clustering_metrics.h"

namespace fedsc {
namespace {

constexpr int64_t kAmbientDim = 20;
constexpr int64_t kSubspaceDim = 3;
constexpr int64_t kNumSubspaces = 6;
constexpr int64_t kNumDevices = 24;
constexpr int64_t kLPrime = 2;
constexpr int64_t kPointsPerDeviceCluster = 8;

struct SweepPoint {
  double participation = 0.0;
  double covered_fraction = 0.0;
  double accuracy = 0.0;
  int64_t quarantined = 0;
  int64_t rounds = 0;
  bool ok = false;
};

SweepPoint RunOnce(const FederatedDataset& fed,
                   const std::vector<int64_t>& truth,
                   const FedScOptions& options) {
  SweepPoint point;
  auto result = RunFedSc(fed, kNumSubspaces, options);
  if (!result.ok()) return point;
  std::vector<int64_t> covered_truth;
  std::vector<int64_t> covered_pred;
  for (size_t i = 0; i < result->global_labels.size(); ++i) {
    if (result->global_labels[i] == FedScResult::kFailedDeviceLabel) continue;
    covered_truth.push_back(truth[i]);
    covered_pred.push_back(result->global_labels[i]);
  }
  if (covered_truth.empty()) return point;
  point.ok = true;
  point.participation = static_cast<double>(result->participating_devices) /
                        static_cast<double>(fed.num_devices());
  point.covered_fraction = static_cast<double>(covered_truth.size()) /
                           static_cast<double>(truth.size());
  point.accuracy = ClusteringAccuracy(covered_truth, covered_pred);
  point.quarantined = result->quarantined_samples;
  point.rounds = result->comm.rounds;
  return point;
}

void Run(bool csv) {
  SyntheticOptions synth;
  synth.ambient_dim = kAmbientDim;
  synth.subspace_dim = kSubspaceDim;
  synth.num_subspaces = kNumSubspaces;
  synth.points_per_subspace =
      kNumDevices * kLPrime / kNumSubspaces * kPointsPerDeviceCluster;
  synth.seed = 0x0b0e'0001ULL;
  auto data = GenerateUnionOfSubspaces(synth);
  if (!data.ok()) {
    std::fprintf(stderr, "synthetic data failed: %s\n",
                 data.status().ToString().c_str());
    return;
  }
  PartitionOptions partition;
  partition.num_devices = kNumDevices;
  partition.clusters_per_device = kLPrime;
  partition.seed = 0x0b0e'1111ULL;
  auto fed = PartitionAcrossDevices(*data, partition);
  if (!fed.ok()) {
    std::fprintf(stderr, "partition failed: %s\n",
                 fed.status().ToString().c_str());
    return;
  }
  const std::vector<int64_t> truth = fed->GlobalTruth();

  {
    bench::Table table({"dropout", "participation", "covered", "ACC",
                        "quarantined", "rounds"});
    for (double dropout : {0.0, 0.1, 0.2, 0.3, 0.4}) {
      FedScOptions options;
      options.faults.dropout_rate = dropout;
      options.quorum = 0.5;
      options.retry.max_attempts = 3;
      const SweepPoint point = RunOnce(*fed, truth, options);
      table.AddRow({bench::Fmt(dropout),
                    point.ok ? bench::Fmt(point.participation) : "-",
                    point.ok ? bench::Fmt(point.covered_fraction) : "-",
                    point.ok ? bench::Fmt(point.accuracy) : "-",
                    point.ok ? bench::Fmt(point.quarantined) : "-",
                    point.ok ? bench::Fmt(point.rounds) : "-"});
    }
    std::printf("Robustness — surviving accuracy under device dropout "
                "(quorum 0.5, 3 attempts)\n");
    table.Print(csv);
    std::printf("\n");
  }

  {
    bench::Table table({"byzantine", "participation", "covered", "ACC",
                        "quarantined", "rounds"});
    for (double byzantine : {0.0, 0.1, 0.2, 0.3}) {
      FedScOptions options;
      options.faults.byzantine_rate = byzantine;
      options.quorum = 0.5;
      const SweepPoint point = RunOnce(*fed, truth, options);
      table.AddRow({bench::Fmt(byzantine),
                    point.ok ? bench::Fmt(point.participation) : "-",
                    point.ok ? bench::Fmt(point.covered_fraction) : "-",
                    point.ok ? bench::Fmt(point.accuracy) : "-",
                    point.ok ? bench::Fmt(point.quarantined) : "-",
                    point.ok ? bench::Fmt(point.rounds) : "-"});
    }
    std::printf("Robustness — accuracy under Byzantine uploads "
                "(well-formed adversarial samples)\n");
    table.Print(csv);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace fedsc

int main(int argc, char** argv) {
  fedsc::bench::Observability observability(argc, argv);
  fedsc::Run(fedsc::bench::HasFlag(argc, argv, "--csv"));
  return 0;
}
