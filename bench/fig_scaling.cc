// Central-clustering scaling: exact vs sketched engine over the pooled-
// sample count N, the regime the sketched SSC + landmark spectral path
// (sc/sketch.h, SpectralClusterLandmark) exists for.
//
// Both engines run the same RunSubspaceClustering call on the same synthetic
// union of subspaces; only CentralPath differs. The exact engine solves the
// N-atom self-expression and the N-node spectral problem; the sketched
// engine solves against a d-atom dictionary (shape rule: d = clamp(N/16,
// 128, 1024)) and eigendecomposes the d x d Nystrom core, so its cost is
// linear in N. The bench reports wall seconds, ACC against ground truth,
// and the exact/sketched speedup per swept N.
//
// The exact engine is only measured up to --exact-cap (default 10000): the
// default sweep reaches N = 100000, where the exact quadratic solve is not
// feasible on a single core. Skipped exact runs are reported explicitly
// (exact_skipped), never silently dropped, and the acceptance pair
// (speedup >= 10x, |ACC gap| <= 2 points) is taken at the LARGEST N where
// both engines were measured.
//
// Default invocation runs a small smoke sweep; --full (or --json-out=PATH,
// which implies it) runs N in {2000, 10000, 50000, 100000}. With
// --json-out=PATH the sweep is written as a `central_scaling` JSON section
// for scripts/bench_baseline.sh, which folds it into BENCH_linalg.json
// where scripts/check_bench_json.py enforces the floors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "metrics/clustering_metrics.h"
#include "sc/pipeline.h"

namespace fedsc {
namespace {

constexpr int64_t kAmbientDim = 50;
constexpr int64_t kSubspaceDim = 5;
constexpr int64_t kNumSubspaces = 5;
constexpr int64_t kMaxSupport = 8;

struct ScalePoint {
  int64_t n = 0;
  int64_t sketch_dim = 0;
  bool exact_measured = false;
  double exact_seconds = 0.0;
  double exact_acc = 0.0;
  double sketched_seconds = 0.0;
  double sketched_acc = 0.0;
  bool ok = false;
};

Result<std::pair<double, double>> RunOnce(const Dataset& data,
                                          CentralPath central) {
  ScPipelineOptions options;
  options.method = ScMethod::kSscOmp;
  options.ssc_omp.max_support = kMaxSupport;
  options.central = central;
  options.sketch.seed = 0x5ca1'e001ULL;
  Stopwatch timer;
  FEDSC_ASSIGN_OR_RETURN(
      ScResult result,
      RunSubspaceClustering(data.points, kNumSubspaces, options));
  const double seconds = timer.ElapsedSeconds();
  return std::make_pair(seconds,
                        ClusteringAccuracy(data.labels, result.labels));
}

void WriteScalingJson(const std::vector<ScalePoint>& points,
                      const std::string& path) {
  // The acceptance pair lives at the largest N where BOTH engines ran.
  const ScalePoint* compared = nullptr;
  for (const ScalePoint& point : points) {
    if (point.ok && point.exact_measured) compared = &point;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  char buffer[320];
  std::snprintf(buffer, sizeof(buffer),
                "{\"central_scaling\":{\"config\":\"D=%ld,d=%ld,L=%ld,"
                "method=SSCOMP,support=%ld,threads=1\",\"sweep\":{",
                static_cast<long>(kAmbientDim),
                static_cast<long>(kSubspaceDim),
                static_cast<long>(kNumSubspaces),
                static_cast<long>(kMaxSupport));
  out << buffer;
  for (size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& point = points[i];
    if (!point.ok) continue;
    if (point.exact_measured) {
      std::snprintf(
          buffer, sizeof(buffer),
          "%s\"%lld\":{\"sketch_dim\":%lld,\"exact_s\":%.3f,"
          "\"sketched_s\":%.3f,\"speedup\":%.3f,\"exact_acc\":%.2f,"
          "\"sketched_acc\":%.2f,\"acc_gap\":%.2f}",
          i == 0 ? "" : ",", static_cast<long long>(point.n),
          static_cast<long long>(point.sketch_dim), point.exact_seconds,
          point.sketched_seconds,
          point.exact_seconds / point.sketched_seconds, point.exact_acc,
          point.sketched_acc, point.exact_acc - point.sketched_acc);
    } else {
      std::snprintf(
          buffer, sizeof(buffer),
          "%s\"%lld\":{\"sketch_dim\":%lld,\"exact_skipped\":true,"
          "\"sketched_s\":%.3f,\"sketched_acc\":%.2f}",
          i == 0 ? "" : ",", static_cast<long long>(point.n),
          static_cast<long long>(point.sketch_dim), point.sketched_seconds,
          point.sketched_acc);
    }
    out << buffer;
  }
  if (compared != nullptr) {
    std::snprintf(buffer, sizeof(buffer),
                  "},\"acceptance\":{\"largest_compared_n\":%lld,"
                  "\"speedup_at_largest_compared\":%.3f,"
                  "\"acc_gap_at_largest_compared\":%.2f}}}\n",
                  static_cast<long long>(compared->n),
                  compared->exact_seconds / compared->sketched_seconds,
                  compared->exact_acc - compared->sketched_acc);
  } else {
    std::snprintf(buffer, sizeof(buffer), "},\"acceptance\":{}}}\n");
  }
  out << buffer;
  std::fprintf(stderr, "wrote scaling sweep to %s\n", path.c_str());
}

void Run(const std::vector<int64_t>& sweep, int64_t exact_cap, bool csv,
         const std::string& json_out) {
  bench::Table table({"N", "sketch d", "exact s", "sketched s", "speedup",
                      "exact ACC", "sketched ACC"});
  std::vector<ScalePoint> points;
  for (int64_t n : sweep) {
    ScalePoint point;
    point.n = n;
    point.sketch_dim = SketchDimForShape(n, 0);
    SyntheticOptions synth;
    synth.ambient_dim = kAmbientDim;
    synth.subspace_dim = kSubspaceDim;
    synth.num_subspaces = kNumSubspaces;
    synth.points_per_subspace = n / kNumSubspaces;
    synth.seed = 0x5ca1'0001ULL + static_cast<uint64_t>(n);
    auto data = GenerateUnionOfSubspaces(synth);
    if (!data.ok()) {
      std::fprintf(stderr, "synthetic data at N=%lld failed: %s\n",
                   static_cast<long long>(n),
                   data.status().ToString().c_str());
      continue;
    }

    auto sketched = RunOnce(*data, CentralPath::kSketched);
    if (!sketched.ok()) {
      std::fprintf(stderr, "sketched run at N=%lld failed: %s\n",
                   static_cast<long long>(n),
                   sketched.status().ToString().c_str());
      continue;
    }
    point.sketched_seconds = sketched->first;
    point.sketched_acc = sketched->second;
    point.ok = true;

    if (n <= exact_cap) {
      auto exact = RunOnce(*data, CentralPath::kExact);
      if (!exact.ok()) {
        std::fprintf(stderr, "exact run at N=%lld failed: %s\n",
                     static_cast<long long>(n),
                     exact.status().ToString().c_str());
      } else {
        point.exact_measured = true;
        point.exact_seconds = exact->first;
        point.exact_acc = exact->second;
      }
    } else {
      std::fprintf(stderr,
                   "exact engine skipped at N=%lld (beyond --exact-cap=%lld "
                   "on a single core); sketched-only measurement\n",
                   static_cast<long long>(n),
                   static_cast<long long>(exact_cap));
    }
    table.AddRow(
        {bench::Fmt(point.n), bench::Fmt(point.sketch_dim),
         point.exact_measured ? bench::Fmt(point.exact_seconds) : "skipped",
         bench::Fmt(point.sketched_seconds),
         point.exact_measured
             ? bench::Fmt(point.exact_seconds / point.sketched_seconds)
             : "-",
         point.exact_measured ? bench::Fmt(point.exact_acc) : "-",
         bench::Fmt(point.sketched_acc)});
    points.push_back(point);
  }
  std::printf("Central clustering scaling — exact vs sketched engine "
              "(SSC-OMP, L=%lld, D=%lld)\n",
              static_cast<long long>(kNumSubspaces),
              static_cast<long long>(kAmbientDim));
  table.Print(csv);
  if (!json_out.empty()) WriteScalingJson(points, json_out);
}

}  // namespace
}  // namespace fedsc

int main(int argc, char** argv) {
  fedsc::bench::Observability observability(argc, argv);
  const bool csv = fedsc::bench::HasFlag(argc, argv, "--csv");
  std::string json_out;
  int64_t exact_cap = 10000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) json_out = argv[i] + 11;
    if (std::strncmp(argv[i], "--exact-cap=", 12) == 0) {
      exact_cap = std::atoll(argv[i] + 12);
    }
  }
  const bool full =
      fedsc::bench::HasFlag(argc, argv, "--full") || !json_out.empty();
  const std::vector<int64_t> sweep =
      full ? std::vector<int64_t>{2000, 10000, 50000, 100000}
           : std::vector<int64_t>{2000};
  fedsc::Run(sweep, exact_cap, csv, json_out);
  return 0;
}
