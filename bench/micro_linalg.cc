// google-benchmark microbenchmarks for the hand-built linear-algebra
// substrate: GEMM, QR, Cholesky, Jacobi SVD, symmetric eigensolver, sparse
// SpMV, and Lanczos.

#include <benchmark/benchmark.h>

#include "common/isa.h"
#include "common/rng.h"
#include "linalg/batch.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "linalg/eig.h"
#include "linalg/lanczos.h"
#include "linalg/qr.h"
#include "linalg/sparse.h"
#include "linalg/svd.h"

namespace fedsc {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t j = 0; j < cols; ++j) {
    for (int64_t i = 0; i < rows; ++i) m(i, j) = rng->Gaussian();
  }
  return m;
}

Matrix RandomSymmetric(int64_t n, Rng* rng) {
  Matrix a = RandomMatrix(n, n, rng);
  a += a.Transposed();
  return a;
}

// Square GEMM through the default dispatcher (blocked packed engine at
// every size benchmarked here). items_per_second is flops, so the reported
// rate reads directly as FLOP/s.
void BM_GemmNN(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Matrix a = RandomMatrix(n, n, &rng);
  const Matrix b = RandomMatrix(n, n, &rng);
  Matrix c(n, n);
  for (auto _ : state) {
    Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(256)->Arg(512)->Arg(1024);

// The legacy column-panel engine pinned via GemmKernel::kPanel — the
// pre-blocked baseline the packed engine is measured against.
void BM_GemmNNPanel(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Matrix a = RandomMatrix(n, n, &rng);
  const Matrix b = RandomMatrix(n, n, &rng);
  Matrix c(n, n);
  GemmOptions options;
  options.kernel = GemmKernel::kPanel;
  for (auto _ : state) {
    Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, &c, options);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNNPanel)->Arg(64)->Arg(256)->Arg(512)->Arg(1024);

// Per-ISA micro-kernel sweep: the same blocked product pinned to each
// runtime-dispatched tier (GemmOptions::isa). The label carries the tier so
// bench_baseline.sh can split the rates into the isa_dispatch section;
// tiers the host cannot execute are skipped, not faked.
void BM_GemmIsa(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int tier_index = static_cast<int>(state.range(1));
  const CpuIsa tiers[] = {CpuIsa::kGeneric, CpuIsa::kAvx2, CpuIsa::kAvx512};
  const GemmIsa pins[] = {GemmIsa::kGeneric, GemmIsa::kAvx2,
                          GemmIsa::kAvx512};
  if (!CpuIsaSupported(tiers[tier_index])) {
    state.SkipWithError("tier unsupported on this host");
    return;
  }
  Rng rng(1);
  const Matrix a = RandomMatrix(n, n, &rng);
  const Matrix b = RandomMatrix(n, n, &rng);
  Matrix c(n, n);
  GemmOptions options;
  options.kernel = GemmKernel::kBlocked;
  options.isa = pins[tier_index];
  for (auto _ : state) {
    Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, &c, options);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(CpuIsaName(tiers[tier_index]));
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmIsa)->ArgsProduct({{512, 1024}, {0, 1, 2}});

// Thread-count sweep over the deterministic parallel GEMM; results are
// bit-identical across the sweep, only the wall time moves.
void BM_GemmNNThreads(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  Rng rng(1);
  const Matrix a = RandomMatrix(n, n, &rng);
  const Matrix b = RandomMatrix(n, n, &rng);
  Matrix c(n, n);
  for (auto _ : state) {
    Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, &c, threads);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNNThreads)
    ->ArgsProduct({{64, 256, 512, 1024}, {1, 2, 4, 8}});

void BM_GemmTN(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  const Matrix a = RandomMatrix(n, n, &rng);
  const Matrix b = RandomMatrix(n, n, &rng);
  Matrix c(n, n);
  for (auto _ : state) {
    Gemm(Trans::kTrans, Trans::kNo, 1.0, a, b, 0.0, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmTN)->Arg(64)->Arg(256)->Arg(512);

// A^T B^T: the blocked engine absorbs the double transpose into packing;
// the panel pin pays the explicit B.Transposed() copy the old path made.
void BM_GemmTT(benchmark::State& state) {
  const int64_t n = state.range(0);
  const bool panel = state.range(1) != 0;
  Rng rng(2);
  const Matrix a = RandomMatrix(n, n, &rng);
  const Matrix b = RandomMatrix(n, n, &rng);
  Matrix c(n, n);
  GemmOptions options;
  options.kernel = panel ? GemmKernel::kPanel : GemmKernel::kAuto;
  for (auto _ : state) {
    Gemm(Trans::kTrans, Trans::kTrans, 1.0, a, b, 0.0, &c, options);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(panel ? "panel+copy" : "packed");
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmTT)->ArgsProduct({{256, 512}, {0, 1}});

// Gram through Syrk (half the flops, lower triangle + mirror) vs through a
// full GEMM. items_processed counts the *useful* 2*n^2*k flops for both, so
// the rate gap is the end-to-end win for the Gram hot path.
void BM_SyrkGram(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  const Matrix x = RandomMatrix(n, n, &rng);
  Matrix c(n, n);
  for (auto _ : state) {
    Syrk(Trans::kTrans, 1.0, x, 0.0, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_SyrkGram)->Arg(64)->Arg(256)->Arg(512)->Arg(1024);

void BM_GemmGram(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  const Matrix x = RandomMatrix(n, n, &rng);
  Matrix c(n, n);
  for (auto _ : state) {
    Gemm(Trans::kTrans, Trans::kNo, 1.0, x, x, 0.0, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmGram)->Arg(64)->Arg(256)->Arg(512)->Arg(1024);

void BM_HouseholderQr(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  const Matrix a = RandomMatrix(2 * n, n, &rng);
  for (auto _ : state) {
    auto qr = HouseholderQr(a);
    benchmark::DoNotOptimize(qr->q.data());
  }
}
BENCHMARK(BM_HouseholderQr)->Arg(32)->Arg(128);

// Blocked compact-WY vs. unblocked QR over the tall-skinny shapes of
// Fed-SC's basis estimation (D x n_i). items_per_second counts the
// factorization + thin-Q flops (~4 n^2 (m - n/3)), identical for both
// engines, so the rate ratio is the blocked speedup.
void BM_QrVariant(benchmark::State& state) {
  const int64_t m = state.range(0);
  const int64_t n = state.range(1);
  const bool blocked = state.range(2) != 0;
  Rng rng(10);
  const Matrix a = RandomMatrix(m, n, &rng);
  QrOptions options;
  options.variant = blocked ? QrVariant::kBlocked : QrVariant::kUnblocked;
  for (auto _ : state) {
    auto qr = HouseholderQr(a, options);
    benchmark::DoNotOptimize(qr->q.data());
  }
  state.SetLabel(blocked ? "blocked" : "unblocked");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(4.0 * n * n * (m - n / 3.0)));
}
BENCHMARK(BM_QrVariant)
    ->ArgsProduct({{256, 1024, 4096}, {8, 32, 128}, {0, 1}});

void BM_Cholesky(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(4);
  Matrix spd = Gram(RandomMatrix(n, n, &rng));
  for (int64_t i = 0; i < n; ++i) spd(i, i) += n;
  for (auto _ : state) {
    auto l = CholeskyFactor(spd);
    benchmark::DoNotOptimize(l->data());
  }
}
BENCHMARK(BM_Cholesky)->Arg(64)->Arg(256);

void BM_JacobiSvd(benchmark::State& state) {
  const int64_t cols = state.range(0);
  Rng rng(5);
  const Matrix a = RandomMatrix(4 * cols, cols, &rng);
  for (auto _ : state) {
    auto svd = JacobiSvd(a);
    benchmark::DoNotOptimize(svd->s.data());
  }
}
BENCHMARK(BM_JacobiSvd)->Arg(16)->Arg(64);

// Thread-count sweep over the round-robin Jacobi sweep (the 4*cols x cols
// input is above the round-robin cutoff for cols >= 64).
void BM_JacobiSvdThreads(benchmark::State& state) {
  const int64_t cols = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  Rng rng(5);
  const Matrix a = RandomMatrix(4 * cols, cols, &rng);
  SvdOptions options;
  options.num_threads = threads;
  for (auto _ : state) {
    auto svd = JacobiSvd(a, options);
    benchmark::DoNotOptimize(svd->s.data());
  }
}
BENCHMARK(BM_JacobiSvdThreads)->ArgsProduct({{64}, {1, 2, 4, 8}});

// QR-preconditioned vs. plain one-sided Jacobi on tall-skinny inputs: the
// preconditioner moves every rotation from O(m) to O(n) work.
// items_per_second counts the thin-SVD's useful flops (~6 m n^2 + n^3),
// identical for both paths, so the rate ratio is the preconditioning
// speedup.
void BM_SvdTall(benchmark::State& state) {
  const int64_t m = state.range(0);
  const int64_t n = state.range(1);
  const bool precond = state.range(2) != 0;
  Rng rng(5);
  const Matrix a = RandomMatrix(m, n, &rng);
  SvdOptions options;
  options.precondition =
      precond ? SvdPrecondition::kQr : SvdPrecondition::kNone;
  for (auto _ : state) {
    auto svd = JacobiSvd(a, options);
    benchmark::DoNotOptimize(svd->s.data());
  }
  state.SetLabel(precond ? "precond_qr" : "plain");
  state.SetItemsProcessed(state.iterations() * (6 * m * n * n + n * n * n));
}
BENCHMARK(BM_SvdTall)
    ->Args({1024, 32, 0})
    ->Args({1024, 32, 1})
    ->Args({1024, 128, 0})
    ->Args({1024, 128, 1})
    ->Args({4096, 32, 0})
    ->Args({4096, 32, 1});

void BM_SymmetricEigen(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(6);
  const Matrix a = RandomSymmetric(n, &rng);
  for (auto _ : state) {
    auto eig = SymmetricEigen(a);
    benchmark::DoNotOptimize(eig->values.data());
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(64)->Arg(256);

void BM_SymmetricEigenvaluesOnly(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(7);
  const Matrix a = RandomSymmetric(n, &rng);
  for (auto _ : state) {
    auto values = SymmetricEigenvalues(a);
    benchmark::DoNotOptimize(values->data());
  }
}
BENCHMARK(BM_SymmetricEigenvaluesOnly)->Arg(64)->Arg(256);

// Blocked vs. element-wise tridiagonalization inside the full dense
// eigendecomposition (the spectral-clustering server hot path).
// items_per_second counts the 4 n^3 / 3 reduction flops, so the rate ratio
// is the blocked speedup of the tridiagonalization-dominated run.
void BM_EigVariant(benchmark::State& state) {
  const int64_t n = state.range(0);
  const bool blocked = state.range(1) != 0;
  Rng rng(6);
  const Matrix a = RandomSymmetric(n, &rng);
  EigOptions options;
  options.variant = blocked ? EigVariant::kBlocked : EigVariant::kUnblocked;
  for (auto _ : state) {
    auto eig = SymmetricEigen(a, options);
    benchmark::DoNotOptimize(eig->values.data());
  }
  state.SetLabel(blocked ? "blocked" : "unblocked");
  state.SetItemsProcessed(state.iterations() * (4 * n * n * n) / 3);
}
BENCHMARK(BM_EigVariant)->ArgsProduct({{256, 512}, {0, 1}});

void BM_EigValuesVariant(benchmark::State& state) {
  const int64_t n = state.range(0);
  const bool blocked = state.range(1) != 0;
  Rng rng(7);
  const Matrix a = RandomSymmetric(n, &rng);
  EigOptions options;
  options.variant = blocked ? EigVariant::kBlocked : EigVariant::kUnblocked;
  for (auto _ : state) {
    auto values = SymmetricEigenvalues(a, options);
    benchmark::DoNotOptimize(values->data());
  }
  state.SetLabel(blocked ? "blocked" : "unblocked");
  state.SetItemsProcessed(state.iterations() * (4 * n * n * n) / 3);
}
BENCHMARK(BM_EigValuesVariant)->ArgsProduct({{256, 512}, {0, 1}});

// Batched basis estimation over a fleet of tall-skinny D=256 x n=32 panels
// (the per-cluster shape of the Fed-SC local phase): the looped engine runs
// the per-panel QR-preconditioned Jacobi SVD, the batched engine takes the
// Gram route these shapes dispatch to under kAuto. Rates are panels/s so
// the looped-vs-batched ratio in BENCH_linalg.json is a direct speedup.
void BM_BatchedBasis(benchmark::State& state) {
  const int64_t batch = state.range(0);
  const bool batched = state.range(1) != 0;
  const int64_t d = 256;
  const int64_t n = 32;
  const int64_t rank = 4;
  Rng rng(10);
  std::vector<Matrix> panels;
  panels.reserve(batch);
  for (int64_t i = 0; i < batch; ++i) {
    // Exactly rank-4 panels: both engines make the same rank decision, so
    // the comparison times the factorization, not divergent trailing work.
    const Matrix u = RandomMatrix(d, rank, &rng);
    const Matrix c = RandomMatrix(rank, n, &rng);
    Matrix panel(d, n);
    Gemm(Trans::kNo, Trans::kNo, 1.0, u, c, 0.0, &panel);
    panels.push_back(std::move(panel));
  }
  BatchedSubspaceOptions options;
  // Fixed rank, as the pipeline pins via sample_dim: kAuto only takes the
  // Gram route for fixed-rank requests.
  options.rank = rank;
  options.engine = batched ? BatchEngine::kAuto : BatchEngine::kLooped;
  for (auto _ : state) {
    auto bases = BatchedPrincipalSubspace(panels, options);
    benchmark::DoNotOptimize(bases.data());
  }
  state.SetLabel(batched ? "batched" : "looped");
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchedBasis)->ArgsProduct({{64, 1024}, {0, 1}});

SparseMatrix RandomSparseSymmetric(int64_t n, int64_t per_row, Rng* rng) {
  std::vector<Triplet> triplets;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t k = 0; k < per_row; ++k) {
      const int64_t j = rng->UniformInt(n);
      const double v = rng->Uniform();
      triplets.push_back({i, j, v});
      triplets.push_back({j, i, v});
    }
  }
  return SparseMatrix::FromTriplets(n, n, triplets);
}

void BM_SparseMatVec(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(8);
  const SparseMatrix m = RandomSparseSymmetric(n, 8, &rng);
  Vector x(static_cast<size_t>(n), 1.0);
  Vector y(static_cast<size_t>(n), 0.0);
  for (auto _ : state) {
    m.Multiply(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_SparseMatVec)->Arg(1000)->Arg(10000);

void BM_LanczosTop10(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(9);
  const SparseMatrix m = RandomSparseSymmetric(n, 8, &rng);
  const SymmetricOperator apply = [&m](const double* x, double* y) {
    m.Multiply(x, y);
  };
  for (auto _ : state) {
    auto eig = LanczosLargest(apply, n, 10);
    benchmark::DoNotOptimize(eig->values.data());
  }
}
BENCHMARK(BM_LanczosTop10)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace fedsc

BENCHMARK_MAIN();
