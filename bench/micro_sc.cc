// google-benchmark microbenchmarks for the subspace-clustering kernels:
// affinity construction with each method, spectral clustering, and the
// per-device Fed-SC local stage.

#include <benchmark/benchmark.h>

#include "cluster/spectral.h"
#include "core/fedsc.h"
#include "data/synthetic.h"
#include "fed/partition.h"
#include "linalg/svd.h"
#include "sc/pipeline.h"

namespace fedsc {
namespace {

Dataset MakeData(int64_t points_per_subspace, uint64_t seed) {
  SyntheticOptions options;
  options.ambient_dim = 20;
  options.subspace_dim = 4;
  options.num_subspaces = 5;
  options.points_per_subspace = points_per_subspace;
  options.seed = seed;
  auto data = GenerateUnionOfSubspaces(options);
  return std::move(data).value();
}

void BM_SscAdmm(benchmark::State& state) {
  const Dataset data = MakeData(state.range(0), 1);
  for (auto _ : state) {
    auto c = SscSelfExpression(data.points);
    benchmark::DoNotOptimize(c->nnz());
  }
  state.SetLabel("N=" + std::to_string(data.points.cols()));
}
BENCHMARK(BM_SscAdmm)->Arg(20)->Arg(60)->Arg(160);

void BM_SscOmp(benchmark::State& state) {
  const Dataset data = MakeData(state.range(0), 2);
  SscOmpOptions options;
  options.max_support = 6;
  for (auto _ : state) {
    auto c = SscOmpSelfExpression(data.points, options);
    benchmark::DoNotOptimize(c->nnz());
  }
}
BENCHMARK(BM_SscOmp)->Arg(60)->Arg(160);

void BM_Tsc(benchmark::State& state) {
  const Dataset data = MakeData(state.range(0), 3);
  TscOptions options;
  options.q = 5;
  for (auto _ : state) {
    auto w = TscAffinity(data.points, options);
    benchmark::DoNotOptimize(w->nnz());
  }
}
BENCHMARK(BM_Tsc)->Arg(60)->Arg(160)->Arg(400);

void BM_Nsn(benchmark::State& state) {
  const Dataset data = MakeData(state.range(0), 4);
  NsnOptions options;
  options.num_neighbors = 8;
  options.max_subspace_dim = 4;
  for (auto _ : state) {
    auto w = NsnAffinity(data.points, options);
    benchmark::DoNotOptimize(w->nnz());
  }
}
BENCHMARK(BM_Nsn)->Arg(60)->Arg(160);

void BM_Ensc(benchmark::State& state) {
  const Dataset data = MakeData(state.range(0), 5);
  for (auto _ : state) {
    auto c = EnscSelfExpression(data.points);
    benchmark::DoNotOptimize(c->nnz());
  }
}
BENCHMARK(BM_Ensc)->Arg(60)->Arg(160);

void BM_Esc(benchmark::State& state) {
  const Dataset data = MakeData(state.range(0), 11);
  EscOptions options;
  options.num_exemplars = 15;
  for (auto _ : state) {
    auto w = EscAffinity(data.points, options);
    benchmark::DoNotOptimize(w->nnz());
  }
}
BENCHMARK(BM_Esc)->Arg(60)->Arg(160);

void BM_SpectralClusterDense(benchmark::State& state) {
  const Dataset data = MakeData(state.range(0), 6);
  ScPipelineOptions options;
  options.method = ScMethod::kTsc;
  options.tsc.q = 5;
  auto affinity = BuildAffinity(data.points, options);
  const Matrix dense = affinity->ToDense();
  for (auto _ : state) {
    auto result = SpectralCluster(dense, 5);
    benchmark::DoNotOptimize(result->labels.data());
  }
}
BENCHMARK(BM_SpectralClusterDense)->Arg(40)->Arg(120);

void BM_FedScLocalStage(benchmark::State& state) {
  // One device holding 2 subspaces with range(0) points each.
  SyntheticOptions options;
  options.ambient_dim = 20;
  options.subspace_dim = 4;
  options.num_subspaces = 2;
  options.points_per_subspace = state.range(0);
  options.seed = 7;
  auto data = GenerateUnionOfSubspaces(options);
  FedScOptions fed_options;
  uint64_t seed = 0;
  for (auto _ : state) {
    auto local = LocalClusterAndSample(data->points, fed_options, ++seed);
    benchmark::DoNotOptimize(local->samples.data());
  }
}
BENCHMARK(BM_FedScLocalStage)->Arg(15)->Arg(40)->Arg(100);

// End-to-end Fed-SC: partition a union of subspaces across devices, run
// every local stage, pool the samples, cluster globally, broadcast labels.
// This is the wall-time number tracked in BENCH_linalg.json.
void BM_RunFedSc(benchmark::State& state) {
  SyntheticOptions options;
  options.ambient_dim = 24;
  options.subspace_dim = 4;
  options.num_subspaces = 5;
  options.points_per_subspace = state.range(0);
  options.seed = 17;
  auto data = GenerateUnionOfSubspaces(options);
  PartitionOptions partition;
  partition.num_devices = 8;
  partition.clusters_per_device = 2;
  partition.seed = 99;
  auto fed = PartitionAcrossDevices(*data, partition);
  FedScOptions fed_options;
  for (auto _ : state) {
    auto result = RunFedSc(*fed, options.num_subspaces, fed_options);
    benchmark::DoNotOptimize(result->global_labels.data());
  }
  state.SetLabel("N=" + std::to_string(data->points.cols()));
}
BENCHMARK(BM_RunFedSc)->Arg(40)->Arg(120);

// Tall-ambient basis estimation (D = 1024, n_i = 50): the exact
// PrincipalSubspace call Fed-SC's local stage makes per cluster, with the
// QR preconditioner pinned off ("before") and on ("after"). The committed
// baseline tracks both so the basis-estimation speedup is visible at the
// pipeline level, not just in the factorization micro-kernels.
void BM_FedScBasisTallD(benchmark::State& state) {
  const bool precond = state.range(0) != 0;
  SyntheticOptions options;
  options.ambient_dim = 1024;
  options.subspace_dim = 4;
  options.num_subspaces = 1;
  options.points_per_subspace = 50;
  options.noise_stddev = 0.01;
  options.seed = 23;
  auto data = GenerateUnionOfSubspaces(options);
  SvdOptions svd;
  svd.precondition =
      precond ? SvdPrecondition::kQr : SvdPrecondition::kNone;
  for (auto _ : state) {
    auto basis = PrincipalSubspace(data->points, 4, 1e-8, svd);
    benchmark::DoNotOptimize(basis->data());
  }
  state.SetLabel(precond ? "precond_qr" : "plain");
}
BENCHMARK(BM_FedScBasisTallD)->Arg(0)->Arg(1);

// End-to-end Fed-SC on a tall ambient dimension (D = 1024), where local
// basis estimation dominates: the shape that rides the new QR-preconditioned
// SVD via kAuto dispatch.
void BM_RunFedScTallD(benchmark::State& state) {
  SyntheticOptions options;
  options.ambient_dim = 1024;
  options.subspace_dim = 4;
  options.num_subspaces = 4;
  options.points_per_subspace = 100;
  options.seed = 29;
  auto data = GenerateUnionOfSubspaces(options);
  PartitionOptions partition;
  partition.num_devices = 4;
  partition.clusters_per_device = 2;
  partition.seed = 101;
  auto fed = PartitionAcrossDevices(*data, partition);
  FedScOptions fed_options;
  for (auto _ : state) {
    auto result = RunFedSc(*fed, options.num_subspaces, fed_options);
    benchmark::DoNotOptimize(result->global_labels.data());
  }
  state.SetLabel("D=1024,N=" + std::to_string(data->points.cols()));
}
BENCHMARK(BM_RunFedScTallD);

}  // namespace
}  // namespace fedsc

BENCHMARK_MAIN();
