// Reproduces Table III: every method on the high-dimensional real-world
// stand-ins (EMNIST-sim and augmented-COIL100-sim; see DESIGN.md section 2
// for the substitution), over a federation of Z devices with
// 2 <= L^(z) <= 4 clusters per device.
//
// Columns: ACC (a%), NMI (n%), CONN (c-bar), total time T (seconds).
// Like the paper's footnote for SSC on EMNIST, the centralized SSC solver
// runs under a wall-clock budget and reports '-' when it exceeds it.
//
// Expected shape: Fed-SC (SSC/TSC) lead in ACC/NMI and run orders of
// magnitude faster than centralized SC; k-FED trails far behind; per-device
// PCA collapses k-FED to near-chance accuracy.

#include <cstdio>

#include "bench_util.h"
#include "core/fedsc.h"
#include "data/realworld_sim.h"
#include "fed/kfed.h"
#include "fed/partition.h"
#include "metrics/clustering_metrics.h"
#include "metrics/connectivity.h"
#include "sc/pipeline.h"

namespace fedsc {
namespace {

constexpr int64_t kNumDevices = 80;

struct DatasetSpec {
  const char* name;
  Dataset data;
  double ssc_deadline_seconds;
};

void RunDataset(const DatasetSpec& spec, bench::Table* table) {
  const Dataset& data = spec.data;
  const int64_t num_clusters = data.num_clusters;
  const int64_t total_points = data.points.cols();

  PartitionOptions partition;
  partition.num_devices = kNumDevices;
  partition.clusters_per_device = 2;
  partition.clusters_per_device_max = 4;  // the paper's 2 <= L^(z) <= 4
  partition.seed = 0x7AB'3333ULL;
  auto fed = PartitionAcrossDevices(data, partition);
  if (!fed.ok()) {
    std::fprintf(stderr, "partition: %s\n", fed.status().ToString().c_str());
    return;
  }

  auto add_row = [&](const char* method, const std::string& acc,
                     const std::string& nmi, const std::string& conn,
                     const std::string& seconds) {
    table->AddRow({spec.name, method, acc, nmi, conn, seconds});
  };

  // Fed-SC with SSC and TSC servers, in the paper's real-world mode
  // (fixed upper bound r^(z) = max L^(z) instead of the eigengap).
  for (ScMethod central : {ScMethod::kSsc, ScMethod::kTsc}) {
    FedScOptions options;
    options.central_method = central;
    options.use_eigengap = false;
    options.max_local_clusters = 4;
    auto result = RunFedSc(*fed, num_clusters, options);
    const char* name =
        central == ScMethod::kSsc ? "Fed-SC (SSC)" : "Fed-SC (TSC)";
    if (result.ok()) {
      auto conn = InducedConnectivity(*fed, *result);
      add_row(name,
              bench::Fmt(
                  ClusteringAccuracy(data.labels, result->global_labels)),
              bench::Fmt(NormalizedMutualInformation(data.labels,
                                                     result->global_labels)),
              conn.ok() ? bench::Fmt(conn->mean_lambda2, 4) : "-",
              bench::Fmt(result->seconds, 2));
    } else {
      add_row(name, "-", "-", "-", "-");
    }
  }

  // k-FED and its local-PCA variants (CONN undefined: no affinity graph).
  for (int64_t pca_dim : {int64_t{0}, int64_t{10}, int64_t{100}}) {
    KFedOptions options;
    options.local_k = 4;
    options.pca_dim = pca_dim;
    auto result = RunKFed(*fed, num_clusters, options);
    const std::string name =
        pca_dim == 0 ? "k-FED"
                     : "k-FED + PCA-" + std::to_string(pca_dim);
    if (result.ok()) {
      add_row(name.c_str(),
              bench::Fmt(
                  ClusteringAccuracy(data.labels, result->global_labels)),
              bench::Fmt(NormalizedMutualInformation(data.labels,
                                                     result->global_labels)),
              "-", bench::Fmt(result->seconds, 2));
    } else {
      add_row(name.c_str(), "-", "-", "-", "-");
    }
  }

  // Centralized baselines on the pooled data.
  for (ScMethod method :
       {ScMethod::kSsc, ScMethod::kSscOmp, ScMethod::kEnsc, ScMethod::kTsc,
        ScMethod::kNsn}) {
    ScPipelineOptions options;
    options.method = method;
    options.ssc.deadline_seconds = spec.ssc_deadline_seconds;
    options.tsc.q =
        std::max<int64_t>(3, total_points / (100 * num_clusters));
    options.ssc_omp.max_support = 8;
    options.nsn.num_neighbors = 8;
    options.nsn.max_subspace_dim = 8;
    auto result = RunSubspaceClustering(data.points, num_clusters, options);
    std::string name = ScMethodName(method);
    if (result.ok()) {
      auto conn = GraphConnectivity(result->affinity, data.labels);
      add_row(name.c_str(),
              bench::Fmt(ClusteringAccuracy(data.labels, result->labels)),
              bench::Fmt(
                  NormalizedMutualInformation(data.labels, result->labels)),
              conn.ok() ? bench::Fmt(conn->mean_lambda2, 4) : "-",
              bench::Fmt(result->seconds, 2));
    } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
      name += "*";  // exceeded the time budget, like the paper's footnote
      add_row(name.c_str(), "-", "-", "-", "-");
    } else {
      add_row(name.c_str(), "-", "-", "-", "-");
    }
  }
}

void Run(bool csv) {
  bench::Table table(
      {"dataset", "method", "ACC a%", "NMI n%", "CONN c-bar", "T (s)"});

  EmnistSimOptions emnist;
  emnist.num_classes = 20;
  emnist.ambient_dim = 512;
  emnist.min_class_size = 80;
  emnist.max_class_size = 240;
  auto emnist_data = GenerateEmnistSim(emnist);
  if (emnist_data.ok()) {
    DatasetSpec spec{"EMNIST-sim", std::move(emnist_data).value(), 90.0};
    RunDataset(spec, &table);
  }

  Coil100SimOptions coil;
  coil.num_classes = 30;
  coil.ambient_dim = 256;
  coil.images_per_class = 60;
  auto coil_data = GenerateCoil100Sim(coil);
  if (coil_data.ok()) {
    DatasetSpec spec{"COIL100-sim", std::move(coil_data).value(), 600.0};
    RunDataset(spec, &table);
  }

  std::printf(
      "Table III — real-world-sim comparison (Z=%ld, 2 <= L^(z) <= 4)\n"
      "('*' = exceeded the SSC time budget, as in the paper)\n",
      static_cast<long>(kNumDevices));
  table.Print(csv);
}

}  // namespace
}  // namespace fedsc

int main(int argc, char** argv) {
  fedsc::bench::Observability observability(argc, argv);
  fedsc::Run(fedsc::bench::HasFlag(argc, argv, "--csv"));
  return 0;
}
