// Reproduces Table IV: clustering accuracy of the federated methods on the
// real-world stand-ins as the number of local clusters L' grows (less
// statistical heterogeneity). Expected shape: every method degrades
// monotonically with L'; Fed-SC stays far above k-FED at every L'; the
// k-FED + local-PCA variants sit near chance throughout.

#include <cstdio>

#include "bench_util.h"
#include "core/fedsc.h"
#include "data/realworld_sim.h"
#include "fed/kfed.h"
#include "fed/partition.h"
#include "metrics/clustering_metrics.h"

namespace fedsc {
namespace {

// Z must be large enough that L' = 2 already satisfies the sample-count
// condition Z_l > d+1 of Theorem 1 (otherwise server-side sample scarcity
// inverts the trend); the degradation at large L' then comes from the
// paper's mechanism — a fixed per-device budget spread over more clusters.
constexpr int64_t kNumDevices = 200;

void RunDataset(const char* name, const Dataset& data, bench::Table* table) {
  const int64_t l_primes[] = {2, 4, 6, 8, 10};
  // One row per method; columns are L' values.
  std::vector<std::string> fedsc_ssc{name, "Fed-SC (SSC)"};
  std::vector<std::string> fedsc_tsc{name, "Fed-SC (TSC)"};
  std::vector<std::string> kfed{name, "k-FED"};
  std::vector<std::string> kfed_pca10{name, "k-FED + PCA-10"};
  std::vector<std::string> kfed_pca100{name, "k-FED + PCA-100"};

  for (int64_t l_prime : l_primes) {
    PartitionOptions partition;
    partition.num_devices = kNumDevices;
    partition.clusters_per_device = l_prime;
    partition.seed = 0x7AB'4444ULL + static_cast<uint64_t>(l_prime);
    auto fed = PartitionAcrossDevices(data, partition);
    if (!fed.ok()) {
      for (auto* row :
           {&fedsc_ssc, &fedsc_tsc, &kfed, &kfed_pca10, &kfed_pca100}) {
        row->push_back("-");
      }
      continue;
    }

    for (ScMethod central : {ScMethod::kSsc, ScMethod::kTsc}) {
      FedScOptions options;
      options.central_method = central;
      options.use_eigengap = false;
      options.max_local_clusters = l_prime;
      // The large-L' cells pool up to Z*L' samples at the server; a capped
      // ADMM budget keeps the sweep's wall-clock reasonable with no
      // measurable accuracy cost at these sizes.
      options.central_ssc.max_iterations = 100;
      options.central_ssc.tol = 1e-3;
      auto result = RunFedSc(*fed, data.num_clusters, options);
      auto& row = central == ScMethod::kSsc ? fedsc_ssc : fedsc_tsc;
      row.push_back(result.ok()
                        ? bench::Fmt(ClusteringAccuracy(
                              data.labels, result->global_labels))
                        : "-");
    }
    for (auto [pca_dim, row] :
         {std::pair<int64_t, std::vector<std::string>*>{0, &kfed},
          {10, &kfed_pca10},
          {100, &kfed_pca100}}) {
      KFedOptions options;
      options.local_k = l_prime;
      options.pca_dim = pca_dim;
      auto result = RunKFed(*fed, data.num_clusters, options);
      row->push_back(result.ok()
                         ? bench::Fmt(ClusteringAccuracy(
                               data.labels, result->global_labels))
                         : "-");
    }
  }
  for (auto& row :
       {fedsc_ssc, fedsc_tsc, kfed, kfed_pca10, kfed_pca100}) {
    table->AddRow(row);
  }
}

void Run(bool csv) {
  bench::Table table({"dataset", "method", "L'=2", "L'=4", "L'=6", "L'=8",
                      "L'=10"});

  EmnistSimOptions emnist;
  emnist.num_classes = 20;
  emnist.ambient_dim = 512;
  emnist.min_class_size = 200;
  emnist.max_class_size = 400;
  auto emnist_data = GenerateEmnistSim(emnist);
  if (emnist_data.ok()) RunDataset("EMNIST-sim", *emnist_data, &table);

  Coil100SimOptions coil;
  coil.num_classes = 30;
  coil.ambient_dim = 256;
  coil.images_per_class = 200;
  auto coil_data = GenerateCoil100Sim(coil);
  if (coil_data.ok()) RunDataset("COIL100-sim", *coil_data, &table);

  std::printf(
      "Table IV — accuracy (a%%) vs number of local clusters L' (Z=%ld)\n",
      static_cast<long>(kNumDevices));
  table.Print(csv);
}

}  // namespace
}  // namespace fedsc

int main(int argc, char** argv) {
  fedsc::bench::Observability observability(argc, argv);
  fedsc::Run(fedsc::bench::HasFlag(argc, argv, "--csv"));
  return 0;
}
