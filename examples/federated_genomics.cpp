// Scenario: medical centers clustering single-cell expression profiles
// without sharing patient data (the paper's motivating healthcare/genomics
// setting, Section I).
//
// Each of 40 centers holds profiles from a few cell types; expression
// profiles of one cell type approximately span a low-dimensional subspace
// of the (high-dimensional) gene space. The centers run Fed-SC: one round
// of communication, one random unit vector per detected local cell
// population. For contrast, the same federation also runs one-shot
// federated k-means (k-FED) — centroids are a poor summary of subspace
// structure, so it trails badly.
//
// Build & run:  ./build/examples/federated_genomics

#include <cstdio>

#include "core/fedsc.h"
#include "data/synthetic.h"
#include "fed/kfed.h"
#include "fed/partition.h"
#include "metrics/clustering_metrics.h"

int main() {
  using namespace fedsc;

  // 12 cell types; each type's expression program spans a 5-dimensional
  // subspace of a 400-gene panel; profiles carry measurement noise.
  SyntheticOptions genes;
  genes.ambient_dim = 400;
  genes.subspace_dim = 5;
  genes.num_subspaces = 12;
  genes.points_per_subspace = 180;
  genes.noise_stddev = 0.01;
  genes.seed = 2026;
  auto cohort = GenerateUnionOfSubspaces(genes);
  if (!cohort.ok()) {
    std::fprintf(stderr, "%s\n", cohort.status().ToString().c_str());
    return 1;
  }

  // 40 centers; each specializes in 2-3 cell types (tissue-specific labs).
  PartitionOptions partition;
  partition.num_devices = 40;
  partition.clusters_per_device = 2;
  partition.clusters_per_device_max = 3;
  partition.seed = 99;
  auto network = PartitionAcrossDevices(*cohort, partition);
  if (!network.ok()) {
    std::fprintf(stderr, "%s\n", network.status().ToString().c_str());
    return 1;
  }

  std::printf("Federated single-cell clustering: %lld profiles x %lld genes "
              "across %lld centers\n",
              static_cast<long long>(network->total_points),
              static_cast<long long>(genes.ambient_dim),
              static_cast<long long>(network->num_devices()));
  const auto clusters_per_center = network->ClustersPerDevice();
  int64_t min_l = clusters_per_center[0], max_l = clusters_per_center[0];
  for (int64_t l : clusters_per_center) {
    min_l = std::min(min_l, l);
    max_l = std::max(max_l, l);
  }
  std::printf("statistical heterogeneity: %lld <= L^(z) <= %lld of %lld "
              "cell types per center\n\n",
              static_cast<long long>(min_l), static_cast<long long>(max_l),
              static_cast<long long>(genes.num_subspaces));

  // Fed-SC, real-world mode: fixed upper bound on local cluster count.
  FedScOptions fed_options;
  fed_options.use_eigengap = false;
  fed_options.max_local_clusters = max_l;
  auto fedsc = RunFedSc(*network, genes.num_subspaces, fed_options);
  if (!fedsc.ok()) {
    std::fprintf(stderr, "%s\n", fedsc.status().ToString().c_str());
    return 1;
  }
  std::printf("Fed-SC (SSC server):\n");
  std::printf("  accuracy %.2f%%, NMI %.2f%%\n",
              ClusteringAccuracy(cohort->labels, fedsc->global_labels),
              NormalizedMutualInformation(cohort->labels,
                                          fedsc->global_labels));
  std::printf("  disclosed: %lld random unit vectors (%.1f kb uplink) — no "
              "raw profile leaves a center\n",
              static_cast<long long>(fedsc->total_samples),
              static_cast<double>(fedsc->comm.uplink_bits) / 1000.0);
  std::printf("  time: %.3fs across centers + %.3fs at the coordinator\n\n",
              fedsc->local_seconds, fedsc->central_seconds);

  // Baseline: one-shot federated k-means.
  KFedOptions kfed_options;
  kfed_options.local_k = max_l;
  auto kfed = RunKFed(*network, genes.num_subspaces, kfed_options);
  if (!kfed.ok()) {
    std::fprintf(stderr, "%s\n", kfed.status().ToString().c_str());
    return 1;
  }
  std::printf("k-FED (one-shot federated k-means):\n");
  std::printf("  accuracy %.2f%%, NMI %.2f%%\n",
              ClusteringAccuracy(cohort->labels, kfed->global_labels),
              NormalizedMutualInformation(cohort->labels,
                                          kfed->global_labels));
  std::printf("  (centroids cannot summarize subspace-shaped cell "
              "populations)\n");
  return 0;
}
