// Scenario: a fleet of smart cameras jointly organizing the objects they
// photograph (the paper's COIL100 experiment, Section VI-B). Each camera
// sees a handful of object classes under varying brightness/contrast; the
// images of one object, taken across poses, approximately span a
// low-dimensional subspace of pixel space.
//
// This example compares Fed-SC's two server algorithms (SSC vs TSC) and
// shows the connectivity advantage of the induced global affinity graph
// (Section IV-E): each uploaded sample stands for a whole local cluster, so
// the induced graph is denser and less prone to over-segmentation.
//
// Build & run:  ./build/examples/object_image_clustering

#include <cstdio>

#include "core/fedsc.h"
#include "data/realworld_sim.h"
#include "fed/partition.h"
#include "metrics/clustering_metrics.h"
#include "metrics/connectivity.h"
#include "sc/pipeline.h"

int main() {
  using namespace fedsc;

  Coil100SimOptions objects;
  objects.num_classes = 15;
  objects.ambient_dim = 256;   // 16x16 gray thumbnails
  objects.images_per_class = 60;
  objects.seed = 314;
  auto gallery = GenerateCoil100Sim(objects);
  if (!gallery.ok()) {
    std::fprintf(stderr, "%s\n", gallery.status().ToString().c_str());
    return 1;
  }

  PartitionOptions partition;
  partition.num_devices = 40;
  partition.clusters_per_device = 2;
  partition.clusters_per_device_max = 4;
  partition.seed = 2718;
  auto cameras = PartitionAcrossDevices(*gallery, partition);
  if (!cameras.ok()) {
    std::fprintf(stderr, "%s\n", cameras.status().ToString().c_str());
    return 1;
  }

  std::printf("Object gallery: %lld augmented images of %lld objects across "
              "%lld cameras\n\n",
              static_cast<long long>(cameras->total_points),
              static_cast<long long>(objects.num_classes),
              static_cast<long long>(cameras->num_devices()));

  for (ScMethod server : {ScMethod::kSsc, ScMethod::kTsc}) {
    FedScOptions options;
    options.central_method = server;
    options.use_eigengap = false;
    options.max_local_clusters = 4;
    auto result = RunFedSc(*cameras, objects.num_classes, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      continue;
    }
    auto connectivity = InducedConnectivity(*cameras, *result);
    std::printf("Fed-SC (%s server):\n",
                server == ScMethod::kSsc ? "SSC" : "TSC");
    std::printf("  accuracy %.2f%%, NMI %.2f%%\n",
                ClusteringAccuracy(gallery->labels, result->global_labels),
                NormalizedMutualInformation(gallery->labels,
                                            result->global_labels));
    if (connectivity.ok()) {
      std::printf("  induced graph connectivity: c = %.4f, c-bar = %.4f\n",
                  connectivity->min_lambda2, connectivity->mean_lambda2);
    }
    std::printf("  server saw %lld samples; time %.3fs\n\n",
                static_cast<long long>(result->total_samples),
                result->seconds);
  }

  // Centralized SSC on the pooled gallery, for the connectivity contrast.
  ScPipelineOptions central;
  central.method = ScMethod::kSsc;
  auto pooled = RunSubspaceClustering(gallery->points, objects.num_classes,
                                      central);
  if (pooled.ok()) {
    auto connectivity = GraphConnectivity(pooled->affinity, gallery->labels);
    std::printf("Centralized SSC (pooled images — what federation avoids):\n");
    std::printf("  accuracy %.2f%%, time %.3fs\n",
                ClusteringAccuracy(gallery->labels, pooled->labels),
                pooled->seconds);
    if (connectivity.ok()) {
      std::printf("  affinity connectivity: c-bar = %.4f (sparser graph, "
                  "over-segmentation risk)\n",
                  connectivity->mean_lambda2);
    }
  }
  return 0;
}
