// Quickstart: cluster high-dimensional data spread across a federated
// network with one round of communication.
//
//   1. generate a union-of-subspaces dataset,
//   2. partition it non-IID across devices,
//   3. run Fed-SC,
//   4. evaluate against ground truth and inspect the communication bill.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/fedsc.h"
#include "data/synthetic.h"
#include "fed/partition.h"
#include "metrics/clustering_metrics.h"

int main() {
  using namespace fedsc;

  // 1. L = 8 subspaces of dimension 4 in R^32, 100 points each.
  SyntheticOptions synth;
  synth.ambient_dim = 32;
  synth.subspace_dim = 4;
  synth.num_subspaces = 8;
  synth.points_per_subspace = 100;
  synth.seed = 42;
  auto data = GenerateUnionOfSubspaces(synth);
  if (!data.ok()) {
    std::fprintf(stderr, "data generation failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }

  // 2. 32 devices, each holding points from only 2 of the 8 clusters
  //    (statistical heterogeneity — Fed-SC's favorite regime).
  PartitionOptions partition;
  partition.num_devices = 32;
  partition.clusters_per_device = 2;
  partition.seed = 7;
  auto fed = PartitionAcrossDevices(*data, partition);
  if (!fed.ok()) {
    std::fprintf(stderr, "partition failed: %s\n",
                 fed.status().ToString().c_str());
    return 1;
  }

  // 3. One-shot federated subspace clustering with an SSC server.
  FedScOptions options;
  options.central_method = ScMethod::kSsc;
  auto result = RunFedSc(*fed, synth.num_subspaces, options);
  if (!result.ok()) {
    std::fprintf(stderr, "Fed-SC failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Evaluate.
  const double acc = ClusteringAccuracy(data->labels, result->global_labels);
  const double nmi =
      NormalizedMutualInformation(data->labels, result->global_labels);
  std::printf("Fed-SC on %lld points across %lld devices\n",
              static_cast<long long>(fed->total_points),
              static_cast<long long>(fed->num_devices()));
  std::printf("  accuracy            : %.2f%%\n", acc);
  std::printf("  NMI                 : %.2f%%\n", nmi);
  std::printf("  communication rounds: %lld (one-shot)\n",
              static_cast<long long>(result->comm.rounds));
  std::printf("  uplink              : %lld samples, %.1f kb\n",
              static_cast<long long>(result->total_samples),
              static_cast<double>(result->comm.uplink_bits) / 1000.0);
  std::printf("  downlink            : %.1f kb of cluster assignments\n",
              result->comm.downlink_bits / 1000.0);
  std::printf("  time                : %.3fs local + %.3fs server\n",
              result->local_seconds, result->central_seconds);
  return 0;
}
