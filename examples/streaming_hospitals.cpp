// Scenario: a hospital network grows over time. Each hospital registers
// with the coordinator when it comes online; the coordinator re-clusters
// the accumulated uploads without ever re-running another hospital's local
// phase (the stateful client/server API of core/server.h).
//
// Also demonstrates the Remark-2 privacy extension: the last cohort of
// hospitals uploads with (epsilon, delta)-differential privacy, and the
// output shows what that costs in accuracy.
//
// Build & run:  ./build/examples/streaming_hospitals

#include <cstdio>
#include <vector>

#include "core/server.h"
#include "data/synthetic.h"
#include "fed/partition.h"
#include "metrics/clustering_metrics.h"

int main() {
  using namespace fedsc;

  // 6 patient phenotypes, 5-dim expression programs in a 200-marker panel.
  SyntheticOptions synth;
  synth.ambient_dim = 200;
  synth.subspace_dim = 5;
  synth.num_subspaces = 6;
  synth.points_per_subspace = 150;
  synth.noise_stddev = 0.01;
  synth.seed = 11;
  auto cohort = GenerateUnionOfSubspaces(synth);
  if (!cohort.ok()) {
    std::fprintf(stderr, "%s\n", cohort.status().ToString().c_str());
    return 1;
  }
  PartitionOptions partition;
  partition.num_devices = 18;
  partition.clusters_per_device = 2;
  partition.seed = 13;
  auto network = PartitionAcrossDevices(*cohort, partition);
  if (!network.ok()) {
    std::fprintf(stderr, "%s\n", network.status().ToString().c_str());
    return 1;
  }

  FedScOptions options;
  FedScServer server(synth.num_subspaces, options);
  std::vector<FedScClient> hospitals;
  hospitals.reserve(static_cast<size_t>(network->num_devices()));
  Rng rng(17);
  for (int64_t z = 0; z < network->num_devices(); ++z) {
    hospitals.emplace_back(network->points[static_cast<size_t>(z)], options,
                           rng.Next());
  }

  auto evaluate = [&](int64_t online) {
    std::vector<std::vector<int64_t>> device_labels(
        static_cast<size_t>(network->num_devices()));
    int64_t labeled_points = 0;
    double correct = 0.0;
    for (int64_t z = 0; z < online; ++z) {
      auto assignments = server.AssignmentsFor(z);
      if (!assignments.ok()) continue;
      auto labels =
          hospitals[static_cast<size_t>(z)].ApplyAssignments(*assignments);
      if (!labels.ok()) continue;
      // Per-device accuracy against ground truth (alignment computed over
      // the online subset only).
      device_labels[static_cast<size_t>(z)] = std::move(labels).value();
      labeled_points +=
          static_cast<int64_t>(device_labels[static_cast<size_t>(z)].size());
    }
    // Build truth/pred over online devices.
    std::vector<int64_t> truth;
    std::vector<int64_t> pred;
    for (int64_t z = 0; z < online; ++z) {
      const auto& labels = device_labels[static_cast<size_t>(z)];
      for (size_t i = 0; i < labels.size(); ++i) {
        truth.push_back(network->labels[static_cast<size_t>(z)][i]);
        pred.push_back(labels[i]);
      }
    }
    correct = truth.empty() ? 0.0 : ClusteringAccuracy(truth, pred);
    std::printf("  %lld hospitals online, %lld patients labeled, "
                "accuracy %.2f%%\n",
                static_cast<long long>(online),
                static_cast<long long>(labeled_points), correct);
  };

  std::printf("Hospitals joining in three waves (6 + 6 + 6):\n");
  int64_t online = 0;
  for (int wave = 0; wave < 3; ++wave) {
    for (int64_t i = 0; i < 6; ++i) {
      auto upload = hospitals[static_cast<size_t>(online)].ProduceUpload();
      if (!upload.ok()) {
        std::fprintf(stderr, "%s\n", upload.status().ToString().c_str());
        return 1;
      }
      if (auto id = server.AddUpload(*upload); !id.ok()) {
        std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
        return 1;
      }
      ++online;
    }
    if (auto status = server.Cluster(); !status.ok()) {
      std::printf("  %lld hospitals online: %s\n",
                  static_cast<long long>(online),
                  status.ToString().c_str());
      continue;
    }
    evaluate(online);
  }

  // The privacy-utility tradeoff (Remark 2): rerun the whole federation
  // with DP uploads at several epsilon.
  std::printf("\nOne-shot run with differentially-private uploads:\n");
  for (double epsilon : {1.0, 0.5, 0.25}) {
    FedScOptions dp_options;
    dp_options.use_dp = true;
    dp_options.dp.epsilon = epsilon;
    dp_options.dp.delta = 1e-5;
    auto result = RunFedSc(*network, synth.num_subspaces, dp_options);
    if (result.ok()) {
      std::printf("  epsilon=%.2f: accuracy %.2f%% (vs non-private "
                  "below)\n",
                  epsilon,
                  ClusteringAccuracy(cohort->labels, result->global_labels));
    }
  }
  auto clean = RunFedSc(*network, synth.num_subspaces, options);
  if (clean.ok()) {
    std::printf("  non-private : accuracy %.2f%%\n",
                ClusteringAccuracy(cohort->labels, clean->global_labels));
  }
  std::printf("\n(one-shot DP on full sample vectors is costly — the "
              "tradeoff the paper's conclusion flags as future work)\n");
  return 0;
}
