// Checking Section V's theory on a concrete federation: computes the
// quantities of Definitions 1-5 (canonical angles, subspace affinity,
// subspace incoherence, inradius, active sets) and the Corollary 1/2
// affinity bounds, then verifies that a federation satisfying the bounds
// indeed clusters exactly.
//
// Build & run:  ./build/examples/theory_check

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/fedsc.h"
#include "core/theory.h"
#include "data/synthetic.h"
#include "fed/partition.h"
#include "metrics/clustering_metrics.h"

int main() {
  using namespace fedsc;

  SyntheticOptions synth;
  synth.ambient_dim = 24;
  synth.subspace_dim = 3;
  synth.num_subspaces = 5;
  synth.points_per_subspace = 90;
  synth.seed = 1234;
  auto data = GenerateUnionOfSubspaces(synth);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const int64_t num_subspaces = synth.num_subspaces;
  const double d = static_cast<double>(synth.subspace_dim);

  // --- Definition 5: pairwise subspace affinities ---
  double max_affinity = 0.0;
  std::printf("pairwise subspace affinities (max possible sqrt(d) = %.3f):\n",
              std::sqrt(d));
  for (int64_t a = 0; a < num_subspaces; ++a) {
    for (int64_t b = a + 1; b < num_subspaces; ++b) {
      auto aff = SubspaceAffinity(data->bases[static_cast<size_t>(a)],
                                  data->bases[static_cast<size_t>(b)]);
      if (!aff.ok()) continue;
      max_affinity = std::max(max_affinity, *aff);
      std::printf("  aff(S_%lld, S_%lld) = %.4f\n", static_cast<long long>(a),
                  static_cast<long long>(b), *aff);
    }
  }

  // --- Definition 4: inradius of the first subspace's point set ---
  std::vector<int64_t> first_cluster;
  for (size_t i = 0; i < data->labels.size(); ++i) {
    if (data->labels[i] == 0) first_cluster.push_back(static_cast<int64_t>(i));
  }
  const Matrix x0 = data->points.GatherCols(first_cluster);
  auto inradius = InradiusEstimate(x0);
  if (inradius.ok()) {
    std::printf("\ninradius estimate r(P(X_0)) = %.4f (well-dispersed when "
                "close to 1/sqrt(d) = %.4f)\n",
                *inradius, 1.0 / std::sqrt(d));
  }

  // --- Definition 1: subspace incoherence of X_0 vs all other points ---
  std::vector<int64_t> other_columns;
  for (size_t i = 0; i < data->labels.size(); ++i) {
    if (data->labels[i] != 0) other_columns.push_back(static_cast<int64_t>(i));
  }
  auto mu = SubspaceIncoherence(x0, data->points.GatherCols(other_columns),
                                data->bases[0]);
  if (mu.ok() && inradius.ok()) {
    std::printf("subspace incoherence mu(X_0) = %.4f\n", *mu);
    std::printf("deterministic condition r > mu: %s\n",
                *inradius > *mu ? "satisfied" : "NOT satisfied");
  }

  // --- Definition 2 + Corollaries: the federated picture ---
  PartitionOptions partition;
  partition.num_devices = 30;
  partition.clusters_per_device = 2;
  partition.seed = 4321;
  auto fed = PartitionAcrossDevices(*data, partition);
  if (!fed.ok()) {
    std::fprintf(stderr, "%s\n", fed.status().ToString().c_str());
    return 1;
  }
  const auto active = ComputeActiveSets(*fed);
  std::printf("\nactive sets alpha(l) over %lld devices (L' = 2):\n",
              static_cast<long long>(fed->num_devices()));
  for (size_t l = 0; l < active.size(); ++l) {
    std::printf("  alpha(%lld) = {", static_cast<long long>(l));
    for (size_t k = 0; k < active[l].size(); ++k) {
      std::printf("%s%lld", k == 0 ? "" : ", ",
                  static_cast<long long>(active[l][k]));
    }
    std::printf("}\n");
  }

  const auto z_per_cluster = fed->DevicesPerCluster();
  const int64_t z_prime =
      *std::min_element(z_per_cluster.begin(), z_per_cluster.end());
  const double r_prime = 2.0;  // each device uploads ~L' samples
  const double bound_ssc = Corollary1AffinityBound(
      d, static_cast<double>(z_prime), static_cast<double>(num_subspaces),
      r_prime);
  const double bound_tsc = Corollary2AffinityBound(
      d, static_cast<double>(z_prime), static_cast<double>(num_subspaces),
      r_prime);
  std::printf("\nZ' = %lld devices per subspace\n",
              static_cast<long long>(z_prime));
  std::printf("max pairwise affinity      = %.4f\n", max_affinity);
  std::printf("Corollary 1 bound (SSC)    = %.4f  (x constants c/t)\n",
              bound_ssc);
  std::printf("Corollary 2 bound (TSC)    = %.4f\n", bound_tsc);

  // --- All of the above in one call ---
  auto check = CheckTheoremConditions(*data, *fed);
  if (check.ok()) {
    int satisfied = 0;
    for (bool ok : check->deterministic_ok) satisfied += ok;
    std::printf("\nCheckTheoremConditions: deterministic condition holds for "
                "%d/%lld clusters; max affinity %.4f vs Corollary bounds "
                "%.4f (SSC) / %.4f (TSC)\n",
                satisfied, static_cast<long long>(num_subspaces),
                check->max_affinity, check->corollary1_bound,
                check->corollary2_bound);
  }

  // --- The punchline: the scheme clusters exactly ---
  auto result = RunFedSc(*fed, num_subspaces, FedScOptions{});
  if (result.ok()) {
    std::printf("\nFed-SC accuracy on this federation: %.2f%%\n",
                ClusteringAccuracy(data->labels, result->global_labels));
  }
  return 0;
}
