#!/usr/bin/env bash
# Regenerates BENCH_linalg.json, the committed performance baseline for the
# matrix-product and factorization engines: blocked-vs-panel GEMM GFLOP/s,
# the TT packing-vs-copy comparison, the Syrk-vs-GEMM Gram ratio, the
# blocked-vs-unblocked QR and tridiagonalization rates, the
# QR-preconditioned-vs-plain Jacobi SVD rates, the tall-D basis-estimation
# before/after, end-to-end RunFedSc wall time, and the exact-vs-sketched
# central-clustering N-sweep. Run after any change to
# the linalg kernels and commit the refreshed file so perf regressions show
# up in review as a diff, not a surprise.
#
# The baseline MUST come from a Release build of the fedsc kernels: a Debug
# or unset-CMAKE_BUILD_TYPE run produces numbers that are 5-20x off and the
# acceptance floors become meaningless. This script therefore configures its
# own Release tree (build-release/ by default, override with BENCH_BUILD_DIR)
# and refuses to run benches from a tree whose cached CMAKE_BUILD_TYPE is
# anything else. Note google-benchmark's own JSON context reports the
# *benchmark library's* build type, not fedsc's (Debian ships a "debug"
# libbenchmark), so the context.library_build_type recorded below is taken
# from the verified CMake cache instead of trusted from the library.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BENCH_BUILD_DIR:-${repo_root}/build-release}"

if [ ! -f "${build_dir}/CMakeCache.txt" ]; then
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release
fi

build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
  "${build_dir}/CMakeCache.txt" | head -n 1)"
if [ "${build_type}" != "Release" ]; then
  echo "bench_baseline.sh: refusing to benchmark a non-Release build." >&2
  echo "  ${build_dir}/CMakeCache.txt has CMAKE_BUILD_TYPE='${build_type}'" >&2
  echo "  (expected 'Release'). Point BENCH_BUILD_DIR at a Release tree or" >&2
  echo "  remove '${build_dir}' and rerun to let this script configure one." >&2
  exit 1
fi

cmake --build "${build_dir}" --target micro_linalg micro_sc comm_cost \
  fig_robustness fig_scaling -j "$(nproc)"

raw_dir="$(mktemp -d)"
trap 'rm -rf "${raw_dir}"' EXIT

# The product engines plus the level-3 factorization stack feed the
# baseline; the sparse/Lanczos benches stay out so a refresh stays bounded.
# The 2s minimum measuring time (default 0.5s) smooths out background-load
# bursts on a shared single-core host — the acceptance ratios below compare
# rates across benches, so a burst hitting only one of them skews a floor.
"${build_dir}/bench/micro_linalg" \
  --benchmark_filter='BM_Gemm|BM_Syrk|BM_QrVariant|BM_SvdTall|BM_EigVariant|BM_EigValuesVariant|BM_BatchedBasis' \
  --benchmark_min_time=2 \
  --benchmark_format=json > "${raw_dir}/linalg.json"
"${build_dir}/bench/micro_sc" \
  --benchmark_filter='BM_RunFedSc|BM_FedScBasisTallD' \
  --benchmark_format=json > "${raw_dir}/sc.json"
# Serialized-codec accuracy-vs-bits frontier (deterministic byte counts, so
# the >= 2x basis-reduction floor is a correctness gate, not a perf one).
"${build_dir}/bench/comm_cost" --json-out="${raw_dir}/comm.json" \
  > /dev/null
# Byzantine-defense colluding sweep (deterministic accuracies, so the
# defended-accuracy floors are correctness gates, not perf ones).
"${build_dir}/bench/fig_robustness" \
  --json-out="${raw_dir}/robustness.json" > /dev/null 2>&1
# Central-clustering N-sweep, exact vs sketched engine. The exact engine is
# measured only up to its single-core feasibility cap; the sketched floors
# bind at the largest N where both ran (bench/fig_scaling.cc).
"${build_dir}/bench/fig_scaling" \
  --json-out="${raw_dir}/scaling.json" > /dev/null

python3 - "${raw_dir}/linalg.json" "${raw_dir}/sc.json" "${build_type}" \
  "${repo_root}/BENCH_linalg.json" "${raw_dir}/comm.json" \
  "${raw_dir}/robustness.json" "${raw_dir}/scaling.json" <<'PY'
import json
import sys

linalg = json.load(open(sys.argv[1]))
sc = json.load(open(sys.argv[2]))
fedsc_build_type = sys.argv[3].lower()


def rows(report):
    return {
        b["name"]: b
        for b in report["benchmarks"]
        if b.get("run_type", "iteration") == "iteration"
    }


L, S = rows(linalg), rows(sc)


def gflops(name):
    return round(L[name]["items_per_second"] / 1e9, 3)


def ms(row):
    unit = row.get("time_unit", "ns")
    scale = {"ns": 1e6, "us": 1e3, "ms": 1.0, "s": 1e-3}[unit]
    return round(row["real_time"] / scale, 3)


sizes = [64, 256, 512, 1024]
QR_SHAPES = [(m, n) for m in (256, 1024, 4096) for n in (8, 32, 128)]
SVD_SHAPES = [(1024, 32), (1024, 128), (4096, 32)]
EIG_SIZES = [256, 512]

context = {
    k: linalg["context"].get(k)
    for k in ("host_name", "num_cpus", "mhz_per_cpu")
    if k in linalg["context"]
}
# Recorded from the verified CMake cache of the tree that built the fedsc
# kernels -- NOT from google-benchmark's self-reported library_build_type,
# which describes libbenchmark itself (Debian ships a "debug" one).
context["library_build_type"] = fedsc_build_type

out = {
    "schema": "fedsc-bench-baseline-v1",
    "generated_by": "scripts/bench_baseline.sh",
    "context": context,
    # Blocked packed engine (the kAuto path at these sizes), 1 and 8 threads.
    "gemm_blocked_gflops": {
        str(n): {
            "1": gflops(f"BM_GemmNNThreads/{n}/1"),
            "8": gflops(f"BM_GemmNNThreads/{n}/8"),
        }
        for n in sizes
    },
    # Legacy column-panel engine, single thread (the pre-blocked baseline).
    "gemm_panel_gflops": {str(n): gflops(f"BM_GemmNNPanel/{n}") for n in sizes},
    # A^T B^T: packing absorbs the transpose vs the panel path's B copy.
    "gemm_tt_gflops": {
        str(n): {
            "packed": gflops(f"BM_GemmTT/{n}/0"),
            "panel_copy": gflops(f"BM_GemmTT/{n}/1"),
        }
        for n in (256, 512)
    },
    # Gram hot path: Syrk (lower triangle + mirror) vs full GEMM. Both rates
    # count the same useful 2*n^2*k flops, so ratio > 1 is end-to-end win.
    "gram": {},
    # Blocked compact-WY vs unblocked Householder QR, single thread. Both
    # rates count the same 4 n^2 (m - n/3) factorization+thin-Q flops, so
    # speedup is the blocked engine's end-to-end win at that shape.
    "qr": {},
    # QR-preconditioned vs plain one-sided Jacobi on tall-skinny inputs.
    # Both rates count the same 6 m n^2 + n^3 useful flops.
    "svd_tall": {},
    # Blocked (latrd-style) vs element-wise tridiagonalization inside the
    # full eigendecomposition and the values-only path (4 n^3 / 3 flops).
    "eig_tridiag": {},
    # Fed-SC local basis estimation at D=1024, n_i=50: the before/after of
    # QR preconditioning at the pipeline call site.
    "basis_tall_d": {},
    "run_fedsc_ms": {},
}
# Per-ISA micro-kernel rates for the blocked GEMM engine (BM_GemmIsa pins
# GemmOptions::isa to each tier). Tiers the bench host cannot execute are
# skipped by the bench and simply absent here; "generic" always runs.
ISA_TIERS = {0: "generic", 1: "avx2", 2: "avx512"}
out["isa_dispatch"] = {}
for n in (512, 1024):
    entry = {}
    for idx, tier in ISA_TIERS.items():
        row = L.get(f"BM_GemmIsa/{n}/{idx}")
        if row is None or row.get("error_occurred"):
            continue
        entry[tier] = round(row["items_per_second"] / 1e9, 3)
    out["isa_dispatch"][str(n)] = entry
# Batched basis estimation over D=256 x n=32 rank-4 panels: the kAuto Gram
# route vs the looped per-panel SVD (BM_BatchedBasis; rates are panels/s).
out["batched_basis"] = {}
for batch in (64, 1024):
    looped = L[f"BM_BatchedBasis/{batch}/0"]["items_per_second"]
    batched = L[f"BM_BatchedBasis/{batch}/1"]["items_per_second"]
    out["batched_basis"][str(batch)] = {
        "shape": "D=256,n=32,rank=4",
        "looped_panels_per_s": round(looped, 1),
        "batched_panels_per_s": round(batched, 1),
        "speedup": round(batched / looped, 3),
    }
for n in sizes:
    syrk = gflops(f"BM_SyrkGram/{n}")
    gemm = gflops(f"BM_GemmGram/{n}")
    out["gram"][str(n)] = {
        "syrk_gflops": syrk,
        "gemm_gflops": gemm,
        "ratio": round(syrk / gemm, 3),
    }
for m, n in QR_SHAPES:
    unblocked = gflops(f"BM_QrVariant/{m}/{n}/0")
    blocked = gflops(f"BM_QrVariant/{m}/{n}/1")
    out["qr"][f"{m}x{n}"] = {
        "blocked_gflops": blocked,
        "unblocked_gflops": unblocked,
        "speedup": round(blocked / unblocked, 3),
    }
for m, n in SVD_SHAPES:
    plain = gflops(f"BM_SvdTall/{m}/{n}/0")
    precond = gflops(f"BM_SvdTall/{m}/{n}/1")
    out["svd_tall"][f"{m}x{n}"] = {
        "precond_gflops": precond,
        "plain_gflops": plain,
        "speedup": round(precond / plain, 3),
    }
for n in EIG_SIZES:
    entry = {}
    for key, bench in (
        ("full", "BM_EigVariant"),
        ("values", "BM_EigValuesVariant"),
    ):
        unblocked = gflops(f"{bench}/{n}/0")
        blocked = gflops(f"{bench}/{n}/1")
        entry[key] = {
            "blocked_gflops": blocked,
            "unblocked_gflops": unblocked,
            "speedup": round(blocked / unblocked, 3),
        }
    out["eig_tridiag"][str(n)] = entry
plain_ms = ms(S["BM_FedScBasisTallD/0"])
precond_ms = ms(S["BM_FedScBasisTallD/1"])
out["basis_tall_d"] = {
    "shape": "D=1024,n=50,k=4",
    "plain_ms": plain_ms,
    "precond_ms": precond_ms,
    "speedup": round(plain_ms / precond_ms, 3),
}
for name, row in sorted(S.items()):
    if not name.startswith("BM_RunFedSc"):
        continue
    # Key by the scenario, e.g. "RunFedSc/40" or "RunFedScTallD".
    key = name[len("BM_"):]
    out["run_fedsc_ms"][key] = {
        "ms": ms(row),
        "label": row.get("label", ""),
    }
# Serialized uplink codec frontier from bench/comm_cost.cc --json-out.
out["comm_cost"] = json.load(open(sys.argv[5]))["comm_cost"]
# Byzantine-defense colluding sweep from bench/fig_robustness.cc --json-out.
out["robustness"] = json.load(open(sys.argv[6]))["robustness"]
# Exact-vs-sketched central-clustering N-sweep from bench/fig_scaling.cc.
out["central_scaling"] = json.load(open(sys.argv[7]))["central_scaling"]
out["acceptance"] = {
    "gemm512_blocked_over_panel": round(
        out["gemm_blocked_gflops"]["512"]["1"] / out["gemm_panel_gflops"]["512"],
        3,
    ),
    "gram512_syrk_over_gemm": out["gram"]["512"]["ratio"],
    # Worst blocked-QR speedup over the shapes kAuto actually dispatches
    # blocked (m >= 512 and n >= kBlockedQrMinCols = 16; the n = 8 column
    # tracks why skinnier panels stay unblocked).
    "qr_blocked_over_unblocked_min_m512": min(
        out["qr"][f"{m}x{n}"]["speedup"]
        for m, n in QR_SHAPES
        if m >= 512 and n >= 16
    ),
    # Worst preconditioned-SVD speedup over the tall shapes (m/n >= 8).
    "svd_precond_over_plain_min_aspect8": min(
        out["svd_tall"][f"{m}x{n}"]["speedup"]
        for m, n in SVD_SHAPES
        if m >= 8 * n
    ),
    # Best runtime-dispatched tier over the pinned-generic kernel at n=512
    # (the kAuto win on this host), and the batched-vs-looped basis speedup
    # at the fleet-scale batch.
    "isa_best_over_generic_512": round(
        max(out["isa_dispatch"]["512"].values())
        / out["isa_dispatch"]["512"]["generic"],
        3,
    ),
    "batched_basis_speedup_1024": out["batched_basis"]["1024"]["speedup"],
}

with open(sys.argv[4], "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(f"wrote {sys.argv[4]}")
PY

python3 "${repo_root}/scripts/check_bench_json.py" \
  "${repo_root}/BENCH_linalg.json"
