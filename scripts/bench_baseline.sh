#!/usr/bin/env bash
# Regenerates BENCH_linalg.json, the committed performance baseline for the
# matrix-product engines: blocked-vs-panel GEMM GFLOP/s across sizes and
# thread counts, the TT packing-vs-copy comparison, the Syrk-vs-GEMM Gram
# ratio, and end-to-end RunFedSc wall time. Run after any change to the
# linalg kernels and commit the refreshed file so perf regressions show up
# in review as a diff, not a surprise.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BENCH_BUILD_DIR:-${repo_root}/build}"

if [ ! -d "${build_dir}" ]; then
  cmake -S "${repo_root}" -B "${build_dir}"
fi
cmake --build "${build_dir}" --target micro_linalg micro_sc -j "$(nproc)"

raw_dir="$(mktemp -d)"
trap 'rm -rf "${raw_dir}"' EXIT

# Only the product-engine benches feed the baseline; the SVD/eigen/sparse
# benches stay out so a refresh takes seconds, not minutes.
"${build_dir}/bench/micro_linalg" \
  --benchmark_filter='BM_Gemm|BM_Syrk' \
  --benchmark_format=json > "${raw_dir}/linalg.json"
"${build_dir}/bench/micro_sc" \
  --benchmark_filter='BM_RunFedSc' \
  --benchmark_format=json > "${raw_dir}/sc.json"

python3 - "${raw_dir}/linalg.json" "${raw_dir}/sc.json" \
  "${repo_root}/BENCH_linalg.json" <<'PY'
import json
import sys

linalg = json.load(open(sys.argv[1]))
sc = json.load(open(sys.argv[2]))


def rows(report):
    return {
        b["name"]: b
        for b in report["benchmarks"]
        if b.get("run_type", "iteration") == "iteration"
    }


L, S = rows(linalg), rows(sc)


def gflops(name):
    return round(L[name]["items_per_second"] / 1e9, 3)


def ms(row):
    unit = row.get("time_unit", "ns")
    scale = {"ns": 1e6, "us": 1e3, "ms": 1.0, "s": 1e-3}[unit]
    return round(row["real_time"] / scale, 3)


sizes = [64, 256, 512, 1024]
out = {
    "schema": "fedsc-bench-baseline-v1",
    "generated_by": "scripts/bench_baseline.sh",
    "context": {
        k: linalg["context"].get(k)
        for k in ("host_name", "num_cpus", "mhz_per_cpu", "library_build_type")
        if k in linalg["context"]
    },
    # Blocked packed engine (the kAuto path at these sizes), 1 and 8 threads.
    "gemm_blocked_gflops": {
        str(n): {
            "1": gflops(f"BM_GemmNNThreads/{n}/1"),
            "8": gflops(f"BM_GemmNNThreads/{n}/8"),
        }
        for n in sizes
    },
    # Legacy column-panel engine, single thread (the pre-blocked baseline).
    "gemm_panel_gflops": {str(n): gflops(f"BM_GemmNNPanel/{n}") for n in sizes},
    # A^T B^T: packing absorbs the transpose vs the panel path's B copy.
    "gemm_tt_gflops": {
        str(n): {
            "packed": gflops(f"BM_GemmTT/{n}/0"),
            "panel_copy": gflops(f"BM_GemmTT/{n}/1"),
        }
        for n in (256, 512)
    },
    # Gram hot path: Syrk (lower triangle + mirror) vs full GEMM. Both rates
    # count the same useful 2*n^2*k flops, so ratio > 1 is end-to-end win.
    "gram": {},
    "run_fedsc_ms": {},
}
for n in sizes:
    syrk = gflops(f"BM_SyrkGram/{n}")
    gemm = gflops(f"BM_GemmGram/{n}")
    out["gram"][str(n)] = {
        "syrk_gflops": syrk,
        "gemm_gflops": gemm,
        "ratio": round(syrk / gemm, 3),
    }
for name, row in sorted(S.items()):
    points = name.split("/")[1]
    out["run_fedsc_ms"][points] = {
        "ms": ms(row),
        "label": row.get("label", ""),
    }
out["acceptance"] = {
    "gemm512_blocked_over_panel": round(
        out["gemm_blocked_gflops"]["512"]["1"] / out["gemm_panel_gflops"]["512"],
        3,
    ),
    "gram512_syrk_over_gemm": out["gram"]["512"]["ratio"],
}

with open(sys.argv[3], "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(f"wrote {sys.argv[3]}")
PY

python3 "${repo_root}/scripts/check_bench_json.py" \
  "${repo_root}/BENCH_linalg.json"
