#!/usr/bin/env python3
"""Validates the committed BENCH_linalg.json performance baseline.

Stdlib only. Checks the schema produced by scripts/bench_baseline.sh: every
tracked size is present, every rate is a positive finite number, the derived
ratios are consistent with their components, and the acceptance floors for
the blocked-GEMM and Syrk-Gram speedups hold. Wired into scripts/run_all.sh
so a refresh that drops a field or regresses past a floor fails loudly.
"""

import argparse
import json
import math
import sys

GEMM_SIZES = ("64", "256", "512", "1024")
TT_SIZES = ("256", "512")
THREADS = ("1", "8")

# Floors for the ratios recorded by the run that produced the baseline.
MIN_GEMM512_BLOCKED_OVER_PANEL = 2.0
MIN_GRAM512_SYRK_OVER_GEMM = 1.5

_errors = []


def err(msg):
    _errors.append(msg)


def positive(value, what):
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        err(f"{what}: expected a number, got {value!r}")
        return False
    if not math.isfinite(value) or value <= 0.0:
        err(f"{what}: expected a positive finite number, got {value!r}")
        return False
    return True


def check(doc):
    if doc.get("schema") != "fedsc-bench-baseline-v1":
        err(f"unexpected schema id: {doc.get('schema')!r}")

    blocked = doc.get("gemm_blocked_gflops", {})
    panel = doc.get("gemm_panel_gflops", {})
    for n in GEMM_SIZES:
        for t in THREADS:
            positive(
                blocked.get(n, {}).get(t), f"gemm_blocked_gflops[{n}][{t}]"
            )
        positive(panel.get(n), f"gemm_panel_gflops[{n}]")

    tt = doc.get("gemm_tt_gflops", {})
    for n in TT_SIZES:
        for kind in ("packed", "panel_copy"):
            positive(tt.get(n, {}).get(kind), f"gemm_tt_gflops[{n}][{kind}]")

    gram = doc.get("gram", {})
    for n in GEMM_SIZES:
        entry = gram.get(n, {})
        ok = positive(entry.get("syrk_gflops"), f"gram[{n}].syrk_gflops")
        ok &= positive(entry.get("gemm_gflops"), f"gram[{n}].gemm_gflops")
        ok &= positive(entry.get("ratio"), f"gram[{n}].ratio")
        if ok:
            derived = entry["syrk_gflops"] / entry["gemm_gflops"]
            if abs(derived - entry["ratio"]) > 0.01:
                err(
                    f"gram[{n}].ratio {entry['ratio']} inconsistent with "
                    f"syrk/gemm = {derived:.3f}"
                )

    fedsc = doc.get("run_fedsc_ms", {})
    if not fedsc:
        err("run_fedsc_ms is empty: no end-to-end wall time recorded")
    for points, entry in fedsc.items():
        positive(entry.get("ms"), f"run_fedsc_ms[{points}].ms")

    acceptance = doc.get("acceptance", {})
    g = acceptance.get("gemm512_blocked_over_panel")
    if positive(g, "acceptance.gemm512_blocked_over_panel"):
        if g < MIN_GEMM512_BLOCKED_OVER_PANEL:
            err(
                f"blocked GEMM n=512 speedup {g} below the "
                f"{MIN_GEMM512_BLOCKED_OVER_PANEL}x floor"
            )
    s = acceptance.get("gram512_syrk_over_gemm")
    if positive(s, "acceptance.gram512_syrk_over_gemm"):
        if s < MIN_GRAM512_SYRK_OVER_GEMM:
            err(
                f"Syrk Gram n=512 speedup {s} below the "
                f"{MIN_GRAM512_SYRK_OVER_GEMM}x floor"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "path", nargs="?", default="BENCH_linalg.json",
        help="baseline file to validate",
    )
    args = parser.parse_args()

    try:
        with open(args.path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{args.path}: {e}", file=sys.stderr)
        return 1

    check(doc)
    if _errors:
        for msg in _errors:
            print(f"{args.path}: {msg}", file=sys.stderr)
        return 1
    print(f"{args.path}: baseline OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
