#!/usr/bin/env python3
"""Validates the committed BENCH_linalg.json performance baseline.

Stdlib only. Checks the schema produced by scripts/bench_baseline.sh: the
baseline comes from a Release build, every tracked size/shape is present,
every rate is a positive finite number, the derived ratios are consistent
with their components, the acceptance floors for the blocked-GEMM,
Syrk-Gram, blocked-QR, and preconditioned-SVD speedups hold, and the
Byzantine-defense accuracy floors on the colluding robustness sweep hold. Wired into
scripts/run_all.sh so a refresh that drops a field, regresses past a floor,
or was generated from a non-Release tree fails loudly.
"""

import argparse
import json
import math
import sys

GEMM_SIZES = ("64", "256", "512", "1024")
TT_SIZES = ("256", "512")
THREADS = ("1", "8")
QR_SHAPES = tuple(f"{m}x{n}" for m in (256, 1024, 4096) for n in (8, 32, 128))
SVD_SHAPES = ("1024x32", "1024x128", "4096x32")
EIG_SIZES = ("256", "512")

# Floors for the ratios recorded by the run that produced the baseline.
MIN_GEMM512_BLOCKED_OVER_PANEL = 2.0
MIN_GRAM512_SYRK_OVER_GEMM = 1.5
# Blocked compact-WY QR must at least match the unblocked engine on every
# shape kAuto dispatches blocked with m >= 512 (n >= kBlockedQrMinCols = 16;
# skinnier panels have no trailing matrix and stay unblocked by design).
MIN_QR_BLOCKED_OVER_UNBLOCKED_M512 = 1.0
# QR preconditioning must at least halve the tall-skinny Jacobi SVD wall
# time on every shape with aspect ratio m/n >= 8.
MIN_SVD_PRECOND_OVER_PLAIN_ASPECT8 = 2.0
# Sizes the per-ISA GEMM sweep (BM_GemmIsa) must report, the tiers a host
# may report (generic is mandatory; SIMD tiers appear only where the bench
# host can execute them), and the floor: the best runtime-dispatched tier
# must beat the pinned-generic kernel by >= 1.25x at n=512, single thread.
ISA_SIZES = ("512", "1024")
ISA_TIERS = ("generic", "avx2", "avx512")
MIN_ISA_BEST_OVER_GENERIC_512 = 1.25
# Batch sizes the batched-basis sweep (BM_BatchedBasis, D=256 x n=32 rank-4
# panels) must report, and the floor: the batched Gram engine must be >= 2x
# the looped per-panel SVD at the fleet-scale batch of 1024.
BATCHED_BASIS_BATCHES = ("64", "1024")
MIN_BATCHED_BASIS_SPEEDUP_1024 = 2.0
# The kBasisCoeffs codec must cut serialized uplink bytes at least in half
# vs raw f64 at D=1024, m=4 (bench/comm_cost.cc accuracy-vs-bits frontier).
MIN_BASIS_UPLINK_REDUCTION = 2.0
# Byzantine-defense floors on the colluding sweep (bench/fig_robustness.cc
# `robustness` section): at the 20% colluding rate the defended run must
# beat the undefended one by at least this many accuracy points, and stay
# within this many points of the fault-free run.
MIN_DEFENDED_MARGIN_AT_02 = 10.0
MAX_DEFENDED_GAP_TO_CLEAN_AT_02 = 5.0
# Colluding rates the robustness sweep must report.
ROBUSTNESS_RATES = ("0.0", "0.1", "0.2", "0.3")
# Pooled-sample counts the central-scaling sweep (bench/fig_scaling.cc)
# must report. The exact engine is measured only while feasible on one
# core; skipped points must say so explicitly (exact_skipped), and the
# acceptance pair is taken at the largest N where both engines ran.
SCALING_NS = ("2000", "10000", "50000", "100000")
# Sketched-vs-exact floors at the largest compared N: the sketched engine
# must be at least this much faster while staying within this many ACC
# points of the exact one.
MIN_SKETCHED_SPEEDUP = 10.0
MAX_SKETCHED_ACC_GAP = 2.0
# Codecs the comm_cost frontier must report (bench/comm_cost.cc RunFrontier).
COMM_CODECS = (
    "raw_f64", "raw_f32", "quant_16", "quant_8", "quant_4", "quant_2",
    "basis",
)

_errors = []


def err(msg):
    _errors.append(msg)


def positive(value, what):
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        err(f"{what}: expected a number, got {value!r}")
        return False
    if not math.isfinite(value) or value <= 0.0:
        err(f"{what}: expected a positive finite number, got {value!r}")
        return False
    return True


def check_ratio_entry(entry, where, num_key, den_key, ratio_key):
    """Checks num/den/ratio are positive and ratio == num/den."""
    ok = positive(entry.get(num_key), f"{where}.{num_key}")
    ok &= positive(entry.get(den_key), f"{where}.{den_key}")
    ok &= positive(entry.get(ratio_key), f"{where}.{ratio_key}")
    if ok:
        derived = entry[num_key] / entry[den_key]
        if abs(derived - entry[ratio_key]) > 0.01:
            err(
                f"{where}.{ratio_key} {entry[ratio_key]} inconsistent with "
                f"{num_key}/{den_key} = {derived:.3f}"
            )
    return ok


def check(doc):
    if doc.get("schema") != "fedsc-bench-baseline-v1":
        err(f"unexpected schema id: {doc.get('schema')!r}")

    # The baseline is meaningless unless the fedsc kernels were built
    # Release; bench_baseline.sh records the verified CMake build type here.
    build_type = doc.get("context", {}).get("library_build_type")
    if build_type != "release":
        err(
            f"context.library_build_type is {build_type!r}, expected "
            "'release': regenerate the baseline with scripts/bench_baseline.sh "
            "from a Release tree"
        )

    blocked = doc.get("gemm_blocked_gflops", {})
    panel = doc.get("gemm_panel_gflops", {})
    for n in GEMM_SIZES:
        for t in THREADS:
            positive(
                blocked.get(n, {}).get(t), f"gemm_blocked_gflops[{n}][{t}]"
            )
        positive(panel.get(n), f"gemm_panel_gflops[{n}]")

    tt = doc.get("gemm_tt_gflops", {})
    for n in TT_SIZES:
        for kind in ("packed", "panel_copy"):
            positive(tt.get(n, {}).get(kind), f"gemm_tt_gflops[{n}][{kind}]")

    gram = doc.get("gram", {})
    for n in GEMM_SIZES:
        check_ratio_entry(
            gram.get(n, {}), f"gram[{n}]", "syrk_gflops", "gemm_gflops",
            "ratio",
        )

    qr = doc.get("qr", {})
    for shape in QR_SHAPES:
        check_ratio_entry(
            qr.get(shape, {}), f"qr[{shape}]", "blocked_gflops",
            "unblocked_gflops", "speedup",
        )

    svd = doc.get("svd_tall", {})
    for shape in SVD_SHAPES:
        check_ratio_entry(
            svd.get(shape, {}), f"svd_tall[{shape}]", "precond_gflops",
            "plain_gflops", "speedup",
        )

    eig = doc.get("eig_tridiag", {})
    for n in EIG_SIZES:
        for key in ("full", "values"):
            check_ratio_entry(
                eig.get(n, {}).get(key, {}), f"eig_tridiag[{n}].{key}",
                "blocked_gflops", "unblocked_gflops", "speedup",
            )

    isa = doc.get("isa_dispatch", {})
    for n in ISA_SIZES:
        entry = isa.get(n)
        if not isinstance(entry, dict) or "generic" not in entry:
            err(f"isa_dispatch[{n}]: missing the pinned-generic rate")
            continue
        for tier, rate in entry.items():
            if tier not in ISA_TIERS:
                err(f"isa_dispatch[{n}]: unknown tier {tier!r}")
            positive(rate, f"isa_dispatch[{n}][{tier}]")
    at_512 = isa.get("512", {})
    best_over_generic = doc.get("acceptance", {}).get(
        "isa_best_over_generic_512"
    )
    if (
        isinstance(at_512, dict)
        and at_512.get("generic")
        and isinstance(best_over_generic, (int, float))
    ):
        derived = max(at_512.values()) / at_512["generic"]
        if abs(derived - best_over_generic) > 0.01:
            err(
                f"acceptance.isa_best_over_generic_512 {best_over_generic} "
                f"inconsistent with isa_dispatch[512] = {derived:.3f}"
            )

    batched_basis = doc.get("batched_basis", {})
    for b in BATCHED_BASIS_BATCHES:
        check_ratio_entry(
            batched_basis.get(b, {}), f"batched_basis[{b}]",
            "batched_panels_per_s", "looped_panels_per_s", "speedup",
        )

    basis = doc.get("basis_tall_d", {})
    check_ratio_entry(
        basis, "basis_tall_d", "plain_ms", "precond_ms", "speedup"
    )

    fedsc = doc.get("run_fedsc_ms", {})
    if not fedsc:
        err("run_fedsc_ms is empty: no end-to-end wall time recorded")
    elif not any("TallD" in key for key in fedsc):
        err("run_fedsc_ms has no tall-D (RunFedScTallD) entry")
    for scenario, entry in fedsc.items():
        positive(entry.get("ms"), f"run_fedsc_ms[{scenario}].ms")

    comm = doc.get("comm_cost", {})
    frontier = comm.get("frontier", {})
    raw_bytes = None
    for codec in COMM_CODECS:
        entry = frontier.get(codec, {})
        where = f"comm_cost.frontier[{codec}]"
        acc = entry.get("acc")
        if positive(acc, f"{where}.acc") and acc > 100.0:
            err(f"{where}.acc {acc} is not a percentage in (0, 100]")
        ok = positive(entry.get("wire_bytes"), f"{where}.wire_bytes")
        ok &= positive(entry.get("reduction"), f"{where}.reduction")
        if codec == "raw_f64" and ok:
            raw_bytes = entry["wire_bytes"]
        if ok and raw_bytes is not None:
            derived = raw_bytes / entry["wire_bytes"]
            if abs(derived - entry["reduction"]) > 0.01:
                err(
                    f"{where}.reduction {entry['reduction']} inconsistent "
                    f"with raw_f64/{codec} bytes = {derived:.3f}"
                )
    basis_reduction = comm.get("basis_reduction")
    if positive(basis_reduction, "comm_cost.basis_reduction"):
        if basis_reduction < MIN_BASIS_UPLINK_REDUCTION:
            err(
                f"basis codec uplink reduction {basis_reduction} below the "
                f"{MIN_BASIS_UPLINK_REDUCTION}x floor (D=1024, m=4)"
            )

    robustness = doc.get("robustness", {})
    collude = robustness.get("collude", {})
    for rate in ROBUSTNESS_RATES:
        entry = collude.get(rate, {})
        where = f"robustness.collude[{rate}]"
        for key in ("undefended_acc", "defended_acc"):
            acc = entry.get(key)
            if positive(acc, f"{where}.{key}") and acc > 100.0:
                err(f"{where}.{key} {acc} is not a percentage in (0, 100]")
        screened = entry.get("screened_devices")
        if not isinstance(screened, int) or screened < 0:
            err(f"{where}.screened_devices: expected a count, got {screened!r}")
    clean_acc = robustness.get("clean_acc")
    positive(clean_acc, "robustness.clean_acc")
    at_02 = collude.get("0.2", {})
    if (
        positive(clean_acc, "robustness.clean_acc")
        and positive(at_02.get("defended_acc"), "robustness at 0.2")
        and positive(at_02.get("undefended_acc"), "robustness at 0.2")
    ):
        margin = at_02["defended_acc"] - at_02["undefended_acc"]
        if margin < MIN_DEFENDED_MARGIN_AT_02:
            err(
                f"defended-vs-undefended margin {margin:.2f} at 20% colluding "
                f"Byzantine below the {MIN_DEFENDED_MARGIN_AT_02}-point floor"
            )
        gap = clean_acc - at_02["defended_acc"]
        if gap > MAX_DEFENDED_GAP_TO_CLEAN_AT_02:
            err(
                f"defended accuracy trails the fault-free run by {gap:.2f} "
                f"points at 20% colluding Byzantine, above the "
                f"{MAX_DEFENDED_GAP_TO_CLEAN_AT_02}-point ceiling"
            )

    scaling = doc.get("central_scaling", {})
    sweep = scaling.get("sweep", {})
    largest_compared = None
    for n in SCALING_NS:
        entry = sweep.get(n, {})
        where = f"central_scaling.sweep[{n}]"
        if not entry:
            err(f"{where}: missing sweep point")
            continue
        positive(entry.get("sketched_s"), f"{where}.sketched_s")
        acc = entry.get("sketched_acc")
        if positive(acc, f"{where}.sketched_acc") and acc > 100.0:
            err(f"{where}.sketched_acc {acc} is not a percentage in (0, 100]")
        if entry.get("exact_skipped"):
            continue
        ok = positive(entry.get("exact_s"), f"{where}.exact_s")
        ok &= positive(entry.get("speedup"), f"{where}.speedup")
        if ok:
            derived = entry["exact_s"] / entry["sketched_s"]
            # exact_s/sketched_s are rounded to 1 ms in the sweep JSON while
            # speedup was computed from the unrounded times, so the derived
            # ratio carries up to 0.5 ms of rounding per operand; propagate
            # that into the tolerance so short sketched runs don't flag.
            tol = 0.01 + 0.0005 * (1.0 + entry["speedup"]) / entry["sketched_s"]
            if abs(derived - entry["speedup"]) > tol:
                err(
                    f"{where}.speedup {entry['speedup']} inconsistent with "
                    f"exact_s/sketched_s = {derived:.3f}"
                )
            largest_compared = (int(n), entry)
    if largest_compared is None:
        err(
            "central_scaling: no sweep point measured both engines; the "
            "speedup/ACC floors have nothing to bind to"
        )
    else:
        n, entry = largest_compared
        accepted = scaling.get("acceptance", {})
        if accepted.get("largest_compared_n") != n:
            err(
                f"central_scaling.acceptance.largest_compared_n "
                f"{accepted.get('largest_compared_n')!r} does not match the "
                f"sweep's largest both-engine point {n}"
            )
        speedup = entry.get("speedup", 0.0)
        if speedup < MIN_SKETCHED_SPEEDUP:
            err(
                f"sketched-vs-exact speedup {speedup} at N={n} below the "
                f"{MIN_SKETCHED_SPEEDUP}x floor"
            )
        gap = entry.get("acc_gap")
        if not isinstance(gap, (int, float)) or isinstance(gap, bool):
            err(f"central_scaling.sweep[{n}].acc_gap: expected a number")
        elif abs(gap) > MAX_SKETCHED_ACC_GAP:
            err(
                f"sketched ACC trails exact by {gap:.2f} points at N={n}, "
                f"outside the {MAX_SKETCHED_ACC_GAP}-point band"
            )

    acceptance = doc.get("acceptance", {})
    floors = (
        ("gemm512_blocked_over_panel", MIN_GEMM512_BLOCKED_OVER_PANEL,
         "blocked GEMM n=512 speedup"),
        ("gram512_syrk_over_gemm", MIN_GRAM512_SYRK_OVER_GEMM,
         "Syrk Gram n=512 speedup"),
        ("qr_blocked_over_unblocked_min_m512",
         MIN_QR_BLOCKED_OVER_UNBLOCKED_M512,
         "worst blocked-QR speedup at m >= 512"),
        ("svd_precond_over_plain_min_aspect8",
         MIN_SVD_PRECOND_OVER_PLAIN_ASPECT8,
         "worst preconditioned-SVD speedup at m/n >= 8"),
        ("isa_best_over_generic_512", MIN_ISA_BEST_OVER_GENERIC_512,
         "best-ISA over pinned-generic GEMM at n=512"),
        ("batched_basis_speedup_1024", MIN_BATCHED_BASIS_SPEEDUP_1024,
         "batched-vs-looped basis speedup at batch=1024"),
    )
    for key, floor, what in floors:
        value = acceptance.get(key)
        if positive(value, f"acceptance.{key}"):
            if value < floor:
                err(f"{what} {value} below the {floor}x floor")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "path", nargs="?", default="BENCH_linalg.json",
        help="baseline file to validate",
    )
    args = parser.parse_args()

    try:
        with open(args.path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{args.path}: {e}", file=sys.stderr)
        return 1

    check(doc)
    if _errors:
        for msg in _errors:
            print(f"{args.path}: {msg}", file=sys.stderr)
        return 1
    print(f"{args.path}: baseline OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
