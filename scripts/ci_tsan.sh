#!/usr/bin/env bash
# ThreadSanitizer gate for the threaded kernels: builds the pool, the
# determinism suite, and the end-to-end Fed-SC tests under TSAN and fails on
# any reported race. Run from anywhere; build artifacts go to build-tsan/.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-tsan"

cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFEDSC_SANITIZE=thread

cmake --build "${build_dir}" -j "$(nproc)" \
  --target thread_pool_test parallel_determinism_test fedsc_test \
  trace_test logging_test

# halt_on_error makes the first race fail the run instead of just logging.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

"${build_dir}/tests/thread_pool_test"
"${build_dir}/tests/parallel_determinism_test"
"${build_dir}/tests/fedsc_test"
# The observability layer records from every worker thread; run its suites
# under TSAN too (trace recorder, metrics registry, log sink).
"${build_dir}/tests/trace_test"
"${build_dir}/tests/logging_test"

echo "TSAN: all threaded suites passed with zero reported races."
