#!/usr/bin/env bash
# Sanitizer gate for the threaded kernels and the fault-injection runtime:
# builds the pool, the determinism suite, the end-to-end Fed-SC tests, and
# the fault-tolerance suite under TSAN (races), then rebuilds and runs the
# fault suite plus the wire-decoder fuzzer under ASAN (corrupted payloads
# and mutated wire bytes exercise truncated / duplicated / wrong-dimension /
# length-lying buffers, exactly where an out-of-bounds read would hide).
# Run from anywhere; artifacts go to build-tsan/ and build-asan/.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-tsan"

cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFEDSC_SANITIZE=thread

cmake --build "${build_dir}" -j "$(nproc)" \
  --target thread_pool_test parallel_determinism_test fedsc_test \
  faults_test defense_test trace_test journal_test logging_test blas_test \
  qr_cholesky_test svd_eig_test sketch_test

# halt_on_error makes the first race fail the run instead of just logging.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

"${build_dir}/tests/thread_pool_test"
"${build_dir}/tests/parallel_determinism_test"
"${build_dir}/tests/fedsc_test"
# The fault plan is consumed from serial protocol code while Phase 1/2
# kernels fan out over worker threads; TSAN proves the combination is clean.
"${build_dir}/tests/faults_test"
# Defense screening reduces pooled coherence/residual statistics across the
# pool; TSAN proves the disjoint-slot parallel writes really are disjoint.
"${build_dir}/tests/defense_test"
# The observability layer records from every worker thread; run its suites
# under TSAN too (trace recorder, metrics registry, log sink, and the run
# ledger: the journal's mutex-guarded global log plus the profile builder
# folding per-thread trace buffers while the pool is live).
"${build_dir}/tests/trace_test"
"${build_dir}/tests/journal_test"
"${build_dir}/tests/logging_test"
# The blocked GEMM/Syrk engine packs on the caller thread and fans the
# micro-block loop out over the pool; TSAN checks the arena handoff.
"${build_dir}/tests/blas_test"
# The blocked factorizations (compact-WY QR, preconditioned SVD, blocked
# tridiagonalization) thread their GEMM updates and triangular multiplies.
"${build_dir}/tests/qr_cholesky_test"
"${build_dir}/tests/svd_eig_test"
# The sketched central path fans per-column draws, block-local ADMM solves,
# leverage-key selection, and the Nystrom core/extension GEMVs over the
# pool, all writing disjoint slots; TSAN proves the slots really are
# disjoint for nt in {1, 2, 8}.
"${build_dir}/tests/sketch_test"

# Forced-generic pass: FEDSC_FORCE_ISA pins the portable micro-kernel tier,
# so the threaded packing/fan-out paths are race-checked on the exact code
# the generic dispatch runs (the intrinsic tiers share the same driver; the
# micro-kernels themselves touch only disjoint accumulators).
FEDSC_FORCE_ISA=generic "${build_dir}/tests/blas_test"
FEDSC_FORCE_ISA=generic "${build_dir}/tests/parallel_determinism_test"
FEDSC_FORCE_ISA=generic "${build_dir}/tests/sketch_test"

echo "TSAN: all threaded suites passed with zero reported races."

asan_dir="${repo_root}/build-asan"

cmake -S "${repo_root}" -B "${asan_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFEDSC_SANITIZE=address

cmake --build "${asan_dir}" -j "$(nproc)" \
  --target faults_test defense_test blas_test parallel_determinism_test \
  qr_cholesky_test svd_eig_test codec_test wire_fuzz_test journal_test \
  sketch_test

"${asan_dir}/tests/faults_test"
# Screening indexes per-sample peer lists and per-device slots built from
# attacker-controlled pool shapes; ASAN gates the indexing.
"${asan_dir}/tests/defense_test"
# Packing writes into 64-byte-aligned arenas with zero-padded edge
# micro-panels; ASAN is the gate for an off-by-one on the ragged tails.
"${asan_dir}/tests/blas_test"
"${asan_dir}/tests/parallel_determinism_test"
# Panel factorization indexes ragged tails (m % panel, n % panel); ASAN is
# the gate for an off-by-one in the V/T/corner copies.
"${asan_dir}/tests/qr_cholesky_test"
"${asan_dir}/tests/svd_eig_test"
# The wire decoder faces attacker-shaped bytes (truncation, length lies,
# dtype confusion); the fuzzer's >= 10k mutations under ASAN are the
# no-out-of-bounds-read proof, and the codec property suite covers the
# round-trip paths the mutations start from.
"${asan_dir}/tests/codec_test"
"${asan_dir}/tests/wire_fuzz_test"
# The journal/report path renders every event payload into strings and the
# profiler walks raw trace buffers; ASAN gates the string/buffer handling.
"${asan_dir}/tests/journal_test"
# The sketched path gathers landmark columns, scatters top-q triplets
# through touched-list scratch resets, and indexes per-atom core rows; ASAN
# is the gate for an off-by-one in the gather/scatter index arithmetic.
"${asan_dir}/tests/sketch_test"

# Forced-generic pass, mirroring the TSAN one: the ragged packed-panel
# tails differ per micro-tile shape, so the generic tier's edge handling
# gets its own ASAN run.
FEDSC_FORCE_ISA=generic "${asan_dir}/tests/blas_test"
FEDSC_FORCE_ISA=generic "${asan_dir}/tests/parallel_determinism_test"
FEDSC_FORCE_ISA=generic "${asan_dir}/tests/sketch_test"

echo "ASAN: fault-injection, codec, and wire-fuzz suites passed with zero"
echo "reported errors."
