#!/usr/bin/env python3
"""Renders a RunReport JSON document (--report-out) for humans.

Prints, in order: the provenance manifest, the run summary with the
per-device fate table, the span profile (inclusive/exclusive time), the
kernel roofline table (achieved GFLOP/s and arithmetic intensity), thread
utilization, histogram percentiles, and — with --journal — the full event
timeline on the simulated clock.

Usage: render_report.py report.json [--journal] [--top N]

Stdlib only. Pair with validate_report.py, which checks the schema this
renderer assumes.
"""

import argparse
import json
import sys


def fail(message: str) -> None:
    print(f"render_report: {message}", file=sys.stderr)
    sys.exit(1)


def table(rows, header):
    """Prints rows (lists of strings) aligned under header."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    print(fmt.format(*header))
    print(fmt.format(*("-" * w for w in widths)))
    for row in rows:
        print(fmt.format(*row))


def seconds(value):
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def render_manifest(manifest):
    print("== provenance ==")
    print(f"  revision    {manifest['git_describe']}"
          f" ({manifest['build_type'] or 'unspecified'} build)")
    print(f"  compiler    {manifest['compiler']}")
    print(f"  cpu         {manifest['cpu_model']}"
          f" ({manifest['hardware_threads']} hardware threads)")
    print(f"  kernels     {manifest['gemm_isa']}"
          f" (best supported {manifest['cpu_isa']},"
          f" pinned by {manifest['isa_pin_source']})")
    print(f"  options     {manifest['options_fingerprint']}"
          f"  seed={manifest['seed']}  fault_seed={manifest['fault_seed']}"
          f"  threads={manifest['num_threads']}")


def render_run(run, journal=None):
    print("\n== run ==")
    if run is None:
        print("  (no run attached: bench report)")
        return
    # The central-engine dispatch (exact vs sketched) is journaled on the
    # central_start event; surface it next to the run summary.
    for event in journal or []:
        if event.get("type") != "central_start":
            continue
        path = event.get("central_path")
        if path is not None:
            print(f"  central     {event.get('method', '?')} engine,"
                  f" {path} path, {event.get('samples', '?')} samples")
    comm = run["comm"]
    print(f"  devices     {run['participating_devices']}/{run['devices']}"
          f" participated, {run['total_samples']} samples pooled,"
          f" {run['quarantined_samples']} quarantined,"
          f" {run['screened_devices']} screened")
    print(f"  uplink      {comm['uplink_wire_bytes']} wire bytes"
          f" ({comm['uplink_values']} values), {comm['retries']} retries,"
          f" {comm['timeouts']} timeouts,"
          f" {comm['sim_uplink_ms']} ms simulated")
    print(f"  downlink    {comm['downlink_values']} values"
          f" in {comm['rounds']} round(s)")
    rows = [
        [str(d["device"]), d["outcome"], str(d["attempts"]),
         str(d["uploaded_samples"]), str(d["quarantined_samples"]),
         d["status"]]
        for d in run["device_reports"]
    ]
    if rows:
        print()
        table(rows, ["device", "outcome", "attempts", "uploaded",
                     "quarantined", "status"])
    screened = [d for d in run["device_reports"]
                if d["outcome"] == "screened"]
    for d in screened:
        print(f"  device {d['device']} screened: {d['screen_statistic']}")


def render_profile(profile, top):
    print("\n== span profile ==")
    spans = sorted(profile["spans"], key=lambda s: -s["exclusive_seconds"])
    rows = [
        [s["name"], str(s["count"]), seconds(s["inclusive_seconds"]),
         seconds(s["exclusive_seconds"]), seconds(s["max_seconds"])]
        for s in spans[:top]
    ]
    if rows:
        table(rows, ["span", "count", "inclusive", "exclusive", "max"])
        if len(spans) > top:
            print(f"  ... {len(spans) - top} more (raise --top)")
    else:
        print("  (no spans recorded)")

    kernels = [k for k in profile["kernels"] if k["calls"] > 0]
    if kernels:
        print("\n== roofline ==")
        rows = []
        for k in kernels:
            ai = (f"{k['arithmetic_intensity']:.2f}"
                  if k["bytes"] > 0 else "-")
            rows.append([k["span"], str(k["calls"]), f"{k['flops']:,}",
                         seconds(k["seconds"]),
                         f"{k['achieved_gflops']:.2f}", ai])
        table(rows, ["kernel", "calls", "flops", "time", "GFLOP/s",
                     "flops/byte"])

    threads = profile["threads"]
    if threads:
        print("\n== thread utilization ==")
        rows = []
        for t in threads:
            span = t["busy_seconds"] + t["idle_seconds"]
            busy = 100.0 * t["busy_seconds"] / span if span > 0 else 0.0
            rows.append([str(t["tid"]), str(t["top_level_spans"]),
                         seconds(t["busy_seconds"]),
                         seconds(t["idle_seconds"]), f"{busy:.0f}%"])
        table(rows, ["tid", "spans", "busy", "idle", "util"])


def render_histograms(metrics):
    histograms = {n: h for n, h in metrics["histograms"].items()
                  if h["count"] > 0}
    if not histograms:
        return
    print("\n== histogram percentiles ==")
    rows = [
        [name, str(h["count"]), str(h["min"]), f"{h['p50']:.1f}",
         f"{h['p90']:.1f}", f"{h['p99']:.1f}", str(h["max"])]
        for name, h in sorted(histograms.items())
    ]
    table(rows, ["histogram", "count", "min", "p50", "p90", "p99", "max"])


def render_journal(events):
    print("\n== journal ==")
    rows = []
    for event in events:
        device = str(event.get("device", "")) if "device" in event else "-"
        sim_ms = str(event.get("sim_ms", "")) if "sim_ms" in event else "-"
        payload = ", ".join(
            f"{k}={v}" for k, v in event.items()
            if k not in ("v", "seq", "type", "device", "sim_ms", "wall_ns"))
        rows.append([str(event["seq"]), sim_ms, device, event["type"],
                     payload])
    table(rows, ["seq", "sim_ms", "device", "type", "payload"])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="RunReport JSON file")
    parser.add_argument("--journal", action="store_true",
                        help="also print the full event timeline")
    parser.add_argument("--top", type=int, default=15, metavar="N",
                        help="span rows to show (default 15)")
    args = parser.parse_args()

    try:
        with open(args.report, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot read {args.report}: {error}")

    render_manifest(report["manifest"])
    render_run(report["run"], report.get("journal"))
    render_profile(report["profile"], args.top)
    render_histograms(report["metrics"])
    if args.journal:
        render_journal(report["journal"])


if __name__ == "__main__":
    main()
