#!/usr/bin/env bash
# Builds the project, runs the full test suite, and regenerates every
# table/figure of the paper, archiving outputs next to the repo root
# (test_output.txt / bench_output.txt) the way EXPERIMENTS.md references.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "=== $b ==="
  "$b"
done 2>&1 | tee bench_output.txt
