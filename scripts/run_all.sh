#!/usr/bin/env bash
# Builds the project, runs the full test suite, and regenerates every
# table/figure of the paper, archiving outputs next to the repo root
# (test_output.txt / bench_output.txt) the way EXPERIMENTS.md references.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  # Directories (e.g. build/bench/CMakeFiles) pass -x; require a real file.
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "=== $b ==="
  "$b"
done 2>&1 | tee bench_output.txt

# The committed linalg perf baseline must stay well-formed and above the
# acceptance floors (refresh it with scripts/bench_baseline.sh).
python3 scripts/check_bench_json.py BENCH_linalg.json

# Observability smoke test: trace a small end-to-end run and validate the
# exported Chrome trace (every begin matched, timestamps monotone per track).
obs_dir="$(mktemp -d)"
trap 'rm -rf "${obs_dir}"' EXIT
python3 - "${obs_dir}/smoke.csv" <<'PY'
import random
import sys

# 3 well-separated Gaussian blobs in 8 dimensions: label,f1,...,f8 per line.
rng = random.Random(7)
with open(sys.argv[1], "w") as f:
    for label in range(3):
        center = [rng.gauss(0.0, 1.0) * 10.0 for _ in range(8)]
        for _ in range(40):
            row = [str(label)] + [f"{c + rng.gauss(0.0, 0.3):.6f}" for c in center]
            f.write(",".join(row) + "\n")
PY
build/tools/fedsc_cli --input "${obs_dir}/smoke.csv" --clusters 3 \
  --devices 4 --threads 4 --trace-out "${obs_dir}/trace.json" \
  --metrics-out "${obs_dir}/metrics.json"
python3 scripts/validate_trace.py "${obs_dir}/trace.json" \
  --expect-span fedsc/run --expect-span fedsc/phase1/device \
  --expect-span fedsc/phase2/central
python3 -c 'import json,sys; json.load(open(sys.argv[1]))' \
  "${obs_dir}/metrics.json"
echo "observability smoke test passed"

# Run-report smoke test: a degraded round (dropouts + byzantine payloads +
# wire corruption, with retries) must emit a schema-valid RunReport whose
# journal reconciles with the comm ledger, and the renderer must consume it.
# A bench report (run: null) must validate against the same schema.
build/tools/fedsc_cli --input "${obs_dir}/smoke.csv" --clusters 3 \
  --devices 6 --dropout 0.2 --byzantine 0.2 --wire-corrupt 0.2 \
  --quorum 0.3 --max-attempts 3 \
  --report-out "${obs_dir}/report.json" \
  --journal-out "${obs_dir}/journal.jsonl"
python3 scripts/validate_report.py "${obs_dir}/report.json" \
  --expect-run --expect-events 10
python3 scripts/render_report.py "${obs_dir}/report.json" --journal \
  > /dev/null
test -s "${obs_dir}/journal.jsonl"
build/bench/comm_cost --report-out="${obs_dir}/bench_report.json" > /dev/null
python3 scripts/validate_report.py "${obs_dir}/bench_report.json"
echo "run-report smoke test passed"

# Sketched central-engine smoke test: the same data through the forced
# sketched path (dictionary self-expression + landmark spectral) must
# cluster, journal the dispatch decision on central_start, and emit a
# schema-valid report whose renderer surfaces the chosen path.
build/tools/fedsc_cli --input "${obs_dir}/smoke.csv" --clusters 3 \
  --devices 6 --central sketch --sketch-dim 8 --landmarks leverage \
  --report-out "${obs_dir}/sketched.json" > "${obs_dir}/sketched.out" 2>&1
python3 scripts/validate_report.py "${obs_dir}/sketched.json" --expect-run
python3 scripts/render_report.py "${obs_dir}/sketched.json" \
  > "${obs_dir}/sketched.render"
grep -q "sketched path" "${obs_dir}/sketched.render"
echo "sketched central-engine smoke test passed"

# Robustness smoke test: the same small dataset through a degraded round —
# 30% dropout against a 0.5 quorum with retries must complete, report the
# failed devices, and exit 0; a full blackout must fail with the typed
# quorum status instead of crashing.
build/tools/fedsc_cli --input "${obs_dir}/smoke.csv" --clusters 3 \
  --devices 6 --dropout 0.3 --quorum 0.5 --max-attempts 3
if build/tools/fedsc_cli --input "${obs_dir}/smoke.csv" --clusters 3 \
  --devices 6 --dropout 1.0 --quorum 0.5 2>"${obs_dir}/quorum.err"; then
  echo "expected the full-dropout run to fail" >&2
  exit 1
fi
grep -q "quorum" "${obs_dir}/quorum.err"
build/bench/fig_robustness --csv > "${obs_dir}/robustness.csv"
grep -q "^0.30," "${obs_dir}/robustness.csv"
# Defended degraded round: colluding Byzantine uploads with the defense on
# must complete under quorum, report the screened-device count in the
# summary, and emit the defense_screened journal events schema-validated by
# validate_report.py above.
build/tools/fedsc_cli --input "${obs_dir}/smoke.csv" --clusters 3 \
  --devices 6 --byzantine 0.3 --byzantine-mode collude --defense on \
  --quorum 0.3 --fault-seed 3 --report-out "${obs_dir}/defended.json" \
  > "${obs_dir}/defended.out" 2>&1
grep -q "devices screened" "${obs_dir}/defended.out"
python3 scripts/validate_report.py "${obs_dir}/defended.json" --expect-run
echo "robustness smoke test passed"

# Wire/codec smoke test: every serialized codec must cluster the smoke data,
# --wire-dump must produce a parseable versioned message (magic "FSCW"), and
# a fully wire-corrupted round must degrade gracefully — corrupt uploads
# rejected as typed wire-corrupt quarantines, never a crash. The decoder
# fuzzer and codec property suites already ran under ctest above.
for codec in raw quant basis; do
  build/tools/fedsc_cli --input "${obs_dir}/smoke.csv" --clusters 3 \
    --devices 4 --codec "${codec}" --wire-dump "${obs_dir}/up.${codec}.wire"
  head -c 4 "${obs_dir}/up.${codec}.wire" | grep -q "FSCW"
done
build/tools/fedsc_cli --input "${obs_dir}/smoke.csv" --clusters 3 \
  --devices 6 --wire-corrupt 0.4 --quorum 0.3 \
  > "${obs_dir}/corrupt.out" 2>&1
grep -q "wire corrupt" "${obs_dir}/corrupt.out"
echo "wire/codec smoke test passed"

# Forced-ISA smoke test: every micro-kernel tier this host can execute must
# cluster the smoke data end to end, and the dispatched tier must land in
# the report's provenance manifest. --print-isa aborts when FEDSC_FORCE_ISA
# names a tier cpuid rules out, which is exactly the skip probe.
for isa in generic avx2 avx512; do
  if ! FEDSC_FORCE_ISA="${isa}" build/tools/fedsc_cli --print-isa \
      > /dev/null 2>&1; then
    echo "forced-ISA smoke: ${isa} unsupported on this host, skipped"
    continue
  fi
  FEDSC_FORCE_ISA="${isa}" build/tools/fedsc_cli \
    --input "${obs_dir}/smoke.csv" --clusters 3 --devices 4 \
    --report-out "${obs_dir}/isa.${isa}.json" > /dev/null
  python3 scripts/validate_report.py "${obs_dir}/isa.${isa}.json" \
    --expect-run
  python3 - "${obs_dir}/isa.${isa}.json" "${isa}" <<'PY'
import json, sys
manifest = json.load(open(sys.argv[1]))["manifest"]
assert manifest["gemm_isa"] == sys.argv[2], manifest
assert manifest["isa_pin_source"] == f"env:FEDSC_FORCE_ISA={sys.argv[2]}"
PY
done
echo "forced-ISA smoke test passed"
