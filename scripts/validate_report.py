#!/usr/bin/env python3
"""Validates a RunReport JSON document produced by --report-out.

Pins the schema that core/report.h emits (schema_version 2, journal schema
version 2: both bumped when the Byzantine defense added the screened-device
ledger — run.screened_devices, per-device screen_statistic, and the
defense_screened journal event): the top-level sections, the manifest's provenance fields, the
run summary + per-device reports + comm ledger (or run: null for bench
reports), every journal event's envelope and type vocabulary, the profile
tables, and the metrics snapshot with p50/p90/p99 on every histogram.

Beyond shape, it re-checks the ledger invariants the C++ tests assert:
journal seq is dense and starts at 0, and when a run is attached, the
wire bytes journaled on timeout/transient_loss/wire_rejected/delivered
events sum exactly to run.comm.uplink_wire_bytes.

Usage: validate_report.py report.json [--expect-run] [--expect-events N]

Exit status 0 on a valid report, 1 otherwise; the first problem is
reported on stderr. Stdlib only.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 3
JOURNAL_SCHEMA_VERSION = 2

TOP_LEVEL_KEYS = {
    "schema_version",
    "journal_schema_version",
    "manifest",
    "run",
    "journal",
    "profile",
    "metrics",
}

MANIFEST_KEYS = {
    "git_describe": str,
    "compiler": str,
    "build_type": str,
    "cpu_model": str,
    "hardware_threads": int,
    "cpu_isa": str,
    "gemm_isa": str,
    "isa_pin_source": str,
    "options_fingerprint": str,
    "seed": int,
    "fault_seed": int,
    "num_threads": int,
}

RUN_KEYS = {
    "devices": int,
    "participating_devices": int,
    "total_samples": int,
    "quarantined_samples": int,
    "screened_devices": int,
    "comm": dict,
    "device_reports": list,
}

COMM_KEYS = {
    "uplink_values": int,
    "uplink_bits": int,
    "uplink_wire_bytes": int,
    "downlink_values": int,
    "downlink_bits": (int, float),
    "rounds": int,
    "retries": int,
    "timeouts": int,
    "sim_uplink_ms": int,
}

DEVICE_REPORT_KEYS = {
    "device": int,
    "outcome": str,
    "attempts": int,
    "uploaded_samples": int,
    "quarantined_samples": int,
    "status": str,
    "screen_statistic": str,
}

# The journal's event-type vocabulary (common/journal.h). An unknown type
# means the emitter grew without a journal schema bump.
EVENT_TYPES = {
    "run_start",
    "scheduled",
    "upload_attempt",
    "retry",
    "timeout",
    "transient_loss",
    "wire_rejected",
    "delivered",
    "accepted",
    "quarantined",
    "byzantine_rejected",
    "defense_screened",
    "dropped",
    "local_error",
    "downlink",
    "quorum_reached",
    "quorum_missed",
    "central_start",
    "central_finish",
    "broadcast",
    "run_finish",
}

# Event types whose payload must carry the uplink byte ledger.
WIRE_BYTE_EVENTS = {"timeout", "transient_loss", "wire_rejected", "delivered"}

SPAN_KEYS = {
    "name": str,
    "count": int,
    "inclusive_seconds": (int, float),
    "exclusive_seconds": (int, float),
    "max_seconds": (int, float),
}

KERNEL_KEYS = {
    "span": str,
    "calls": int,
    "flops": int,
    "bytes": int,
    "seconds": (int, float),
    "achieved_gflops": (int, float),
    "arithmetic_intensity": (int, float),
}

THREAD_KEYS = {
    "tid": int,
    "top_level_spans": int,
    "busy_seconds": (int, float),
    "idle_seconds": (int, float),
}

METRICS_KEYS = {
    "counters",
    "execution_counters",
    "gauges",
    "execution_gauges",
    "histograms",
}

HISTOGRAM_KEYS = {
    "count": int,
    "sum": int,
    "min": int,
    "max": int,
    "p50": (int, float),
    "p90": (int, float),
    "p99": (int, float),
    "log2_buckets": dict,
}


def fail(message: str) -> None:
    print(f"validate_report: {message}", file=sys.stderr)
    sys.exit(1)


def check_object(obj, schema, where):
    if not isinstance(obj, dict):
        fail(f"{where} is not an object")
    for key, expected_type in schema.items():
        if key not in obj:
            fail(f"{where} is missing '{key}'")
        if not isinstance(obj[key], expected_type):
            fail(f"{where}.{key} has the wrong type "
                 f"({type(obj[key]).__name__})")
    for key in obj:
        if key not in schema:
            fail(f"{where} has unexpected key '{key}' "
                 "(bump the schema version and this validator together)")


def check_journal(events, expect_events):
    if not isinstance(events, list):
        fail("'journal' is not an array")
    if len(events) < expect_events:
        fail(f"journal has {len(events)} events, expected at least "
             f"{expect_events}")
    wire_bytes = 0
    for i, event in enumerate(events):
        where = f"journal[{i}]"
        if not isinstance(event, dict):
            fail(f"{where} is not an object")
        for key, expected_type in (
            ("v", int), ("seq", int), ("type", str), ("wall_ns", int),
        ):
            if key not in event:
                fail(f"{where} is missing '{key}'")
            if not isinstance(event[key], expected_type):
                fail(f"{where}.{key} has the wrong type")
        if event["v"] != JOURNAL_SCHEMA_VERSION:
            fail(f"{where}.v is {event['v']}, expected "
                 f"{JOURNAL_SCHEMA_VERSION}")
        if event["seq"] != i:
            fail(f"{where}.seq is {event['seq']}, expected {i} "
                 "(seq must be dense and 0-based)")
        if event["type"] not in EVENT_TYPES:
            fail(f"{where}.type '{event['type']}' is not in the journal "
                 "vocabulary (bump kJournalSchemaVersion and this validator)")
        if "device" in event and not isinstance(event["device"], int):
            fail(f"{where}.device is not an integer")
        if "sim_ms" in event and not isinstance(event["sim_ms"], int):
            fail(f"{where}.sim_ms is not an integer")
        if event["type"] in WIRE_BYTE_EVENTS:
            if "wire_bytes" not in event:
                fail(f"{where} ({event['type']}) is missing 'wire_bytes'")
            wire_bytes += event["wire_bytes"]
    return wire_bytes


def check_profile(profile):
    check_object(
        profile,
        {"wall_seconds": (int, float), "spans": list, "kernels": list,
         "threads": list},
        "profile",
    )
    for i, span in enumerate(profile["spans"]):
        check_object(span, SPAN_KEYS, f"profile.spans[{i}]")
    for i, kernel in enumerate(profile["kernels"]):
        check_object(kernel, KERNEL_KEYS, f"profile.kernels[{i}]")
    for i, thread in enumerate(profile["threads"]):
        check_object(thread, THREAD_KEYS, f"profile.threads[{i}]")


def check_metrics(metrics):
    if not isinstance(metrics, dict):
        fail("'metrics' is not an object")
    if set(metrics) != METRICS_KEYS:
        fail(f"metrics sections are {sorted(metrics)}, expected "
             f"{sorted(METRICS_KEYS)}")
    for section in ("counters", "execution_counters"):
        for name, value in metrics[section].items():
            if not isinstance(value, int):
                fail(f"metrics.{section}.{name} is not an integer")
    for section in ("gauges", "execution_gauges"):
        for name, value in metrics[section].items():
            if not isinstance(value, (int, float)):
                fail(f"metrics.{section}.{name} is not a number")
    for name, histogram in metrics["histograms"].items():
        check_object(histogram, HISTOGRAM_KEYS,
                     f"metrics.histograms.{name}")
        for bits, count in histogram["log2_buckets"].items():
            if not bits.lstrip("-").isdigit() or not isinstance(count, int):
                fail(f"metrics.histograms.{name}.log2_buckets has a "
                     f"malformed bucket '{bits}'")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="RunReport JSON file")
    parser.add_argument(
        "--expect-run",
        action="store_true",
        help="require a non-null run section (fedsc_cli reports)",
    )
    parser.add_argument(
        "--expect-events",
        type=int,
        default=0,
        metavar="N",
        help="require at least N journal events",
    )
    args = parser.parse_args()

    try:
        with open(args.report, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot read {args.report}: {error}")

    if not isinstance(report, dict):
        fail("top level is not an object")
    if set(report) != TOP_LEVEL_KEYS:
        fail(f"top-level keys are {sorted(report)}, expected "
             f"{sorted(TOP_LEVEL_KEYS)}")
    if report["schema_version"] != SCHEMA_VERSION:
        fail(f"schema_version is {report['schema_version']}, this validator "
             f"understands {SCHEMA_VERSION}")
    if report["journal_schema_version"] != JOURNAL_SCHEMA_VERSION:
        fail(f"journal_schema_version is {report['journal_schema_version']}, "
             f"expected {JOURNAL_SCHEMA_VERSION}")

    check_object(report["manifest"], MANIFEST_KEYS, "manifest")
    if not report["manifest"]["compiler"]:
        fail("manifest.compiler is empty")
    isa_tiers = {"generic", "avx2", "avx512"}
    for key in ("cpu_isa", "gemm_isa"):
        if report["manifest"][key] not in isa_tiers:
            fail(f"manifest.{key} is {report['manifest'][key]!r}, expected "
                 f"one of {sorted(isa_tiers)}")
    pin = report["manifest"]["isa_pin_source"]
    if pin != "cpuid" and not pin.startswith("env:FEDSC_FORCE_ISA="):
        fail(f"manifest.isa_pin_source is {pin!r}, expected 'cpuid' or "
             f"'env:FEDSC_FORCE_ISA=<tier>'")

    run = report["run"]
    if run is None:
        if args.expect_run:
            fail("run is null but --expect-run was given")
    else:
        check_object(run, RUN_KEYS, "run")
        check_object(run["comm"], COMM_KEYS, "run.comm")
        for i, device in enumerate(run["device_reports"]):
            check_object(device, DEVICE_REPORT_KEYS,
                         f"run.device_reports[{i}]")
        if len(run["device_reports"]) != run["devices"]:
            fail(f"run.devices is {run['devices']} but there are "
                 f"{len(run['device_reports'])} device reports")
        if run["participating_devices"] > run["devices"]:
            fail("run.participating_devices exceeds run.devices")

    journaled_wire_bytes = check_journal(report["journal"],
                                         args.expect_events)
    if run is not None and report["journal"]:
        expected = run["comm"]["uplink_wire_bytes"]
        if journaled_wire_bytes != expected:
            fail(f"journaled wire bytes ({journaled_wire_bytes}) do not "
                 f"reconcile with run.comm.uplink_wire_bytes ({expected})")

    check_profile(report["profile"])
    check_metrics(report["metrics"])

    events = len(report["journal"])
    print(f"OK: schema v{report['schema_version']}, {events} journal "
          f"events, {len(report['profile']['spans'])} profiled spans, "
          f"{len(report['metrics']['counters'])} counters")


if __name__ == "__main__":
    main()
