#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file produced by --trace-out.

Checks, per (pid, tid) track:
  * the file parses as JSON and has the {"traceEvents": [...]} shape;
  * every duration event is "B", "E", or metadata "M" with name/ts fields;
  * "B"/"E" events nest properly: every begin is closed by an end, no end
    arrives without an open begin, and timestamps never decrease;
  * optionally (--expect-span NAME, repeatable) that a named span occurs.

Usage: validate_trace.py trace.json [--expect-span fedsc/run ...]

Exit status 0 on a well-formed trace, 1 otherwise; the first problem is
reported on stderr. Stdlib only.
"""

import argparse
import json
import sys


def fail(message: str) -> None:
    print(f"validate_trace: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--expect-span",
        action="append",
        default=[],
        metavar="NAME",
        help="require at least one span with this exact name (repeatable)",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            trace = json.load(f)
    except OSError as e:
        fail(f"cannot read {args.trace}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{args.trace} is not valid JSON: {e}")

    if not isinstance(trace, dict) or "traceEvents" not in trace:
        fail("top level must be an object with a 'traceEvents' array")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' must be an array")

    stacks = {}  # (pid, tid) -> list of (name, ts)
    last_ts = {}  # (pid, tid) -> last timestamp seen
    seen_spans = set()
    begins = ends = 0

    for index, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"event #{index} is not an object")
        phase = event.get("ph")
        name = event.get("name")
        if not isinstance(name, str):
            fail(f"event #{index} has no string 'name'")
        if phase == "M":
            continue
        if phase not in ("B", "E"):
            fail(f"event #{index} ({name!r}) has unsupported phase {phase!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"event #{index} ({name!r}) has no numeric 'ts'")
        track = (event.get("pid"), event.get("tid"))
        if ts < last_ts.get(track, float("-inf")):
            fail(
                f"event #{index} ({name!r}) goes back in time on "
                f"pid/tid {track}: ts={ts}"
            )
        last_ts[track] = ts
        stack = stacks.setdefault(track, [])
        if phase == "B":
            begins += 1
            seen_spans.add(name)
            stack.append((name, ts))
        else:
            ends += 1
            if not stack:
                fail(
                    f"event #{index}: end with no open span on "
                    f"pid/tid {track}"
                )
            stack.pop()

    for track, stack in stacks.items():
        if stack:
            names = ", ".join(name for name, _ in stack)
            fail(f"pid/tid {track} has {len(stack)} unclosed span(s): {names}")

    for name in args.expect_span:
        if name not in seen_spans:
            fail(f"expected span {name!r} never occurs")

    print(
        f"validate_trace: OK — {begins} spans "
        f"({begins + ends} events) across {len(stacks)} thread track(s)"
    )


if __name__ == "__main__":
    main()
