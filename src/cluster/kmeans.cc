#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/metrics.h"
#include "linalg/blas.h"

namespace fedsc {

namespace {

double SquaredDistance(const double* x, const double* y, int64_t d) {
  double sum = 0.0;
  for (int64_t i = 0; i < d; ++i) {
    const double diff = x[i] - y[i];
    sum += diff * diff;
  }
  return sum;
}

// k-means++ seeding: first center uniform, then proportional to squared
// distance from the nearest chosen center.
Matrix PlusPlusInit(const Matrix& points, int64_t k, Rng* rng) {
  const int64_t d = points.rows();
  const int64_t n = points.cols();
  Matrix centers(d, k);
  centers.SetCol(0, points.ColData(rng->UniformInt(n)));

  Vector dist2(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    dist2[static_cast<size_t>(i)] =
        SquaredDistance(points.ColData(i), centers.ColData(0), d);
  }
  for (int64_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (double v : dist2) total += v;
    int64_t pick;
    if (total <= 0.0) {
      pick = rng->UniformInt(n);  // all points coincide with a center
    } else {
      double target = rng->Uniform() * total;
      pick = n - 1;
      for (int64_t i = 0; i < n; ++i) {
        target -= dist2[static_cast<size_t>(i)];
        if (target <= 0.0) {
          pick = i;
          break;
        }
      }
    }
    centers.SetCol(c, points.ColData(pick));
    for (int64_t i = 0; i < n; ++i) {
      dist2[static_cast<size_t>(i)] =
          std::min(dist2[static_cast<size_t>(i)],
                   SquaredDistance(points.ColData(i), centers.ColData(c), d));
    }
  }
  return centers;
}

struct LloydOutcome {
  std::vector<int64_t> labels;
  Matrix centroids;
  double inertia = 0.0;
  int iterations = 0;
};

LloydOutcome Lloyd(const Matrix& points, Matrix centroids,
                   const KMeansOptions& options, Rng* rng) {
  const int64_t d = points.rows();
  const int64_t n = points.cols();
  const int64_t k = centroids.cols();

  LloydOutcome out;
  out.labels.assign(static_cast<size_t>(n), 0);
  std::vector<int64_t> counts(static_cast<size_t>(k), 0);
  Matrix next(d, k);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    out.iterations = iter + 1;
    // Assignment step.
    out.inertia = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double* x = points.ColData(i);
      double best = std::numeric_limits<double>::infinity();
      int64_t arg = 0;
      for (int64_t c = 0; c < k; ++c) {
        const double dist = SquaredDistance(x, centroids.ColData(c), d);
        if (dist < best) {
          best = dist;
          arg = c;
        }
      }
      out.labels[static_cast<size_t>(i)] = arg;
      out.inertia += best;
    }

    // Update step.
    next.Fill(0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (int64_t i = 0; i < n; ++i) {
      const int64_t c = out.labels[static_cast<size_t>(i)];
      Axpy(1.0, points.ColData(i), next.ColData(c), d);
      ++counts[static_cast<size_t>(c)];
    }
    for (int64_t c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] > 0) {
        Scal(1.0 / static_cast<double>(counts[static_cast<size_t>(c)]),
             next.ColData(c), d);
      } else {
        // Empty cluster: reseed at the point farthest from its centroid.
        double worst = -1.0;
        int64_t arg = rng->UniformInt(n);
        for (int64_t i = 0; i < n; ++i) {
          const int64_t owner = out.labels[static_cast<size_t>(i)];
          const double dist = SquaredDistance(
              points.ColData(i), centroids.ColData(owner), d);
          if (dist > worst) {
            worst = dist;
            arg = i;
          }
        }
        next.SetCol(c, points.ColData(arg));
      }
    }

    double movement = 0.0;
    for (int64_t c = 0; c < k; ++c) {
      movement += SquaredDistance(next.ColData(c), centroids.ColData(c), d);
    }
    centroids = next;
    if (movement <= options.tol) break;
  }

  // Final assignment against the last centroids.
  out.inertia = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double* x = points.ColData(i);
    double best = std::numeric_limits<double>::infinity();
    int64_t arg = 0;
    for (int64_t c = 0; c < k; ++c) {
      const double dist = SquaredDistance(x, centroids.ColData(c), d);
      if (dist < best) {
        best = dist;
        arg = c;
      }
    }
    out.labels[static_cast<size_t>(i)] = arg;
    out.inertia += best;
  }
  out.centroids = std::move(centroids);
  return out;
}

}  // namespace

Result<KMeansResult> KMeans(const Matrix& points, int64_t k,
                            const KMeansOptions& options) {
  const int64_t n = points.cols();
  if (k < 1 || k > n) {
    return Status::InvalidArgument("k-means needs 1 <= k <= N, got k=" +
                                   std::to_string(k) + " N=" +
                                   std::to_string(n));
  }
  Rng rng(options.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  const int restarts = std::max(1, options.num_init);
  FEDSC_METRIC_COUNTER("cluster.kmeans.runs").Increment();
  FEDSC_METRIC_COUNTER("cluster.kmeans.restarts").Add(restarts);
  for (int attempt = 0; attempt < restarts; ++attempt) {
    Matrix init;
    if (options.init == KMeansInit::kPlusPlus) {
      init = PlusPlusInit(points, k, &rng);
    } else {
      init = points.GatherCols(FarthestFirstIndices(points, k, &rng));
    }
    LloydOutcome outcome = Lloyd(points, std::move(init), options, &rng);
    FEDSC_METRIC_COUNTER("cluster.kmeans.iterations").Add(outcome.iterations);
    if (outcome.inertia < best.inertia) {
      best.inertia = outcome.inertia;
      best.labels = std::move(outcome.labels);
      best.centroids = std::move(outcome.centroids);
      best.iterations = outcome.iterations;
    }
  }
  return best;
}

std::vector<int64_t> FarthestFirstIndices(const Matrix& points, int64_t k,
                                          Rng* rng) {
  const int64_t d = points.rows();
  const int64_t n = points.cols();
  FEDSC_CHECK(1 <= k && k <= n) << "farthest-first needs 1 <= k <= N";
  std::vector<int64_t> picked;
  picked.reserve(static_cast<size_t>(k));
  picked.push_back(rng->UniformInt(n));

  Vector dist2(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    dist2[static_cast<size_t>(i)] =
        SquaredDistance(points.ColData(i), points.ColData(picked[0]), d);
  }
  while (static_cast<int64_t>(picked.size()) < k) {
    int64_t arg = 0;
    double worst = -1.0;
    for (int64_t i = 0; i < n; ++i) {
      if (dist2[static_cast<size_t>(i)] > worst) {
        worst = dist2[static_cast<size_t>(i)];
        arg = i;
      }
    }
    picked.push_back(arg);
    for (int64_t i = 0; i < n; ++i) {
      dist2[static_cast<size_t>(i)] =
          std::min(dist2[static_cast<size_t>(i)],
                   SquaredDistance(points.ColData(i), points.ColData(arg), d));
    }
  }
  return picked;
}

}  // namespace fedsc
