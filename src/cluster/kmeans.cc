#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "common/metrics.h"
#include "linalg/blas.h"

namespace fedsc {

namespace {

double SquaredDistance(const double* x, const double* y, int64_t d) {
  double sum = 0.0;
  for (int64_t i = 0; i < d; ++i) {
    const double diff = x[i] - y[i];
    sum += diff * diff;
  }
  return sum;
}

// k-means++ seeding: first center uniform, then proportional to squared
// distance from the nearest chosen center.
Matrix PlusPlusInit(const Matrix& points, int64_t k, Rng* rng) {
  const int64_t d = points.rows();
  const int64_t n = points.cols();
  Matrix centers(d, k);
  centers.SetCol(0, points.ColData(rng->UniformInt(n)));

  Vector dist2(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    dist2[static_cast<size_t>(i)] =
        SquaredDistance(points.ColData(i), centers.ColData(0), d);
  }
  for (int64_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (double v : dist2) total += v;
    int64_t pick;
    if (total <= 0.0) {
      pick = rng->UniformInt(n);  // all points coincide with a center
    } else {
      double target = rng->Uniform() * total;
      pick = n - 1;
      for (int64_t i = 0; i < n; ++i) {
        target -= dist2[static_cast<size_t>(i)];
        if (target <= 0.0) {
          pick = i;
          break;
        }
      }
    }
    centers.SetCol(c, points.ColData(pick));
    for (int64_t i = 0; i < n; ++i) {
      dist2[static_cast<size_t>(i)] =
          std::min(dist2[static_cast<size_t>(i)],
                   SquaredDistance(points.ColData(i), centers.ColData(c), d));
    }
  }
  return centers;
}

struct LloydOutcome {
  std::vector<int64_t> labels;
  Matrix centroids;
  double inertia = 0.0;
  int iterations = 0;
};

// --- Robust update-step helpers (KMeansRobustOptions) ---

// Marks the trim_count points with the largest assigned distance (ties by
// lowest index so the trim set is deterministic). Returns per-point weights:
// 1 for kept points, 0 for trimmed ones.
std::vector<double> TrimWeights(const std::vector<double>& dist,
                                int64_t trim_count) {
  const int64_t n = static_cast<int64_t>(dist.size());
  std::vector<double> weights(static_cast<size_t>(n), 1.0);
  if (trim_count <= 0) return weights;
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&dist](int64_t a, int64_t b) {
    const double da = dist[static_cast<size_t>(a)];
    const double db = dist[static_cast<size_t>(b)];
    if (da != db) return da > db;
    return a < b;
  });
  for (int64_t t = 0; t < std::min(trim_count, n); ++t) {
    weights[static_cast<size_t>(order[static_cast<size_t>(t)])] = 0.0;
  }
  return weights;
}

// Influence cap: scales group weights inside each cluster so that no group
// carries more than max_group_fraction of the cluster's FINAL (post-cap)
// update mass. Water-filling over groups sorted by mass (descending, group
// id ascending on ties): cap the top c groups to exactly the fraction of
// the implied final total T' = uncapped_mass / (1 - c * f), picking the
// smallest c for which the (c+1)-th group fits under the cap. When even
// equal shares violate the cap (c * f >= 1 before a fit), every group is
// scaled to equal mass — the closest satisfiable allocation.
void ApplyGroupCap(const std::vector<int64_t>& labels,
                   const std::vector<int64_t>& point_group,
                   double max_group_fraction, int64_t k,
                   std::vector<double>* weights) {
  if (point_group.empty() || max_group_fraction >= 1.0) return;
  const double f = max_group_fraction;
  const int64_t n = static_cast<int64_t>(weights->size());
  for (int64_t c = 0; c < k; ++c) {
    std::map<int64_t, double> group_mass;
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      if (labels[static_cast<size_t>(i)] != c) continue;
      total += (*weights)[static_cast<size_t>(i)];
      group_mass[point_group[static_cast<size_t>(i)]] +=
          (*weights)[static_cast<size_t>(i)];
    }
    if (total <= 0.0) continue;
    std::vector<std::pair<int64_t, double>> groups(group_mass.begin(),
                                                   group_mass.end());
    std::sort(groups.begin(), groups.end(),
              [](const std::pair<int64_t, double>& a,
                 const std::pair<int64_t, double>& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    // Per-group weight multiplier after capping.
    std::map<int64_t, double> scale;
    double uncapped = total;
    bool equalize = true;
    for (size_t capped = 0; capped < groups.size(); ++capped) {
      const double denom = 1.0 - f * static_cast<double>(capped);
      if (denom <= 1e-12) break;  // caps unsatisfiable: equalize below
      const double final_total = uncapped / denom;
      if (groups[capped].second <= f * final_total) {
        for (size_t g = 0; g < capped; ++g) {
          scale[groups[g].first] = f * final_total / groups[g].second;
        }
        equalize = false;
        break;
      }
      uncapped -= groups[capped].second;
    }
    if (equalize) {
      // Every group gets equal mass (share 1/G <= f here).
      for (const auto& [group, mass] : groups) {
        scale[group] = mass > 0.0 ? 1.0 / mass : 1.0;
      }
    }
    if (scale.empty()) continue;
    for (int64_t i = 0; i < n; ++i) {
      if (labels[static_cast<size_t>(i)] != c) continue;
      const auto it = scale.find(point_group[static_cast<size_t>(i)]);
      if (it != scale.end()) {
        (*weights)[static_cast<size_t>(i)] *= it->second;
      }
    }
  }
}

// Weighted lower median per coordinate: the smallest member value whose
// cumulative weight reaches half the total (ties in value break by index
// via the stable member order).
void WeightedCoordinateMedian(const Matrix& points,
                              const std::vector<int64_t>& members,
                              const std::vector<double>& weights,
                              double* center) {
  const int64_t d = points.rows();
  std::vector<std::pair<double, double>> entries;  // (value, weight)
  for (int64_t coord = 0; coord < d; ++coord) {
    entries.clear();
    double total = 0.0;
    for (int64_t i : members) {
      const double w = weights[static_cast<size_t>(i)];
      entries.push_back({points.ColData(i)[coord], w});
      total += w;
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const std::pair<double, double>& a,
                        const std::pair<double, double>& b) {
                       return a.first < b.first;
                     });
    double cumulative = 0.0;
    double value = entries.back().first;
    for (const auto& [v, w] : entries) {
      cumulative += w;
      if (cumulative >= 0.5 * total) {
        value = v;
        break;
      }
    }
    center[coord] = value;
  }
}

// Weighted geometric median via Weiszfeld iterations from the weighted
// mean. Fixed iteration cap and epsilon-guarded distances keep the result a
// deterministic pure function of the inputs.
void WeightedGeometricMedian(const Matrix& points,
                             const std::vector<int64_t>& members,
                             const std::vector<double>& weights,
                             double* center) {
  const int64_t d = points.rows();
  double total = 0.0;
  std::fill(center, center + d, 0.0);
  for (int64_t i : members) {
    const double w = weights[static_cast<size_t>(i)];
    Axpy(w, points.ColData(i), center, d);
    total += w;
  }
  if (total <= 0.0) return;
  Scal(1.0 / total, center, d);

  std::vector<double> next(static_cast<size_t>(d), 0.0);
  constexpr int kMaxWeiszfeld = 64;
  constexpr double kEps = 1e-12;
  for (int iter = 0; iter < kMaxWeiszfeld; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double denom = 0.0;
    for (int64_t i : members) {
      const double w = weights[static_cast<size_t>(i)];
      if (w <= 0.0) continue;
      const double dist =
          std::sqrt(SquaredDistance(points.ColData(i), center, d));
      const double inv = w / std::max(dist, kEps);
      Axpy(inv, points.ColData(i), next.data(), d);
      denom += inv;
    }
    if (denom <= 0.0) break;
    Scal(1.0 / denom, next.data(), d);
    const double movement = SquaredDistance(next.data(), center, d);
    std::copy(next.begin(), next.end(), center);
    if (movement <= kEps) break;
  }
}

LloydOutcome Lloyd(const Matrix& points, Matrix centroids,
                   const KMeansOptions& options, Rng* rng) {
  const int64_t d = points.rows();
  const int64_t n = points.cols();
  const int64_t k = centroids.cols();
  const KMeansRobustOptions& robust = options.robust;
  // Trim budget of the robust assignment step; 0 keeps classic Lloyd.
  const int64_t trim_count =
      robust.enabled
          ? static_cast<int64_t>(std::floor(robust.trim_fraction *
                                            static_cast<double>(n)))
          : 0;

  LloydOutcome out;
  out.labels.assign(static_cast<size_t>(n), 0);
  std::vector<int64_t> counts(static_cast<size_t>(k), 0);
  std::vector<double> dist(static_cast<size_t>(n), 0.0);
  Matrix next(d, k);

  // Assigns every point to its nearest centroid; returns the inertia over
  // the kept points (all of them classically, the untrimmed ones in robust
  // mode — trimmed points keep labels but never steer the objective).
  const auto assign = [&](const Matrix& against) {
    for (int64_t i = 0; i < n; ++i) {
      const double* x = points.ColData(i);
      double best = std::numeric_limits<double>::infinity();
      int64_t arg = 0;
      for (int64_t c = 0; c < k; ++c) {
        const double candidate = SquaredDistance(x, against.ColData(c), d);
        if (candidate < best) {
          best = candidate;
          arg = c;
        }
      }
      out.labels[static_cast<size_t>(i)] = arg;
      dist[static_cast<size_t>(i)] = best;
    }
    double inertia = 0.0;
    const std::vector<double> weights = TrimWeights(dist, trim_count);
    for (int64_t i = 0; i < n; ++i) {
      if (weights[static_cast<size_t>(i)] > 0.0) {
        inertia += dist[static_cast<size_t>(i)];
      }
    }
    return inertia;
  };

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    out.iterations = iter + 1;
    out.inertia = assign(centroids);

    // Update step.
    if (robust.enabled) {
      std::vector<double> weights = TrimWeights(dist, trim_count);
      ApplyGroupCap(out.labels, robust.point_group,
                    robust.max_group_fraction, k, &weights);
      for (int64_t c = 0; c < k; ++c) {
        std::vector<int64_t> members;
        double mass = 0.0;
        for (int64_t i = 0; i < n; ++i) {
          if (out.labels[static_cast<size_t>(i)] != c) continue;
          if (weights[static_cast<size_t>(i)] <= 0.0) continue;
          members.push_back(i);
          mass += weights[static_cast<size_t>(i)];
        }
        if (members.empty() || mass <= 0.0) {
          // Empty (or fully trimmed) cluster: reseed at the point farthest
          // from its centroid, like the classic path.
          double worst = -1.0;
          int64_t arg = rng->UniformInt(n);
          for (int64_t i = 0; i < n; ++i) {
            if (dist[static_cast<size_t>(i)] > worst) {
              worst = dist[static_cast<size_t>(i)];
              arg = i;
            }
          }
          next.SetCol(c, points.ColData(arg));
          continue;
        }
        switch (robust.center) {
          case KMeansCenter::kMean: {
            double* center = next.ColData(c);
            std::fill(center, center + d, 0.0);
            for (int64_t i : members) {
              Axpy(weights[static_cast<size_t>(i)], points.ColData(i),
                   center, d);
            }
            Scal(1.0 / mass, center, d);
            break;
          }
          case KMeansCenter::kCoordinateMedian:
            WeightedCoordinateMedian(points, members, weights,
                                     next.ColData(c));
            break;
          case KMeansCenter::kGeometricMedian:
            WeightedGeometricMedian(points, members, weights,
                                    next.ColData(c));
            break;
        }
      }
    } else {
      next.Fill(0.0);
      std::fill(counts.begin(), counts.end(), 0);
      for (int64_t i = 0; i < n; ++i) {
        const int64_t c = out.labels[static_cast<size_t>(i)];
        Axpy(1.0, points.ColData(i), next.ColData(c), d);
        ++counts[static_cast<size_t>(c)];
      }
      for (int64_t c = 0; c < k; ++c) {
        if (counts[static_cast<size_t>(c)] > 0) {
          Scal(1.0 / static_cast<double>(counts[static_cast<size_t>(c)]),
               next.ColData(c), d);
        } else {
          // Empty cluster: reseed at the point farthest from its centroid.
          double worst = -1.0;
          int64_t arg = rng->UniformInt(n);
          for (int64_t i = 0; i < n; ++i) {
            const int64_t owner = out.labels[static_cast<size_t>(i)];
            const double candidate = SquaredDistance(
                points.ColData(i), centroids.ColData(owner), d);
            if (candidate > worst) {
              worst = candidate;
              arg = i;
            }
          }
          next.SetCol(c, points.ColData(arg));
        }
      }
    }

    double movement = 0.0;
    for (int64_t c = 0; c < k; ++c) {
      movement += SquaredDistance(next.ColData(c), centroids.ColData(c), d);
    }
    centroids = next;
    if (movement <= options.tol) break;
  }

  // Final assignment against the last centroids.
  out.inertia = assign(centroids);
  out.centroids = std::move(centroids);
  return out;
}

}  // namespace

Result<KMeansResult> KMeans(const Matrix& points, int64_t k,
                            const KMeansOptions& options) {
  const int64_t n = points.cols();
  if (k < 1 || k > n) {
    return Status::InvalidArgument("k-means needs 1 <= k <= N, got k=" +
                                   std::to_string(k) + " N=" +
                                   std::to_string(n));
  }
  const KMeansRobustOptions& robust = options.robust;
  if (robust.enabled) {
    if (!(robust.trim_fraction >= 0.0 && robust.trim_fraction <= 0.5)) {
      return Status::InvalidArgument(
          "robust k-means trim_fraction must lie in [0, 0.5], got " +
          std::to_string(robust.trim_fraction));
    }
    if (!(robust.max_group_fraction > 0.0 &&
          robust.max_group_fraction <= 1.0)) {
      return Status::InvalidArgument(
          "robust k-means max_group_fraction must lie in (0, 1], got " +
          std::to_string(robust.max_group_fraction));
    }
    if (!robust.point_group.empty() &&
        static_cast<int64_t>(robust.point_group.size()) != n) {
      return Status::InvalidArgument(
          "robust k-means point_group must be empty or have one entry per "
          "point, got " +
          std::to_string(robust.point_group.size()) + " for N=" +
          std::to_string(n));
    }
  }
  Rng rng(options.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  const int restarts = std::max(1, options.num_init);
  FEDSC_METRIC_COUNTER("cluster.kmeans.runs").Increment();
  FEDSC_METRIC_COUNTER("cluster.kmeans.restarts").Add(restarts);
  for (int attempt = 0; attempt < restarts; ++attempt) {
    Matrix init;
    if (options.init == KMeansInit::kPlusPlus) {
      init = PlusPlusInit(points, k, &rng);
    } else {
      init = points.GatherCols(FarthestFirstIndices(points, k, &rng));
    }
    LloydOutcome outcome = Lloyd(points, std::move(init), options, &rng);
    FEDSC_METRIC_COUNTER("cluster.kmeans.iterations").Add(outcome.iterations);
    if (outcome.inertia < best.inertia) {
      best.inertia = outcome.inertia;
      best.labels = std::move(outcome.labels);
      best.centroids = std::move(outcome.centroids);
      best.iterations = outcome.iterations;
    }
  }
  return best;
}

std::vector<int64_t> FarthestFirstIndices(const Matrix& points, int64_t k,
                                          Rng* rng) {
  const int64_t d = points.rows();
  const int64_t n = points.cols();
  FEDSC_CHECK(1 <= k && k <= n) << "farthest-first needs 1 <= k <= N";
  std::vector<int64_t> picked;
  picked.reserve(static_cast<size_t>(k));
  picked.push_back(rng->UniformInt(n));

  Vector dist2(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    dist2[static_cast<size_t>(i)] =
        SquaredDistance(points.ColData(i), points.ColData(picked[0]), d);
  }
  while (static_cast<int64_t>(picked.size()) < k) {
    int64_t arg = 0;
    double worst = -1.0;
    for (int64_t i = 0; i < n; ++i) {
      if (dist2[static_cast<size_t>(i)] > worst) {
        worst = dist2[static_cast<size_t>(i)];
        arg = i;
      }
    }
    picked.push_back(arg);
    for (int64_t i = 0; i < n; ++i) {
      dist2[static_cast<size_t>(i)] =
          std::min(dist2[static_cast<size_t>(i)],
                   SquaredDistance(points.ColData(i), points.ColData(arg), d));
    }
  }
  return picked;
}

}  // namespace fedsc
