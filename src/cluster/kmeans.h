// Lloyd's k-means with k-means++ (or farthest-first) seeding, restarts, and
// empty-cluster repair. Used by spectral clustering (on embedding rows) and
// by the k-FED baseline (on raw points and pooled centroids).

#ifndef FEDSC_CLUSTER_KMEANS_H_
#define FEDSC_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/matrix.h"

namespace fedsc {

enum class KMeansInit { kPlusPlus, kFarthestFirst };

// Center estimator of the robust update step. kMean is the classic Lloyd
// update; the medians bound the influence of any single point (a
// coordinate-wise median has breakdown point 1/2 per coordinate, the
// geometric median 1/2 in norm), which is what the Byzantine defense
// (fed/defense.h) relies on when adversarial samples survive screening.
enum class KMeansCenter { kMean, kCoordinateMedian, kGeometricMedian };

// Byzantine-robust Lloyd variant, off by default. With enabled = true:
//   - Trimmed assignment: the trim_fraction of points farthest from their
//     assigned center keep their labels but are excluded from the center
//     update (and from the restart-selection inertia).
//   - Robust centers: `center` replaces the mean update.
//   - Influence cap: with point_group set (e.g. the owning device of each
//     pooled sample), no group contributes more than max_group_fraction of
//     any cluster's update mass — over-represented groups are down-weighted
//     proportionally.
// Every tie (equal distances, equal coordinate values) breaks by lowest
// index, so results stay bit-identical across runs and thread counts.
struct KMeansRobustOptions {
  bool enabled = false;
  double trim_fraction = 0.0;                        // in [0, 0.5]
  KMeansCenter center = KMeansCenter::kCoordinateMedian;
  double max_group_fraction = 1.0;                   // in (0, 1]
  std::vector<int64_t> point_group;                  // empty or size N
};

struct KMeansOptions {
  int max_iterations = 100;
  // Independent restarts; the run with the lowest inertia wins.
  int num_init = 3;
  KMeansInit init = KMeansInit::kPlusPlus;
  // Stop when the total centroid movement (squared) drops below tol.
  double tol = 1e-9;
  uint64_t seed = 0x5eed'cafeULL;
  KMeansRobustOptions robust;
};

struct KMeansResult {
  Matrix centroids;             // d x k
  std::vector<int64_t> labels;  // size N, values in [0, k)
  double inertia = 0.0;         // sum of squared distances to centroids
  int iterations = 0;           // of the winning restart
};

// Clusters the N columns of `points` (d x N) into k groups. Requires
// 1 <= k <= N.
Result<KMeansResult> KMeans(const Matrix& points, int64_t k,
                            const KMeansOptions& options = {});

// Farthest-first traversal: greedily picks k column indices, each maximizing
// the distance to the closest already-picked column (first pick random).
// This is the seeding k-FED's server stage uses to spread the L initial
// centers across well-separated local centroids.
std::vector<int64_t> FarthestFirstIndices(const Matrix& points, int64_t k,
                                          Rng* rng);

}  // namespace fedsc

#endif  // FEDSC_CLUSTER_KMEANS_H_
