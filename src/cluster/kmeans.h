// Lloyd's k-means with k-means++ (or farthest-first) seeding, restarts, and
// empty-cluster repair. Used by spectral clustering (on embedding rows) and
// by the k-FED baseline (on raw points and pooled centroids).

#ifndef FEDSC_CLUSTER_KMEANS_H_
#define FEDSC_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/matrix.h"

namespace fedsc {

enum class KMeansInit { kPlusPlus, kFarthestFirst };

struct KMeansOptions {
  int max_iterations = 100;
  // Independent restarts; the run with the lowest inertia wins.
  int num_init = 3;
  KMeansInit init = KMeansInit::kPlusPlus;
  // Stop when the total centroid movement (squared) drops below tol.
  double tol = 1e-9;
  uint64_t seed = 0x5eed'cafeULL;
};

struct KMeansResult {
  Matrix centroids;             // d x k
  std::vector<int64_t> labels;  // size N, values in [0, k)
  double inertia = 0.0;         // sum of squared distances to centroids
  int iterations = 0;           // of the winning restart
};

// Clusters the N columns of `points` (d x N) into k groups. Requires
// 1 <= k <= N.
Result<KMeansResult> KMeans(const Matrix& points, int64_t k,
                            const KMeansOptions& options = {});

// Farthest-first traversal: greedily picks k column indices, each maximizing
// the distance to the closest already-picked column (first pick random).
// This is the seeding k-FED's server stage uses to spread the L initial
// centers across well-separated local centroids.
std::vector<int64_t> FarthestFirstIndices(const Matrix& points, int64_t k,
                                          Rng* rng);

}  // namespace fedsc

#endif  // FEDSC_CLUSTER_KMEANS_H_
