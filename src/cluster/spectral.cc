#include "cluster/spectral.h"

#include <algorithm>
#include <cmath>

#include "common/trace.h"
#include "graph/laplacian.h"
#include "linalg/blas.h"
#include "linalg/eig.h"
#include "linalg/lanczos.h"

namespace fedsc {

namespace {

Status ValidateArgs(int64_t n, int64_t cols, int64_t k) {
  if (n != cols) return Status::InvalidArgument("affinity must be square");
  if (k < 1 || k > n) {
    return Status::InvalidArgument("spectral clustering needs 1 <= k <= N");
  }
  return Status::OK();
}

// K-means over the rows of the (optionally row-normalized) embedding.
Result<SpectralResult> FinishFromEmbedding(Matrix embedding,
                                           const SpectralOptions& options,
                                           int64_t k) {
  const int64_t n = embedding.rows();
  if (options.normalize_rows) {
    for (int64_t i = 0; i < n; ++i) {
      double norm = 0.0;
      for (int64_t j = 0; j < k; ++j) {
        norm += embedding(i, j) * embedding(i, j);
      }
      norm = std::sqrt(norm);
      if (norm > 1e-300) {
        for (int64_t j = 0; j < k; ++j) embedding(i, j) /= norm;
      }
    }
  }
  // k-means treats points as columns, so cluster the transposed embedding.
  FEDSC_ASSIGN_OR_RETURN(KMeansResult km,
                         KMeans(embedding.Transposed(), k, options.kmeans));
  SpectralResult result;
  result.labels = std::move(km.labels);
  result.embedding = std::move(embedding);
  result.kmeans_iterations = km.iterations;
  return result;
}

}  // namespace

Result<SpectralResult> SpectralCluster(const Matrix& affinity, int64_t k,
                                       const SpectralOptions& options) {
  FEDSC_RETURN_NOT_OK(ValidateArgs(affinity.rows(), affinity.cols(), k));
  FEDSC_TRACE_SPAN("cluster/spectral",
                   {{"n", affinity.rows()}, {"k", k}, {"kind", "dense"}});
  const Matrix m = NormalizedAdjacency(affinity);
  EigOptions eig_options;
  eig_options.num_threads = options.num_threads;
  FEDSC_ASSIGN_OR_RETURN(EigResult eig, SymmetricEigen(m, eig_options));
  // Largest k eigenvectors of M == smallest k of the normalized Laplacian.
  const int64_t n = affinity.rows();
  Matrix embedding(n, k);
  for (int64_t j = 0; j < k; ++j) {
    embedding.SetCol(j, eig.vectors.ColData(n - 1 - j));
  }
  return FinishFromEmbedding(std::move(embedding), options, k);
}

Result<SpectralResult> SpectralCluster(const SparseMatrix& affinity, int64_t k,
                                       const SpectralOptions& options) {
  FEDSC_RETURN_NOT_OK(ValidateArgs(affinity.rows(), affinity.cols(), k));
  const int64_t n = affinity.rows();
  if (n < options.lanczos_threshold) {
    return SpectralCluster(affinity.ToDense(), k, options);
  }
  FEDSC_TRACE_SPAN("cluster/spectral",
                   {{"n", n}, {"k", k}, {"kind", "sparse"}});
  const SparseMatrix m = NormalizedAdjacency(affinity);
  const SymmetricOperator apply = [&m](const double* x, double* y) {
    m.Multiply(x, y);
  };
  // Subspace iteration rather than Lanczos: the top eigenvalue of a
  // well-separated affinity graph is degenerate (multiplicity = number of
  // components), which orthogonal iteration handles natively. The +1 shift
  // makes the wanted algebraically-largest eigenvalues of the normalized
  // adjacency (spectrum in [-1, 1]) dominant in magnitude.
  SubspaceIterationOptions iteration;
  iteration.shift = 1.0;
  FEDSC_ASSIGN_OR_RETURN(EigResult eig,
                         SubspaceIterationLargest(apply, n, k, iteration));
  Matrix embedding(n, k);
  for (int64_t j = 0; j < k && j < eig.vectors.cols(); ++j) {
    embedding.SetCol(j, eig.vectors.ColData(j));  // already descending
  }
  return FinishFromEmbedding(std::move(embedding), options, k);
}

}  // namespace fedsc
