#include "cluster/spectral.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "graph/laplacian.h"
#include "linalg/blas.h"
#include "linalg/eig.h"
#include "linalg/lanczos.h"

namespace fedsc {

namespace {

Status ValidateArgs(int64_t n, int64_t cols, int64_t k) {
  if (n != cols) return Status::InvalidArgument("affinity must be square");
  if (k < 1 || k > n) {
    return Status::InvalidArgument("spectral clustering needs 1 <= k <= N");
  }
  return Status::OK();
}

// K-means over the rows of the (optionally row-normalized) embedding.
Result<SpectralResult> FinishFromEmbedding(Matrix embedding,
                                           const SpectralOptions& options,
                                           int64_t k) {
  const int64_t n = embedding.rows();
  if (options.normalize_rows) {
    for (int64_t i = 0; i < n; ++i) {
      double norm = 0.0;
      for (int64_t j = 0; j < k; ++j) {
        norm += embedding(i, j) * embedding(i, j);
      }
      norm = std::sqrt(norm);
      if (norm > 1e-300) {
        for (int64_t j = 0; j < k; ++j) embedding(i, j) /= norm;
      }
    }
  }
  // k-means treats points as columns, so cluster the transposed embedding.
  FEDSC_ASSIGN_OR_RETURN(KMeansResult km,
                         KMeans(embedding.Transposed(), k, options.kmeans));
  SpectralResult result;
  result.labels = std::move(km.labels);
  result.embedding = std::move(embedding);
  result.kmeans_iterations = km.iterations;
  return result;
}

}  // namespace

Result<SpectralResult> SpectralCluster(const Matrix& affinity, int64_t k,
                                       const SpectralOptions& options) {
  FEDSC_RETURN_NOT_OK(ValidateArgs(affinity.rows(), affinity.cols(), k));
  FEDSC_TRACE_SPAN("cluster/spectral",
                   {{"n", affinity.rows()}, {"k", k}, {"kind", "dense"}});
  const Matrix m = NormalizedAdjacency(affinity);
  EigOptions eig_options;
  eig_options.num_threads = options.num_threads;
  FEDSC_ASSIGN_OR_RETURN(EigResult eig, SymmetricEigen(m, eig_options));
  // Largest k eigenvectors of M == smallest k of the normalized Laplacian.
  const int64_t n = affinity.rows();
  Matrix embedding(n, k);
  for (int64_t j = 0; j < k; ++j) {
    embedding.SetCol(j, eig.vectors.ColData(n - 1 - j));
  }
  return FinishFromEmbedding(std::move(embedding), options, k);
}

Result<SpectralResult> SpectralCluster(const SparseMatrix& affinity, int64_t k,
                                       const SpectralOptions& options) {
  FEDSC_RETURN_NOT_OK(ValidateArgs(affinity.rows(), affinity.cols(), k));
  const int64_t n = affinity.rows();
  if (n < options.lanczos_threshold) {
    return SpectralCluster(affinity.ToDense(), k, options);
  }
  FEDSC_TRACE_SPAN("cluster/spectral",
                   {{"n", n}, {"k", k}, {"kind", "sparse"}});
  const SparseMatrix m = NormalizedAdjacency(affinity);
  const SymmetricOperator apply = [&m](const double* x, double* y) {
    m.Multiply(x, y);
  };
  // Subspace iteration rather than Lanczos: the top eigenvalue of a
  // well-separated affinity graph is degenerate (multiplicity = number of
  // components), which orthogonal iteration handles natively. The +1 shift
  // makes the wanted algebraically-largest eigenvalues of the normalized
  // adjacency (spectrum in [-1, 1]) dominant in magnitude.
  SubspaceIterationOptions iteration;
  iteration.shift = 1.0;
  FEDSC_ASSIGN_OR_RETURN(EigResult eig,
                         SubspaceIterationLargest(apply, n, k, iteration));
  Matrix embedding(n, k);
  for (int64_t j = 0; j < k && j < eig.vectors.cols(); ++j) {
    embedding.SetCol(j, eig.vectors.ColData(j));  // already descending
  }
  return FinishFromEmbedding(std::move(embedding), options, k);
}

Result<SpectralResult> SpectralClusterLandmark(
    const SparseMatrix& coefficients, int64_t k,
    const SpectralOptions& options) {
  const int64_t num_atoms = coefficients.rows();
  const int64_t n = coefficients.cols();
  if (k < 1 || k > n) {
    return Status::InvalidArgument("spectral clustering needs 1 <= k <= N");
  }
  if (k > num_atoms) {
    return Status::InvalidArgument(
        "landmark spectral clustering needs k <= sketch dim (" +
        std::to_string(k) + " > " + std::to_string(num_atoms) + ")");
  }
  FEDSC_TRACE_SPAN("spectral/nystrom",
                   {{"n", n}, {"k", k}, {"atoms", num_atoms}});

  // B = |C|; the affinity semantics of every self-expression method uses
  // coefficient magnitudes.
  SparseMatrix b = coefficients;
  for (double& v : *b.mutable_values()) v = std::fabs(v);

  const Vector degrees = LandmarkDegrees(b);
  const SparseMatrix m = LandmarkNormalizedFactor(b, degrees);
  const SparseMatrix mt = m.Transposed();  // row i = point i's atom support

  // d x d core T = M M^T. Row a of T is produced independently (disjoint
  // output, summation order fixed by the CSR layouts), so the fan-out is
  // bit-identical for every thread count. Cost sum_j supp(j)^2.
  Matrix core(num_atoms, num_atoms);
  ParallelForRanges(0, num_atoms, options.num_threads, [&](int64_t a0,
                                                           int64_t a1, int) {
    for (int64_t a = a0; a < a1; ++a) {
      double* col = core.ColData(a);  // row a of the symmetric core
      for (int64_t p = m.row_ptr()[static_cast<size_t>(a)];
           p < m.row_ptr()[static_cast<size_t>(a) + 1]; ++p) {
        const int64_t j = m.col_idx()[static_cast<size_t>(p)];
        const double v_aj = m.values()[static_cast<size_t>(p)];
        for (int64_t q = mt.row_ptr()[static_cast<size_t>(j)];
             q < mt.row_ptr()[static_cast<size_t>(j) + 1]; ++q) {
          col[mt.col_idx()[static_cast<size_t>(q)]] +=
              v_aj * mt.values()[static_cast<size_t>(q)];
        }
      }
    }
  });

  EigOptions eig_options;
  eig_options.num_threads = options.num_threads;
  FEDSC_ASSIGN_OR_RETURN(EigResult eig, SymmetricEigen(core, eig_options));

  // Extend the top-k core eigenvectors to all N rows: T v = lambda v gives
  // M^T M u = lambda u for u = M^T v / sqrt(lambda). Rows of the embedding
  // are disjoint per point, so the extension threads cleanly.
  Vector inv_sqrt(static_cast<size_t>(k), 0.0);
  Matrix top_vectors(num_atoms, k);
  for (int64_t t = 0; t < k; ++t) {
    const double lambda = eig.values[static_cast<size_t>(num_atoms - 1 - t)];
    inv_sqrt[static_cast<size_t>(t)] =
        lambda > 1e-12 ? 1.0 / std::sqrt(lambda) : 0.0;
    top_vectors.SetCol(t, eig.vectors.ColData(num_atoms - 1 - t));
  }
  Matrix embedding(n, k);
  ParallelForRanges(0, n, options.num_threads, [&](int64_t i0, int64_t i1,
                                                   int) {
    for (int64_t i = i0; i < i1; ++i) {
      for (int64_t t = 0; t < k; ++t) {
        const double* v = top_vectors.ColData(t);
        double sum = 0.0;
        for (int64_t q = mt.row_ptr()[static_cast<size_t>(i)];
             q < mt.row_ptr()[static_cast<size_t>(i) + 1]; ++q) {
          sum += mt.values()[static_cast<size_t>(q)] *
                 v[mt.col_idx()[static_cast<size_t>(q)]];
        }
        embedding(i, t) = sum * inv_sqrt[static_cast<size_t>(t)];
      }
    }
  });
  return FinishFromEmbedding(std::move(embedding), options, k);
}

}  // namespace fedsc
