// Normalized spectral clustering (von Luxburg's tutorial, ref [24] of the
// paper): embed each vertex by the k smallest eigenvectors of the normalized
// Laplacian (equivalently, the k largest of D^{-1/2} W D^{-1/2}), normalize
// the embedding rows, and run k-means.
//
// Small graphs use the dense symmetric eigensolver; large graphs use Lanczos
// on the sparse normalized adjacency.

#ifndef FEDSC_CLUSTER_SPECTRAL_H_
#define FEDSC_CLUSTER_SPECTRAL_H_

#include <cstdint>
#include <vector>

#include "cluster/kmeans.h"
#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace fedsc {

struct SpectralOptions {
  // Row-normalize the spectral embedding (Ng-Jordan-Weiss step).
  bool normalize_rows = true;
  // Sparse graphs of at least this many vertices use Lanczos instead of
  // densifying.
  int64_t lanczos_threshold = 900;
  // Workers for the dense eigendecomposition (blocked tridiagonalization
  // GEMMs). Bit-identical results for every thread count.
  int num_threads = 1;
  KMeansOptions kmeans;
};

struct SpectralResult {
  std::vector<int64_t> labels;  // size N, values in [0, k)
  Matrix embedding;             // N x k spectral embedding (post-normalization)
  // Lloyd iterations of the best k-means restart on the embedding.
  int kmeans_iterations = 0;
};

Result<SpectralResult> SpectralCluster(const Matrix& affinity, int64_t k,
                                       const SpectralOptions& options = {});

Result<SpectralResult> SpectralCluster(const SparseMatrix& affinity, int64_t k,
                                       const SpectralOptions& options = {});

// Nystrom/landmark spectral clustering (the sketched central path): clusters
// the N points of the implied affinity W = |C|^T |C|, where `coefficients`
// is the d x N atom-by-point matrix the sketched self-expression produced —
// without ever forming the N x N graph. With M = |C| D^{-1/2}, the top-k
// eigenvectors of the normalized adjacency M^T M are recovered from the
// d x d core T = M M^T (blocked SymmetricEigen) and extended to all N rows
// by u = M^T v / sqrt(lambda), then handed to the usual row-normalize +
// k-means finish. Cost O(nnz(C) * d + d^3) instead of O(N^3). Requires
// 1 <= k <= d. Bit-identical for every thread count.
Result<SpectralResult> SpectralClusterLandmark(
    const SparseMatrix& coefficients, int64_t k,
    const SpectralOptions& options = {});

}  // namespace fedsc

#endif  // FEDSC_CLUSTER_SPECTRAL_H_
