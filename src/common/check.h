// FEDSC_CHECK / FEDSC_DCHECK: crash-on-violation invariant macros for
// programming errors (recoverable errors use Status/Result instead).
//
//   FEDSC_CHECK(n >= 0) << "negative size " << n;

#ifndef FEDSC_COMMON_CHECK_H_
#define FEDSC_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace fedsc::internal {

// Accumulates a failure message and aborts when destroyed. Only ever
// constructed on the failure path.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "FEDSC_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }
  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace fedsc::internal

// The `while` never loops: the streamed temporary's destructor aborts. The
// shape exists so a trailing `<< ...` message binds to the stream.
#define FEDSC_CHECK(condition)  \
  while (!(condition))          \
  ::fedsc::internal::CheckFailureStream(#condition, __FILE__, __LINE__)

#ifndef NDEBUG
#define FEDSC_DCHECK(condition) FEDSC_CHECK(condition)
#else
#define FEDSC_DCHECK(condition) \
  while (false)                 \
  ::fedsc::internal::CheckFailureStream(#condition, __FILE__, __LINE__)
#endif

#endif  // FEDSC_COMMON_CHECK_H_
