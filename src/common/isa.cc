#include "common/isa.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/check.h"

namespace fedsc {

namespace {

bool HostHasAvx2Fma() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool HostHasAvx512f() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

IsaDispatch ComputeDefaultIsa() {
  const char* forced = std::getenv("FEDSC_FORCE_ISA");
  if (forced != nullptr && forced[0] != '\0') {
    CpuIsa isa = CpuIsa::kGeneric;
    if (std::strcmp(forced, "generic") == 0) {
      isa = CpuIsa::kGeneric;
    } else if (std::strcmp(forced, "avx2") == 0) {
      isa = CpuIsa::kAvx2;
    } else if (std::strcmp(forced, "avx512") == 0) {
      isa = CpuIsa::kAvx512;
    } else {
      FEDSC_CHECK(false) << "FEDSC_FORCE_ISA='" << forced
                         << "' is not one of generic|avx2|avx512";
    }
    FEDSC_CHECK(CpuIsaSupported(isa))
        << "FEDSC_FORCE_ISA=" << forced
        << " requests a tier this host cannot execute (best supported: "
        << CpuIsaName(BestSupportedIsa()) << ")";
    // Leak-free static storage for the rendered source string.
    static std::string source = std::string("env:FEDSC_FORCE_ISA=") + forced;
    return {isa, source.c_str()};
  }
  return {BestSupportedIsa(), "cpuid"};
}

}  // namespace

bool CpuIsaSupported(CpuIsa isa) {
  switch (isa) {
    case CpuIsa::kGeneric:
      return true;
    case CpuIsa::kAvx2:
      return HostHasAvx2Fma();
    case CpuIsa::kAvx512:
      return HostHasAvx512f();
  }
  return false;
}

CpuIsa BestSupportedIsa() {
  if (HostHasAvx512f()) return CpuIsa::kAvx512;
  if (HostHasAvx2Fma()) return CpuIsa::kAvx2;
  return CpuIsa::kGeneric;
}

const char* CpuIsaName(CpuIsa isa) {
  switch (isa) {
    case CpuIsa::kGeneric:
      return "generic";
    case CpuIsa::kAvx2:
      return "avx2";
    case CpuIsa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const IsaDispatch& ResolveDefaultIsa() {
  static const IsaDispatch dispatch = ComputeDefaultIsa();
  return dispatch;
}

}  // namespace fedsc
