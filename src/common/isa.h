// Runtime CPU ISA detection for the dispatched SIMD kernels, plus the
// process-wide default-tier resolution that the RunManifest records.
//
// The GEMM engine (linalg/gemm_kernel.h) ships three micro-kernel tiers in
// one binary — portable-generic, AVX2+FMA, and AVX-512 — and picks one at
// runtime. The pick is part of the repo's result-affecting pure-dispatch
// contract: it is a pure function of (cpuid, explicit pin, FEDSC_FORCE_ISA)
// and never of num_threads or timing, so a run is reproducible from its
// manifest alone. This header owns the cpuid probe and the env override so
// both the kernels (linalg) and the provenance manifest (common) can agree
// on the answer without a layering cycle.
//
// FEDSC_FORCE_ISA=generic|avx2|avx512 overrides the kAuto resolution for
// the whole process (CI uses it to exercise every tier on one host). It is
// read once, at first resolution; forcing a tier the host cannot execute
// aborts with a clear message rather than faulting later on an illegal
// instruction. Explicit per-call pins (GemmOptions::isa != kAuto) beat the
// env override — a pinned test stays pinned under a forced-generic CI run.

#ifndef FEDSC_COMMON_ISA_H_
#define FEDSC_COMMON_ISA_H_

namespace fedsc {

// Instruction-set tiers the dispatched kernels are compiled for, weakest
// first. kGeneric is the portable auto-vectorized code path and is always
// supported.
enum class CpuIsa {
  kGeneric = 0,
  kAvx2 = 1,     // AVX2 + FMA3
  kAvx512 = 2,   // AVX-512 F
};

// True if this host can execute the tier's kernels. kGeneric is always
// true; the SIMD tiers require both x86-64 and the matching cpuid bits.
bool CpuIsaSupported(CpuIsa isa);

// Best tier this host supports (the cpuid probe, ignoring any override).
CpuIsa BestSupportedIsa();

// "generic" / "avx2" / "avx512".
const char* CpuIsaName(CpuIsa isa);

// How the process-wide default tier was chosen.
struct IsaDispatch {
  CpuIsa chosen;           // what kAuto resolves to in this process
  const char* pin_source;  // "cpuid" or "env:FEDSC_FORCE_ISA=<value>"
};

// The process-wide default-tier resolution: FEDSC_FORCE_ISA when set (must
// name a supported tier or the process aborts), else BestSupportedIsa().
// Computed once and cached; pure thereafter.
const IsaDispatch& ResolveDefaultIsa();

}  // namespace fedsc

#endif  // FEDSC_COMMON_ISA_H_
