#include "common/journal.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>

namespace fedsc {

namespace internal {
std::atomic<bool> g_journal_enabled{false};
}  // namespace internal

namespace {

using Clock = std::chrono::steady_clock;

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out += buffer;
    } else {
      out += c;
    }
  }
  return out;
}

// The process-wide event log. Unlike the trace recorder there is one global
// ordered sequence (not per-thread buffers): the determinism contract says
// events are emitted from serial protocol code, so a single mutex-guarded
// vector preserves exactly the order the protocol produced.
class JournalLog {
 public:
  static JournalLog& Global() {
    // Leaked: emission may race process teardown in exotic exit paths.
    static JournalLog* log = new JournalLog();
    return *log;
  }

  void Append(JournalEvent event) {
    std::lock_guard<std::mutex> lock(mutex_);
    event.seq = static_cast<int64_t>(events_.size());
    event.wall_ns = NowNanos() - start_ns_;
    events_.push_back(std::move(event));
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    start_ns_ = NowNanos();
  }

  std::vector<JournalEvent> Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

 private:
  JournalLog() : start_ns_(NowNanos()) {}

  mutable std::mutex mutex_;
  std::vector<JournalEvent> events_;
  int64_t start_ns_;
};

}  // namespace

JournalField::JournalField(const char* key_in, int64_t value)
    : key(key_in), json_value(std::to_string(value)) {}
JournalField::JournalField(const char* key_in, int value)
    : key(key_in), json_value(std::to_string(value)) {}
JournalField::JournalField(const char* key_in, uint64_t value)
    : key(key_in), json_value(std::to_string(value)) {}
JournalField::JournalField(const char* key_in, double value) : key(key_in) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  json_value = buffer;
}
JournalField::JournalField(const char* key_in, const char* value)
    : key(key_in), json_value("\"" + JsonEscape(value) + "\"") {}
JournalField::JournalField(const char* key_in, const std::string& value)
    : key(key_in), json_value("\"" + JsonEscape(value.c_str()) + "\"") {}

void EnableJournal(bool on) {
  JournalLog::Global();  // construct before anyone can record
  internal::g_journal_enabled.store(on, std::memory_order_relaxed);
}

void ResetJournal() { JournalLog::Global().Reset(); }

void JournalRecord(const char* type, int64_t device, int64_t sim_ms,
                   std::initializer_list<JournalField> fields) {
  JournalEvent event;
  event.type = type;
  event.device = device;
  event.sim_ms = sim_ms;
  event.fields.reserve(fields.size());
  for (const JournalField& field : fields) {
    event.fields.emplace_back(field.key, field.json_value);
  }
  JournalLog::Global().Append(std::move(event));
}

std::vector<JournalEvent> SnapshotJournal() {
  return JournalLog::Global().Snapshot();
}

std::string JournalEventJson(const JournalEvent& event, bool include_wall) {
  std::string out = "{\"v\":" + std::to_string(kJournalSchemaVersion) +
                    ",\"seq\":" + std::to_string(event.seq) + ",\"type\":\"" +
                    JsonEscape(event.type.c_str()) + "\"";
  if (event.device >= 0) {
    out += ",\"device\":" + std::to_string(event.device);
  }
  if (event.sim_ms >= 0) {
    out += ",\"sim_ms\":" + std::to_string(event.sim_ms);
  }
  for (const auto& [key, value] : event.fields) {
    out += ",\"" + JsonEscape(key.c_str()) + "\":" + value;
  }
  if (include_wall) {
    out += ",\"wall_ns\":" + std::to_string(event.wall_ns);
  }
  out += "}";
  return out;
}

void WriteJournalJsonl(std::ostream& os, bool include_wall) {
  for (const JournalEvent& event : SnapshotJournal()) {
    os << JournalEventJson(event, include_wall) << "\n";
  }
}

std::string JournalJsonlString(bool include_wall) {
  std::ostringstream os;
  WriteJournalJsonl(os, include_wall);
  return os.str();
}

Status WriteJournalJsonlFile(const std::string& path, bool include_wall) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound("cannot open journal output file " + path);
  }
  WriteJournalJsonl(out, include_wall);
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

std::string JournalFingerprint() {
  return JournalJsonlString(/*include_wall=*/false);
}

}  // namespace fedsc
