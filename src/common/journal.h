// Structured event journal of a federated round: the machine-readable run
// ledger the Chrome trace and the flat metrics dump cannot provide.
//
// The paper's headline claims are operational — one communication round,
// T = max_z T^(z) + T_c, graceful degradation under device failures — so
// the journal records *what happened to every device, when, and at what
// byte cost* as an ordered sequence of typed events on the SimClock
// timeline: per-device lifecycle (scheduled, upload_attempt, retry,
// timeout, transient_loss, delivered, wire_rejected, accepted, quarantined,
// byzantine_rejected, defense_screened, dropped, local_error) and
// server-side phases (run_start, quorum_reached/quorum_missed,
// central_start/central_finish, broadcast, run_finish). Exported as schema-versioned JSONL, one event per
// line, and embedded into the RunReport (core/report.h).
//
// Determinism contract (mirrors common/metrics.h): every journal emission
// point lives in *serial protocol code* (the uplink loop, the phase
// boundaries), never inside a ParallelFor body, so the event sequence and
// every payload field are bit-identical for any num_threads. The only
// execution-dependent datum is the wall-clock timestamp each event also
// carries; it is segregated in a dedicated `wall_ns` field that
// JournalFingerprint() strips and that the JSONL writer can omit, exactly
// like kExecution metrics are excluded from the metrics fingerprint.
//
// Cost contract: with the journal disabled (the default) the
// FEDSC_JOURNAL_EVENT macro performs one relaxed atomic load and touches
// nothing else — the event's field list is not even evaluated.

#ifndef FEDSC_COMMON_JOURNAL_H_
#define FEDSC_COMMON_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace fedsc {

// Bump when the JSONL layout or the event vocabulary changes
// incompatibly; scripts/validate_report.py pins it.
inline constexpr int kJournalSchemaVersion = 2;

namespace internal {
extern std::atomic<bool> g_journal_enabled;
}  // namespace internal

// The single relaxed load on the disabled path.
inline bool JournalEnabled() {
  return internal::g_journal_enabled.load(std::memory_order_relaxed);
}

void EnableJournal(bool on);
// Drops every recorded event and restarts the sequence counter.
void ResetJournal();

// One key/value payload field. Values are pre-rendered to JSON so snapshots
// and writers never re-interpret them (strings arrive quoted + escaped).
// Only constructed when the journal is enabled (the macro gates the field
// list behind JournalEnabled()).
struct JournalField {
  JournalField(const char* key, int64_t value);
  JournalField(const char* key, int value);
  JournalField(const char* key, uint64_t value);
  JournalField(const char* key, double value);
  JournalField(const char* key, const char* value);
  JournalField(const char* key, const std::string& value);

  std::string key;
  std::string json_value;
};

struct JournalEvent {
  int64_t seq = 0;     // 0-based emission order (deterministic)
  std::string type;    // event name from the taxonomy above
  int64_t device = -1; // -1 for server/phase events
  int64_t sim_ms = -1; // SimClock timestamp; -1 when off the clock
  // Deterministic payload (key, rendered JSON value), in emission order.
  std::vector<std::pair<std::string, std::string>> fields;
  // Wall-clock nanoseconds since journal reset. Execution-only: varies run
  // to run and is excluded from every determinism check.
  int64_t wall_ns = 0;
};

// Appends one event (assigns seq and wall_ns). Thread-safe, though the
// determinism contract requires callers to emit from serial protocol code.
void JournalRecord(const char* type, int64_t device, int64_t sim_ms,
                   std::initializer_list<JournalField> fields = {});

// Copy of the journal so far, in emission order.
std::vector<JournalEvent> SnapshotJournal();

// Schema-versioned JSONL: one {"v":N,"seq":...,"type":...,...} object per
// line (N = kJournalSchemaVersion). With include_wall, each line carries the execution-only "wall_ns"
// field; without it the output is bit-identical across thread counts.
void WriteJournalJsonl(std::ostream& os, bool include_wall = true);
std::string JournalJsonlString(bool include_wall = true);
Status WriteJournalJsonlFile(const std::string& path,
                             bool include_wall = true);

// The determinism digest: the full JSONL with wall timestamps stripped.
// Byte-equal across num_threads for the same (data, options).
std::string JournalFingerprint();

// Renders one event as a single JSON object (no trailing newline).
std::string JournalEventJson(const JournalEvent& event, bool include_wall);

}  // namespace fedsc

// Emits a journal event; with the journal disabled this is one relaxed
// atomic load and the argument list is never evaluated.
#define FEDSC_JOURNAL_EVENT(...)                 \
  do {                                           \
    if (::fedsc::JournalEnabled()) {             \
      ::fedsc::JournalRecord(__VA_ARGS__);       \
    }                                            \
  } while (false)

#endif  // FEDSC_COMMON_JOURNAL_H_
