#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fedsc {

namespace {

// A single fputs of the fully assembled line: stdio locks the stream per
// call, so concurrent loggers cannot interleave fragments of their lines.
void DefaultSink(LogLevel /*level*/, const std::string& line) {
  std::fputs(line.c_str(), stderr);
}

std::atomic<LogSink> g_log_sink{&DefaultSink};

// Initialized from FEDSC_LOG_LEVEL exactly once, on first access.
std::atomic<LogLevel>& LevelState() {
  static std::atomic<LogLevel> level{LogLevelFromEnv(LogLevel::kInfo)};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash == nullptr ? path : slash + 1;
}

}  // namespace

void SetLogLevel(LogLevel level) { LevelState().store(level); }
LogLevel GetLogLevel() { return LevelState().load(); }

bool ParseLogLevel(const char* text, LogLevel* level) {
  if (text == nullptr) return false;
  std::string lower;
  for (const char* p = text; *p != '\0'; ++p) {
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(*p)));
  }
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *level = LogLevel::kWarning;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

LogLevel LogLevelFromEnv(LogLevel fallback) {
  LogLevel level = fallback;
  ParseLogLevel(std::getenv("FEDSC_LOG_LEVEL"), &level);
  return level;
}

void SetLogSink(LogSink sink) {
  g_log_sink.store(sink == nullptr ? &DefaultSink : sink);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  stream_ << '\n';
  g_log_sink.load()(level_, stream_.str());
}

}  // namespace internal
}  // namespace fedsc
