// Minimal leveled logger. Benchmarks and examples use it for progress
// reporting; library code logs sparingly (convergence warnings and the like).
//
// The threshold defaults to kInfo and can be raised/lowered without code
// changes through the FEDSC_LOG_LEVEL environment variable (debug | info |
// warning | error, case-insensitive), read once at first use; SetLogLevel
// overrides it afterwards. Each message is assembled in full — prefix, body,
// trailing newline — and emitted with a single write, so lines from
// concurrent threads never interleave mid-line.

#ifndef FEDSC_COMMON_LOGGING_H_
#define FEDSC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace fedsc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Messages below this level are discarded. Defaults to kInfo, or to
// FEDSC_LOG_LEVEL when that is set and parseable.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Case-insensitive parse of "debug" / "info" / "warning" / "error" (also
// accepts "warn"). Returns false — leaving *level untouched — on anything
// else, including nullptr.
bool ParseLogLevel(const char* text, LogLevel* level);

// The level FEDSC_LOG_LEVEL selects right now, or `fallback` when the
// variable is unset or unparseable (exposed for tests; the logger itself
// consults the environment once, at first use).
LogLevel LogLevelFromEnv(LogLevel fallback);

// Where finished lines go. The default sink writes the complete line to
// stderr with one stdio call. Tests may install a capture sink; nullptr
// restores the default. Not synchronized with in-flight messages — swap
// sinks only at quiescent points.
using LogSink = void (*)(LogLevel level, const std::string& line);
void SetLogSink(LogSink sink);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace fedsc

#define FEDSC_LOG(level)                                      \
  ::fedsc::internal::LogMessage(::fedsc::LogLevel::k##level,  \
                                __FILE__, __LINE__)

#endif  // FEDSC_COMMON_LOGGING_H_
