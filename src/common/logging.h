// Minimal leveled logger. Benchmarks and examples use it for progress
// reporting; library code logs sparingly (convergence warnings and the like).

#ifndef FEDSC_COMMON_LOGGING_H_
#define FEDSC_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>

namespace fedsc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Messages below this level are discarded. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace fedsc

#define FEDSC_LOG(level)                                      \
  ::fedsc::internal::LogMessage(::fedsc::LogLevel::k##level,  \
                                __FILE__, __LINE__)

#endif  // FEDSC_COMMON_LOGGING_H_
