#include "common/manifest.h"

#include <cstdio>
#include <fstream>
#include <thread>

#include "common/isa.h"

namespace fedsc {

namespace {

#ifndef FEDSC_GIT_DESCRIBE
#define FEDSC_GIT_DESCRIBE "unknown"
#endif
#ifndef FEDSC_CMAKE_BUILD_TYPE
#define FEDSC_CMAKE_BUILD_TYPE "unknown"
#endif

std::string CompilerVersion() {
#if defined(__clang__)
  return std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string CpuModel() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.rfind("model name", 0) == 0) {
      size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      return line.substr(start);
    }
  }
  return "unknown";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out += buffer;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

RunManifest CollectRunManifest() {
  RunManifest manifest;
  manifest.git_describe = FEDSC_GIT_DESCRIBE;
  manifest.compiler = CompilerVersion();
  manifest.build_type = FEDSC_CMAKE_BUILD_TYPE;
  manifest.cpu_model = CpuModel();
  manifest.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  manifest.cpu_isa = CpuIsaName(BestSupportedIsa());
  const IsaDispatch& dispatch = ResolveDefaultIsa();
  manifest.gemm_isa = CpuIsaName(dispatch.chosen);
  manifest.isa_pin_source = dispatch.pin_source;
  return manifest;
}

uint64_t Fnv1a64(const std::string& text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string HexDigest64(uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::string RunManifestJson(const RunManifest& manifest) {
  std::string out = "{";
  out += "\"git_describe\":\"" + JsonEscape(manifest.git_describe) + "\"";
  out += ",\"compiler\":\"" + JsonEscape(manifest.compiler) + "\"";
  out += ",\"build_type\":\"" + JsonEscape(manifest.build_type) + "\"";
  out += ",\"cpu_model\":\"" + JsonEscape(manifest.cpu_model) + "\"";
  out += ",\"hardware_threads\":" + std::to_string(manifest.hardware_threads);
  out += ",\"cpu_isa\":\"" + JsonEscape(manifest.cpu_isa) + "\"";
  out += ",\"gemm_isa\":\"" + JsonEscape(manifest.gemm_isa) + "\"";
  out += ",\"isa_pin_source\":\"" + JsonEscape(manifest.isa_pin_source) +
         "\"";
  out += ",\"options_fingerprint\":\"" +
         JsonEscape(manifest.options_fingerprint) + "\"";
  out += ",\"seed\":" + std::to_string(manifest.seed);
  out += ",\"fault_seed\":" + std::to_string(manifest.fault_seed);
  out += ",\"num_threads\":" + std::to_string(manifest.num_threads);
  out += "}";
  return out;
}

}  // namespace fedsc
