// Provenance manifest for a run: where the binary came from and what
// machine executed it. Every RunReport (core/report.h) embeds one, so a
// report can always answer "which code, which build, which host produced
// these numbers" — the same discipline scripts/bench_baseline.sh enforces
// for the committed perf baseline, now applied to every exported run.
//
// Environment facts (git describe, compiler, CMake build type) are baked in
// at compile time via FEDSC_GIT_DESCRIBE / FEDSC_CMAKE_BUILD_TYPE compile
// definitions (src/CMakeLists.txt); host facts (CPU model, hardware
// threads) are read at runtime. Run-specific facts (options fingerprint,
// seeds) are filled in by the caller that owns the options.

#ifndef FEDSC_COMMON_MANIFEST_H_
#define FEDSC_COMMON_MANIFEST_H_

#include <cstdint>
#include <string>

namespace fedsc {

struct RunManifest {
  // Compile-time provenance.
  std::string git_describe;   // `git describe --always --dirty` at configure
  std::string compiler;       // compiler id + version string
  std::string build_type;     // CMAKE_BUILD_TYPE the binary was built with
  // Host facts, read at manifest collection time.
  std::string cpu_model;      // /proc/cpuinfo "model name" (or "unknown")
  int hardware_threads = 0;   // std::thread::hardware_concurrency()
  // Kernel dispatch facts (common/isa.h): the best micro-kernel tier cpuid
  // reports, the tier GEMM/Syrk actually dispatch to under GemmIsa::kAuto,
  // and what pinned that choice ("cpuid", or "env:FEDSC_FORCE_ISA=..."
  // when the override is set). Recorded so a report always answers "which
  // kernels produced these bits" — the dispatch is result-affecting.
  std::string cpu_isa;         // best supported tier: generic|avx2|avx512
  std::string gemm_isa;        // tier kAuto resolves to on this run
  std::string isa_pin_source;  // what decided gemm_isa
  // Run facts, filled by the caller.
  std::string options_fingerprint;  // digest of the run's options
  uint64_t seed = 0;
  uint64_t fault_seed = 0;
  int num_threads = 0;
};

// Fills the compile-time and host fields; run fields are left defaulted.
RunManifest CollectRunManifest();

// 64-bit FNV-1a over a string; the building block callers use to fingerprint
// their option structs (hash the rendered option fields, hex-encode).
uint64_t Fnv1a64(const std::string& text);
std::string HexDigest64(uint64_t value);

// Renders the manifest as a JSON object (no trailing newline).
std::string RunManifestJson(const RunManifest& manifest);

}  // namespace fedsc

#endif  // FEDSC_COMMON_MANIFEST_H_
