#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace fedsc {

namespace internal {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace internal

void EnableMetrics(bool on) {
  // Touch the registry first so pre-registration happens before any
  // instrument can observe the enabled flag.
  MetricsRegistry::Global();
  internal::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

void ResetMetrics() { MetricsRegistry::Global().Reset(); }

void Histogram::Record(int64_t value) {
  if (!MetricsEnabled()) return;
  const int64_t v = value < 0 ? 0 : value;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  int64_t seen = min_.load(std::memory_order_relaxed);
  while (v < seen &&
         !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  const int bucket = std::bit_width(static_cast<uint64_t>(v));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count - 1);  // 0-based rank
  int64_t below = 0;
  for (const auto& [bits, n] : buckets) {
    if (target < static_cast<double>(below + n)) {
      // Bucket value range: b = 0 holds only 0; b > 0 holds [2^(b-1), 2^b-1].
      const double lo = bits == 0 ? 0.0 : std::ldexp(1.0, bits - 1);
      const double hi = bits == 0 ? 0.0 : std::ldexp(1.0, bits) - 1.0;
      const double frac =
          n <= 1 ? 0.0 : (target - static_cast<double>(below)) /
                             static_cast<double>(n - 1);
      double value = lo + (hi - lo) * frac;
      value = std::max(value, static_cast<double>(min));
      value = std::min(value, static_cast<double>(max));
      return value;
    }
    below += n;
  }
  return static_cast<double>(max);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.min = out.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
  out.max = out.count == 0 ? 0 : max_.load(std::memory_order_relaxed);
  for (int b = 0; b < kBuckets; ++b) {
    const int64_t n = buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) out.buckets.push_back({b, n});
  }
  return out;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked so instruments outlive thread-pool workers still draining at
  // process exit.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::MetricsRegistry() {
  // Core pipeline instruments, pre-registered so metrics JSON always carries
  // the full schema. See DESIGN.md "Observability".
  for (const char* name :
       {"linalg.gemm.calls", "linalg.gemm.flops", "linalg.gemm.bytes",
        "linalg.gemm.blocked_calls", "linalg.syrk.calls", "linalg.syrk.flops",
        "linalg.syrk.bytes", "linalg.gemv.calls",
        "linalg.gemv.flops", "linalg.qr.calls", "linalg.qr.flops",
        "linalg.qr.blocked_calls", "linalg.svd.calls", "linalg.svd.sweeps",
        "linalg.svd.rotations", "linalg.svd.precond_qr",
        "linalg.eig.calls", "linalg.eig.tridiag_flops",
        "linalg.lanczos.calls",
        "linalg.lanczos.iterations", "linalg.lanczos.restarts",
        "linalg.lanczos.reorthogonalizations",
        "linalg.subspace_iteration.calls",
        "linalg.subspace_iteration.iterations", "sc.ssc_admm.solves",
        "sc.ssc_admm.iterations", "sc.ssc_admm.converged",
        "cluster.kmeans.runs", "cluster.kmeans.restarts",
        "cluster.kmeans.iterations", "fed.comm.uplink_values",
        "fed.comm.uplink_bits", "fed.comm.uplink_wire_bytes",
        "fed.comm.downlink_values", "fed.comm.retries", "fed.comm.timeouts",
        "fed.comm.rounds", "fedsc.runs", "fedsc.devices",
        "fedsc.local_clusters", "fedsc.total_samples"}) {
    counters_.emplace(name, Entry<Counter>{std::make_unique<Counter>(),
                                           MetricKind::kDeterministic});
  }
  for (const char* name :
       {"threadpool.tasks_scheduled", "threadpool.tasks_executed"}) {
    counters_.emplace(name, Entry<Counter>{std::make_unique<Counter>(),
                                           MetricKind::kExecution});
  }
  gauges_.emplace("fed.comm.downlink_bits",
                  Entry<Gauge>{std::make_unique<Gauge>(),
                               MetricKind::kDeterministic});
  gauges_.emplace("sc.ssc_admm.last_residual",
                  Entry<Gauge>{std::make_unique<Gauge>(),
                               MetricKind::kExecution});
  histograms_.emplace("sc.ssc_admm.iterations_per_solve",
                      std::make_unique<Histogram>());
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     MetricKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, Entry<Counter>{std::make_unique<Counter>(), kind})
             .first;
  }
  return *it->second.instrument;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, MetricKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, Entry<Gauge>{std::make_unique<Gauge>(), kind})
             .first;
  }
  return *it->second.instrument;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : counters_) entry.instrument->Reset();
  for (auto& [name, entry] : gauges_) entry.instrument->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, entry] : counters_) {
    (entry.kind == MetricKind::kDeterministic ? out.counters
                                              : out.execution_counters)
        .emplace(name, entry.instrument->value());
  }
  for (const auto& [name, entry] : gauges_) {
    (entry.kind == MetricKind::kDeterministic ? out.gauges
                                              : out.execution_gauges)
        .emplace(name, entry.instrument->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.emplace(name, histogram->Snapshot());
  }
  return out;
}

MetricsSnapshot SnapshotMetrics() {
  return MetricsRegistry::Global().Snapshot();
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  // JSON has no inf/nan literals; clamp to null-safe strings is overkill
  // here — the pipeline never emits them — but guard anyway.
  std::string s = buffer;
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "0";
  }
  return s;
}

template <typename Map, typename Render>
void WriteJsonObject(std::ostream& os, const char* key, const Map& map,
                     Render render, bool trailing_comma) {
  os << "  \"" << key << "\": {";
  bool first = true;
  for (const auto& [name, value] : map) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": " << render(value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "}" << (trailing_comma ? "," : "") << "\n";
}

}  // namespace

void WriteMetricsJson(std::ostream& os) {
  const MetricsSnapshot snapshot = SnapshotMetrics();
  os << "{\n";
  auto render_int = [](int64_t v) { return std::to_string(v); };
  auto render_double = [](double v) { return JsonDouble(v); };
  auto render_histogram = [](const HistogramSnapshot& h) {
    std::string out = "{\"count\": " + std::to_string(h.count) +
                      ", \"sum\": " + std::to_string(h.sum) +
                      ", \"min\": " + std::to_string(h.min) +
                      ", \"max\": " + std::to_string(h.max) +
                      ", \"p50\": " + JsonDouble(h.Percentile(0.50)) +
                      ", \"p90\": " + JsonDouble(h.Percentile(0.90)) +
                      ", \"p99\": " + JsonDouble(h.Percentile(0.99)) +
                      ", \"log2_buckets\": {";
    bool first = true;
    for (const auto& [bits, count] : h.buckets) {
      out += (first ? "" : ", ");
      out += "\"" + std::to_string(bits) + "\": " + std::to_string(count);
      first = false;
    }
    out += "}}";
    return out;
  };
  WriteJsonObject(os, "counters", snapshot.counters, render_int, true);
  WriteJsonObject(os, "execution_counters", snapshot.execution_counters,
                  render_int, true);
  WriteJsonObject(os, "gauges", snapshot.gauges, render_double, true);
  WriteJsonObject(os, "execution_gauges", snapshot.execution_gauges,
                  render_double, true);
  WriteJsonObject(os, "histograms", snapshot.histograms, render_histogram,
                  false);
  os << "}\n";
}

std::string MetricsJsonString() {
  std::ostringstream os;
  WriteMetricsJson(os);
  return os.str();
}

Status WriteMetricsJsonFile(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound("cannot open metrics output file " + path);
  }
  WriteMetricsJson(out);
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

}  // namespace fedsc
