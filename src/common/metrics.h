// Process-wide metrics registry: named counters, gauges, and histograms with
// a determinism contract matching the threading model of DESIGN.md.
//
// The paper's headline claims are running-time claims (T = sum_z T^(z) + T_c,
// Section IV-E / VI), so the kernels report *what they computed* — ADMM
// iterations, Jacobi sweeps and rotations, Lanczos steps, GEMM calls and FLOP
// estimates, communication bits — not just how long it took. Two metric
// classes keep that reconcilable with the bit-exact threading contract:
//
//  * kDeterministic — the value is a pure function of (input, options) and is
//    bit-identical for every num_threads. Counters and histograms only ever
//    accumulate int64 deltas (integer addition is exactly commutative, so
//    relaxed concurrent adds from any interleaving produce the same total);
//    deterministic gauges may only be Set from serial code.
//  * kExecution — describes how the run executed (thread-pool tasks, wall
//    clock, racy last-writer gauges) and is explicitly excluded from the
//    cross-thread-count bit-identity check.
//
// Cost: every instrument mutation starts with one relaxed atomic load of the
// global enabled flag (default off) and returns immediately when disabled —
// no allocation, no locking. Name lookup happens once per call site (cached
// in a function-local static), never on the hot path.

#ifndef FEDSC_COMMON_METRICS_H_
#define FEDSC_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace fedsc {

namespace internal {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace internal

// The disabled-path check every instrument performs first.
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}

void EnableMetrics(bool on);
// Zeroes every registered instrument (registrations and kinds are kept).
void ResetMetrics();

enum class MetricKind { kDeterministic, kExecution };

// Monotonic int64 accumulator. Deterministic when every Add is itself a
// deterministic function of the input (see the contract above).
class Counter {
 public:
  void Add(int64_t delta) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<int64_t> value_{0};
};

// Last-writer-wins double. Defaults to the kExecution class because "last"
// is timing-dependent when writers run concurrently; register explicitly as
// kDeterministic only for gauges set from serial code.
class Gauge {
 public:
  void Set(double value) {
    if (!MetricsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;  // 0 when empty
  int64_t max = 0;
  // (bit_width, count) for non-empty buckets: bucket b holds values v with
  // std::bit_width(v) == b, i.e. 2^(b-1) <= v < 2^b (b = 0 holds v == 0).
  std::vector<std::pair<int, int64_t>> buckets;

  // Percentile estimate for q in [0, 1] from the log2 buckets: walks bucket
  // counts to the rank q*(count-1) and interpolates linearly inside the
  // bucket's value range, clamped to the observed [min, max] (so q=0 and
  // q=1 return min and max exactly). Returns 0 when empty. Deterministic:
  // a pure function of the (integer) snapshot.
  double Percentile(double q) const;
};

// Log2-bucketed histogram of nonnegative int64 samples (negatives clamp to
// 0). All state is integer, so concurrent Records commute bit-exactly.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(int64_t value);
  HistogramSnapshot Snapshot() const;

 private:
  friend class MetricsRegistry;
  void Reset();
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
  std::atomic<int64_t> buckets_[kBuckets] = {};
};

struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;            // kDeterministic
  std::map<std::string, int64_t> execution_counters;  // kExecution
  std::map<std::string, double> gauges;               // kDeterministic
  std::map<std::string, double> execution_gauges;     // kExecution
  std::map<std::string, HistogramSnapshot> histograms;  // all deterministic
};

class MetricsRegistry {
 public:
  // The process-wide registry; pre-registers the pipeline's core instrument
  // names so exported JSON always carries them (as zeros) even for runs that
  // never reach a given kernel.
  static MetricsRegistry& Global();

  // Find-or-create by name; the returned reference stays valid for the
  // process lifetime. A kind passed on a later lookup of an existing name is
  // ignored (first registration wins).
  Counter& GetCounter(const std::string& name,
                      MetricKind kind = MetricKind::kDeterministic);
  Gauge& GetGauge(const std::string& name,
                  MetricKind kind = MetricKind::kExecution);
  Histogram& GetHistogram(const std::string& name);

  void Reset();
  MetricsSnapshot Snapshot() const;

 private:
  MetricsRegistry();

  template <typename T>
  struct Entry {
    std::unique_ptr<T> instrument;
    MetricKind kind;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

MetricsSnapshot SnapshotMetrics();
// Flat metrics JSON: {"counters": {...}, "execution_counters": {...},
// "gauges": {...}, "execution_gauges": {...}, "histograms": {...}}.
void WriteMetricsJson(std::ostream& os);
std::string MetricsJsonString();
Status WriteMetricsJsonFile(const std::string& path);

}  // namespace fedsc

// Call-site instrument accessors: one registry lookup ever (function-local
// static), then direct atomic access.
#define FEDSC_METRIC_COUNTER(name)                                     \
  ([]() -> ::fedsc::Counter& {                                         \
    static ::fedsc::Counter& fedsc_counter =                           \
        ::fedsc::MetricsRegistry::Global().GetCounter(name);           \
    return fedsc_counter;                                              \
  }())

#define FEDSC_METRIC_COUNTER_KIND(name, kind)                          \
  ([]() -> ::fedsc::Counter& {                                         \
    static ::fedsc::Counter& fedsc_counter =                           \
        ::fedsc::MetricsRegistry::Global().GetCounter(name, kind);     \
    return fedsc_counter;                                              \
  }())

#define FEDSC_METRIC_GAUGE(name, kind)                                 \
  ([]() -> ::fedsc::Gauge& {                                           \
    static ::fedsc::Gauge& fedsc_gauge =                               \
        ::fedsc::MetricsRegistry::Global().GetGauge(name, kind);       \
    return fedsc_gauge;                                                \
  }())

#define FEDSC_METRIC_HISTOGRAM(name)                                   \
  ([]() -> ::fedsc::Histogram& {                                       \
    static ::fedsc::Histogram& fedsc_histogram =                       \
        ::fedsc::MetricsRegistry::Global().GetHistogram(name);         \
    return fedsc_histogram;                                            \
  }())

#endif  // FEDSC_COMMON_METRICS_H_
