#include "common/profile.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"

namespace fedsc {

namespace {

using internal::RawTraceEvent;

// The kernels whose span time is joined with FLOP/byte counters. `bytes`
// may be empty: QR and eig publish FLOP estimates but not matrix traffic,
// so their arithmetic-intensity column is reported as 0 (untracked).
struct KernelJoin {
  const char* span;
  const char* calls_counter;
  const char* flops_counter;
  const char* bytes_counter;  // "" when the kernel does not track bytes
};

constexpr KernelJoin kKernelJoins[] = {
    {"linalg/gemm", "linalg.gemm.calls", "linalg.gemm.flops",
     "linalg.gemm.bytes"},
    {"linalg/syrk", "linalg.syrk.calls", "linalg.syrk.flops",
     "linalg.syrk.bytes"},
    {"linalg/qr", "linalg.qr.calls", "linalg.qr.flops", ""},
    {"linalg/eig", "linalg.eig.calls", "linalg.eig.tridiag_flops", ""},
};

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace

ProfileReport BuildProfileReport() {
  ProfileReport report;
  const auto logs = internal::SnapshotTraceEvents();

  std::map<std::string, SpanProfileEntry> by_name;
  double ts_min = 0.0, ts_max = 0.0;
  bool saw_event = false;

  struct Open {
    const RawTraceEvent* begin;
    double child_seconds = 0.0;  // inclusive time of direct children
  };

  for (const auto& [tid, events] : logs) {
    if (events.empty()) continue;
    ThreadUtilizationEntry thread;
    thread.tid = tid;
    std::vector<Open> stack;
    for (const RawTraceEvent& event : events) {
      if (!saw_event) {
        ts_min = ts_max = event.ts_micros;
        saw_event = true;
      } else {
        ts_min = std::min(ts_min, event.ts_micros);
        ts_max = std::max(ts_max, event.ts_micros);
      }
      if (event.begin) {
        stack.push_back({&event});
        continue;
      }
      if (stack.empty()) continue;  // reset mid-span; skip the orphan
      Open open = stack.back();
      stack.pop_back();
      const double seconds = (event.ts_micros - open.begin->ts_micros) * 1e-6;
      SpanProfileEntry& entry = by_name[open.begin->name];
      entry.name = open.begin->name;
      entry.count += 1;
      entry.inclusive_seconds += seconds;
      entry.exclusive_seconds += seconds - open.child_seconds;
      entry.max_seconds = std::max(entry.max_seconds, seconds);
      if (stack.empty()) {
        thread.top_level_spans += 1;
        thread.busy_seconds += seconds;
      } else {
        stack.back().child_seconds += seconds;
      }
    }
    report.threads.push_back(thread);
  }

  report.wall_seconds = saw_event ? (ts_max - ts_min) * 1e-6 : 0.0;
  for (ThreadUtilizationEntry& thread : report.threads) {
    thread.idle_seconds =
        std::max(0.0, report.wall_seconds - thread.busy_seconds);
  }

  report.spans.reserve(by_name.size());
  for (auto& [name, entry] : by_name) report.spans.push_back(std::move(entry));

  MetricsRegistry& registry = MetricsRegistry::Global();
  for (const KernelJoin& join : kKernelJoins) {
    KernelRooflineEntry kernel;
    kernel.span = join.span;
    kernel.calls = registry.GetCounter(join.calls_counter).value();
    kernel.flops = registry.GetCounter(join.flops_counter).value();
    if (join.bytes_counter[0] != '\0') {
      kernel.bytes = registry.GetCounter(join.bytes_counter).value();
    }
    const auto it = by_name.find(join.span);
    if (it != by_name.end()) kernel.seconds = it->second.inclusive_seconds;
    if (kernel.seconds > 0.0) {
      kernel.achieved_gflops =
          static_cast<double>(kernel.flops) / kernel.seconds * 1e-9;
    }
    if (kernel.bytes > 0) {
      kernel.arithmetic_intensity = static_cast<double>(kernel.flops) /
                                    static_cast<double>(kernel.bytes);
    }
    report.kernels.push_back(std::move(kernel));
  }

  return report;
}

std::string ProfileReportJson(const ProfileReport& report) {
  std::string out = "{\"wall_seconds\":" + FormatDouble(report.wall_seconds);
  out += ",\"spans\":[";
  for (size_t i = 0; i < report.spans.size(); ++i) {
    const SpanProfileEntry& span = report.spans[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + span.name + "\"";
    out += ",\"count\":" + std::to_string(span.count);
    out += ",\"inclusive_seconds\":" + FormatDouble(span.inclusive_seconds);
    out += ",\"exclusive_seconds\":" + FormatDouble(span.exclusive_seconds);
    out += ",\"max_seconds\":" + FormatDouble(span.max_seconds);
    out += "}";
  }
  out += "],\"kernels\":[";
  for (size_t i = 0; i < report.kernels.size(); ++i) {
    const KernelRooflineEntry& kernel = report.kernels[i];
    if (i > 0) out += ",";
    out += "{\"span\":\"" + kernel.span + "\"";
    out += ",\"calls\":" + std::to_string(kernel.calls);
    out += ",\"flops\":" + std::to_string(kernel.flops);
    out += ",\"bytes\":" + std::to_string(kernel.bytes);
    out += ",\"seconds\":" + FormatDouble(kernel.seconds);
    out += ",\"achieved_gflops\":" + FormatDouble(kernel.achieved_gflops);
    out += ",\"arithmetic_intensity\":" +
           FormatDouble(kernel.arithmetic_intensity);
    out += "}";
  }
  out += "],\"threads\":[";
  for (size_t i = 0; i < report.threads.size(); ++i) {
    const ThreadUtilizationEntry& thread = report.threads[i];
    if (i > 0) out += ",";
    out += "{\"tid\":" + std::to_string(thread.tid);
    out += ",\"top_level_spans\":" + std::to_string(thread.top_level_spans);
    out += ",\"busy_seconds\":" + FormatDouble(thread.busy_seconds);
    out += ",\"idle_seconds\":" + FormatDouble(thread.idle_seconds);
    out += "}";
  }
  out += "]}";
  return out;
}

void PrintProfileSummary(const ProfileReport& report, std::ostream& os) {
  char buffer[192];

  size_t width = 4;  // "span"
  for (const SpanProfileEntry& span : report.spans) {
    width = std::max(width, span.name.size());
  }
  std::snprintf(buffer, sizeof(buffer), "%-*s | %8s | %12s | %12s | %12s\n",
                static_cast<int>(width), "span", "count", "incl ms",
                "excl ms", "max ms");
  os << buffer;
  for (const SpanProfileEntry& span : report.spans) {
    std::snprintf(buffer, sizeof(buffer),
                  "%-*s | %8lld | %12.3f | %12.3f | %12.3f\n",
                  static_cast<int>(width), span.name.c_str(),
                  static_cast<long long>(span.count),
                  span.inclusive_seconds * 1e3, span.exclusive_seconds * 1e3,
                  span.max_seconds * 1e3);
    os << buffer;
  }

  os << "\n";
  std::snprintf(buffer, sizeof(buffer),
                "%-12s | %8s | %14s | %14s | %10s | %10s\n", "kernel",
                "calls", "flops", "bytes", "GFLOP/s", "flops/byte");
  os << buffer;
  for (const KernelRooflineEntry& kernel : report.kernels) {
    std::snprintf(buffer, sizeof(buffer),
                  "%-12s | %8lld | %14lld | %14lld | %10.3f | %10.3f\n",
                  kernel.span.c_str(), static_cast<long long>(kernel.calls),
                  static_cast<long long>(kernel.flops),
                  static_cast<long long>(kernel.bytes),
                  kernel.achieved_gflops, kernel.arithmetic_intensity);
    os << buffer;
  }

  os << "\n";
  std::snprintf(buffer, sizeof(buffer), "%-6s | %10s | %10s | %8s\n",
                "thread", "busy ms", "idle ms", "busy %");
  os << buffer;
  for (const ThreadUtilizationEntry& thread : report.threads) {
    const double denom = thread.busy_seconds + thread.idle_seconds;
    const double pct = denom > 0.0 ? thread.busy_seconds / denom * 100.0 : 0.0;
    std::snprintf(buffer, sizeof(buffer), "%-6d | %10.3f | %10.3f | %7.1f%%\n",
                  thread.tid, thread.busy_seconds * 1e3,
                  thread.idle_seconds * 1e3, pct);
    os << buffer;
  }
}

}  // namespace fedsc
