// Span-aggregating self-profiler over the trace buffers.
//
// Where common/trace.h exports raw begin/end events for timeline viewers,
// this module folds the same buffers into the tables an engineer actually
// reads after a run:
//
//   * per-span-name inclusive/exclusive wall time (exclusive = inclusive
//     minus time spent in child spans on the same thread), so hot leaves
//     stand out even when every phase nests under fedsc/run;
//   * per-kernel roofline attribution: span seconds joined with the FLOP
//     and byte counters the kernels publish in the metrics registry
//     (common/metrics.h), yielding achieved GFLOP/s and arithmetic
//     intensity (FLOPs per byte of matrix traffic) per kernel;
//   * thread-pool utilization: per worker track, the fraction of the
//     observed wall range covered by top-level spans (busy) vs. gaps
//     (idle) — the load-balance view of Phase 1's parallel device loop.
//
// Everything here is wall-clock derived and therefore execution-only in the
// determinism taxonomy (DESIGN.md §7): numbers vary run to run and across
// num_threads, and are reported under the report's "profile" section, never
// fingerprinted. Aggregation keys by span *name* only (args stripped), so
// per-device spans fold into one row per phase.

#ifndef FEDSC_COMMON_PROFILE_H_
#define FEDSC_COMMON_PROFILE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fedsc {

struct SpanProfileEntry {
  std::string name;               // span name, args stripped
  int64_t count = 0;              // completed spans with this name
  double inclusive_seconds = 0.0; // sum of span durations
  double exclusive_seconds = 0.0; // inclusive minus same-thread children
  double max_seconds = 0.0;       // longest single span
};

// One kernel row of the roofline join. `seconds` is the kernel span's
// inclusive time; flops/bytes come from the metrics registry. Derived rates
// are 0 when the denominator is 0 (kernel never ran, or bytes untracked).
struct KernelRooflineEntry {
  std::string span;     // e.g. "linalg/gemm"
  int64_t calls = 0;
  int64_t flops = 0;
  int64_t bytes = 0;    // matrix traffic; 0 when the kernel does not track it
  double seconds = 0.0;
  double achieved_gflops = 0.0;       // flops / seconds / 1e9
  double arithmetic_intensity = 0.0;  // flops / bytes
};

struct ThreadUtilizationEntry {
  int tid = 0;
  int64_t top_level_spans = 0;
  double busy_seconds = 0.0;  // wall covered by top-level spans on this track
  double idle_seconds = 0.0;  // observed wall range minus busy
};

struct ProfileReport {
  double wall_seconds = 0.0;  // span of [first ts, last ts] across all tracks
  std::vector<SpanProfileEntry> spans;             // sorted by name
  std::vector<KernelRooflineEntry> kernels;        // fixed kernel order
  std::vector<ThreadUtilizationEntry> threads;     // tid order
};

// Folds the current trace buffers + metrics registry into a report.
// Unmatched events (trace reset mid-span) are skipped, matching
// SummarizeTrace's tolerance; run CheckTraceWellFormed first if you want
// that to be an error.
ProfileReport BuildProfileReport();

// JSON object (no trailing newline): {"wall_seconds":..,"spans":[..],
// "kernels":[..],"threads":[..]}.
std::string ProfileReportJson(const ProfileReport& report);

// Aligned human-readable tables (span table, roofline table, thread table).
void PrintProfileSummary(const ProfileReport& report, std::ostream& os);

}  // namespace fedsc

#endif  // FEDSC_COMMON_PROFILE_H_
