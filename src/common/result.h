// Result<T>: a value or a non-OK Status, in the style of arrow::Result.

#ifndef FEDSC_COMMON_RESULT_H_
#define FEDSC_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace fedsc {

template <typename T>
class Result {
 public:
  // Implicit construction from a value or a non-OK Status keeps call sites
  // terse: `return my_matrix;` / `return Status::InvalidArgument(...)`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    FEDSC_CHECK(!this->status().ok()) << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status* const kOk = new Status();
    return ok() ? *kOk : std::get<Status>(repr_);
  }

  // Value accessors die if the Result holds an error; callers must check
  // ok() (or use FEDSC_ASSIGN_OR_RETURN) first.
  const T& value() const& {
    FEDSC_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T& value() & {
    FEDSC_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T&& value() && {
    FEDSC_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Moves the value out, or returns `alternative` on error.
  T ValueOr(T alternative) && {
    return ok() ? std::get<T>(std::move(repr_)) : std::move(alternative);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace fedsc

#define FEDSC_CONCAT_IMPL(a, b) a##b
#define FEDSC_CONCAT(a, b) FEDSC_CONCAT_IMPL(a, b)

// FEDSC_ASSIGN_OR_RETURN(lhs, expr): evaluates `expr` (a Result<T>); on error
// returns its Status from the enclosing function, otherwise moves the value
// into `lhs` (which may be a declaration).
#define FEDSC_ASSIGN_OR_RETURN(lhs, expr)                                  \
  FEDSC_ASSIGN_OR_RETURN_IMPL(FEDSC_CONCAT(_fedsc_result_, __LINE__), lhs, \
                              expr)

#define FEDSC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // FEDSC_COMMON_RESULT_H_
