#include "common/rng.h"

#include <cmath>

namespace fedsc {

namespace {

// SplitMix64: expands a 64-bit seed into well-mixed generator state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  FEDSC_DCHECK(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t n) {
  FEDSC_CHECK(n > 0) << "UniformInt needs n > 0, got " << n;
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t draw;
  do {
    draw = Next();
  } while (draw >= limit);
  return static_cast<int64_t>(draw % un);
}

double Rng::Exponential(double mean) {
  FEDSC_CHECK(mean > 0.0) << "Exponential needs mean > 0, got " << mean;
  // Inverse CDF; Uniform() < 1, so the log argument stays positive.
  return -mean * std::log(1.0 - Uniform());
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 is kept away from 0 so the log is finite.
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

std::vector<double> Rng::GaussianVector(int64_t n) {
  FEDSC_CHECK(n >= 0);
  std::vector<double> out(static_cast<size_t>(n));
  for (auto& v : out) v = Gaussian();
  return out;
}

std::vector<double> Rng::UnitSphere(int64_t n) {
  FEDSC_CHECK(n > 0);
  std::vector<double> v;
  double norm = 0.0;
  // A fresh Gaussian vector is zero with probability 0, but loop anyway so a
  // pathological draw cannot produce NaNs downstream.
  do {
    v = GaussianVector(n);
    norm = 0.0;
    for (double x : v) norm += x * x;
  } while (norm == 0.0);
  norm = std::sqrt(norm);
  for (auto& x : v) x /= norm;
  return v;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  FEDSC_CHECK(0 <= k && k <= n) << "sample " << k << " from " << n;
  // Partial Fisher-Yates over an index array.
  std::vector<int64_t> idx(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
  for (int64_t i = 0; i < k; ++i) {
    const int64_t j = i + UniformInt(n - i);
    std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
  }
  idx.resize(static_cast<size_t>(k));
  return idx;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

uint64_t MixSeeds(uint64_t seed, uint64_t stream) {
  uint64_t x = seed;
  (void)SplitMix64(&x);  // decorrelate nearby base seeds
  x ^= 0x9E3779B97F4A7C15ULL * (stream + 1);
  return SplitMix64(&x);
}

}  // namespace fedsc
