// Deterministic random number generation.
//
// All stochastic components of the library draw from `Rng`, a xoshiro256++
// generator with SplitMix64 seeding and hand-rolled distributions
// (Box-Muller Gaussian, Fisher-Yates shuffles). Unlike std::mt19937 +
// std::normal_distribution, every draw is specified here, so experiment
// results are bit-reproducible across standard libraries and platforms.

#ifndef FEDSC_COMMON_RNG_H_
#define FEDSC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace fedsc {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Raw 64 uniform bits (xoshiro256++).
  uint64_t Next();

  // Uniform in [0, 1) with 53 bits of precision.
  double Uniform();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0. Uses rejection sampling, so
  // the result is exactly uniform.
  int64_t UniformInt(int64_t n);

  // Standard normal via Box-Muller (caches the second variate).
  double Gaussian();

  // Exponential with the given mean (inverse-CDF transform). Requires
  // mean > 0. Used for simulated straggler latencies.
  double Exponential(double mean);

  // n i.i.d. standard normal draws.
  std::vector<double> GaussianVector(int64_t n);

  // Uniform draw from the unit (n-1)-sphere: Gaussian vector, normalized.
  std::vector<double> UnitSphere(int64_t n);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (int64_t i = static_cast<int64_t>(values->size()) - 1; i > 0; --i) {
      std::swap((*values)[i], (*values)[UniformInt(i + 1)]);
    }
  }

  // k distinct values sampled uniformly from {0, ..., n-1}, in random order.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  // A fresh generator whose stream is independent of this one (for handing
  // each simulated device its own source of randomness).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// Well-mixed combination of a base seed and a stream index (SplitMix64 over
// both words). Handing every simulated device `Rng(MixSeeds(seed, z))` gives
// it a stream that depends only on (seed, z) — never on the order devices
// are processed in or the thread count — which is what keeps fault schedules
// and per-device noise bit-reproducible.
uint64_t MixSeeds(uint64_t seed, uint64_t stream);

}  // namespace fedsc

#endif  // FEDSC_COMMON_RNG_H_
