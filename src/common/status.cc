#include "common/status.h"

namespace fedsc {

namespace {
const std::string& EmptyString() {
  static const std::string* const kEmpty = new std::string();
  return *kEmpty;
}
}  // namespace

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kNotConverged:
      return "not converged";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kQuorumNotMet:
      return "quorum not met";
    case StatusCode::kWireCorrupt:
      return "wire corrupt";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) state_ = std::make_unique<State>(*other.state_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*other.state_);
  }
  return *this;
}

const std::string& Status::message() const {
  return state_ == nullptr ? EmptyString() : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace fedsc
