// Status-based error handling (no exceptions), in the style of Arrow/RocksDB.
//
// Fallible operations return `Status` (or `Result<T>`, see result.h). A
// Status is cheap to copy when OK (a single pointer) and carries a code plus
// a human-readable message otherwise.

#ifndef FEDSC_COMMON_STATUS_H_
#define FEDSC_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace fedsc {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kFailedPrecondition = 2,
  kOutOfRange = 3,
  kNotConverged = 4,
  kInternal = 5,
  kDeadlineExceeded = 6,
  kNotFound = 7,
  // A federated round finished with fewer participating devices than the
  // configured participation quorum requires (core/fedsc.h).
  kQuorumNotMet = 8,
  // A serialized uplink payload failed wire-format validation — bad magic,
  // unknown version, CRC mismatch, truncation, length lie, dtype confusion
  // (fed/wire.h). Every decoder failure carries this code, so callers can
  // quarantine the upload instead of treating it as a transport error.
  kWireCorrupt = 9,
};

// Returns a stable, lowercase name such as "invalid argument".
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  // An OK status. Carries no allocation.
  Status() = default;

  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status QuorumNotMet(std::string msg) {
    return Status(StatusCode::kQuorumNotMet, std::move(msg));
  }
  static Status WireCorrupt(std::string msg) {
    return Status(StatusCode::kWireCorrupt, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }
  // Empty string for OK statuses.
  const std::string& message() const;

  // "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;  // nullptr <=> OK
};

}  // namespace fedsc

// Evaluates `expr` (a Status expression); returns it from the enclosing
// function if it is not OK.
#define FEDSC_RETURN_NOT_OK(expr)                        \
  do {                                                   \
    ::fedsc::Status _fedsc_status = (expr);              \
    if (!_fedsc_status.ok()) return _fedsc_status;       \
  } while (false)

#endif  // FEDSC_COMMON_STATUS_H_
