// Wall-clock stopwatch used by the evaluation harness to measure
// T = sum_z T^(z) + T_c (Section VI of the paper).

#ifndef FEDSC_COMMON_STOPWATCH_H_
#define FEDSC_COMMON_STOPWATCH_H_

#include <chrono>

namespace fedsc {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fedsc

#endif  // FEDSC_COMMON_STOPWATCH_H_
