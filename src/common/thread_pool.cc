#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"

namespace fedsc {

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  FEDSC_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    FEDSC_CHECK(!shutting_down_) << "Schedule() after shutdown";
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(int64_t begin, int64_t end, int num_threads,
                 const std::function<void(int64_t)>& body) {
  FEDSC_CHECK(begin <= end);
  const int64_t count = end - begin;
  if (count == 0) return;
  if (num_threads <= 1 || count == 1) {
    for (int64_t i = begin; i < end; ++i) body(i);
    return;
  }
  ThreadPool pool(static_cast<int>(
      std::min<int64_t>(num_threads, count)));
  std::atomic<int64_t> next{begin};
  for (int t = 0; t < pool.num_threads(); ++t) {
    pool.Schedule([&next, end, &body] {
      // Self-scheduling: workers pull indices until the range drains, so
      // uneven per-iteration costs (devices of different sizes) balance.
      while (true) {
        const int64_t i = next.fetch_add(1);
        if (i >= end) return;
        body(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace fedsc
