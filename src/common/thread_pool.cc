#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"

namespace fedsc {

namespace {

// Set for the lifetime of every pool worker thread (workers are dedicated,
// so it is never reset). Lets nested parallel regions degrade to inline
// serial execution instead of spawning pools-within-pools.
thread_local bool tls_in_pool_worker = false;

}  // namespace

bool InThreadPoolWorker() { return tls_in_pool_worker; }

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  FEDSC_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    FEDSC_CHECK(!shutting_down_) << "Schedule() after shutdown";
    queue_.push(std::move(task));
    ++scheduled_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  // Snapshot the epoch under the lock: this Wait only covers tasks already
  // scheduled. completed_ is monotone, so the predicate can never "un-become"
  // true — a concurrent Schedule from another controller raises scheduled_
  // but not our target, closing the window where the old in_flight_ == 0
  // handshake left a waiter blocked on work it never scheduled.
  const int64_t target = scheduled_;
  all_done_.wait(lock, [this, target] { return completed_ >= target; });
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_worker = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down, backlog drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++completed_;
    }
    // Every completion may satisfy some epoch waiter (not just the last
    // one), so notify unconditionally; notifying without waiters is cheap.
    all_done_.notify_all();
  }
}

void ParallelFor(int64_t begin, int64_t end, int num_threads,
                 const std::function<void(int64_t)>& body) {
  FEDSC_CHECK(begin <= end);
  const int64_t count = end - begin;
  if (count == 0) return;
  if (num_threads <= 1 || count == 1 || InThreadPoolWorker()) {
    for (int64_t i = begin; i < end; ++i) body(i);
    return;
  }
  ThreadPool pool(static_cast<int>(
      std::min<int64_t>(num_threads, count)));
  std::atomic<int64_t> next{begin};
  for (int t = 0; t < pool.num_threads(); ++t) {
    pool.Schedule([&next, end, &body] {
      // Self-scheduling: workers pull indices until the range drains, so
      // uneven per-iteration costs (devices of different sizes) balance.
      while (true) {
        const int64_t i = next.fetch_add(1);
        if (i >= end) return;
        body(i);
      }
    });
  }
  pool.Wait();
}

int ParallelChunkCount(int64_t begin, int64_t end, int num_threads) {
  FEDSC_CHECK(begin <= end);
  const int64_t count = end - begin;
  if (count == 0) return 0;
  if (num_threads <= 1 || InThreadPoolWorker()) return 1;
  return static_cast<int>(std::min<int64_t>(num_threads, count));
}

int ParallelForRanges(
    int64_t begin, int64_t end, int num_threads,
    const std::function<void(int64_t, int64_t, int)>& body) {
  const int chunks = ParallelChunkCount(begin, end, num_threads);
  if (chunks == 0) return 0;
  if (chunks == 1) {
    body(begin, end, 0);
    return 1;
  }
  const int64_t count = end - begin;
  ThreadPool pool(chunks);
  for (int c = 0; c < chunks; ++c) {
    // Pure function of (begin, count, chunks): balanced contiguous ranges.
    const int64_t lo = begin + count * c / chunks;
    const int64_t hi = begin + count * (c + 1) / chunks;
    if (lo == hi) continue;
    pool.Schedule([lo, hi, c, &body] { body(lo, hi, c); });
  }
  pool.Wait();
  return chunks;
}

}  // namespace fedsc
