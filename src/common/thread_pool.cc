#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"
#include "common/metrics.h"

namespace fedsc {

namespace {

// Set for the lifetime of every pool worker thread (workers are dedicated,
// so it is never reset). Lets nested parallel regions degrade to inline
// serial execution instead of spawning pools-within-pools.
thread_local bool tls_in_pool_worker = false;

}  // namespace

bool InThreadPoolWorker() { return tls_in_pool_worker; }

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

int ThreadPool::num_threads() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::GrowTo(int num_threads) {
  std::unique_lock<std::mutex> lock(mutex_);
  FEDSC_CHECK(!shutting_down_) << "GrowTo() after shutdown";
  while (static_cast<int>(workers_.size()) < num_threads) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  FEDSC_CHECK(task != nullptr);
  // Task counts depend on the thread count (nt=1 paths run inline and
  // schedule nothing), so these are execution metrics, not deterministic.
  FEDSC_METRIC_COUNTER_KIND("threadpool.tasks_scheduled",
                            MetricKind::kExecution)
      .Increment();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    FEDSC_CHECK(!shutting_down_) << "Schedule() after shutdown";
    queue_.emplace(next_seq_++, std::move(task));
  }
  work_available_.notify_one();
}

int64_t ThreadPool::MinIncompleteSeqLocked() const {
  // Workers dequeue in FIFO order, so running tasks always predate queued
  // ones; take the min of both anyway so the invariant is not load-bearing.
  int64_t min_seq = next_seq_;
  if (!running_.empty()) min_seq = std::min(min_seq, *running_.begin());
  if (!queue_.empty()) min_seq = std::min(min_seq, queue_.front().first);
  return min_seq;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  // Snapshot under the lock: this Wait covers exactly the tasks with a
  // sequence number below the snapshot. Tracking incomplete sequences
  // (instead of a global completion count) means a short task scheduled
  // after the snapshot finishing early can never push the predicate true
  // while a pre-snapshot task is still running.
  const int64_t target = next_seq_;
  all_done_.wait(lock,
                 [this, target] { return MinIncompleteSeqLocked() >= target; });
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_worker = true;
  while (true) {
    int64_t seq;
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down, backlog drained
      seq = queue_.front().first;
      task = std::move(queue_.front().second);
      queue_.pop();
      running_.insert(seq);
    }
    task();
    FEDSC_METRIC_COUNTER_KIND("threadpool.tasks_executed",
                              MetricKind::kExecution)
        .Increment();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      running_.erase(seq);
    }
    // Every completion may satisfy some waiter (not just the last one), so
    // notify unconditionally; notifying without waiters is cheap.
    all_done_.notify_all();
  }
}

ThreadPool& SharedThreadPool(int min_threads) {
  // Deliberately persistent: spawning and joining a pool per parallel
  // region (one per Jacobi round, one per Gemm call inside ADMM, ...) costs
  // more than the work for mid-size problems. Worker count only ever grows;
  // results never depend on it because every helper partitions work as a
  // pure function of (range, num_threads).
  static ThreadPool pool(std::max(1, min_threads));
  pool.GrowTo(min_threads);
  return pool;
}

void ParallelFor(int64_t begin, int64_t end, int num_threads,
                 const std::function<void(int64_t)>& body) {
  FEDSC_CHECK(begin <= end);
  const int64_t count = end - begin;
  if (count == 0) return;
  if (num_threads <= 1 || count == 1 || InThreadPoolWorker()) {
    for (int64_t i = begin; i < end; ++i) body(i);
    return;
  }
  const int tasks = static_cast<int>(std::min<int64_t>(num_threads, count));
  ThreadPool& pool = SharedThreadPool(tasks);
  std::atomic<int64_t> next{begin};
  for (int t = 0; t < tasks; ++t) {
    pool.Schedule([&next, end, &body] {
      // Self-scheduling: workers pull indices until the range drains, so
      // uneven per-iteration costs (devices of different sizes) balance.
      while (true) {
        const int64_t i = next.fetch_add(1);
        if (i >= end) return;
        body(i);
      }
    });
  }
  pool.Wait();
}

int ParallelChunkCount(int64_t begin, int64_t end, int num_threads) {
  FEDSC_CHECK(begin <= end);
  const int64_t count = end - begin;
  if (count == 0) return 0;
  if (num_threads <= 1 || InThreadPoolWorker()) return 1;
  return static_cast<int>(std::min<int64_t>(num_threads, count));
}

int ParallelForRanges(
    int64_t begin, int64_t end, int num_threads,
    const std::function<void(int64_t, int64_t, int)>& body) {
  const int chunks = ParallelChunkCount(begin, end, num_threads);
  if (chunks == 0) return 0;
  if (chunks == 1) {
    body(begin, end, 0);
    return 1;
  }
  const int64_t count = end - begin;
  ThreadPool& pool = SharedThreadPool(chunks);
  for (int c = 0; c < chunks; ++c) {
    // Pure function of (begin, count, chunks): balanced contiguous ranges.
    const int64_t lo = begin + count * c / chunks;
    const int64_t hi = begin + count * (c + 1) / chunks;
    if (lo == hi) continue;
    pool.Schedule([lo, hi, c, &body] { body(lo, hi, c); });
  }
  pool.Wait();
  return chunks;
}

}  // namespace fedsc
