// Fixed-size worker pool with deterministic parallel-for helpers.
//
// Fed-SC's devices are independent in Phase 1, which is where the paper's
// parallel running time O(N^2 + Z^2) (Section IV-E) comes from; RunFedSc
// uses this pool to run local clustering concurrently when
// FedScOptions::num_threads > 1. Since that PR the pool also backs the
// kernel-level hot paths (blocked GEMM/GEMV, Jacobi SVD sweeps, per-column
// SSC solves). Two helpers cover the two safe parallel shapes:
//
//  * ParallelFor      — self-scheduling over single indices. Use only when
//                       every iteration writes a disjoint output slot, so
//                       execution order cannot matter.
//  * ParallelForRanges — fixed partitioning of [begin, end) into contiguous
//                       index ranges, one task per range. This is the
//                       required shape whenever results are merged or
//                       reduced afterwards: the partition depends only on
//                       (range, num_threads), never on timing, so merging
//                       per-range results in range order is bit-exact equal
//                       to the serial pass. See "Threading model &
//                       determinism contract" in DESIGN.md.
//
// Determinism is preserved by assigning every task its seed and its output
// range before dispatch.

#ifndef FEDSC_COMMON_THREAD_POOL_H_
#define FEDSC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <set>
#include <thread>
#include <utility>
#include <vector>

namespace fedsc {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  // Drains any still-queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const;

  // Adds workers until the pool has at least `num_threads` of them. Safe to
  // call while tasks are queued or running; existing workers are untouched.
  void GrowTo(int num_threads);

  // Enqueues a task; it may run on any worker, in any order.
  void Schedule(std::function<void()> task);

  // Blocks until every task scheduled *before this call* has finished.
  // Completion is tracked per task (by schedule sequence number), so a task
  // scheduled after this call starts can neither extend the wait nor — by
  // finishing quickly while an earlier task is still running — satisfy it
  // early. The pool is reusable: Schedule after Wait is always safe,
  // including while workers are still draining another controller's tasks.
  void Wait();

 private:
  void WorkerLoop();
  // Smallest schedule sequence number not yet completed (next_seq_ when the
  // pool is idle). Caller must hold mutex_.
  int64_t MinIncompleteSeqLocked() const;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  // Each task carries the sequence number Schedule assigned it. A waiter
  // snapshots next_seq_ and sleeps until no queued or running task has a
  // smaller sequence: out-of-order completions of later tasks cannot wake
  // it early, and a concurrent Schedule from another controller raises
  // next_seq_ but not the snapshot, so nobody waits on work scheduled after
  // their Wait began.
  std::queue<std::pair<int64_t, std::function<void()>>> queue_;
  std::set<int64_t> running_;
  int64_t next_seq_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

// The process-wide pool backing ParallelFor / ParallelForRanges: created
// lazily on first use and grown (never shrunk) to the largest thread count
// any caller has requested, so hot loops reuse warm workers instead of
// paying thread spawn/join per parallel region. Joined at process exit.
ThreadPool& SharedThreadPool(int min_threads);

// True when called from inside a ThreadPool worker. The parallel-for
// helpers consult this to run nested parallel regions inline (serially)
// instead of spawning pools-within-pools; results are unchanged because
// every helper is bit-exact across thread counts by construction.
bool InThreadPoolWorker();

// Runs body(i) for i in [begin, end), spread across `num_threads` tasks on
// the shared pool (inline when num_threads <= 1, the range is tiny, or the
// caller is itself a pool worker). Workers self-schedule single indices, so
// uneven per-iteration costs (devices of different sizes) balance; use this
// ONLY when each iteration owns a disjoint output slot.
void ParallelFor(int64_t begin, int64_t end, int num_threads,
                 const std::function<void(int64_t)>& body);

// Splits [begin, end) into at most `num_threads` contiguous ranges and runs
// body(chunk_begin, chunk_end, chunk_index) for each, in parallel on the
// shared pool (the partition — and therefore the result — never depends on
// how many workers that pool happens to have). The
// partition is a pure function of (begin, end, num_threads): chunk c covers
// [begin + c*count/chunks, begin + (c+1)*count/chunks). Runs inline, as the
// single chunk [begin, end), when num_threads <= 1 or the caller is a pool
// worker. Returns the number of chunks used, so callers can preallocate
// per-chunk accumulators; with num_threads <= 1 that is 1 (or 0 for an
// empty range).
int ParallelForRanges(
    int64_t begin, int64_t end, int num_threads,
    const std::function<void(int64_t, int64_t, int)>& body);

// The number of chunks ParallelForRanges will use for this configuration
// (without running anything). Lets deterministic reducers size their
// per-chunk slots up front.
int ParallelChunkCount(int64_t begin, int64_t end, int num_threads);

}  // namespace fedsc

#endif  // FEDSC_COMMON_THREAD_POOL_H_
