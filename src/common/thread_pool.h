// Fixed-size worker pool with a ParallelFor helper.
//
// Fed-SC's devices are independent in Phase 1, which is where the paper's
// parallel running time O(N^2 + Z^2) (Section IV-E) comes from; RunFedSc
// uses this pool to run local clustering concurrently when
// FedScOptions::num_threads > 1. Determinism is preserved by assigning every
// device its seed before dispatch.

#ifndef FEDSC_COMMON_THREAD_POOL_H_
#define FEDSC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fedsc {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task; it may run on any worker, in any order.
  void Schedule(std::function<void()> task);

  // Blocks until every scheduled task has finished.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> queue_;
  int64_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

// Runs body(i) for i in [begin, end), spread across `num_threads` workers
// (inline when num_threads <= 1 or the range is tiny). The body must not
// touch data owned by other iterations without its own synchronization.
void ParallelFor(int64_t begin, int64_t end, int num_threads,
                 const std::function<void(int64_t)>& body);

}  // namespace fedsc

#endif  // FEDSC_COMMON_THREAD_POOL_H_
