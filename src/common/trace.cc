#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>

namespace fedsc {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

using Clock = std::chrono::steady_clock;

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out += buffer;
    } else {
      out += c;
    }
  }
  return out;
}

using TraceEvent = internal::RawTraceEvent;

struct ThreadLog {
  explicit ThreadLog(int tid_in) : tid(tid_in) {}
  const int tid;
  std::mutex mutex;
  std::vector<TraceEvent> events;
};

class TraceRecorder {
 public:
  static TraceRecorder& Global() {
    // Leaked: thread-pool workers may record until process teardown.
    static TraceRecorder* recorder = new TraceRecorder();
    return *recorder;
  }

  void Record(const char* name, std::string args_json, bool begin) {
    const int64_t now = NowNanos();
    ThreadLog* log = MyLog();
    const double ts =
        static_cast<double>(now - start_ns_.load(std::memory_order_relaxed)) *
        1e-3;
    std::lock_guard<std::mutex> lock(log->mutex);
    log->events.push_back({name, std::move(args_json), ts, begin});
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& log : logs_) {
      std::lock_guard<std::mutex> log_lock(log->mutex);
      log->events.clear();
    }
    start_ns_.store(NowNanos(), std::memory_order_relaxed);
  }

  // Copies every thread's events (tid, events) in tid order.
  std::vector<std::pair<int, std::vector<TraceEvent>>> Snapshot() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<int, std::vector<TraceEvent>>> out;
    out.reserve(logs_.size());
    for (auto& log : logs_) {
      std::lock_guard<std::mutex> log_lock(log->mutex);
      out.push_back({log->tid, log->events});
    }
    return out;
  }

 private:
  TraceRecorder() : start_ns_(NowNanos()) {}

  ThreadLog* MyLog() {
    thread_local ThreadLog* log = nullptr;
    if (log == nullptr) {
      std::lock_guard<std::mutex> lock(mutex_);
      logs_.push_back(std::make_unique<ThreadLog>(
          static_cast<int>(logs_.size())));
      log = logs_.back().get();
    }
    return log;
  }

  std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadLog>> logs_;
  std::atomic<int64_t> start_ns_;
};

std::string RenderArgs(std::initializer_list<TraceArg> args) {
  std::string out;
  for (const TraceArg& arg : args) {
    if (!out.empty()) out += ",";
    out += "\"" + JsonEscape(arg.key.c_str()) + "\":" + arg.json_value;
  }
  return out;
}

// "\"z\":3,\"kind\":\"ssc\"" -> "z=3 kind=ssc" for the summary table.
std::string ArgsDisplay(const std::string& args_json) {
  std::string out;
  for (char c : args_json) {
    if (c == '"') continue;
    if (c == ':') {
      out += '=';
    } else if (c == ',') {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

TraceArg::TraceArg(const char* key_in, int64_t value)
    : key(key_in), json_value(std::to_string(value)) {}
TraceArg::TraceArg(const char* key_in, int value)
    : key(key_in), json_value(std::to_string(value)) {}
TraceArg::TraceArg(const char* key_in, uint64_t value)
    : key(key_in), json_value(std::to_string(value)) {}
TraceArg::TraceArg(const char* key_in, double value) : key(key_in) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  json_value = buffer;
}
TraceArg::TraceArg(const char* key_in, const char* value)
    : key(key_in), json_value("\"" + JsonEscape(value) + "\"") {}

namespace internal {
std::vector<std::pair<int, std::vector<RawTraceEvent>>> SnapshotTraceEvents() {
  return TraceRecorder::Global().Snapshot();
}
}  // namespace internal

void EnableTracing(bool on) {
  TraceRecorder::Global();  // construct before anyone can record
  internal::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void ResetTrace() { TraceRecorder::Global().Reset(); }

TraceSpan::~TraceSpan() {
  if (active_) {
    TraceRecorder::Global().Record(name_, std::string(), /*begin=*/false);
  }
}

void TraceSpan::Begin(const char* name) {
  name_ = name;
  active_ = true;
  TraceRecorder::Global().Record(name, std::string(), /*begin=*/true);
}

void TraceSpan::Begin(const char* name,
                      std::initializer_list<TraceArg> args) {
  name_ = name;
  active_ = true;
  TraceRecorder::Global().Record(name, RenderArgs(args), /*begin=*/true);
}

void WriteChromeTrace(std::ostream& os) {
  const auto logs = TraceRecorder::Global().Snapshot();
  os << "{\"traceEvents\":[";
  bool first = true;
  char buffer[64];
  for (const auto& [tid, events] : logs) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"fedsc-" << tid << "\"}}";
    for (const TraceEvent& event : events) {
      std::snprintf(buffer, sizeof(buffer), "%.3f", event.ts_micros);
      os << ",\n{\"name\":\"" << JsonEscape(event.name) << "\",\"cat\":"
         << "\"fedsc\",\"ph\":\"" << (event.begin ? 'B' : 'E')
         << "\",\"ts\":" << buffer << ",\"pid\":1,\"tid\":" << tid;
      if (!event.args_json.empty()) {
        os << ",\"args\":{" << event.args_json << "}";
      }
      os << "}";
    }
  }
  os << (first ? "" : "\n") << "],\"displayTimeUnit\":\"ms\"}\n";
}

std::string ChromeTraceString() {
  std::ostringstream os;
  WriteChromeTrace(os);
  return os.str();
}

Status WriteChromeTraceFile(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound("cannot open trace output file " + path);
  }
  WriteChromeTrace(out);
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

std::vector<TraceSpanStats> SummarizeTrace() {
  const auto logs = TraceRecorder::Global().Snapshot();
  std::map<std::string, TraceSpanStats> by_key;
  struct Open {
    const TraceEvent* begin;
  };
  for (const auto& [tid, events] : logs) {
    std::vector<Open> stack;
    for (const TraceEvent& event : events) {
      if (event.begin) {
        stack.push_back({&event});
        continue;
      }
      if (stack.empty()) continue;  // reset mid-span; skip the orphan
      const TraceEvent* begin = stack.back().begin;
      stack.pop_back();
      std::string key = begin->name;
      if (!begin->args_json.empty()) {
        key += " " + ArgsDisplay(begin->args_json);
      }
      const double seconds = (event.ts_micros - begin->ts_micros) * 1e-6;
      TraceSpanStats& stats = by_key[key];
      stats.key = key;
      stats.count += 1;
      stats.total_seconds += seconds;
      stats.max_seconds = std::max(stats.max_seconds, seconds);
    }
  }
  std::vector<TraceSpanStats> out;
  out.reserve(by_key.size());
  for (auto& [key, stats] : by_key) out.push_back(std::move(stats));
  return out;
}

void PrintTraceSummary(std::ostream& os) {
  const std::vector<TraceSpanStats> rows = SummarizeTrace();
  size_t width = 4;  // "span"
  for (const TraceSpanStats& row : rows) {
    width = std::max(width, row.key.size());
  }
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer), "%-*s | %8s | %12s | %12s\n",
                static_cast<int>(width), "span", "count", "total ms",
                "max ms");
  os << buffer;
  os << std::string(width, '-') << "-+----------+--------------+-------------"
     << "-\n";
  for (const TraceSpanStats& row : rows) {
    std::snprintf(buffer, sizeof(buffer),
                  "%-*s | %8lld | %12.3f | %12.3f\n",
                  static_cast<int>(width), row.key.c_str(),
                  static_cast<long long>(row.count),
                  row.total_seconds * 1e3, row.max_seconds * 1e3);
    os << buffer;
  }
}

Status CheckTraceWellFormed() {
  const auto logs = TraceRecorder::Global().Snapshot();
  for (const auto& [tid, events] : logs) {
    std::vector<const TraceEvent*> stack;
    for (const TraceEvent& event : events) {
      if (event.begin) {
        stack.push_back(&event);
      } else if (stack.empty()) {
        return Status::Internal("trace tid " + std::to_string(tid) +
                                ": end event without a matching begin");
      } else {
        stack.pop_back();
      }
    }
    if (!stack.empty()) {
      return Status::Internal("trace tid " + std::to_string(tid) + ": " +
                              std::to_string(stack.size()) +
                              " span(s) never ended (" +
                              std::string(stack.back()->name) + ")");
    }
  }
  return Status::OK();
}

}  // namespace fedsc
