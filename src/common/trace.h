// Scoped-span tracing across the Fed-SC pipeline.
//
// A span is an RAII begin/end event pair recorded on the calling thread:
//
//   FEDSC_TRACE_SPAN("fedsc/phase1/device", {{"z", z}});
//
// Spans nest naturally (each thread's events form a well-parenthesized
// sequence) and the recorder exports them as Chrome trace-event JSON, which
// loads directly in chrome://tracing and https://ui.perfetto.dev — Phase 1's
// per-device spans land on the worker-thread tracks, making the paper's
// parallel running-time claim (Section IV-E) visible on a timeline.
//
// Cost contract: with tracing disabled (the default) the macro performs one
// relaxed atomic load and touches nothing else — no allocation, no locking,
// and the span's argument list is not even evaluated. Span *timestamps* are
// wall-clock and therefore vary run to run; deterministic accounting belongs
// in the metrics registry (common/metrics.h), not in span durations.
//
// Enable/disable and ResetTrace are meant for quiescent points (before/after
// a run); resetting while spans are open leaves unmatched end events behind,
// which CheckTraceWellFormed will report.

#ifndef FEDSC_COMMON_TRACE_H_
#define FEDSC_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"

namespace fedsc {

namespace internal {
extern std::atomic<bool> g_trace_enabled;

// One recorded begin/end event as the per-thread buffers store it. Exposed
// for the span profiler (common/profile.h), which folds the same buffers
// the Chrome exporter reads into inclusive/exclusive time tables.
struct RawTraceEvent {
  const char* name;       // literal passed to the span macro
  std::string args_json;  // "" or "\"z\":3,\"kind\":\"ssc\""
  double ts_micros;
  bool begin;
};

// Copies every thread's events as (tid, events) pairs in tid order.
std::vector<std::pair<int, std::vector<RawTraceEvent>>> SnapshotTraceEvents();
}  // namespace internal

// The single relaxed load on the disabled path.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

void EnableTracing(bool on);
// Drops every recorded event (all threads) and restarts the trace clock.
void ResetTrace();

// One key/value annotation on a span. Only constructed when tracing is
// enabled (the macro gates the argument list behind TraceEnabled()).
struct TraceArg {
  TraceArg(const char* key, int64_t value);
  TraceArg(const char* key, int value);
  TraceArg(const char* key, uint64_t value);
  TraceArg(const char* key, double value);
  TraceArg(const char* key, const char* value);

  std::string key;
  std::string json_value;  // rendered JSON (strings arrive quoted + escaped)
};

class TraceSpan {
 public:
  TraceSpan() = default;
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Records the begin event. `name` must outlive the trace (the macros pass
  // string literals).
  void Begin(const char* name);
  void Begin(const char* name, std::initializer_list<TraceArg> args);

 private:
  bool active_ = false;
  const char* name_ = nullptr;
};

}  // namespace fedsc

#define FEDSC_OBS_CONCAT_INNER(a, b) a##b
#define FEDSC_OBS_CONCAT(a, b) FEDSC_OBS_CONCAT_INNER(a, b)

// Declares a scoped span covering the rest of the enclosing block. Two
// statements by design: the span object must outlive the macro, and Begin
// (which evaluates the argument list) only runs when tracing is enabled.
#define FEDSC_TRACE_SPAN(...)                                       \
  ::fedsc::TraceSpan FEDSC_OBS_CONCAT(fedsc_trace_span_, __LINE__); \
  if (::fedsc::TraceEnabled())                                      \
  FEDSC_OBS_CONCAT(fedsc_trace_span_, __LINE__).Begin(__VA_ARGS__)

namespace fedsc {

// Chrome trace-event JSON ("B"/"E" duration events plus thread-name
// metadata), loadable in chrome://tracing and Perfetto.
void WriteChromeTrace(std::ostream& os);
std::string ChromeTraceString();
Status WriteChromeTraceFile(const std::string& path);

// Aggregated wall-clock per span key. The key is the span name plus its
// rendered args ("fedsc/phase1/device z=3"), so per-device rows come out
// separated — the per-device/per-phase time table of Section VI.
struct TraceSpanStats {
  std::string key;
  int64_t count = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;
};
std::vector<TraceSpanStats> SummarizeTrace();
// Pretty-prints SummarizeTrace() as an aligned table.
void PrintTraceSummary(std::ostream& os);

// Verifies every recorded begin has a matching end with proper nesting on
// every thread (used by tests and the exporter validators).
Status CheckTraceWellFormed();

}  // namespace fedsc

#endif  // FEDSC_COMMON_TRACE_H_
