#include "core/fedsc.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/journal.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/report.h"
#include "graph/eigengap.h"
#include "linalg/batch.h"
#include "linalg/blas.h"
#include "linalg/svd.h"
#include "sc/affinity.h"

namespace fedsc {

namespace {

// Uniform sample from the unit sphere of the subspace spanned by `basis`
// (Eq. 5): theta = U alpha / ||U alpha||, alpha ~ N(0, I).
Vector SampleFromSubspace(const Matrix& basis, Rng* rng) {
  const int64_t n = basis.rows();
  Vector theta(static_cast<size_t>(n), 0.0);
  double norm = 0.0;
  do {
    const Vector alpha = rng->GaussianVector(basis.cols());
    Gemv(Trans::kNo, 1.0, basis, alpha.data(), 0.0, theta.data());
    norm = Norm2(theta.data(), n);
  } while (norm <= 1e-300);
  Scal(1.0 / norm, theta.data(), n);
  return theta;
}

// Bases for every local cluster's subspace in two batched factorization
// calls (linalg/batch.h): one over all member panels, then — when
// trim_fraction pruning kicks in — one over the inlier panels. Slot t holds
// the basis for members[t], or the per-cluster error for degenerate
// clusters (all points numerically zero); the caller draws its
// random-direction fallback at exactly the point the old per-cluster loop
// did, so the rng stream is unchanged. With trim_fraction > 0 the
// worst-fitting members of each cluster are dropped once and that basis
// refit (outlier robustness); a failed refit keeps the initial basis, as
// before.
std::vector<Result<Matrix>> EstimateClusterBases(
    const Matrix& normalized, const std::vector<std::vector<int64_t>>& members,
    const FedScOptions& options) {
  BatchedSubspaceOptions batch;
  batch.rank = options.sample_dim;
  batch.rel_tol = options.rank_rel_tol;
  // Nested calls made from inside the device fan-out run inline, so this
  // cannot oversubscribe (same lift as the spectral step).
  batch.num_threads = options.num_threads;
  std::vector<Result<Matrix>> bases =
      BatchedPrincipalSubspace(normalized, members, batch);
  if (options.trim_fraction <= 0.0) return bases;

  // Residual of each member to its fitted subspace: ||x - U U^T x||. The
  // refit panels gather inliers in ascending-residual order, matching the
  // GatherCols order of the per-cluster loop this replaces.
  const int64_t n = normalized.rows();
  std::vector<size_t> refit_slots;
  std::vector<std::vector<int64_t>> refit_groups;
  Vector reconstructed(static_cast<size_t>(n), 0.0);
  for (size_t t = 0; t < members.size(); ++t) {
    if (!bases[t].ok()) continue;
    const Matrix& basis = *bases[t];
    const std::vector<int64_t>& group = members[t];
    const int64_t count = static_cast<int64_t>(group.size());
    const int64_t keep = count - static_cast<int64_t>(std::floor(
                                     options.trim_fraction * count));
    if (keep >= count || keep <= basis.cols() + 1) continue;
    std::vector<std::pair<double, int64_t>> residuals;
    residuals.reserve(static_cast<size_t>(count));
    Vector coords(static_cast<size_t>(basis.cols()), 0.0);
    for (int64_t j = 0; j < count; ++j) {
      const double* x = normalized.ColData(group[static_cast<size_t>(j)]);
      Gemv(Trans::kTrans, 1.0, basis, x, 0.0, coords.data());
      Gemv(Trans::kNo, 1.0, basis, coords.data(), 0.0, reconstructed.data());
      Axpy(-1.0, x, reconstructed.data(), n);
      residuals.push_back({Norm2(reconstructed.data(), n), j});
    }
    std::sort(residuals.begin(), residuals.end());
    std::vector<int64_t> inliers;
    inliers.reserve(static_cast<size_t>(keep));
    for (int64_t j = 0; j < keep; ++j) {
      inliers.push_back(group[static_cast<size_t>(
          residuals[static_cast<size_t>(j)].second)]);
    }
    refit_slots.push_back(t);
    refit_groups.push_back(std::move(inliers));
  }
  if (refit_groups.empty()) return bases;

  std::vector<Result<Matrix>> refits =
      BatchedPrincipalSubspace(normalized, refit_groups, batch);
  for (size_t i = 0; i < refit_slots.size(); ++i) {
    if (refits[i].ok()) bases[refit_slots[i]] = std::move(refits[i]);
  }
  return bases;
}

Status ValidateOptions(const FedScOptions& options) {
  if (options.central_method != ScMethod::kSsc &&
      options.central_method != ScMethod::kTsc) {
    return Status::InvalidArgument(
        "Fed-SC's server runs SSC or TSC (Section IV-D)");
  }
  if (options.samples_per_cluster < 1) {
    return Status::InvalidArgument("samples_per_cluster must be >= 1");
  }
  if (!options.use_eigengap && options.max_local_clusters < 1) {
    return Status::InvalidArgument(
        "fixed-r mode needs max_local_clusters >= 1");
  }
  FEDSC_RETURN_NOT_OK(ValidateChannelOptions(options.channel));
  FEDSC_RETURN_NOT_OK(ValidateRetryOptions(options.retry));
  FEDSC_RETURN_NOT_OK(ValidateFaultPlanOptions(options.faults));
  FEDSC_RETURN_NOT_OK(ValidateUploadValidationOptions(options.validation));
  FEDSC_RETURN_NOT_OK(ValidateDefenseOptions(options.defense));
  if (!(options.quorum >= 0.0 && options.quorum <= 1.0)) {
    return Status::InvalidArgument("quorum must lie in [0, 1], got " +
                                   std::to_string(options.quorum));
  }
  return Status::OK();
}

}  // namespace

const char* DeviceOutcomeName(DeviceOutcome outcome) {
  switch (outcome) {
    case DeviceOutcome::kOk:
      return "ok";
    case DeviceOutcome::kDropped:
      return "dropped";
    case DeviceOutcome::kQuarantined:
      return "quarantined";
    case DeviceOutcome::kLocalError:
      return "local error";
    case DeviceOutcome::kScreened:
      return "screened";
  }
  return "unknown";
}

Result<LocalClusteringOutput> LocalClusterAndSample(const Matrix& points,
                                                    const FedScOptions& options,
                                                    uint64_t seed) {
  FEDSC_RETURN_NOT_OK(ValidateOptions(options));
  Rng rng(seed);
  const int64_t n = points.rows();
  const int64_t num_points = points.cols();

  LocalClusteringOutput out;
  if (num_points == 0) return out;

  Matrix normalized = points;
  normalized.NormalizeColumns();

  // Tiny devices cannot run SSC; treat all points as one cluster.
  if (num_points < 3) {
    out.partition.assign(static_cast<size_t>(num_points), 0);
    out.num_local_clusters = 1;
  } else {
    Matrix affinity;
    {
      FEDSC_TRACE_SPAN("local/ssc", {{"points", num_points}});
      FEDSC_ASSIGN_OR_RETURN(SparseMatrix coeffs,
                             SscSelfExpression(normalized, options.local_ssc));
      affinity = AffinityFromCoefficients(coeffs).ToDense();
    }

    int64_t r = 1;
    if (options.use_eigengap) {
      FEDSC_TRACE_SPAN("local/eigengap");
      EigengapOptions gap;
      gap.max_clusters = options.max_local_clusters;
      FEDSC_ASSIGN_OR_RETURN(r, EstimateClusterCount(affinity, gap));
    } else {
      r = std::min<int64_t>(options.max_local_clusters, num_points);
    }
    out.num_local_clusters = r;

    if (r == 1) {
      out.partition.assign(static_cast<size_t>(num_points), 0);
    } else {
      FEDSC_TRACE_SPAN("local/spectral", {{"r", r}});
      SpectralOptions spectral = options.local_spectral;
      spectral.kmeans.seed = rng.Next();
      // Same lift as the pipeline: the run-level thread count applies unless
      // the local spectral options pin their own. Nested calls made from
      // inside the device fan-out run inline, so this cannot oversubscribe.
      spectral.num_threads = spectral.num_threads > 1 ? spectral.num_threads
                                                      : options.num_threads;
      FEDSC_ASSIGN_OR_RETURN(SpectralResult clusters,
                             SpectralCluster(affinity, r, spectral));
      out.partition = std::move(clusters.labels);
    }
  }

  // Estimate each cluster's subspace and draw the uploaded samples. The
  // bases for all clusters come from batched factorization calls up front
  // (none of which consume rng); the loop below then draws fallbacks and
  // samples in the same order — and so from the same rng positions — as the
  // per-cluster loop this replaces.
  FEDSC_TRACE_SPAN("local/sample", {{"clusters", out.num_local_clusters}});
  const int64_t r = out.num_local_clusters;
  const int64_t per_cluster = options.samples_per_cluster;
  std::vector<std::vector<int64_t>> members(static_cast<size_t>(r));
  for (int64_t i = 0; i < num_points; ++i) {
    members[static_cast<size_t>(out.partition[static_cast<size_t>(i)])]
        .push_back(i);
  }
  std::vector<Result<Matrix>> bases;
  {
    FEDSC_TRACE_SPAN("local/basis", {{"clusters", r}});
    bases = EstimateClusterBases(normalized, members, options);
  }
  out.samples = Matrix(n, r * per_cluster);
  out.sample_cluster.reserve(static_cast<size_t>(r * per_cluster));
  int64_t next = 0;
  for (int64_t t = 0; t < r; ++t) {
    Matrix basis;
    if (members[static_cast<size_t>(t)].empty()) {
      // Spectral k-means guards against empty clusters, but stay defensive.
      basis = Matrix::FromColumn(rng.UnitSphere(n));
    } else if (!bases[static_cast<size_t>(t)].ok()) {
      // Degenerate cluster (all points numerically zero): fall back to a
      // random direction so the device can still participate.
      FEDSC_LOG(Warning) << "degenerate local cluster ("
                         << bases[static_cast<size_t>(t)].status().ToString()
                         << "); sampling a random direction";
      basis = Matrix::FromColumn(rng.UnitSphere(n));
    } else {
      basis = std::move(bases[static_cast<size_t>(t)]).value();
    }
    for (int64_t s = 0; s < per_cluster; ++s) {
      out.samples.SetCol(next++, SampleFromSubspace(basis, &rng));
      out.sample_cluster.push_back(t);
    }
  }
  return out;
}

Result<FedScResult> RunFedSc(const FederatedDataset& data,
                             int64_t num_clusters,
                             const FedScOptions& options) {
  FEDSC_RETURN_NOT_OK(ValidateOptions(options));
  const int64_t num_devices = data.num_devices();
  if (num_devices == 0) return Status::InvalidArgument("no devices");
  if (num_clusters < 1) {
    return Status::InvalidArgument("need num_clusters >= 1");
  }

  FEDSC_TRACE_SPAN("fedsc/run",
                   {{"devices", num_devices}, {"clusters", num_clusters}});
  FEDSC_METRIC_COUNTER("fedsc.runs").Increment();
  FEDSC_METRIC_COUNTER("fedsc.devices").Add(num_devices);

  Rng rng(options.seed);
  Channel channel(options.channel);
  FedScResult result;
  result.local_cluster_counts.resize(static_cast<size_t>(num_devices));
  result.device_labels.resize(static_cast<size_t>(num_devices));
  result.point_sample.resize(static_cast<size_t>(num_devices));

  // The fault plan is a pure function of (options, z), so drawing it before
  // Phase 1 changes nothing downstream — and lets the journal announce every
  // device's schedule up front.
  FEDSC_ASSIGN_OR_RETURN(FaultPlan plan,
                         FaultPlan::Create(num_devices, options.faults));
  FEDSC_JOURNAL_EVENT("run_start", -1, -1,
                      {{"devices", num_devices},
                       {"clusters", num_clusters},
                       {"seed", options.seed},
                       {"fault_seed", options.faults.seed}});
  if (JournalEnabled()) {
    for (int64_t z = 0; z < num_devices; ++z) {
      JournalRecord("scheduled", z, -1,
                    {{"fault", FaultClassName(plan.ScheduleFor(z))}});
    }
  }

  // Phase 1: local clustering and sampling on every device. Devices are
  // independent, so the work fans out over options.num_threads; seeds are
  // fixed up front so the outcome matches the sequential run exactly.
  std::vector<LocalClusteringOutput> locals(
      static_cast<size_t>(num_devices));
  std::vector<Status> device_status(static_cast<size_t>(num_devices));
  std::vector<double> device_seconds(static_cast<size_t>(num_devices), 0.0);
  std::vector<uint64_t> device_seeds(static_cast<size_t>(num_devices));
  for (auto& seed : device_seeds) seed = rng.Next();
  {
    FEDSC_TRACE_SPAN("fedsc/phase1", {{"devices", num_devices}});
    ParallelFor(0, num_devices, options.num_threads, [&](int64_t z) {
      FEDSC_TRACE_SPAN("fedsc/phase1/device", {{"z", z}});
      Stopwatch local_timer;
      auto local = LocalClusterAndSample(data.points[static_cast<size_t>(z)],
                                         options,
                                         device_seeds[static_cast<size_t>(z)]);
      device_seconds[static_cast<size_t>(z)] = local_timer.ElapsedSeconds();
      if (local.ok()) {
        locals[static_cast<size_t>(z)] = std::move(local).value();
      } else {
        device_status[static_cast<size_t>(z)] = local.status();
      }
    });
  }

  // Uplink with the failure model: the fault plan injects per-device
  // failures, the channel retries against a simulated clock, and the server
  // quarantines corrupt sample columns instead of crashing. Everything here
  // is serial protocol code, so metrics, schedules, and journal events are
  // deterministic for any num_threads.
  std::vector<Matrix> received(static_cast<size_t>(num_devices));
  // For participating devices: the original upload column index of every
  // accepted (post-quarantine) column, in accepted order.
  std::vector<std::vector<int64_t>> kept_samples(
      static_cast<size_t>(num_devices));
  result.device_reports.resize(static_cast<size_t>(num_devices));
  int64_t total_samples = 0;
  int64_t rounds_used = 1;
  int64_t sim_uplink_ms = 0;
  {
    FEDSC_TRACE_SPAN("fedsc/uplink", {{"devices", num_devices}});
    for (int64_t z = 0; z < num_devices; ++z) {
      DeviceReport& report = result.device_reports[static_cast<size_t>(z)];
      report.device = z;
      if (!device_status[static_cast<size_t>(z)].ok()) {
        report.outcome = DeviceOutcome::kLocalError;
        report.status = device_status[static_cast<size_t>(z)];
        FEDSC_JOURNAL_EVENT("local_error", z, -1,
                            {{"status", report.status.ToString()}});
        continue;
      }
      result.local_seconds += device_seconds[static_cast<size_t>(z)];
      result.local_cluster_counts[static_cast<size_t>(z)] =
          locals[static_cast<size_t>(z)].num_local_clusters;
      FEDSC_METRIC_COUNTER("fedsc.local_clusters")
          .Add(locals[static_cast<size_t>(z)].num_local_clusters);
      const Matrix* upload = &locals[static_cast<size_t>(z)].samples;
      Matrix privatized;
      if (options.use_dp) {
        Rng dp_rng(device_seeds[static_cast<size_t>(z)] ^
                   0xD1FFE4E47'1A1ULL);
        FEDSC_ASSIGN_OR_RETURN(privatized,
                               PrivatizeSamples(*upload, options.dp, &dp_rng));
        upload = &privatized;
      }

      // Devices upload concurrently in a real federation, so each gets its
      // own simulated clock; the phase lasts as long as the slowest device.
      SimClock device_clock;
      UplinkOutcome outcome = channel.UplinkWithRetry(
          z, *upload, plan, options.retry, &device_clock);
      report.attempts = outcome.attempts;
      rounds_used = std::max<int64_t>(rounds_used, outcome.attempts);
      sim_uplink_ms = std::max(sim_uplink_ms, outcome.elapsed_ms);
      // A rejected Byzantine device is worth its own journal event: its
      // payload was adversarial-yet-well-formed, so only a *co-scheduled*
      // fault (or validation bound) can stop it.
      const auto journal_rejection = [&](const char* type,
                                         const std::string& reason) {
        if (!JournalEnabled()) return;
        JournalRecord(type, z, outcome.elapsed_ms,
                      {{"attempts", report.attempts}, {"reason", reason}});
        if (plan.ScheduleFor(z).payload == PayloadFault::kByzantine) {
          JournalRecord("byzantine_rejected", z, outcome.elapsed_ms,
                        {{"attempts", report.attempts}});
        }
      };
      if (!outcome.delivered) {
        // A wire-corrupt upload *arrived* — the bytes just failed
        // validation — so it is quarantined like any other unusable upload;
        // devices that never delivered are dropped.
        const bool corrupt =
            outcome.status.code() == StatusCode::kWireCorrupt;
        report.outcome = corrupt ? DeviceOutcome::kQuarantined
                                 : DeviceOutcome::kDropped;
        report.status = outcome.status;
        if (corrupt) {
          FEDSC_METRIC_COUNTER("fed.quarantine.devices").Increment();
        } else {
          FEDSC_METRIC_COUNTER("fed.faults.dropped_devices").Increment();
        }
        journal_rejection(corrupt ? "quarantined" : "dropped",
                          outcome.status.ToString());
        FEDSC_LOG(Warning) << "device " << z
                           << " failed to upload: "
                           << outcome.status.ToString();
        continue;
      }
      report.uploaded_samples = outcome.received.cols();

      auto validation = ValidateUpload(outcome.received, data.ambient_dim,
                                       options.validation);
      if (!validation.ok()) {
        // Structurally unusable (e.g. wrong ambient dimension): the whole
        // upload is quarantined.
        report.outcome = DeviceOutcome::kQuarantined;
        report.quarantined_samples = outcome.received.cols();
        report.status = validation.status();
        result.quarantined_samples += report.quarantined_samples;
        FEDSC_METRIC_COUNTER("fed.quarantine.devices").Increment();
        journal_rejection("quarantined", validation.status().ToString());
        FEDSC_LOG(Warning) << "device " << z << " upload quarantined: "
                           << validation.status().ToString();
        continue;
      }
      report.quarantined_samples =
          static_cast<int64_t>(validation->quarantined.size());
      result.quarantined_samples += report.quarantined_samples;
      if (validation->accepted.cols() == 0) {
        report.outcome = DeviceOutcome::kQuarantined;
        report.status = Status::InvalidArgument(
            "every sample of device " + std::to_string(z) +
            " failed validation: " + QuarantinedColumnsSummary(*validation));
        FEDSC_METRIC_COUNTER("fed.quarantine.devices").Increment();
        journal_rejection("quarantined", report.status.ToString());
        continue;
      }
      received[static_cast<size_t>(z)] = std::move(validation->accepted);
      kept_samples[static_cast<size_t>(z)] = std::move(validation->kept);
      total_samples += received[static_cast<size_t>(z)].cols();
      result.participating_devices += 1;
      FEDSC_JOURNAL_EVENT(
          "accepted", z, outcome.elapsed_ms,
          {{"attempts", report.attempts},
           {"uploaded_samples", report.uploaded_samples},
           {"accepted_samples", received[static_cast<size_t>(z)].cols()},
           {"quarantined_samples", report.quarantined_samples}});
    }
  }
  // Byzantine defense: screen the accepted uploads before pooling. Screened
  // devices degrade exactly like quarantined ones — they count against the
  // quorum and their points get the sentinel label.
  if (options.defense.enabled && total_samples > 0) {
    FEDSC_TRACE_SPAN("fedsc/defense/screen", {{"samples", total_samples}});
    Matrix pool(data.ambient_dim, total_samples);
    std::vector<int64_t> pool_device;
    pool_device.reserve(static_cast<size_t>(total_samples));
    int64_t col = 0;
    for (int64_t z = 0; z < num_devices; ++z) {
      const Matrix& m = received[static_cast<size_t>(z)];
      for (int64_t c = 0; c < m.cols(); ++c) {
        pool.SetCol(col++, m.ColData(c));
        pool_device.push_back(z);
      }
    }
    FEDSC_ASSIGN_OR_RETURN(DefensePlan defense,
                           DefensePlan::Create(options.defense));
    const ScreeningOutcome screening =
        defense.Screen(pool, pool_device, options.num_threads);
    for (const DeviceScreenVerdict& verdict : screening.verdicts) {
      if (!verdict.screened) continue;
      const int64_t z = verdict.device;
      DeviceReport& report = result.device_reports[static_cast<size_t>(z)];
      report.outcome = DeviceOutcome::kScreened;
      report.screen_statistic = verdict.statistic;
      report.status = Status::InvalidArgument(
          "device " + std::to_string(z) +
          " screened by the Byzantine defense: " + verdict.statistic);
      total_samples -= received[static_cast<size_t>(z)].cols();
      received[static_cast<size_t>(z)] = Matrix();
      kept_samples[static_cast<size_t>(z)].clear();
      result.participating_devices -= 1;
      result.screened_devices += 1;
      FEDSC_METRIC_COUNTER("fedsc.screened_devices").Increment();
      FEDSC_JOURNAL_EVENT("defense_screened", z, sim_uplink_ms,
                          {{"statistic", verdict.statistic},
                           {"support", verdict.support},
                           {"residual", verdict.residual}});
      FEDSC_LOG(Warning) << "device " << z
                         << " screened by the Byzantine defense: "
                         << verdict.statistic;
    }
  }
  for (const DeviceReport& report : result.device_reports) {
    if (report.outcome != DeviceOutcome::kOk) {
      result.failed_devices.push_back(report.device);
    }
  }
  FEDSC_METRIC_COUNTER("fedsc.participating_devices")
      .Add(result.participating_devices);

  // Participation quorum: proceed only when enough devices delivered a
  // usable upload; otherwise fail with a typed status the caller can
  // distinguish from a crash.
  const double participation =
      static_cast<double>(result.participating_devices) /
      static_cast<double>(num_devices);
  if (participation + 1e-12 < options.quorum) {
    FEDSC_JOURNAL_EVENT("quorum_missed", -1, sim_uplink_ms,
                        {{"participating", result.participating_devices},
                         {"devices", num_devices},
                         {"quorum", options.quorum}});
    std::string detail;
    for (int64_t z : result.failed_devices) {
      const DeviceReport& report =
          result.device_reports[static_cast<size_t>(z)];
      if (!detail.empty()) detail += "; ";
      detail += "device " + std::to_string(z) + " " +
                DeviceOutcomeName(report.outcome);
    }
    return Status::QuorumNotMet(
        std::to_string(result.participating_devices) + "/" +
        std::to_string(num_devices) + " devices reported, quorum " +
        std::to_string(options.quorum) + " (" + detail + ")");
  }

  FEDSC_JOURNAL_EVENT("quorum_reached", -1, sim_uplink_ms,
                      {{"participating", result.participating_devices},
                       {"devices", num_devices},
                       {"quorum", options.quorum}});
  result.total_samples = total_samples;
  FEDSC_METRIC_COUNTER("fedsc.total_samples").Add(total_samples);
  if (total_samples < num_clusters) {
    return Status::FailedPrecondition(
        "server received fewer samples than clusters (" +
        std::to_string(total_samples) + " < " +
        std::to_string(num_clusters) + ")");
  }

  // Pool the accepted samples.
  result.samples = Matrix(data.ambient_dim, total_samples);
  result.sample_device.reserve(static_cast<size_t>(total_samples));
  std::vector<int64_t> device_sample_offset(
      static_cast<size_t>(num_devices), 0);
  int64_t next = 0;
  for (int64_t z = 0; z < num_devices; ++z) {
    device_sample_offset[static_cast<size_t>(z)] = next;
    const Matrix& m = received[static_cast<size_t>(z)];
    for (int64_t c = 0; c < m.cols(); ++c) {
      result.samples.SetCol(next++, m.ColData(c));
      result.sample_device.push_back(z);
    }
  }

  // Phase 2: central clustering of the pooled samples.
  Stopwatch central_timer;
  {
    FEDSC_TRACE_SPAN("fedsc/phase2/central", {{"samples", total_samples}});
    ScPipelineOptions central;
    central.method = options.central_method;
    central.central = options.central;
    central.sketch = options.central_sketch;
    // The sketch stream hangs off the run seed alone (never the device RNG),
    // so the dictionary is a pure function of (seed, pooled shape).
    central.sketch.seed = MixSeeds(options.seed, 0x5ce7c4ULL);
    const CentralPath central_path =
        ResolveCentralPath(central, total_samples, num_clusters);
    FEDSC_JOURNAL_EVENT(
        "central_start", -1, sim_uplink_ms,
        {{"samples", total_samples},
         {"method",
          options.central_method == ScMethod::kSsc ? "ssc" : "tsc"},
         {"central_path", CentralPathName(central_path)}});
    FEDSC_METRIC_GAUGE("fedsc.central_sketched", MetricKind::kDeterministic)
        .Set(central_path == CentralPath::kSketched ? 1.0 : 0.0);
    central.ssc = options.central_ssc;
    central.tsc = options.central_tsc;
    if (central.tsc.q <= 0) {
      // The paper's rule: q = max(3, ceil(Z / L)).
      central.tsc.q = std::max<int64_t>(
          3, (num_devices + num_clusters - 1) / num_clusters);
    }
    central.tsc.q = std::min<int64_t>(central.tsc.q, total_samples - 1);
    central.spectral = options.central_spectral;
    central.spectral.kmeans.seed = rng.Next();
    if (options.defense.enabled) {
      // Robust k-engine: trimmed assignment, robust centers, and a
      // per-device influence cap on the embedding rows (one per pooled
      // sample, in pooling order).
      KMeansRobustOptions& robust = central.spectral.kmeans.robust;
      robust.enabled = true;
      robust.trim_fraction = options.defense.trim_fraction;
      robust.center = options.defense.robust_center;
      robust.max_group_fraction = options.defense.max_device_fraction;
      robust.point_group = result.sample_device;
    }
    // Channel noise can leave samples slightly off the unit sphere;
    // renormalize like the paper's analysis assumes.
    central.normalize_columns = true;
    // Phase 2 runs on the coordinator after every device reported, so the
    // same worker budget that fanned Phase 1 out across devices now threads
    // the central affinity kernels (bit-identical for any thread count).
    central.num_threads = options.num_threads;
    FEDSC_ASSIGN_OR_RETURN(
        ScResult central_result,
        RunSubspaceClustering(result.samples, num_clusters, central));
    result.sample_labels = std::move(central_result.labels);
    result.central_affinity = std::move(central_result.affinity);
  }
  result.central_seconds = central_timer.ElapsedSeconds();
  FEDSC_JOURNAL_EVENT("central_finish", -1, sim_uplink_ms,
                      {{"samples", total_samples}});

  // Phase 3: downlink assignments; devices relabel their points. Points on
  // failed devices get the sentinel label — partial participation degrades
  // coverage, never correctness of the surviving labels.
  FEDSC_TRACE_SPAN("fedsc/phase3/relabel");
  FEDSC_JOURNAL_EVENT("broadcast", -1, sim_uplink_ms,
                      {{"devices", result.participating_devices}});
  for (int64_t z = 0; z < num_devices; ++z) {
    const LocalClusteringOutput& local = locals[static_cast<size_t>(z)];
    auto& labels = result.device_labels[static_cast<size_t>(z)];
    auto& point_sample = result.point_sample[static_cast<size_t>(z)];
    const size_t num_points =
        static_cast<size_t>(data.points[static_cast<size_t>(z)].cols());
    if (result.device_reports[static_cast<size_t>(z)].outcome !=
        DeviceOutcome::kOk) {
      labels.assign(num_points, FedScResult::kFailedDeviceLabel);
      point_sample.assign(num_points, -1);
      continue;
    }
    const std::vector<int64_t>& kept = kept_samples[static_cast<size_t>(z)];
    const int64_t offset = device_sample_offset[static_cast<size_t>(z)];
    channel.Downlink(static_cast<int64_t>(kept.size()), num_clusters);
    FEDSC_JOURNAL_EVENT("downlink", z, sim_uplink_ms,
                        {{"values", static_cast<int64_t>(kept.size())}});

    // Map each local cluster to the label of its first *accepted* sample; a
    // cluster whose samples were all quarantined gets the sentinel.
    std::vector<int64_t> cluster_label(
        static_cast<size_t>(std::max<int64_t>(local.num_local_clusters, 1)),
        FedScResult::kFailedDeviceLabel);
    std::vector<int64_t> cluster_sample(cluster_label.size(), -1);
    for (size_t k = 0; k < kept.size(); ++k) {
      const int64_t original = kept[k];
      // Faulted payloads may carry columns past the honest upload
      // (duplication); those have no local cluster to label.
      if (original < 0 ||
          original >= static_cast<int64_t>(local.sample_cluster.size())) {
        continue;
      }
      const auto t =
          static_cast<size_t>(local.sample_cluster[static_cast<size_t>(
              original)]);
      if (cluster_sample[t] == -1) {
        cluster_sample[t] = offset + static_cast<int64_t>(k);
        cluster_label[t] =
            result.sample_labels[static_cast<size_t>(offset) + k];
      }
    }
    labels.resize(local.partition.size());
    point_sample.resize(local.partition.size());
    for (size_t i = 0; i < local.partition.size(); ++i) {
      const auto t = static_cast<size_t>(local.partition[i]);
      labels[i] = cluster_label[t];
      point_sample[i] = cluster_sample[t];
    }
  }
  channel.FinishRounds(rounds_used);

  result.global_labels = data.ToGlobalOrder(result.device_labels);
  result.comm = channel.stats();
  result.comm.sim_uplink_ms = sim_uplink_ms;
  result.seconds = result.local_seconds + result.central_seconds;
  FEDSC_JOURNAL_EVENT("run_finish", -1, sim_uplink_ms,
                      {{"participating", result.participating_devices},
                       {"total_samples", result.total_samples},
                       {"rounds", rounds_used},
                       {"uplink_wire_bytes", result.comm.uplink_wire_bytes}});
  if (options.collect_report) {
    result.report =
        std::make_shared<const RunReport>(BuildRunReport(options, result));
  }
  return result;
}

Result<std::vector<int64_t>> AssignNewPoints(const FedScResult& result,
                                             int64_t num_clusters,
                                             const Matrix& new_points,
                                             double rank_rel_tol) {
  if (num_clusters < 1) {
    return Status::InvalidArgument("need num_clusters >= 1");
  }
  if (new_points.rows() != result.samples.rows()) {
    return Status::InvalidArgument("new points have ambient dimension " +
                                   std::to_string(new_points.rows()) +
                                   ", expected " +
                                   std::to_string(result.samples.rows()));
  }
  const int64_t n = result.samples.rows();

  // Basis per global cluster from its labeled samples, all through one
  // batched factorization call. Empty and degenerate clusters leave their
  // slot as an empty matrix: they never win the residual contest below.
  std::vector<std::vector<int64_t>> groups(static_cast<size_t>(num_clusters));
  for (size_t s = 0; s < result.sample_labels.size(); ++s) {
    const int64_t c = result.sample_labels[s];
    if (c >= 0 && c < num_clusters) {
      groups[static_cast<size_t>(c)].push_back(static_cast<int64_t>(s));
    }
  }
  BatchedSubspaceOptions batch;
  batch.rank = 0;
  batch.rel_tol = rank_rel_tol;
  std::vector<Result<Matrix>> fitted =
      BatchedPrincipalSubspace(result.samples, groups, batch);
  std::vector<Matrix> bases(static_cast<size_t>(num_clusters));
  for (int64_t c = 0; c < num_clusters; ++c) {
    if (fitted[static_cast<size_t>(c)].ok()) {
      bases[static_cast<size_t>(c)] =
          std::move(fitted[static_cast<size_t>(c)]).value();
    }
  }

  std::vector<int64_t> labels(static_cast<size_t>(new_points.cols()), 0);
  Vector normalized(static_cast<size_t>(n), 0.0);
  Vector reconstructed(static_cast<size_t>(n), 0.0);
  for (int64_t j = 0; j < new_points.cols(); ++j) {
    std::copy(new_points.ColData(j), new_points.ColData(j) + n,
              normalized.begin());
    const double norm = Norm2(normalized.data(), n);
    if (norm > 1e-300) Scal(1.0 / norm, normalized.data(), n);
    double best = std::numeric_limits<double>::infinity();
    int64_t arg = 0;
    for (int64_t c = 0; c < num_clusters; ++c) {
      const Matrix& basis = bases[static_cast<size_t>(c)];
      if (basis.cols() == 0) continue;
      Vector coords(static_cast<size_t>(basis.cols()), 0.0);
      Gemv(Trans::kTrans, 1.0, basis, normalized.data(), 0.0, coords.data());
      std::copy(normalized.begin(), normalized.end(),
                reconstructed.begin());
      Gemv(Trans::kNo, -1.0, basis, coords.data(), 1.0,
           reconstructed.data());
      const double residual = Norm2(reconstructed.data(), n);
      if (residual < best) {
        best = residual;
        arg = c;
      }
    }
    labels[static_cast<size_t>(j)] = arg;
  }
  return labels;
}

Result<ConnectivityResult> InducedConnectivity(const FederatedDataset& data,
                                               const FedScResult& result) {
  // Truth labels and sample ids in dataset order.
  const std::vector<int64_t> truth = data.GlobalTruth();
  const std::vector<int64_t> sample_of_point =
      data.ToGlobalOrder(result.point_sample);
  const Matrix central = result.central_affinity.ToDense();

  // Build the induced affinity class by class (dense per class; classes are
  // small relative to N).
  int64_t num_classes = 0;
  for (int64_t t : truth) num_classes = std::max(num_classes, t + 1);
  std::vector<std::vector<int64_t>> members(
      static_cast<size_t>(num_classes));
  for (size_t i = 0; i < truth.size(); ++i) {
    members[static_cast<size_t>(truth[i])].push_back(
        static_cast<int64_t>(i));
  }

  ConnectivityResult conn;
  conn.per_cluster.assign(static_cast<size_t>(num_classes), 0.0);
  for (int64_t c = 0; c < num_classes; ++c) {
    const auto& idx = members[static_cast<size_t>(c)];
    if (idx.size() < 2) continue;
    Matrix w(static_cast<int64_t>(idx.size()),
             static_cast<int64_t>(idx.size()));
    for (size_t a = 0; a < idx.size(); ++a) {
      const int64_t sa = sample_of_point[static_cast<size_t>(idx[a])];
      for (size_t b = a + 1; b < idx.size(); ++b) {
        const int64_t sb = sample_of_point[static_cast<size_t>(idx[b])];
        double v;
        if (sa < 0 || sb < 0) {
          v = 0.0;
        } else if (sa == sb) {
          v = 1.0;  // same local cluster: fully connected
        } else {
          v = central(sa, sb);
        }
        w(static_cast<int64_t>(a), static_cast<int64_t>(b)) = v;
        w(static_cast<int64_t>(b), static_cast<int64_t>(a)) = v;
      }
    }
    FEDSC_ASSIGN_OR_RETURN(ConnectivityResult single,
                           GraphConnectivity(w, std::vector<int64_t>(
                                                    idx.size(), 0)));
    conn.per_cluster[static_cast<size_t>(c)] = single.per_cluster[0];
  }

  double sum = 0.0;
  double min_value =
      conn.per_cluster.empty() ? 0.0 : conn.per_cluster[0];
  for (double v : conn.per_cluster) {
    sum += v;
    min_value = std::min(min_value, v);
  }
  conn.min_lambda2 = min_value;
  conn.mean_lambda2 = conn.per_cluster.empty()
                          ? 0.0
                          : sum / static_cast<double>(conn.per_cluster.size());
  return conn;
}

}  // namespace fedsc
