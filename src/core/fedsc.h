// Fed-SC: one-shot federated subspace clustering (Algorithms 1 and 2 of the
// paper).
//
// Phase 1 (every client, Algorithm 2): solve the SSC Lasso on the local
// data, build W^(z) = |C^(z)| + |C^(z)|^T, estimate the number of local
// clusters r^(z) with the eigengap heuristic (Eq. 3) or a fixed upper bound,
// segment with normalized spectral clustering, estimate an orthonormal basis
// of each local cluster's subspace by truncated SVD, and upload one sample
// per cluster drawn uniformly from the unit sphere of that subspace (Eq. 5).
//
// Phase 2 (server): pool the samples and cluster them into L groups with SSC
// or TSC.
//
// Phase 3 (every client): relabel each local point by its local cluster's
// global assignment.

#ifndef FEDSC_CORE_FEDSC_H_
#define FEDSC_CORE_FEDSC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "fed/defense.h"
#include "fed/faults.h"
#include "fed/network.h"
#include "fed/privacy.h"
#include "fed/partition.h"
#include "linalg/sparse.h"
#include "metrics/connectivity.h"
#include "sc/pipeline.h"

namespace fedsc {

struct FedScOptions {
  // Server-side clustering algorithm: kSsc (Fed-SC (SSC)) or kTsc
  // (Fed-SC (TSC)); every other method is rejected.
  ScMethod central_method = ScMethod::kSsc;

  // Central-clustering engine dispatch (sc/pipeline.h): kExact pins the
  // pre-sketch Phase-2 bits, kSketched forces the sketched dictionary +
  // landmark spectral path, kAuto switches at kSketchedCutoffN pooled
  // samples. The resolved choice is journaled on the central_start event.
  CentralPath central = CentralPath::kAuto;
  // Sketch construction for the sketched path. central_sketch.seed is
  // ignored: the sketch stream is derived from `seed` so one knob fixes the
  // whole round.
  SketchOptions central_sketch;

  SscAdmmOptions local_ssc;
  SscAdmmOptions central_ssc;
  // central_tsc.q <= 0 selects the paper's rule q = max(3, ceil(Z / L)).
  TscOptions central_tsc{.q = 0};

  SpectralOptions local_spectral;
  SpectralOptions central_spectral;

  // r^(z) estimation. With use_eigengap, Eq. 3 (optionally capped by
  // max_local_clusters); without it, r^(z) = min(max_local_clusters, N^(z))
  // — the fixed-upper-bound mode the paper uses on real-world data.
  bool use_eigengap = true;
  int64_t max_local_clusters = 0;

  // Dimension d_t of each estimated subspace basis. 0 = numerical rank of
  // the local cluster matrix (synthetic experiments); the paper sets 1 on
  // real-world data.
  int64_t sample_dim = 0;
  // Rank cutoff for the auto mode: directions with singular value below
  // rank_rel_tol * sigma_1 are treated as noise. Deliberately aggressive:
  // under-ranking still samples inside the true subspace (harmless), while
  // over-ranking mixes noise directions into the uploaded samples (fatal on
  // noisy data).
  double rank_rel_tol = 0.1;

  // Samples uploaded per local cluster. The paper uploads exactly one; the
  // ablation benches sweep this.
  int64_t samples_per_cluster = 1;

  // Robustness extension (the paper's ref [17] analyzes SC with outliers):
  // after fitting each local cluster's basis, the fraction of member points
  // with the largest residual to the fitted subspace is dropped and the
  // basis refit, so stray points cannot tilt the uploaded sample. 0 = off.
  double trim_fraction = 0.0;

  ChannelOptions channel;

  // Fault tolerance (fed/faults.h, fed/network.h). The defaults describe
  // the paper's idealized network: no injected faults, one attempt per
  // device, permissive server-side validation, and a quorum of 1.0 — every
  // device must report, so any failure surfaces as a typed kQuorumNotMet
  // Status rather than silently degrading.
  FaultPlanOptions faults;
  // Per-upload deadline, bounded retry budget, and jittered exponential
  // backoff, all on a simulated clock.
  RetryOptions retry;
  // Server-side acceptance bounds; corrupt sample columns are quarantined
  // (reported in FedScResult) instead of poisoning the central solve.
  UploadValidationOptions validation;
  // Minimum fraction of devices that must deliver a valid upload for the
  // round to proceed. Points on failed devices receive
  // FedScResult::kFailedDeviceLabel. Must lie in [0, 1].
  double quorum = 1.0;

  // Byzantine-robust central aggregation (fed/defense.h): statistical
  // screening of accepted uploads before pooling plus the robust central
  // k-engine. Screened devices count against the quorum exactly like
  // quarantined ones. Off by default — the round then reproduces
  // pre-defense results bit-for-bit.
  DefenseOptions defense;

  // Remark 2 extension: apply the Gaussian mechanism to every uploaded
  // sample (clip + noise; see fed/privacy.h) so each upload is
  // (epsilon, delta)-differentially private. One-shot DP on full vectors is
  // expensive in utility — the privacy example quantifies the tradeoff.
  bool use_dp = false;
  DpOptions dp;

  // Builds a provenance-stamped RunReport (core/report.h) — manifest,
  // journal, span profile, metrics — and attaches it to FedScResult::report.
  // Off by default: report collection snapshots every observability surface,
  // which is pure overhead for callers that only want labels.
  bool collect_report = false;

  // Workers used for Phase 1, where devices are independent — the source of
  // the paper's parallel running time O(N^2 + Z^2) (Section IV-E) — and for
  // the Phase-2 central clustering kernels (GEMM, per-column solves), via
  // ScPipelineOptions::num_threads. Results are bit-identical for any
  // thread count (each device's seed is fixed before dispatch, and every
  // threaded kernel partitions its output by fixed index ranges); reported
  // local_seconds stays the *sum* over devices, matching the paper's
  // T = sum_z T^(z) + T_c.
  int num_threads = 1;

  uint64_t seed = 0x5eed'F5CULL;
};

// The per-device output of Algorithm 2 (exposed separately for tests and
// for building custom federations).
struct LocalClusteringOutput {
  std::vector<int64_t> partition;       // T^(z): local cluster per point
  int64_t num_local_clusters = 0;       // r^(z)
  Matrix samples;                       // n x (r^(z) * samples_per_cluster)
  std::vector<int64_t> sample_cluster;  // local cluster of each sample column
};

Result<LocalClusteringOutput> LocalClusterAndSample(const Matrix& points,
                                                    const FedScOptions& options,
                                                    uint64_t seed);

// How one device fared in the round.
enum class DeviceOutcome {
  kOk = 0,          // delivered; at least one sample accepted
  kDropped,         // no upload arrived (dropout / straggler / retry budget)
  kQuarantined,     // upload arrived but no sample survived validation
  kLocalError,      // the device's local clustering failed
  kScreened,        // delivered valid samples, but the defense screened them
};

const char* DeviceOutcomeName(DeviceOutcome outcome);

struct DeviceReport {
  int64_t device = 0;
  DeviceOutcome outcome = DeviceOutcome::kOk;
  int attempts = 0;                // uplink attempts consumed
  int64_t uploaded_samples = 0;    // columns delivered to the server
  int64_t quarantined_samples = 0;  // delivered columns rejected
  Status status;                   // non-OK explains the failure
  // Triggering defense statistic for kScreened devices ("coherence support
  // 1/23 below cut 5.5"); empty otherwise.
  std::string screen_statistic;
};

struct RunReport;  // core/report.h

struct FedScResult {
  // Label given to every point on a failed (dropped / quarantined /
  // errored) device, so partial participation can never masquerade as a
  // confident assignment.
  static constexpr int64_t kFailedDeviceLabel = -1;

  std::vector<std::vector<int64_t>> device_labels;  // partition layout
  std::vector<int64_t> global_labels;               // dataset order
  std::vector<int64_t> local_cluster_counts;        // r^(z) per device
  int64_t total_samples = 0;  // accepted samples pooled by the server

  // Per-device fate of the round (one entry per device, in device order),
  // plus the ids of devices that did not participate.
  std::vector<DeviceReport> device_reports;
  std::vector<int64_t> failed_devices;
  int64_t participating_devices = 0;
  int64_t quarantined_samples = 0;
  int64_t screened_devices = 0;

  Matrix samples;                        // pooled samples (post-channel)
  std::vector<int64_t> sample_device;    // device of each pooled sample
  std::vector<int64_t> sample_labels;    // server assignment per sample
  // Global sample column representing each local point's cluster (used to
  // induce the global affinity graph).
  std::vector<std::vector<int64_t>> point_sample;
  SparseMatrix central_affinity;         // W over the pooled samples

  CommStats comm;
  double local_seconds = 0.0;    // sum_z T^(z)
  double central_seconds = 0.0;  // T_c
  double seconds = 0.0;          // T = sum_z T^(z) + T_c

  // Set when FedScOptions::collect_report: the run's full ledger (manifest,
  // journal, profile, metrics — see core/report.h). shared_ptr keeps this
  // header free of the report type and the result cheaply copyable.
  std::shared_ptr<const RunReport> report;
};

Result<FedScResult> RunFedSc(const FederatedDataset& data,
                             int64_t num_clusters,
                             const FedScOptions& options = {});

// Out-of-sample extension: assigns new points (columns) to the clusters of
// a completed run. The samples the server labeled with each cluster span an
// estimated subspace; a new point joins the cluster whose subspace
// reconstructs it best (smallest residual after projection). No further
// communication round is needed — this is how a device labels points that
// arrive after the one-shot protocol ran.
Result<std::vector<int64_t>> AssignNewPoints(const FedScResult& result,
                                             int64_t num_clusters,
                                             const Matrix& new_points,
                                             double rank_rel_tol = 0.1);

// Connectivity of the induced global affinity graph: two points are as
// affine as the samples representing their local clusters (weight 1 within
// a local cluster). This is the graph Section IV-E argues is denser than
// the centralized SSC graph; Table III's CONN column for Fed-SC reports it.
Result<ConnectivityResult> InducedConnectivity(const FederatedDataset& data,
                                               const FedScResult& result);

}  // namespace fedsc

#endif  // FEDSC_CORE_FEDSC_H_
