#include "core/report.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace fedsc {

namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  std::string s = buffer;
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "0";
  }
  return s;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out += buffer;
    } else {
      out += c;
    }
  }
  return out;
}

std::string CommStatsJson(const CommStats& comm) {
  std::string out = "{";
  out += "\"uplink_values\":" + std::to_string(comm.uplink_values);
  out += ",\"uplink_bits\":" + std::to_string(comm.uplink_bits);
  out += ",\"uplink_wire_bytes\":" + std::to_string(comm.uplink_wire_bytes);
  out += ",\"downlink_values\":" + std::to_string(comm.downlink_values);
  out += ",\"downlink_bits\":" + FormatDouble(comm.downlink_bits);
  out += ",\"rounds\":" + std::to_string(comm.rounds);
  out += ",\"retries\":" + std::to_string(comm.retries);
  out += ",\"timeouts\":" + std::to_string(comm.timeouts);
  out += ",\"sim_uplink_ms\":" + std::to_string(comm.sim_uplink_ms);
  out += "}";
  return out;
}

std::string DeviceReportJson(const DeviceReport& report) {
  std::string out = "{";
  out += "\"device\":" + std::to_string(report.device);
  out += ",\"outcome\":\"" +
         JsonEscape(DeviceOutcomeName(report.outcome)) + "\"";
  out += ",\"attempts\":" + std::to_string(report.attempts);
  out += ",\"uploaded_samples\":" + std::to_string(report.uploaded_samples);
  out += ",\"quarantined_samples\":" +
         std::to_string(report.quarantined_samples);
  out += ",\"status\":\"" + JsonEscape(report.status.ToString()) + "\"";
  out += ",\"screen_statistic\":\"" +
         JsonEscape(report.screen_statistic) + "\"";
  out += "}";
  return out;
}

}  // namespace

std::string FedScOptionsFingerprint(const FedScOptions& options) {
  // Every option field that shapes the run's deterministic outputs, in a
  // fixed order. num_threads is deliberately excluded (see the header).
  std::string text;
  const auto add = [&text](const std::string& value) {
    text += value;
    text += "|";
  };
  add(options.central_method == ScMethod::kSsc ? "ssc" : "tsc");
  add(std::to_string(options.use_eigengap));
  add(std::to_string(options.max_local_clusters));
  add(std::to_string(options.sample_dim));
  add(FormatDouble(options.rank_rel_tol));
  add(std::to_string(options.samples_per_cluster));
  add(FormatDouble(options.trim_fraction));
  add(FormatDouble(options.channel.noise_delta));
  add(std::to_string(options.channel.bits_per_value));
  add(std::to_string(options.channel.quantize));
  add(FormatDouble(options.channel.quantization_range));
  add(std::to_string(options.channel.seed));
  add(CodecModeName(EffectiveCodecOptions(options.channel).mode));
  add(FormatDouble(options.faults.dropout_rate));
  add(FormatDouble(options.faults.straggler_rate));
  add(FormatDouble(options.faults.straggler_mean_delay_ms));
  add(FormatDouble(options.faults.transient_rate));
  add(std::to_string(options.faults.max_transient_failures));
  add(FormatDouble(options.faults.corrupt_rate));
  add(FormatDouble(options.faults.byzantine_rate));
  add(ByzantineModeName(options.faults.byzantine_mode));
  add(std::to_string(options.faults.collude_dim));
  add(FormatDouble(options.faults.mimic_angle_deg));
  add(FormatDouble(options.faults.wire_corrupt_rate));
  add(std::to_string(options.faults.seed));
  add(std::to_string(options.retry.max_attempts));
  add(std::to_string(options.retry.timeout_ms));
  add(std::to_string(options.retry.base_backoff_ms));
  add(FormatDouble(options.retry.backoff_multiplier));
  add(FormatDouble(options.retry.jitter_fraction));
  add(std::to_string(options.validation.enabled));
  add(FormatDouble(options.validation.min_norm));
  add(FormatDouble(options.validation.max_norm));
  add(FormatDouble(options.quorum));
  add(std::to_string(options.defense.enabled));
  add(FormatDouble(options.defense.coherence_mad_multiplier));
  add(FormatDouble(options.defense.support_mad_multiplier));
  add(FormatDouble(options.defense.min_support_mad));
  add(FormatDouble(options.defense.max_screen_support_fraction));
  add(std::to_string(options.defense.peer_rank));
  add(FormatDouble(options.defense.residual_mad_multiplier));
  add(FormatDouble(options.defense.min_residual_mad));
  add(FormatDouble(options.defense.min_screen_residual));
  add(std::to_string(options.defense.min_pool_devices));
  add(FormatDouble(options.defense.trim_fraction));
  add(std::to_string(static_cast<int>(options.defense.robust_center)));
  add(FormatDouble(options.defense.max_device_fraction));
  add(std::to_string(options.use_dp));
  add(std::to_string(options.seed));
  return HexDigest64(Fnv1a64(text));
}

RunReport BuildRunReport(uint64_t seed, uint64_t fault_seed,
                         int num_threads) {
  RunReport report;
  report.manifest = CollectRunManifest();
  report.manifest.seed = seed;
  report.manifest.fault_seed = fault_seed;
  report.manifest.num_threads = num_threads;
  report.journal = SnapshotJournal();
  report.profile = BuildProfileReport();
  report.metrics = SnapshotMetrics();
  return report;
}

RunReport BuildRunReport(const FedScOptions& options,
                         const FedScResult& result) {
  RunReport report =
      BuildRunReport(options.seed, options.faults.seed, options.num_threads);
  report.manifest.options_fingerprint = FedScOptionsFingerprint(options);
  report.has_run = true;
  report.devices = static_cast<int64_t>(result.device_reports.size());
  report.participating_devices = result.participating_devices;
  report.total_samples = result.total_samples;
  report.quarantined_samples = result.quarantined_samples;
  report.screened_devices = result.screened_devices;
  report.device_reports = result.device_reports;
  report.comm = result.comm;
  return report;
}

std::string RunReportJson(const RunReport& report) {
  std::string out = "{\"schema_version\":" +
                    std::to_string(kReportSchemaVersion);
  out += ",\"journal_schema_version\":" +
         std::to_string(kJournalSchemaVersion);
  out += ",\"manifest\":" + RunManifestJson(report.manifest);

  if (report.has_run) {
    out += ",\"run\":{";
    out += "\"devices\":" + std::to_string(report.devices);
    out += ",\"participating_devices\":" +
           std::to_string(report.participating_devices);
    out += ",\"total_samples\":" + std::to_string(report.total_samples);
    out += ",\"quarantined_samples\":" +
           std::to_string(report.quarantined_samples);
    out += ",\"screened_devices\":" +
           std::to_string(report.screened_devices);
    out += ",\"comm\":" + CommStatsJson(report.comm);
    out += ",\"device_reports\":[";
    for (size_t i = 0; i < report.device_reports.size(); ++i) {
      if (i > 0) out += ",";
      out += DeviceReportJson(report.device_reports[i]);
    }
    out += "]}";
  } else {
    out += ",\"run\":null";
  }

  out += ",\"journal\":[";
  for (size_t i = 0; i < report.journal.size(); ++i) {
    if (i > 0) out += ",";
    out += JournalEventJson(report.journal[i], /*include_wall=*/true);
  }
  out += "]";

  out += ",\"profile\":" + ProfileReportJson(report.profile);

  // The flat metrics document, embedded verbatim (it is already JSON).
  std::ostringstream metrics_os;
  {
    // WriteMetricsJson reads the global registry; render from the snapshot
    // we captured instead so the report is internally consistent even if
    // instruments moved since. The registry writer is snapshot-driven in
    // layout, so re-serialize the same shapes here.
    metrics_os << "{";
    const auto write_int_map =
        [&metrics_os](const char* key,
                      const std::map<std::string, int64_t>& map, bool comma) {
          metrics_os << "\"" << key << "\":{";
          bool first = true;
          for (const auto& [name, value] : map) {
            if (!first) metrics_os << ",";
            metrics_os << "\"" << JsonEscape(name) << "\":" << value;
            first = false;
          }
          metrics_os << "}" << (comma ? "," : "");
        };
    const auto write_double_map =
        [&metrics_os](const char* key,
                      const std::map<std::string, double>& map, bool comma) {
          metrics_os << "\"" << key << "\":{";
          bool first = true;
          for (const auto& [name, value] : map) {
            if (!first) metrics_os << ",";
            metrics_os << "\"" << JsonEscape(name)
                       << "\":" << FormatDouble(value);
            first = false;
          }
          metrics_os << "}" << (comma ? "," : "");
        };
    write_int_map("counters", report.metrics.counters, true);
    write_int_map("execution_counters", report.metrics.execution_counters,
                  true);
    write_double_map("gauges", report.metrics.gauges, true);
    write_double_map("execution_gauges", report.metrics.execution_gauges,
                     true);
    metrics_os << "\"histograms\":{";
    bool first = true;
    for (const auto& [name, h] : report.metrics.histograms) {
      if (!first) metrics_os << ",";
      first = false;
      metrics_os << "\"" << JsonEscape(name) << "\":{\"count\":" << h.count
                 << ",\"sum\":" << h.sum << ",\"min\":" << h.min
                 << ",\"max\":" << h.max
                 << ",\"p50\":" << FormatDouble(h.Percentile(0.50))
                 << ",\"p90\":" << FormatDouble(h.Percentile(0.90))
                 << ",\"p99\":" << FormatDouble(h.Percentile(0.99))
                 << ",\"log2_buckets\":{";
      bool first_bucket = true;
      for (const auto& [bits, count] : h.buckets) {
        if (!first_bucket) metrics_os << ",";
        metrics_os << "\"" << bits << "\":" << count;
        first_bucket = false;
      }
      metrics_os << "}}";
    }
    metrics_os << "}}";
  }
  out += ",\"metrics\":" + metrics_os.str();

  out += "}";
  return out;
}

void WriteRunReportJson(const RunReport& report, std::ostream& os) {
  os << RunReportJson(report) << "\n";
}

Status WriteRunReportJsonFile(const RunReport& report,
                              const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound("cannot open report output file " + path);
  }
  WriteRunReportJson(report, out);
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

}  // namespace fedsc
