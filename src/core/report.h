// The RunReport: one provenance-stamped JSON document binding every
// observability surface of a run together — the RunManifest
// (common/manifest.h), the run summary (per-device fates + communication
// ledger from FedScResult), the structured event journal
// (common/journal.h), the span/roofline/utilization profile
// (common/profile.h), and the flat metrics snapshot (common/metrics.h).
//
// Consumers: `fedsc_cli --report-out`, every bench via
// bench::Observability's --report-out flag, and FedScResult::report when
// FedScOptions::collect_report is set. scripts/validate_report.py pins the
// schema in CI; scripts/render_report.py renders it for humans.
//
// Determinism: the manifest host fields, the profile section, wall
// timestamps in the journal, and kExecution metrics vary run to run;
// everything else is bit-identical across num_threads. The report schema
// keeps the two classes in separate subtrees so diffing two reports for
// determinism means dropping a fixed set of keys, not guessing.

#ifndef FEDSC_CORE_REPORT_H_
#define FEDSC_CORE_REPORT_H_

#include <iosfwd>
#include <string>

#include "common/journal.h"
#include "common/manifest.h"
#include "common/metrics.h"
#include "common/profile.h"
#include "common/status.h"
#include "core/fedsc.h"

namespace fedsc {

// Bump when the report JSON layout changes incompatibly;
// scripts/validate_report.py and the golden layout fixture pin it.
inline constexpr int kReportSchemaVersion = 3;

struct RunReport {
  RunManifest manifest;

  // Run summary; meaningful only when has_run (bench reports that never ran
  // RunFedSc carry manifest + journal + profile + metrics with a null run).
  bool has_run = false;
  int64_t devices = 0;
  int64_t participating_devices = 0;
  int64_t total_samples = 0;
  int64_t quarantined_samples = 0;
  int64_t screened_devices = 0;
  std::vector<DeviceReport> device_reports;
  CommStats comm;

  std::vector<JournalEvent> journal;
  ProfileReport profile;
  MetricsSnapshot metrics;
};

// Fingerprint of the options that shape a run's deterministic outputs.
// Excludes num_threads on purpose: the same config at a different thread
// count must produce the same fingerprint (that *is* the determinism
// contract being asserted).
std::string FedScOptionsFingerprint(const FedScOptions& options);

// Snapshot journal + profile + metrics + manifest, without a run attached
// (has_run = false). `seed` seeds the manifest's run facts.
RunReport BuildRunReport(uint64_t seed, uint64_t fault_seed, int num_threads);

// Full report for a completed RunFedSc.
RunReport BuildRunReport(const FedScOptions& options,
                         const FedScResult& result);

// Single JSON document (trailing newline included by the stream writer).
std::string RunReportJson(const RunReport& report);
void WriteRunReportJson(const RunReport& report, std::ostream& os);
Status WriteRunReportJsonFile(const RunReport& report,
                              const std::string& path);

}  // namespace fedsc

#endif  // FEDSC_CORE_REPORT_H_
