#include "core/server.h"

#include <algorithm>

#include "common/journal.h"
#include "common/rng.h"

namespace fedsc {

FedScClient::FedScClient(Matrix points, FedScOptions options, uint64_t seed)
    : points_(std::move(points)), options_(std::move(options)), seed_(seed) {}

Result<Matrix> FedScClient::ProduceUpload() {
  if (!ran_) {
    FEDSC_ASSIGN_OR_RETURN(local_,
                           LocalClusterAndSample(points_, options_, seed_));
    ran_ = true;
  }
  return local_.samples;
}

Result<std::vector<uint8_t>> FedScClient::ProduceEncodedUpload(
    const CodecOptions& codec) {
  FEDSC_ASSIGN_OR_RETURN(Matrix samples, ProduceUpload());
  return EncodeUpload(samples, codec);
}

Result<std::vector<int64_t>> FedScClient::ApplyAssignments(
    const std::vector<int64_t>& sample_assignments) const {
  if (!ran_) {
    return Status::FailedPrecondition("ProduceUpload() has not run");
  }
  if (sample_assignments.size() != local_.sample_cluster.size()) {
    return Status::InvalidArgument(
        "expected " + std::to_string(local_.sample_cluster.size()) +
        " assignments, got " + std::to_string(sample_assignments.size()));
  }
  for (int64_t assignment : sample_assignments) {
    if (assignment < 0) {
      return Status::InvalidArgument(
          "assignment " + std::to_string(assignment) +
          " is out of range (labels must be >= 0)");
    }
  }
  // Label of a local cluster = assignment of its first sample.
  std::vector<int64_t> cluster_label(
      static_cast<size_t>(std::max<int64_t>(local_.num_local_clusters, 1)),
      -1);
  for (size_t s = 0; s < local_.sample_cluster.size(); ++s) {
    const auto t = static_cast<size_t>(local_.sample_cluster[s]);
    if (cluster_label[t] == -1) cluster_label[t] = sample_assignments[s];
  }
  std::vector<int64_t> labels(local_.partition.size(), 0);
  for (size_t i = 0; i < local_.partition.size(); ++i) {
    labels[i] = cluster_label[static_cast<size_t>(local_.partition[i])];
  }
  return labels;
}

FedScServer::FedScServer(int64_t num_clusters, FedScOptions options)
    : num_clusters_(num_clusters), options_(std::move(options)) {}

Result<int64_t> FedScServer::AddUpload(const Matrix& samples) {
  if (samples.cols() == 0) {
    return Status::InvalidArgument("empty upload");
  }
  // The first device fixes the federation's ambient dimension; validation
  // quarantines corrupt columns so one bad device cannot poison (or crash)
  // the central solve.
  FEDSC_ASSIGN_OR_RETURN(
      UploadValidation validation,
      ValidateUpload(samples, ambient_dim_ >= 0 ? ambient_dim_ : -1,
                     options_.validation));
  quarantined_samples_ +=
      static_cast<int64_t>(validation.quarantined.size());
  if (validation.accepted.cols() == 0) {
    FEDSC_JOURNAL_EVENT(
        "quarantined", num_devices(), -1,
        {{"reason", "every sample of the upload failed validation"}});
    return Status::InvalidArgument(
        "every sample of the upload failed validation: " +
        QuarantinedColumnsSummary(validation));
  }
  if (ambient_dim_ < 0) ambient_dim_ = samples.rows();
  device_offsets_.push_back(total_samples_);
  total_samples_ += validation.accepted.cols();
  uploads_.push_back(std::move(validation.accepted));
  clustered_ = false;
  FEDSC_JOURNAL_EVENT(
      "accepted", num_devices() - 1, -1,
      {{"uploaded_samples", samples.cols()},
       {"accepted_samples", uploads_.back().cols()},
       {"quarantined_samples",
        static_cast<int64_t>(validation.quarantined.size())}});
  return num_devices() - 1;
}

Result<int64_t> FedScServer::AddEncodedUpload(
    const std::vector<uint8_t>& wire) {
  FEDSC_ASSIGN_OR_RETURN(DecodedUpload decoded, DecodeUpload(wire));
  return AddUpload(decoded.samples);
}

Status FedScServer::Cluster() {
  if (clustered_) return Status::OK();
  if (total_samples_ < num_clusters_) {
    return Status::FailedPrecondition(
        "fewer samples than clusters: " + std::to_string(total_samples_) +
        " < " + std::to_string(num_clusters_));
  }
  Matrix pooled(ambient_dim_, total_samples_);
  std::vector<int64_t> pool_device;
  pool_device.reserve(static_cast<size_t>(total_samples_));
  int64_t next = 0;
  for (size_t z = 0; z < uploads_.size(); ++z) {
    const Matrix& upload = uploads_[z];
    for (int64_t c = 0; c < upload.cols(); ++c) {
      pooled.SetCol(next++, upload.ColData(c));
      pool_device.push_back(static_cast<int64_t>(z));
    }
  }

  // Byzantine defense: screen the registered uploads; screened devices'
  // samples are excluded from the central solve and keep the sentinel
  // label -1 in sample_labels().
  screened_.assign(static_cast<size_t>(num_devices()), false);
  Matrix solve = pooled;
  std::vector<int64_t> solve_device = pool_device;
  std::vector<int64_t> keep;
  if (options_.defense.enabled) {
    FEDSC_ASSIGN_OR_RETURN(DefensePlan defense,
                           DefensePlan::Create(options_.defense));
    const ScreeningOutcome screening =
        defense.Screen(pooled, pool_device, options_.num_threads);
    for (const DeviceScreenVerdict& verdict : screening.verdicts) {
      if (!verdict.screened) continue;
      screened_[static_cast<size_t>(verdict.device)] = true;
      FEDSC_JOURNAL_EVENT("defense_screened", verdict.device, -1,
                          {{"statistic", verdict.statistic},
                           {"support", verdict.support},
                           {"residual", verdict.residual}});
    }
    if (screening.screened_devices > 0) {
      for (int64_t c = 0; c < total_samples_; ++c) {
        if (!screened_[static_cast<size_t>(
                pool_device[static_cast<size_t>(c)])]) {
          keep.push_back(c);
        }
      }
      if (static_cast<int64_t>(keep.size()) < num_clusters_) {
        return Status::FailedPrecondition(
            "fewer unscreened samples than clusters: " +
            std::to_string(keep.size()) + " < " +
            std::to_string(num_clusters_));
      }
      solve = pooled.GatherCols(keep);
      solve_device.clear();
      for (int64_t c : keep) {
        solve_device.push_back(pool_device[static_cast<size_t>(c)]);
      }
    }
  }

  ScPipelineOptions central;
  central.method = options_.central_method;
  central.central = options_.central;
  central.sketch = options_.central_sketch;
  // Same derivation as RunFedSc: the sketch stream is a pure function of
  // the run seed, independent of upload arrival order.
  central.sketch.seed = MixSeeds(options_.seed, 0x5ce7c4ULL);
  central.ssc = options_.central_ssc;
  central.tsc = options_.central_tsc;
  if (central.tsc.q <= 0) {
    central.tsc.q = std::max<int64_t>(
        3, (num_devices() + num_clusters_ - 1) / num_clusters_);
  }
  central.tsc.q = std::min<int64_t>(central.tsc.q, total_samples_ - 1);
  central.spectral = options_.central_spectral;
  central.spectral.kmeans.seed = options_.seed ^ 0x5e47e4ULL;
  if (options_.defense.enabled) {
    KMeansRobustOptions& robust = central.spectral.kmeans.robust;
    robust.enabled = true;
    robust.trim_fraction = options_.defense.trim_fraction;
    robust.center = options_.defense.robust_center;
    robust.max_group_fraction = options_.defense.max_device_fraction;
    robust.point_group = solve_device;
  }
  central.num_threads = options_.num_threads;
  FEDSC_JOURNAL_EVENT(
      "central_start", -1, -1,
      {{"samples", solve.cols()},
       {"method", central.method == ScMethod::kSsc ? "ssc" : "tsc"},
       {"central_path",
        CentralPathName(
            ResolveCentralPath(central, solve.cols(), num_clusters_))}});
  FEDSC_ASSIGN_OR_RETURN(ScResult result,
                         RunSubspaceClustering(solve, num_clusters_,
                                               central));
  if (keep.empty()) {
    sample_labels_ = std::move(result.labels);
  } else {
    // Screened samples keep the failed-device sentinel.
    sample_labels_.assign(static_cast<size_t>(total_samples_), -1);
    for (size_t i = 0; i < keep.size(); ++i) {
      sample_labels_[static_cast<size_t>(keep[i])] = result.labels[i];
    }
  }
  clustered_ = true;
  FEDSC_JOURNAL_EVENT("central_finish", -1, -1,
                      {{"samples", solve.cols()}});
  return Status::OK();
}

Result<std::vector<int64_t>> FedScServer::AssignmentsFor(int64_t id) const {
  if (id < 0 || id >= num_devices()) {
    return Status::InvalidArgument("unknown device id " + std::to_string(id));
  }
  if (!clustered_) {
    return Status::FailedPrecondition("Cluster() has not run");
  }
  if (!screened_.empty() && screened_[static_cast<size_t>(id)]) {
    return Status::InvalidArgument(
        "device " + std::to_string(id) +
        " was screened by the Byzantine defense; its samples were excluded "
        "from the central clustering");
  }
  const int64_t begin = device_offsets_[static_cast<size_t>(id)];
  const int64_t count = uploads_[static_cast<size_t>(id)].cols();
  return std::vector<int64_t>(sample_labels_.begin() + begin,
                              sample_labels_.begin() + begin + count);
}

}  // namespace fedsc
