// Stateful client/server API for Fed-SC.
//
// RunFedSc() drives the whole one-shot protocol over a FederatedDataset in
// one call, which suits experiments. Real deployments have devices that come
// and go: each FedScClient runs Algorithm 2 on its own data and produces an
// upload; the FedScServer accumulates uploads and (re-)clusters on demand,
// handing every client back the assignments for its samples. Adding a device
// and re-clustering costs one more central solve — the local phases of the
// other devices are never repeated.

#ifndef FEDSC_CORE_SERVER_H_
#define FEDSC_CORE_SERVER_H_

#include <cstdint>
#include <vector>

#include "core/fedsc.h"

namespace fedsc {

// One device: owns its raw points, runs local clustering + sampling once,
// and translates server assignments into point labels.
class FedScClient {
 public:
  // `points` are this device's raw data columns; `seed` drives every local
  // random choice.
  FedScClient(Matrix points, FedScOptions options, uint64_t seed);

  // Algorithm 2: cluster locally, estimate bases, draw samples. Idempotent
  // (the result is cached).
  Result<Matrix> ProduceUpload();

  // ProduceUpload() serialized with `codec` (fed/codec.h): the byte stream
  // a real transport would carry to FedScServer::AddEncodedUpload.
  Result<std::vector<uint8_t>> ProduceEncodedUpload(
      const CodecOptions& codec = {});

  // Number of samples this client uploads (valid after ProduceUpload).
  int64_t num_samples() const { return local_.samples.cols(); }

  // Phase 3: map per-sample assignments (one per uploaded sample, in upload
  // order) to per-point labels. Rejects assignment vectors whose length
  // mismatches num_samples() or that contain negative labels (a server must
  // never hand back the failed-device sentinel as a real assignment).
  Result<std::vector<int64_t>> ApplyAssignments(
      const std::vector<int64_t>& sample_assignments) const;

  const LocalClusteringOutput& local() const { return local_; }

 private:
  Matrix points_;
  FedScOptions options_;
  uint64_t seed_;
  bool ran_ = false;
  LocalClusteringOutput local_;
};

// The coordinator: accumulates uploads, clusters them into num_clusters
// groups with SSC or TSC, and serves per-device assignments.
class FedScServer {
 public:
  FedScServer(int64_t num_clusters, FedScOptions options);

  // Registers one device's upload; returns the device's id. Invalidates any
  // previous clustering. Sample columns that fail validation
  // (FedScOptions::validation — non-finite values, norms far off the unit
  // sphere) are quarantined rather than registered; an upload with no valid
  // column (or the wrong ambient dimension) is rejected with a typed
  // Status.
  Result<int64_t> AddUpload(const Matrix& samples);

  // AddUpload over a serialized wire message (fed/wire.h): decodes with the
  // self-describing codec recorded in the message's header, then registers
  // the reconstructed samples. Malformed bytes are rejected with the typed
  // kWireCorrupt status (never a crash or out-of-bounds read).
  Result<int64_t> AddEncodedUpload(const std::vector<uint8_t>& wire);

  int64_t num_devices() const {
    return static_cast<int64_t>(device_offsets_.size());
  }
  int64_t total_samples() const { return total_samples_; }
  // Sample columns rejected by AddUpload validation since construction.
  int64_t quarantined_samples() const { return quarantined_samples_; }

  // (Re-)clusters all registered samples. Idempotent until the next
  // AddUpload.
  Status Cluster();

  // Assignments for device `id`'s samples, in upload order. Requires a
  // successful Cluster() since the last AddUpload. A device screened by the
  // Byzantine defense (FedScOptions::defense) gets a typed error instead of
  // assignments — its samples never entered the central solve.
  Result<std::vector<int64_t>> AssignmentsFor(int64_t id) const;

  // True when the last Cluster() screened device `id` (always false with
  // the defense disabled or before Cluster() ran).
  bool screened(int64_t id) const {
    return id >= 0 && id < static_cast<int64_t>(screened_.size()) &&
           screened_[static_cast<size_t>(id)];
  }

  // The full pooled clustering (one label per registered sample).
  const std::vector<int64_t>& sample_labels() const { return sample_labels_; }

 private:
  int64_t num_clusters_;
  FedScOptions options_;
  int64_t ambient_dim_ = -1;
  std::vector<Matrix> uploads_;
  std::vector<int64_t> device_offsets_;
  int64_t total_samples_ = 0;
  int64_t quarantined_samples_ = 0;
  bool clustered_ = false;
  std::vector<bool> screened_;
  std::vector<int64_t> sample_labels_;
};

}  // namespace fedsc

#endif  // FEDSC_CORE_SERVER_H_
