#include "core/theory.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "linalg/svd.h"

namespace fedsc {

Result<Vector> CanonicalAngleCosines(const Matrix& basis1,
                                     const Matrix& basis2) {
  if (basis1.rows() != basis2.rows()) {
    return Status::InvalidArgument("bases live in different ambient spaces");
  }
  if (basis1.cols() == 0 || basis2.cols() == 0) {
    return Status::InvalidArgument("empty basis");
  }
  const Matrix cross = MatMulTN(basis1, basis2);
  FEDSC_ASSIGN_OR_RETURN(SvdResult svd, JacobiSvd(cross));
  Vector cosines = std::move(svd.s);
  for (auto& c : cosines) c = std::clamp(c, 0.0, 1.0);
  return cosines;
}

Result<double> SubspaceAffinity(const Matrix& basis1, const Matrix& basis2) {
  FEDSC_ASSIGN_OR_RETURN(Vector cosines,
                         CanonicalAngleCosines(basis1, basis2));
  double sum = 0.0;
  for (double c : cosines) sum += c * c;
  return std::sqrt(sum);
}

Result<Vector> DualDirection(const Vector& x, const Matrix& dictionary,
                             const DualDirectionOptions& options) {
  const int64_t n = dictionary.rows();
  const int64_t m = dictionary.cols();
  if (static_cast<int64_t>(x.size()) != n) {
    return Status::InvalidArgument("x dimension mismatch");
  }
  if (m == 0) return Status::InvalidArgument("empty dictionary");

  // ADMM on  max <x, nu>  s.t.  s = X^T nu, |s|_inf <= 1:
  //   nu-step:  (rho X X^T + ridge I) nu = x + rho X (s - u)
  //   s-step:   clamp(X^T nu + u, -1, 1)
  //   u-step:   u += X^T nu - s
  // X X^T through the symmetric Syrk kernel — half the flops of the GEMM
  // formulation once the dictionary crosses the blocked-engine cutoff.
  Matrix system = OuterGram(dictionary);
  system *= options.rho;
  for (int64_t i = 0; i < n; ++i) system(i, i) += options.ridge;
  FEDSC_ASSIGN_OR_RETURN(Matrix solver, SpdInverse(system));

  Vector nu(static_cast<size_t>(n), 0.0);
  Vector s(static_cast<size_t>(m), 0.0);
  Vector u(static_cast<size_t>(m), 0.0);
  Vector rhs(static_cast<size_t>(n), 0.0);
  Vector xs(static_cast<size_t>(m), 0.0);
  Vector s_minus_u(static_cast<size_t>(m), 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    for (int64_t i = 0; i < m; ++i) {
      s_minus_u[static_cast<size_t>(i)] =
          s[static_cast<size_t>(i)] - u[static_cast<size_t>(i)];
    }
    std::copy(x.begin(), x.end(), rhs.begin());
    Gemv(Trans::kNo, options.rho, dictionary, s_minus_u.data(), 1.0,
         rhs.data());
    Gemv(Trans::kNo, 1.0, solver, rhs.data(), 0.0, nu.data());

    Gemv(Trans::kTrans, 1.0, dictionary, nu.data(), 0.0, xs.data());
    double primal_residual = 0.0;
    double dual_change = 0.0;
    for (int64_t i = 0; i < m; ++i) {
      const double next =
          std::clamp(xs[static_cast<size_t>(i)] + u[static_cast<size_t>(i)],
                     -1.0, 1.0);
      dual_change = std::max(dual_change,
                             std::fabs(next - s[static_cast<size_t>(i)]));
      s[static_cast<size_t>(i)] = next;
      const double gap = xs[static_cast<size_t>(i)] - next;
      primal_residual = std::max(primal_residual, std::fabs(gap));
      u[static_cast<size_t>(i)] += gap;
    }
    if (std::max(primal_residual, dual_change) < options.tol) break;
  }
  return nu;
}

Result<double> SubspaceIncoherence(const Matrix& x_l, const Matrix& others,
                                   const Matrix& basis_l,
                                   const DualDirectionOptions& options) {
  const int64_t n = x_l.rows();
  const int64_t count = x_l.cols();
  if (count < 2) {
    return Status::InvalidArgument("incoherence needs >= 2 points in X_l");
  }
  if (others.rows() != n || basis_l.rows() != n) {
    return Status::InvalidArgument("ambient dimension mismatch");
  }

  // V_l: projected, normalized dual directions of every point of X_l
  // against the remaining points of X_l.
  Matrix v(n, count);
  Vector projected(static_cast<size_t>(n), 0.0);
  Vector in_basis(static_cast<size_t>(basis_l.cols()), 0.0);
  for (int64_t i = 0; i < count; ++i) {
    std::vector<int64_t> rest;
    rest.reserve(static_cast<size_t>(count - 1));
    for (int64_t j = 0; j < count; ++j) {
      if (j != i) rest.push_back(j);
    }
    FEDSC_ASSIGN_OR_RETURN(
        Vector nu, DualDirection(x_l.Col(i), x_l.GatherCols(rest), options));
    // P_l nu = U (U^T nu), then normalize.
    Gemv(Trans::kTrans, 1.0, basis_l, nu.data(), 0.0, in_basis.data());
    Gemv(Trans::kNo, 1.0, basis_l, in_basis.data(), 0.0, projected.data());
    const double norm = Norm2(projected.data(), n);
    if (norm <= 1e-12) {
      return Status::FailedPrecondition(
          "dual direction has no component in the subspace");
    }
    Scal(1.0 / norm, projected.data(), n);
    v.SetCol(i, projected.data());
  }

  double mu = 0.0;
  Vector scores(static_cast<size_t>(count), 0.0);
  for (int64_t j = 0; j < others.cols(); ++j) {
    Gemv(Trans::kTrans, 1.0, v, others.ColData(j), 0.0, scores.data());
    for (double sc : scores) mu = std::max(mu, std::fabs(sc));
  }
  return mu;
}

Result<double> InradiusEstimate(const Matrix& x,
                                const InradiusOptions& options) {
  const int64_t n = x.rows();
  const int64_t m = x.cols();
  if (m == 0) return Status::InvalidArgument("inradius of no points");

  // Work inside span(X): nu = Q w with Q an orthonormal basis, so
  // f(w) = max_i |g_i^T w| with g_i = Q^T x_i and ||w|| = 1.
  FEDSC_ASSIGN_OR_RETURN(Matrix q, PrincipalSubspace(x, 0, 1e-10));
  const Matrix g = MatMulTN(q, x);  // dim x m
  const int64_t dim = g.rows();
  (void)n;

  Rng rng(options.seed);
  double best = std::numeric_limits<double>::infinity();
  Vector scores(static_cast<size_t>(m), 0.0);
  for (int restart = 0; restart < options.restarts; ++restart) {
    Vector w = rng.UnitSphere(dim);
    double step = options.step;
    for (int iter = 0; iter < options.iterations; ++iter) {
      // Subgradient of max_i |g_i^T w| at the argmax atom.
      Gemv(Trans::kTrans, 1.0, g, w.data(), 0.0, scores.data());
      int64_t arg = 0;
      double value = -1.0;
      for (int64_t i = 0; i < m; ++i) {
        if (std::fabs(scores[static_cast<size_t>(i)]) > value) {
          value = std::fabs(scores[static_cast<size_t>(i)]);
          arg = i;
        }
      }
      best = std::min(best, value);
      const double sign =
          scores[static_cast<size_t>(arg)] >= 0.0 ? 1.0 : -1.0;
      // w <- normalize(w - step * sign * g_arg)
      Axpy(-step * sign, g.ColData(arg), w.data(), dim);
      const double norm = Norm2(w.data(), dim);
      if (norm <= 1e-12) break;
      Scal(1.0 / norm, w.data(), dim);
      step *= 0.99;
    }
  }
  return best;
}

std::vector<std::vector<int64_t>> ComputeActiveSets(
    const FederatedDataset& data) {
  const int64_t num_clusters = data.num_clusters;
  std::vector<std::set<int64_t>> active(static_cast<size_t>(num_clusters));
  for (const auto& device_labels : data.labels) {
    const std::set<int64_t> present(device_labels.begin(),
                                    device_labels.end());
    for (int64_t l : present) {
      for (int64_t k : present) {
        if (k != l) active[static_cast<size_t>(l)].insert(k);
      }
    }
  }
  std::vector<std::vector<int64_t>> out(static_cast<size_t>(num_clusters));
  for (int64_t l = 0; l < num_clusters; ++l) {
    out[static_cast<size_t>(l)].assign(active[static_cast<size_t>(l)].begin(),
                                       active[static_cast<size_t>(l)].end());
  }
  return out;
}

double Corollary1AffinityBound(double d, double z_prime, double num_clusters,
                               double r_prime, double c, double t) {
  if (d < 1.0 || z_prime <= d + 1.0 || num_clusters < 1.0 || r_prime < 1.0) {
    return 0.0;
  }
  const double numerator = c * std::sqrt(d * std::log((z_prime - 1.0) / d));
  const double denominator =
      t * std::log(num_clusters * r_prime * z_prime *
                   (r_prime * z_prime + 1.0));
  return denominator > 0.0 ? numerator / denominator : 0.0;
}

double Corollary2AffinityBound(double d, double z_prime, double num_clusters,
                               double r_prime) {
  if (d < 1.0 || z_prime < 2.0 || num_clusters < 1.0 || r_prime < 1.0) {
    return 0.0;
  }
  const double denominator =
      15.0 * std::log(num_clusters * r_prime * z_prime);
  return denominator > 0.0 ? std::sqrt(d) / denominator : 0.0;
}

Result<TheoremCheck> CheckTheoremConditions(
    const Dataset& data, const FederatedDataset& fed,
    const TheoremCheckOptions& options) {
  const int64_t num_clusters = data.num_clusters;
  if (static_cast<int64_t>(data.bases.size()) != num_clusters) {
    return Status::InvalidArgument(
        "theorem check needs the ground-truth bases");
  }
  if (fed.num_clusters != num_clusters) {
    return Status::InvalidArgument("dataset/partition cluster mismatch");
  }

  TheoremCheck check;
  check.inradius.assign(static_cast<size_t>(num_clusters), 0.0);
  check.active_incoherence.assign(static_cast<size_t>(num_clusters), 0.0);
  check.deterministic_ok.assign(static_cast<size_t>(num_clusters), false);

  // Column indices per cluster.
  std::vector<std::vector<int64_t>> members(
      static_cast<size_t>(num_clusters));
  for (size_t i = 0; i < data.labels.size(); ++i) {
    members[static_cast<size_t>(data.labels[i])].push_back(
        static_cast<int64_t>(i));
  }
  const auto active_sets = ComputeActiveSets(fed);

  for (int64_t l = 0; l < num_clusters; ++l) {
    const auto& own = members[static_cast<size_t>(l)];
    if (own.size() < 2) continue;
    const Matrix x_l = data.points.GatherCols(own);
    FEDSC_ASSIGN_OR_RETURN(const double inradius,
                           InradiusEstimate(x_l, options.inradius));
    check.inradius[static_cast<size_t>(l)] = inradius;

    std::vector<int64_t> active_columns;
    for (int64_t k : active_sets[static_cast<size_t>(l)]) {
      const auto& other = members[static_cast<size_t>(k)];
      active_columns.insert(active_columns.end(), other.begin(),
                            other.end());
    }
    double incoherence = 0.0;
    if (!active_columns.empty()) {
      FEDSC_ASSIGN_OR_RETURN(
          incoherence,
          SubspaceIncoherence(x_l, data.points.GatherCols(active_columns),
                              data.bases[static_cast<size_t>(l)],
                              options.dual));
    }
    check.active_incoherence[static_cast<size_t>(l)] = incoherence;
    check.deterministic_ok[static_cast<size_t>(l)] = inradius > incoherence;
  }

  double max_dim = 1.0;
  for (const Matrix& basis : data.bases) {
    max_dim = std::max(max_dim, static_cast<double>(basis.cols()));
  }
  for (int64_t a = 0; a < num_clusters; ++a) {
    for (int64_t b = a + 1; b < num_clusters; ++b) {
      FEDSC_ASSIGN_OR_RETURN(
          const double affinity,
          SubspaceAffinity(data.bases[static_cast<size_t>(a)],
                           data.bases[static_cast<size_t>(b)]));
      check.max_affinity = std::max(check.max_affinity, affinity);
    }
  }

  const auto devices_per_cluster = fed.DevicesPerCluster();
  int64_t z_prime = devices_per_cluster.empty() ? 0
                                                : devices_per_cluster[0];
  for (int64_t v : devices_per_cluster) z_prime = std::min(z_prime, v);
  double r_prime = options.r_prime;
  if (r_prime <= 0.0) {
    const auto clusters_per_device = fed.ClustersPerDevice();
    int64_t max_l = 1;
    for (int64_t v : clusters_per_device) max_l = std::max(max_l, v);
    r_prime = static_cast<double>(max_l);
  }
  check.corollary1_bound = Corollary1AffinityBound(
      max_dim, static_cast<double>(z_prime),
      static_cast<double>(num_clusters), r_prime);
  check.corollary2_bound = Corollary2AffinityBound(
      max_dim, static_cast<double>(z_prime),
      static_cast<double>(num_clusters), r_prime);
  check.semi_random_ssc_ok = check.corollary1_bound > 0.0 &&
                             check.max_affinity < check.corollary1_bound;
  check.semi_random_tsc_ok = check.corollary2_bound > 0.0 &&
                             check.max_affinity <= check.corollary2_bound;
  return check;
}

}  // namespace fedsc
