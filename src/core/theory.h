// Numerical counterparts of the Section V quantities: canonical angles and
// subspace affinity (Def. 5), dual directions and subspace incoherence
// (Defs. 1 and 3), inradius (Def. 4), active sets (Def. 2), and the
// closed-form affinity bounds of Corollaries 1 and 2. These let tests and
// examples check the theorems' conditions on concrete federations.

#ifndef FEDSC_CORE_THEORY_H_
#define FEDSC_CORE_THEORY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "fed/partition.h"
#include "linalg/matrix.h"

namespace fedsc {

// Cosines of the canonical (principal) angles between the column spans of
// two orthonormal bases, descending (= singular values of U1^T U2, clamped
// to [0, 1]).
Result<Vector> CanonicalAngleCosines(const Matrix& basis1,
                                     const Matrix& basis2);

// aff(S_k, S_l) = sqrt(sum_i cos^2 phi_i)  (Def. 5). Ranges in
// [0, sqrt(min(d_k, d_l))]; 0 for orthogonal subspaces, sqrt(d) for
// identical ones.
Result<double> SubspaceAffinity(const Matrix& basis1, const Matrix& basis2);

struct DualDirectionOptions {
  int max_iterations = 2000;
  double rho = 1.0;
  double tol = 1e-8;
  // Ridge added to X X^T so the nu-update system is well-posed when X is
  // rank-deficient in ambient space.
  double ridge = 1e-10;
};

// nu(x, X): solution of max <x, nu> s.t. ||X^T nu||_inf <= 1 (Def. 1),
// solved by ADMM on the equivalent splitting s = X^T nu. x must lie in the
// span of X (true for the self-expression setting); the returned nu is the
// component relevant to the incoherence computation.
Result<Vector> DualDirection(const Vector& x, const Matrix& dictionary,
                             const DualDirectionOptions& options = {});

// mu(X_l) restricted to `others` (Defs. 1 and 3): builds V_l from the
// projected, normalized dual directions of every column of x_l (projection
// onto span(basis_l)), then returns max over columns y of `others` of
// ||V_l^T y||_inf. Passing all non-l points gives mu; passing only the
// active-set points gives mu-tilde.
Result<double> SubspaceIncoherence(const Matrix& x_l, const Matrix& others,
                                   const Matrix& basis_l,
                                   const DualDirectionOptions& options = {});

struct InradiusOptions {
  int restarts = 64;
  int iterations = 300;
  double step = 0.1;
  uint64_t seed = 0x5eed'12adULL;
};

// Estimate of r(P(X)) = min_{||nu||=1, nu in span(X)} ||X^T nu||_inf (the
// support-function characterization of the inradius of the symmetrized
// convex hull, Def. 4). Projected subgradient descent with random restarts;
// an upper bound on the true inradius that is tight in practice for the
// small instances the tests exercise.
Result<double> InradiusEstimate(const Matrix& x,
                                const InradiusOptions& options = {});

// Active sets alpha(l) (Def. 2) from a federated data partition: k is in
// alpha(l) iff some device holds points of both clusters l and k.
std::vector<std::vector<int64_t>> ComputeActiveSets(
    const FederatedDataset& data);

// Corollary 1's upper bound on max affinity for Fed-SC (SSC):
//   c sqrt(d log((Z'-1)/d)) / (t log(L r' Z' (r' Z' + 1))).
// Returns 0 when the log arguments are out of range.
double Corollary1AffinityBound(double d, double z_prime, double num_clusters,
                               double r_prime, double c = 1.0, double t = 1.0);

// Corollary 2's bound for Fed-SC (TSC): sqrt(d) / (15 log(L r' Z')).
double Corollary2AffinityBound(double d, double z_prime, double num_clusters,
                               double r_prime);

// Numerical check of the Theorem 1/2 sufficient conditions on a concrete
// federation whose ground-truth bases are known (synthetic data). This is a
// diagnostic, not a certificate: the deterministic condition is evaluated on
// the global point sets (a practical proxy for the min over all N'_l-column
// submatrices, which is combinatorial), and the semi-random side uses the
// Corollary bounds with unit constants.
struct TheoremCheck {
  // Per cluster l: estimated inradius of X_l, active incoherence mu~(X_l),
  // and whether inradius > incoherence (the active deterministic condition).
  Vector inradius;
  Vector active_incoherence;
  std::vector<bool> deterministic_ok;
  // Across pairs: the worst (max) affinity between distinct subspaces and
  // the Corollary 1 (SSC) / Corollary 2 (TSC) bounds it is compared to.
  double max_affinity = 0.0;
  double corollary1_bound = 0.0;
  double corollary2_bound = 0.0;
  bool semi_random_ssc_ok = false;
  bool semi_random_tsc_ok = false;
};

struct TheoremCheckOptions {
  DualDirectionOptions dual;
  InradiusOptions inradius;
  // r' (max samples per device); the benches' default of one sample per
  // local cluster makes r' = max L^(z).
  double r_prime = 0.0;  // <= 0: use max L^(z) from the partition
};

Result<TheoremCheck> CheckTheoremConditions(
    const Dataset& data, const FederatedDataset& fed,
    const TheoremCheckOptions& options = {});

}  // namespace fedsc

#endif  // FEDSC_CORE_THEORY_H_
