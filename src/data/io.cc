#include "data/io.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace fedsc {

Status SaveDatasetCsv(const std::string& path, const Dataset& dataset) {
  const int64_t n = dataset.points.rows();
  const int64_t count = dataset.points.cols();
  if (static_cast<int64_t>(dataset.labels.size()) != count) {
    return Status::InvalidArgument("labels/points size mismatch");
  }
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound("cannot open " + path + " for writing: " +
                            std::strerror(errno));
  }
  out.precision(17);
  for (int64_t j = 0; j < count; ++j) {
    out << dataset.labels[static_cast<size_t>(j)];
    const double* col = dataset.points.ColData(j);
    for (int64_t i = 0; i < n; ++i) out << ',' << col[i];
    out << '\n';
  }
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

Result<Dataset> LoadDatasetCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  std::vector<Vector> columns;
  std::vector<int64_t> labels;
  int64_t expected_dim = -1;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string cell;
    if (!std::getline(fields, cell, ',')) continue;
    int64_t label = 0;
    try {
      label = std::stoll(cell);
    } catch (...) {
      return Status::InvalidArgument("bad label on line " +
                                     std::to_string(line_number));
    }
    if (label < 0) {
      return Status::InvalidArgument("negative label on line " +
                                     std::to_string(line_number));
    }
    Vector column;
    while (std::getline(fields, cell, ',')) {
      try {
        column.push_back(std::stod(cell));
      } catch (...) {
        return Status::InvalidArgument("bad value on line " +
                                       std::to_string(line_number));
      }
    }
    if (column.empty()) {
      return Status::InvalidArgument("no features on line " +
                                     std::to_string(line_number));
    }
    if (expected_dim < 0) {
      expected_dim = static_cast<int64_t>(column.size());
    } else if (static_cast<int64_t>(column.size()) != expected_dim) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + " has " +
          std::to_string(column.size()) + " features, expected " +
          std::to_string(expected_dim));
    }
    labels.push_back(label);
    columns.push_back(std::move(column));
  }
  if (columns.empty()) {
    return Status::InvalidArgument(path + " holds no data points");
  }
  Dataset dataset;
  dataset.points = Matrix::FromColumns(columns);
  dataset.labels = std::move(labels);
  int64_t max_label = 0;
  for (int64_t l : dataset.labels) max_label = std::max(max_label, l);
  dataset.num_clusters = max_label + 1;
  return dataset;
}

}  // namespace fedsc
