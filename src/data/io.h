// CSV import/export for labeled datasets, so downstream users can run the
// library on their own data. Format: one point per line,
// "label,feature_1,feature_2,...,feature_n" — all lines must share one
// feature count; labels are non-negative integers.

#ifndef FEDSC_DATA_IO_H_
#define FEDSC_DATA_IO_H_

#include <string>

#include "common/result.h"
#include "data/synthetic.h"

namespace fedsc {

Status SaveDatasetCsv(const std::string& path, const Dataset& dataset);

// Loads a dataset saved by SaveDatasetCsv (or any file in the same format).
// num_clusters is set to max label + 1; bases are left empty.
Result<Dataset> LoadDatasetCsv(const std::string& path);

}  // namespace fedsc

#endif  // FEDSC_DATA_IO_H_
