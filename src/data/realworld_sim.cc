#include "data/realworld_sim.h"

#include <cmath>

#include "linalg/blas.h"
#include "linalg/qr.h"

namespace fedsc {

namespace {

// Union-of-subspaces data whose class subspaces concentrate near a shared
// "style" subspace: basis_l = orth(W G_l + spread * E_l) with W a common
// n x m orthonormal basis and G_l, E_l Gaussian. With spread = 0 all classes
// live inside span(W); growing spread separates them. This reproduces the
// high pairwise subspace affinity of real feature data, which independent
// random subspaces of a high-dimensional ambient space would not have.
Result<Dataset> GenerateConcentrated(int64_t ambient_dim,
                                     int64_t subspace_dim,
                                     const std::vector<int64_t>& counts,
                                     int64_t common_dim, double class_spread,
                                     double noise_stddev, bool normalize,
                                     Rng* rng) {
  if (common_dim <= 0) {
    return GenerateUnionOfSubspaces(ambient_dim, subspace_dim, counts,
                                    noise_stddev, normalize, rng->Next());
  }
  if (common_dim < subspace_dim) {
    return Status::InvalidArgument("common_dim must be >= subspace_dim");
  }
  if (common_dim > ambient_dim) {
    return Status::InvalidArgument("common_dim must be <= ambient_dim");
  }
  int64_t total = 0;
  for (int64_t c : counts) {
    if (c < 0) return Status::InvalidArgument("negative point count");
    total += c;
  }
  if (total == 0) return Status::InvalidArgument("no points requested");

  const Matrix shared =
      RandomOrthonormalBasis(ambient_dim, common_dim, rng);

  Dataset data;
  data.num_clusters = static_cast<int64_t>(counts.size());
  data.points = Matrix(ambient_dim, total);
  data.labels.reserve(static_cast<size_t>(total));
  data.bases.reserve(counts.size());

  int64_t next = 0;
  for (int64_t l = 0; l < data.num_clusters; ++l) {
    // Raw directions: W G_l + spread * E_l, then orthonormalize.
    Matrix raw(ambient_dim, subspace_dim);
    for (int64_t j = 0; j < subspace_dim; ++j) {
      const Vector mix = rng->GaussianVector(common_dim);
      Gemv(Trans::kNo, 1.0, shared, mix.data(), 0.0, raw.ColData(j));
      for (int64_t i = 0; i < ambient_dim; ++i) {
        raw(i, j) += class_spread * rng->Gaussian();
      }
    }
    Matrix basis = OrthonormalColumnBasis(raw);
    if (basis.cols() < subspace_dim) {
      return Status::Internal("degenerate concentrated basis");
    }
    for (int64_t p = 0; p < counts[static_cast<size_t>(l)]; ++p) {
      const Vector coeff = rng->GaussianVector(subspace_dim);
      Gemv(Trans::kNo, 1.0, basis, coeff.data(), 0.0,
           data.points.ColData(next));
      if (noise_stddev > 0.0) {
        double* col = data.points.ColData(next);
        for (int64_t i = 0; i < ambient_dim; ++i) {
          col[i] += noise_stddev * rng->Gaussian();
        }
      }
      data.labels.push_back(l);
      ++next;
    }
    data.bases.push_back(std::move(basis));
  }
  if (normalize) data.points.NormalizeColumns();
  return data;
}

}  // namespace

Result<Dataset> GenerateEmnistSim(const EmnistSimOptions& options) {
  if (options.min_class_size < 1 ||
      options.max_class_size < options.min_class_size) {
    return Status::InvalidArgument("bad EMNIST-sim class size range");
  }
  Rng rng(options.seed);
  std::vector<int64_t> counts;
  counts.reserve(static_cast<size_t>(options.num_classes));
  for (int64_t l = 0; l < options.num_classes; ++l) {
    counts.push_back(options.min_class_size +
                     rng.UniformInt(options.max_class_size -
                                    options.min_class_size + 1));
  }
  return GenerateConcentrated(options.ambient_dim, options.subspace_dim,
                              counts, options.common_dim,
                              options.class_spread, options.noise_stddev,
                              /*normalize=*/true, &rng);
}

Result<Dataset> GenerateCoil100Sim(const Coil100SimOptions& options) {
  if (options.images_per_class < 1) {
    return Status::InvalidArgument("COIL100-sim needs images_per_class >= 1");
  }
  // Base points on per-object pose subspaces, before augmentation.
  const std::vector<int64_t> counts(
      static_cast<size_t>(options.num_classes), options.images_per_class);
  Rng rng(options.seed);
  FEDSC_ASSIGN_OR_RETURN(
      Dataset data,
      GenerateConcentrated(options.ambient_dim, options.subspace_dim, counts,
                           options.common_dim, options.class_spread,
                           /*noise_stddev=*/0.0, /*normalize=*/false, &rng));

  // Brightness (gain) and contrast-offset jitter: x <- g * x + b * 1 + eps.
  // The offset direction is shared across all classes, like the global
  // brightness axis of real images.
  const int64_t n = data.points.rows();
  const double ones_scale = 1.0 / std::sqrt(static_cast<double>(n));
  for (int64_t j = 0; j < data.points.cols(); ++j) {
    const double gain =
        1.0 + options.gain_jitter * (2.0 * rng.Uniform() - 1.0);
    const double offset = options.offset_stddev * rng.Gaussian();
    double* col = data.points.ColData(j);
    for (int64_t i = 0; i < n; ++i) {
      col[i] = gain * col[i] + offset * ones_scale +
               options.noise_stddev * rng.Gaussian();
    }
  }
  data.points.NormalizeColumns();
  return data;
}

}  // namespace fedsc
