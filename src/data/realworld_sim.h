// Simulated stand-ins for the paper's real-world datasets.
//
// The evaluation environment ships no datasets, so EMNIST (scattering
// features of handwritten characters, 3472-dim) and augmented COIL100
// (gray-scale object images, 1024-dim) are replaced by synthetic
// high-dimensional union-of-subspace datasets with matching *shape*:
// many classes, unbalanced class sizes, ambient dimension far above the
// per-device point count, additive feature noise, and (for COIL100-sim)
// brightness/contrast augmentation modeled as per-point gain/offset jitter.
// DESIGN.md section 2 records the substitution rationale.

#ifndef FEDSC_DATA_REALWORLD_SIM_H_
#define FEDSC_DATA_REALWORLD_SIM_H_

#include <cstdint>

#include "common/result.h"
#include "data/synthetic.h"

namespace fedsc {

struct EmnistSimOptions {
  int64_t num_classes = 20;      // the paper clusters subsets of 62 classes
  int64_t ambient_dim = 512;     // stands in for 3472-dim scattering features
  int64_t subspace_dim = 6;
  int64_t min_class_size = 80;   // EMNIST classes are unbalanced
  int64_t max_class_size = 240;
  double noise_stddev = 0.02;
  // Class subspaces are drawn near a shared "style" subspace of this
  // dimension, so pairwise subspace affinities resemble real feature data
  // (independent random subspaces of R^512 are nearly orthogonal, which
  // would make centralized clustering unrealistically easy). <= 0 disables.
  int64_t common_dim = 18;
  // Class-specific leakage outside the shared subspace (larger = easier).
  double class_spread = 0.3;
  uint64_t seed = 0xE31157ULL;
};

Result<Dataset> GenerateEmnistSim(const EmnistSimOptions& options = {});

struct Coil100SimOptions {
  int64_t num_classes = 30;      // COIL100 has 100 objects; scaled down
  int64_t ambient_dim = 256;     // stands in for 1024 gray pixels
  int64_t subspace_dim = 4;      // pose manifolds are very low-dimensional
  int64_t images_per_class = 120;  // 72 originals + augmentations
  // Augmentation jitter: multiplicative brightness gain in
  // [1 - gain_jitter, 1 + gain_jitter], additive contrast offset along the
  // all-ones direction with this stddev.
  double gain_jitter = 0.25;
  double offset_stddev = 0.05;
  double noise_stddev = 0.02;
  // Shared-subspace concentration, as in EmnistSimOptions (object images
  // share global shading/shape structure).
  int64_t common_dim = 12;
  double class_spread = 0.3;
  uint64_t seed = 0xC011'100ULL;
};

Result<Dataset> GenerateCoil100Sim(const Coil100SimOptions& options = {});

}  // namespace fedsc

#endif  // FEDSC_DATA_REALWORLD_SIM_H_
