#include "data/synthetic.h"

#include "linalg/blas.h"
#include "linalg/qr.h"

namespace fedsc {

Matrix RandomOrthonormalBasis(int64_t n, int64_t d, Rng* rng) {
  FEDSC_CHECK(1 <= d && d <= n) << "basis needs 1 <= d <= n";
  Matrix gaussian(n, d);
  for (int64_t j = 0; j < d; ++j) {
    for (int64_t i = 0; i < n; ++i) gaussian(i, j) = rng->Gaussian();
  }
  auto qr = HouseholderQr(gaussian);
  FEDSC_CHECK(qr.ok()) << qr.status().ToString();
  return std::move(qr->q);
}

Result<Dataset> GenerateUnionOfSubspaces(int64_t ambient_dim,
                                         int64_t subspace_dim,
                                         const std::vector<int64_t>& counts,
                                         double noise_stddev, bool normalize,
                                         uint64_t seed) {
  if (ambient_dim < 1 || subspace_dim < 1 || subspace_dim > ambient_dim) {
    return Status::InvalidArgument("need 1 <= d <= n");
  }
  if (counts.empty()) {
    return Status::InvalidArgument("need at least one subspace");
  }
  int64_t total = 0;
  for (int64_t c : counts) {
    if (c < 0) return Status::InvalidArgument("negative point count");
    total += c;
  }
  if (total == 0) return Status::InvalidArgument("no points requested");

  Rng rng(seed);
  Dataset data;
  data.num_clusters = static_cast<int64_t>(counts.size());
  data.points = Matrix(ambient_dim, total);
  data.labels.reserve(static_cast<size_t>(total));
  data.bases.reserve(counts.size());

  int64_t next = 0;
  for (int64_t l = 0; l < data.num_clusters; ++l) {
    Matrix basis = RandomOrthonormalBasis(ambient_dim, subspace_dim, &rng);
    for (int64_t p = 0; p < counts[static_cast<size_t>(l)]; ++p) {
      const Vector coeff = rng.GaussianVector(subspace_dim);
      Gemv(Trans::kNo, 1.0, basis, coeff.data(), 0.0,
           data.points.ColData(next));
      if (noise_stddev > 0.0) {
        double* col = data.points.ColData(next);
        for (int64_t i = 0; i < ambient_dim; ++i) {
          col[i] += noise_stddev * rng.Gaussian();
        }
      }
      data.labels.push_back(l);
      ++next;
    }
    data.bases.push_back(std::move(basis));
  }
  if (normalize) data.points.NormalizeColumns();
  return data;
}

Result<Dataset> GenerateUnionOfSubspaces(const SyntheticOptions& options) {
  if (options.num_subspaces < 1) {
    return Status::InvalidArgument("need at least one subspace");
  }
  const std::vector<int64_t> counts(
      static_cast<size_t>(options.num_subspaces),
      options.points_per_subspace);
  return GenerateUnionOfSubspaces(options.ambient_dim, options.subspace_dim,
                                  counts, options.noise_stddev,
                                  options.normalize, options.seed);
}

}  // namespace fedsc
