// Synthetic union-of-subspaces data (Section VI-A of the paper): L random
// subspaces of dimension d in R^n with i.i.d. orthonormal bases; points are
// the bases times Gaussian coefficients, optionally noised and normalized to
// the unit sphere.

#ifndef FEDSC_DATA_SYNTHETIC_H_
#define FEDSC_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/matrix.h"

namespace fedsc {

// A labeled clustering dataset: points are columns.
struct Dataset {
  Matrix points;                // n x N
  std::vector<int64_t> labels;  // size N, values in [0, num_clusters)
  int64_t num_clusters = 0;
  // Ground-truth orthonormal bases of the generating subspaces (empty for
  // datasets without them). bases[l] is n x d_l.
  std::vector<Matrix> bases;
};

struct SyntheticOptions {
  int64_t ambient_dim = 20;          // n
  int64_t subspace_dim = 5;          // d
  int64_t num_subspaces = 20;        // L
  int64_t points_per_subspace = 100;
  // Per-coordinate additive Gaussian noise (applied before normalization).
  double noise_stddev = 0.0;
  bool normalize = true;
  uint64_t seed = 0x5eed'0001ULL;
};

// Random n x d matrix with orthonormal columns (QR of a Gaussian matrix).
Matrix RandomOrthonormalBasis(int64_t n, int64_t d, Rng* rng);

Result<Dataset> GenerateUnionOfSubspaces(const SyntheticOptions& options);

// Variant with per-subspace point counts (used for unbalanced datasets);
// counts.size() defines L.
Result<Dataset> GenerateUnionOfSubspaces(int64_t ambient_dim,
                                         int64_t subspace_dim,
                                         const std::vector<int64_t>& counts,
                                         double noise_stddev, bool normalize,
                                         uint64_t seed);

}  // namespace fedsc

#endif  // FEDSC_DATA_SYNTHETIC_H_
