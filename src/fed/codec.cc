#include "fed/codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "common/check.h"
#include "linalg/batch.h"
#include "linalg/blas.h"
#include "linalg/svd.h"

namespace fedsc {

namespace {

Status Corrupt(std::string reason) {
  return Status::WireCorrupt(std::move(reason));
}

// Packs `values` (each < 2^bits) little-endian at `bits` bits per value,
// zero-padding the final byte. Exactly ceil(n * bits / 8) bytes.
std::vector<uint8_t> PackBits(const std::vector<uint64_t>& values, int bits) {
  std::vector<uint8_t> out;
  out.reserve((values.size() * static_cast<size_t>(bits) + 7) / 8);
  uint64_t acc = 0;
  int filled = 0;
  for (uint64_t v : values) {
    acc |= v << filled;
    filled += bits;
    while (filled >= 8) {
      out.push_back(static_cast<uint8_t>(acc & 0xFF));
      acc >>= 8;
      filled -= 8;
    }
  }
  if (filled > 0) out.push_back(static_cast<uint8_t>(acc & 0xFF));
  return out;
}

// Inverse of PackBits; the caller guarantees payload holds >= count * bits
// bits (ParseWireMessage validated the exact byte count).
std::vector<uint64_t> UnpackBits(const uint8_t* payload, int64_t count,
                                 int bits) {
  const uint64_t mask =
      bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
  std::vector<uint64_t> values;
  values.reserve(static_cast<size_t>(count));
  uint64_t acc = 0;
  int filled = 0;
  size_t p = 0;
  for (int64_t i = 0; i < count; ++i) {
    while (filled < bits) {
      acc |= static_cast<uint64_t>(payload[p++]) << filled;
      filled += 8;
    }
    values.push_back(acc & mask);
    acc >>= bits;
    filled -= bits;
  }
  return values;
}

std::vector<uint8_t> F64Payload(const Matrix& m) {
  std::vector<uint8_t> payload(static_cast<size_t>(m.size()) * 8);
  if (!payload.empty()) {
    std::memcpy(payload.data(), m.data(), payload.size());
  }
  return payload;
}

WireSectionSpec F64Section(WireSectionKind kind, const Matrix& m) {
  WireSectionSpec section;
  section.kind = kind;
  section.dtype = WireDtype::kF64;
  section.rows = static_cast<uint32_t>(m.rows());
  section.cols = static_cast<uint32_t>(m.cols());
  section.payload = F64Payload(m);
  return section;
}

Matrix MatrixFromF64(const WireSectionView& view) {
  Matrix m(view.rows, view.cols);
  if (view.payload_bytes > 0) {
    std::memcpy(m.data(), view.payload, view.payload_bytes);
  }
  return m;
}

Result<std::vector<uint8_t>> EncodeRaw(const Matrix& samples,
                                       const CodecOptions& options) {
  WireHeader header;
  header.codec = static_cast<uint8_t>(CodecMode::kRawSamples);
  header.dtype = options.raw_f32 ? WireDtype::kF32 : WireDtype::kF64;
  header.rows = static_cast<uint32_t>(samples.rows());
  header.cols = static_cast<uint32_t>(samples.cols());

  WireSectionSpec section;
  section.kind = WireSectionKind::kSamples;
  section.dtype = header.dtype;
  section.rows = header.rows;
  section.cols = header.cols;
  if (options.raw_f32) {
    section.payload.resize(static_cast<size_t>(samples.size()) * 4);
    const double* src = samples.data();
    for (int64_t i = 0; i < samples.size(); ++i) {
      const float f = static_cast<float>(src[i]);
      std::memcpy(section.payload.data() + 4 * i, &f, 4);
    }
  } else {
    section.payload = F64Payload(samples);
  }
  return SerializeWireMessage(header, {std::move(section)});
}

}  // namespace

namespace internal_codec {

void QuantizeIndicesScalar(const double* src, int64_t count, double range,
                           double step, uint64_t* indices) {
  for (int64_t i = 0; i < count; ++i) {
    // Non-finite values cannot cross a quantized wire meaningfully; clamp
    // maps +-inf to the range edges and NaN to the bottom of the grid.
    double v = src[i];
    if (std::isnan(v)) v = -range;
    const double clamped = std::min(range, std::max(-range, v));
    indices[i] =
        static_cast<uint64_t>(std::llround((clamped + range) / step));
  }
}

void QuantizeIndices(const double* src, int64_t count, double range,
                     double step, uint64_t* indices) {
  // Branch-free body so the grid mapping autovectorizes. u >= 0 always, and
  // u - floor(u) is exact (Sterbenz for u >= 1, trivially for u < 1), so
  // floor(u) + (u - floor(u) >= 0.5) IS llround(u) — the scalar reference's
  // bits, not an approximation. The obvious floor(u + 0.5) would not be:
  // u + 0.5 can round up across the tie.
  for (int64_t i = 0; i < count; ++i) {
    double v = src[i];
    v = v == v ? v : -range;  // NaN -> bottom of the grid
    v = std::min(range, std::max(-range, v));
    const double u = (v + range) / step;
    const double f = std::floor(u);
    indices[i] = static_cast<uint64_t>(f + (u - f >= 0.5 ? 1.0 : 0.0));
  }
}

void DequantizeValuesScalar(const uint64_t* indices, int64_t count,
                            double range, double step, uint64_t top,
                            double* values) {
  for (int64_t i = 0; i < count; ++i) {
    // An index above the top grid level can only come from corruption the
    // CRC missed or a hostile encoder; clamp onto the grid rather than
    // extrapolating past the declared range.
    const double index =
        static_cast<double>(std::min<uint64_t>(indices[i], top));
    values[i] = -range + step * index;
  }
}

void DequantizeValues(const uint64_t* indices, int64_t count, double range,
                      double step, uint64_t top, double* values) {
  // Same arithmetic as the scalar reference with __restrict-free simple
  // bodies; the ternary min keeps the clamp branch-free for the vectorizer.
  for (int64_t i = 0; i < count; ++i) {
    const uint64_t clamped = indices[i] < top ? indices[i] : top;
    values[i] = -range + step * static_cast<double>(clamped);
  }
}

}  // namespace internal_codec

namespace {

Result<std::vector<uint8_t>> EncodeQuant(const Matrix& samples,
                                         const CodecOptions& options) {
  WireHeader header;
  header.codec = static_cast<uint8_t>(CodecMode::kUniformQuant);
  header.dtype = WireDtype::kPackedUint;
  header.quant_bits = static_cast<uint8_t>(options.quant_bits);
  header.rows = static_cast<uint32_t>(samples.rows());
  header.cols = static_cast<uint32_t>(samples.cols());
  header.quant_range = options.quant_range;

  // The same grid as the legacy in-place Channel quantizer: indices
  // round((clamped + range) / step) on the 2^bits-level uniform grid over
  // [-range, range], so the dequantized values are bit-identical to it.
  const double range = options.quant_range;
  const double levels =
      static_cast<double>((uint64_t{1} << options.quant_bits) - 1);
  const double step = 2.0 * range / levels;
  std::vector<uint64_t> indices(static_cast<size_t>(samples.size()));
  internal_codec::QuantizeIndices(samples.data(), samples.size(), range,
                                  step, indices.data());

  WireSectionSpec section;
  section.kind = WireSectionKind::kSamples;
  section.dtype = WireDtype::kPackedUint;
  section.rows = header.rows;
  section.cols = header.cols;
  section.payload = PackBits(indices, options.quant_bits);
  return SerializeWireMessage(header, {std::move(section)});
}

Result<std::vector<uint8_t>> EncodeBasisCoeffs(const Matrix& samples,
                                               const CodecOptions& options) {
  const int64_t rows = samples.rows();
  const int64_t cols = samples.cols();
  // Rank-revealing split X = U C. Degenerate inputs (no columns, zero
  // matrix) and splits that would not shrink the message fall back to raw
  // sections — kBasisCoeffs never costs bytes over kRawSamples.
  CodecOptions raw = options;
  raw.raw_f32 = false;
  if (rows == 0 || cols == 0) return EncodeRaw(samples, raw);
  // Batch-of-one through the batched basis API, pinned to the looped engine:
  // encoded payload bits are pinned by wire golden fixtures across versions,
  // and only kLooped reproduces the historical PrincipalSubspace bits (the
  // Gram engine reaches the same subspace with different low-order bits).
  BatchedSubspaceOptions batch;
  batch.rank = 0;
  batch.rel_tol = options.basis_rel_tol;
  batch.engine = BatchEngine::kLooped;
  std::vector<Result<Matrix>> fitted =
      BatchedPrincipalSubspace(std::vector<Matrix>{samples}, batch);
  Result<Matrix> basis = std::move(fitted[0]);
  if (!basis.ok()) return EncodeRaw(samples, raw);
  const int64_t k = basis->cols();
  const int64_t raw_bytes =
      static_cast<int64_t>(kWireSectionHeaderBytes) + 8 * rows * cols;
  const int64_t split_bytes =
      2 * static_cast<int64_t>(kWireSectionHeaderBytes) +
      8 * (rows * k + k * cols);
  if (split_bytes >= raw_bytes) return EncodeRaw(samples, raw);

  Matrix coeffs(k, cols);
  Gemm(Trans::kTrans, Trans::kNo, 1.0, *basis, samples, 0.0, &coeffs);

  WireHeader header;
  header.codec = static_cast<uint8_t>(CodecMode::kBasisCoeffs);
  header.dtype = WireDtype::kF64;
  header.rows = static_cast<uint32_t>(rows);
  header.cols = static_cast<uint32_t>(cols);
  std::vector<WireSectionSpec> sections;
  sections.push_back(F64Section(WireSectionKind::kBasis, *basis));
  sections.push_back(F64Section(WireSectionKind::kCoeffs, coeffs));
  return SerializeWireMessage(header, sections);
}

}  // namespace

const char* CodecModeName(CodecMode mode) {
  switch (mode) {
    case CodecMode::kRawSamples:
      return "raw";
    case CodecMode::kUniformQuant:
      return "quant";
    case CodecMode::kBasisCoeffs:
      return "basis";
  }
  return "unknown";
}

Status ValidateCodecOptions(const CodecOptions& options) {
  if (options.mode != CodecMode::kRawSamples &&
      options.mode != CodecMode::kUniformQuant &&
      options.mode != CodecMode::kBasisCoeffs) {
    return Status::InvalidArgument("unknown codec mode");
  }
  if (options.mode == CodecMode::kUniformQuant) {
    if (options.quant_bits < 2 || options.quant_bits > 32) {
      return Status::InvalidArgument(
          "kUniformQuant requires quant_bits in [2, 32], got " +
          std::to_string(options.quant_bits));
    }
    if (!(options.quant_range > 0.0) || !std::isfinite(options.quant_range)) {
      return Status::InvalidArgument(
          "kUniformQuant requires a positive finite quant_range, got " +
          std::to_string(options.quant_range));
    }
  }
  if (!(options.basis_rel_tol >= 0.0)) {
    return Status::InvalidArgument("basis_rel_tol must be >= 0");
  }
  if (options.limits.max_elements <= 0) {
    return Status::InvalidArgument("limits.max_elements must be positive");
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> EncodeUpload(const Matrix& samples,
                                          const CodecOptions& options) {
  FEDSC_RETURN_NOT_OK(ValidateCodecOptions(options));
  if (samples.rows() > UINT32_MAX || samples.cols() > UINT32_MAX ||
      samples.size() > options.limits.max_elements) {
    return Status::InvalidArgument(
        "upload shape " + std::to_string(samples.rows()) + "x" +
        std::to_string(samples.cols()) + " exceeds the wire format bounds");
  }
  switch (options.mode) {
    case CodecMode::kRawSamples:
      return EncodeRaw(samples, options);
    case CodecMode::kUniformQuant:
      return EncodeQuant(samples, options);
    case CodecMode::kBasisCoeffs:
      return EncodeBasisCoeffs(samples, options);
  }
  return Status::InvalidArgument("unknown codec mode");
}

Result<DecodedUpload> DecodeUpload(const uint8_t* data, size_t size,
                                   const CodecOptions& options) {
  FEDSC_ASSIGN_OR_RETURN(WireMessage message,
                         ParseWireMessage(data, size, options.limits));
  const WireHeader& header = message.header;
  if (header.codec > static_cast<uint8_t>(CodecMode::kBasisCoeffs)) {
    return Corrupt("unknown codec byte " + std::to_string(header.codec));
  }
  DecodedUpload out;
  out.mode = static_cast<CodecMode>(header.codec);
  out.version = header.version;

  switch (out.mode) {
    case CodecMode::kRawSamples: {
      if (message.sections.size() != 1) {
        return Corrupt("raw codec expects 1 section, found " +
                       std::to_string(message.sections.size()));
      }
      const WireSectionView& section = message.sections[0];
      if (section.kind != WireSectionKind::kSamples) {
        return Corrupt("raw codec expects a samples section, found '" +
                       std::string(WireSectionKindName(section.kind)) + "'");
      }
      if (section.dtype != WireDtype::kF64 &&
          section.dtype != WireDtype::kF32) {
        return Corrupt("raw codec cannot carry a packed-uint section");
      }
      if (section.rows != header.rows || section.cols != header.cols) {
        return Corrupt("samples section shape disagrees with the header");
      }
      if (section.dtype == WireDtype::kF64) {
        out.samples = MatrixFromF64(section);
      } else {
        out.samples = Matrix(section.rows, section.cols);
        double* dst = out.samples.data();
        for (int64_t i = 0; i < out.samples.size(); ++i) {
          float f;
          std::memcpy(&f, section.payload + 4 * i, 4);
          dst[i] = static_cast<double>(f);
        }
      }
      return out;
    }
    case CodecMode::kUniformQuant: {
      if (message.sections.size() != 1) {
        return Corrupt("quant codec expects 1 section, found " +
                       std::to_string(message.sections.size()));
      }
      const WireSectionView& section = message.sections[0];
      if (section.kind != WireSectionKind::kSamples ||
          section.dtype != WireDtype::kPackedUint) {
        return Corrupt("quant codec expects one packed samples section");
      }
      if (section.rows != header.rows || section.cols != header.cols) {
        return Corrupt("samples section shape disagrees with the header");
      }
      const int bits = header.quant_bits;
      if (bits < 2 || bits > 32) {
        return Corrupt("quant_bits " + std::to_string(bits) +
                       " outside [2, 32]");
      }
      const double range = header.quant_range;
      if (!std::isfinite(range) || range <= 0.0) {
        return Corrupt("quant_range is not a positive finite number");
      }
      const double levels =
          static_cast<double>((uint64_t{1} << bits) - 1);
      const double step = 2.0 * range / levels;
      const int64_t count = static_cast<int64_t>(section.rows) *
                            static_cast<int64_t>(section.cols);
      const std::vector<uint64_t> indices =
          UnpackBits(section.payload, count, bits);
      out.samples = Matrix(section.rows, section.cols);
      internal_codec::DequantizeValues(indices.data(), count, range, step,
                                       static_cast<uint64_t>(levels),
                                       out.samples.data());
      return out;
    }
    case CodecMode::kBasisCoeffs: {
      if (message.sections.size() != 2) {
        return Corrupt("basis codec expects 2 sections, found " +
                       std::to_string(message.sections.size()));
      }
      const WireSectionView& basis = message.sections[0];
      const WireSectionView& coeffs = message.sections[1];
      if (basis.kind != WireSectionKind::kBasis ||
          coeffs.kind != WireSectionKind::kCoeffs) {
        return Corrupt("basis codec expects sections [basis, coeffs]");
      }
      if (basis.dtype != WireDtype::kF64 ||
          coeffs.dtype != WireDtype::kF64) {
        return Corrupt("basis codec sections must be f64");
      }
      if (basis.rows != header.rows || coeffs.cols != header.cols ||
          basis.cols != coeffs.rows) {
        return Corrupt(
            "basis/coeffs shapes are inconsistent: basis " +
            std::to_string(basis.rows) + "x" + std::to_string(basis.cols) +
            ", coeffs " + std::to_string(coeffs.rows) + "x" +
            std::to_string(coeffs.cols) + ", header " +
            std::to_string(header.rows) + "x" + std::to_string(header.cols));
      }
      const Matrix u = MatrixFromF64(basis);
      const Matrix c = MatrixFromF64(coeffs);
      out.samples = Matrix(header.rows, header.cols);
      if (out.samples.size() > 0 && u.cols() > 0) {
        Gemm(Trans::kNo, Trans::kNo, 1.0, u, c, 0.0, &out.samples);
      }
      return out;
    }
  }
  return Corrupt("unknown codec byte " + std::to_string(header.codec));
}

Result<DecodedUpload> DecodeUpload(const std::vector<uint8_t>& wire,
                                   const CodecOptions& options) {
  return DecodeUpload(wire.data(), wire.size(), options);
}

int64_t EncodedWireBytes(int64_t rows, int64_t cols,
                         const CodecOptions& options) {
  const int64_t overhead = static_cast<int64_t>(kWireHeaderBytes) +
                           static_cast<int64_t>(kWireSectionHeaderBytes);
  switch (options.mode) {
    case CodecMode::kUniformQuant:
      return overhead + WirePayloadBytes(WireDtype::kPackedUint, rows, cols,
                                         options.quant_bits);
    case CodecMode::kRawSamples:
      return overhead +
             WirePayloadBytes(options.raw_f32 ? WireDtype::kF32
                                              : WireDtype::kF64,
                              rows, cols, 0);
    case CodecMode::kBasisCoeffs:
      // Data-dependent; the raw fallback bounds it from above.
      return overhead + WirePayloadBytes(WireDtype::kF64, rows, cols, 0);
  }
  return -1;
}

}  // namespace fedsc
