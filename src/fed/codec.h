// Uplink codecs over the wire format (fed/wire.h): how a device's sample
// matrix becomes the byte stream a transport would carry.
//
// Three modes, dispatched by CodecOptions::mode the same way
// GemmOptions::kernel picks a product engine (a pinnable enum whose choice
// is a pure function of the options, never of data-dependent timing):
//
//   kRawSamples   — the paper's uplink: every D-dim sample column shipped
//                   verbatim (f64 bit-exactly; optionally f32).
//   kUniformQuant — Section IV-E's q-bit uniform quantizer, but *actually
//                   serialized*: indices packed at quant_bits bits each, so
//                   the measured wire bytes equal what a real transport
//                   would carry.
//   kBasisCoeffs  — subspace-aware compression: when the S uploaded columns
//                   span a rank-k subspace with k < S (the m > 1
//                   samples-per-cluster regime), ship an orthonormal D x k
//                   basis plus the k x S coefficient matrix and reconstruct
//                   X = U * C server-side — O(k (D + S)) values instead of
//                   O(D S). Falls back to raw sections whenever that would
//                   not shrink the message, so it never costs bytes.
//
// EncodeUpload / DecodeUpload round-trip exactly for kRawSamples (bit for
// bit) and to numerical precision for kBasisCoeffs at full numerical rank;
// kUniformQuant incurs at most a half-step error inside the clamp range
// (tests/codec_test.cc sweeps all three across dtypes, degenerate shapes,
// and bit widths). DecodeUpload returns typed Status on ANY malformed
// input — never crashing or reading out of bounds (tests/wire_fuzz_test.cc).

#ifndef FEDSC_FED_CODEC_H_
#define FEDSC_FED_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "fed/wire.h"
#include "linalg/matrix.h"

namespace fedsc {

enum class CodecMode : uint8_t {
  kRawSamples = 0,
  kUniformQuant = 1,
  kBasisCoeffs = 2,
};

const char* CodecModeName(CodecMode mode);

struct CodecOptions {
  CodecMode mode = CodecMode::kRawSamples;
  // kUniformQuant: bits per value (in [2, 32]) and the symmetric clamp
  // range. The grid matches the legacy in-place Channel quantizer exactly,
  // so switching a quantized channel to the serialized codec is
  // result-preserving.
  int quant_bits = 8;
  double quant_range = 1.5;
  // kRawSamples: ship f32 instead of f64 (halves payload, lossy rounding).
  bool raw_f32 = false;
  // kBasisCoeffs: singular directions below basis_rel_tol * sigma_1 are
  // dropped from the basis. The tight default keeps reconstruction exact to
  // numerical precision; loosening it trades fidelity for bytes.
  double basis_rel_tol = 1e-10;
  // Decoder resource bounds (see WireLimits).
  WireLimits limits;
};

Status ValidateCodecOptions(const CodecOptions& options);

struct DecodedUpload {
  Matrix samples;
  // What the wire actually carried: kBasisCoeffs encoders fall back to
  // kRawSamples when compression would not pay, and the header records the
  // truth.
  CodecMode mode = CodecMode::kRawSamples;
  uint16_t version = kWireVersion;
};

// Serializes `samples` under `options` into a self-contained wire message.
// Pure function of (samples, options) — bit-identical across thread counts
// and platforms.
Result<std::vector<uint8_t>> EncodeUpload(const Matrix& samples,
                                          const CodecOptions& options);

// Parses, validates (magic, version, CRCs, shape consistency) and inverts
// the codec. Every failure is Status(kWireCorrupt, reason); `limits` bounds
// what a hostile length field can make the decoder allocate.
Result<DecodedUpload> DecodeUpload(const uint8_t* data, size_t size,
                                   const CodecOptions& options = {});
Result<DecodedUpload> DecodeUpload(const std::vector<uint8_t>& wire,
                                   const CodecOptions& options = {});

// Exact serialized size in bytes of a rows x cols upload under `options`,
// for the shape-determined modes (kRawSamples, kUniformQuant). For
// kBasisCoeffs the size depends on the data's numerical rank, so this
// returns the raw-fallback upper bound. Used by the accounting regression
// tests and the comm-cost bench.
int64_t EncodedWireBytes(int64_t rows, int64_t cols,
                         const CodecOptions& options);

namespace internal_codec {
// The quantizer grid kernels behind EncodeQuant / DecodeUpload, exposed for
// the bit-equality regression tests. Each ships in two forms: the scalar
// reference (the loop the codec ran historically, kept as the oracle) and
// the vectorizable hot path the codec now calls, which must produce
// IDENTICAL bits — the vector form replaces std::llround with the exact
// floor(u) + (u - floor(u) >= 0.5) decomposition (u >= 0 always, and
// u - floor(u) is exact in binary floating point), so the grid is the same
// to the last ulp, not approximately.

// indices[i] = llround((clamp(src[i]) + range) / step) on the 2^bits-level
// grid over [-range, range]; NaN maps to the bottom of the grid, +-inf to
// the range edges. `step` must be 2 * range / (2^bits - 1).
void QuantizeIndices(const double* src, int64_t count, double range,
                     double step, uint64_t* indices);
void QuantizeIndicesScalar(const double* src, int64_t count, double range,
                           double step, uint64_t* indices);

// values[i] = -range + step * min(indices[i], top): the grid inverse, with
// out-of-grid indices (corruption the CRC missed, hostile encoders) clamped
// onto the top level instead of extrapolating past the declared range.
void DequantizeValues(const uint64_t* indices, int64_t count, double range,
                      double step, uint64_t top, double* values);
void DequantizeValuesScalar(const uint64_t* indices, int64_t count,
                            double range, double step, uint64_t top,
                            double* values);
}  // namespace internal_codec

}  // namespace fedsc

#endif  // FEDSC_FED_CODEC_H_
