#include "fed/defense.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "linalg/blas.h"

namespace fedsc {

namespace {

// Relative edge rule: a device pair is linked only when its best sample
// pair is at least this fraction of the stronger device's own best
// cross-device coherence. Colluders cohere near-perfectly with each other
// (best ~1), so their weaker incidental alignments with honest subspaces
// fall below the fraction and the clique stays isolated, independent of
// where the global noise threshold theta lands.
constexpr double kRelativeEdgeFraction = 0.85;

// Value-based order statistics: insensitive to the order the inputs were
// collected in, which is what makes the parallel collection passes safe.
double MedianOf(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const size_t n = values.size();
  const size_t mid = n / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double median = values[mid];
  if (n % 2 == 0) {
    std::nth_element(values.begin(), values.begin() + (mid - 1),
                     values.begin() + mid);
    median = 0.5 * (median + values[mid - 1]);
  }
  return median;
}

double MadAbout(const std::vector<double>& values, double median) {
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::fabs(v - median));
  return MedianOf(std::move(deviations));
}

std::string Format3(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3g", value);
  return buffer;
}

}  // namespace

Status ValidateDefenseOptions(const DefenseOptions& options) {
  const auto nonnegative = [](double value, const char* name) {
    return value >= 0.0
               ? Status::OK()
               : Status::InvalidArgument(std::string("defense ") + name +
                                         " must be nonnegative, got " +
                                         std::to_string(value));
  };
  Status status = nonnegative(options.coherence_mad_multiplier,
                              "coherence_mad_multiplier");
  if (!status.ok()) return status;
  status = nonnegative(options.support_mad_multiplier, "support_mad_multiplier");
  if (!status.ok()) return status;
  status = nonnegative(options.min_support_mad, "min_support_mad");
  if (!status.ok()) return status;
  status = nonnegative(options.residual_mad_multiplier,
                       "residual_mad_multiplier");
  if (!status.ok()) return status;
  status = nonnegative(options.min_residual_mad, "min_residual_mad");
  if (!status.ok()) return status;
  status = nonnegative(options.min_screen_residual, "min_screen_residual");
  if (!status.ok()) return status;
  if (options.max_screen_support_fraction < 0.0 ||
      options.max_screen_support_fraction > 1.0) {
    return Status::InvalidArgument(
        "defense max_screen_support_fraction must lie in [0, 1], got " +
        std::to_string(options.max_screen_support_fraction));
  }
  if (options.peer_rank < 1) {
    return Status::InvalidArgument("defense peer_rank must be >= 1, got " +
                                   std::to_string(options.peer_rank));
  }
  if (options.min_pool_devices < 2) {
    return Status::InvalidArgument(
        "defense min_pool_devices must be >= 2, got " +
        std::to_string(options.min_pool_devices));
  }
  if (options.trim_fraction < 0.0 || options.trim_fraction > 0.5) {
    return Status::InvalidArgument(
        "defense trim_fraction must lie in [0, 0.5], got " +
        std::to_string(options.trim_fraction));
  }
  if (options.max_device_fraction <= 0.0 ||
      options.max_device_fraction > 1.0) {
    return Status::InvalidArgument(
        "defense max_device_fraction must lie in (0, 1], got " +
        std::to_string(options.max_device_fraction));
  }
  return Status::OK();
}

Result<DefensePlan> DefensePlan::Create(const DefenseOptions& options) {
  Status status = ValidateDefenseOptions(options);
  if (!status.ok()) return status;
  return DefensePlan(options);
}

ScreeningOutcome DefensePlan::Screen(
    const Matrix& samples, const std::vector<int64_t>& sample_device,
    int num_threads) const {
  FEDSC_CHECK(static_cast<int64_t>(sample_device.size()) == samples.cols())
      << "one owning device per pooled sample";
  const int64_t n = samples.rows();
  const int64_t m = samples.cols();

  ScreeningOutcome outcome;

  // Distinct pooled devices in ascending order, and a dense index for each.
  std::map<int64_t, int64_t> device_index;
  for (int64_t z : sample_device) device_index.emplace(z, 0);
  int64_t num_devices = 0;
  for (auto& [z, idx] : device_index) idx = num_devices++;
  outcome.verdicts.resize(static_cast<size_t>(num_devices));
  {
    int64_t slot = 0;
    for (const auto& [z, idx] : device_index) {
      outcome.verdicts[static_cast<size_t>(slot++)].device = z;
    }
  }
  if (num_devices < options_.min_pool_devices || m < 2 || n < 1) {
    outcome.skipped = true;
    return outcome;
  }
  std::vector<int64_t> owner(static_cast<size_t>(m), 0);
  for (int64_t j = 0; j < m; ++j) {
    owner[static_cast<size_t>(j)] =
        device_index.at(sample_device[static_cast<size_t>(j)]);
  }

  // Unit-normalized copy of the pool, so |<x_i, x_j>| is a true coherence
  // and the peer residual lands in [0, 1].
  Matrix x = samples;
  ParallelForRanges(0, m, num_threads,
                    [&](int64_t begin, int64_t end, int /*chunk*/) {
                      for (int64_t j = begin; j < end; ++j) {
                        double* col = x.ColData(j);
                        const double norm = Norm2(col, n);
                        if (norm > 0.0) Scal(1.0 / norm, col, n);
                      }
                    });
  const Matrix gram = Gram(x, num_threads);

  // Pooled cross-device coherence distribution -> threshold theta. The
  // collection order is irrelevant: the median/MAD are value-based.
  std::vector<double> cross;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = i + 1; j < m; ++j) {
      if (owner[static_cast<size_t>(i)] == owner[static_cast<size_t>(j)]) {
        continue;
      }
      cross.push_back(std::fabs(gram(i, j)));
    }
  }
  if (cross.empty()) {
    outcome.skipped = true;
    return outcome;
  }
  const double coherence_median = MedianOf(cross);
  const double coherence_mad = MadAbout(cross, coherence_median);
  const double theta =
      coherence_median + options_.coherence_mad_multiplier * coherence_mad;
  outcome.coherence_threshold = theta;

  // Per-sample pass: the best coherence from sample j to every other
  // device, and the peer-subspace residual of sample j. Each parallel
  // iteration writes only slots of sample j — disjoint across chunks.
  const int64_t rank =
      std::min<int64_t>(options_.peer_rank, std::max<int64_t>(m - 1, 1));
  std::vector<double> pair_best(
      static_cast<size_t>(m) * static_cast<size_t>(num_devices), 0.0);
  std::vector<double> sample_residual(static_cast<size_t>(m), 1.0);
  ParallelForRanges(0, m, num_threads, [&](int64_t begin, int64_t end,
                                           int /*chunk*/) {
    std::vector<int64_t> peers;
    Matrix basis(n, rank);
    std::vector<double> coeff(static_cast<size_t>(rank), 0.0);
    for (int64_t j = begin; j < end; ++j) {
      double* row = pair_best.data() + static_cast<size_t>(j) * num_devices;
      // Cross-device peers ranked by coherence (ties by lowest index).
      peers.clear();
      for (int64_t i = 0; i < m; ++i) {
        if (owner[static_cast<size_t>(i)] == owner[static_cast<size_t>(j)]) {
          continue;
        }
        const double coherence = std::fabs(gram(i, j));
        if (coherence > row[owner[static_cast<size_t>(i)]]) {
          row[owner[static_cast<size_t>(i)]] = coherence;
        }
        peers.push_back(i);
      }
      if (peers.empty()) continue;
      std::sort(peers.begin(), peers.end(), [&](int64_t a, int64_t b) {
        const double ca = std::fabs(gram(a, j));
        const double cb = std::fabs(gram(b, j));
        if (ca != cb) return ca > cb;
        return a < b;
      });
      // Modified Gram-Schmidt basis of the top-rank peers; near-dependent
      // peers contribute nothing (their orthogonalized direction vanishes).
      const int64_t take =
          std::min<int64_t>(rank, static_cast<int64_t>(peers.size()));
      int64_t basis_cols = 0;
      for (int64_t p = 0; p < take; ++p) {
        basis.SetCol(basis_cols, x.ColData(peers[static_cast<size_t>(p)]));
        double* v = basis.ColData(basis_cols);
        for (int64_t b = 0; b < basis_cols; ++b) {
          const double proj = Dot(basis.ColData(b), v, n);
          Axpy(-proj, basis.ColData(b), v, n);
        }
        const double norm = Norm2(v, n);
        if (norm > 1e-10) {
          Scal(1.0 / norm, v, n);
          ++basis_cols;
        }
      }
      if (basis_cols == 0) continue;
      // Residual of x_j against span(basis): ||x_j||^2 = 1, so
      // residual^2 = 1 - sum_b <x_j, q_b>^2 (clamped against roundoff).
      double captured = 0.0;
      for (int64_t b = 0; b < basis_cols; ++b) {
        coeff[static_cast<size_t>(b)] = Dot(basis.ColData(b), x.ColData(j), n);
        captured +=
            coeff[static_cast<size_t>(b)] * coeff[static_cast<size_t>(b)];
      }
      sample_residual[static_cast<size_t>(j)] =
          std::sqrt(std::max(0.0, 1.0 - captured));
    }
  });

  // Device-level reduction (serial over devices: cheap, and deterministic by
  // construction).
  std::vector<double> support(static_cast<size_t>(num_devices), 0.0);
  std::vector<double> residual(
      static_cast<size_t>(num_devices), std::numeric_limits<double>::max());
  for (int64_t j = 0; j < m; ++j) {
    const int64_t z = owner[static_cast<size_t>(j)];
    residual[static_cast<size_t>(z)] =
        std::min(residual[static_cast<size_t>(z)],
                 sample_residual[static_cast<size_t>(j)]);
  }
  // Best sample-pair coherence per device pair. Each direction scans its own
  // device's samples, and both see the same symmetric |gram| entries, so the
  // matrix comes out symmetric without any cross-writes.
  std::vector<double> device_pair(
      static_cast<size_t>(num_devices) * static_cast<size_t>(num_devices),
      0.0);
  for (int64_t j = 0; j < m; ++j) {
    const int64_t z = owner[static_cast<size_t>(j)];
    const double* row = pair_best.data() + static_cast<size_t>(j) * num_devices;
    for (int64_t other = 0; other < num_devices; ++other) {
      if (other == z) continue;
      double& best = device_pair[static_cast<size_t>(z) * num_devices + other];
      if (row[other] > best) best = row[other];
    }
  }
  std::vector<double> best_link(static_cast<size_t>(num_devices), 0.0);
  for (int64_t z = 0; z < num_devices; ++z) {
    for (int64_t other = 0; other < num_devices; ++other) {
      if (other == z) continue;
      best_link[static_cast<size_t>(z)] =
          std::max(best_link[static_cast<size_t>(z)],
                   device_pair[static_cast<size_t>(z) * num_devices + other]);
    }
  }

  // Symmetric device support graph: edge z <-> other when their best sample
  // pair clears the noise threshold theta AND the relative edge rule —
  // comparable to the weaker endpoint's own best link. Using the weaker
  // endpoint means a device's best edge always passes the relative rule, so
  // an honest device with modest coherences can never be isolated by a
  // strongly-linked partner; colluder-to-honest edges still die because both
  // endpoints' best links are far above the incidental alignment.
  std::vector<uint8_t> adjacent(
      static_cast<size_t>(num_devices) * static_cast<size_t>(num_devices), 0);
  for (int64_t z = 0; z < num_devices; ++z) {
    for (int64_t other = z + 1; other < num_devices; ++other) {
      const double pair =
          device_pair[static_cast<size_t>(z) * num_devices + other];
      const double relative_cut =
          kRelativeEdgeFraction * std::min(best_link[static_cast<size_t>(z)],
                                           best_link[static_cast<size_t>(other)]);
      if (pair >= theta && pair >= relative_cut) {
        adjacent[static_cast<size_t>(z) * num_devices + other] = 1;
        adjacent[static_cast<size_t>(other) * num_devices + z] = 1;
      }
    }
  }

  // Connected components of the support graph (union-find; component
  // membership is independent of edge processing order, so deterministic).
  // Honest devices chain through shared subspaces into large components; a
  // colluding clique supports only itself and stays an isolated island, no
  // matter how mutually coherent its members are.
  std::vector<int64_t> parent(static_cast<size_t>(num_devices));
  for (int64_t z = 0; z < num_devices; ++z) parent[static_cast<size_t>(z)] = z;
  const auto find = [&](int64_t z) {
    while (parent[static_cast<size_t>(z)] != z) {
      parent[static_cast<size_t>(z)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(z)])];
      z = parent[static_cast<size_t>(z)];
    }
    return z;
  };
  for (int64_t z = 0; z < num_devices; ++z) {
    for (int64_t other = z + 1; other < num_devices; ++other) {
      if (adjacent[static_cast<size_t>(z) * num_devices + other] == 0) continue;
      const int64_t root_z = find(z);
      const int64_t root_other = find(other);
      if (root_z != root_other) {
        parent[static_cast<size_t>(std::max(root_z, root_other))] =
            std::min(root_z, root_other);
      }
    }
  }
  std::vector<int64_t> component_size(static_cast<size_t>(num_devices), 0);
  for (int64_t z = 0; z < num_devices; ++z) {
    ++component_size[static_cast<size_t>(find(z))];
  }
  for (int64_t z = 0; z < num_devices; ++z) {
    support[static_cast<size_t>(z)] =
        static_cast<double>(component_size[static_cast<size_t>(find(z))]);
  }

  const double support_median = MedianOf(support);
  const double support_mad =
      std::max(MadAbout(support, support_median), options_.min_support_mad);
  const double support_cut =
      support_median - options_.support_mad_multiplier * support_mad;
  const double support_ceiling = options_.max_screen_support_fraction *
                                 static_cast<double>(num_devices);

  const double residual_median = MedianOf(residual);
  const double residual_mad =
      std::max(MadAbout(residual, residual_median), options_.min_residual_mad);
  const double residual_cut =
      residual_median + options_.residual_mad_multiplier * residual_mad;

  for (int64_t z = 0; z < num_devices; ++z) {
    DeviceScreenVerdict& verdict = outcome.verdicts[static_cast<size_t>(z)];
    verdict.support = static_cast<int64_t>(support[static_cast<size_t>(z)]);
    verdict.support_cut = support_cut;
    verdict.residual = residual[static_cast<size_t>(z)];
    verdict.residual_cut = residual_cut;
    const bool support_screened =
        support[static_cast<size_t>(z)] < support_cut &&
        support[static_cast<size_t>(z)] < support_ceiling;
    const bool residual_screened =
        verdict.residual > residual_cut &&
        verdict.residual > options_.min_screen_residual;
    verdict.screened = support_screened || residual_screened;
    if (support_screened) {
      verdict.statistic = "coherence component " +
                          std::to_string(verdict.support) + "/" +
                          std::to_string(num_devices) + " below cut " +
                          Format3(support_cut);
    } else if (residual_screened) {
      verdict.statistic = "peer residual " + Format3(verdict.residual) +
                          " above cut " + Format3(residual_cut);
    }
    if (verdict.screened) ++outcome.screened_devices;
  }
  FEDSC_METRIC_COUNTER("fed.defense.screens").Increment();
  FEDSC_METRIC_COUNTER("fed.defense.screened_devices")
      .Add(outcome.screened_devices);
  return outcome;
}

}  // namespace fedsc
