// Byzantine-robust central aggregation: server-side screening of accepted
// uploads before pooling.
//
// The one-shot protocol gives every device exactly one chance to poison the
// central solve: a well-formed adversarial upload (fed/faults.h kByzantine)
// passes wire CRCs and ValidateUpload's norm bounds, and there is no
// iterative averaging to dilute it. A DefensePlan closes that gap with two
// statistical screens run on the post-validation pool (mirroring the
// FaultPlan / CodecOptions options-struct + pure-dispatch contract):
//
//   1. Cross-device coherence support. Honest samples live on one of a few
//      low-dimensional subspaces that the partition spreads over many
//      devices, so strongly coherent sample pairs chain honest devices
//      through shared subspaces into large connected components of the
//      device support graph. Two devices are linked when their best sample
//      pair clears a MAD-derived noise threshold theta AND is comparable to
//      the linked devices' own best cross-device coherence (the relative
//      rule): a colluding clique's members cohere near-perfectly with each
//      other, so their weaker incidental alignments with honest subspaces
//      fail the relative rule and the clique stays an isolated island no
//      matter where the global threshold lands. An uncoordinated random
//      upload is near-orthogonal to everything and isolated outright. The
//      screen is a median-absolute-deviation outlier test on the per-device
//      component size: a device whose component falls a MAD-scaled margin
//      below the pool median — and is a minority (below
//      max_screen_support_fraction of the pooled devices, the standing
//      Byzantine assumption) — is screened.
//
//   2. Peer-subspace self-consistency. Each sample is projected onto the
//      span of its most-coherent samples from other devices; honest samples
//      reconstruct to noise level (their peers span the same subspace),
//      while subspace-mimicry attacks — samples rotated a controlled angle
//      off a true subspace — leave a residual ~ sin(angle). Devices whose
//      *best* sample residual is a MAD outlier above the pool are screened.
//
// Determinism contract: every reduction runs on ParallelForRanges with each
// parallel iteration writing a disjoint output slot, and the pooled order
// statistics (median / MAD) are value-based, so the screening verdicts are
// bit-identical for any num_threads. Screening consumes no RNG draws:
// defense off (the default) reproduces pre-defense results bit-for-bit.

#ifndef FEDSC_FED_DEFENSE_H_
#define FEDSC_FED_DEFENSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/kmeans.h"
#include "common/result.h"
#include "linalg/matrix.h"

namespace fedsc {

struct DefenseOptions {
  // Master switch. Off: RunFedSc and FedScServer behave exactly as before
  // this subsystem existed (no screening, no robust k-engine).
  bool enabled = false;

  // --- Screen 1: cross-device coherence support ---
  // Noise threshold theta = median + coherence_mad_multiplier * MAD over the
  // pooled cross-device |<s_i, s_j>| distribution; a device pair can only be
  // linked by a sample pair above theta (the relative edge rule in
  // defense.cc prunes the survivors further).
  double coherence_mad_multiplier = 3.0;
  // A device is support-screened when its support-graph component size falls
  // below median_size - support_mad_multiplier * max(MAD, min_support_mad)
  // AND below max_screen_support_fraction of the pooled devices. The MAD
  // floor keeps a degenerate (all-equal) component distribution from
  // screening everything below the median; the fraction guard encodes the
  // standing Byzantine assumption (an adversarial clique is a minority) and
  // protects legitimate small subspace groups larger than that minority.
  double support_mad_multiplier = 3.0;
  double min_support_mad = 0.5;
  double max_screen_support_fraction = 0.3;

  // --- Screen 2: peer-subspace self-consistency ---
  // Number of most-coherent cross-device peers spanning the reference
  // subspace each sample is reconstructed from. Deliberately larger than a
  // typical subspace dimension: honest peers beyond dim d cost nothing
  // (near-dependent directions vanish in the orthogonalization), while too
  // few peers can under-span the subspace and false-screen honest devices.
  int64_t peer_rank = 6;
  // A device is residual-screened when even its best (minimum) sample
  // residual exceeds median + residual_mad_multiplier * max(MAD,
  // min_residual_mad) AND the absolute floor min_screen_residual (so noise
  // on a clean pool can never trip the screen).
  double residual_mad_multiplier = 4.0;
  double min_residual_mad = 0.02;
  double min_screen_residual = 0.15;

  // Below this many pooled devices the order statistics are meaningless and
  // screening is a no-op (every device passes).
  int64_t min_pool_devices = 4;

  // --- Robust central k-engine wiring (cluster/kmeans.h) ---
  // Applied to the central spectral k-means when the defense is enabled:
  // trimmed assignment fraction, robust center estimator, and the per-device
  // influence cap (no device contributes more than this fraction of any
  // cluster's update mass).
  double trim_fraction = 0.1;
  KMeansCenter robust_center = KMeansCenter::kCoordinateMedian;
  double max_device_fraction = 0.5;
};

Status ValidateDefenseOptions(const DefenseOptions& options);

// One pooled device's screening verdict with the statistics behind it.
struct DeviceScreenVerdict {
  int64_t device = 0;
  bool screened = false;
  // Size of this device's connected component in the device support graph
  // (devices linked by a sample pair clearing theta and the relative edge
  // rule; includes the device itself), and the cut it was tested against.
  int64_t support = 0;
  double support_cut = 0.0;
  // Best (minimum over the device's samples) peer-subspace residual, and
  // the cut it was tested against.
  double residual = 0.0;
  double residual_cut = 0.0;
  // Human-readable triggering statistic ("coherence component 2/24 below
  // cut 20.5"); empty when the device passed.
  std::string statistic;
};

struct ScreeningOutcome {
  // One verdict per pooled device, in ascending device order.
  std::vector<DeviceScreenVerdict> verdicts;
  // Pool-derived coherence threshold theta (0 when screening was skipped).
  double coherence_threshold = 0.0;
  int64_t screened_devices = 0;
  // True when the pool was too small (min_pool_devices) to screen.
  bool skipped = false;
};

// Immutable screening configuration; Screen() is a pure function of
// (options, samples, sample_device) — bit-identical for any num_threads.
class DefensePlan {
 public:
  DefensePlan() = default;

  // Validates thresholds (multipliers nonnegative, fractions in range).
  static Result<DefensePlan> Create(const DefenseOptions& options);

  const DefenseOptions& options() const { return options_; }
  bool enabled() const { return options_.enabled; }

  // Screens the pooled accepted uploads: `samples` holds every accepted
  // column (n x m) and sample_device[j] names the owning device of column j.
  // Returns a verdict for every distinct device present. Never fails: an
  // undersized pool yields skipped = true with every device passing.
  ScreeningOutcome Screen(const Matrix& samples,
                          const std::vector<int64_t>& sample_device,
                          int num_threads) const;

 private:
  explicit DefensePlan(const DefenseOptions& options) : options_(options) {}

  DefenseOptions options_;
};

}  // namespace fedsc

#endif  // FEDSC_FED_DEFENSE_H_
