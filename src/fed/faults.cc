#include "fed/faults.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <sstream>

#include "common/metrics.h"
#include "fed/wire.h"
#include "linalg/blas.h"

namespace fedsc {

namespace {

// The detectable corruption classes a corrupt device cycles through, in
// order (ValidateUpload must quarantine every one of them).
constexpr PayloadFault kCorruptionCycle[] = {
    PayloadFault::kTruncate,   PayloadFault::kDuplicate,
    PayloadFault::kCorruptNan, PayloadFault::kCorruptDim,
    PayloadFault::kCorruptNorm,
};

// The wire-damage classes a faulted transport cycles through, in order
// (ParseWireMessage must detect every one of them).
constexpr WireFault kWireFaultCycle[] = {
    WireFault::kTruncate,  WireFault::kBitFlipHeader,
    WireFault::kBitFlipPayload, WireFault::kCrcStomp,
    WireFault::kLengthLie,
};

// Stream constant deriving the colluders' shared fake-subspace basis from
// the plan seed: every colluder mixes the same value, so they agree on the
// subspace without any cross-device draw.
constexpr uint64_t kColludeStream = 0xC011'0DE5'EEDULL;

// Gram-Schmidt over `vectors` (columns), dropping near-dependent columns.
// Deterministic; always returns at least one unit column when any input
// column is nonzero.
Matrix Orthonormalized(const Matrix& vectors) {
  const int64_t n = vectors.rows();
  Matrix basis(n, vectors.cols());
  int64_t rank = 0;
  for (int64_t j = 0; j < vectors.cols(); ++j) {
    std::vector<double> v(vectors.ColData(j), vectors.ColData(j) + n);
    for (int64_t r = 0; r < rank; ++r) {
      const double dot = Dot(basis.ColData(r), v.data(), n);
      Axpy(-dot, basis.ColData(r), v.data(), n);
    }
    const double norm = Norm2(v.data(), n);
    if (norm <= 1e-12) continue;
    Scal(1.0 / norm, v.data(), n);
    basis.SetCol(rank++, v.data());
  }
  return basis.ColRange(0, std::max<int64_t>(rank, 1));
}

Status CheckRate(double value, const char* name) {
  if (!(value >= 0.0 && value <= 1.0)) {
    return Status::InvalidArgument(std::string(name) +
                                   " must lie in [0, 1], got " +
                                   std::to_string(value));
  }
  return Status::OK();
}

bool ColumnFinite(const double* col, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(col[i])) return false;
  }
  return true;
}

}  // namespace

const char* PayloadFaultName(PayloadFault fault) {
  switch (fault) {
    case PayloadFault::kNone:
      return "none";
    case PayloadFault::kTruncate:
      return "truncate";
    case PayloadFault::kDuplicate:
      return "duplicate";
    case PayloadFault::kCorruptNan:
      return "corrupt-nan";
    case PayloadFault::kCorruptDim:
      return "corrupt-dim";
    case PayloadFault::kCorruptNorm:
      return "corrupt-norm";
    case PayloadFault::kByzantine:
      return "byzantine";
  }
  return "unknown";
}

const char* WireFaultName(WireFault fault) {
  switch (fault) {
    case WireFault::kNone:
      return "none";
    case WireFault::kTruncate:
      return "truncate";
    case WireFault::kBitFlipHeader:
      return "bit-flip-header";
    case WireFault::kBitFlipPayload:
      return "bit-flip-payload";
    case WireFault::kCrcStomp:
      return "crc-stomp";
    case WireFault::kLengthLie:
      return "length-lie";
  }
  return "unknown";
}

const char* ByzantineModeName(ByzantineMode mode) {
  switch (mode) {
    case ByzantineMode::kRandom:
      return "random";
    case ByzantineMode::kCollude:
      return "collude";
    case ByzantineMode::kMimic:
      return "mimic";
  }
  return "unknown";
}

std::string FaultClassName(const DeviceFaultSchedule& schedule) {
  std::string out;
  const auto add = [&out](const std::string& name) {
    if (!out.empty()) out += "+";
    out += name;
  };
  if (schedule.dropped) add("dropout");
  if (schedule.straggler) add("straggler");
  if (schedule.transient_failures > 0) add("transient");
  if (schedule.payload != PayloadFault::kNone) {
    std::string name = PayloadFaultName(schedule.payload);
    // The legacy random mode keeps the bare "byzantine" class name; the
    // hardened modes are distinguishable in the journal.
    if (schedule.payload == PayloadFault::kByzantine &&
        schedule.byzantine_mode != ByzantineMode::kRandom) {
      name += std::string("-") + ByzantineModeName(schedule.byzantine_mode);
    }
    add(name);
  }
  if (schedule.wire != WireFault::kNone) {
    add(std::string("wire-") + WireFaultName(schedule.wire));
  }
  return out.empty() ? "none" : out;
}

Status ValidateFaultPlanOptions(const FaultPlanOptions& options) {
  FEDSC_RETURN_NOT_OK(CheckRate(options.dropout_rate, "dropout_rate"));
  FEDSC_RETURN_NOT_OK(CheckRate(options.straggler_rate, "straggler_rate"));
  FEDSC_RETURN_NOT_OK(CheckRate(options.transient_rate, "transient_rate"));
  FEDSC_RETURN_NOT_OK(CheckRate(options.corrupt_rate, "corrupt_rate"));
  FEDSC_RETURN_NOT_OK(CheckRate(options.byzantine_rate, "byzantine_rate"));
  FEDSC_RETURN_NOT_OK(CheckRate(options.wire_corrupt_rate,
                                "wire_corrupt_rate"));
  if (options.straggler_rate > 0.0 && options.straggler_mean_delay_ms <= 0.0) {
    return Status::InvalidArgument(
        "straggler_mean_delay_ms must be positive when stragglers are "
        "scheduled");
  }
  if (options.max_transient_failures < 0) {
    return Status::InvalidArgument("max_transient_failures must be >= 0");
  }
  if (options.collude_dim < 1) {
    return Status::InvalidArgument("collude_dim must be >= 1");
  }
  if (!(options.mimic_angle_deg > 0.0 && options.mimic_angle_deg <= 90.0)) {
    return Status::InvalidArgument(
        "mimic_angle_deg must lie in (0, 90], got " +
        std::to_string(options.mimic_angle_deg));
  }
  return Status::OK();
}

Status ValidateUploadValidationOptions(
    const UploadValidationOptions& options) {
  if (!(options.min_norm >= 0.0)) {
    return Status::InvalidArgument("min_norm must be >= 0");
  }
  if (!(options.max_norm > options.min_norm)) {
    return Status::InvalidArgument("max_norm must exceed min_norm");
  }
  return Status::OK();
}

Result<FaultPlan> FaultPlan::Create(int64_t num_devices,
                                    const FaultPlanOptions& options) {
  if (num_devices < 0) {
    return Status::InvalidArgument("num_devices must be >= 0");
  }
  FEDSC_RETURN_NOT_OK(ValidateFaultPlanOptions(options));

  FaultPlan plan;
  plan.options_ = options;
  plan.devices_.resize(static_cast<size_t>(num_devices));
  int64_t corrupt_index = 0;
  int64_t wire_index = 0;
  for (int64_t z = 0; z < num_devices; ++z) {
    // One independent stream per device: the schedule depends only on
    // (options.seed, z), never on processing order or thread count.
    Rng rng(MixSeeds(options.seed, static_cast<uint64_t>(z)));
    DeviceFaultSchedule& device = plan.devices_[static_cast<size_t>(z)];
    device.dropped = rng.Uniform() < options.dropout_rate;
    device.straggler = rng.Uniform() < options.straggler_rate;
    if (rng.Uniform() < options.transient_rate &&
        options.max_transient_failures > 0) {
      device.transient_failures =
          1 + static_cast<int>(
                  rng.UniformInt(options.max_transient_failures));
    }
    const double u_corrupt = rng.Uniform();
    const double u_byzantine = rng.Uniform();
    if (u_corrupt < options.corrupt_rate) {
      constexpr int64_t kCycle =
          static_cast<int64_t>(std::size(kCorruptionCycle));
      device.payload = kCorruptionCycle[corrupt_index++ % kCycle];
    } else if (u_byzantine < options.byzantine_rate) {
      device.payload = PayloadFault::kByzantine;
    }
    device.payload_seed = rng.Next();
    device.delay_seed = rng.Next();
    // Wire-fault draws come AFTER every pre-existing draw so schedules built
    // before the serialized uplink existed replay bit-identically.
    const double u_wire = rng.Uniform();
    device.wire_seed = rng.Next();
    if (u_wire < options.wire_corrupt_rate) {
      constexpr int64_t kWireCycle =
          static_cast<int64_t>(std::size(kWireFaultCycle));
      device.wire = kWireFaultCycle[wire_index++ % kWireCycle];
    }
    // Byzantine-mode draws come after the wire draws (the same append-only
    // discipline): every fate decided by the draws above replays
    // bit-identically whatever the configured attack strategy.
    device.byzantine_mode = options.byzantine_mode;
    device.byzantine_seed = rng.Next();
    plan.active_ = plan.active_ || device.dropped || device.straggler ||
                   device.transient_failures > 0 ||
                   device.payload != PayloadFault::kNone ||
                   device.wire != WireFault::kNone;
  }
  return plan;
}

DeviceFaultSchedule FaultPlan::ScheduleFor(int64_t z) const {
  if (z < 0 || z >= num_devices()) return DeviceFaultSchedule{};
  return devices_[static_cast<size_t>(z)];
}

int64_t FaultPlan::UplinkDelayMs(int64_t z, int attempt) const {
  const DeviceFaultSchedule device = ScheduleFor(z);
  if (!device.straggler) return 0;
  // Redrawn per attempt (slow links are bursty), but as a pure function of
  // (device, attempt) so replays agree.
  Rng rng(MixSeeds(device.delay_seed, static_cast<uint64_t>(attempt)));
  return static_cast<int64_t>(
      std::llround(rng.Exponential(options_.straggler_mean_delay_ms)));
}

Matrix FaultPlan::ApplyPayloadFault(int64_t z, const Matrix& upload) const {
  const DeviceFaultSchedule device = ScheduleFor(z);
  if (device.payload == PayloadFault::kNone || upload.cols() == 0) {
    return upload;
  }
  FEDSC_METRIC_COUNTER("fed.faults.payload_faults").Increment();
  Rng rng(device.payload_seed);
  const int64_t n = upload.rows();
  const int64_t cols = upload.cols();
  switch (device.payload) {
    case PayloadFault::kNone:
      break;
    case PayloadFault::kTruncate: {
      // Only a prefix survives the uplink; always lose at least one column
      // when there is more than one.
      const int64_t keep = std::max<int64_t>(1, cols / 2);
      return upload.ColRange(0, keep);
    }
    case PayloadFault::kDuplicate: {
      const int64_t extra = std::max<int64_t>(1, cols / 2);
      Matrix doubled(n, cols + extra);
      for (int64_t j = 0; j < cols; ++j) {
        doubled.SetCol(j, upload.ColData(j));
      }
      for (int64_t j = 0; j < extra; ++j) {
        doubled.SetCol(cols + j, upload.ColData(j));
      }
      return doubled;
    }
    case PayloadFault::kCorruptNan: {
      // Roughly half the columns survive; the last is always corrupted so
      // the fault can never be a silent no-op.
      Matrix corrupted = upload;
      for (int64_t j = 0; j < cols; ++j) {
        if (j + 1 < cols && rng.Uniform() < 0.5) continue;
        double* col = corrupted.ColData(j);
        col[rng.UniformInt(n)] = std::numeric_limits<double>::quiet_NaN();
        col[rng.UniformInt(n)] = std::numeric_limits<double>::infinity();
      }
      return corrupted;
    }
    case PayloadFault::kCorruptDim: {
      // One extra ambient row: meaningless in the federation's space.
      Matrix wrong(n + 1, cols);
      for (int64_t j = 0; j < cols; ++j) {
        double* dst = wrong.ColData(j);
        const double* src = upload.ColData(j);
        for (int64_t i = 0; i < n; ++i) dst[i] = src[i];
        dst[n] = rng.Gaussian();
      }
      return wrong;
    }
    case PayloadFault::kCorruptNorm: {
      // Alternate blow-ups and collapses, both orders of magnitude outside
      // the acceptance bounds.
      Matrix corrupted = upload;
      for (int64_t j = 0; j < cols; ++j) {
        const double scale = (j % 2 == 0) ? 1e9 : 0.0;
        Scal(scale, corrupted.ColData(j), n);
      }
      return corrupted;
    }
    case PayloadFault::kByzantine: {
      switch (device.byzantine_mode) {
        case ByzantineMode::kRandom: {
          // Well-formed unit vectors with adversarially useless directions:
          // they pass validation and can only be absorbed, not filtered.
          Matrix adversarial(n, cols);
          for (int64_t j = 0; j < cols; ++j) {
            adversarial.SetCol(j, rng.UnitSphere(n));
          }
          return adversarial;
        }
        case ByzantineMode::kCollude: {
          // All colluders draw their columns from one fake subspace whose
          // basis depends only on the plan seed, so the group's uploads
          // mutually cohere like a legitimate cluster and can steal one of
          // the central solve's L clusters.
          Rng basis_rng(MixSeeds(options_.seed, kColludeStream));
          const int64_t dim = std::min<int64_t>(options_.collude_dim, n);
          Matrix directions(n, dim);
          for (int64_t j = 0; j < dim; ++j) {
            directions.SetCol(j, basis_rng.UnitSphere(n));
          }
          const Matrix basis = Orthonormalized(directions);
          Rng column_rng(device.byzantine_seed);
          Matrix adversarial(n, cols);
          std::vector<double> column(static_cast<size_t>(n), 0.0);
          for (int64_t j = 0; j < cols; ++j) {
            double norm = 0.0;
            do {
              const std::vector<double> alpha =
                  column_rng.GaussianVector(basis.cols());
              Gemv(Trans::kNo, 1.0, basis, alpha.data(), 0.0, column.data());
              norm = Norm2(column.data(), n);
            } while (norm <= 1e-300);
            Scal(1.0 / norm, column.data(), n);
            adversarial.SetCol(j, column.data());
          }
          return adversarial;
        }
        case ByzantineMode::kMimic: {
          // Rotate each honest sample by a controlled angle towards a random
          // orthogonal direction: the mimic stays close enough to the true
          // subspace to keep most of its coherence with honest devices,
          // while consistently tilting the cluster it lands in.
          const double angle =
              options_.mimic_angle_deg * 3.14159265358979323846 / 180.0;
          const double cos_a = std::cos(angle);
          const double sin_a = std::sin(angle);
          Rng direction_rng(device.byzantine_seed);
          Matrix adversarial(n, cols);
          std::vector<double> tilted(static_cast<size_t>(n), 0.0);
          for (int64_t j = 0; j < cols; ++j) {
            std::vector<double> base(upload.ColData(j),
                                     upload.ColData(j) + n);
            const double base_norm = Norm2(base.data(), n);
            if (base_norm <= 1e-300) {
              adversarial.SetCol(j, direction_rng.UnitSphere(n));
              continue;
            }
            Scal(1.0 / base_norm, base.data(), n);
            if (n < 2) {  // no orthogonal direction exists in 1-D
              adversarial.SetCol(j, base.data());
              continue;
            }
            // A random direction orthogonalized against the sample; redraw
            // on the (measure-zero) parallel case.
            std::vector<double> perp;
            double perp_norm = 0.0;
            do {
              perp = direction_rng.UnitSphere(n);
              const double dot = Dot(base.data(), perp.data(), n);
              Axpy(-dot, base.data(), perp.data(), n);
              perp_norm = Norm2(perp.data(), n);
            } while (perp_norm <= 1e-12);
            for (int64_t i = 0; i < n; ++i) {
              tilted[static_cast<size_t>(i)] =
                  cos_a * base[static_cast<size_t>(i)] +
                  sin_a * perp[static_cast<size_t>(i)] / perp_norm;
            }
            adversarial.SetCol(j, tilted.data());
          }
          return adversarial;
        }
      }
      return upload;
    }
  }
  return upload;
}

bool FaultPlan::ApplyWireFault(int64_t z, std::vector<uint8_t>* wire) const {
  const DeviceFaultSchedule device = ScheduleFor(z);
  if (device.wire == WireFault::kNone || wire == nullptr || wire->empty()) {
    return false;
  }
  FEDSC_METRIC_COUNTER("fed.faults.wire_faults").Increment();
  Rng rng(device.wire_seed);
  const size_t size = wire->size();
  switch (device.wire) {
    case WireFault::kNone:
      break;
    case WireFault::kTruncate: {
      // Keep a strict prefix — always lose at least one byte.
      wire->resize(static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(size))));
      return true;
    }
    case WireFault::kBitFlipHeader: {
      const size_t span = std::min(size, kWireHeaderBytes);
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(span)));
      (*wire)[pos] ^= static_cast<uint8_t>(1u << rng.UniformInt(8));
      return true;
    }
    case WireFault::kBitFlipPayload: {
      // Flip past the header when there is anything there; tiny (header-
      // only) buffers degrade to a header flip. Either way a CRC catches it.
      const size_t base = size > kWireHeaderBytes ? kWireHeaderBytes : 0;
      const size_t pos =
          base + static_cast<size_t>(
                     rng.UniformInt(static_cast<int64_t>(size - base)));
      (*wire)[pos] ^= static_cast<uint8_t>(1u << rng.UniformInt(8));
      return true;
    }
    case WireFault::kCrcStomp: {
      // Overwrite the stored header CRC (bytes [32, 36)) — the decoder must
      // notice the digest no longer matches the bytes it covers.
      const size_t pos = std::min<size_t>(32, size - 1);
      const size_t end = std::min<size_t>(pos + 4, size);
      for (size_t i = pos; i < end; ++i) {
        (*wire)[i] ^= static_cast<uint8_t>(0xA5u + (i - pos));
      }
      return true;
    }
    case WireFault::kLengthLie: {
      // Rewrite the first section's declared payload byte count (offset
      // header + 12, u64 LE); short messages degrade to a tail flip.
      const size_t pos = size > kWireHeaderBytes + kWireSectionHeaderBytes
                             ? kWireHeaderBytes + 12
                             : size - 1;
      (*wire)[pos] ^= static_cast<uint8_t>(
          1u + rng.UniformInt(255));
      return true;
    }
  }
  return false;
}

std::string FaultPlan::Fingerprint() const {
  std::ostringstream os;
  for (int64_t z = 0; z < num_devices(); ++z) {
    const DeviceFaultSchedule& d = devices_[static_cast<size_t>(z)];
    os << "z=" << z << " dropped=" << d.dropped
       << " straggler=" << d.straggler
       << " transient=" << d.transient_failures
       << " payload=" << PayloadFaultName(d.payload)
       << " payload_seed=" << d.payload_seed
       << " delay_seed=" << d.delay_seed
       << " wire=" << WireFaultName(d.wire)
       << " wire_seed=" << d.wire_seed
       << " byzantine_mode=" << ByzantineModeName(d.byzantine_mode)
       << " byzantine_seed=" << d.byzantine_seed << "\n";
  }
  return os.str();
}

std::string QuarantinedColumnsSummary(const UploadValidation& validation) {
  if (validation.quarantined.empty()) return "none";
  std::string out;
  for (size_t i = 0; i < validation.quarantined.size(); ++i) {
    if (!out.empty()) out += "; ";
    out += "col " + std::to_string(validation.quarantined[i]) + ": " +
           validation.reasons[i];
  }
  return out;
}

Result<UploadValidation> ValidateUpload(
    const Matrix& samples, int64_t expected_dim,
    const UploadValidationOptions& options) {
  FEDSC_RETURN_NOT_OK(ValidateUploadValidationOptions(options));
  if (expected_dim >= 0 && samples.rows() != expected_dim) {
    return Status::InvalidArgument(
        "upload dimension " + std::to_string(samples.rows()) +
        " does not match the federation's " + std::to_string(expected_dim));
  }
  UploadValidation out;
  const int64_t n = samples.rows();
  std::vector<int64_t> kept;
  for (int64_t j = 0; j < samples.cols(); ++j) {
    if (!options.enabled) {
      kept.push_back(j);
      continue;
    }
    const double* col = samples.ColData(j);
    // Fast path: one vectorized Dot pass gives both checks at once. A
    // finite sum of squares proves every element finite (any NaN or inf
    // propagates, and finite elements can only push the sum to +inf), and
    // Norm2 is DEFINED as sqrt(Dot(x, x, n)) — same bits, so the norm
    // window below sees exactly the values the two-pass scan saw. A
    // non-finite sum is ambiguous (bad value vs. square overflow of huge
    // finite values), so that rare case re-runs the element-wise scan to
    // keep the per-column quarantine reasons exact.
    const double sumsq = Dot(col, col, n);
    if (!std::isfinite(sumsq) && !ColumnFinite(col, n)) {
      out.quarantined.push_back(j);
      out.reasons.push_back("non-finite value");
      continue;
    }
    const double norm = std::sqrt(sumsq);
    if (norm < options.min_norm || norm > options.max_norm) {
      out.quarantined.push_back(j);
      out.reasons.push_back("norm " + std::to_string(norm) +
                            " outside [" + std::to_string(options.min_norm) +
                            ", " + std::to_string(options.max_norm) + "]");
      continue;
    }
    kept.push_back(j);
  }
  out.accepted = samples.GatherCols(kept);
  out.kept = std::move(kept);
  if (!out.quarantined.empty()) {
    FEDSC_METRIC_COUNTER("fed.quarantine.samples")
        .Add(static_cast<int64_t>(out.quarantined.size()));
  }
  return out;
}

}  // namespace fedsc
