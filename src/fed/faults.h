// Deterministic fault injection for the simulated federated network.
//
// The paper's one-shot protocol assumes every device uploads successfully;
// production federations do not (k-FED motivates one-shot schemes precisely
// by device unreliability). A FaultPlan is a seed-driven, per-device
// schedule of failures — dropout, straggler latency, transient upload
// losses, payload truncation/duplication, corruption (NaN/Inf, wrong
// dimension, non-unit-norm), and Byzantine uploads — that the Channel's
// retry loop (fed/network.h) and RunFedSc's degradation logic
// (core/fedsc.h) interpret. Every draw is a pure function of
// (seed, device, attempt): schedules are bit-identical for any thread count
// and any processing order, composable with ChannelOptions noise and
// quantization, and replayable for regression tests.
//
// Server-side upload validation lives here too: ValidateUpload quarantines
// corrupt sample columns (instead of letting them poison — or crash — the
// central solve) and reports exactly which columns were rejected and why.

#ifndef FEDSC_FED_FAULTS_H_
#define FEDSC_FED_FAULTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/matrix.h"

namespace fedsc {

// What a faulty device does to its upload payload. The three kCorrupt*
// classes are detectable (and must be quarantined) by ValidateUpload;
// kByzantine uploads are well-formed unit vectors pointing nowhere useful,
// so they pass validation and degrade accuracy instead — the robustness
// bench measures how gracefully.
enum class PayloadFault {
  kNone = 0,
  kTruncate,     // only a prefix of the sample columns arrives
  kDuplicate,    // some sample columns arrive twice
  kCorruptNan,   // NaN/Inf entries scattered through the payload
  kCorruptDim,   // wrong ambient dimension (extra row)
  kCorruptNorm,  // columns blown up / collapsed far off the unit sphere
  kByzantine,    // adversarial random unit vectors replace the samples
};

const char* PayloadFaultName(PayloadFault fault);

// What a faulty transport does to the *serialized* upload (fed/wire.h)
// between encoder and decoder. Unlike PayloadFault — which models devices
// sending the wrong samples — these model the byte stream itself being
// damaged in flight. Every one of them is detectable by ParseWireMessage
// (header CRC, payload CRCs, exact length checks), so a wire-faulted upload
// always decodes to a typed kWireCorrupt status, never to silent garbage.
enum class WireFault {
  kNone = 0,
  kTruncate,        // a suffix of the byte stream never arrives
  kBitFlipHeader,   // a bit flips inside the fixed 36-byte header
  kBitFlipPayload,  // a bit flips somewhere past the header
  kCrcStomp,        // a stored CRC field is overwritten
  kLengthLie,       // a section's declared payload byte count is rewritten
};

const char* WireFaultName(WireFault fault);

// How a Byzantine device picks its adversarial (well-formed) samples.
// kRandom is the legacy attack: isotropic unit vectors, uncoordinated.
// kCollude and kMimic model the stronger adversaries the defense layer
// (fed/defense.h) must survive: colluders agree on a common fake subspace
// (their uploads mutually cohere like a legitimate cluster), mimics rotate
// each honest sample by a controlled angle off its true subspace (they keep
// most of their coherence with honest devices and are invisible to pure
// coherence tests).
enum class ByzantineMode {
  kRandom = 0,
  kCollude,
  kMimic,
};

const char* ByzantineModeName(ByzantineMode mode);

struct FaultPlanOptions {
  // Fraction of devices that never respond (every attempt times out).
  double dropout_rate = 0.0;
  // Fraction of devices whose attempts carry exponential latency with the
  // given mean; an attempt slower than RetryOptions::timeout_ms times out.
  double straggler_rate = 0.0;
  double straggler_mean_delay_ms = 400.0;
  // Fraction of devices whose first `transient failures` attempts are lost
  // in flight (they succeed once retried enough).
  double transient_rate = 0.0;
  int max_transient_failures = 2;
  // Fraction of devices uploading a corrupted payload; the corruption class
  // cycles deterministically through truncate/duplicate/NaN/dim/norm.
  double corrupt_rate = 0.0;
  // Fraction of devices uploading adversarial (Byzantine) samples.
  double byzantine_rate = 0.0;
  // Attack strategy shared by every Byzantine device in the plan.
  ByzantineMode byzantine_mode = ByzantineMode::kRandom;
  // Dimension of the colluders' common fake subspace (kCollude). The basis
  // is a pure function of `seed` alone, so every colluder agrees on it.
  int64_t collude_dim = 2;
  // Angle (degrees, in (0, 90]) between a mimic's samples and the honest
  // samples they are derived from (kMimic).
  double mimic_angle_deg = 30.0;
  // Fraction of devices whose serialized upload is damaged in flight; the
  // damage class cycles through truncate/header-flip/payload-flip/CRC-stomp/
  // length-lie. Requires the serialized uplink path (it operates on wire
  // bytes, not matrices).
  double wire_corrupt_rate = 0.0;
  uint64_t seed = 0x5eed'FA17ULL;
};

// One device's schedule, fixed at FaultPlan::Create time.
struct DeviceFaultSchedule {
  bool dropped = false;
  bool straggler = false;
  int transient_failures = 0;  // attempts lost before one can succeed
  PayloadFault payload = PayloadFault::kNone;
  uint64_t payload_seed = 0;  // drives the payload mutation
  uint64_t delay_seed = 0;    // drives per-attempt latency draws
  WireFault wire = WireFault::kNone;
  uint64_t wire_seed = 0;     // drives the wire-byte mutation
  // Byzantine strategy (meaningful when payload == kByzantine) and the seed
  // driving its column draws. The seed is drawn AFTER every legacy draw so
  // plans built before the hardened attack suite replay bit-identically.
  ByzantineMode byzantine_mode = ByzantineMode::kRandom;
  uint64_t byzantine_seed = 0;
};

// Compact human/journal-readable summary of every fault class scheduled for
// one device, '+'-joined in a fixed order ("dropout+byzantine"); "none" for
// a fault-free schedule. Used as the `fault` field of the run journal's
// per-device `scheduled` events (common/journal.h).
std::string FaultClassName(const DeviceFaultSchedule& schedule);

// Immutable per-device fault schedule. A default-constructed plan is
// fault-free for any device index, so the happy path never pays for one.
class FaultPlan {
 public:
  FaultPlan() = default;

  // Validates every rate (must lie in [0, 1], delays/budgets nonnegative)
  // and draws the schedule for `num_devices` devices. Each device's draws
  // come from Rng(MixSeeds(seed, z)), so the schedule is a pure function of
  // (options, z).
  static Result<FaultPlan> Create(int64_t num_devices,
                                  const FaultPlanOptions& options);

  int64_t num_devices() const {
    return static_cast<int64_t>(devices_.size());
  }
  // True when any fault was scheduled for any device.
  bool active() const { return active_; }

  // The schedule for device z; fault-free beyond the planned range (late
  // joiners simply have no faults scheduled).
  DeviceFaultSchedule ScheduleFor(int64_t z) const;

  // Simulated uplink latency of `attempt` (1-based) for device z, in
  // milliseconds. Deterministic in (plan, z, attempt); 0 for
  // non-stragglers.
  int64_t UplinkDelayMs(int64_t z, int attempt) const;

  // Applies device z's payload fault to its upload (identity for kNone).
  Matrix ApplyPayloadFault(int64_t z, const Matrix& upload) const;

  // Applies device z's wire fault to its serialized upload in place.
  // Returns true when bytes were actually mutated (false for kNone or an
  // empty buffer). Deterministic in (plan, z, wire contents' size).
  bool ApplyWireFault(int64_t z, std::vector<uint8_t>* wire) const;

  // A printable digest of every device's schedule, for asserting that two
  // plans (e.g. built under different thread counts) are bit-identical.
  std::string Fingerprint() const;

 private:
  FaultPlanOptions options_;
  bool active_ = false;
  std::vector<DeviceFaultSchedule> devices_;
};

// Server-side acceptance bounds for one uploaded sample column. The bounds
// are deliberately loose: honest uploads are unit vectors, but channel
// noise, quantization, and DP perturb them, so only violations orders of
// magnitude off (or non-finite values, or a wrong ambient dimension) are
// quarantined.
struct UploadValidationOptions {
  bool enabled = true;
  double min_norm = 1e-6;
  double max_norm = 1e6;
};

// Verdict of ValidateUpload: the accepted columns (original order) plus the
// original index and reason of every quarantined column.
struct UploadValidation {
  Matrix accepted;
  std::vector<int64_t> kept;  // original column index of accepted.col(j)
  std::vector<int64_t> quarantined;
  std::vector<std::string> reasons;  // parallel to `quarantined`
};

// Every offending column with its reason, ';'-joined in column order
// ("col 0: non-finite value; col 2: norm ..."), so the journal's quarantine
// diagnostics name all of them instead of just the first. "none" when no
// column was quarantined.
std::string QuarantinedColumnsSummary(const UploadValidation& validation);

// Validates one device's received upload against `expected_dim`. A wrong
// ambient dimension rejects the whole upload (typed InvalidArgument — the
// columns are meaningless in the federation's space); otherwise non-finite
// or norm-violating columns are quarantined per column and the rest
// accepted. Never crashes on any payload ApplyPayloadFault can produce.
Result<UploadValidation> ValidateUpload(const Matrix& samples,
                                        int64_t expected_dim,
                                        const UploadValidationOptions& options);

Status ValidateFaultPlanOptions(const FaultPlanOptions& options);
Status ValidateUploadValidationOptions(const UploadValidationOptions& options);

}  // namespace fedsc

#endif  // FEDSC_FED_FAULTS_H_
