#include "fed/kfed.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "common/trace.h"
#include "fed/pca.h"

namespace fedsc {

Result<KFedResult> RunKFed(const FederatedDataset& data, int64_t num_clusters,
                           const KFedOptions& options) {
  const int64_t num_devices = data.num_devices();
  if (num_devices == 0) return Status::InvalidArgument("no devices");
  if (num_clusters < 1) {
    return Status::InvalidArgument("need num_clusters >= 1");
  }
  FEDSC_RETURN_NOT_OK(ValidateChannelOptions(options.channel));

  FEDSC_TRACE_SPAN("kfed/run",
                   {{"devices", num_devices}, {"clusters", num_clusters}});
  Rng rng(options.seed);
  Channel channel(options.channel);
  KFedResult result;
  result.device_labels.resize(static_cast<size_t>(num_devices));

  // Phase 1: local k-means; upload centroids.
  std::vector<Matrix> uploaded;  // per-device centroid matrices (post-channel)
  std::vector<std::vector<int64_t>> local_assignment(
      static_cast<size_t>(num_devices));
  uploaded.reserve(static_cast<size_t>(num_devices));
  for (int64_t z = 0; z < num_devices; ++z) {
    FEDSC_TRACE_SPAN("kfed/device", {{"z", z}});
    const Matrix& raw = data.points[static_cast<size_t>(z)];
    Stopwatch local_timer;
    if (raw.cols() == 0) {
      uploaded.emplace_back();
      continue;
    }
    const Matrix* input = &raw;
    Matrix projected;
    if (options.pca_dim > 0) {
      FEDSC_ASSIGN_OR_RETURN(PcaResult pca, Pca(raw, options.pca_dim));
      projected = std::move(pca.projected);
      input = &projected;
    }
    const int64_t k =
        options.local_k > 0
            ? std::min<int64_t>(options.local_k, input->cols())
            : std::min<int64_t>(num_clusters, input->cols());
    KMeansOptions local_opts = options.local_kmeans;
    local_opts.seed = rng.Next();
    FEDSC_ASSIGN_OR_RETURN(KMeansResult km, KMeans(*input, k, local_opts));
    local_assignment[static_cast<size_t>(z)] = std::move(km.labels);
    result.local_seconds += local_timer.ElapsedSeconds();
    uploaded.push_back(channel.Uplink(km.centroids));
  }

  // Phase 2: server clusters the pooled centroids. Farthest-first seeding
  // spreads the L initial centers, then Lloyd's iterations refine.
  Stopwatch central_timer;
  int64_t total_centroids = 0;
  int64_t ambient = 0;
  for (const Matrix& m : uploaded) {
    total_centroids += m.cols();
    ambient = std::max(ambient, m.rows());
  }
  if (total_centroids < num_clusters) {
    return Status::FailedPrecondition(
        "server received fewer centroids than clusters");
  }
  // Devices may upload centroids of different dimensionality when local PCA
  // is enabled and a device has fewer points than pca_dim; zero-pad.
  Matrix pooled(ambient, total_centroids);
  std::vector<int64_t> device_offset(static_cast<size_t>(num_devices), 0);
  int64_t next = 0;
  for (int64_t z = 0; z < num_devices; ++z) {
    const Matrix& m = uploaded[static_cast<size_t>(z)];
    device_offset[static_cast<size_t>(z)] = next;
    for (int64_t c = 0; c < m.cols(); ++c) {
      for (int64_t i = 0; i < m.rows(); ++i) pooled(i, next) = m(i, c);
      ++next;
    }
  }

  KMeansOptions server_opts = options.server_kmeans;
  server_opts.init = KMeansInit::kFarthestFirst;
  server_opts.seed = rng.Next();
  KMeansResult server;
  {
    FEDSC_TRACE_SPAN("kfed/server", {{"centroids", total_centroids}});
    FEDSC_ASSIGN_OR_RETURN(server, KMeans(pooled, num_clusters, server_opts));
  }
  result.central_seconds = central_timer.ElapsedSeconds();

  // Phase 3: downlink assignments; devices relabel their points.
  for (int64_t z = 0; z < num_devices; ++z) {
    const auto& assignment = local_assignment[static_cast<size_t>(z)];
    const int64_t offset = device_offset[static_cast<size_t>(z)];
    const int64_t uploaded_count =
        uploaded[static_cast<size_t>(z)].cols();
    channel.Downlink(uploaded_count, num_clusters);
    auto& labels = result.device_labels[static_cast<size_t>(z)];
    labels.resize(assignment.size());
    for (size_t i = 0; i < assignment.size(); ++i) {
      labels[i] = server.labels[static_cast<size_t>(
          offset + assignment[i])];
    }
  }
  channel.FinishRound();

  result.global_labels = data.ToGlobalOrder(result.device_labels);
  result.comm = channel.stats();
  result.seconds = result.local_seconds + result.central_seconds;
  return result;
}

}  // namespace fedsc
