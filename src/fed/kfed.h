// k-FED: one-shot federated k-means (Dennis, Li & Smith 2021, ref [1] of
// the paper). Each device clusters its local data with k-means and uploads
// only the local centroids; the server seeds L global centers among the
// pooled centroids by farthest-first traversal (the max-distance seeding of
// Awasthi-Sheffet style clustering) and runs Lloyd's iterations over the
// pooled centroids; devices relabel their points through their local
// centroid's global assignment.
//
// The optional PCA mode reproduces the paper's k-FED + PCA-10/100
// baselines: every device projects its local data onto its own top
// principal components first. The projections of different devices are not
// aligned, which is what makes this baseline collapse on high-dimensional
// data (Table III).

#ifndef FEDSC_FED_KFED_H_
#define FEDSC_FED_KFED_H_

#include <cstdint>
#include <vector>

#include "cluster/kmeans.h"
#include "common/result.h"
#include "fed/network.h"
#include "fed/partition.h"

namespace fedsc {

struct KFedOptions {
  // Local cluster count k' per device; <= 0 uses min(num_clusters, N^(z)).
  // The k-FED theory wants k' <= the true number of local clusters; the
  // benches pass the data-distribution L'.
  int64_t local_k = 0;
  // > 0: per-device PCA to this dimension before local clustering.
  int64_t pca_dim = 0;
  KMeansOptions local_kmeans;
  KMeansOptions server_kmeans;
  ChannelOptions channel;
  uint64_t seed = 0x5eed'FEDULL;
};

struct KFedResult {
  std::vector<std::vector<int64_t>> device_labels;  // partition layout
  std::vector<int64_t> global_labels;               // dataset order
  double local_seconds = 0.0;    // sum over devices
  double central_seconds = 0.0;  // server stage
  double seconds = 0.0;          // T = sum_z T^(z) + T_c
  CommStats comm;
};

Result<KFedResult> RunKFed(const FederatedDataset& data, int64_t num_clusters,
                           const KFedOptions& options = {});

}  // namespace fedsc

#endif  // FEDSC_FED_KFED_H_
