#include "fed/network.h"

#include <cmath>
#include <algorithm>

#include "common/metrics.h"

namespace fedsc {

Channel::Channel(const ChannelOptions& options)
    : options_(options), rng_(options.seed) {}

Matrix Channel::Uplink(const Matrix& samples) {
  stats_.uplink_values += samples.size();
  stats_.uplink_bits += samples.size() * options_.bits_per_value;
  FEDSC_METRIC_COUNTER("fed.comm.uplink_values").Add(samples.size());
  FEDSC_METRIC_COUNTER("fed.comm.uplink_bits")
      .Add(samples.size() * options_.bits_per_value);
  Matrix received = samples;
  if (options_.noise_delta > 0.0 && samples.cols() > 0) {
    const double stddev =
        options_.noise_delta / std::sqrt(static_cast<double>(samples.cols()));
    double* data = received.data();
    for (int64_t i = 0; i < received.size(); ++i) {
      data[i] += stddev * rng_.Gaussian();
    }
  }
  if (options_.quantize && options_.bits_per_value >= 2 &&
      options_.bits_per_value <= 32) {
    const double range = options_.quantization_range;
    const double levels =
        static_cast<double>((uint64_t{1} << options_.bits_per_value) - 1);
    const double step = 2.0 * range / levels;
    double* data = received.data();
    for (int64_t i = 0; i < received.size(); ++i) {
      const double clamped = std::min(range, std::max(-range, data[i]));
      data[i] = -range + step * std::round((clamped + range) / step);
    }
  }
  return received;
}

void Channel::Downlink(int64_t count, int64_t num_clusters) {
  stats_.downlink_values += count;
  stats_.downlink_bits +=
      static_cast<double>(count) *
      std::log2(std::max<double>(2.0, static_cast<double>(num_clusters)));
  FEDSC_METRIC_COUNTER("fed.comm.downlink_values").Add(count);
  // Channels are driven from serial protocol code, so the running total is a
  // deterministic gauge (it would race if devices downlinked concurrently).
  FEDSC_METRIC_GAUGE("fed.comm.downlink_bits", MetricKind::kDeterministic)
      .Set(stats_.downlink_bits);
}

void Channel::FinishRound() {
  ++stats_.rounds;
  FEDSC_METRIC_COUNTER("fed.comm.rounds").Increment();
}

}  // namespace fedsc
