#include "fed/network.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/journal.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace fedsc {

CodecOptions EffectiveCodecOptions(const ChannelOptions& options) {
  CodecOptions codec = options.codec;
  if (options.quantize && codec.mode == CodecMode::kRawSamples) {
    codec.mode = CodecMode::kUniformQuant;
    codec.quant_bits = options.bits_per_value;
    codec.quant_range = options.quantization_range;
  }
  return codec;
}

Status ValidateChannelOptions(const ChannelOptions& options) {
  if (options.noise_delta < 0.0) {
    return Status::InvalidArgument("noise_delta must be >= 0, got " +
                                   std::to_string(options.noise_delta));
  }
  if (options.bits_per_value < 1) {
    return Status::InvalidArgument("bits_per_value must be >= 1, got " +
                                   std::to_string(options.bits_per_value));
  }
  if (options.quantize &&
      (options.bits_per_value < 2 || options.bits_per_value > 32)) {
    return Status::InvalidArgument(
        "quantization requires bits_per_value in [2, 32], got " +
        std::to_string(options.bits_per_value));
  }
  if (options.quantize && options.quantization_range <= 0.0) {
    return Status::InvalidArgument(
        "quantization_range must be positive, got " +
        std::to_string(options.quantization_range));
  }
  return ValidateCodecOptions(EffectiveCodecOptions(options));
}

Status ValidateRetryOptions(const RetryOptions& options) {
  if (options.max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1, got " +
                                   std::to_string(options.max_attempts));
  }
  if (options.timeout_ms <= 0) {
    return Status::InvalidArgument("timeout_ms must be positive, got " +
                                   std::to_string(options.timeout_ms));
  }
  if (options.base_backoff_ms < 0) {
    return Status::InvalidArgument("base_backoff_ms must be >= 0, got " +
                                   std::to_string(options.base_backoff_ms));
  }
  if (options.backoff_multiplier < 1.0) {
    return Status::InvalidArgument(
        "backoff_multiplier must be >= 1, got " +
        std::to_string(options.backoff_multiplier));
  }
  if (options.jitter_fraction < 0.0 || options.jitter_fraction > 1.0) {
    return Status::InvalidArgument(
        "jitter_fraction must lie in [0, 1], got " +
        std::to_string(options.jitter_fraction));
  }
  return Status::OK();
}

Result<Channel> Channel::Create(const ChannelOptions& options) {
  FEDSC_RETURN_NOT_OK(ValidateChannelOptions(options));
  return Channel(options);
}

Channel::Channel(const ChannelOptions& options)
    : options_(options),
      codec_(EffectiveCodecOptions(options)),
      rng_(options.seed) {}

void Channel::ApplyNoise(Matrix* samples) {
  if (options_.noise_delta <= 0.0 || samples->cols() == 0) return;
  const double stddev =
      options_.noise_delta / std::sqrt(static_cast<double>(samples->cols()));
  double* data = samples->data();
  for (int64_t i = 0; i < samples->size(); ++i) {
    data[i] += stddev * rng_.Gaussian();
  }
}

std::vector<uint8_t> Channel::Encode(const Matrix& samples) {
  Result<std::vector<uint8_t>> wire = EncodeUpload(samples, codec_);
  FEDSC_CHECK(wire.ok()) << "uplink encode failed on a validated channel: "
                         << wire.status().ToString();
  return std::move(*wire);
}

void Channel::ChargeUplinkAttempt(int64_t values, int64_t wire_bytes) {
  stats_.uplink_values += values;
  stats_.uplink_wire_bytes += wire_bytes;
  stats_.uplink_bits += 8 * wire_bytes;
  FEDSC_METRIC_COUNTER("fed.comm.uplink_values").Add(values);
  FEDSC_METRIC_COUNTER("fed.comm.uplink_bits").Add(8 * wire_bytes);
  FEDSC_METRIC_COUNTER("fed.comm.uplink_wire_bytes").Add(wire_bytes);
}

Matrix Channel::Uplink(const Matrix& samples) {
  Matrix noisy = samples;
  ApplyNoise(&noisy);
  std::vector<uint8_t> wire = Encode(noisy);
  ChargeUplinkAttempt(samples.size(), static_cast<int64_t>(wire.size()));
  if (options_.wire_sink) options_.wire_sink(-1, wire);
  Result<DecodedUpload> decoded = DecodeUpload(wire, codec_);
  FEDSC_CHECK(decoded.ok()) << "own encoding failed to decode: "
                            << decoded.status().ToString();
  return std::move(decoded->samples);
}

UplinkOutcome Channel::UplinkWithRetry(int64_t device, const Matrix& payload,
                                       const FaultPlan& plan,
                                       const RetryOptions& retry,
                                       SimClock* clock) {
  FEDSC_TRACE_SPAN("fed/uplink_retry", {{"device", device}});
  UplinkOutcome outcome;
  const DeviceFaultSchedule schedule = plan.ScheduleFor(device);
  const Matrix sent = plan.ApplyPayloadFault(device, payload);
  // Failed attempts transmit (and are charged for) the device's encoding of
  // `sent`; computed lazily since the happy path never needs it. Noise is a
  // reception-side effect, so it does not alter what failed attempts cost.
  int64_t failed_attempt_bytes = -1;
  const auto attempt_bytes = [&]() {
    if (failed_attempt_bytes < 0) {
      failed_attempt_bytes = static_cast<int64_t>(Encode(sent).size());
    }
    return failed_attempt_bytes;
  };
  // Jittered backoff draws come from a per-device stream so the schedule
  // replays identically no matter which devices retried before this one.
  Rng backoff_rng(MixSeeds(options_.seed ^ 0xBAC0FFULL,
                           static_cast<uint64_t>(device)));

  const int64_t start_ms = clock->now_ms();
  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    outcome.attempts = attempt;
    if (attempt > 1) {
      stats_.retries += 1;
      FEDSC_METRIC_COUNTER("fed.comm.retries").Increment();
      double backoff = static_cast<double>(retry.base_backoff_ms) *
                       std::pow(retry.backoff_multiplier, attempt - 2);
      backoff *= 1.0 + retry.jitter_fraction * backoff_rng.Uniform();
      const int64_t backoff_ms =
          static_cast<int64_t>(std::llround(backoff));
      clock->AdvanceMs(backoff_ms);
      FEDSC_JOURNAL_EVENT("retry", device, clock->now_ms(),
                          {{"attempt", attempt}, {"backoff_ms", backoff_ms}});
    }
    FEDSC_JOURNAL_EVENT("upload_attempt", device, clock->now_ms(),
                        {{"attempt", attempt}});
    if (schedule.dropped) {
      // A dropped device never answers: the server waits out the deadline.
      clock->AdvanceMs(retry.timeout_ms);
      stats_.timeouts += 1;
      FEDSC_METRIC_COUNTER("fed.comm.timeouts").Increment();
      FEDSC_METRIC_COUNTER("fed.faults.dropped_attempts").Increment();
      FEDSC_JOURNAL_EVENT("timeout", device, clock->now_ms(),
                          {{"attempt", attempt},
                           {"cause", "dropout"},
                           {"wire_bytes", int64_t{0}}});
      outcome.status = Status::DeadlineExceeded(
          "device " + std::to_string(device) + " dropped out");
      continue;
    }
    const int64_t delay_ms = plan.UplinkDelayMs(device, attempt);
    if (delay_ms > retry.timeout_ms) {
      // Straggler: the payload was transmitted but arrived past the
      // deadline — the bandwidth is spent, the attempt is not.
      ChargeUplinkAttempt(sent.size(), attempt_bytes());
      clock->AdvanceMs(retry.timeout_ms);
      stats_.timeouts += 1;
      FEDSC_METRIC_COUNTER("fed.comm.timeouts").Increment();
      FEDSC_METRIC_COUNTER("fed.faults.straggler_timeouts").Increment();
      FEDSC_JOURNAL_EVENT("timeout", device, clock->now_ms(),
                          {{"attempt", attempt},
                           {"cause", "straggler"},
                           {"delay_ms", delay_ms},
                           {"wire_bytes", attempt_bytes()}});
      outcome.status = Status::DeadlineExceeded(
          "device " + std::to_string(device) + " straggled (" +
          std::to_string(delay_ms) + "ms > " +
          std::to_string(retry.timeout_ms) + "ms deadline)");
      continue;
    }
    clock->AdvanceMs(delay_ms);
    if (attempt <= schedule.transient_failures) {
      // Lost in flight: bandwidth consumed, nothing delivered.
      ChargeUplinkAttempt(sent.size(), attempt_bytes());
      FEDSC_METRIC_COUNTER("fed.faults.transient_losses").Increment();
      FEDSC_JOURNAL_EVENT("transient_loss", device, clock->now_ms(),
                          {{"attempt", attempt},
                           {"wire_bytes", attempt_bytes()}});
      outcome.status = Status::DeadlineExceeded(
          "device " + std::to_string(device) + " upload lost in transit");
      continue;
    }
    // The delivering attempt: noise, then the real serialized round trip —
    // encode, wire-fault the byte stream, decode what arrived.
    Matrix noisy = sent;
    ApplyNoise(&noisy);
    std::vector<uint8_t> wire = Encode(noisy);
    const bool wire_faulted = plan.ApplyWireFault(device, &wire);
    ChargeUplinkAttempt(sent.size(), static_cast<int64_t>(wire.size()));
    if (options_.wire_sink) options_.wire_sink(device, wire);
    Result<DecodedUpload> decoded = DecodeUpload(wire, codec_);
    if (!decoded.ok()) {
      // Every scheduled wire fault is CRC/length-detectable; an undamaged
      // message failing to decode is a codec bug, not a simulation outcome.
      FEDSC_CHECK(wire_faulted)
          << "own encoding failed to decode: " << decoded.status().ToString();
      FEDSC_METRIC_COUNTER("fed.faults.wire_rejections").Increment();
      FEDSC_JOURNAL_EVENT("wire_rejected", device, clock->now_ms(),
                          {{"attempt", attempt},
                           {"wire_bytes", static_cast<int64_t>(wire.size())},
                           {"fault", WireFaultName(schedule.wire)}});
      outcome.status = decoded.status();
      // Retrying cannot help: the fault rides the device's schedule, so
      // every retransmission arrives equally corrupt.
      break;
    }
    FEDSC_JOURNAL_EVENT("delivered", device, clock->now_ms(),
                        {{"attempt", attempt},
                         {"wire_bytes", static_cast<int64_t>(wire.size())},
                         {"codec", CodecModeName(codec_.mode)}});
    outcome.received = std::move(decoded->samples);
    outcome.delivered = true;
    outcome.status = Status::OK();
    break;
  }
  outcome.elapsed_ms = clock->now_ms() - start_ms;
  FEDSC_METRIC_HISTOGRAM("fed.retry.attempts_per_device")
      .Record(outcome.attempts);
  if (!outcome.delivered && outcome.status.ok()) {
    outcome.status = Status::DeadlineExceeded(
        "device " + std::to_string(device) + " exhausted its retry budget");
  }
  return outcome;
}

void Channel::Downlink(int64_t count, int64_t num_clusters) {
  stats_.downlink_values += count;
  stats_.downlink_bits +=
      static_cast<double>(count) *
      std::log2(std::max<double>(2.0, static_cast<double>(num_clusters)));
  FEDSC_METRIC_COUNTER("fed.comm.downlink_values").Add(count);
  // Channels are driven from serial protocol code, so the running total is a
  // deterministic gauge (it would race if devices downlinked concurrently).
  FEDSC_METRIC_GAUGE("fed.comm.downlink_bits", MetricKind::kDeterministic)
      .Set(stats_.downlink_bits);
}

void Channel::FinishRounds(int64_t n) {
  stats_.rounds += n;
  FEDSC_METRIC_COUNTER("fed.comm.rounds").Add(n);
}

}  // namespace fedsc
