// One-shot communication channel simulation: uplink/downlink bit accounting
// (Section IV-E of the paper) and Gaussian channel noise on uploaded samples
// (the robustness experiment of Fig. 7, where samples from device z receive
// noise of standard deviation delta / sqrt(r^(z))).

#ifndef FEDSC_FED_NETWORK_H_
#define FEDSC_FED_NETWORK_H_

#include <cstdint>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace fedsc {

struct ChannelOptions {
  // Fig. 7's delta; the uplink of device z is perturbed by i.i.d. Gaussian
  // noise with stddev delta / sqrt(r^(z)). 0 disables noise.
  double noise_delta = 0.0;
  // Bits per transmitted floating-point value (q in Section IV-E).
  int bits_per_value = 64;
  // When true, uplink values are actually rounded to the bits_per_value-bit
  // uniform grid over [-quantization_range, quantization_range] (Section
  // IV-E assumes q-bit quantization; this makes its distortion observable).
  // Requires 2 <= bits_per_value <= 32 to quantize.
  bool quantize = false;
  double quantization_range = 1.5;
  uint64_t seed = 0x5eed'c4a7ULL;
};

struct CommStats {
  int64_t uplink_values = 0;
  int64_t uplink_bits = 0;
  int64_t downlink_values = 0;
  double downlink_bits = 0.0;  // assignments cost log2(L) bits each
  int64_t rounds = 0;          // communication rounds consumed (1 for one-shot)
};

// Simulates the client->server->client channel of the one-shot protocol.
class Channel {
 public:
  explicit Channel(const ChannelOptions& options);

  // Uplink of an n x r sample matrix from one device: applies channel noise
  // (if configured) and records n * r values in the stats. Returns what the
  // server receives.
  Matrix Uplink(const Matrix& samples);

  // Downlink of `count` cluster assignments out of `num_clusters` classes to
  // one device: log2(L) bits each.
  void Downlink(int64_t count, int64_t num_clusters);

  // Marks the completion of one communication round.
  void FinishRound();

  const CommStats& stats() const { return stats_; }

 private:
  ChannelOptions options_;
  Rng rng_;
  CommStats stats_;
};

}  // namespace fedsc

#endif  // FEDSC_FED_NETWORK_H_
