// One-shot communication channel simulation: uplink/downlink bit accounting
// (Section IV-E of the paper), Gaussian channel noise on uploaded samples
// (the robustness experiment of Fig. 7, where samples from device z receive
// noise of standard deviation delta / sqrt(r^(z))), and the fault-tolerant
// uplink path — per-attempt deadlines on a simulated clock, exponential
// backoff with seeded jitter, and a bounded retry budget — driven by a
// deterministic FaultPlan (fed/faults.h).

#ifndef FEDSC_FED_NETWORK_H_
#define FEDSC_FED_NETWORK_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "fed/codec.h"
#include "fed/faults.h"
#include "linalg/matrix.h"

namespace fedsc {

struct ChannelOptions {
  // Fig. 7's delta; the uplink of device z is perturbed by i.i.d. Gaussian
  // noise with stddev delta / sqrt(r^(z)). 0 disables noise.
  double noise_delta = 0.0;
  // Bits per transmitted floating-point value (q in Section IV-E). With the
  // serialized uplink this is no longer what the accounting charges — the
  // wire carries whole encoded messages and uplink_bits counts their real
  // bytes — but it still selects the quantizer width via the legacy
  // `quantize` switch below.
  int bits_per_value = 64;
  // Legacy switch for Section IV-E's q-bit quantization: when true (and
  // `codec.mode` was left at kRawSamples) the channel behaves as if
  // codec.mode were kUniformQuant with quant_bits = bits_per_value and
  // quant_range = quantization_range. Requires 2 <= bits_per_value <= 32.
  bool quantize = false;
  double quantization_range = 1.5;
  uint64_t seed = 0x5eed'c4a7ULL;
  // How uploads are serialized (fed/codec.h). Every uplink is actually
  // encoded to wire bytes and decoded back — CommStats counts the true
  // serialized size, and wire faults (fed/faults.h) mutate the byte stream
  // in between.
  CodecOptions codec;
  // Observation hook: called with every transmitted (post-wire-fault)
  // uplink message. Device is -1 for direct Uplink() calls that carry no
  // device identity. Used by `fedsc_cli --wire-dump` and the accounting
  // regression tests; leave empty to pay nothing.
  std::function<void(int64_t device, const std::vector<uint8_t>& wire)>
      wire_sink;
};

// The codec the channel actually runs: `options.codec` unless the legacy
// `quantize` switch asks for uniform quantization on top of a default
// (kRawSamples) codec, in which case bits_per_value / quantization_range
// map onto a kUniformQuant codec. Exposed so accounting tests and benches
// can predict exact wire sizes via EncodedWireBytes.
CodecOptions EffectiveCodecOptions(const ChannelOptions& options);

// Rejects out-of-range ChannelOptions up front instead of letting the
// channel silently misbehave: bits_per_value must be positive (and within
// [2, 32] when quantize is set), noise_delta nonnegative, and
// quantization_range positive.
Status ValidateChannelOptions(const ChannelOptions& options);

// Retry semantics for one device's uplink. The defaults describe the
// paper's idealized network: a single attempt that always succeeds.
struct RetryOptions {
  // Attempts before the server gives the device up (>= 1).
  int max_attempts = 1;
  // Per-attempt deadline on the simulated clock; an attempt whose simulated
  // latency exceeds it counts as a timeout.
  int64_t timeout_ms = 1000;
  // Exponential backoff between attempts: the a-th retry waits
  // base_backoff_ms * backoff_multiplier^(a-1), stretched by up to
  // jitter_fraction of itself using the seeded per-device RNG (so backoff
  // schedules are deterministic yet decorrelated across devices).
  int64_t base_backoff_ms = 50;
  double backoff_multiplier = 2.0;
  double jitter_fraction = 0.1;
};

Status ValidateRetryOptions(const RetryOptions& options);

// Simulated wall clock, advanced by uplink latency, timeouts, and backoff.
// Purely logical: nothing sleeps, so fault schedules replay bit-identically
// at any thread count or machine speed.
class SimClock {
 public:
  int64_t now_ms() const { return now_ms_; }
  void AdvanceMs(int64_t ms) {
    if (ms > 0) now_ms_ += ms;
  }

 private:
  int64_t now_ms_ = 0;
};

struct CommStats {
  int64_t uplink_values = 0;
  // 8 * uplink_wire_bytes: the uplink cost in bits of every transmitted
  // attempt's *serialized* message (header + section headers + payload),
  // not an analytic values-times-bits estimate.
  int64_t uplink_bits = 0;
  // True byte count of every transmitted uplink message.
  int64_t uplink_wire_bytes = 0;
  int64_t downlink_values = 0;
  double downlink_bits = 0.0;  // assignments cost log2(L) bits each
  // Communication rounds actually consumed: 1 for the clean one-shot
  // protocol, the worst per-device attempt count when retries happened.
  int64_t rounds = 0;
  int64_t retries = 0;         // re-attempts after a failed upload
  int64_t timeouts = 0;        // attempts that exceeded the deadline
  // Simulated duration of the uplink phase: the worst per-device elapsed
  // time (devices upload concurrently in a real federation).
  int64_t sim_uplink_ms = 0;
};

// What one device's (possibly retried) uplink produced.
struct UplinkOutcome {
  bool delivered = false;
  Matrix received;     // post-fault, post-channel payload (when delivered)
  int attempts = 0;    // attempts actually made
  int64_t elapsed_ms = 0;  // simulated time this device's uplink consumed
  Status status;       // why delivery failed (OK when delivered)
};

// Simulates the client->server->client channel of the one-shot protocol.
class Channel {
 public:
  // Validates `options` first; prefer this over the raw constructor.
  static Result<Channel> Create(const ChannelOptions& options);

  explicit Channel(const ChannelOptions& options);

  // Uplink of an n x r sample matrix from one device: applies channel noise
  // (if configured), encodes the result with the effective codec, charges
  // the serialized byte count to the stats, and returns the decoded matrix —
  // i.e. exactly what the server reconstructs from the wire. Bit-identical
  // to the historical in-place path for kRawSamples (f64) and for the
  // legacy quantizer grid.
  Matrix Uplink(const Matrix& samples);

  // Fault-aware uplink of device z's payload: applies the device's payload
  // fault once, then attempts delivery up to retry.max_attempts times.
  // Dropped devices and attempts whose simulated latency exceeds
  // retry.timeout_ms time out (the deadline is charged to the clock);
  // scheduled transient losses consume the attempt and its bandwidth;
  // between attempts the clock advances by jittered exponential backoff.
  // Every transmitted attempt is charged to the uplink bit accounting —
  // retries are exactly the communication overhead the one-shot claim is
  // measured against. The delivering attempt's payload travels as encoded
  // wire bytes; the device's scheduled WireFault (if any) mutates those
  // bytes in flight, and a message the decoder rejects yields
  // delivered = false with a kWireCorrupt status (the caller quarantines
  // the device — the bytes arrived, they were just unusable).
  // Deterministic in (options, plan, device, payload).
  UplinkOutcome UplinkWithRetry(int64_t device, const Matrix& payload,
                                const FaultPlan& plan,
                                const RetryOptions& retry, SimClock* clock);

  // Downlink of `count` cluster assignments out of `num_clusters` classes to
  // one device: log2(L) bits each.
  void Downlink(int64_t count, int64_t num_clusters);

  // Marks the completion of `n` communication rounds (1 for the clean
  // one-shot protocol; the worst per-device attempt count under faults).
  void FinishRounds(int64_t n);
  void FinishRound() { FinishRounds(1); }

  const CommStats& stats() const { return stats_; }

 private:
  // Adds channel noise in place (no-op when noise_delta == 0). Consumes
  // rng_ draws in the same order as the historical in-place path.
  void ApplyNoise(Matrix* samples);
  // Serializes under the effective codec; encoding a validated channel's
  // payload cannot fail, so failures crash (programming error).
  std::vector<uint8_t> Encode(const Matrix& samples);
  // Charges one transmitted attempt: `values` sample values as
  // `wire_bytes` serialized bytes.
  void ChargeUplinkAttempt(int64_t values, int64_t wire_bytes);

  ChannelOptions options_;
  CodecOptions codec_;
  Rng rng_;
  CommStats stats_;
};

}  // namespace fedsc

#endif  // FEDSC_FED_NETWORK_H_
