#include "fed/partition.h"

#include <algorithm>
#include <set>

namespace fedsc {

std::vector<int64_t> FederatedDataset::ToGlobalOrder(
    const std::vector<std::vector<int64_t>>& per_device_values) const {
  FEDSC_CHECK(per_device_values.size() == global_index.size());
  std::vector<int64_t> global(static_cast<size_t>(total_points), -1);
  for (size_t z = 0; z < global_index.size(); ++z) {
    FEDSC_CHECK(per_device_values[z].size() == global_index[z].size())
        << "device " << z << " value count mismatch";
    for (size_t i = 0; i < global_index[z].size(); ++i) {
      global[static_cast<size_t>(global_index[z][i])] =
          per_device_values[z][i];
    }
  }
  return global;
}

std::vector<int64_t> FederatedDataset::GlobalTruth() const {
  return ToGlobalOrder(labels);
}

std::vector<int64_t> FederatedDataset::DevicesPerCluster() const {
  std::vector<int64_t> count(static_cast<size_t>(num_clusters), 0);
  for (const auto& device_labels : labels) {
    std::set<int64_t> present(device_labels.begin(), device_labels.end());
    for (int64_t l : present) ++count[static_cast<size_t>(l)];
  }
  return count;
}

std::vector<int64_t> FederatedDataset::ClustersPerDevice() const {
  std::vector<int64_t> count;
  count.reserve(labels.size());
  for (const auto& device_labels : labels) {
    const std::set<int64_t> present(device_labels.begin(),
                                    device_labels.end());
    count.push_back(static_cast<int64_t>(present.size()));
  }
  return count;
}

Result<FederatedDataset> PartitionAcrossDevices(
    const Dataset& dataset, const PartitionOptions& options) {
  const int64_t num_devices = options.num_devices;
  const int64_t num_clusters = dataset.num_clusters;
  const int64_t total = dataset.points.cols();
  if (num_devices < 1) {
    return Status::InvalidArgument("need at least one device");
  }
  if (total == 0 || num_clusters == 0) {
    return Status::InvalidArgument("cannot partition an empty dataset");
  }
  const bool iid = options.clusters_per_device <= 0 ||
                   options.clusters_per_device >= num_clusters;
  const int64_t clusters_lo =
      iid ? num_clusters : options.clusters_per_device;
  const int64_t clusters_hi =
      iid ? num_clusters
          : std::min(std::max(options.clusters_per_device_max, clusters_lo),
                     num_clusters);

  Rng rng(options.seed);

  // Which devices hold which clusters.
  std::vector<std::vector<int64_t>> devices_of_cluster(
      static_cast<size_t>(num_clusters));
  for (int64_t z = 0; z < num_devices; ++z) {
    const int64_t count =
        clusters_lo + (clusters_hi > clusters_lo
                           ? rng.UniformInt(clusters_hi - clusters_lo + 1)
                           : 0);
    const std::vector<int64_t> chosen =
        iid ? [&] {
          std::vector<int64_t> all(static_cast<size_t>(num_clusters));
          for (int64_t l = 0; l < num_clusters; ++l) {
            all[static_cast<size_t>(l)] = l;
          }
          return all;
        }()
            : rng.SampleWithoutReplacement(num_clusters, count);
    for (int64_t l : chosen) {
      devices_of_cluster[static_cast<size_t>(l)].push_back(z);
    }
  }
  // Every cluster must land on at least one device. An uncovered cluster
  // takes the place of a redundantly-covered one on some device, keeping
  // each device's L^(z) at clusters_per_device. (Whenever Z * L' >= L such
  // a swap exists by pigeonhole; otherwise full coverage is impossible and
  // we fall back to adding an extra cluster to a random device.)
  std::vector<std::vector<int64_t>> clusters_of_device(
      static_cast<size_t>(num_devices));
  for (int64_t l = 0; l < num_clusters; ++l) {
    for (int64_t z : devices_of_cluster[static_cast<size_t>(l)]) {
      clusters_of_device[static_cast<size_t>(z)].push_back(l);
    }
  }
  for (int64_t l = 0; l < num_clusters; ++l) {
    if (!devices_of_cluster[static_cast<size_t>(l)].empty()) continue;
    bool swapped = false;
    std::vector<int64_t> device_order(static_cast<size_t>(num_devices));
    for (int64_t z = 0; z < num_devices; ++z) {
      device_order[static_cast<size_t>(z)] = z;
    }
    rng.Shuffle(&device_order);
    for (int64_t z : device_order) {
      auto& held = clusters_of_device[static_cast<size_t>(z)];
      for (size_t slot = 0; slot < held.size(); ++slot) {
        const int64_t k = held[slot];
        auto& holders = devices_of_cluster[static_cast<size_t>(k)];
        if (holders.size() < 2) continue;
        holders.erase(std::find(holders.begin(), holders.end(), z));
        held[slot] = l;
        devices_of_cluster[static_cast<size_t>(l)].push_back(z);
        swapped = true;
        break;
      }
      if (swapped) break;
    }
    if (!swapped) {
      const int64_t z = rng.UniformInt(num_devices);
      devices_of_cluster[static_cast<size_t>(l)].push_back(z);
      clusters_of_device[static_cast<size_t>(z)].push_back(l);
    }
  }

  // Deal each cluster's points round-robin over its devices (shuffled so
  // the split is random, balanced in expectation).
  std::vector<std::vector<int64_t>> member_columns(
      static_cast<size_t>(num_clusters));
  for (int64_t i = 0; i < total; ++i) {
    member_columns[static_cast<size_t>(dataset.labels[static_cast<size_t>(i)])]
        .push_back(i);
  }
  std::vector<std::vector<int64_t>> device_columns(
      static_cast<size_t>(num_devices));
  for (int64_t l = 0; l < num_clusters; ++l) {
    auto& columns = member_columns[static_cast<size_t>(l)];
    rng.Shuffle(&columns);
    const auto& holders = devices_of_cluster[static_cast<size_t>(l)];
    for (size_t p = 0; p < columns.size(); ++p) {
      device_columns[static_cast<size_t>(holders[p % holders.size()])]
          .push_back(columns[p]);
    }
  }

  FederatedDataset fed;
  fed.num_clusters = num_clusters;
  fed.total_points = total;
  fed.ambient_dim = dataset.points.rows();
  fed.points.reserve(static_cast<size_t>(num_devices));
  fed.labels.reserve(static_cast<size_t>(num_devices));
  fed.global_index.reserve(static_cast<size_t>(num_devices));
  for (int64_t z = 0; z < num_devices; ++z) {
    auto& columns = device_columns[static_cast<size_t>(z)];
    std::sort(columns.begin(), columns.end());
    fed.points.push_back(dataset.points.GatherCols(columns));
    std::vector<int64_t> device_labels;
    device_labels.reserve(columns.size());
    for (int64_t c : columns) {
      device_labels.push_back(dataset.labels[static_cast<size_t>(c)]);
    }
    fed.labels.push_back(std::move(device_labels));
    fed.global_index.push_back(std::move(columns));
  }
  return fed;
}

}  // namespace fedsc
