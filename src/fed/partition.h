// Partitioning a dataset across the devices of a simulated federated
// network, in the two regimes of Section VI: IID (every device draws from
// all L clusters) and non-IID (each device draws from a random subset of L'
// clusters — the paper's statistical heterogeneity, L^(z) = L' < L).

#ifndef FEDSC_FED_PARTITION_H_
#define FEDSC_FED_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/synthetic.h"
#include "linalg/matrix.h"

namespace fedsc {

// A dataset split across Z devices. Device z holds points[z] (n x N^(z));
// labels[z] are ground truth (for evaluation only — the algorithms never see
// them), and global_index[z][i] maps local point i back to its column in the
// original dataset.
struct FederatedDataset {
  std::vector<Matrix> points;
  std::vector<std::vector<int64_t>> labels;
  std::vector<std::vector<int64_t>> global_index;
  int64_t num_clusters = 0;
  int64_t total_points = 0;
  int64_t ambient_dim = 0;

  int64_t num_devices() const { return static_cast<int64_t>(points.size()); }

  // Scatters per-device values back into dataset order (the inverse of the
  // partition). values.size() must match the partition layout.
  std::vector<int64_t> ToGlobalOrder(
      const std::vector<std::vector<int64_t>>& per_device_values) const;

  // Ground-truth labels in dataset order.
  std::vector<int64_t> GlobalTruth() const;

  // Z_l for every cluster l: the number of devices holding at least one of
  // its points (Section III-B).
  std::vector<int64_t> DevicesPerCluster() const;

  // L^(z) for every device z: the number of distinct clusters present.
  std::vector<int64_t> ClustersPerDevice() const;
};

struct PartitionOptions {
  int64_t num_devices = 10;
  // Clusters per device (L'). <= 0 or >= L means IID (all clusters).
  int64_t clusters_per_device = 0;
  // When > clusters_per_device, each device independently draws its cluster
  // count uniformly from [clusters_per_device, clusters_per_device_max]
  // (Table III's 2 <= L^(z) <= 4 setting). 0 means fixed L'.
  int64_t clusters_per_device_max = 0;
  uint64_t seed = 0x5eed'9a47ULL;
};

// Distributes the dataset: each device picks its cluster subset, then each
// cluster's points are dealt round-robin among the devices that picked it
// (every cluster is guaranteed at least one device).
Result<FederatedDataset> PartitionAcrossDevices(
    const Dataset& dataset, const PartitionOptions& options);

}  // namespace fedsc

#endif  // FEDSC_FED_PARTITION_H_
