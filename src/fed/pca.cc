#include "fed/pca.h"

#include <algorithm>

#include "linalg/blas.h"
#include "linalg/svd.h"

namespace fedsc {

Result<PcaResult> Pca(const Matrix& x, int64_t dim) {
  const int64_t n = x.rows();
  const int64_t num_points = x.cols();
  if (num_points == 0) return Status::InvalidArgument("PCA of no points");
  if (dim < 1) return Status::InvalidArgument("PCA dim must be >= 1");

  PcaResult result;
  result.mean.assign(static_cast<size_t>(n), 0.0);
  for (int64_t j = 0; j < num_points; ++j) {
    Axpy(1.0, x.ColData(j), result.mean.data(), n);
  }
  Scal(1.0 / static_cast<double>(num_points), result.mean.data(), n);

  Matrix centered = x;
  for (int64_t j = 0; j < num_points; ++j) {
    Axpy(-1.0, result.mean.data(), centered.ColData(j), n);
  }

  const int64_t keep = std::min<int64_t>(dim, std::min(n, num_points));
  FEDSC_ASSIGN_OR_RETURN(SvdResult svd, JacobiSvd(centered));
  result.components = svd.u.ColRange(0, keep);
  // Projection is a plain (non-symmetric) product, so it stays on Gemm —
  // which dispatches to the blocked packed engine above the cutoff.
  result.projected = MatMulTN(result.components, centered);
  return result;
}

}  // namespace fedsc
