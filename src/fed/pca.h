// Principal component analysis, used by the k-FED + PCA baselines of
// Table III/IV: each device projects its *local* data onto its own top
// principal components before clustering. (The projections of different
// devices live in incompatible coordinate systems — exactly why the paper
// finds PCA + k-FED performs near chance on high-dimensional data.)

#ifndef FEDSC_FED_PCA_H_
#define FEDSC_FED_PCA_H_

#include <cstdint>

#include "common/result.h"
#include "linalg/matrix.h"

namespace fedsc {

struct PcaResult {
  Matrix projected;  // dim x N scores
  Matrix components;  // n x dim orthonormal principal directions
  Vector mean;        // n, the subtracted column mean
};

// Projects the columns of x onto their top `dim` principal components
// (centering first). If dim exceeds the available rank, the projection keeps
// every component and pads nothing; projected.rows() is min(dim, rank
// bound).
Result<PcaResult> Pca(const Matrix& x, int64_t dim);

}  // namespace fedsc

#endif  // FEDSC_FED_PCA_H_
