#include "fed/privacy.h"

#include <cmath>

#include "linalg/blas.h"

namespace fedsc {

Result<double> GaussianMechanismSigma(const DpOptions& options) {
  if (options.epsilon <= 0.0 || options.epsilon > 1.0) {
    return Status::InvalidArgument(
        "Gaussian mechanism needs 0 < epsilon <= 1");
  }
  if (options.delta <= 0.0 || options.delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (options.sensitivity <= 0.0) {
    return Status::InvalidArgument("sensitivity must be positive");
  }
  return options.sensitivity *
         std::sqrt(2.0 * std::log(1.25 / options.delta)) / options.epsilon;
}

Result<Matrix> PrivatizeSamples(const Matrix& samples,
                                const DpOptions& options, Rng* rng) {
  FEDSC_ASSIGN_OR_RETURN(const double sigma, GaussianMechanismSigma(options));
  const double clip = options.sensitivity / 2.0;
  Matrix released = samples;
  const int64_t n = released.rows();
  for (int64_t j = 0; j < released.cols(); ++j) {
    double* col = released.ColData(j);
    const double norm = Norm2(col, n);
    if (norm > clip) Scal(clip / norm, col, n);
    for (int64_t i = 0; i < n; ++i) col[i] += sigma * rng->Gaussian();
  }
  return released;
}

}  // namespace fedsc
