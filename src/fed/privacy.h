// Differential privacy for the uplink (the paper's Remark 2 notes that DP
// "can be incorporated into Fed-SC to further protect the privacy while
// uploading Theta^(z)"; this module incorporates it).
//
// The uploaded samples are unit vectors, so the l2 sensitivity of replacing
// one device's sample is at most 2. The Gaussian mechanism with
//
//   sigma = sensitivity * sqrt(2 ln(1.25 / delta)) / epsilon
//
// gives each uploaded sample (epsilon, delta)-DP (Dwork-Roth, Thm. A.1;
// valid for epsilon <= 1). Because every device uploads each sample exactly
// once, the per-sample guarantee is also the per-round device guarantee
// under parallel composition across devices.

#ifndef FEDSC_FED_PRIVACY_H_
#define FEDSC_FED_PRIVACY_H_

#include "common/result.h"
#include "common/rng.h"
#include "linalg/matrix.h"

namespace fedsc {

struct DpOptions {
  double epsilon = 1.0;
  double delta = 1e-5;
  // l2 sensitivity of one uploaded vector; 2 for unit-norm samples.
  double sensitivity = 2.0;
};

// Noise scale of the Gaussian mechanism for these parameters. Fails for
// epsilon <= 0, epsilon > 1 (outside the theorem's regime), or
// delta outside (0, 1).
Result<double> GaussianMechanismSigma(const DpOptions& options);

// Clips every column of `samples` to l2 norm <= options.sensitivity / 2 and
// adds i.i.d. N(0, sigma^2) noise: the released matrix is
// (epsilon, delta)-DP with respect to replacing any single column.
Result<Matrix> PrivatizeSamples(const Matrix& samples,
                                const DpOptions& options, Rng* rng);

}  // namespace fedsc

#endif  // FEDSC_FED_PRIVACY_H_
