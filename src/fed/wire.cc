#include "fed/wire.h"

#include <cmath>
#include <cstring>
#include <string>

namespace fedsc {

namespace {

// Little-endian scalar append / read. The wire format is little-endian on
// every platform; these avoid any aliasing or alignment assumptions.
template <typename T>
void AppendLe(std::vector<uint8_t>* out, T value) {
  static_assert(sizeof(T) <= 8, "scalar expected");
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(T));
  for (size_t i = 0; i < sizeof(T); ++i) {
    out->push_back(static_cast<uint8_t>((bits >> (8 * i)) & 0xFF));
  }
}

template <typename T>
T ReadLe(const uint8_t* data) {
  uint64_t bits = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    bits |= static_cast<uint64_t>(data[i]) << (8 * i);
  }
  T value;
  std::memcpy(&value, &bits, sizeof(T));
  return value;
}

Status Corrupt(std::string reason) {
  return Status::WireCorrupt(std::move(reason));
}

bool ValidDtype(uint8_t raw) {
  return raw <= static_cast<uint8_t>(WireDtype::kPackedUint);
}

bool ValidSectionKind(uint8_t raw) {
  return raw <= static_cast<uint8_t>(WireSectionKind::kCoeffs);
}

}  // namespace

const char* WireDtypeName(WireDtype dtype) {
  switch (dtype) {
    case WireDtype::kF64:
      return "f64";
    case WireDtype::kF32:
      return "f32";
    case WireDtype::kPackedUint:
      return "packed-uint";
  }
  return "unknown";
}

const char* WireSectionKindName(WireSectionKind kind) {
  switch (kind) {
    case WireSectionKind::kSamples:
      return "samples";
    case WireSectionKind::kBasis:
      return "basis";
    case WireSectionKind::kCoeffs:
      return "coeffs";
  }
  return "unknown";
}

uint32_t Crc32(const uint8_t* data, size_t size) {
  // Table generated on first use from the reflected IEEE 802.3 polynomial.
  static const uint32_t* const kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
      }
      table[i] = crc;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ data[i]) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

int64_t WirePayloadBytes(WireDtype dtype, int64_t rows, int64_t cols,
                         int quant_bits) {
  if (rows < 0 || cols < 0) return -1;
  // Shapes fit u32 on the wire, so the element count fits in 64 bits; the
  // caller-facing guard against absurd sizes is WireLimits::max_elements.
  const int64_t elements = rows * cols;
  switch (dtype) {
    case WireDtype::kF64:
      return elements * 8;
    case WireDtype::kF32:
      return elements * 4;
    case WireDtype::kPackedUint: {
      if (quant_bits < 2 || quant_bits > 32) return -1;
      return (elements * quant_bits + 7) / 8;
    }
  }
  return -1;
}

Result<std::vector<uint8_t>> SerializeWireMessage(
    const WireHeader& header, const std::vector<WireSectionSpec>& sections) {
  if (sections.empty() || sections.size() > 255) {
    return Status::InvalidArgument("a wire message carries 1..255 sections");
  }
  for (const WireSectionSpec& section : sections) {
    const int64_t expected =
        WirePayloadBytes(section.dtype, section.rows, section.cols,
                         header.quant_bits);
    if (expected < 0 ||
        static_cast<size_t>(expected) != section.payload.size()) {
      return Status::InvalidArgument(
          std::string("section '") + WireSectionKindName(section.kind) +
          "' payload is " + std::to_string(section.payload.size()) +
          " bytes, expected " + std::to_string(expected) + " for " +
          std::to_string(section.rows) + "x" + std::to_string(section.cols) +
          " " + WireDtypeName(section.dtype));
    }
  }

  std::vector<uint8_t> out;
  size_t total = kWireHeaderBytes;
  for (const WireSectionSpec& section : sections) {
    total += kWireSectionHeaderBytes + section.payload.size();
  }
  out.reserve(total);

  // Header: layout in DESIGN.md §9.
  out.insert(out.end(), kWireMagic, kWireMagic + 4);
  AppendLe<uint16_t>(&out, header.version);
  AppendLe<uint16_t>(&out, static_cast<uint16_t>(kWireHeaderBytes));
  out.push_back(header.codec);
  out.push_back(static_cast<uint8_t>(header.dtype));
  out.push_back(header.quant_bits);
  out.push_back(static_cast<uint8_t>(sections.size()));
  AppendLe<uint32_t>(&out, header.rows);
  AppendLe<uint32_t>(&out, header.cols);
  AppendLe<double>(&out, header.quant_range);
  AppendLe<uint32_t>(&out, 0);  // reserved
  AppendLe<uint32_t>(&out, Crc32(out.data(), out.size()));

  for (const WireSectionSpec& section : sections) {
    out.push_back(static_cast<uint8_t>(section.kind));
    out.push_back(static_cast<uint8_t>(section.dtype));
    AppendLe<uint16_t>(&out, 0);  // reserved
    AppendLe<uint32_t>(&out, section.rows);
    AppendLe<uint32_t>(&out, section.cols);
    AppendLe<uint64_t>(&out, static_cast<uint64_t>(section.payload.size()));
    AppendLe<uint32_t>(&out,
                       Crc32(section.payload.data(), section.payload.size()));
    out.insert(out.end(), section.payload.begin(), section.payload.end());
  }
  return out;
}

Result<WireMessage> ParseWireMessage(const uint8_t* data, size_t size,
                                     const WireLimits& limits) {
  if (data == nullptr && size > 0) {
    return Corrupt("null buffer with nonzero size");
  }
  if (size < kWireHeaderBytes) {
    return Corrupt("buffer of " + std::to_string(size) +
                   " bytes is shorter than the " +
                   std::to_string(kWireHeaderBytes) + "-byte header");
  }
  if (std::memcmp(data, kWireMagic, 4) != 0) {
    return Corrupt("bad magic (expected 'FSCW')");
  }
  const uint16_t version = ReadLe<uint16_t>(data + 4);
  if (version == 0 || version > kWireVersion) {
    return Corrupt("unsupported wire version " + std::to_string(version) +
                   " (this decoder knows <= " +
                   std::to_string(kWireVersion) + ")");
  }
  const uint16_t header_bytes = ReadLe<uint16_t>(data + 6);
  if (header_bytes != kWireHeaderBytes) {
    return Corrupt("header_bytes " + std::to_string(header_bytes) +
                   " != " + std::to_string(kWireHeaderBytes));
  }
  const uint32_t declared_crc = ReadLe<uint32_t>(data + 32);
  const uint32_t actual_crc = Crc32(data, 32);
  if (declared_crc != actual_crc) {
    return Corrupt("header CRC mismatch");
  }

  WireMessage message;
  message.header.version = version;
  message.header.codec = data[8];
  if (!ValidDtype(data[9])) {
    return Corrupt("unknown dtype byte " + std::to_string(data[9]));
  }
  message.header.dtype = static_cast<WireDtype>(data[9]);
  message.header.quant_bits = data[10];
  message.header.num_sections = data[11];
  message.header.rows = ReadLe<uint32_t>(data + 12);
  message.header.cols = ReadLe<uint32_t>(data + 16);
  message.header.quant_range = ReadLe<double>(data + 20);
  if (message.header.num_sections == 0) {
    return Corrupt("message declares zero sections");
  }
  const int64_t header_elements =
      static_cast<int64_t>(message.header.rows) *
      static_cast<int64_t>(message.header.cols);
  if (header_elements > limits.max_elements) {
    return Corrupt("declared shape " + std::to_string(message.header.rows) +
                   "x" + std::to_string(message.header.cols) +
                   " exceeds the decoder element cap");
  }

  size_t offset = kWireHeaderBytes;
  for (int s = 0; s < message.header.num_sections; ++s) {
    if (size - offset < kWireSectionHeaderBytes) {
      return Corrupt("truncated before section " + std::to_string(s) +
                     " header");
    }
    const uint8_t* sh = data + offset;
    WireSectionView view;
    if (!ValidSectionKind(sh[0])) {
      return Corrupt("unknown section kind byte " + std::to_string(sh[0]));
    }
    view.kind = static_cast<WireSectionKind>(sh[0]);
    if (!ValidDtype(sh[1])) {
      return Corrupt("unknown section dtype byte " + std::to_string(sh[1]));
    }
    view.dtype = static_cast<WireDtype>(sh[1]);
    view.rows = ReadLe<uint32_t>(sh + 4);
    view.cols = ReadLe<uint32_t>(sh + 8);
    const uint64_t declared_bytes = ReadLe<uint64_t>(sh + 12);
    const uint32_t payload_crc = ReadLe<uint32_t>(sh + 20);
    offset += kWireSectionHeaderBytes;

    const int64_t elements = static_cast<int64_t>(view.rows) *
                             static_cast<int64_t>(view.cols);
    if (elements > limits.max_elements) {
      return Corrupt("section " + std::to_string(s) + " shape " +
                     std::to_string(view.rows) + "x" +
                     std::to_string(view.cols) +
                     " exceeds the decoder element cap");
    }
    const int64_t expected_bytes = WirePayloadBytes(
        view.dtype, view.rows, view.cols, message.header.quant_bits);
    if (expected_bytes < 0) {
      return Corrupt("section " + std::to_string(s) +
                     " has no valid payload size (dtype " +
                     WireDtypeName(view.dtype) + ", quant_bits " +
                     std::to_string(message.header.quant_bits) + ")");
    }
    if (declared_bytes != static_cast<uint64_t>(expected_bytes)) {
      return Corrupt("section " + std::to_string(s) + " declares " +
                     std::to_string(declared_bytes) + " payload bytes, " +
                     std::to_string(expected_bytes) + " expected for its " +
                     "shape and dtype");
    }
    if (size - offset < declared_bytes) {
      return Corrupt("section " + std::to_string(s) +
                     " payload truncated (" +
                     std::to_string(size - offset) + " of " +
                     std::to_string(declared_bytes) + " bytes present)");
    }
    view.payload = data + offset;
    view.payload_bytes = static_cast<size_t>(declared_bytes);
    offset += view.payload_bytes;
    if (Crc32(view.payload, view.payload_bytes) != payload_crc) {
      return Corrupt("section " + std::to_string(s) + " payload CRC " +
                     "mismatch");
    }
    message.sections.push_back(view);
  }
  if (offset != size) {
    return Corrupt(std::to_string(size - offset) +
                   " trailing bytes after the last section");
  }
  return message;
}

}  // namespace fedsc
