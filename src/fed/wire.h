// Versioned flat binary wire format for one-shot uplink payloads.
//
// Until now the simulated Channel handed Matrix structs around and *counted*
// bits analytically; this layer makes the upload a real byte stream so it
// can cross a transport (ROADMAP item 5). A wire message is:
//
//   fixed 36-byte header | section 0 | section 1 | ...
//
// where each section is a 24-byte section header followed by its payload
// bytes. Every section payload carries a CRC32, and the header protects
// itself with one too, so truncation, bit flips, and length lies are all
// detectable before any payload byte is interpreted. The byte layout is
// specified field-by-field in DESIGN.md §9; tests/testdata/*.wire pins it
// at byte level — any layout change MUST bump kWireVersion and keep the old
// decoder path alive.
//
// Parsing NEVER crashes and never reads out of bounds on any input: every
// malformed buffer yields a typed Status (StatusCode::kWireCorrupt), which
// tests/wire_fuzz_test.cc enforces over >= 10k seed-driven mutations under
// ASAN. The codec layer (fed/codec.h) sits on top and interprets sections
// as sample matrices.

#ifndef FEDSC_FED_WIRE_H_
#define FEDSC_FED_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"

namespace fedsc {

// "FSCW" — the first four bytes of every Fed-SC wire message.
inline constexpr uint8_t kWireMagic[4] = {'F', 'S', 'C', 'W'};
// Bump on ANY byte-layout change; decoders reject versions they don't know.
inline constexpr uint16_t kWireVersion = 1;
inline constexpr size_t kWireHeaderBytes = 36;
inline constexpr size_t kWireSectionHeaderBytes = 24;

// On-the-wire element encodings. kPackedUint is the uniform-quantizer
// output: indices of quant_bits bits each, packed little-endian into the
// payload with zero padding in the final byte.
enum class WireDtype : uint8_t {
  kF64 = 0,
  kF32 = 1,
  kPackedUint = 2,
};

const char* WireDtypeName(WireDtype dtype);

// Role of a section inside the message. kRawSamples / kUniformQuant carry a
// single kSamples section; kBasisCoeffs carries kBasis then kCoeffs.
enum class WireSectionKind : uint8_t {
  kSamples = 0,
  kBasis = 1,
  kCoeffs = 2,
};

const char* WireSectionKindName(WireSectionKind kind);

// Decoded fixed header (bytes [0, 36) of the message; layout in DESIGN.md
// §9). `codec` is the raw codec-mode byte — the codec layer owns the enum.
struct WireHeader {
  uint16_t version = kWireVersion;
  uint8_t codec = 0;
  WireDtype dtype = WireDtype::kF64;
  uint8_t quant_bits = 0;       // 0 unless dtype == kPackedUint
  uint8_t num_sections = 0;
  uint32_t rows = 0;            // decoded sample-matrix shape
  uint32_t cols = 0;
  double quant_range = 0.0;     // 0 unless dtype == kPackedUint
};

// One parsed section: a validated view into the message buffer (payload CRC
// already checked). Views borrow the caller's buffer and are invalidated
// with it.
struct WireSectionView {
  WireSectionKind kind = WireSectionKind::kSamples;
  WireDtype dtype = WireDtype::kF64;
  uint32_t rows = 0;
  uint32_t cols = 0;
  const uint8_t* payload = nullptr;
  size_t payload_bytes = 0;
};

// A fully parsed message: header plus CRC-verified section views into the
// original buffer.
struct WireMessage {
  WireHeader header;
  std::vector<WireSectionView> sections;
};

// Decode-side resource bounds: a hostile length field must not be able to
// make the parser allocate unbounded memory. rows * cols of any section (and
// of the header shape) is capped.
struct WireLimits {
  int64_t max_elements = int64_t{1} << 26;  // 64 Mi values = 512 MB of f64
};

// IEEE 802.3 CRC32 (polynomial 0xEDB88320, initial/final 0xFFFFFFFF).
uint32_t Crc32(const uint8_t* data, size_t size);

// Serializes a message: header with `header`'s fields (num_sections is
// taken from `sections`; every section's CRC and byte count are computed
// here). Section payload sizes must match rows * cols at the section dtype
// (exactly, packed sizes included) — violations are programming errors and
// return InvalidArgument.
struct WireSectionSpec {
  WireSectionKind kind = WireSectionKind::kSamples;
  WireDtype dtype = WireDtype::kF64;
  uint32_t rows = 0;
  uint32_t cols = 0;
  std::vector<uint8_t> payload;
};

Result<std::vector<uint8_t>> SerializeWireMessage(
    const WireHeader& header, const std::vector<WireSectionSpec>& sections);

// Parses and fully validates a message: magic, version, header CRC, section
// count and bounds, per-section payload sizes and CRCs, exact total length.
// Every failure is Status(kWireCorrupt, reason); success guarantees each
// view's [payload, payload + payload_bytes) lies inside [data, data + size).
Result<WireMessage> ParseWireMessage(const uint8_t* data, size_t size,
                                     const WireLimits& limits = {});

// Exact payload byte count of rows x cols values at `dtype` (`quant_bits`
// used only for kPackedUint). Returns -1 on overflow / invalid dtype.
int64_t WirePayloadBytes(WireDtype dtype, int64_t rows, int64_t cols,
                         int quant_bits);

}  // namespace fedsc

#endif  // FEDSC_FED_WIRE_H_
