#include "graph/components.h"

#include "common/check.h"

namespace fedsc {

ComponentsResult ConnectedComponents(const SparseMatrix& adjacency) {
  FEDSC_CHECK(adjacency.rows() == adjacency.cols());
  const int64_t n = adjacency.rows();
  const SparseMatrix transposed = adjacency.Transposed();

  ComponentsResult result;
  result.labels.assign(static_cast<size_t>(n), -1);
  std::vector<int64_t> stack;
  for (int64_t start = 0; start < n; ++start) {
    if (result.labels[static_cast<size_t>(start)] != -1) continue;
    const int64_t component = result.count++;
    stack.push_back(start);
    result.labels[static_cast<size_t>(start)] = component;
    while (!stack.empty()) {
      const int64_t u = stack.back();
      stack.pop_back();
      for (const SparseMatrix* m : {&adjacency, &transposed}) {
        for (int64_t k = m->row_ptr()[static_cast<size_t>(u)];
             k < m->row_ptr()[static_cast<size_t>(u) + 1]; ++k) {
          if (m->values()[static_cast<size_t>(k)] == 0.0) continue;
          const int64_t v = m->col_idx()[static_cast<size_t>(k)];
          if (result.labels[static_cast<size_t>(v)] == -1) {
            result.labels[static_cast<size_t>(v)] = component;
            stack.push_back(v);
          }
        }
      }
    }
  }
  return result;
}

}  // namespace fedsc
