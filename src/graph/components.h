// Connected components of an undirected graph given as a (symmetric)
// sparse adjacency/affinity matrix.

#ifndef FEDSC_GRAPH_COMPONENTS_H_
#define FEDSC_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "linalg/sparse.h"

namespace fedsc {

struct ComponentsResult {
  int64_t count = 0;
  // labels[i] in [0, count), numbered by first appearance.
  std::vector<int64_t> labels;
};

// Any nonzero entry counts as an edge; the matrix is treated as symmetric
// (an edge in either triangle connects both endpoints).
ComponentsResult ConnectedComponents(const SparseMatrix& adjacency);

}  // namespace fedsc

#endif  // FEDSC_GRAPH_COMPONENTS_H_
