#include "graph/eigengap.h"

#include <algorithm>

#include "graph/laplacian.h"
#include "linalg/eig.h"

namespace fedsc {

Result<int64_t> EstimateClusterCountFromSpectrum(
    const Vector& ascending_eigenvalues, const EigengapOptions& options) {
  const int64_t n = static_cast<int64_t>(ascending_eigenvalues.size());
  if (n < 2) {
    return Status::InvalidArgument(
        "eigengap heuristic needs at least 2 eigenvalues");
  }
  int64_t limit = n - 1;
  if (options.max_clusters > 0) {
    limit = std::min(limit, options.max_clusters);
  }
  int64_t best_index = 1;
  double best_gap = -1.0;
  for (int64_t i = 1; i <= limit; ++i) {
    const double gap = ascending_eigenvalues[static_cast<size_t>(i)] -
                       ascending_eigenvalues[static_cast<size_t>(i - 1)];
    if (gap > best_gap) {
      best_gap = gap;
      best_index = i;
    }
  }
  return best_index;
}

Result<int64_t> EstimateClusterCount(const Matrix& w,
                                     const EigengapOptions& options) {
  if (w.rows() != w.cols() || w.rows() < 2) {
    return Status::InvalidArgument(
        "eigengap heuristic needs a square affinity of size >= 2");
  }
  FEDSC_ASSIGN_OR_RETURN(Vector spectrum,
                         SymmetricEigenvalues(NormalizedLaplacian(w)));
  return EstimateClusterCountFromSpectrum(spectrum, options);
}

}  // namespace fedsc
