// The eigengap heuristic (Eq. 3 of the paper): estimate the number of
// clusters in an affinity graph as the position of the largest gap in the
// sorted spectrum of the normalized Laplacian.

#ifndef FEDSC_GRAPH_EIGENGAP_H_
#define FEDSC_GRAPH_EIGENGAP_H_

#include <cstdint>

#include "common/result.h"
#include "linalg/matrix.h"

namespace fedsc {

struct EigengapOptions {
  // Only gaps at positions 1..max_clusters are considered (the paper caps
  // r^(z) by an upper bound on real-world data; <= 0 means no cap).
  int64_t max_clusters = 0;
};

// r = argmax_{i in [N-1]} (sigma_{i+1} - sigma_i) over the ascending
// eigenvalues of the normalized Laplacian of `w`. Returns a value in
// [1, N-1] (or [1, max_clusters]).
Result<int64_t> EstimateClusterCount(const Matrix& w,
                                     const EigengapOptions& options = {});

// Same heuristic applied to an already-computed ascending spectrum.
Result<int64_t> EstimateClusterCountFromSpectrum(
    const Vector& ascending_eigenvalues, const EigengapOptions& options = {});

}  // namespace fedsc

#endif  // FEDSC_GRAPH_EIGENGAP_H_
