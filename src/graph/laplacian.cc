#include "graph/laplacian.h"

#include <cmath>

#include "common/check.h"

namespace fedsc {

namespace {

// 1/sqrt(d) with the zero-degree convention (isolated vertices scale to 0).
Vector InverseSqrt(const Vector& degrees) {
  Vector inv(degrees.size(), 0.0);
  for (size_t i = 0; i < degrees.size(); ++i) {
    if (degrees[i] > 0.0) inv[i] = 1.0 / std::sqrt(degrees[i]);
  }
  return inv;
}

}  // namespace

Vector Degrees(const Matrix& w) {
  FEDSC_CHECK(w.rows() == w.cols()) << "affinity matrix must be square";
  Vector degrees(static_cast<size_t>(w.rows()), 0.0);
  for (int64_t j = 0; j < w.cols(); ++j) {
    const double* col = w.ColData(j);
    for (int64_t i = 0; i < w.rows(); ++i) {
      degrees[static_cast<size_t>(i)] += col[i];
    }
  }
  return degrees;
}

Matrix NormalizedAdjacency(const Matrix& w) {
  const Vector inv = InverseSqrt(Degrees(w));
  const int64_t n = w.rows();
  Matrix m(n, n);
  for (int64_t j = 0; j < n; ++j) {
    const double sj = inv[static_cast<size_t>(j)];
    const double* src = w.ColData(j);
    double* dst = m.ColData(j);
    for (int64_t i = 0; i < n; ++i) {
      dst[i] = inv[static_cast<size_t>(i)] * src[i] * sj;
    }
  }
  return m;
}

SparseMatrix NormalizedAdjacency(const SparseMatrix& w) {
  FEDSC_CHECK(w.rows() == w.cols()) << "affinity matrix must be square";
  const Vector inv = InverseSqrt(w.RowSums());
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(w.nnz()));
  for (int64_t r = 0; r < w.rows(); ++r) {
    for (int64_t k = w.row_ptr()[static_cast<size_t>(r)];
         k < w.row_ptr()[static_cast<size_t>(r) + 1]; ++k) {
      const int64_t c = w.col_idx()[static_cast<size_t>(k)];
      const double v = inv[static_cast<size_t>(r)] *
                       w.values()[static_cast<size_t>(k)] *
                       inv[static_cast<size_t>(c)];
      if (v != 0.0) triplets.push_back({r, c, v});
    }
  }
  return SparseMatrix::FromTriplets(w.rows(), w.cols(), std::move(triplets));
}

Matrix NormalizedLaplacian(const Matrix& w) {
  const Vector degrees = Degrees(w);
  Matrix l = NormalizedAdjacency(w);
  l *= -1.0;
  for (int64_t i = 0; i < l.rows(); ++i) {
    if (degrees[static_cast<size_t>(i)] > 0.0) l(i, i) += 1.0;
    // Isolated vertex: leave the (zero) row/column, eigenvalue 0.
  }
  return l;
}

Vector LandmarkDegrees(const SparseMatrix& b) {
  // s = B 1 (per-atom mass), deg = B^T s — one CSR pass each.
  Vector atom_mass(static_cast<size_t>(b.rows()), 0.0);
  for (int64_t a = 0; a < b.rows(); ++a) {
    double sum = 0.0;
    for (int64_t k = b.row_ptr()[static_cast<size_t>(a)];
         k < b.row_ptr()[static_cast<size_t>(a) + 1]; ++k) {
      sum += b.values()[static_cast<size_t>(k)];
    }
    atom_mass[static_cast<size_t>(a)] = sum;
  }
  Vector degrees(static_cast<size_t>(b.cols()), 0.0);
  for (int64_t a = 0; a < b.rows(); ++a) {
    const double mass = atom_mass[static_cast<size_t>(a)];
    for (int64_t k = b.row_ptr()[static_cast<size_t>(a)];
         k < b.row_ptr()[static_cast<size_t>(a) + 1]; ++k) {
      degrees[static_cast<size_t>(b.col_idx()[static_cast<size_t>(k)])] +=
          b.values()[static_cast<size_t>(k)] * mass;
    }
  }
  return degrees;
}

SparseMatrix LandmarkNormalizedFactor(const SparseMatrix& b,
                                      const Vector& degrees) {
  FEDSC_CHECK(static_cast<int64_t>(degrees.size()) == b.cols())
      << "degree vector must have one entry per point";
  const Vector inv = InverseSqrt(degrees);
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(b.nnz()));
  for (int64_t a = 0; a < b.rows(); ++a) {
    for (int64_t k = b.row_ptr()[static_cast<size_t>(a)];
         k < b.row_ptr()[static_cast<size_t>(a) + 1]; ++k) {
      const int64_t j = b.col_idx()[static_cast<size_t>(k)];
      const double v = b.values()[static_cast<size_t>(k)] *
                       inv[static_cast<size_t>(j)];
      if (v != 0.0) triplets.push_back({a, j, v});
    }
  }
  return SparseMatrix::FromTriplets(b.rows(), b.cols(), std::move(triplets));
}

}  // namespace fedsc
