// Normalized graph Laplacian utilities.
//
// For an affinity graph W with degree matrix D, the symmetric normalized
// Laplacian is L = I - D^{-1/2} W D^{-1/2} (Section IV-B of the paper).
// Zero-degree vertices (isolated points) are handled by zeroing their row
// and column, so each isolated vertex contributes one zero eigenvalue —
// consistent with "one connected component per isolated vertex".

#ifndef FEDSC_GRAPH_LAPLACIAN_H_
#define FEDSC_GRAPH_LAPLACIAN_H_

#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace fedsc {

// Row sums of a dense affinity matrix.
Vector Degrees(const Matrix& w);

// D^{-1/2} W D^{-1/2} (the "normalized adjacency"). The k largest
// eigenvectors of this matrix are the k smallest of the normalized
// Laplacian, which is what spectral clustering embeds with.
Matrix NormalizedAdjacency(const Matrix& w);
SparseMatrix NormalizedAdjacency(const SparseMatrix& w);

// I - D^{-1/2} W D^{-1/2}, with isolated vertices' diagonal set to 0.
Matrix NormalizedLaplacian(const Matrix& w);

// Landmark-factorized graph support (the sketched central path): for a
// nonnegative d x N factor B (atoms x points) the implied affinity is
// W = B^T B, which is never formed. Degrees come from the factorization,
// deg = B^T (B 1), in O(nnz(B)).
Vector LandmarkDegrees(const SparseMatrix& b);

// M = B D^{-1/2} (columns scaled by the inverse square-root degrees, with
// the zero-degree convention above), so that M^T M is the normalized
// adjacency D^{-1/2} W D^{-1/2} of the landmark graph.
SparseMatrix LandmarkNormalizedFactor(const SparseMatrix& b,
                                      const Vector& degrees);

}  // namespace fedsc

#endif  // FEDSC_GRAPH_LAPLACIAN_H_
