// Normalized graph Laplacian utilities.
//
// For an affinity graph W with degree matrix D, the symmetric normalized
// Laplacian is L = I - D^{-1/2} W D^{-1/2} (Section IV-B of the paper).
// Zero-degree vertices (isolated points) are handled by zeroing their row
// and column, so each isolated vertex contributes one zero eigenvalue —
// consistent with "one connected component per isolated vertex".

#ifndef FEDSC_GRAPH_LAPLACIAN_H_
#define FEDSC_GRAPH_LAPLACIAN_H_

#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace fedsc {

// Row sums of a dense affinity matrix.
Vector Degrees(const Matrix& w);

// D^{-1/2} W D^{-1/2} (the "normalized adjacency"). The k largest
// eigenvectors of this matrix are the k smallest of the normalized
// Laplacian, which is what spectral clustering embeds with.
Matrix NormalizedAdjacency(const Matrix& w);
SparseMatrix NormalizedAdjacency(const SparseMatrix& w);

// I - D^{-1/2} W D^{-1/2}, with isolated vertices' diagonal set to 0.
Matrix NormalizedLaplacian(const Matrix& w);

}  // namespace fedsc

#endif  // FEDSC_GRAPH_LAPLACIAN_H_
