#include "linalg/batch.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"
#include "linalg/blas.h"
#include "linalg/eig.h"

namespace fedsc {

namespace {

bool UseGramEngine(int64_t rows, int64_t cols, int64_t rank,
                   BatchEngine engine) {
  switch (engine) {
    case BatchEngine::kLooped:
      return false;
    case BatchEngine::kGram:
      return true;
    case BatchEngine::kAuto:
      break;
  }
  // Fixed-rank requests only: with rank pinned both engines return exactly
  // min(rank, min(m, n)) columns, so the Gram route changes bits but never
  // structure. Auto-rank detection stays on the looped SVD — the Gram
  // noise floor (kGramSigmaFloor) can decide marginal ranks differently,
  // and a silently different basis dimension is not a drop-in replacement.
  return rank > 0 && cols >= 1 && cols <= kGramEngineMaxCols &&
         rows >= kGramEngineMinAspect * cols;
}

// The Gram route (see batch.h): G = X^T X, eigendecompose, U = X V_r with
// unit-normalized columns. Error cases mirror PrincipalSubspace so callers
// can treat the two engines interchangeably.
Result<Matrix> GramSubspace(const Matrix& x,
                            const BatchedSubspaceOptions& options) {
  const int64_t m = x.rows();
  const int64_t n = x.cols();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("SVD of an empty matrix");
  }
  Matrix gram(n, n);
  Syrk(Trans::kTrans, 1.0, x, 0.0, &gram);
  auto eig = SymmetricEigen(gram);
  if (!eig.ok()) return eig.status();

  // Eigenvalues come back ascending; read the singular values off
  // descending. Roundoff can push a zero eigenvalue slightly negative.
  Vector sigma(static_cast<size_t>(n), 0.0);
  for (int64_t j = 0; j < n; ++j) {
    sigma[static_cast<size_t>(j)] =
        std::sqrt(std::max(eig->values[static_cast<size_t>(n - 1 - j)], 0.0));
  }

  const int64_t max_rank = std::min(m, n);
  int64_t r = 0;
  if (options.rank > 0) {
    r = std::min(options.rank, max_rank);
  } else {
    if (sigma[0] <= 0.0) {
      return Status::FailedPrecondition("matrix has numerical rank 0");
    }
    const double threshold =
        std::max(options.rel_tol, kGramSigmaFloor) * sigma[0];
    for (double sv : sigma) {
      if (sv > threshold) ++r;
    }
    r = std::min(r, max_rank);
  }
  if (r <= 0) {
    return Status::FailedPrecondition("matrix has numerical rank 0");
  }
  // Never keep a direction with an exactly zero singular value: its U
  // column is not defined (mirrors PrincipalSubspace).
  while (r > 0 && sigma[static_cast<size_t>(r - 1)] <= 0.0) --r;
  if (r <= 0) {
    return Status::FailedPrecondition("matrix has numerical rank 0");
  }

  // V_r: the top-r eigenvector columns in descending-eigenvalue order.
  Matrix vr(n, r);
  for (int64_t j = 0; j < r; ++j) {
    vr.SetCol(j, eig->vectors.ColData(n - 1 - j));
  }
  Matrix u(m, r);
  Gemm(Trans::kNo, Trans::kNo, 1.0, x, vr, 0.0, &u);
  // Each column has norm ~sigma_j; normalize to unit length. A zero norm
  // means the direction was pure noise after all — trim it and everything
  // after it, exactly as the trailing-sigma trim above.
  int64_t keep = r;
  for (int64_t j = 0; j < r; ++j) {
    const double norm = Norm2(u.ColData(j), m);
    if (norm <= 0.0) {
      keep = j;
      break;
    }
    Scal(1.0 / norm, u.ColData(j), m);
  }
  if (keep <= 0) {
    return Status::FailedPrecondition("matrix has numerical rank 0");
  }
  if (keep < r) return u.ColRange(0, keep);
  return u;
}

Result<Matrix> PanelSubspace(const Matrix& panel,
                             const BatchedSubspaceOptions& options) {
  if (UseGramEngine(panel.rows(), panel.cols(), options.rank,
                    options.engine)) {
    return GramSubspace(panel, options);
  }
  return PrincipalSubspace(panel, options.rank, options.rel_tol, options.svd);
}

}  // namespace

std::vector<Result<Matrix>> BatchedPrincipalSubspace(
    const std::vector<Matrix>& panels, const BatchedSubspaceOptions& options) {
  std::vector<Result<Matrix>> out(
      panels.size(),
      Result<Matrix>(Status::Internal("batch slot not computed")));
  ParallelFor(0, static_cast<int64_t>(panels.size()), options.num_threads,
              [&](int64_t i) {
                out[static_cast<size_t>(i)] =
                    PanelSubspace(panels[static_cast<size_t>(i)], options);
              });
  return out;
}

std::vector<Result<Matrix>> BatchedPrincipalSubspace(
    const Matrix& parent, const std::vector<std::vector<int64_t>>& groups,
    const BatchedSubspaceOptions& options) {
  std::vector<Result<Matrix>> out(
      groups.size(),
      Result<Matrix>(Status::Internal("batch slot not computed")));
  ParallelFor(0, static_cast<int64_t>(groups.size()), options.num_threads,
              [&](int64_t i) {
                out[static_cast<size_t>(i)] = PanelSubspace(
                    parent.GatherCols(groups[static_cast<size_t>(i)]),
                    options);
              });
  return out;
}

std::vector<Result<QrResult>> BatchedThinQr(const std::vector<Matrix>& panels,
                                            const QrOptions& options,
                                            int num_threads) {
  std::vector<Result<QrResult>> out(
      panels.size(),
      Result<QrResult>(Status::Internal("batch slot not computed")));
  ParallelFor(0, static_cast<int64_t>(panels.size()), num_threads,
              [&](int64_t i) {
                out[static_cast<size_t>(i)] =
                    HouseholderQr(panels[static_cast<size_t>(i)], options);
              });
  return out;
}

}  // namespace fedsc
