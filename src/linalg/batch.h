// Batched tall-skinny factorizations: all per-cluster D x n_i panels of one
// round go through a single call with one parallel region over the batch,
// instead of a serial loop of per-panel JacobiSvd/HouseholderQr calls. This
// is the shape Fed-SC spends its local phase in — every device factors one
// small panel per local cluster (basis estimation, trim/refit, codec basis
// split) and the server re-factors per global cluster in AssignNewPoints.
//
// Two engines sit behind BatchedPrincipalSubspace, completing the dispatch
// contract of DESIGN.md "Runtime ISA dispatch & batched factorizations":
//
//  * kLooped — per panel, exactly the PrincipalSubspace(panel, ...) call the
//    pre-batched loops made, bit-for-bit; the batch only fans the panels out
//    across threads (each panel is computed serially in one worker, so
//    results never depend on num_threads).
//  * kGram — per panel, the Gram route: G = X^T X via Syrk, symmetric
//    eigendecomposition of the small n_i x n_i G (ascending; n_i below
//    kBlockedEigCutoff runs the deterministic tred2/tql2 pair), singular
//    values sqrt(max(lambda, 0)) read off descending, and the basis
//    U = X V_r with columns normalized to unit length. For D >> n_i this
//    replaces O(D n^2) Jacobi rotation sweeps with one rank-n Syrk plus an
//    O(n^3) eigensolve — the batched-basis speedup BENCH_linalg.json floors.
//
// The engine switch is RESULT-AFFECTING: the Gram route reaches the same
// subspace but squares the condition number, so its basis agrees with the
// SVD route only to ~sqrt(eps) in the trailing directions, not to ulps.
// Under BatchEngine::kAuto the pick is a pure function of each panel's
// shape and the requested rank alone — kGram iff the rank is fixed
// (options.rank > 0, where both engines return exactly min(rank, min(m,n))
// columns, so the route changes bits but never structure), n_i <=
// kGramEngineMaxCols, and m >= kGramEngineMinAspect * n_i, the tall-skinny
// regime where squaring is benign and the flop savings are real — never of
// num_threads or of the other panels in the batch, so results stay
// deterministic per (panel, options) and are unchanged by how panels are
// grouped into batches. Auto-rank requests (rank <= 0) always stay on the
// looped SVD under kAuto: the Gram noise floor below can decide marginal
// ranks differently, and a silently different basis dimension is not a
// drop-in replacement — so the pipeline's default (auto-rank) paths keep
// their pre-batched bits exactly.
//
// Rank selection on the Gram route mirrors NumericalRank but floors the
// relative tolerance at kGramSigmaFloor: squaring pushes the noise floor of
// the computed singular values to ~sqrt(eps) * s[0] ~ 1.5e-8, above the
// default 1e-8 tolerance, so without the floor pure-noise directions could
// inflate the rank. Result-affecting, documented in DESIGN.md.

#ifndef FEDSC_LINALG_BATCH_H_
#define FEDSC_LINALG_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "linalg/svd.h"

namespace fedsc {

// Which factorization route each panel takes. Result-affecting, pinned to
// (options, panel shape) alone — the escape hatch mirroring GemmKernel /
// QrVariant / GemmIsa.
enum class BatchEngine {
  // kGram for fixed-rank requests on panels in the tall-skinny regime
  // below, kLooped otherwise (in particular for every auto-rank request).
  kAuto,
  // Pin the per-panel PrincipalSubspace call at every shape: reproduces the
  // pre-batched per-cluster loops bit-for-bit.
  kLooped,
  // Force the Gram route for every panel (empty panels still error).
  kGram,
};

// kAuto takes the Gram route iff the rank is fixed (options.rank > 0),
// cols <= kGramEngineMaxCols, and rows >= kGramEngineMinAspect * cols.
// Result-affecting shape cutoffs, like kSvdPrecondMinAspect.
inline constexpr int64_t kGramEngineMaxCols = 64;
inline constexpr int64_t kGramEngineMinAspect = 2;
// Minimum relative singular-value tolerance on the Gram route (see header
// comment). Applied as max(rel_tol, kGramSigmaFloor).
inline constexpr double kGramSigmaFloor = 1e-7;

struct BatchedSubspaceOptions {
  // Fixed basis rank; <= 0 selects the rank numerically (NumericalRank
  // semantics, with the Gram-route floor above).
  int64_t rank = 0;
  double rel_tol = 1e-8;
  // Workers fanned out over the batch; each panel is computed serially by
  // one worker, so results are bit-identical for every thread count.
  int num_threads = 1;
  BatchEngine engine = BatchEngine::kAuto;
  // Tunes the underlying JacobiSvd on the kLooped route (pair order,
  // preconditioning). Ignored by the Gram route.
  SvdOptions svd;
};

// Orthonormal bases for the column spans of all panels: slot i holds
// PrincipalSubspace-equivalent output for panels[i], or the per-panel error
// (empty panel, numerical rank 0) — one degenerate cluster does not poison
// its batch. Panels may be ragged (any cols, any rows).
std::vector<Result<Matrix>> BatchedPrincipalSubspace(
    const std::vector<Matrix>& panels,
    const BatchedSubspaceOptions& options = {});

// Same, with panels gathered from a parent matrix: panel i is
// parent.GatherCols(groups[i]) — the per-cluster member-list shape
// LocalClusterAndSample and AssignNewPoints produce. The gather happens
// inside the parallel region, so no caller-side materialization pass.
std::vector<Result<Matrix>> BatchedPrincipalSubspace(
    const Matrix& parent, const std::vector<std::vector<int64_t>>& groups,
    const BatchedSubspaceOptions& options = {});

// Thin QR of every panel through HouseholderQr with one parallel region
// over the batch. Slot i is bit-identical to HouseholderQr(panels[i],
// options) for every num_threads.
std::vector<Result<QrResult>> BatchedThinQr(const std::vector<Matrix>& panels,
                                            const QrOptions& options = {},
                                            int num_threads = 1);

}  // namespace fedsc

#endif  // FEDSC_LINALG_BATCH_H_
