#include "linalg/blas.h"

#include <cmath>

#include <algorithm>

namespace fedsc {

double Dot(const double* x, const double* y, int64_t n) {
  // Four partial sums break the dependency chain so the loop vectorizes.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) s0 += x[i] * y[i];
  return (s0 + s1) + (s2 + s3);
}

double Norm2(const double* x, int64_t n) {
  return std::sqrt(Dot(x, x, n));
}

void Axpy(double alpha, const double* x, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scal(double alpha, double* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) x[i] *= alpha;
}

namespace {

// C(m x n) = alpha * A(m x k) * B(k x n) + C, all column-major.
// "gaxpy" order: the inner loop streams one column of A into one column of C.
void GemmNN(double alpha, const Matrix& a, const Matrix& b, Matrix* c) {
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  for (int64_t j = 0; j < n; ++j) {
    double* cj = c->ColData(j);
    const double* bj = b.ColData(j);
    for (int64_t p = 0; p < k; ++p) {
      const double w = alpha * bj[p];
      if (w != 0.0) Axpy(w, a.ColData(p), cj, m);
    }
  }
}

// C(m x n) = alpha * A^T(m x k) * B(k x n) + C where A is (k x m).
// Each entry is a dot of two contiguous columns.
void GemmTN(double alpha, const Matrix& a, const Matrix& b, Matrix* c) {
  const int64_t m = a.cols(), k = a.rows(), n = b.cols();
  for (int64_t j = 0; j < n; ++j) {
    const double* bj = b.ColData(j);
    double* cj = c->ColData(j);
    for (int64_t i = 0; i < m; ++i) {
      cj[i] += alpha * Dot(a.ColData(i), bj, k);
    }
  }
}

// C(m x n) = alpha * A(m x k) * B^T(k x n) + C where B is (n x k).
void GemmNT(double alpha, const Matrix& a, const Matrix& b, Matrix* c) {
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  for (int64_t p = 0; p < k; ++p) {
    const double* ap = a.ColData(p);
    // B(j, p) runs down column p of B: contiguous.
    const double* bp = b.ColData(p);
    for (int64_t j = 0; j < n; ++j) {
      const double w = alpha * bp[j];
      if (w != 0.0) Axpy(w, ap, c->ColData(j), m);
    }
  }
}

// C(m x n) = alpha * A^T(m x k) * B^T(k x n) + C; A is (k x m), B is (n x k).
// Rare in this codebase; computed via an explicit transpose of B.
void GemmTT(double alpha, const Matrix& a, const Matrix& b, Matrix* c) {
  GemmTN(alpha, a, b.Transposed(), c);
}

}  // namespace

void Gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix* c) {
  const int64_t m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const int64_t ka = trans_a == Trans::kNo ? a.cols() : a.rows();
  const int64_t kb = trans_b == Trans::kNo ? b.rows() : b.cols();
  const int64_t n = trans_b == Trans::kNo ? b.cols() : b.rows();
  FEDSC_CHECK(ka == kb) << "gemm inner dims " << ka << " vs " << kb;
  FEDSC_CHECK(c->rows() == m && c->cols() == n)
      << "gemm output is " << c->rows() << "x" << c->cols() << ", want " << m
      << "x" << n;
  FEDSC_CHECK(c != &a && c != &b) << "gemm output aliases an input";

  if (beta == 0.0) {
    c->Fill(0.0);
  } else if (beta != 1.0) {
    *c *= beta;
  }
  if (alpha == 0.0 || ka == 0) return;

  if (trans_a == Trans::kNo && trans_b == Trans::kNo) {
    GemmNN(alpha, a, b, c);
  } else if (trans_a == Trans::kTrans && trans_b == Trans::kNo) {
    GemmTN(alpha, a, b, c);
  } else if (trans_a == Trans::kNo && trans_b == Trans::kTrans) {
    GemmNT(alpha, a, b, c);
  } else {
    GemmTT(alpha, a, b, c);
  }
}

void Gemv(Trans trans_a, double alpha, const Matrix& a, const double* x,
          double beta, double* y) {
  const int64_t m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const int64_t n = trans_a == Trans::kNo ? a.cols() : a.rows();
  if (beta == 0.0) {
    std::fill(y, y + m, 0.0);
  } else if (beta != 1.0) {
    Scal(beta, y, m);
  }
  if (alpha == 0.0) return;
  if (trans_a == Trans::kNo) {
    for (int64_t j = 0; j < n; ++j) {
      const double w = alpha * x[j];
      if (w != 0.0) Axpy(w, a.ColData(j), y, m);
    }
  } else {
    for (int64_t i = 0; i < m; ++i) {
      y[i] += alpha * Dot(a.ColData(i), x, n);
    }
  }
}

Vector Gemv(Trans trans_a, const Matrix& a, const Vector& x) {
  const int64_t m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const int64_t n = trans_a == Trans::kNo ? a.cols() : a.rows();
  FEDSC_CHECK(static_cast<int64_t>(x.size()) == n)
      << "gemv x has size " << x.size() << ", want " << n;
  Vector y(static_cast<size_t>(m), 0.0);
  Gemv(trans_a, 1.0, a, x.data(), 0.0, y.data());
  return y;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, &c);
  return c;
}

Matrix MatMulTN(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  Gemm(Trans::kTrans, Trans::kNo, 1.0, a, b, 0.0, &c);
  return c;
}

Matrix MatMulNT(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  Gemm(Trans::kNo, Trans::kTrans, 1.0, a, b, 0.0, &c);
  return c;
}

Matrix Gram(const Matrix& x) { return MatMulTN(x, x); }

Matrix OuterGram(const Matrix& x) { return MatMulNT(x, x); }

}  // namespace fedsc
