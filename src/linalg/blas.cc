#include "linalg/blas.h"

#include <cmath>

#include <algorithm>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "linalg/gemm_kernel.h"

namespace fedsc {

double Dot(const double* x, const double* y, int64_t n) {
  // Four partial sums break the dependency chain so the loop vectorizes.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) s0 += x[i] * y[i];
  return (s0 + s1) + (s2 + s3);
}

double Norm2(const double* x, int64_t n) {
  return std::sqrt(Dot(x, x, n));
}

void Axpy(double alpha, const double* x, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scal(double alpha, double* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) x[i] *= alpha;
}

namespace {

// Every GEMM variant is written as a column-panel kernel over columns
// [j0, j1) of C: each output column is produced by the same sequence of
// Axpy/Dot calls no matter how the panel is split, so running the panels
// in parallel is bit-exact equal to one serial [0, n) pass (see the
// determinism contract in DESIGN.md). Panels of C are disjoint memory.

// C(m x n) = alpha * A(m x k) * B(k x n) + C, all column-major.
// "gaxpy" order: the inner loop streams one column of A into one column of C.
void GemmNNPanel(double alpha, const Matrix& a, const Matrix& b, Matrix* c,
                 int64_t j0, int64_t j1) {
  const int64_t m = a.rows(), k = a.cols();
  for (int64_t j = j0; j < j1; ++j) {
    double* cj = c->ColData(j);
    const double* bj = b.ColData(j);
    for (int64_t p = 0; p < k; ++p) {
      const double w = alpha * bj[p];
      if (w != 0.0) Axpy(w, a.ColData(p), cj, m);
    }
  }
}

// C(m x n) = alpha * A^T(m x k) * B(k x n) + C where A is (k x m).
// Each entry is a dot of two contiguous columns.
void GemmTNPanel(double alpha, const Matrix& a, const Matrix& b, Matrix* c,
                 int64_t j0, int64_t j1) {
  const int64_t m = a.cols(), k = a.rows();
  for (int64_t j = j0; j < j1; ++j) {
    const double* bj = b.ColData(j);
    double* cj = c->ColData(j);
    for (int64_t i = 0; i < m; ++i) {
      cj[i] += alpha * Dot(a.ColData(i), bj, k);
    }
  }
}

// C(m x n) = alpha * A(m x k) * B^T(k x n) + C where B is (n x k).
// Column j of C accumulates w_p * A(:, p) in ascending p — the same
// per-column update order as the classic p-outer loop, just regrouped so
// the panel owns its output columns.
void GemmNTPanel(double alpha, const Matrix& a, const Matrix& b, Matrix* c,
                 int64_t j0, int64_t j1) {
  const int64_t m = a.rows(), k = a.cols();
  for (int64_t j = j0; j < j1; ++j) {
    double* cj = c->ColData(j);
    for (int64_t p = 0; p < k; ++p) {
      // B(j, p) sits in column p of B.
      const double w = alpha * b.ColData(p)[j];
      if (w != 0.0) Axpy(w, a.ColData(p), cj, m);
    }
  }
}

// Lower triangle of C += alpha * op(X) op(X)^T (kNo) / op(X)^T op(X)
// (kTrans) over columns [j0, j1): the legacy-panel counterpart of
// BlockedSyrkLower. Per output element the operation sequence matches the
// corresponding full-GEMM panel kernel restricted to i >= j, so a panel
// Gram's lower triangle is bit-identical to the pre-Syrk MatMulTN result.
void SyrkPanelLower(Trans trans, double alpha, const Matrix& x, Matrix* c,
                    int64_t j0, int64_t j1) {
  const int64_t nn = c->rows();
  if (trans == Trans::kTrans) {
    const int64_t kk = x.rows();
    for (int64_t j = j0; j < j1; ++j) {
      double* cj = c->ColData(j);
      const double* xj = x.ColData(j);
      for (int64_t i = j; i < nn; ++i) {
        cj[i] += alpha * Dot(x.ColData(i), xj, kk);
      }
    }
  } else {
    const int64_t kk = x.cols();
    for (int64_t j = j0; j < j1; ++j) {
      double* cj = c->ColData(j);
      for (int64_t p = 0; p < kk; ++p) {
        const double w = alpha * x.ColData(p)[j];
        if (w != 0.0) Axpy(w, x.ColData(p) + j, cj + j, nn - j);
      }
    }
  }
}

// Copies the strictly-lower triangle into the strictly-upper one, column by
// column. Mirror writes touch only rows [0, j) of column j (strictly upper)
// and read only strictly-lower elements, which no mirror task writes — so
// the parallel ranges are race-free and the copy order cannot matter.
void MirrorLowerToUpper(Matrix* c, int num_threads) {
  const int64_t n = c->rows();
  const int threads =
      n * n < (1 << 16) ? 1 : std::min<int>(num_threads, 64);
  ParallelForRanges(0, n, threads,
                    [&](int64_t j0, int64_t j1, int /*chunk*/) {
                      for (int64_t j = j0; j < j1; ++j) {
                        double* cj = c->ColData(j);
                        for (int64_t i = 0; i < j; ++i) {
                          cj[i] = (*c)(j, i);
                        }
                      }
                    });
}

bool UseBlockedKernel(GemmKernel kernel, int64_t m, int64_t k, int64_t n,
                      bool trans_both) {
  switch (kernel) {
    case GemmKernel::kPanel:
      return false;
    case GemmKernel::kBlocked:
      return true;
    case GemmKernel::kAuto:
      // TT always packs (the transpose is free in the packed layout,
      // where the panel path would materialize B^T); everything else
      // switches on the documented result-affecting flop cutoff.
      return trans_both || m * k * n >= kBlockedGemmCutoff;
  }
  return false;
}

}  // namespace

CpuIsa ResolveGemmIsa(GemmIsa pin) {
  switch (pin) {
    case GemmIsa::kAuto:
      return ResolveDefaultIsa().chosen;
    case GemmIsa::kGeneric:
      return CpuIsa::kGeneric;
    case GemmIsa::kAvx2:
      FEDSC_CHECK(CpuIsaSupported(CpuIsa::kAvx2))
          << "GemmIsa::kAvx2 pinned but this host lacks AVX2+FMA";
      return CpuIsa::kAvx2;
    case GemmIsa::kAvx512:
      FEDSC_CHECK(CpuIsaSupported(CpuIsa::kAvx512))
          << "GemmIsa::kAvx512 pinned but this host lacks AVX-512F";
      return CpuIsa::kAvx512;
  }
  return CpuIsa::kGeneric;
}

const char* GemmIsaName(GemmIsa pin) {
  switch (pin) {
    case GemmIsa::kAuto:
      return "auto";
    case GemmIsa::kGeneric:
      return "generic";
    case GemmIsa::kAvx2:
      return "avx2";
    case GemmIsa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

void Gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix* c,
          const GemmOptions& options) {
  const int64_t m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const int64_t ka = trans_a == Trans::kNo ? a.cols() : a.rows();
  const int64_t kb = trans_b == Trans::kNo ? b.rows() : b.cols();
  const int64_t n = trans_b == Trans::kNo ? b.cols() : b.rows();
  FEDSC_CHECK(ka == kb) << "gemm inner dims " << ka << " vs " << kb;
  FEDSC_CHECK(c->rows() == m && c->cols() == n)
      << "gemm output is " << c->rows() << "x" << c->cols() << ", want " << m
      << "x" << n;
  FEDSC_CHECK(c != &a && c != &b) << "gemm output aliases an input";

  if (beta == 0.0) {
    c->Fill(0.0);
  } else if (beta != 1.0) {
    *c *= beta;
  }
  if (alpha == 0.0 || ka == 0) return;

  FEDSC_TRACE_SPAN("linalg/gemm");
  FEDSC_METRIC_COUNTER("linalg.gemm.calls").Increment();
  FEDSC_METRIC_COUNTER("linalg.gemm.flops").Add(2 * m * ka * n);
  // Matrix traffic for the roofline join: A and B read once, C read+written.
  FEDSC_METRIC_COUNTER("linalg.gemm.bytes")
      .Add(8 * (m * ka + ka * n + 2 * m * n));

  const bool trans_both =
      trans_a == Trans::kTrans && trans_b == Trans::kTrans;
  if (UseBlockedKernel(options.kernel, m, ka, n, trans_both)) {
    FEDSC_METRIC_COUNTER("linalg.gemm.blocked_calls").Increment();
    BlockedGemm(trans_a, trans_b, alpha, a, b, c, options.num_threads,
                ResolveGemmIsa(options.isa));
    return;
  }

  // Legacy panel path (small products, or pinned via GemmKernel::kPanel).
  // TT is reduced to TN on an explicit transpose so the panel kernels below
  // cover every case; the blocked path above never needs this copy.
  Matrix bt;
  if (trans_both) {
    bt = b.Transposed();
    trans_b = Trans::kNo;
  }
  const Matrix& rb = bt.empty() ? b : bt;

  // Don't spin up workers for panels too small to amortize a thread: each
  // column of C costs ~2*m*ka flops.
  const int threads =
      m * ka * n < (1 << 16) ? 1 : std::min<int>(options.num_threads, 64);
  ParallelForRanges(0, n, threads,
                    [&](int64_t j0, int64_t j1, int /*chunk*/) {
                      if (trans_a == Trans::kNo && trans_b == Trans::kNo) {
                        GemmNNPanel(alpha, a, rb, c, j0, j1);
                      } else if (trans_a == Trans::kTrans) {
                        GemmTNPanel(alpha, a, rb, c, j0, j1);
                      } else {
                        GemmNTPanel(alpha, a, rb, c, j0, j1);
                      }
                    });
}

void Gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix* c, int num_threads) {
  GemmOptions options;
  options.num_threads = num_threads;
  Gemm(trans_a, trans_b, alpha, a, b, beta, c, options);
}

void Syrk(Trans trans, double alpha, const Matrix& x, double beta, Matrix* c,
          const GemmOptions& options) {
  const int64_t nn = trans == Trans::kNo ? x.rows() : x.cols();
  const int64_t kk = trans == Trans::kNo ? x.cols() : x.rows();
  FEDSC_CHECK(c->rows() == nn && c->cols() == nn)
      << "syrk output is " << c->rows() << "x" << c->cols() << ", want " << nn
      << "x" << nn;
  FEDSC_CHECK(c != &x) << "syrk output aliases the input";

  if (beta == 0.0) {
    c->Fill(0.0);
  } else if (beta != 1.0) {
    *c *= beta;
  }
  if (alpha == 0.0 || kk == 0) return;

  FEDSC_TRACE_SPAN("linalg/syrk");
  FEDSC_METRIC_COUNTER("linalg.syrk.calls").Increment();
  // Useful flops: 2*kk per element over the nn*(nn+1)/2 lower-triangle
  // entries — about half the 2*nn*kk*nn the equivalent Gemm would spend.
  FEDSC_METRIC_COUNTER("linalg.syrk.flops").Add(nn * (nn + 1) * kk);
  // Matrix traffic: X read once, the nn x nn output read+written.
  FEDSC_METRIC_COUNTER("linalg.syrk.bytes").Add(8 * (nn * kk + 2 * nn * nn));

  if (UseBlockedKernel(options.kernel, nn, kk, nn, /*trans_both=*/false)) {
    BlockedSyrkLower(trans, alpha, x, c, options.num_threads,
                     ResolveGemmIsa(options.isa));
  } else {
    const int threads =
        nn * kk * nn < (1 << 16) ? 1 : std::min<int>(options.num_threads, 64);
    ParallelForRanges(0, nn, threads,
                      [&](int64_t j0, int64_t j1, int /*chunk*/) {
                        SyrkPanelLower(trans, alpha, x, c, j0, j1);
                      });
  }
  MirrorLowerToUpper(c, options.num_threads);
}

void Gemv(Trans trans_a, double alpha, const Matrix& a, const double* x,
          double beta, double* y, int num_threads) {
  const int64_t m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const int64_t n = trans_a == Trans::kNo ? a.cols() : a.rows();
  if (beta == 0.0) {
    std::fill(y, y + m, 0.0);
  } else if (beta != 1.0) {
    Scal(beta, y, m);
  }
  if (alpha == 0.0) return;
  FEDSC_METRIC_COUNTER("linalg.gemv.calls").Increment();
  FEDSC_METRIC_COUNTER("linalg.gemv.flops").Add(2 * m * n);
  const int threads = m * n < (1 << 15) ? 1 : std::min<int>(num_threads, 64);
  if (trans_a == Trans::kNo) {
    // Partition the rows of y; each task runs the same Axpy on its subrange
    // of every column, so element i of y sees the identical j-ascending
    // update sequence as the serial pass.
    ParallelForRanges(0, m, threads,
                      [&](int64_t r0, int64_t r1, int /*chunk*/) {
                        for (int64_t j = 0; j < n; ++j) {
                          const double w = alpha * x[j];
                          if (w != 0.0) {
                            Axpy(w, a.ColData(j) + r0, y + r0, r1 - r0);
                          }
                        }
                      });
  } else {
    // One independent dot per output element.
    ParallelForRanges(0, m, threads,
                      [&](int64_t r0, int64_t r1, int /*chunk*/) {
                        for (int64_t i = r0; i < r1; ++i) {
                          y[i] += alpha * Dot(a.ColData(i), x, n);
                        }
                      });
  }
}

Vector Gemv(Trans trans_a, const Matrix& a, const Vector& x) {
  const int64_t m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const int64_t n = trans_a == Trans::kNo ? a.cols() : a.rows();
  FEDSC_CHECK(static_cast<int64_t>(x.size()) == n)
      << "gemv x has size " << x.size() << ", want " << n;
  Vector y(static_cast<size_t>(m), 0.0);
  Gemv(trans_a, 1.0, a, x.data(), 0.0, y.data());
  return y;
}

Matrix MatMul(const Matrix& a, const Matrix& b, int num_threads) {
  Matrix c(a.rows(), b.cols());
  Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, &c, num_threads);
  return c;
}

Matrix MatMulTN(const Matrix& a, const Matrix& b, int num_threads) {
  Matrix c(a.cols(), b.cols());
  Gemm(Trans::kTrans, Trans::kNo, 1.0, a, b, 0.0, &c, num_threads);
  return c;
}

Matrix MatMulNT(const Matrix& a, const Matrix& b, int num_threads) {
  Matrix c(a.rows(), b.rows());
  Gemm(Trans::kNo, Trans::kTrans, 1.0, a, b, 0.0, &c, num_threads);
  return c;
}

Matrix Gram(const Matrix& x, int num_threads) {
  Matrix c(x.cols(), x.cols());
  GemmOptions options;
  options.num_threads = num_threads;
  Syrk(Trans::kTrans, 1.0, x, 0.0, &c, options);
  return c;
}

Matrix OuterGram(const Matrix& x, int num_threads) {
  Matrix c(x.rows(), x.rows());
  GemmOptions options;
  options.num_threads = num_threads;
  Syrk(Trans::kNo, 1.0, x, 0.0, &c, options);
  return c;
}

}  // namespace fedsc
