// Hand-rolled BLAS-like kernels (no external BLAS is available in this
// environment). Loop orders are chosen for column-major storage so the hot
// inner loops stream contiguous memory and autovectorize.

#ifndef FEDSC_LINALG_BLAS_H_
#define FEDSC_LINALG_BLAS_H_

#include <cstdint>

#include "linalg/matrix.h"

namespace fedsc {

enum class Trans { kNo, kTrans };

// --- Vector kernels (raw pointers; callers own bounds) ---

double Dot(const double* x, const double* y, int64_t n);
double Norm2(const double* x, int64_t n);
// y += alpha * x
void Axpy(double alpha, const double* x, double* y, int64_t n);
// x *= alpha
void Scal(double alpha, double* x, int64_t n);

inline double Dot(const Vector& x, const Vector& y) {
  FEDSC_DCHECK(x.size() == y.size());
  return Dot(x.data(), y.data(), static_cast<int64_t>(x.size()));
}
inline double Norm2(const Vector& x) {
  return Norm2(x.data(), static_cast<int64_t>(x.size()));
}

// --- Matrix kernels ---
//
// The matrix kernels accept an optional num_threads and split the *output*
// into column panels (GEMM) or element ranges (GEMV), each produced by the
// identical serial subkernel — so results are bit-exact equal for every
// thread count (the determinism contract in DESIGN.md). Tiny problems and
// calls made from inside pool workers always run inline.

// C = alpha * op(A) * op(B) + beta * C. C must already have the result
// shape; aliasing C with A or B is not allowed.
void Gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix* c, int num_threads = 1);

// y = alpha * op(A) * x + beta * y.
void Gemv(Trans trans_a, double alpha, const Matrix& a, const double* x,
          double beta, double* y, int num_threads = 1);
Vector Gemv(Trans trans_a, const Matrix& a, const Vector& x);

// Convenience products returning fresh matrices.
Matrix MatMul(const Matrix& a, const Matrix& b,
              int num_threads = 1);                      // A * B
Matrix MatMulTN(const Matrix& a, const Matrix& b,
                int num_threads = 1);                    // A^T * B
Matrix MatMulNT(const Matrix& a, const Matrix& b,
                int num_threads = 1);                    // A * B^T
Matrix Gram(const Matrix& x, int num_threads = 1);       // X^T X
Matrix OuterGram(const Matrix& x, int num_threads = 1);  // X X^T

}  // namespace fedsc

#endif  // FEDSC_LINALG_BLAS_H_
