// Hand-rolled BLAS-like kernels (no external BLAS is available in this
// environment). Loop orders are chosen for column-major storage so the hot
// inner loops stream contiguous memory and autovectorize. Large products are
// dispatched to the cache-blocked packed engine in linalg/gemm_kernel.h;
// small ones keep the legacy column-panel kernels.

#ifndef FEDSC_LINALG_BLAS_H_
#define FEDSC_LINALG_BLAS_H_

#include <cstdint>

#include "common/isa.h"
#include "linalg/matrix.h"

namespace fedsc {

enum class Trans { kNo, kTrans };

// --- Vector kernels (raw pointers; callers own bounds) ---

double Dot(const double* x, const double* y, int64_t n);
double Norm2(const double* x, int64_t n);
// y += alpha * x
void Axpy(double alpha, const double* x, double* y, int64_t n);
// x *= alpha
void Scal(double alpha, double* x, int64_t n);

inline double Dot(const Vector& x, const Vector& y) {
  FEDSC_DCHECK(x.size() == y.size());
  return Dot(x.data(), y.data(), static_cast<int64_t>(x.size()));
}
inline double Norm2(const Vector& x) {
  return Norm2(x.data(), static_cast<int64_t>(x.size()));
}

// --- Matrix kernels ---
//
// The matrix kernels accept an optional num_threads and split the *output*
// into column panels (GEMM) or element ranges (GEMV), each produced by the
// identical serial subkernel — so results are bit-exact equal for every
// thread count (the determinism contract in DESIGN.md). Tiny problems and
// calls made from inside pool workers always run inline.

// Which matrix-product engine Gemm/Syrk run. The choice is RESULT-AFFECTING
// (the two engines accumulate partial sums in different orders, so low-order
// output bits differ); it is pinned to (options, shape) alone — never thread
// count — so outputs stay deterministic per (input, options). See "Blocked
// GEMM & packing" in DESIGN.md.
enum class GemmKernel {
  // Blocked packed engine when m*k*n >= kBlockedGemmCutoff or for TT (whose
  // packing makes the transpose free); legacy panel kernels below it.
  kAuto,
  // Pin the legacy column-panel kernels at every size: reproduces
  // pre-blocked-engine results bit-for-bit (the escape hatch mirroring
  // SvdOptions::pair_order = kCyclic).
  kPanel,
  // Force the blocked packed engine at every size.
  kBlocked,
};

// The kAuto flop threshold (m * k * n) above which Gemm and Syrk switch to
// the blocked engine. Result-affecting, like the Jacobi pair-order cutoff:
// outputs are discontinuous across it but deterministic on both sides.
inline constexpr int64_t kBlockedGemmCutoff = int64_t{1} << 15;

// Which micro-kernel tier the blocked engine runs (linalg/gemm_kernel.h
// ships generic, AVX2+FMA, and AVX-512 kernels in one binary). The pick is
// RESULT-AFFECTING in contract — tiers may differ in low-order bits on
// builds without FMA contraction — though on contracted (Release) builds
// every tier produces identical bits. Like GemmKernel it is pinned to
// (options, cpuid, FEDSC_FORCE_ISA) alone, never to num_threads, and each
// tier is individually bit-identical across thread counts. kGeneric pins
// the pre-dispatch auto-vectorized kernel's exact bits.
enum class GemmIsa {
  // Best tier the host supports, unless FEDSC_FORCE_ISA overrides it.
  kAuto,
  // Pin the portable auto-vectorized kernel (the pre-dispatch engine).
  kGeneric,
  // Pin the AVX2+FMA 8x6 kernel; aborts if the host lacks AVX2/FMA.
  kAvx2,
  // Pin the AVX-512 24x8 kernel; aborts if the host lacks AVX-512F.
  kAvx512,
};

// Resolves a GemmIsa pin to the executable tier: explicit pins win (and are
// validated against cpuid — pinning an unsupported tier aborts rather than
// faulting on an illegal instruction); kAuto follows FEDSC_FORCE_ISA when
// set, else the best cpuid tier. Pure in (pin, cpuid, env) — the dispatch
// purity the manifest records and tests pin down.
CpuIsa ResolveGemmIsa(GemmIsa pin);

// "auto" / "generic" / "avx2" / "avx512" (the pin, not the resolution).
const char* GemmIsaName(GemmIsa pin);

struct GemmOptions {
  int num_threads = 1;
  GemmKernel kernel = GemmKernel::kAuto;
  GemmIsa isa = GemmIsa::kAuto;
};

// C = alpha * op(A) * op(B) + beta * C. C must already have the result
// shape; aliasing C with A or B is not allowed.
void Gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix* c,
          const GemmOptions& options);
void Gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix* c, int num_threads = 1);

// Symmetric rank-k update, the Gram-matrix hot path: C = alpha * X X^T +
// beta * C (trans = kNo) or C = alpha * X^T X + beta * C (trans = kTrans).
// Only the lower triangle is computed — half the flops of the equivalent
// Gemm — and mirrored into the upper triangle afterwards, so C holds the
// full, exactly symmetric result. Unlike BLAS xSYRK both triangles are
// written: the strictly-upper input triangle is overwritten by the mirror,
// so with beta != 0 the prior C should be symmetric for a meaningful result.
// Aliasing C with X is not allowed.
void Syrk(Trans trans, double alpha, const Matrix& x, double beta, Matrix* c,
          const GemmOptions& options = {});

// y = alpha * op(A) * x + beta * y.
void Gemv(Trans trans_a, double alpha, const Matrix& a, const double* x,
          double beta, double* y, int num_threads = 1);
Vector Gemv(Trans trans_a, const Matrix& a, const Vector& x);

// Convenience products returning fresh matrices.
Matrix MatMul(const Matrix& a, const Matrix& b,
              int num_threads = 1);                      // A * B
Matrix MatMulTN(const Matrix& a, const Matrix& b,
                int num_threads = 1);                    // A^T * B
Matrix MatMulNT(const Matrix& a, const Matrix& b,
                int num_threads = 1);                    // A * B^T
// Gram matrices run on Syrk, not Gemm, since the output is symmetric.
Matrix Gram(const Matrix& x, int num_threads = 1);       // X^T X
Matrix OuterGram(const Matrix& x, int num_threads = 1);  // X X^T

}  // namespace fedsc

#endif  // FEDSC_LINALG_BLAS_H_
