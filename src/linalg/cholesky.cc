#include "linalg/cholesky.h"

#include <cmath>

#include "linalg/blas.h"

namespace fedsc {

Result<Matrix> CholeskyFactor(const Matrix& a) {
  const int64_t n = a.rows();
  if (n != a.cols()) {
    return Status::InvalidArgument("Cholesky of a non-square matrix");
  }
  Matrix l(n, n);
  for (int64_t j = 0; j < n; ++j) {
    // Column j: l(j,j) then l(i,j) for i > j. Left-looking, with dots over
    // contiguous column prefixes of L^T... rows of L are strided, so work
    // row-wise on the lower triangle using previously computed columns.
    double diag = a(j, j);
    for (int64_t p = 0; p < j; ++p) diag -= l(j, p) * l(j, p);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::FailedPrecondition(
          "matrix is not positive definite at pivot " + std::to_string(j));
    }
    const double root = std::sqrt(diag);
    l(j, j) = root;
    const double inv = 1.0 / root;
    for (int64_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (int64_t p = 0; p < j; ++p) v -= l(i, p) * l(j, p);
      l(i, j) = v * inv;
    }
  }
  return l;
}

void SolveLowerInPlace(const Matrix& l, Matrix* b) {
  const int64_t n = l.rows();
  FEDSC_CHECK(l.cols() == n && b->rows() == n);
  for (int64_t c = 0; c < b->cols(); ++c) {
    double* y = b->ColData(c);
    for (int64_t i = 0; i < n; ++i) {
      double v = y[i];
      for (int64_t p = 0; p < i; ++p) v -= l(i, p) * y[p];
      y[i] = v / l(i, i);
    }
  }
}

void SolveLowerTransposedInPlace(const Matrix& l, Matrix* b) {
  const int64_t n = l.rows();
  FEDSC_CHECK(l.cols() == n && b->rows() == n);
  for (int64_t c = 0; c < b->cols(); ++c) {
    double* y = b->ColData(c);
    for (int64_t i = n - 1; i >= 0; --i) {
      double v = y[i];
      // l(p, i) for p > i walks down column i of L: contiguous.
      const double* li = l.ColData(i);
      for (int64_t p = i + 1; p < n; ++p) v -= li[p] * y[p];
      y[i] = v / li[i];
    }
  }
}

Result<Matrix> SolveSpd(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("SolveSpd shape mismatch");
  }
  FEDSC_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  Matrix x = b;
  SolveLowerInPlace(l, &x);
  SolveLowerTransposedInPlace(l, &x);
  return x;
}

Result<Matrix> SpdInverse(const Matrix& a) {
  return SolveSpd(a, Matrix::Identity(a.rows()));
}

}  // namespace fedsc
