// Cholesky factorization and SPD solves.

#ifndef FEDSC_LINALG_CHOLESKY_H_
#define FEDSC_LINALG_CHOLESKY_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace fedsc {

// Lower-triangular L with A = L L^T. Fails if A is not (numerically)
// positive definite.
Result<Matrix> CholeskyFactor(const Matrix& a);

// Solves L y = b in place (forward substitution); L lower triangular,
// columns of b are independent right-hand sides.
void SolveLowerInPlace(const Matrix& l, Matrix* b);

// Solves L^T y = b in place (back substitution).
void SolveLowerTransposedInPlace(const Matrix& l, Matrix* b);

// Solves A X = B for SPD A via Cholesky.
Result<Matrix> SolveSpd(const Matrix& a, const Matrix& b);

// Inverse of an SPD matrix (used by the Woodbury path of the ADMM solver,
// where the matrix is small).
Result<Matrix> SpdInverse(const Matrix& a);

}  // namespace fedsc

#endif  // FEDSC_LINALG_CHOLESKY_H_
