#include "linalg/eig.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fedsc {

namespace {

double Pythag(double a, double b) { return std::hypot(a, b); }

// Householder reduction of the symmetric matrix in `z` to tridiagonal form
// (EISPACK tred2). On exit `d` holds the diagonal, `e` the subdiagonal
// (e[0] unused), and if accumulate is true `z` holds the orthogonal
// transformation; otherwise z's contents are scratch.
void Tred2(Matrix* zm, Vector* dv, Vector* ev, bool accumulate) {
  Matrix& z = *zm;
  Vector& d = *dv;
  Vector& e = *ev;
  const int64_t n = z.rows();
  d.assign(static_cast<size_t>(n), 0.0);
  e.assign(static_cast<size_t>(n), 0.0);

  for (int64_t i = n - 1; i > 0; --i) {
    const int64_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (int64_t k = 0; k <= l; ++k) scale += std::fabs(z(i, k));
      if (scale == 0.0) {
        e[static_cast<size_t>(i)] = z(i, l);
      } else {
        for (int64_t k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[static_cast<size_t>(i)] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (int64_t j = 0; j <= l; ++j) {
          if (accumulate) z(j, i) = z(i, j) / h;
          g = 0.0;
          for (int64_t k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (int64_t k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[static_cast<size_t>(j)] = g / h;
          f += e[static_cast<size_t>(j)] * z(i, j);
        }
        const double hh = f / (h + h);
        for (int64_t j = 0; j <= l; ++j) {
          f = z(i, j);
          g = e[static_cast<size_t>(j)] - hh * f;
          e[static_cast<size_t>(j)] = g;
          for (int64_t k = 0; k <= j; ++k) {
            z(j, k) -= f * e[static_cast<size_t>(k)] + g * z(i, k);
          }
        }
      }
    } else {
      e[static_cast<size_t>(i)] = z(i, l);
    }
    d[static_cast<size_t>(i)] = h;
  }
  if (accumulate) d[0] = 0.0;
  e[0] = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    if (accumulate) {
      if (d[static_cast<size_t>(i)] != 0.0) {
        for (int64_t j = 0; j < i; ++j) {
          double g = 0.0;
          for (int64_t k = 0; k < i; ++k) g += z(i, k) * z(k, j);
          for (int64_t k = 0; k < i; ++k) z(k, j) -= g * z(k, i);
        }
      }
      d[static_cast<size_t>(i)] = z(i, i);
      z(i, i) = 1.0;
      for (int64_t j = 0; j < i; ++j) {
        z(j, i) = 0.0;
        z(i, j) = 0.0;
      }
    } else {
      d[static_cast<size_t>(i)] = z(i, i);
    }
  }
}

// QL with implicit shifts on a tridiagonal matrix (EISPACK tql2). If
// accumulate is true, rotations are applied to the columns of z.
Status Tql2(Vector* dv, Vector* ev, Matrix* zm, bool accumulate) {
  Vector& d = *dv;
  Vector& e = *ev;
  Matrix& z = *zm;
  const int64_t n = static_cast<int64_t>(d.size());
  if (n == 0) return Status::OK();
  for (int64_t i = 1; i < n; ++i) {
    e[static_cast<size_t>(i - 1)] = e[static_cast<size_t>(i)];
  }
  e[static_cast<size_t>(n - 1)] = 0.0;

  constexpr int kMaxIterations = 50;
  const double eps = std::numeric_limits<double>::epsilon();
  for (int64_t l = 0; l < n; ++l) {
    int iterations = 0;
    int64_t m;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::fabs(d[static_cast<size_t>(m)]) +
                          std::fabs(d[static_cast<size_t>(m + 1)]);
        if (std::fabs(e[static_cast<size_t>(m)]) <= eps * dd) break;
      }
      if (m != l) {
        if (iterations++ == kMaxIterations) {
          return Status::NotConverged("tql2 exceeded iteration limit");
        }
        double g = (d[static_cast<size_t>(l + 1)] - d[static_cast<size_t>(l)]) /
                   (2.0 * e[static_cast<size_t>(l)]);
        double r = Pythag(g, 1.0);
        g = d[static_cast<size_t>(m)] - d[static_cast<size_t>(l)] +
            e[static_cast<size_t>(l)] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        int64_t i = m - 1;
        for (; i >= l; --i) {
          double f = s * e[static_cast<size_t>(i)];
          const double b = c * e[static_cast<size_t>(i)];
          r = Pythag(f, g);
          e[static_cast<size_t>(i + 1)] = r;
          if (r == 0.0) {
            d[static_cast<size_t>(i + 1)] -= p;
            e[static_cast<size_t>(m)] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[static_cast<size_t>(i + 1)] - p;
          r = (d[static_cast<size_t>(i)] - g) * s + 2.0 * c * b;
          p = s * r;
          d[static_cast<size_t>(i + 1)] = g + p;
          g = c * r - b;
          if (accumulate) {
            for (int64_t k = 0; k < n; ++k) {
              f = z(k, i + 1);
              z(k, i + 1) = s * z(k, i) + c * f;
              z(k, i) = c * z(k, i) - s * f;
            }
          }
        }
        if (r == 0.0 && i >= l) continue;
        d[static_cast<size_t>(l)] -= p;
        e[static_cast<size_t>(l)] = g;
        e[static_cast<size_t>(m)] = 0.0;
      }
    } while (m != l);
  }
  return Status::OK();
}

Status CheckSquare(const Matrix& a) {
  if (a.rows() == 0 || a.rows() != a.cols()) {
    return Status::InvalidArgument("eigendecomposition needs a non-empty "
                                   "square matrix");
  }
  return Status::OK();
}

}  // namespace

Result<EigResult> SymmetricEigen(const Matrix& a) {
  FEDSC_RETURN_NOT_OK(CheckSquare(a));
  Matrix z = a;
  Vector d, e;
  Tred2(&z, &d, &e, /*accumulate=*/true);
  FEDSC_RETURN_NOT_OK(Tql2(&d, &e, &z, /*accumulate=*/true));

  // Sort ascending, permuting eigenvectors along.
  const int64_t n = a.rows();
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t i, int64_t j) {
    return d[static_cast<size_t>(i)] < d[static_cast<size_t>(j)];
  });
  EigResult result;
  result.values.resize(static_cast<size_t>(n));
  result.vectors = Matrix(n, n);
  for (int64_t j = 0; j < n; ++j) {
    const int64_t src = order[static_cast<size_t>(j)];
    result.values[static_cast<size_t>(j)] = d[static_cast<size_t>(src)];
    result.vectors.SetCol(j, z.ColData(src));
  }
  return result;
}

Result<Vector> SymmetricEigenvalues(const Matrix& a) {
  FEDSC_RETURN_NOT_OK(CheckSquare(a));
  Matrix z = a;
  Vector d, e;
  Tred2(&z, &d, &e, /*accumulate=*/false);
  FEDSC_RETURN_NOT_OK(Tql2(&d, &e, &z, /*accumulate=*/false));
  std::sort(d.begin(), d.end());
  return d;
}

}  // namespace fedsc
