#include "linalg/eig.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "linalg/blas.h"
#include "linalg/qr.h"

namespace fedsc {

namespace {

double Pythag(double a, double b) { return std::hypot(a, b); }

// Householder reduction of the symmetric matrix in `z` to tridiagonal form
// (EISPACK tred2). On exit `d` holds the diagonal, `e` the subdiagonal
// (e[0] unused), and if accumulate is true `z` holds the orthogonal
// transformation; otherwise z's contents are scratch.
void Tred2(Matrix* zm, Vector* dv, Vector* ev, bool accumulate) {
  Matrix& z = *zm;
  Vector& d = *dv;
  Vector& e = *ev;
  const int64_t n = z.rows();
  d.assign(static_cast<size_t>(n), 0.0);
  e.assign(static_cast<size_t>(n), 0.0);

  for (int64_t i = n - 1; i > 0; --i) {
    const int64_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (int64_t k = 0; k <= l; ++k) scale += std::fabs(z(i, k));
      if (scale == 0.0) {
        e[static_cast<size_t>(i)] = z(i, l);
      } else {
        for (int64_t k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[static_cast<size_t>(i)] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (int64_t j = 0; j <= l; ++j) {
          if (accumulate) z(j, i) = z(i, j) / h;
          g = 0.0;
          for (int64_t k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (int64_t k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[static_cast<size_t>(j)] = g / h;
          f += e[static_cast<size_t>(j)] * z(i, j);
        }
        const double hh = f / (h + h);
        for (int64_t j = 0; j <= l; ++j) {
          f = z(i, j);
          g = e[static_cast<size_t>(j)] - hh * f;
          e[static_cast<size_t>(j)] = g;
          for (int64_t k = 0; k <= j; ++k) {
            z(j, k) -= f * e[static_cast<size_t>(k)] + g * z(i, k);
          }
        }
      }
    } else {
      e[static_cast<size_t>(i)] = z(i, l);
    }
    d[static_cast<size_t>(i)] = h;
  }
  if (accumulate) d[0] = 0.0;
  e[0] = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    if (accumulate) {
      if (d[static_cast<size_t>(i)] != 0.0) {
        for (int64_t j = 0; j < i; ++j) {
          double g = 0.0;
          for (int64_t k = 0; k < i; ++k) g += z(i, k) * z(k, j);
          for (int64_t k = 0; k < i; ++k) z(k, j) -= g * z(k, i);
        }
      }
      d[static_cast<size_t>(i)] = z(i, i);
      z(i, i) = 1.0;
      for (int64_t j = 0; j < i; ++j) {
        z(j, i) = 0.0;
        z(i, j) = 0.0;
      }
    } else {
      d[static_cast<size_t>(i)] = z(i, i);
    }
  }
}

// QL with implicit shifts on a tridiagonal matrix (EISPACK tql2). If
// accumulate is true, rotations are applied to the columns of z.
Status Tql2(Vector* dv, Vector* ev, Matrix* zm, bool accumulate) {
  Vector& d = *dv;
  Vector& e = *ev;
  Matrix& z = *zm;
  const int64_t n = static_cast<int64_t>(d.size());
  if (n == 0) return Status::OK();
  for (int64_t i = 1; i < n; ++i) {
    e[static_cast<size_t>(i - 1)] = e[static_cast<size_t>(i)];
  }
  e[static_cast<size_t>(n - 1)] = 0.0;

  constexpr int kMaxIterations = 50;
  const double eps = std::numeric_limits<double>::epsilon();
  for (int64_t l = 0; l < n; ++l) {
    int iterations = 0;
    int64_t m;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::fabs(d[static_cast<size_t>(m)]) +
                          std::fabs(d[static_cast<size_t>(m + 1)]);
        if (std::fabs(e[static_cast<size_t>(m)]) <= eps * dd) break;
      }
      if (m != l) {
        if (iterations++ == kMaxIterations) {
          return Status::NotConverged("tql2 exceeded iteration limit");
        }
        double g = (d[static_cast<size_t>(l + 1)] - d[static_cast<size_t>(l)]) /
                   (2.0 * e[static_cast<size_t>(l)]);
        double r = Pythag(g, 1.0);
        g = d[static_cast<size_t>(m)] - d[static_cast<size_t>(l)] +
            e[static_cast<size_t>(l)] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        int64_t i = m - 1;
        for (; i >= l; --i) {
          double f = s * e[static_cast<size_t>(i)];
          const double b = c * e[static_cast<size_t>(i)];
          r = Pythag(f, g);
          e[static_cast<size_t>(i + 1)] = r;
          if (r == 0.0) {
            d[static_cast<size_t>(i + 1)] -= p;
            e[static_cast<size_t>(m)] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[static_cast<size_t>(i + 1)] - p;
          r = (d[static_cast<size_t>(i)] - g) * s + 2.0 * c * b;
          p = s * r;
          d[static_cast<size_t>(i + 1)] = g + p;
          g = c * r - b;
          if (accumulate) {
            for (int64_t k = 0; k < n; ++k) {
              f = z(k, i + 1);
              z(k, i + 1) = s * z(k, i) + c * f;
              z(k, i) = c * z(k, i) - s * f;
            }
          }
        }
        if (r == 0.0 && i >= l) continue;
        d[static_cast<size_t>(l)] -= p;
        e[static_cast<size_t>(l)] = g;
        e[static_cast<size_t>(m)] = 0.0;
      }
    } while (m != l);
  }
  return Status::OK();
}

Status CheckSquare(const Matrix& a) {
  if (a.rows() == 0 || a.rows() != a.cols()) {
    return Status::InvalidArgument("eigendecomposition needs a non-empty "
                                   "square matrix");
  }
  return Status::OK();
}

// --- Blocked (latrd/sytrd-style) tridiagonalization ---

// Columns per compact-WY panel; sets the rank-2b trailing-update grouping,
// so it is result-affecting inside the blocked path like kQrPanelWidth.
constexpr int64_t kEigPanelWidth = 32;

// The contract reads only the lower triangle; the blocked reduction wants a
// full symmetric working matrix so its trailing matvecs stream contiguous
// columns.
Matrix SymmetrizeFromLower(const Matrix& a) {
  Matrix z = a;
  const int64_t n = z.rows();
  for (int64_t j = 1; j < n; ++j) {
    for (int64_t i = 0; i < j; ++i) z(i, j) = z(j, i);
  }
  return z;
}

// p = A22 v where A22 is the trailing block [j1, n) x [j1, n) of z (at
// panel-start state) and v, p have length n - j1. Threaded over row ranges:
// each output element accumulates over columns in ascending order, so the
// sum order — and the bits — never depend on the thread count.
void TrailingMatvec(const Matrix& z, int64_t j1, const double* v, double* p,
                    int num_threads) {
  const int64_t n = z.rows();
  const int64_t len = n - j1;
  const int threads =
      len * len < (1 << 15) ? 1 : std::min<int>(num_threads, 64);
  ParallelForRanges(0, len, threads, [&](int64_t r0, int64_t r1, int) {
    for (int64_t r = r0; r < r1; ++r) p[r] = 0.0;
    for (int64_t c = 0; c < len; ++c) {
      Axpy(v[c], z.ColData(j1 + c) + j1 + r0, p + r0, r1 - r0);
    }
  });
}

// Reduces the full symmetric matrix in `z` to tridiagonal form with panel
// accumulation: within a panel only the pivot column is updated (lazily,
// from the accumulated V and W), each reflector's two-sided contribution is
// captured as w = tau(Av - V(W^T v) - W(V^T v)) - (tau/2)(w^T v)v, and the
// trailing block gets one rank-2b update A22 -= V2 W2^T + W2 V2^T via two
// GEMMs. On exit d/e hold the tridiagonal (e[i] couples rows i-1 and i,
// e[0] = 0), taus[j] scales the reflector stored in column j of z (tail in
// rows [j+2, n), unit head at j+1 implicit).
void BlockedTridiagonalize(Matrix* zm, Vector* dv, Vector* ev, Vector* taus,
                           int num_threads) {
  Matrix& z = *zm;
  const int64_t n = z.rows();
  dv->assign(static_cast<size_t>(n), 0.0);
  ev->assign(static_cast<size_t>(n), 0.0);
  taus->assign(static_cast<size_t>(n), 0.0);
  Vector& d = *dv;
  Vector& e = *ev;

  for (int64_t s = 0; s < n - 2; s += kEigPanelWidth) {
    const int64_t j1 = std::min(s + kEigPanelWidth, n - 2);
    const int64_t b = j1 - s;
    // Full-length columns with exact zeros outside each reflector's
    // support, so the rank-2b update below is plain GEMM.
    Matrix vpan(n, b);
    Matrix wpan(n, b);
    for (int64_t j = s; j < j1; ++j) {
      const int64_t jj = j - s;
      double* col = z.ColData(j);
      // Lazy update of the pivot column with the panel's earlier
      // reflectors: A(j:n, j) -= V W(j,:)^T + W V(j,:)^T.
      for (int64_t c = 0; c < jj; ++c) {
        Axpy(-wpan(j, c), vpan.ColData(c) + j, col + j, n - j);
        Axpy(-vpan(j, c), wpan.ColData(c) + j, col + j, n - j);
      }
      d[static_cast<size_t>(j)] = col[j];
      const double tau = internal_qr::GenerateReflector(col, j + 1, n);
      (*taus)[static_cast<size_t>(j)] = tau;
      e[static_cast<size_t>(j + 1)] = col[j + 1];
      double* v = vpan.ColData(jj);
      v[j + 1] = 1.0;
      for (int64_t i = j + 2; i < n; ++i) v[i] = col[i];
      if (tau == 0.0) continue;  // H = I: w stays exactly zero
      double* w = wpan.ColData(jj);
      TrailingMatvec(z, j + 1, v + j + 1, w + j + 1, num_threads);
      const int64_t len = n - j - 1;
      for (int64_t c = 0; c < jj; ++c) {
        const double wv = Dot(wpan.ColData(c) + j + 1, v + j + 1, len);
        const double vv = Dot(vpan.ColData(c) + j + 1, v + j + 1, len);
        Axpy(-wv, vpan.ColData(c) + j + 1, w + j + 1, len);
        Axpy(-vv, wpan.ColData(c) + j + 1, w + j + 1, len);
      }
      Scal(tau, w + j + 1, len);
      const double alpha = -0.5 * tau * Dot(w + j + 1, v + j + 1, len);
      Axpy(alpha, v + j + 1, w + j + 1, len);
    }
    // Rank-2b trailing update on the block [j1, n) x [j1, n).
    const int64_t nt = n - j1;
    Matrix v2(nt, b);
    Matrix w2(nt, b);
    for (int64_t c = 0; c < b; ++c) {
      const double* vs = vpan.ColData(c) + j1;
      const double* ws = wpan.ColData(c) + j1;
      double* vd = v2.ColData(c);
      double* wd = w2.ColData(c);
      for (int64_t i = 0; i < nt; ++i) {
        vd[i] = vs[i];
        wd[i] = ws[i];
      }
    }
    Matrix upd(nt, nt);
    Gemm(Trans::kNo, Trans::kTrans, 1.0, v2, w2, 0.0, &upd, num_threads);
    Gemm(Trans::kNo, Trans::kTrans, 1.0, w2, v2, 1.0, &upd, num_threads);
    const int threads =
        nt * nt < (1 << 15) ? 1 : std::min<int>(num_threads, 64);
    ParallelForRanges(0, nt, threads, [&](int64_t c0, int64_t c1, int) {
      for (int64_t c = c0; c < c1; ++c) {
        double* dst = z.ColData(j1 + c) + j1;
        const double* src = upd.ColData(c);
        for (int64_t i = 0; i < nt; ++i) dst[i] -= src[i];
      }
    });
  }
  d[static_cast<size_t>(n - 2)] = z(n - 2, n - 2);
  d[static_cast<size_t>(n - 1)] = z(n - 1, n - 1);
  e[static_cast<size_t>(n - 1)] = z(n - 1, n - 2);
  e[0] = 0.0;
}

// Q = H_0 H_1 ... H_{n-3} accumulated panel-by-panel in reverse order with
// the compact-WY helpers shared with blocked QR. When panel [s, j1) is
// applied, columns <= s of the running product are still unit vectors with
// support above row s + 1, so only the trailing corner updates.
Matrix AccumulateQ(const Matrix& z, const Vector& taus, int num_threads) {
  const int64_t n = z.rows();
  Matrix q = Matrix::Identity(n);
  if (n < 3) return q;
  const int64_t last = ((n - 3) / kEigPanelWidth) * kEigPanelWidth;
  for (int64_t s = last; s >= 0; s -= kEigPanelWidth) {
    const int64_t j1 = std::min(s + kEigPanelWidth, n - 2);
    const int64_t b = j1 - s;
    // Reflector s + jj has its unit head at global row s + jj + 1 — local
    // row jj of a block starting at row s + 1, the PanelV layout.
    Matrix v(n - s - 1, b);
    for (int64_t jj = 0; jj < b; ++jj) {
      const double* col = z.ColData(s + jj);
      v(jj, jj) = 1.0;
      for (int64_t i = s + jj + 2; i < n; ++i) v(i - s - 1, jj) = col[i];
    }
    const Matrix t = internal_qr::BuildCompactWyT(v, taus.data() + s);
    Matrix corner(n - s - 1, n - s - 1);
    for (int64_t c = s + 1; c < n; ++c) {
      const double* src = q.ColData(c);
      double* dst = corner.ColData(c - s - 1);
      for (int64_t i = s + 1; i < n; ++i) dst[i - s - 1] = src[i];
    }
    internal_qr::ApplyBlockReflector(v, t, /*transpose=*/false, &corner,
                                     num_threads);
    for (int64_t c = s + 1; c < n; ++c) {
      const double* src = corner.ColData(c - s - 1);
      double* dst = q.ColData(c);
      for (int64_t i = s + 1; i < n; ++i) dst[i] = src[i - s - 1];
    }
  }
  return q;
}

bool UseBlockedEig(EigVariant variant, int64_t n) {
  if (n < 3) return false;  // already tridiagonal
  switch (variant) {
    case EigVariant::kUnblocked:
      return false;
    case EigVariant::kBlocked:
      return true;
    case EigVariant::kAuto:
      break;
  }
  return n >= kBlockedEigCutoff;
}

// Tridiagonalizes into (d, e) with either engine; returns the orthogonal
// accumulation in z when accumulate is set (scratch otherwise).
void Tridiagonalize(const Matrix& a, bool blocked, bool accumulate,
                    int num_threads, Matrix* z, Vector* d, Vector* e) {
  const int64_t n = a.rows();
  FEDSC_METRIC_COUNTER("linalg.eig.tridiag_flops")
      .Add((4 * n * n * n) / 3);
  if (!blocked) {
    *z = a;
    Tred2(z, d, e, accumulate);
    return;
  }
  Matrix work = SymmetrizeFromLower(a);
  Vector taus;
  BlockedTridiagonalize(&work, d, e, &taus, num_threads);
  if (accumulate) {
    *z = AccumulateQ(work, taus, num_threads);
  }
}

}  // namespace

Result<EigResult> SymmetricEigen(const Matrix& a, const EigOptions& options) {
  FEDSC_RETURN_NOT_OK(CheckSquare(a));
  const bool blocked = UseBlockedEig(options.variant, a.rows());
  FEDSC_TRACE_SPAN("linalg/eig",
                   {{"n", a.rows()}, {"blocked", blocked ? 1 : 0}});
  FEDSC_METRIC_COUNTER("linalg.eig.calls").Increment();
  Matrix z;
  Vector d, e;
  Tridiagonalize(a, blocked, /*accumulate=*/true, options.num_threads, &z, &d,
                 &e);
  FEDSC_RETURN_NOT_OK(Tql2(&d, &e, &z, /*accumulate=*/true));

  // Sort ascending, permuting eigenvectors along.
  const int64_t n = a.rows();
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t i, int64_t j) {
    return d[static_cast<size_t>(i)] < d[static_cast<size_t>(j)];
  });
  EigResult result;
  result.values.resize(static_cast<size_t>(n));
  result.vectors = Matrix(n, n);
  for (int64_t j = 0; j < n; ++j) {
    const int64_t src = order[static_cast<size_t>(j)];
    result.values[static_cast<size_t>(j)] = d[static_cast<size_t>(src)];
    result.vectors.SetCol(j, z.ColData(src));
  }
  return result;
}

Result<Vector> SymmetricEigenvalues(const Matrix& a,
                                    const EigOptions& options) {
  FEDSC_RETURN_NOT_OK(CheckSquare(a));
  const bool blocked = UseBlockedEig(options.variant, a.rows());
  FEDSC_TRACE_SPAN("linalg/eig",
                   {{"n", a.rows()}, {"blocked", blocked ? 1 : 0}});
  FEDSC_METRIC_COUNTER("linalg.eig.calls").Increment();
  Matrix z;
  Vector d, e;
  Tridiagonalize(a, blocked, /*accumulate=*/false, options.num_threads, &z,
                 &d, &e);
  FEDSC_RETURN_NOT_OK(Tql2(&d, &e, &z, /*accumulate=*/false));
  std::sort(d.begin(), d.end());
  return d;
}

}  // namespace fedsc
