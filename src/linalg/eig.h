// Dense symmetric eigendecomposition: Householder tridiagonalization
// followed by the implicit-shift QL iteration (the classic EISPACK
// tred2/tql2 pair). Used for spectral clustering of small/medium affinity
// graphs and for the eigengap heuristic; large sparse graphs use Lanczos
// (linalg/lanczos.h) instead.

#ifndef FEDSC_LINALG_EIG_H_
#define FEDSC_LINALG_EIG_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace fedsc {

struct EigResult {
  Vector values;   // ascending
  Matrix vectors;  // column j is the eigenvector of values[j]; orthonormal
};

// Full eigendecomposition of a symmetric matrix. Only the lower triangle is
// read; symmetry is the caller's contract.
Result<EigResult> SymmetricEigen(const Matrix& a);

// Only the eigenvalues, ascending (skips eigenvector accumulation; about
// 2-3x faster for the eigengap heuristic which needs no vectors).
Result<Vector> SymmetricEigenvalues(const Matrix& a);

}  // namespace fedsc

#endif  // FEDSC_LINALG_EIG_H_
