// Dense symmetric eigendecomposition: Householder tridiagonalization
// followed by the implicit-shift QL iteration (the classic EISPACK
// tred2/tql2 pair). Used for spectral clustering of small/medium affinity
// graphs and for the eigengap heuristic; large sparse graphs use Lanczos
// (linalg/lanczos.h) instead.
//
// Two tridiagonalization engines sit behind SymmetricEigen, completing the
// dispatch contract of DESIGN.md "Blocked factorizations & dispatch
// contract": the classic element-wise tred2 sweep, and a blocked
// (latrd/sytrd-style) reduction that accumulates Householder panels and
// applies the two-sided trailing update as two GEMMs on the packed engine.
// The switch is RESULT-AFFECTING (different floating-point grouping; both
// reach valid tridiagonal forms whose QL eigensystems agree to roundoff)
// and under EigVariant::kAuto is a pure function of the matrix order —
// never of num_threads.

#ifndef FEDSC_LINALG_EIG_H_
#define FEDSC_LINALG_EIG_H_

#include <cstdint>

#include "common/result.h"
#include "linalg/matrix.h"

namespace fedsc {

struct EigResult {
  Vector values;   // ascending
  Matrix vectors;  // column j is the eigenvector of values[j]; orthonormal
};

// Which tridiagonalization engine runs. Result-affecting, pinned to
// (options, shape) alone — the escape hatch mirroring QrVariant.
enum class EigVariant {
  // Blocked reduction when n >= kBlockedEigCutoff, classic tred2 below.
  kAuto,
  // Pin the element-wise tred2 path at every size: reproduces pre-blocked
  // results bit-for-bit.
  kUnblocked,
  // Force the blocked panel reduction at every size (n >= 3; smaller
  // matrices are already tridiagonal and fall back to tred2).
  kBlocked,
};

// The kAuto matrix order at and above which the blocked reduction engages.
// Result-affecting, like kBlockedQrCutoff: eigensystems are discontinuous
// in their low-order bits across it but deterministic on both sides.
inline constexpr int64_t kBlockedEigCutoff = 128;

struct EigOptions {
  EigVariant variant = EigVariant::kAuto;
  // Workers for the GEMM trailing updates and panel matvecs inside the
  // blocked path. Bit-identical results for every thread count.
  int num_threads = 1;
};

// Full eigendecomposition of a symmetric matrix. Only the lower triangle is
// read; symmetry is the caller's contract.
Result<EigResult> SymmetricEigen(const Matrix& a, const EigOptions& options = {});

// Only the eigenvalues, ascending (skips eigenvector accumulation; about
// 2-3x faster for the eigengap heuristic which needs no vectors).
Result<Vector> SymmetricEigenvalues(const Matrix& a,
                                    const EigOptions& options = {});

}  // namespace fedsc

#endif  // FEDSC_LINALG_EIG_H_
