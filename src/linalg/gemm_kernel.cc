#include "linalg/gemm_kernel.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "common/check.h"
#include "common/thread_pool.h"
#include "linalg/blas.h"

// The micro-kernel relies on full unrolling of its fixed-trip-count loops so
// the accumulator tile stays in vector registers; without the pragma GCC 12
// SLP-vectorizes along the (non-power-of-two) broadcast axis and drowns the
// FMAs in cross-lane permutes.
#if defined(__clang__)
#define FEDSC_UNROLL_FULL _Pragma("unroll")
#elif defined(__GNUC__)
#define FEDSC_UNROLL_FULL _Pragma("GCC unroll 16")
#else
#define FEDSC_UNROLL_FULL
#endif

namespace fedsc {

namespace {

using internal_gemm::kKc;
using internal_gemm::kMc;
using internal_gemm::kMr;
using internal_gemm::kNc;
using internal_gemm::kNr;

int64_t RoundUp(int64_t value, int64_t multiple) {
  return (value + multiple - 1) / multiple * multiple;
}

// Grow-once 64-byte-aligned buffer for packed panels.
class AlignedBuffer {
 public:
  double* EnsureCapacity(int64_t doubles) {
    if (doubles > capacity_) {
      const size_t bytes =
          static_cast<size_t>(RoundUp(doubles * sizeof(double), 64));
      data_.reset(static_cast<double*>(std::aligned_alloc(64, bytes)));
      FEDSC_CHECK(data_ != nullptr) << "packing buffer allocation failed";
      capacity_ = doubles;
    }
    return data_.get();
  }

 private:
  struct FreeDeleter {
    void operator()(double* p) const { std::free(p); }
  };
  std::unique_ptr<double, FreeDeleter> data_;
  int64_t capacity_ = 0;
};

// Per-thread scratch arena: the calling thread (the pool caller, or a worker
// running a nested region inline) packs into its own thread-local buffers,
// so steady-state GEMMs never allocate. Workers of the jr loop only read.
struct GemmScratch {
  AlignedBuffer apack;
  AlignedBuffer bpack;
};

GemmScratch& LocalGemmScratch() {
  thread_local GemmScratch scratch;
  return scratch;
}

// --- Packing -------------------------------------------------------------
//
// apack holds op(A)[ic:ic+mc, pc:pc+kc] as ceil(mc/MR) micro-panels; each
// micro-panel is k-major with MR contiguous row lanes per k (tail rows
// zero-padded — the padded lanes feed accumulators whose outputs are never
// written back, so padding cannot affect result bits). bpack holds
// op(B)[pc:pc+kc, jc:jc+nc] symmetrically with NR column lanes.

void PackA(const double* a, int64_t lda, bool transposed, int64_t ic,
           int64_t pc, int64_t mc, int64_t kc, double* out) {
  for (int64_t i0 = 0; i0 < mc; i0 += kMr) {
    const int64_t mr = std::min<int64_t>(kMr, mc - i0);
    if (!transposed) {
      // op(A)(i, p) = A(ic + i, pc + p): MR consecutive rows of a column.
      for (int64_t p = 0; p < kc; ++p) {
        const double* src = a + (pc + p) * lda + ic + i0;
        for (int64_t i = 0; i < mr; ++i) out[i] = src[i];
        for (int64_t i = mr; i < kMr; ++i) out[i] = 0.0;
        out += kMr;
      }
    } else {
      // op(A)(i, p) = A(pc + p, ic + i): column ic+i is contiguous in p, so
      // read columns and scatter into the k-major panel.
      if (mr < kMr) {
        for (int64_t p = 0; p < kc; ++p) {
          for (int64_t i = mr; i < kMr; ++i) out[p * kMr + i] = 0.0;
        }
      }
      for (int64_t i = 0; i < mr; ++i) {
        const double* src = a + (ic + i0 + i) * lda + pc;
        for (int64_t p = 0; p < kc; ++p) out[p * kMr + i] = src[p];
      }
      out += kMr * kc;
    }
  }
}

void PackB(const double* b, int64_t ldb, bool transposed, int64_t pc,
           int64_t jc, int64_t kc, int64_t nc, double* out) {
  for (int64_t j0 = 0; j0 < nc; j0 += kNr) {
    const int64_t nr = std::min<int64_t>(kNr, nc - j0);
    if (!transposed) {
      // op(B)(p, j) = B(pc + p, jc + j): column jc+j is contiguous in p.
      if (nr < kNr) {
        for (int64_t p = 0; p < kc; ++p) {
          for (int64_t j = nr; j < kNr; ++j) out[p * kNr + j] = 0.0;
        }
      }
      for (int64_t j = 0; j < nr; ++j) {
        const double* src = b + (jc + j0 + j) * ldb + pc;
        for (int64_t p = 0; p < kc; ++p) out[p * kNr + j] = src[p];
      }
    } else {
      // op(B)(p, j) = B(jc + j, pc + p): NR consecutive rows of a column.
      for (int64_t p = 0; p < kc; ++p) {
        const double* src = b + (pc + p) * ldb + jc + j0;
        for (int64_t j = 0; j < nr; ++j) out[p * kNr + j] = src[j];
        for (int64_t j = nr; j < kNr; ++j) out[p * kNr + j] = 0.0;
      }
    }
    out += kNr * kc;
  }
}

// --- Micro-kernel --------------------------------------------------------

// acc[j * MR + i] = sum_p apanel[p * MR + i] * bpanel[p * NR + j], the exact
// p-ascending partial sum for this kc block. MR is the contiguous (vector)
// axis, NR the broadcast axis; the accumulator tile lives in registers.
void MicroKernel(int64_t kc, const double* __restrict apanel,
                 const double* __restrict bpanel, double* __restrict acc) {
  double tile[kNr][kMr] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const double* __restrict ap = apanel + p * kMr;
    const double* __restrict bp = bpanel + p * kNr;
    FEDSC_UNROLL_FULL
    for (int j = 0; j < kNr; ++j) {
      const double w = bp[j];
      FEDSC_UNROLL_FULL
      for (int i = 0; i < kMr; ++i) tile[j][i] += ap[i] * w;
    }
  }
  for (int j = 0; j < kNr; ++j) {
    for (int i = 0; i < kMr; ++i) acc[j * kMr + i] = tile[j][i];
  }
}

// --- Blocked driver ------------------------------------------------------

// Shared core for GEMM and the lower-triangle SYRK. When lower_only is set,
// micro-tiles strictly above the diagonal are skipped and write-back stores
// only elements with global row >= global column.
void BlockedCore(bool trans_a, bool trans_b, double alpha, const double* a,
                 int64_t lda, const double* b, int64_t ldb, int64_t m,
                 int64_t k, int64_t n, Matrix* c, bool lower_only,
                 int num_threads) {
  GemmScratch& scratch = LocalGemmScratch();
  double* apack = scratch.apack.EnsureCapacity(
      RoundUp(std::min<int64_t>(m, kMc), kMr) * std::min<int64_t>(k, kKc));
  double* bpack = scratch.bpack.EnsureCapacity(
      RoundUp(std::min<int64_t>(n, kNc), kNr) * std::min<int64_t>(k, kKc));

  double* cdata = c->data();
  const int64_t ldc = c->rows();

  // Same serial-inline threshold as the panel kernels: never spin up
  // workers for products too small to amortize a dispatch.
  const int threads =
      m * k * n < (1 << 16) ? 1 : std::min<int>(num_threads, 64);

  for (int64_t jc = 0; jc < n; jc += kNc) {
    const int64_t nc = std::min<int64_t>(kNc, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKc) {
      const int64_t kc = std::min<int64_t>(kKc, k - pc);
      PackB(b, ldb, trans_b, pc, jc, kc, nc, bpack);
      for (int64_t ic = 0; ic < m; ic += kMc) {
        const int64_t mc = std::min<int64_t>(kMc, m - ic);
        // A lower-only block whose topmost row still lies strictly above
        // the block's last column contributes nothing.
        if (lower_only && ic + mc - 1 < jc) continue;
        PackA(a, lda, trans_a, ic, pc, mc, kc, apack);
        const int64_t num_jr = (nc + kNr - 1) / kNr;
        // The packed panels are written above and only read below; the
        // pool's Schedule/Wait pair orders the accesses. Each jr range owns
        // a disjoint set of C columns, and every output element runs the
        // identical micro-kernel sequence no matter how ranges are split,
        // so the result is bit-identical for every thread count.
        ParallelForRanges(
            0, num_jr, threads, [&](int64_t jr0, int64_t jr1, int /*chunk*/) {
              double acc[kMr * kNr];
              for (int64_t jrb = jr0; jrb < jr1; ++jrb) {
                const int64_t jr = jrb * kNr;
                const int64_t nr = std::min<int64_t>(kNr, nc - jr);
                const double* bpanel = bpack + jrb * kc * kNr;
                for (int64_t ir = 0; ir < mc; ir += kMr) {
                  const int64_t mr = std::min<int64_t>(kMr, mc - ir);
                  // Skip micro-tiles entirely above the diagonal; this is
                  // where SYRK halves the flops.
                  if (lower_only && ic + ir + mr - 1 < jc + jr) continue;
                  const double* apanel = apack + (ir / kMr) * kc * kMr;
                  MicroKernel(kc, apanel, bpanel, acc);
                  double* ctile = cdata + (jc + jr) * ldc + ic + ir;
                  for (int64_t j = 0; j < nr; ++j) {
                    const int64_t lower_start =
                        lower_only
                            ? std::max<int64_t>(0, (jc + jr + j) - (ic + ir))
                            : 0;
                    for (int64_t i = lower_start; i < mr; ++i) {
                      ctile[j * ldc + i] += alpha * acc[j * kMr + i];
                    }
                  }
                }
              }
            });
      }
    }
  }
}

}  // namespace

void BlockedGemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
                 const Matrix& b, Matrix* c, int num_threads) {
  const bool ta = trans_a != Trans::kNo;
  const bool tb = trans_b != Trans::kNo;
  const int64_t m = ta ? a.cols() : a.rows();
  const int64_t k = ta ? a.rows() : a.cols();
  const int64_t n = tb ? b.rows() : b.cols();
  BlockedCore(ta, tb, alpha, a.data(), a.rows(), b.data(), b.rows(), m, k, n,
              c, /*lower_only=*/false, num_threads);
}

void BlockedSyrkLower(Trans trans, double alpha, const Matrix& x, Matrix* c,
                      int num_threads) {
  // trans = kTrans: C += alpha X^T X  (op(A) = X^T against op(B) = X).
  // trans = kNo:    C += alpha X X^T  (op(A) = X   against op(B) = X^T).
  const bool gram = trans != Trans::kNo;
  const int64_t nn = gram ? x.cols() : x.rows();
  const int64_t kk = gram ? x.rows() : x.cols();
  BlockedCore(gram, !gram, alpha, x.data(), x.rows(), x.data(), x.rows(), nn,
              kk, nn, c, /*lower_only=*/true, num_threads);
}

}  // namespace fedsc
