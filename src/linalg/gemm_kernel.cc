#include "linalg/gemm_kernel.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "common/check.h"
#include "common/thread_pool.h"
#include "linalg/blas.h"

// The generic micro-kernel relies on full unrolling of its fixed-trip-count
// loops so the accumulator tile stays in vector registers; without the
// pragma GCC 12 SLP-vectorizes along the (non-power-of-two) broadcast axis
// and drowns the FMAs in cross-lane permutes.
#if defined(__clang__)
#define FEDSC_UNROLL_FULL _Pragma("unroll")
#elif defined(__GNUC__)
#define FEDSC_UNROLL_FULL _Pragma("GCC unroll 16")
#else
#define FEDSC_UNROLL_FULL
#endif

namespace fedsc {

namespace {

using internal_gemm::kAvx2Mr;
using internal_gemm::kAvx2Nr;
using internal_gemm::kAvx512Mr;
using internal_gemm::kAvx512Nr;
using internal_gemm::kGenericMr;
using internal_gemm::kGenericNr;
using internal_gemm::kKc;
using internal_gemm::kMc;
using internal_gemm::kNc;
using internal_gemm::kPrefetchAhead;

int64_t RoundUp(int64_t value, int64_t multiple) {
  return (value + multiple - 1) / multiple * multiple;
}

// Grow-once 64-byte-aligned buffer for packed panels.
class AlignedBuffer {
 public:
  double* EnsureCapacity(int64_t doubles) {
    if (doubles > capacity_) {
      const size_t bytes =
          static_cast<size_t>(RoundUp(doubles * sizeof(double), 64));
      data_.reset(static_cast<double*>(std::aligned_alloc(64, bytes)));
      FEDSC_CHECK(data_ != nullptr) << "packing buffer allocation failed";
      capacity_ = doubles;
    }
    return data_.get();
  }

 private:
  struct FreeDeleter {
    void operator()(double* p) const { std::free(p); }
  };
  std::unique_ptr<double, FreeDeleter> data_;
  int64_t capacity_ = 0;
};

// Per-thread scratch arena: the calling thread (the pool caller, or a worker
// running a nested region inline) packs into its own thread-local buffers,
// so steady-state GEMMs never allocate. Workers of the jr loop only read.
struct GemmScratch {
  AlignedBuffer apack;
  AlignedBuffer bpack;
};

GemmScratch& LocalGemmScratch() {
  thread_local GemmScratch scratch;
  return scratch;
}

// --- Packing -------------------------------------------------------------
//
// apack holds op(A)[ic:ic+mc, pc:pc+kc] as ceil(mc/MR) micro-panels; each
// micro-panel is k-major with MR contiguous row lanes per k (tail rows
// zero-padded — the padded lanes feed accumulators whose outputs are never
// written back, so padding cannot affect result bits). bpack holds
// op(B)[pc:pc+kc, jc:jc+nc] symmetrically with NR column lanes. MR/NR are
// the dispatched tier's tile shape; since every micro-panel start and every
// k-slice stride (MR or NR doubles) is a multiple of 8 doubles or lands on
// a 64-byte boundary for the SIMD tiers (MR in {8, 16, 24}, NR = 8), the
// intrinsic kernels can use aligned vector loads.

template <int MR>
void PackA(const double* a, int64_t lda, bool transposed, int64_t ic,
           int64_t pc, int64_t mc, int64_t kc, double* out) {
  for (int64_t i0 = 0; i0 < mc; i0 += MR) {
    const int64_t mr = std::min<int64_t>(MR, mc - i0);
    if (!transposed) {
      // op(A)(i, p) = A(ic + i, pc + p): MR consecutive rows of a column.
      for (int64_t p = 0; p < kc; ++p) {
        const double* src = a + (pc + p) * lda + ic + i0;
        for (int64_t i = 0; i < mr; ++i) out[i] = src[i];
        for (int64_t i = mr; i < MR; ++i) out[i] = 0.0;
        out += MR;
      }
    } else {
      // op(A)(i, p) = A(pc + p, ic + i): column ic+i is contiguous in p, so
      // read columns and scatter into the k-major panel.
      if (mr < MR) {
        for (int64_t p = 0; p < kc; ++p) {
          for (int64_t i = mr; i < MR; ++i) out[p * MR + i] = 0.0;
        }
      }
      for (int64_t i = 0; i < mr; ++i) {
        const double* src = a + (ic + i0 + i) * lda + pc;
        for (int64_t p = 0; p < kc; ++p) out[p * MR + i] = src[p];
      }
      out += MR * kc;
    }
  }
}

template <int NR>
void PackB(const double* b, int64_t ldb, bool transposed, int64_t pc,
           int64_t jc, int64_t kc, int64_t nc, double* out) {
  for (int64_t j0 = 0; j0 < nc; j0 += NR) {
    const int64_t nr = std::min<int64_t>(NR, nc - j0);
    if (!transposed) {
      // op(B)(p, j) = B(pc + p, jc + j): column jc+j is contiguous in p.
      if (nr < NR) {
        for (int64_t p = 0; p < kc; ++p) {
          for (int64_t j = nr; j < NR; ++j) out[p * NR + j] = 0.0;
        }
      }
      for (int64_t j = 0; j < nr; ++j) {
        const double* src = b + (jc + j0 + j) * ldb + pc;
        for (int64_t p = 0; p < kc; ++p) out[p * NR + j] = src[p];
      }
    } else {
      // op(B)(p, j) = B(jc + j, pc + p): NR consecutive rows of a column.
      for (int64_t p = 0; p < kc; ++p) {
        const double* src = b + (pc + p) * ldb + jc + j0;
        for (int64_t j = 0; j < nr; ++j) out[p * NR + j] = src[j];
        for (int64_t j = nr; j < NR; ++j) out[p * NR + j] = 0.0;
      }
    }
    out += NR * kc;
  }
}

// --- Micro-kernels -------------------------------------------------------
//
// Every tier computes acc[j * MR + i] = sum_p apanel[p*MR+i] * bpanel[p*NR+j]
// as ONE partial sum per output element, accumulated in ascending p order —
// the bit-determinism invariant. The tiers may not split the p loop across
// multiple accumulators per element (that would reorder the summation).
// The SIMD tiers software-prefetch the packed panels kPrefetchAhead k-steps
// ahead (prefetching past a panel's end is architecturally harmless); the
// generic tier deliberately does not — it is the frozen pre-dispatch
// reference kernel, kept byte-for-byte so CpuIsa::kGeneric stays an honest
// reproduction baseline rather than a third tuned kernel.

// Portable tier: the pre-dispatch kernel, auto-vectorized by the compiler.
// CpuIsa::kGeneric pins these exact bits (with -ffp-contract=fast the
// compiler contracts the multiply-add, matching the SIMD tiers' FMAs).
template <int MR, int NR>
void MicroGeneric(int64_t kc, const double* __restrict apanel,
                  const double* __restrict bpanel, double* __restrict acc) {
  double tile[NR][MR] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const double* __restrict ap = apanel + p * MR;
    const double* __restrict bp = bpanel + p * NR;
    FEDSC_UNROLL_FULL
    for (int j = 0; j < NR; ++j) {
      const double w = bp[j];
      FEDSC_UNROLL_FULL
      for (int i = 0; i < MR; ++i) tile[j][i] += ap[i] * w;
    }
  }
  for (int j = 0; j < NR; ++j) {
    for (int i = 0; i < MR; ++i) acc[j * MR + i] = tile[j][i];
  }
}

#if defined(__x86_64__) || defined(__i386__)

// AVX2+FMA 8x6 tier: 12 ymm accumulators + 2 A vectors + 1 broadcast = 15
// of 16 registers. Compiled with its own target attribute so the one binary
// carries it even when the global -march lacks AVX2; it only runs when
// cpuid says the host can execute it.
__attribute__((target("avx2,fma"))) void MicroAvx2(
    int64_t kc, const double* __restrict apanel,
    const double* __restrict bpanel, double* __restrict acc) {
  __m256d c[kAvx2Nr][2];
  for (int j = 0; j < kAvx2Nr; ++j) {
    c[j][0] = _mm256_setzero_pd();
    c[j][1] = _mm256_setzero_pd();
  }
  for (int64_t p = 0; p < kc; ++p) {
    const double* ap = apanel + p * kAvx2Mr;
    const double* bp = bpanel + p * kAvx2Nr;
    _mm_prefetch(reinterpret_cast<const char*>(ap + kAvx2Mr * kPrefetchAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(bp + kAvx2Nr * kPrefetchAhead),
                 _MM_HINT_T0);
    const __m256d a0 = _mm256_load_pd(ap);
    const __m256d a1 = _mm256_load_pd(ap + 4);
    FEDSC_UNROLL_FULL
    for (int j = 0; j < kAvx2Nr; ++j) {
      const __m256d b = _mm256_broadcast_sd(bp + j);
      c[j][0] = _mm256_fmadd_pd(a0, b, c[j][0]);
      c[j][1] = _mm256_fmadd_pd(a1, b, c[j][1]);
    }
  }
  for (int j = 0; j < kAvx2Nr; ++j) {
    _mm256_store_pd(acc + j * kAvx2Mr, c[j][0]);
    _mm256_store_pd(acc + j * kAvx2Mr + 4, c[j][1]);
  }
}

// AVX-512 24x8 tier: 24 zmm accumulators + 3 A vectors + 1 broadcast = 28
// of 32 registers. Three A loads feed eight broadcast columns, so the two
// FMA ports stay saturated at one load per two FMAs — ~65 GFLOP/s single
// thread at n = 512 on the 2.1 GHz Ice-Lake-class baseline host (97% of
// the dual-FMA peak), vs ~38 for the generic tier.
__attribute__((target("avx512f"))) void MicroAvx512(
    int64_t kc, const double* __restrict apanel,
    const double* __restrict bpanel, double* __restrict acc) {
  __m512d c[kAvx512Nr][3];
  for (int j = 0; j < kAvx512Nr; ++j) {
    c[j][0] = _mm512_setzero_pd();
    c[j][1] = _mm512_setzero_pd();
    c[j][2] = _mm512_setzero_pd();
  }
  for (int64_t p = 0; p < kc; ++p) {
    const double* ap = apanel + p * kAvx512Mr;
    const double* bp = bpanel + p * kAvx512Nr;
    _mm_prefetch(
        reinterpret_cast<const char*>(ap + kAvx512Mr * kPrefetchAhead),
        _MM_HINT_T0);
    _mm_prefetch(
        reinterpret_cast<const char*>(bp + kAvx512Nr * kPrefetchAhead),
        _MM_HINT_T0);
    const __m512d a0 = _mm512_load_pd(ap);
    const __m512d a1 = _mm512_load_pd(ap + 8);
    const __m512d a2 = _mm512_load_pd(ap + 16);
    FEDSC_UNROLL_FULL
    for (int j = 0; j < kAvx512Nr; ++j) {
      const __m512d b = _mm512_set1_pd(bp[j]);
      c[j][0] = _mm512_fmadd_pd(a0, b, c[j][0]);
      c[j][1] = _mm512_fmadd_pd(a1, b, c[j][1]);
      c[j][2] = _mm512_fmadd_pd(a2, b, c[j][2]);
    }
  }
  for (int j = 0; j < kAvx512Nr; ++j) {
    _mm512_store_pd(acc + j * kAvx512Mr, c[j][0]);
    _mm512_store_pd(acc + j * kAvx512Mr + 8, c[j][1]);
    _mm512_store_pd(acc + j * kAvx512Mr + 16, c[j][2]);
  }
}

#endif  // x86

// --- Blocked driver ------------------------------------------------------

using MicroFn = void (*)(int64_t, const double* __restrict,
                         const double* __restrict, double* __restrict);

// Shared core for GEMM and the lower-triangle SYRK, instantiated once per
// micro-kernel tier. When lower_only is set, micro-tiles strictly above the
// diagonal are skipped and write-back stores only elements with global
// row >= global column. MR/NR vary per tier but are not result-affecting:
// each output element still receives the identical p-ascending partial-sum
// sequence bounded by kKc.
template <int MR, int NR, MicroFn Micro>
void BlockedCoreT(bool trans_a, bool trans_b, double alpha, const double* a,
                  int64_t lda, const double* b, int64_t ldb, int64_t m,
                  int64_t k, int64_t n, Matrix* c, bool lower_only,
                  int num_threads) {
  GemmScratch& scratch = LocalGemmScratch();
  double* apack = scratch.apack.EnsureCapacity(
      RoundUp(std::min<int64_t>(m, kMc), MR) * std::min<int64_t>(k, kKc));
  double* bpack = scratch.bpack.EnsureCapacity(
      RoundUp(std::min<int64_t>(n, kNc), NR) * std::min<int64_t>(k, kKc));

  double* cdata = c->data();
  const int64_t ldc = c->rows();

  // Same serial-inline threshold as the panel kernels: never spin up
  // workers for products too small to amortize a dispatch.
  const int threads =
      m * k * n < (1 << 16) ? 1 : std::min<int>(num_threads, 64);

  for (int64_t jc = 0; jc < n; jc += kNc) {
    const int64_t nc = std::min<int64_t>(kNc, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKc) {
      const int64_t kc = std::min<int64_t>(kKc, k - pc);
      PackB<NR>(b, ldb, trans_b, pc, jc, kc, nc, bpack);
      for (int64_t ic = 0; ic < m; ic += kMc) {
        const int64_t mc = std::min<int64_t>(kMc, m - ic);
        // A lower-only block whose topmost row still lies strictly above
        // the block's last column contributes nothing.
        if (lower_only && ic + mc - 1 < jc) continue;
        PackA<MR>(a, lda, trans_a, ic, pc, mc, kc, apack);
        const int64_t num_jr = (nc + NR - 1) / NR;
        // The packed panels are written above and only read below; the
        // pool's Schedule/Wait pair orders the accesses. Each jr range owns
        // a disjoint set of C columns, and every output element runs the
        // identical micro-kernel sequence no matter how ranges are split,
        // so the result is bit-identical for every thread count.
        ParallelForRanges(
            0, num_jr, threads, [&](int64_t jr0, int64_t jr1, int /*chunk*/) {
              alignas(64) double acc[MR * NR];
              for (int64_t jrb = jr0; jrb < jr1; ++jrb) {
                const int64_t jr = jrb * NR;
                const int64_t nr = std::min<int64_t>(NR, nc - jr);
                const double* bpanel = bpack + jrb * kc * NR;
                for (int64_t ir = 0; ir < mc; ir += MR) {
                  const int64_t mr = std::min<int64_t>(MR, mc - ir);
                  // Skip micro-tiles entirely above the diagonal; this is
                  // where SYRK halves the flops.
                  if (lower_only && ic + ir + mr - 1 < jc + jr) continue;
                  const double* apanel = apack + (ir / MR) * kc * MR;
                  Micro(kc, apanel, bpanel, acc);
                  double* ctile = cdata + (jc + jr) * ldc + ic + ir;
                  for (int64_t j = 0; j < nr; ++j) {
                    const int64_t lower_start =
                        lower_only
                            ? std::max<int64_t>(0, (jc + jr + j) - (ic + ir))
                            : 0;
                    for (int64_t i = lower_start; i < mr; ++i) {
                      ctile[j * ldc + i] += alpha * acc[j * MR + i];
                    }
                  }
                }
              }
            });
      }
    }
  }
}

using CoreFn = void (*)(bool, bool, double, const double*, int64_t,
                        const double*, int64_t, int64_t, int64_t, int64_t,
                        Matrix*, bool, int);

// Tier -> driver instantiation. `isa` arrives already resolved (never a
// pin sentinel) and already validated against cpuid by ResolveGemmIsa.
CoreFn CoreForIsa(CpuIsa isa) {
  switch (isa) {
    case CpuIsa::kGeneric:
      break;
#if defined(__x86_64__) || defined(__i386__)
    case CpuIsa::kAvx2:
      return &BlockedCoreT<kAvx2Mr, kAvx2Nr, &MicroAvx2>;
    case CpuIsa::kAvx512:
      return &BlockedCoreT<kAvx512Mr, kAvx512Nr, &MicroAvx512>;
#else
    default:
      break;
#endif
  }
  return &BlockedCoreT<kGenericMr, kGenericNr,
                       &MicroGeneric<kGenericMr, kGenericNr>>;
}

}  // namespace

void BlockedGemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
                 const Matrix& b, Matrix* c, int num_threads, CpuIsa isa) {
  const bool ta = trans_a != Trans::kNo;
  const bool tb = trans_b != Trans::kNo;
  const int64_t m = ta ? a.cols() : a.rows();
  const int64_t k = ta ? a.rows() : a.cols();
  const int64_t n = tb ? b.rows() : b.cols();
  CoreForIsa(isa)(ta, tb, alpha, a.data(), a.rows(), b.data(), b.rows(), m, k,
                  n, c, /*lower_only=*/false, num_threads);
}

void BlockedSyrkLower(Trans trans, double alpha, const Matrix& x, Matrix* c,
                      int num_threads, CpuIsa isa) {
  // trans = kTrans: C += alpha X^T X  (op(A) = X^T against op(B) = X).
  // trans = kNo:    C += alpha X X^T  (op(A) = X   against op(B) = X^T).
  const bool gram = trans != Trans::kNo;
  const int64_t nn = gram ? x.cols() : x.rows();
  const int64_t kk = gram ? x.rows() : x.cols();
  CoreForIsa(isa)(gram, !gram, alpha, x.data(), x.rows(), x.data(), x.rows(),
                  nn, kk, nn, c, /*lower_only=*/true, num_threads);
}

}  // namespace fedsc
