// BLIS-style cache-blocked packed GEMM engine (Goto & van de Geijn 2008;
// Van Zee & van de Geijn 2015). No external BLAS exists in this environment,
// so this is the high-performance backend behind Gemm/Syrk in linalg/blas.h:
//
//   for jc in n by nc:            // C column block        (fits L3 with B)
//     for pc in k by kc:          // rank-kc update        (result-affecting!)
//       pack op(B)[pc, jc] -> bpack   (kc x nc, NR-wide k-major micro-panels)
//       for ic in m by mc:        // A row block           (apack fits L2)
//         pack op(A)[ic, pc] -> apack (mc x kc, MR-wide k-major micro-panels)
//         for jr in nc by NR:     // parallelized: fixed contiguous ranges
//           for ir in mc by MR:
//             MR x NR register-tiled micro-kernel over apack/bpack
//
// Packing reads op(A)/op(B) element-wise, so all four transpose combinations
// (including TT) cost the same — no materialized transpose anywhere. The
// packed buffers live in a per-thread scratch arena (grow-once, 64-byte
// aligned, freed at thread exit), so steady-state calls never allocate.
//
// Determinism contract (DESIGN.md "Blocked GEMM & packing"): every output
// element accumulates its kc-block partial sums in ascending p order inside
// the micro-kernel and commits them to C in ascending pc order, a sequence
// that depends only on the shapes and the fixed kKc — never on num_threads,
// mc/nc, or which micro-tile (full or edge-padded) computes it. The jr loop
// is parallelized with ParallelForRanges over disjoint output columns, so
// results are bit-identical for every thread count. Switching between this
// engine and the legacy panel kernels IS result-affecting (different
// summation order); linalg/blas.h documents the cutoff and the
// GemmOptions::kernel pin.

#ifndef FEDSC_LINALG_GEMM_KERNEL_H_
#define FEDSC_LINALG_GEMM_KERNEL_H_

#include <cstdint>

#include "linalg/matrix.h"

namespace fedsc {

enum class Trans;  // defined in linalg/blas.h

// C += alpha * op(A) * op(B) through the blocked packed engine. The caller
// (the Gemm dispatcher in blas.cc) validates shapes and applies beta to C
// first. num_threads parallelizes the jr (output-column) loop bit-exactly.
void BlockedGemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
                 const Matrix& b, Matrix* c, int num_threads);

// Lower triangle of C += alpha * op(X) * op(X)^T (trans = kNo, the outer
// Gram X X^T) or alpha * op(X)^T * op(X) (trans = kTrans, the Gram X^T X),
// through the same engine with strictly-upper micro-tiles skipped — the
// flops halving behind Syrk. Entries above the diagonal are left untouched;
// the Syrk dispatcher in blas.cc mirrors them afterwards.
void BlockedSyrkLower(Trans trans, double alpha, const Matrix& x, Matrix* c,
                      int num_threads);

namespace internal_gemm {
// Tunables, exposed for tests/benchmarks. kKc is the only result-affecting
// one (it sets the partial-sum commit boundaries); kMr/kNr/kMc/kNc only move
// work between cache levels and threads.
#if defined(__AVX512F__)
inline constexpr int kMr = 16;  // micro-tile rows (vector axis)
#else
inline constexpr int kMr = 8;
#endif
inline constexpr int kNr = 6;      // micro-tile columns (broadcast axis)
inline constexpr int64_t kMc = 96;   // A block rows   (apack ~= mc*kc in L2)
inline constexpr int64_t kKc = 256;  // rank-kc update depth; result-affecting
inline constexpr int64_t kNc = 1024; // B block columns (bpack streams from L3)
}  // namespace internal_gemm

}  // namespace fedsc

#endif  // FEDSC_LINALG_GEMM_KERNEL_H_
