// BLIS-style cache-blocked packed GEMM engine (Goto & van de Geijn 2008;
// Van Zee & van de Geijn 2015). No external BLAS exists in this environment,
// so this is the high-performance backend behind Gemm/Syrk in linalg/blas.h:
//
//   for jc in n by nc:            // C column block        (fits L3 with B)
//     for pc in k by kc:          // rank-kc update        (result-affecting!)
//       pack op(B)[pc, jc] -> bpack   (kc x nc, NR-wide k-major micro-panels)
//       for ic in m by mc:        // A row block           (apack fits L2)
//         pack op(A)[ic, pc] -> apack (mc x kc, MR-wide k-major micro-panels)
//         for jr in nc by NR:     // parallelized: fixed contiguous ranges
//           for ir in mc by MR:
//             MR x NR register-tiled micro-kernel over apack/bpack
//
// Packing reads op(A)/op(B) element-wise, so all four transpose combinations
// (including TT) cost the same — no materialized transpose anywhere. The
// packed buffers live in a per-thread scratch arena (grow-once, 64-byte
// aligned, freed at thread exit), so steady-state calls never allocate.
//
// Three micro-kernel tiers ship in one binary and one is selected at runtime
// by cpuid (common/isa.h): a portable auto-vectorized generic kernel (the
// pre-dispatch code, unchanged — CpuIsa::kGeneric reproduces its bits
// exactly), an AVX2+FMA 8x6 kernel, and an AVX-512 24x8 kernel. The SIMD
// tiers software-prefetch the packed A/B micro-panels kPrefetchAhead
// k-steps ahead of the FMA stream; the generic tier stays byte-for-byte
// the pre-dispatch kernel (no prefetch) so it remains an honest
// reproduction and comparison baseline. The tiers differ in tile shape and
// instruction selection; every tier accumulates one partial sum per output
// element in ascending p order, so per tier results are bit-identical for
// every thread count, and across tiers they agree to the ulp policy in
// DESIGN.md "Runtime ISA dispatch & batched factorizations" (exactly equal
// when the generic tier is compiled with FMA contraction, as Release builds
// here are).
//
// Determinism contract (DESIGN.md "Blocked GEMM & packing"): every output
// element accumulates its kc-block partial sums in ascending p order inside
// the micro-kernel and commits them to C in ascending pc order, a sequence
// that depends only on the shapes and the fixed kKc — never on num_threads,
// mc/nc, or which micro-tile (full or edge-padded) computes it. The jr loop
// is parallelized with ParallelForRanges over disjoint output columns, so
// results are bit-identical for every thread count. Switching between this
// engine and the legacy panel kernels IS result-affecting (different
// summation order); linalg/blas.h documents the cutoff, the
// GemmOptions::kernel pin, and the GemmOptions::isa pin.

#ifndef FEDSC_LINALG_GEMM_KERNEL_H_
#define FEDSC_LINALG_GEMM_KERNEL_H_

#include <cstdint>

#include "common/isa.h"
#include "linalg/matrix.h"

namespace fedsc {

enum class Trans;  // defined in linalg/blas.h

// C += alpha * op(A) * op(B) through the blocked packed engine. The caller
// (the Gemm dispatcher in blas.cc) validates shapes, applies beta to C
// first, and resolves the micro-kernel tier (ResolveGemmIsa in blas.h) —
// `isa` here is the already-resolved executable tier. num_threads
// parallelizes the jr (output-column) loop bit-exactly.
void BlockedGemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
                 const Matrix& b, Matrix* c, int num_threads,
                 CpuIsa isa = CpuIsa::kGeneric);

// Lower triangle of C += alpha * op(X) * op(X)^T (trans = kNo, the outer
// Gram X X^T) or alpha * op(X)^T * op(X) (trans = kTrans, the Gram X^T X),
// through the same engine with strictly-upper micro-tiles skipped — the
// flops halving behind Syrk. Entries above the diagonal are left untouched;
// the Syrk dispatcher in blas.cc mirrors them afterwards.
void BlockedSyrkLower(Trans trans, double alpha, const Matrix& x, Matrix* c,
                      int num_threads, CpuIsa isa = CpuIsa::kGeneric);

namespace internal_gemm {
// Tunables, exposed for tests/benchmarks. kKc is the only result-affecting
// one (it sets the partial-sum commit boundaries); the per-tier MR/NR and
// kMc/kNc only move work between cache levels, vector registers, and
// threads.
//
// The generic tier keeps the pre-dispatch tile shape (16 rows when compiled
// with AVX-512 available, 8 otherwise) so pinning CpuIsa::kGeneric
// reproduces the pre-dispatch engine's code paths exactly.
#if defined(__AVX512F__)
inline constexpr int kGenericMr = 16;
#else
inline constexpr int kGenericMr = 8;
#endif
inline constexpr int kGenericNr = 6;
// AVX2+FMA: 12 ymm accumulators + 2 A loads + 1 broadcast fits 16 regs.
inline constexpr int kAvx2Mr = 8;
inline constexpr int kAvx2Nr = 6;
// AVX-512: 24 zmm accumulators (3 vectors x 8 columns) + 3 A loads + 1
// broadcast fits 32 regs; the 3:8 tile keeps the FMA ports saturated while
// halving the per-FMA load traffic of the generic 16x6 shape.
inline constexpr int kAvx512Mr = 24;
inline constexpr int kAvx512Nr = 8;
// Compatibility aliases (the generic tier's shape, as before dispatch).
inline constexpr int kMr = kGenericMr;
inline constexpr int kNr = kGenericNr;
// How many k-steps ahead the SIMD micro-kernels prefetch the packed A and
// B micro-panels (distance in elements: kPrefetchAhead * MR doubles for A,
// kPrefetchAhead * NR for B — one to three cache lines, tuned on the
// Ice-Lake-class baseline host). The generic tier does not prefetch: it is
// the frozen pre-dispatch reference kernel.
inline constexpr int kPrefetchAhead = 4;
inline constexpr int64_t kMc = 96;   // A block rows   (apack ~= mc*kc in L2)
inline constexpr int64_t kKc = 256;  // rank-kc update depth; result-affecting
inline constexpr int64_t kNc = 1024; // B block columns (bpack streams from L3)
}  // namespace internal_gemm

}  // namespace fedsc

#endif  // FEDSC_LINALG_GEMM_KERNEL_H_
