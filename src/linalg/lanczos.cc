#include "linalg/lanczos.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "common/rng.h"
#include "linalg/blas.h"

namespace fedsc {

namespace {

// Removes the components of v along the first `count` columns of basis
// (two passes of classical Gram-Schmidt).
void Reorthogonalize(const Matrix& basis, int64_t count, double* v) {
  FEDSC_METRIC_COUNTER("linalg.lanczos.reorthogonalizations").Increment();
  const int64_t n = basis.rows();
  for (int pass = 0; pass < 2; ++pass) {
    for (int64_t j = 0; j < count; ++j) {
      const double* q = basis.ColData(j);
      const double proj = Dot(q, v, n);
      Axpy(-proj, q, v, n);
    }
  }
}

// A random unit vector orthogonal to the first `count` basis columns, for
// restarting after breakdown (an invariant subspace was exhausted).
bool RandomOrthogonalUnit(const Matrix& basis, int64_t count, Rng* rng,
                          double* v) {
  const int64_t n = basis.rows();
  for (int attempt = 0; attempt < 8; ++attempt) {
    Vector draw = rng->UnitSphere(n);
    std::copy(draw.begin(), draw.end(), v);
    Reorthogonalize(basis, count, v);
    const double norm = Norm2(v, n);
    if (norm > 1e-8) {
      Scal(1.0 / norm, v, n);
      return true;
    }
  }
  return false;
}

}  // namespace

Result<EigResult> LanczosLargest(const SymmetricOperator& apply, int64_t dim,
                                 int64_t k, const LanczosOptions& options) {
  if (dim <= 0) return Status::InvalidArgument("Lanczos dimension must be > 0");
  if (k <= 0 || k > dim) {
    return Status::InvalidArgument("Lanczos k must be in [1, dim]");
  }
  const int64_t max_steps = std::min(dim, options.max_iterations);
  if (max_steps < k) {
    return Status::InvalidArgument("max_iterations below requested k");
  }
  FEDSC_METRIC_COUNTER("linalg.lanczos.calls").Increment();

  Rng rng(options.seed);
  Matrix basis(dim, max_steps);  // Lanczos vectors q_0 ... q_{j-1}
  Vector alpha;                  // tridiagonal diagonal
  Vector beta;                   // tridiagonal subdiagonal (beta[j] couples
                                 // q_j and q_{j+1})
  {
    Vector q0 = rng.UnitSphere(dim);
    basis.SetCol(0, q0);
  }

  Vector w(static_cast<size_t>(dim), 0.0);
  EigResult tri_eig;
  int64_t steps = 0;
  bool exhausted = false;
  // Degenerate eigenvalues are invisible to a single Krylov sequence: it
  // converges to one copy per distinct eigenvalue. After the wanted pairs
  // converge we therefore force a deflation restart (a fresh random vector
  // orthogonal to the whole basis, coupled with beta = 0) and only stop once
  // a restart leaves the top-k Ritz values unchanged.
  bool force_restart = false;
  int confirmations = 0;
  int64_t last_restart_step = 0;
  Vector confirmed_values;

  while (steps < max_steps) {
    const int64_t j = steps;
    apply(basis.ColData(j), w.data());
    const double a = Dot(basis.ColData(j), w.data(), dim);
    alpha.push_back(a);
    ++steps;

    // Residual w := A q_j - alpha_j q_j - beta_{j-1} q_{j-1}, then full
    // reorthogonalization against every Lanczos vector so far (the classic
    // cure for loss of orthogonality in finite precision).
    Axpy(-a, basis.ColData(j), w.data(), dim);
    if (j > 0) {
      Axpy(-beta[static_cast<size_t>(j - 1)], basis.ColData(j - 1), w.data(),
           dim);
    }
    Reorthogonalize(basis, j + 1, w.data());
    double b = Norm2(w.data(), dim);

    const bool can_extend = steps < max_steps;
    if (can_extend) {
      if (b > 1e-12 && !force_restart) {
        Scal(1.0 / b, w.data(), dim);
        basis.SetCol(steps, w.data());
        beta.push_back(b);
      } else if (steps >= dim ||
                 !RandomOrthogonalUnit(basis, steps, &rng, w.data())) {
        exhausted = true;
      } else {
        // Breakdown (or a forced deflation restart): continue the recurrence
        // in a fresh direction with a zero coupling coefficient.
        basis.SetCol(steps, w.data());
        beta.push_back(0.0);
        force_restart = false;
        last_restart_step = steps;
        FEDSC_METRIC_COUNTER("linalg.lanczos.restarts").Increment();
      }
    }

    // Convergence test every few steps once we have at least k Ritz values;
    // a freshly restarted block needs a few steps before its Ritz values
    // carry meaningful residual bounds.
    const bool check_now =
        steps >= k &&
        (exhausted || !can_extend ||
         (steps % 5 == 0 && steps - last_restart_step >= 3));
    if (!check_now) continue;

    Matrix tri(steps, steps);
    for (int64_t i = 0; i < steps; ++i) {
      tri(i, i) = alpha[static_cast<size_t>(i)];
      if (i + 1 < steps) {
        tri(i + 1, i) = beta[static_cast<size_t>(i)];
        tri(i, i + 1) = beta[static_cast<size_t>(i)];
      }
    }
    FEDSC_ASSIGN_OR_RETURN(tri_eig, SymmetricEigen(tri));

    if (exhausted || steps == dim) break;
    // Residual bound for Ritz pair i: |beta_last * s_{last, i}|.
    const double last_beta =
        static_cast<int64_t>(beta.size()) >= steps
            ? beta[static_cast<size_t>(steps - 1)]
            : 0.0;
    const double scale =
        std::max(std::fabs(tri_eig.values.front()),
                 std::fabs(tri_eig.values.back()));
    bool all_converged = true;
    for (int64_t i = 0; i < k; ++i) {
      const int64_t idx = steps - 1 - i;  // largest values are at the end
      const double resid =
          std::fabs(last_beta * tri_eig.vectors(steps - 1, idx));
      if (resid > options.tol * std::max(scale, 1e-30)) {
        all_converged = false;
        break;
      }
    }
    if (all_converged) {
      // Compare the converged top-k against the last confirmation round.
      Vector top(static_cast<size_t>(k));
      for (int64_t i = 0; i < k; ++i) {
        top[static_cast<size_t>(i)] =
            tri_eig.values[static_cast<size_t>(steps - 1 - i)];
      }
      bool stable = confirmed_values.size() == top.size();
      if (stable) {
        for (size_t i = 0; i < top.size(); ++i) {
          if (std::fabs(top[i] - confirmed_values[i]) >
              options.tol * std::max(scale, 1e-30) * 100.0) {
            stable = false;
            break;
          }
        }
      }
      if (stable || confirmations >= std::max<int64_t>(3, k)) break;
      confirmed_values = std::move(top);
      ++confirmations;
      force_restart = true;  // deflate: hunt for degenerate copies
    }
    if (!can_extend) break;
  }

  FEDSC_METRIC_COUNTER("linalg.lanczos.iterations").Add(steps);
  if (tri_eig.values.empty()) {
    return Status::Internal("Lanczos produced no Ritz values");
  }

  // Assemble the k largest Ritz pairs: values descending, vectors = Q * s.
  const int64_t m = static_cast<int64_t>(tri_eig.values.size());
  const int64_t take = std::min(k, m);
  EigResult result;
  result.values.resize(static_cast<size_t>(take));
  result.vectors = Matrix(dim, take);
  Matrix q = basis.ColRange(0, m);
  for (int64_t i = 0; i < take; ++i) {
    const int64_t idx = m - 1 - i;
    result.values[static_cast<size_t>(i)] =
        tri_eig.values[static_cast<size_t>(idx)];
    Gemv(Trans::kNo, 1.0, q, tri_eig.vectors.ColData(idx), 0.0,
         result.vectors.ColData(i));
  }
  return result;
}

Result<EigResult> SubspaceIterationLargest(
    const SymmetricOperator& apply, int64_t dim, int64_t k,
    const SubspaceIterationOptions& options) {
  if (dim <= 0) {
    return Status::InvalidArgument("subspace iteration dimension must be > 0");
  }
  if (k <= 0 || k > dim) {
    return Status::InvalidArgument("subspace iteration k must be in [1, dim]");
  }
  FEDSC_METRIC_COUNTER("linalg.subspace_iteration.calls").Increment();

  Rng rng(options.seed);
  Matrix q(dim, k);
  for (int64_t j = 0; j < k; ++j) {
    const Vector column = rng.UnitSphere(dim);
    q.SetCol(j, column);
  }

  // Orthonormalizes the columns of q in place (MGS with one
  // re-orthogonalization pass); rank-deficient columns are replaced by fresh
  // random directions orthogonal to the earlier ones.
  auto orthonormalize = [&](Matrix* m) {
    for (int64_t j = 0; j < m->cols(); ++j) {
      double* col = m->ColData(j);
      for (int pass = 0; pass < 2; ++pass) {
        for (int64_t p = 0; p < j; ++p) {
          const double proj = Dot(m->ColData(p), col, dim);
          Axpy(-proj, m->ColData(p), col, dim);
        }
      }
      double norm = Norm2(col, dim);
      int guard = 0;
      while (norm <= 1e-10 && guard++ < 8) {
        const Vector fresh = rng.UnitSphere(dim);
        std::copy(fresh.begin(), fresh.end(), col);
        for (int pass = 0; pass < 2; ++pass) {
          for (int64_t p = 0; p < j; ++p) {
            const double proj = Dot(m->ColData(p), col, dim);
            Axpy(-proj, m->ColData(p), col, dim);
          }
        }
        norm = Norm2(col, dim);
      }
      if (norm <= 1e-10) continue;  // dim exhausted; leave as-is
      Scal(1.0 / norm, col, dim);
    }
  };
  orthonormalize(&q);

  Matrix y(dim, k);
  auto apply_shifted = [&](const Matrix& in, Matrix* out) {
    for (int64_t j = 0; j < k; ++j) {
      apply(in.ColData(j), out->ColData(j));
      if (options.shift != 0.0) {
        Axpy(options.shift, in.ColData(j), out->ColData(j), dim);
      }
    }
  };

  Vector previous_ritz;
  EigResult small_eig;
  for (int64_t iter = 0; iter < options.max_iterations; ++iter) {
    FEDSC_METRIC_COUNTER("linalg.subspace_iteration.iterations").Increment();
    apply_shifted(q, &y);

    const bool check_now = iter % 5 == 4 || iter + 1 == options.max_iterations;
    if (check_now) {
      // Ritz values from the projected operator B = Q^T (A Q). Q and A Q are
      // different matrices, so this is a genuine Gemm (blocked above the
      // cutoff), not a Syrk — B is only symmetric up to roundoff, hence the
      // explicit symmetrization below.
      const Matrix b = MatMulTN(q, y);
      Matrix b_sym = b;
      b_sym += b.Transposed();
      b_sym *= 0.5;
      FEDSC_ASSIGN_OR_RETURN(small_eig, SymmetricEigen(b_sym));
      double scale = 1e-30;
      for (double v : small_eig.values) scale = std::max(scale, std::fabs(v));
      bool converged = previous_ritz.size() == small_eig.values.size();
      if (converged) {
        for (size_t i = 0; i < previous_ritz.size(); ++i) {
          if (std::fabs(previous_ritz[i] - small_eig.values[i]) >
              options.tol * scale) {
            converged = false;
            break;
          }
        }
      }
      previous_ritz = small_eig.values;
      if (converged) break;
    }

    std::swap(q, y);
    orthonormalize(&q);
  }

  // Final Rayleigh-Ritz: rotate the basis into eigenvector estimates.
  apply_shifted(q, &y);
  Matrix b = MatMulTN(q, y);
  {
    Matrix bt = b.Transposed();
    b += bt;
    b *= 0.5;
  }
  FEDSC_ASSIGN_OR_RETURN(small_eig, SymmetricEigen(b));

  EigResult result;
  result.values.resize(static_cast<size_t>(k));
  result.vectors = Matrix(dim, k);
  for (int64_t i = 0; i < k; ++i) {
    const int64_t idx = k - 1 - i;  // descending
    result.values[static_cast<size_t>(i)] =
        small_eig.values[static_cast<size_t>(idx)] - options.shift;
    Gemv(Trans::kNo, 1.0, q, small_eig.vectors.ColData(idx), 0.0,
         result.vectors.ColData(i));
  }
  return result;
}

}  // namespace fedsc
