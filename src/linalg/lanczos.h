// Lanczos iteration with full reorthogonalization for the extreme eigenpairs
// of a symmetric linear operator. Spectral clustering of large sparse
// affinity graphs uses this to avoid the O(N^3) dense eigensolver.

#ifndef FEDSC_LINALG_LANCZOS_H_
#define FEDSC_LINALG_LANCZOS_H_

#include <cstdint>
#include <functional>

#include "common/result.h"
#include "linalg/eig.h"
#include "linalg/matrix.h"

namespace fedsc {

// y = A x for a symmetric A of dimension `dim` (y and x never alias).
using SymmetricOperator = std::function<void(const double* x, double* y)>;

struct LanczosOptions {
  // Hard cap on Krylov dimension (also capped at the operator dimension).
  int64_t max_iterations = 400;
  // A Ritz pair converges when its residual bound drops below
  // tol * |largest Ritz value|.
  double tol = 1e-9;
  uint64_t seed = 0x5eed'1a2b3c4dULL;
};

// The k algebraically largest eigenpairs, values descending. Runs Krylov
// steps until the k wanted Ritz pairs converge (or the basis saturates the
// space, in which case the result is exact).
Result<EigResult> LanczosLargest(const SymmetricOperator& apply, int64_t dim,
                                 int64_t k, const LanczosOptions& options = {});

struct SubspaceIterationOptions {
  int64_t max_iterations = 500;
  // Stop when no Ritz value moved more than tol * max|Ritz| between checks.
  double tol = 1e-8;
  // Added to the operator (apply' = apply + shift * I) so the wanted
  // algebraically-largest eigenvalues dominate in magnitude. For a
  // normalized adjacency (spectrum in [-1, 1]) use shift = 1.
  double shift = 0.0;
  uint64_t seed = 0x5eed'0f17ULL;
};

// The k algebraically largest eigenpairs by orthogonal (subspace) iteration.
// Unlike single-vector Lanczos, this converges to the full invariant
// subspace even when the top eigenvalue is highly degenerate — exactly the
// situation for the affinity graph of L well-separated clusters (eigenvalue
// 1 with multiplicity L) — so it is the backend spectral clustering uses for
// large sparse graphs.
Result<EigResult> SubspaceIterationLargest(
    const SymmetricOperator& apply, int64_t dim, int64_t k,
    const SubspaceIterationOptions& options = {});

}  // namespace fedsc

#endif  // FEDSC_LINALG_LANCZOS_H_
