#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

namespace fedsc {

Matrix::Matrix(int64_t rows, int64_t cols) : rows_(rows), cols_(cols) {
  FEDSC_CHECK(rows >= 0 && cols >= 0)
      << "bad matrix shape " << rows << "x" << cols;
  data_.assign(static_cast<size_t>(rows * cols), 0.0);
}

Matrix Matrix::Identity(int64_t n) {
  Matrix eye(n, n);
  for (int64_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

Matrix Matrix::FromColumn(const Vector& column) {
  Matrix m(static_cast<int64_t>(column.size()), 1);
  std::copy(column.begin(), column.end(), m.data());
  return m;
}

Matrix Matrix::FromColumns(const std::vector<Vector>& columns) {
  if (columns.empty()) return Matrix();
  const int64_t rows = static_cast<int64_t>(columns[0].size());
  Matrix m(rows, static_cast<int64_t>(columns.size()));
  for (size_t j = 0; j < columns.size(); ++j) {
    FEDSC_CHECK(static_cast<int64_t>(columns[j].size()) == rows)
        << "ragged column " << j;
    m.SetCol(static_cast<int64_t>(j), columns[j]);
  }
  return m;
}

Vector Matrix::Col(int64_t j) const {
  const double* src = ColData(j);
  return Vector(src, src + rows_);
}

void Matrix::SetCol(int64_t j, const Vector& values) {
  FEDSC_CHECK(static_cast<int64_t>(values.size()) == rows_)
      << "column length " << values.size() << " != rows " << rows_;
  SetCol(j, values.data());
}

void Matrix::SetCol(int64_t j, const double* values) {
  std::memcpy(ColData(j), values, static_cast<size_t>(rows_) * sizeof(double));
}

Matrix Matrix::GatherCols(const std::vector<int64_t>& indices) const {
  Matrix out(rows_, static_cast<int64_t>(indices.size()));
  for (size_t j = 0; j < indices.size(); ++j) {
    const int64_t src = indices[j];
    FEDSC_CHECK(0 <= src && src < cols_) << "column index " << src;
    out.SetCol(static_cast<int64_t>(j), ColData(src));
  }
  return out;
}

Matrix Matrix::ColRange(int64_t begin, int64_t end) const {
  FEDSC_CHECK(0 <= begin && begin <= end && end <= cols_)
      << "bad column range [" << begin << ", " << end << ")";
  Matrix out(rows_, end - begin);
  std::memcpy(out.data(), data() + begin * rows_,
              static_cast<size_t>((end - begin) * rows_) * sizeof(double));
  return out;
}

Matrix Matrix::RowRange(int64_t begin, int64_t end) const {
  FEDSC_CHECK(0 <= begin && begin <= end && end <= rows_)
      << "bad row range [" << begin << ", " << end << ")";
  Matrix out(end - begin, cols_);
  for (int64_t j = 0; j < cols_; ++j) {
    std::memcpy(out.ColData(j), ColData(j) + begin,
                static_cast<size_t>(end - begin) * sizeof(double));
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  // Block the transpose so both sides stay cache-resident.
  constexpr int64_t kBlock = 32;
  for (int64_t jb = 0; jb < cols_; jb += kBlock) {
    const int64_t jend = std::min(jb + kBlock, cols_);
    for (int64_t ib = 0; ib < rows_; ib += kBlock) {
      const int64_t iend = std::min(ib + kBlock, rows_);
      for (int64_t j = jb; j < jend; ++j) {
        for (int64_t i = ib; i < iend; ++i) {
          out(j, i) = (*this)(i, j);
        }
      }
    }
  }
  return out;
}

int64_t Matrix::NormalizeColumns(double eps) {
  int64_t normalized = 0;
  for (int64_t j = 0; j < cols_; ++j) {
    double* col = ColData(j);
    double norm = 0.0;
    for (int64_t i = 0; i < rows_; ++i) norm += col[i] * col[i];
    norm = std::sqrt(norm);
    if (norm > eps) {
      const double inv = 1.0 / norm;
      for (int64_t i = 0; i < rows_; ++i) col[i] *= inv;
      ++normalized;
    }
  }
  return normalized;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  FEDSC_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  FEDSC_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::ostringstream out;
  out << rows_ << "x" << cols_ << " [";
  const int64_t show_rows = std::min<int64_t>(rows_, max_rows);
  const int64_t show_cols = std::min<int64_t>(cols_, max_cols);
  for (int64_t i = 0; i < show_rows; ++i) {
    out << (i == 0 ? "" : "; ");
    for (int64_t j = 0; j < show_cols; ++j) {
      out << (j == 0 ? "" : " ") << (*this)(i, j);
    }
    if (show_cols < cols_) out << " ...";
  }
  if (show_rows < rows_) out << "; ...";
  out << "]";
  return out.str();
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix lhs, double scalar) { return lhs *= scalar; }
Matrix operator*(double scalar, Matrix rhs) { return rhs *= scalar; }

bool AllClose(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int64_t j = 0; j < a.cols(); ++j) {
    for (int64_t i = 0; i < a.rows(); ++i) {
      if (std::fabs(a(i, j) - b(i, j)) > tol) return false;
    }
  }
  return true;
}

}  // namespace fedsc
