// Dense column-major matrix of doubles.
//
// Data points are stored as columns throughout the library (X in R^{n x N},
// matching the paper's notation), so per-point access touches contiguous
// memory. Vectors are plain std::vector<double>; the kernels that operate on
// them live in linalg/blas.h.

#ifndef FEDSC_LINALG_MATRIX_H_
#define FEDSC_LINALG_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace fedsc {

using Vector = std::vector<double>;

class Matrix {
 public:
  // An empty 0x0 matrix.
  Matrix() = default;

  // Zero-initialized rows x cols matrix.
  Matrix(int64_t rows, int64_t cols);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  static Matrix Identity(int64_t n);

  // Builds an n x 1 column matrix from a vector.
  static Matrix FromColumn(const Vector& column);

  // Builds a matrix whose j-th column is columns[j]. All columns must share
  // one length; an empty list yields a 0x0 matrix.
  static Matrix FromColumns(const std::vector<Vector>& columns);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  double& operator()(int64_t i, int64_t j) {
    FEDSC_DCHECK(0 <= i && i < rows_ && 0 <= j && j < cols_);
    return data_[static_cast<size_t>(j * rows_ + i)];
  }
  double operator()(int64_t i, int64_t j) const {
    FEDSC_DCHECK(0 <= i && i < rows_ && 0 <= j && j < cols_);
    return data_[static_cast<size_t>(j * rows_ + i)];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  // Pointer to the first element of column j (contiguous, length rows()).
  double* ColData(int64_t j) {
    FEDSC_DCHECK(0 <= j && j < cols_);
    return data_.data() + j * rows_;
  }
  const double* ColData(int64_t j) const {
    FEDSC_DCHECK(0 <= j && j < cols_);
    return data_.data() + j * rows_;
  }

  Vector Col(int64_t j) const;
  void SetCol(int64_t j, const Vector& values);
  void SetCol(int64_t j, const double* values);

  // Gathers the listed columns (duplicates allowed) into a new matrix.
  Matrix GatherCols(const std::vector<int64_t>& indices) const;

  // Columns [begin, end).
  Matrix ColRange(int64_t begin, int64_t end) const;

  // Rows [begin, end).
  Matrix RowRange(int64_t begin, int64_t end) const;

  Matrix Transposed() const;

  // Scales every column to unit l2 norm; columns with norm <= eps are left
  // untouched. Returns the number of columns normalized.
  int64_t NormalizeColumns(double eps = 1e-300);

  double FrobeniusNorm() const;
  double MaxAbs() const;

  void Fill(double value);

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  // Human-readable dump for debugging ("3x2 [ ... ]").
  std::string ToString(int max_rows = 8, int max_cols = 8) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix lhs, double scalar);
Matrix operator*(double scalar, Matrix rhs);

// True if the two matrices have equal shape and max|a-b| <= tol.
bool AllClose(const Matrix& a, const Matrix& b, double tol);

}  // namespace fedsc

#endif  // FEDSC_LINALG_MATRIX_H_
