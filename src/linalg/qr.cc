#include "linalg/qr.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "linalg/blas.h"

namespace fedsc {

namespace internal_qr {

double GenerateReflector(double* col, int64_t j, int64_t m) {
  const double alpha = col[j];
  const double xnorm = Norm2(col + j + 1, m - j - 1);
  if (xnorm == 0.0 && alpha >= 0.0) return 0.0;
  const double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
  if (beta == 0.0) return 0.0;
  const double t = (beta - alpha) / beta;
  const double inv = 1.0 / (alpha - beta);
  for (int64_t i = j + 1; i < m; ++i) col[i] *= inv;
  col[j] = beta;
  return t;
}

}  // namespace internal_qr

namespace {

using internal_qr::GenerateReflector;

// target := (I - t v v^T) target on rows [j, m), v = [1; col[j+1..m)].
void ApplyReflector(const double* col, double t, double* target, int64_t j,
                    int64_t m) {
  double w = target[j] + Dot(col + j + 1, target + j + 1, m - j - 1);
  w *= t;
  target[j] -= w;
  Axpy(-w, col + j + 1, target + j + 1, m - j - 1);
}

bool UseBlockedQr(QrVariant variant, int64_t m, int64_t n) {
  switch (variant) {
    case QrVariant::kUnblocked:
      return false;
    case QrVariant::kBlocked:
      return true;
    case QrVariant::kAuto:
      break;
  }
  return n >= kBlockedQrMinCols && m * n >= kBlockedQrCutoff;
}

// The pre-blocked path, unchanged: factor in place, then accumulate thin Q
// by applying reflectors last to first.
QrResult UnblockedQr(const Matrix& a) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  const int64_t k = std::min(m, n);

  Matrix work = a;
  Vector tau(static_cast<size_t>(k), 0.0);
  for (int64_t j = 0; j < k; ++j) {
    double* col = work.ColData(j);
    const double t = GenerateReflector(col, j, m);
    tau[static_cast<size_t>(j)] = t;
    if (t == 0.0) continue;
    for (int64_t c = j + 1; c < n; ++c) {
      ApplyReflector(col, t, work.ColData(c), j, m);
    }
  }

  QrResult result;
  result.r = Matrix(k, n);
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t i = 0; i <= std::min(j, k - 1); ++i) {
      result.r(i, j) = work(i, j);
    }
  }

  result.q = Matrix(m, k);
  for (int64_t j = 0; j < k; ++j) result.q(j, j) = 1.0;
  for (int64_t j = k - 1; j >= 0; --j) {
    const double t = tau[static_cast<size_t>(j)];
    if (t == 0.0) continue;
    const double* v = work.ColData(j);
    for (int64_t c = 0; c < k; ++c) {
      ApplyReflector(v, t, result.q.ColData(c), j, m);
    }
  }
  return result;
}

// Explicit (m - j0) x b copy of the panel's reflectors: column jj holds
// reflector j0 + jj with its unit diagonal entry written out and zeros
// above, so the compact-WY products below are plain Gemm calls.
Matrix PanelV(const Matrix& work, int64_t j0, int64_t j1, int64_t m) {
  const int64_t b = j1 - j0;
  Matrix v(m - j0, b);
  for (int64_t jj = 0; jj < b; ++jj) {
    const double* col = work.ColData(j0 + jj);
    v(jj, jj) = 1.0;
    for (int64_t i = j0 + jj + 1; i < m; ++i) v(i - j0, jj) = col[i];
  }
  return v;
}

// Compact-WY blocked QR: panels factor with the identical scalar reflector
// kernel, then the trailing matrix and the thin Q ride the packed Gemm
// engine through ApplyBlockReflector.
QrResult BlockedQr(const Matrix& a, const QrOptions& options) {
  using internal_qr::kQrPanelWidth;
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  const int64_t k = std::min(m, n);
  const int nt = options.num_threads;

  Matrix work = a;
  Vector tau(static_cast<size_t>(k), 0.0);
  for (int64_t j0 = 0; j0 < k; j0 += kQrPanelWidth) {
    const int64_t j1 = std::min(j0 + kQrPanelWidth, k);
    // Panel factorization: reflectors apply only to the remaining panel
    // columns here; trailing columns wait for the blocked update.
    for (int64_t j = j0; j < j1; ++j) {
      double* col = work.ColData(j);
      const double t = GenerateReflector(col, j, m);
      tau[static_cast<size_t>(j)] = t;
      if (t == 0.0) continue;
      for (int64_t c = j + 1; c < j1; ++c) {
        ApplyReflector(col, t, work.ColData(c), j, m);
      }
    }
    if (j1 >= n) continue;
    const Matrix v = PanelV(work, j0, j1, m);
    const Matrix t = internal_qr::BuildCompactWyT(v, tau.data() + j0);
    // Trailing update C := (H_{j1-1} ... H_{j0}) C = (I - V T V^T)^T C on
    // rows [j0, m) of columns [j1, n).
    Matrix trailing(m - j0, n - j1);
    for (int64_t c = j1; c < n; ++c) {
      const double* src = work.ColData(c);
      double* dst = trailing.ColData(c - j1);
      for (int64_t i = j0; i < m; ++i) dst[i - j0] = src[i];
    }
    internal_qr::ApplyBlockReflector(v, t, /*transpose=*/true, &trailing, nt);
    for (int64_t c = j1; c < n; ++c) {
      const double* src = trailing.ColData(c - j1);
      double* dst = work.ColData(c);
      for (int64_t i = j0; i < m; ++i) dst[i] = src[i - j0];
    }
  }

  QrResult result;
  result.r = Matrix(k, n);
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t i = 0; i <= std::min(j, k - 1); ++i) {
      result.r(i, j) = work(i, j);
    }
  }

  // Thin Q = H_0 ... H_{k-1} I(m, k), block reflectors applied last panel to
  // first. When panel [j0, j1) is applied, columns < j0 of the running Q are
  // still unit vectors with support above row j0, so only the trailing
  // [j0, m) x [j0, k) corner needs updating.
  result.q = Matrix(m, k);
  for (int64_t j = 0; j < k; ++j) result.q(j, j) = 1.0;
  const int64_t last_panel = ((k - 1) / kQrPanelWidth) * kQrPanelWidth;
  for (int64_t j0 = last_panel; j0 >= 0; j0 -= kQrPanelWidth) {
    const int64_t j1 = std::min(j0 + kQrPanelWidth, k);
    const Matrix v = PanelV(work, j0, j1, m);
    const Matrix t = internal_qr::BuildCompactWyT(v, tau.data() + j0);
    Matrix corner(m - j0, k - j0);
    for (int64_t c = j0; c < k; ++c) {
      const double* src = result.q.ColData(c);
      double* dst = corner.ColData(c - j0);
      for (int64_t i = j0; i < m; ++i) dst[i - j0] = src[i];
    }
    internal_qr::ApplyBlockReflector(v, t, /*transpose=*/false, &corner, nt);
    for (int64_t c = j0; c < k; ++c) {
      const double* src = corner.ColData(c - j0);
      double* dst = result.q.ColData(c);
      for (int64_t i = j0; i < m; ++i) dst[i] = src[i - j0];
    }
  }
  return result;
}

}  // namespace

namespace internal_qr {

Matrix BuildCompactWyT(const Matrix& v, const double* taus) {
  const int64_t mv = v.rows();
  const int64_t b = v.cols();
  Matrix t(b, b);
  Vector scratch(static_cast<size_t>(b), 0.0);
  for (int64_t j = 0; j < b; ++j) {
    const double tj = taus[j];
    t(j, j) = tj;
    if (j == 0 || tj == 0.0) continue;
    // scratch(0:j) = V(:, 0:j)^T v_j, then T(0:j, j) = -tau_j T(0:j, 0:j)
    // scratch — the standard forward compact-WY recurrence.
    for (int64_t c = 0; c < j; ++c) {
      scratch[static_cast<size_t>(c)] = Dot(v.ColData(c), v.ColData(j), mv);
    }
    for (int64_t i = 0; i < j; ++i) {
      double sum = 0.0;
      for (int64_t c = i; c < j; ++c) {
        sum += t(i, c) * scratch[static_cast<size_t>(c)];
      }
      t(i, j) = -tj * sum;
    }
  }
  return t;
}

void ApplyBlockReflector(const Matrix& v, const Matrix& t, bool transpose,
                         Matrix* c, int num_threads) {
  const int64_t b = v.cols();
  const int64_t nc = c->cols();
  Matrix w(b, nc);
  Gemm(Trans::kTrans, Trans::kNo, 1.0, v, *c, 0.0, &w, num_threads);
  // w := T w (transpose = false) or T^T w (transpose = true); T is upper
  // triangular so each column updates in place, ascending rows for T
  // (row i reads only rows >= i) and descending for T^T.
  const int threads =
      b * b * nc < (1 << 15) ? 1 : std::min<int>(num_threads, 64);
  ParallelForRanges(0, nc, threads, [&](int64_t c0, int64_t c1, int) {
    for (int64_t col = c0; col < c1; ++col) {
      double* wc = w.ColData(col);
      if (transpose) {
        for (int64_t i = b - 1; i >= 0; --i) {
          double sum = 0.0;
          for (int64_t l = 0; l <= i; ++l) sum += t(l, i) * wc[l];
          wc[i] = sum;
        }
      } else {
        for (int64_t i = 0; i < b; ++i) {
          double sum = 0.0;
          for (int64_t l = i; l < b; ++l) sum += t(i, l) * wc[l];
          wc[i] = sum;
        }
      }
    }
  });
  Gemm(Trans::kNo, Trans::kNo, -1.0, v, w, 1.0, c, num_threads);
}

}  // namespace internal_qr

Result<QrResult> HouseholderQr(const Matrix& a, const QrOptions& options) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("QR of an empty matrix");
  }
  const int64_t k = std::min(m, n);
  const bool blocked = UseBlockedQr(options.variant, m, n);
  FEDSC_TRACE_SPAN("linalg/qr",
                   {{"m", m}, {"n", n}, {"blocked", blocked ? 1 : 0}});
  FEDSC_METRIC_COUNTER("linalg.qr.calls").Increment();
  // Factorization flops, 2 k^2 (max(m, n) - k / 3); Q accumulation adds a
  // comparable level-3 term tracked by the Gemm counters on the blocked
  // path.
  FEDSC_METRIC_COUNTER("linalg.qr.flops")
      .Add(2 * k * k * std::max(m, n) - (2 * k * k * k) / 3);
  if (!blocked) return UnblockedQr(a);
  FEDSC_METRIC_COUNTER("linalg.qr.blocked_calls").Increment();
  return BlockedQr(a, options);
}

Matrix OrthonormalColumnBasis(const Matrix& a, double tol) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  if (m == 0 || n == 0) return Matrix(m, 0);

  double max_norm = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    max_norm = std::max(max_norm, Norm2(a.ColData(j), m));
  }
  if (max_norm == 0.0) return Matrix(m, 0);
  const double threshold = tol * max_norm;

  // Modified Gram-Schmidt with one re-orthogonalization pass; robust enough
  // for the moderately sized bases this library builds.
  std::vector<Vector> basis;
  for (int64_t j = 0; j < n; ++j) {
    Vector v = a.Col(j);
    for (int pass = 0; pass < 2; ++pass) {
      for (const Vector& q : basis) {
        const double proj = Dot(q.data(), v.data(), m);
        Axpy(-proj, q.data(), v.data(), m);
      }
    }
    const double norm = Norm2(v.data(), m);
    if (norm > threshold) {
      Scal(1.0 / norm, v.data(), m);
      basis.push_back(std::move(v));
      if (static_cast<int64_t>(basis.size()) == m) break;
    }
  }
  return Matrix::FromColumns(basis);
}

}  // namespace fedsc
