#include "linalg/qr.h"

#include <algorithm>
#include <cmath>

#include "linalg/blas.h"

namespace fedsc {

Result<QrResult> HouseholderQr(const Matrix& a) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("QR of an empty matrix");
  }
  const int64_t k = std::min(m, n);

  // Factor in place: below-diagonal of `work` holds the Householder vectors
  // (with implicit unit leading entry), `tau` the reflector scales.
  Matrix work = a;
  Vector tau(static_cast<size_t>(k), 0.0);

  for (int64_t j = 0; j < k; ++j) {
    double* col = work.ColData(j);
    const double alpha = col[j];
    const double xnorm = Norm2(col + j + 1, m - j - 1);
    if (xnorm == 0.0 && alpha >= 0.0) {
      tau[static_cast<size_t>(j)] = 0.0;
      continue;
    }
    double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
    if (beta == 0.0) {
      tau[static_cast<size_t>(j)] = 0.0;
      continue;
    }
    const double t = (beta - alpha) / beta;
    const double inv = 1.0 / (alpha - beta);
    for (int64_t i = j + 1; i < m; ++i) col[i] *= inv;
    col[j] = beta;
    tau[static_cast<size_t>(j)] = t;

    // Apply I - t v v^T to trailing columns; v = [1; col[j+1..m)].
    for (int64_t c = j + 1; c < n; ++c) {
      double* target = work.ColData(c);
      double w = target[j] + Dot(col + j + 1, target + j + 1, m - j - 1);
      w *= t;
      target[j] -= w;
      Axpy(-w, col + j + 1, target + j + 1, m - j - 1);
    }
  }

  QrResult result;
  result.r = Matrix(k, n);
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t i = 0; i <= std::min(j, k - 1); ++i) {
      result.r(i, j) = work(i, j);
    }
  }

  // Accumulate thin Q by applying reflectors (last to first) to I(m, k).
  result.q = Matrix(m, k);
  for (int64_t j = 0; j < k; ++j) result.q(j, j) = 1.0;
  for (int64_t j = k - 1; j >= 0; --j) {
    const double t = tau[static_cast<size_t>(j)];
    if (t == 0.0) continue;
    const double* v = work.ColData(j);
    for (int64_t c = 0; c < k; ++c) {
      double* target = result.q.ColData(c);
      double w = target[j] + Dot(v + j + 1, target + j + 1, m - j - 1);
      w *= t;
      target[j] -= w;
      Axpy(-w, v + j + 1, target + j + 1, m - j - 1);
    }
  }
  return result;
}

Matrix OrthonormalColumnBasis(const Matrix& a, double tol) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  if (m == 0 || n == 0) return Matrix(m, 0);

  double max_norm = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    max_norm = std::max(max_norm, Norm2(a.ColData(j), m));
  }
  if (max_norm == 0.0) return Matrix(m, 0);
  const double threshold = tol * max_norm;

  // Modified Gram-Schmidt with one re-orthogonalization pass; robust enough
  // for the moderately sized bases this library builds.
  std::vector<Vector> basis;
  for (int64_t j = 0; j < n; ++j) {
    Vector v = a.Col(j);
    for (int pass = 0; pass < 2; ++pass) {
      for (const Vector& q : basis) {
        const double proj = Dot(q.data(), v.data(), m);
        Axpy(-proj, q.data(), v.data(), m);
      }
    }
    const double norm = Norm2(v.data(), m);
    if (norm > threshold) {
      Scal(1.0 / norm, v.data(), m);
      basis.push_back(std::move(v));
      if (static_cast<int64_t>(basis.size()) == m) break;
    }
  }
  return Matrix::FromColumns(basis);
}

}  // namespace fedsc
