// Householder QR decomposition and column orthonormalization.

#ifndef FEDSC_LINALG_QR_H_
#define FEDSC_LINALG_QR_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace fedsc {

struct QrResult {
  Matrix q;  // m x k with orthonormal columns, k = min(m, n)
  Matrix r;  // k x n upper triangular
};

// Thin QR of an m x n matrix via Householder reflections.
Result<QrResult> HouseholderQr(const Matrix& a);

// Orthonormal basis for the column span of `a`: QR with column norms checked
// against `tol` * (largest original column norm); dependent columns are
// dropped. Returns an m x r matrix with r = numerical rank (possibly 0).
Matrix OrthonormalColumnBasis(const Matrix& a, double tol = 1e-10);

}  // namespace fedsc

#endif  // FEDSC_LINALG_QR_H_
