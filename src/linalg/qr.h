// Householder QR decomposition and column orthonormalization.
//
// Two engines sit behind HouseholderQr, mirroring the Gemm/Svd dispatch
// contract (DESIGN.md "Blocked factorizations & dispatch contract"):
//
//  * Unblocked: the classic one-reflector-at-a-time dot/axpy sweep — the
//    pre-blocked behavior, bit-for-bit.
//  * Blocked: panels of kQrPanelWidth reflectors are accumulated into a
//    compact-WY representation (I - V T V^T, T upper triangular) and the
//    trailing matrix / thin-Q updates become two Gemm calls each, so the
//    O(m n^2) bulk of the work rides the cache-blocked packed engine.
//
// The engine switch is RESULT-AFFECTING (the two paths group the floating-
// point updates differently, so low-order output bits differ). Under
// QrVariant::kAuto it is a pure function of the input shape — never of
// num_threads — so results stay deterministic per (input, options), and
// QrOptions::variant = kUnblocked pins the legacy bits at every size.

#ifndef FEDSC_LINALG_QR_H_
#define FEDSC_LINALG_QR_H_

#include <cstdint>

#include "common/result.h"
#include "linalg/matrix.h"

namespace fedsc {

struct QrResult {
  Matrix q;  // m x k with orthonormal columns, k = min(m, n)
  Matrix r;  // k x n upper triangular
};

// Which factorization engine HouseholderQr runs. Result-affecting, pinned to
// (options, shape) alone — the escape hatch mirroring GemmOptions::kernel.
enum class QrVariant {
  // Blocked compact-WY when n >= kBlockedQrMinCols and
  // m * n >= kBlockedQrCutoff, unblocked below.
  kAuto,
  // Pin the legacy reflector-at-a-time path at every size: reproduces
  // pre-blocked results bit-for-bit.
  kUnblocked,
  // Force the blocked compact-WY path at every size.
  kBlocked,
};

// The kAuto work threshold (m * n) at and above which HouseholderQr switches
// to the blocked compact-WY engine. Result-affecting, like the GEMM engine
// cutoff: outputs are discontinuous across it but deterministic on both
// sides.
inline constexpr int64_t kBlockedQrCutoff = int64_t{1} << 13;
// kAuto additionally requires this many columns: below it the whole matrix
// is one skinny panel, so "blocked" degenerates to the scalar panel
// factorization plus the compact-WY T build and GEMM-call overhead with no
// trailing matrix to amortize them (measurably slower than unblocked at
// n = 8 for every m in BENCH_linalg.json). Result-affecting, same contract
// as kBlockedQrCutoff.
inline constexpr int64_t kBlockedQrMinCols = 16;

struct QrOptions {
  QrVariant variant = QrVariant::kAuto;
  // Workers for the Gemm calls inside the blocked path (panel factorization
  // stays serial). Bit-identical results for every thread count.
  int num_threads = 1;
};

// Thin QR of an m x n matrix via Householder reflections.
Result<QrResult> HouseholderQr(const Matrix& a, const QrOptions& options = {});

// Orthonormal basis for the column span of `a`: QR with column norms checked
// against `tol` * (largest original column norm); dependent columns are
// dropped. Returns an m x r matrix with r = numerical rank (possibly 0).
Matrix OrthonormalColumnBasis(const Matrix& a, double tol = 1e-10);

namespace internal_qr {

// Reflectors per compact-WY panel. Result-affecting inside the blocked path
// (it sets the Gemm grouping boundaries, like kKc in the packed engine);
// never consulted by the unblocked path.
inline constexpr int64_t kQrPanelWidth = 32;

// Generates the Householder reflector eliminating rows (j, m) of `col`: on
// exit col[j] holds beta, col[j+1..m) the reflector tail (the unit leading
// entry stays implicit), and the returned tau scales H = I - tau v v^T.
// Shared by every factorization so the per-reflector arithmetic is
// identical across QR and tridiagonalization, blocked and unblocked.
double GenerateReflector(double* col, int64_t j, int64_t m);

// Upper-triangular T (b x b) with H_0 H_1 ... H_{b-1} = I - V T V^T, where
// column j of V (mv x b, explicit zeros above the unit diagonal entry at row
// j) is reflector j's Householder vector and taus[j] its scale. Shared by
// the blocked QR and the blocked tridiagonalization in linalg/eig.cc.
Matrix BuildCompactWyT(const Matrix& v, const double* taus);

// c := (I - V T V^T) c (transpose = false, the Q-accumulation direction) or
// c := (I - V T V^T)^T c (transpose = true, the trailing-update direction).
// Both are two Gemm calls around a small triangular multiply; bit-identical
// for every num_threads.
void ApplyBlockReflector(const Matrix& v, const Matrix& t, bool transpose,
                         Matrix* c, int num_threads);

}  // namespace internal_qr

}  // namespace fedsc

#endif  // FEDSC_LINALG_QR_H_
