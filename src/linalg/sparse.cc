#include "linalg/sparse.h"

#include <cmath>

#include <algorithm>

#include "common/check.h"

namespace fedsc {

SparseMatrix SparseMatrix::FromTriplets(int64_t rows, int64_t cols,
                                        std::vector<Triplet> triplets) {
  FEDSC_CHECK(rows >= 0 && cols >= 0);
  for (const Triplet& t : triplets) {
    FEDSC_CHECK(0 <= t.row && t.row < rows && 0 <= t.col && t.col < cols)
        << "triplet (" << t.row << ", " << t.col << ") outside " << rows
        << "x" << cols;
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<size_t>(rows) + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  size_t i = 0;
  for (int64_t r = 0; r < rows; ++r) {
    m.row_ptr_[static_cast<size_t>(r)] = static_cast<int64_t>(m.values_.size());
    while (i < triplets.size() && triplets[i].row == r) {
      const int64_t c = triplets[i].col;
      double sum = 0.0;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        sum += triplets[i].value;
        ++i;
      }
      if (sum != 0.0) {
        m.col_idx_.push_back(c);
        m.values_.push_back(sum);
      }
    }
  }
  m.row_ptr_[static_cast<size_t>(rows)] =
      static_cast<int64_t>(m.values_.size());
  return m;
}

void SparseMatrix::Multiply(const double* x, double* y) const {
  for (int64_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const int64_t begin = row_ptr_[static_cast<size_t>(r)];
    const int64_t end = row_ptr_[static_cast<size_t>(r) + 1];
    for (int64_t k = begin; k < end; ++k) {
      sum += values_[static_cast<size_t>(k)] *
             x[col_idx_[static_cast<size_t>(k)]];
    }
    y[r] = sum;
  }
}

Vector SparseMatrix::Multiply(const Vector& x) const {
  FEDSC_CHECK(static_cast<int64_t>(x.size()) == cols_);
  Vector y(static_cast<size_t>(rows_), 0.0);
  Multiply(x.data(), y.data());
  return y;
}

SparseMatrix SparseMatrix::Transposed() const {
  std::vector<Triplet> triplets;
  triplets.reserve(values_.size());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      triplets.push_back({col_idx_[static_cast<size_t>(k)], r,
                          values_[static_cast<size_t>(k)]});
    }
  }
  return FromTriplets(cols_, rows_, std::move(triplets));
}

SparseMatrix SparseMatrix::PlusTransposed() const {
  FEDSC_CHECK(rows_ == cols_) << "PlusTransposed needs a square matrix";
  std::vector<Triplet> triplets;
  triplets.reserve(2 * values_.size());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      const int64_t c = col_idx_[static_cast<size_t>(k)];
      const double v = values_[static_cast<size_t>(k)];
      triplets.push_back({r, c, v});
      triplets.push_back({c, r, v});
    }
  }
  return FromTriplets(rows_, cols_, std::move(triplets));
}

Vector SparseMatrix::RowSums() const {
  Vector sums(static_cast<size_t>(rows_), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      sum += values_[static_cast<size_t>(k)];
    }
    sums[static_cast<size_t>(r)] = sum;
  }
  return sums;
}

Matrix SparseMatrix::ToDense() const {
  Matrix dense(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      dense(r, col_idx_[static_cast<size_t>(k)]) +=
          values_[static_cast<size_t>(k)];
    }
  }
  return dense;
}

SparseMatrix SparsifyDense(const Matrix& dense, double threshold) {
  std::vector<Triplet> triplets;
  for (int64_t j = 0; j < dense.cols(); ++j) {
    for (int64_t i = 0; i < dense.rows(); ++i) {
      const double v = dense(i, j);
      if (std::fabs(v) > threshold) triplets.push_back({i, j, v});
    }
  }
  return SparseMatrix::FromTriplets(dense.rows(), dense.cols(),
                                    std::move(triplets));
}

}  // namespace fedsc
