// Compressed-sparse-row matrix. Affinity graphs built by the subspace
// clustering algorithms are sparse (q-NN / thresholded self-expression), and
// spectral clustering of large graphs runs Lanczos on top of this SpMV.

#ifndef FEDSC_LINALG_SPARSE_H_
#define FEDSC_LINALG_SPARSE_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace fedsc {

struct Triplet {
  int64_t row = 0;
  int64_t col = 0;
  double value = 0.0;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;

  // Builds a CSR matrix; duplicate (row, col) entries are summed, explicit
  // zeros are dropped.
  static SparseMatrix FromTriplets(int64_t rows, int64_t cols,
                                   std::vector<Triplet> triplets);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>* mutable_values() { return &values_; }

  // y = A x.
  void Multiply(const double* x, double* y) const;
  Vector Multiply(const Vector& x) const;

  SparseMatrix Transposed() const;

  // A + A^T (entry-wise sum; used for W = |C| + |C|^T).
  SparseMatrix PlusTransposed() const;

  Vector RowSums() const;

  Matrix ToDense() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;  // size rows_ + 1
  std::vector<int64_t> col_idx_;
  std::vector<double> values_;
};

// CSR from a dense matrix, dropping entries with |v| <= threshold.
SparseMatrix SparsifyDense(const Matrix& dense, double threshold = 0.0);

}  // namespace fedsc

#endif  // FEDSC_LINALG_SPARSE_H_
