#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "linalg/blas.h"
#include "linalg/qr.h"

namespace fedsc {

namespace {

// Applies the Jacobi rotation for column pair (p, q), p < q, to the working
// copy (m rows) and the accumulated V (n rows). Returns false when the pair
// already counts as orthogonal (no rotation performed). Reads and writes
// only columns p and q, so disjoint pairs are independent — the basis for
// the round-parallel sweep below.
bool RotatePair(Matrix* work, Matrix* v, int64_t p, int64_t q, int64_t m,
                int64_t n, double tol) {
  double* cp = work->ColData(p);
  double* cq = work->ColData(q);
  const double app = Dot(cp, cp, m);
  const double aqq = Dot(cq, cq, m);
  const double apq = Dot(cp, cq, m);
  // sqrt(app) * sqrt(aqq), NOT sqrt(app * aqq): the product under- or
  // overflows for extremely scaled inputs (|x| ~ 1e-120 or 1e+120).
  if (std::fabs(apq) <= tol * std::sqrt(app) * std::sqrt(aqq)) {
    return false;
  }

  // Rotation that zeroes the (p, q) entry of the implicit Gram matrix.
  const double zeta = (aqq - app) / (2.0 * apq);
  const double t = std::copysign(
      1.0 / (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta)), zeta);
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  const double s = c * t;
  for (int64_t i = 0; i < m; ++i) {
    const double wp = cp[i];
    cp[i] = c * wp - s * cq[i];
    cq[i] = s * wp + c * cq[i];
  }
  double* vp = v->ColData(p);
  double* vq = v->ColData(q);
  for (int64_t i = 0; i < n; ++i) {
    const double wp = vp[i];
    vp[i] = c * wp - s * vq[i];
    vq[i] = s * wp + c * vq[i];
  }
  return true;
}

// Shared post-processing once the columns of `work` are orthogonal: the
// singular values are the column norms, sorted descending; U columns are
// the normalized work columns and V rows follow the same permutation.
SvdResult FinishTall(Matrix work, Matrix v, int64_t m, int64_t n) {
  Vector sigma(static_cast<size_t>(n));
  for (int64_t j = 0; j < n; ++j) {
    sigma[static_cast<size_t>(j)] = Norm2(work.ColData(j), m);
  }
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t i, int64_t j) {
    return sigma[static_cast<size_t>(i)] > sigma[static_cast<size_t>(j)];
  });

  SvdResult result;
  result.u = Matrix(m, n);
  result.v = Matrix(n, n);
  result.s.resize(static_cast<size_t>(n));
  for (int64_t j = 0; j < n; ++j) {
    const int64_t src = order[static_cast<size_t>(j)];
    const double sv = sigma[static_cast<size_t>(src)];
    result.s[static_cast<size_t>(j)] = sv;
    result.v.SetCol(j, v.ColData(src));
    if (sv > 0.0) {
      const double* col = work.ColData(src);
      double* u = result.u.ColData(j);
      const double inv = 1.0 / sv;
      for (int64_t i = 0; i < m; ++i) u[i] = col[i] * inv;
    }
    // sv == 0: the U column stays zero; callers truncate by rank.
  }
  return result;
}

// Below this work size (rows * cols) SvdPairOrder::kAuto stays in the
// classic cyclic (p, q) order and never fans out. The pair ordering is a
// pure function of the problem size and the pair_order option — NOT of
// num_threads — so JacobiSvd is bit-identical across thread counts at every
// size: small problems always take the cyclic path, large ones always take
// the round-robin path (whose rounds are order-independent; see below).
// The two orders produce different low-order output bits, so results for
// large inputs differ from the pre-round-robin (always-cyclic) versions and
// are discontinuous across this cutoff; pin SvdPairOrder::kCyclic to
// reproduce stored pre-threading outputs.
constexpr int64_t kRoundRobinCutoff = 1 << 14;

bool UseRoundRobin(int64_t m, int64_t n, const SvdOptions& options) {
  switch (options.pair_order) {
    case SvdPairOrder::kCyclic:
      return false;
    case SvdPairOrder::kRoundRobin:
      return true;
    case SvdPairOrder::kAuto:
      break;
  }
  return m * n >= kRoundRobinCutoff;
}

bool UseQrPrecondition(int64_t m, int64_t n, const SvdOptions& options) {
  switch (options.precondition) {
    case SvdPrecondition::kNone:
      return false;
    case SvdPrecondition::kQr:
      return m > n;
    case SvdPrecondition::kAuto:
      break;
  }
  return n >= 2 && m >= kSvdPrecondMinAspect * n && m * n >= kSvdPrecondMinWork;
}

Result<SvdResult> JacobiSvdTall(const Matrix& a, const SvdOptions& options);

// Thin QR first, Jacobi sweeps on the small n x n R, U recovered with one
// GEMM. A = QR = Q (U_r S V^T), so U = Q U_r; zero columns of U_r (exactly
// zero singular values) stay exactly zero through the product.
Result<SvdResult> QrPreconditionedSvd(const Matrix& a,
                                      const SvdOptions& options) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  FEDSC_TRACE_SPAN("linalg/svd/precond_qr", {{"m", m}, {"n", n}});
  FEDSC_METRIC_COUNTER("linalg.svd.precond_qr").Increment();
  QrOptions qr_options;
  qr_options.num_threads = options.num_threads;
  FEDSC_ASSIGN_OR_RETURN(QrResult qr, HouseholderQr(a, qr_options));
  SvdOptions inner = options;
  inner.precondition = SvdPrecondition::kNone;
  FEDSC_ASSIGN_OR_RETURN(SvdResult small, JacobiSvdTall(qr.r, inner));
  SvdResult result;
  result.u = Matrix(m, n);
  Gemm(Trans::kNo, Trans::kNo, 1.0, qr.q, small.u, 0.0, &result.u,
       options.num_threads);
  result.s = std::move(small.s);
  result.v = std::move(small.v);
  return result;
}

// One-sided Jacobi on a with m >= n: orthogonalizes the columns of a working
// copy by plane rotations, accumulating them into V.
//
// Large inputs visit pairs in round-robin (tournament) order: each sweep is
// n-1 rounds (n padded to even) of n/2 mutually disjoint column pairs — the
// circle method. Within a round every pair touches only its own two
// columns, so the pairs of a round can run on any number of threads in any
// order and the result is bit-identical to the serial sweep. The classic
// cyclic (p, q) order cannot be parallelized deterministically (later
// rotations read columns written by earlier ones inside one sweep), so
// small inputs — where threading could never pay for itself — keep it.
Result<SvdResult> JacobiSvdTall(const Matrix& a, const SvdOptions& options) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  if (UseQrPrecondition(m, n, options)) {
    return QrPreconditionedSvd(a, options);
  }
  Matrix work = a;
  Matrix v = Matrix::Identity(n);

  if (!UseRoundRobin(m, n, options)) {
    bool cyclic_converged = false;
    int64_t rotations = 0;
    int sweeps = 0;
    for (int sweep = 0; sweep < options.max_sweeps && !cyclic_converged;
         ++sweep) {
      cyclic_converged = true;
      ++sweeps;
      for (int64_t p = 0; p < n - 1; ++p) {
        for (int64_t q = p + 1; q < n; ++q) {
          if (RotatePair(&work, &v, p, q, m, n, options.tol)) {
            cyclic_converged = false;
            ++rotations;
          }
        }
      }
    }
    FEDSC_METRIC_COUNTER("linalg.svd.sweeps").Add(sweeps);
    FEDSC_METRIC_COUNTER("linalg.svd.rotations").Add(rotations);
    if (!cyclic_converged) {
      return Status::NotConverged("Jacobi SVD did not converge within " +
                                  std::to_string(options.max_sweeps) +
                                  " sweeps");
    }
    return FinishTall(std::move(work), std::move(v), m, n);
  }

  // Tournament schedule over positions 0..padded-1; position values >= n
  // are the bye introduced when n is odd.
  const int64_t padded = n + (n % 2);
  std::vector<int64_t> circle(static_cast<size_t>(padded));
  std::iota(circle.begin(), circle.end(), 0);
  std::vector<std::pair<int64_t, int64_t>> round_pairs;
  round_pairs.reserve(static_cast<size_t>(padded / 2));
  std::vector<uint8_t> rotated(static_cast<size_t>(padded / 2), 0);
  // Rotating 2 columns costs ~6m flops; cap the fan-out at something sane.
  const int threads = std::min(options.num_threads, 64);

  bool converged = false;
  int64_t rotations = 0;
  int sweeps = 0;
  for (int sweep = 0; sweep < options.max_sweeps && !converged; ++sweep) {
    converged = true;
    ++sweeps;
    std::iota(circle.begin(), circle.end(), 0);
    for (int64_t round = 0; round < padded - 1; ++round) {
      round_pairs.clear();
      for (int64_t i = 0; i < padded / 2; ++i) {
        int64_t p = circle[static_cast<size_t>(i)];
        int64_t q = circle[static_cast<size_t>(padded - 1 - i)];
        if (p >= n || q >= n) continue;  // bye
        if (p > q) std::swap(p, q);
        round_pairs.push_back({p, q});
      }

      std::fill(rotated.begin(), rotated.end(), 0);
      ParallelForRanges(
          0, static_cast<int64_t>(round_pairs.size()), threads,
          [&](int64_t k0, int64_t k1, int /*chunk*/) {
            for (int64_t k = k0; k < k1; ++k) {
              const auto [p, q] = round_pairs[static_cast<size_t>(k)];
              if (RotatePair(&work, &v, p, q, m, n, options.tol)) {
                rotated[static_cast<size_t>(k)] = 1;
              }
            }
          });
      for (size_t k = 0; k < round_pairs.size(); ++k) {
        if (rotated[k]) {
          converged = false;
          ++rotations;
        }
      }

      // Advance the circle: position 0 is fixed, everyone else shifts.
      const int64_t last = circle[static_cast<size_t>(padded - 1)];
      for (int64_t i = padded - 1; i > 1; --i) {
        circle[static_cast<size_t>(i)] = circle[static_cast<size_t>(i - 1)];
      }
      circle[1] = last;
    }
  }
  FEDSC_METRIC_COUNTER("linalg.svd.sweeps").Add(sweeps);
  FEDSC_METRIC_COUNTER("linalg.svd.rotations").Add(rotations);
  if (!converged) {
    return Status::NotConverged("Jacobi SVD did not converge within " +
                                std::to_string(options.max_sweeps) +
                                " sweeps");
  }
  return FinishTall(std::move(work), std::move(v), m, n);
}

}  // namespace

Result<SvdResult> JacobiSvd(const Matrix& a, const SvdOptions& options) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("SVD of an empty matrix");
  }
  FEDSC_METRIC_COUNTER("linalg.svd.calls").Increment();
  if (a.rows() >= a.cols()) return JacobiSvdTall(a, options);
  // Wide matrix: factor the transpose and swap U <-> V.
  FEDSC_ASSIGN_OR_RETURN(SvdResult t, JacobiSvdTall(a.Transposed(), options));
  SvdResult result;
  result.u = std::move(t.v);
  result.v = std::move(t.u);
  result.s = std::move(t.s);
  return result;
}

int64_t NumericalRank(const Vector& s, double rel_tol) {
  if (s.empty() || s[0] <= 0.0) return 0;
  const double threshold = rel_tol * s[0];
  int64_t rank = 0;
  for (double sv : s) {
    if (sv > threshold) ++rank;
  }
  return rank;
}

Result<Matrix> PrincipalSubspace(const Matrix& a, int64_t rank,
                                 double rel_tol,
                                 const SvdOptions& svd_options) {
  FEDSC_ASSIGN_OR_RETURN(SvdResult svd, JacobiSvd(a, svd_options));
  int64_t r = rank > 0 ? std::min<int64_t>(rank, svd.u.cols())
                       : NumericalRank(svd.s, rel_tol);
  if (r <= 0) {
    return Status::FailedPrecondition("matrix has numerical rank 0");
  }
  // Never keep a direction with an exactly zero singular value: its U
  // column is not defined.
  while (r > 0 && svd.s[static_cast<size_t>(r - 1)] <= 0.0) --r;
  if (r <= 0) {
    return Status::FailedPrecondition("matrix has numerical rank 0");
  }
  return svd.u.ColRange(0, r);
}

}  // namespace fedsc
