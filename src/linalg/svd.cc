#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/blas.h"

namespace fedsc {

namespace {

// One-sided Jacobi on a with m >= n: orthogonalizes the columns of a working
// copy by plane rotations, accumulating them into V.
Result<SvdResult> JacobiSvdTall(const Matrix& a, const SvdOptions& options) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  Matrix work = a;
  Matrix v = Matrix::Identity(n);

  bool converged = false;
  for (int sweep = 0; sweep < options.max_sweeps && !converged; ++sweep) {
    converged = true;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double* cp = work.ColData(p);
        double* cq = work.ColData(q);
        const double app = Dot(cp, cp, m);
        const double aqq = Dot(cq, cq, m);
        const double apq = Dot(cp, cq, m);
        // sqrt(app) * sqrt(aqq), NOT sqrt(app * aqq): the product under- or
        // overflows for extremely scaled inputs (|x| ~ 1e-120 or 1e+120).
        if (std::fabs(apq) <=
            options.tol * std::sqrt(app) * std::sqrt(aqq)) {
          continue;
        }
        converged = false;

        // Rotation that zeroes the (p, q) entry of the implicit Gram matrix.
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta)), zeta);
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (int64_t i = 0; i < m; ++i) {
          const double wp = cp[i];
          cp[i] = c * wp - s * cq[i];
          cq[i] = s * wp + c * cq[i];
        }
        double* vp = v.ColData(p);
        double* vq = v.ColData(q);
        for (int64_t i = 0; i < n; ++i) {
          const double wp = vp[i];
          vp[i] = c * wp - s * vq[i];
          vq[i] = s * wp + c * vq[i];
        }
      }
    }
  }
  if (!converged) {
    return Status::NotConverged("Jacobi SVD did not converge within " +
                                std::to_string(options.max_sweeps) +
                                " sweeps");
  }

  // Singular values are the column norms; sort descending.
  Vector sigma(static_cast<size_t>(n));
  for (int64_t j = 0; j < n; ++j) {
    sigma[static_cast<size_t>(j)] = Norm2(work.ColData(j), m);
  }
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t i, int64_t j) {
    return sigma[static_cast<size_t>(i)] > sigma[static_cast<size_t>(j)];
  });

  SvdResult result;
  result.u = Matrix(m, n);
  result.v = Matrix(n, n);
  result.s.resize(static_cast<size_t>(n));
  for (int64_t j = 0; j < n; ++j) {
    const int64_t src = order[static_cast<size_t>(j)];
    const double sv = sigma[static_cast<size_t>(src)];
    result.s[static_cast<size_t>(j)] = sv;
    result.v.SetCol(j, v.ColData(src));
    if (sv > 0.0) {
      const double* col = work.ColData(src);
      double* u = result.u.ColData(j);
      const double inv = 1.0 / sv;
      for (int64_t i = 0; i < m; ++i) u[i] = col[i] * inv;
    }
    // sv == 0: the U column stays zero; callers truncate by rank.
  }
  return result;
}

}  // namespace

Result<SvdResult> JacobiSvd(const Matrix& a, const SvdOptions& options) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("SVD of an empty matrix");
  }
  if (a.rows() >= a.cols()) return JacobiSvdTall(a, options);
  // Wide matrix: factor the transpose and swap U <-> V.
  FEDSC_ASSIGN_OR_RETURN(SvdResult t, JacobiSvdTall(a.Transposed(), options));
  SvdResult result;
  result.u = std::move(t.v);
  result.v = std::move(t.u);
  result.s = std::move(t.s);
  return result;
}

int64_t NumericalRank(const Vector& s, double rel_tol) {
  if (s.empty() || s[0] <= 0.0) return 0;
  const double threshold = rel_tol * s[0];
  int64_t rank = 0;
  for (double sv : s) {
    if (sv > threshold) ++rank;
  }
  return rank;
}

Result<Matrix> PrincipalSubspace(const Matrix& a, int64_t rank,
                                 double rel_tol) {
  FEDSC_ASSIGN_OR_RETURN(SvdResult svd, JacobiSvd(a));
  int64_t r = rank > 0 ? std::min<int64_t>(rank, svd.u.cols())
                       : NumericalRank(svd.s, rel_tol);
  if (r <= 0) {
    return Status::FailedPrecondition("matrix has numerical rank 0");
  }
  // Never keep a direction with an exactly zero singular value: its U
  // column is not defined.
  while (r > 0 && svd.s[static_cast<size_t>(r - 1)] <= 0.0) --r;
  if (r <= 0) {
    return Status::FailedPrecondition("matrix has numerical rank 0");
  }
  return svd.u.ColRange(0, r);
}

}  // namespace fedsc
