// Thin singular value decomposition via one-sided (Hestenes) Jacobi
// rotations. Accurate for the small-to-medium factorizations this library
// needs (subspace basis estimation, PCA, canonical angles).

#ifndef FEDSC_LINALG_SVD_H_
#define FEDSC_LINALG_SVD_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace fedsc {

struct SvdResult {
  Matrix u;  // m x k, orthonormal columns (zero columns for null directions)
  Vector s;  // k singular values, descending
  Matrix v;  // n x k, orthonormal columns
};

// Which order a Jacobi sweep visits column pairs in. The two orders reach
// the same factorization up to roundoff, but the individual rotations — and
// therefore the low-order bits of the output and the sweep count — differ,
// so this is a *result-affecting* choice, not a scheduling detail.
enum class SvdPairOrder {
  // Pick by problem size: cyclic below a fixed work cutoff (rows * cols <
  // 2^14), round-robin at or above it. The choice depends only on the
  // problem size, never on num_threads, so results stay bit-identical
  // across thread counts.
  kAuto,
  // Classic cyclic (p, q) order — the pre-threading behavior at every size.
  // Inherently sequential: always runs serially. Pin this to reproduce
  // outputs stored before the round-robin sweep existed.
  kCyclic,
  // Round-robin (tournament) order at every size: each round's pairs are
  // mutually disjoint, so sweeps parallelize bit-exactly.
  kRoundRobin,
};

// Whether JacobiSvd runs a thin QR first and sweeps only the small R factor
// (A = QR = Q(U_r S V^T), U = Q U_r via one GEMM). For tall inputs this cuts
// each rotation from O(m) to O(n) work — the D x n_i basis-estimation shape
// is exactly where it pays. Like SvdPairOrder this is *result-affecting*
// (the preconditioned factorization reaches the same subspaces with
// different low-order bits), and under kAuto the choice is a pure function
// of the input shape, never of num_threads.
enum class SvdPrecondition {
  // QR-precondition iff n >= 2, m >= kSvdPrecondMinAspect * n, and
  // m * n >= kSvdPrecondMinWork.
  kAuto,
  // Sweep the full matrix at every shape — the pre-preconditioning behavior,
  // bit-for-bit.
  kNone,
  // Force the thin-QR + small-Jacobi path for every tall input (square and
  // wide inputs with m == n still sweep directly; wide inputs transpose
  // first as always).
  kQr,
};

// kAuto preconditioning thresholds: minimum tallness ratio m / n and minimum
// total work m * n. Result-affecting shape cutoffs, like kBlockedQrCutoff.
inline constexpr int64_t kSvdPrecondMinAspect = 4;
inline constexpr int64_t kSvdPrecondMinWork = int64_t{1} << 11;

struct SvdOptions {
  int max_sweeps = 60;
  // Column pairs with |<a_p, a_q>| <= tol * ||a_p|| * ||a_q|| count as
  // orthogonal.
  double tol = 1e-12;
  // Workers for the round-robin sweep: each round's column pairs are
  // mutually disjoint, so they fan out with bit-identical results for every
  // thread count.
  int num_threads = 1;
  SvdPairOrder pair_order = SvdPairOrder::kAuto;
  SvdPrecondition precondition = SvdPrecondition::kAuto;
};

// Thin SVD, k = min(m, n). Fails only on empty input or non-convergence
// (which does not occur in practice within 60 sweeps).
Result<SvdResult> JacobiSvd(const Matrix& a, const SvdOptions& options = {});

// Number of singular values > rel_tol * s[0] (0 if s is empty or all zero).
int64_t NumericalRank(const Vector& s, double rel_tol = 1e-8);

// The first `rank` left singular vectors of `a`: the orthonormal basis
// Fed-SC estimates for span of a local cluster (Section IV-B). If
// rank <= 0, the rank is chosen by NumericalRank with `rel_tol`.
// `svd_options` tunes the underlying JacobiSvd (threads, preconditioning);
// the default reproduces the historical behavior.
Result<Matrix> PrincipalSubspace(const Matrix& a, int64_t rank,
                                 double rel_tol = 1e-8,
                                 const SvdOptions& svd_options = {});

}  // namespace fedsc

#endif  // FEDSC_LINALG_SVD_H_
