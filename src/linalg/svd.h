// Thin singular value decomposition via one-sided (Hestenes) Jacobi
// rotations. Accurate for the small-to-medium factorizations this library
// needs (subspace basis estimation, PCA, canonical angles).

#ifndef FEDSC_LINALG_SVD_H_
#define FEDSC_LINALG_SVD_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace fedsc {

struct SvdResult {
  Matrix u;  // m x k, orthonormal columns (zero columns for null directions)
  Vector s;  // k singular values, descending
  Matrix v;  // n x k, orthonormal columns
};

// Which order a Jacobi sweep visits column pairs in. The two orders reach
// the same factorization up to roundoff, but the individual rotations — and
// therefore the low-order bits of the output and the sweep count — differ,
// so this is a *result-affecting* choice, not a scheduling detail.
enum class SvdPairOrder {
  // Pick by problem size: cyclic below a fixed work cutoff (rows * cols <
  // 2^14), round-robin at or above it. The choice depends only on the
  // problem size, never on num_threads, so results stay bit-identical
  // across thread counts.
  kAuto,
  // Classic cyclic (p, q) order — the pre-threading behavior at every size.
  // Inherently sequential: always runs serially. Pin this to reproduce
  // outputs stored before the round-robin sweep existed.
  kCyclic,
  // Round-robin (tournament) order at every size: each round's pairs are
  // mutually disjoint, so sweeps parallelize bit-exactly.
  kRoundRobin,
};

struct SvdOptions {
  int max_sweeps = 60;
  // Column pairs with |<a_p, a_q>| <= tol * ||a_p|| * ||a_q|| count as
  // orthogonal.
  double tol = 1e-12;
  // Workers for the round-robin sweep: each round's column pairs are
  // mutually disjoint, so they fan out with bit-identical results for every
  // thread count.
  int num_threads = 1;
  SvdPairOrder pair_order = SvdPairOrder::kAuto;
};

// Thin SVD, k = min(m, n). Fails only on empty input or non-convergence
// (which does not occur in practice within 60 sweeps).
Result<SvdResult> JacobiSvd(const Matrix& a, const SvdOptions& options = {});

// Number of singular values > rel_tol * s[0] (0 if s is empty or all zero).
int64_t NumericalRank(const Vector& s, double rel_tol = 1e-8);

// The first `rank` left singular vectors of `a`: the orthonormal basis
// Fed-SC estimates for span of a local cluster (Section IV-B). If
// rank <= 0, the rank is chosen by NumericalRank with `rel_tol`.
Result<Matrix> PrincipalSubspace(const Matrix& a, int64_t rank,
                                 double rel_tol = 1e-8);

}  // namespace fedsc

#endif  // FEDSC_LINALG_SVD_H_
