#include "metrics/clustering_metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "metrics/hungarian.h"

namespace fedsc {

namespace {

int64_t MaxLabel(const std::vector<int64_t>& labels) {
  int64_t max_label = -1;
  for (int64_t v : labels) {
    FEDSC_CHECK(v >= 0) << "labels must be non-negative, got " << v;
    max_label = std::max(max_label, v);
  }
  return max_label;
}

}  // namespace

Matrix ContingencyTable(const std::vector<int64_t>& truth,
                        const std::vector<int64_t>& predicted) {
  FEDSC_CHECK(truth.size() == predicted.size())
      << "label vectors differ in length: " << truth.size() << " vs "
      << predicted.size();
  FEDSC_CHECK(!truth.empty()) << "empty labelings";
  const int64_t rows = MaxLabel(truth) + 1;
  const int64_t cols = MaxLabel(predicted) + 1;
  Matrix counts(rows, cols);
  for (size_t i = 0; i < truth.size(); ++i) {
    counts(truth[i], predicted[i]) += 1.0;
  }
  return counts;
}

double ClusteringAccuracy(const std::vector<int64_t>& truth,
                          const std::vector<int64_t>& predicted) {
  Matrix counts = ContingencyTable(truth, predicted);
  // Hungarian wants rows <= cols; the table is symmetric in roles for ACC.
  if (counts.rows() > counts.cols()) counts = counts.Transposed();
  std::vector<int64_t> assignment;
  const double matched = SolveMaxAssignment(counts, &assignment);
  return 100.0 * matched / static_cast<double>(truth.size());
}

double NormalizedMutualInformation(const std::vector<int64_t>& truth,
                                   const std::vector<int64_t>& predicted) {
  const Matrix counts = ContingencyTable(truth, predicted);
  const double n = static_cast<double>(truth.size());

  Vector row_sums(static_cast<size_t>(counts.rows()), 0.0);
  Vector col_sums(static_cast<size_t>(counts.cols()), 0.0);
  for (int64_t j = 0; j < counts.cols(); ++j) {
    for (int64_t i = 0; i < counts.rows(); ++i) {
      row_sums[static_cast<size_t>(i)] += counts(i, j);
      col_sums[static_cast<size_t>(j)] += counts(i, j);
    }
  }

  double h_truth = 0.0;
  for (double v : row_sums) {
    if (v > 0.0) h_truth -= (v / n) * std::log(v / n);
  }
  double h_pred = 0.0;
  for (double v : col_sums) {
    if (v > 0.0) h_pred -= (v / n) * std::log(v / n);
  }

  double mi = 0.0;
  for (int64_t j = 0; j < counts.cols(); ++j) {
    for (int64_t i = 0; i < counts.rows(); ++i) {
      const double c = counts(i, j);
      if (c <= 0.0) continue;
      mi += (c / n) * std::log(c * n / (row_sums[static_cast<size_t>(i)] *
                                        col_sums[static_cast<size_t>(j)]));
    }
  }

  const double denom = h_truth + h_pred;
  if (denom <= 0.0) return 100.0;  // both labelings constant => identical
  return 100.0 * 2.0 * std::max(mi, 0.0) / denom;
}

}  // namespace fedsc
