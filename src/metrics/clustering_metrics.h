// Clustering quality metrics used throughout Section VI of the paper:
// clustering accuracy (ACC, Eq. 10) via optimal label alignment, and
// normalized mutual information (NMI, Eq. 11). Both are reported as
// percentages in [0, 100].

#ifndef FEDSC_METRICS_CLUSTERING_METRICS_H_
#define FEDSC_METRICS_CLUSTERING_METRICS_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace fedsc {

// Contingency counts: entry (t, p) is the number of points with ground-truth
// label t and predicted label p. Labels may be any non-negative integers;
// rows/cols cover 0..max label.
Matrix ContingencyTable(const std::vector<int64_t>& truth,
                        const std::vector<int64_t>& predicted);

// ACC (a%): the best label permutation's agreement rate, found with the
// Hungarian algorithm on the contingency table.
double ClusteringAccuracy(const std::vector<int64_t>& truth,
                          const std::vector<int64_t>& predicted);

// NMI (n%): 100 * 2 MI(T; P) / (H(T) + H(P)). Defined as 100 when both
// labelings are constant (zero entropy).
double NormalizedMutualInformation(const std::vector<int64_t>& truth,
                                   const std::vector<int64_t>& predicted);

}  // namespace fedsc

#endif  // FEDSC_METRICS_CLUSTERING_METRICS_H_
