#include "metrics/connectivity.h"

#include <functional>

#include <algorithm>

#include "graph/laplacian.h"
#include "linalg/eig.h"

namespace fedsc {

namespace {

Result<ConnectivityResult> FromSubmatrices(
    int64_t num_clusters,
    const std::vector<std::vector<int64_t>>& members,
    const std::function<Matrix(const std::vector<int64_t>&)>& submatrix) {
  ConnectivityResult result;
  result.per_cluster.assign(static_cast<size_t>(num_clusters), 0.0);
  for (int64_t c = 0; c < num_clusters; ++c) {
    const auto& idx = members[static_cast<size_t>(c)];
    if (idx.size() < 2) continue;  // singleton: lambda_2 := 0
    const Matrix sub = submatrix(idx);
    FEDSC_ASSIGN_OR_RETURN(Vector spectrum,
                           SymmetricEigenvalues(NormalizedLaplacian(sub)));
    result.per_cluster[static_cast<size_t>(c)] = std::max(0.0, spectrum[1]);
  }
  double sum = 0.0;
  double min_value = result.per_cluster.empty() ? 0.0 : result.per_cluster[0];
  for (double v : result.per_cluster) {
    sum += v;
    min_value = std::min(min_value, v);
  }
  result.min_lambda2 = min_value;
  result.mean_lambda2 =
      result.per_cluster.empty()
          ? 0.0
          : sum / static_cast<double>(result.per_cluster.size());
  return result;
}

std::vector<std::vector<int64_t>> GroupByLabel(
    const std::vector<int64_t>& truth, int64_t* num_clusters) {
  int64_t max_label = -1;
  for (int64_t v : truth) max_label = std::max(max_label, v);
  *num_clusters = max_label + 1;
  std::vector<std::vector<int64_t>> members(
      static_cast<size_t>(*num_clusters));
  for (size_t i = 0; i < truth.size(); ++i) {
    members[static_cast<size_t>(truth[i])].push_back(
        static_cast<int64_t>(i));
  }
  return members;
}

}  // namespace

Result<ConnectivityResult> GraphConnectivity(
    const Matrix& affinity, const std::vector<int64_t>& truth) {
  if (affinity.rows() != affinity.cols() ||
      affinity.rows() != static_cast<int64_t>(truth.size())) {
    return Status::InvalidArgument("affinity/labels size mismatch");
  }
  int64_t num_clusters = 0;
  const auto members = GroupByLabel(truth, &num_clusters);
  return FromSubmatrices(
      num_clusters, members, [&](const std::vector<int64_t>& idx) {
        Matrix sub(static_cast<int64_t>(idx.size()),
                   static_cast<int64_t>(idx.size()));
        for (size_t j = 0; j < idx.size(); ++j) {
          for (size_t i = 0; i < idx.size(); ++i) {
            sub(static_cast<int64_t>(i), static_cast<int64_t>(j)) =
                affinity(idx[i], idx[j]);
          }
        }
        return sub;
      });
}

Result<ConnectivityResult> GraphConnectivity(
    const SparseMatrix& affinity, const std::vector<int64_t>& truth) {
  if (affinity.rows() != affinity.cols() ||
      affinity.rows() != static_cast<int64_t>(truth.size())) {
    return Status::InvalidArgument("affinity/labels size mismatch");
  }
  int64_t num_clusters = 0;
  const auto members = GroupByLabel(truth, &num_clusters);
  // Map from global index to position within its cluster.
  std::vector<int64_t> position(truth.size(), -1);
  for (const auto& group : members) {
    for (size_t p = 0; p < group.size(); ++p) {
      position[static_cast<size_t>(group[p])] = static_cast<int64_t>(p);
    }
  }
  return FromSubmatrices(
      num_clusters, members, [&](const std::vector<int64_t>& idx) {
        Matrix sub(static_cast<int64_t>(idx.size()),
                   static_cast<int64_t>(idx.size()));
        const int64_t label = truth[static_cast<size_t>(idx[0])];
        for (int64_t row : idx) {
          for (int64_t k = affinity.row_ptr()[static_cast<size_t>(row)];
               k < affinity.row_ptr()[static_cast<size_t>(row) + 1]; ++k) {
            const int64_t col = affinity.col_idx()[static_cast<size_t>(k)];
            if (truth[static_cast<size_t>(col)] != label) continue;
            sub(position[static_cast<size_t>(row)],
                position[static_cast<size_t>(col)]) +=
                affinity.values()[static_cast<size_t>(k)];
          }
        }
        return sub;
      });
}

}  // namespace fedsc
