// Affinity-graph connectivity (Section VI of the paper): for each
// ground-truth cluster, the second-smallest eigenvalue lambda_2 of the
// normalized Laplacian of the induced subgraph (the algebraic connectivity of
// the cluster). CONN reports c = min_l lambda_2^(l) and the average
// c-bar = mean_l lambda_2^(l); larger is better-connected (less prone to
// over-segmentation).

#ifndef FEDSC_METRICS_CONNECTIVITY_H_
#define FEDSC_METRICS_CONNECTIVITY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace fedsc {

struct ConnectivityResult {
  double min_lambda2 = 0.0;   // c
  double mean_lambda2 = 0.0;  // c-bar (the value Table III reports)
  Vector per_cluster;         // lambda_2 per ground-truth label
};

// `affinity` is the symmetric affinity graph over all N points;
// `truth` gives each point's ground-truth cluster. Singleton clusters
// contribute lambda_2 = 0.
Result<ConnectivityResult> GraphConnectivity(
    const SparseMatrix& affinity, const std::vector<int64_t>& truth);

Result<ConnectivityResult> GraphConnectivity(
    const Matrix& affinity, const std::vector<int64_t>& truth);

}  // namespace fedsc

#endif  // FEDSC_METRICS_CONNECTIVITY_H_
