#include "metrics/hungarian.h"

#include <limits>

#include "common/check.h"

namespace fedsc {

double SolveAssignment(const Matrix& cost, std::vector<int64_t>* assignment) {
  const int64_t n = cost.rows();
  const int64_t m = cost.cols();
  FEDSC_CHECK(n >= 1 && n <= m)
      << "assignment needs 1 <= rows <= cols, got " << n << "x" << m;

  // Potentials-based shortest augmenting path formulation (1-indexed).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(static_cast<size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<size_t>(m) + 1, 0.0);
  std::vector<int64_t> p(static_cast<size_t>(m) + 1, 0);  // row matched to col
  std::vector<int64_t> way(static_cast<size_t>(m) + 1, 0);

  for (int64_t i = 1; i <= n; ++i) {
    p[0] = i;
    int64_t j0 = 0;
    std::vector<double> minv(static_cast<size_t>(m) + 1, kInf);
    std::vector<char> used(static_cast<size_t>(m) + 1, 0);
    do {
      used[static_cast<size_t>(j0)] = 1;
      const int64_t i0 = p[static_cast<size_t>(j0)];
      double delta = kInf;
      int64_t j1 = 0;
      for (int64_t j = 1; j <= m; ++j) {
        if (used[static_cast<size_t>(j)]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[static_cast<size_t>(i0)] -
                           v[static_cast<size_t>(j)];
        if (cur < minv[static_cast<size_t>(j)]) {
          minv[static_cast<size_t>(j)] = cur;
          way[static_cast<size_t>(j)] = j0;
        }
        if (minv[static_cast<size_t>(j)] < delta) {
          delta = minv[static_cast<size_t>(j)];
          j1 = j;
        }
      }
      for (int64_t j = 0; j <= m; ++j) {
        if (used[static_cast<size_t>(j)]) {
          u[static_cast<size_t>(p[static_cast<size_t>(j)])] += delta;
          v[static_cast<size_t>(j)] -= delta;
        } else {
          minv[static_cast<size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<size_t>(j0)] != 0);
    do {
      const int64_t j1 = way[static_cast<size_t>(j0)];
      p[static_cast<size_t>(j0)] = p[static_cast<size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  assignment->assign(static_cast<size_t>(n), -1);
  double total = 0.0;
  for (int64_t j = 1; j <= m; ++j) {
    const int64_t row = p[static_cast<size_t>(j)];
    if (row > 0) {
      (*assignment)[static_cast<size_t>(row - 1)] = j - 1;
      total += cost(row - 1, j - 1);
    }
  }
  return total;
}

double SolveMaxAssignment(const Matrix& weight,
                          std::vector<int64_t>* assignment) {
  Matrix negated = weight;
  negated *= -1.0;
  return -SolveAssignment(negated, assignment);
}

}  // namespace fedsc
