// Hungarian (Kuhn-Munkres) algorithm for the linear assignment problem,
// O(n^2 m). Clustering accuracy (Eq. 10 of the paper) maximizes the label
// alignment between predicted and ground-truth clusters with it.

#ifndef FEDSC_METRICS_HUNGARIAN_H_
#define FEDSC_METRICS_HUNGARIAN_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace fedsc {

// Minimum-cost assignment of rows to distinct columns of `cost`
// (rows() <= cols() required). Returns the total cost;
// (*assignment)[row] = chosen column.
double SolveAssignment(const Matrix& cost, std::vector<int64_t>* assignment);

// Maximum-weight variant (negates and delegates).
double SolveMaxAssignment(const Matrix& weight,
                          std::vector<int64_t>* assignment);

}  // namespace fedsc

#endif  // FEDSC_METRICS_HUNGARIAN_H_
