#include "metrics/subspace_preserving.h"

#include <cmath>

namespace fedsc {

namespace {

Status Validate(const SparseMatrix& affinity,
                const std::vector<int64_t>& truth) {
  if (affinity.rows() != affinity.cols() ||
      affinity.rows() != static_cast<int64_t>(truth.size())) {
    return Status::InvalidArgument("affinity/labels size mismatch");
  }
  return Status::OK();
}

}  // namespace

Result<double> SubspacePreservingError(const SparseMatrix& affinity,
                                       const std::vector<int64_t>& truth) {
  FEDSC_RETURN_NOT_OK(Validate(affinity, truth));
  double cross = 0.0;
  double total = 0.0;
  for (int64_t r = 0; r < affinity.rows(); ++r) {
    for (int64_t k = affinity.row_ptr()[static_cast<size_t>(r)];
         k < affinity.row_ptr()[static_cast<size_t>(r) + 1]; ++k) {
      const int64_t c = affinity.col_idx()[static_cast<size_t>(k)];
      const double v = std::fabs(affinity.values()[static_cast<size_t>(k)]);
      total += v;
      if (truth[static_cast<size_t>(r)] != truth[static_cast<size_t>(c)]) {
        cross += v;
      }
    }
  }
  return total > 0.0 ? 100.0 * cross / total : 0.0;
}

Result<bool> HoldsSelfExpressiveness(const SparseMatrix& affinity,
                                     const std::vector<int64_t>& truth) {
  FEDSC_RETURN_NOT_OK(Validate(affinity, truth));
  for (int64_t r = 0; r < affinity.rows(); ++r) {
    for (int64_t k = affinity.row_ptr()[static_cast<size_t>(r)];
         k < affinity.row_ptr()[static_cast<size_t>(r) + 1]; ++k) {
      const int64_t c = affinity.col_idx()[static_cast<size_t>(k)];
      if (affinity.values()[static_cast<size_t>(k)] != 0.0 &&
          truth[static_cast<size_t>(r)] != truth[static_cast<size_t>(c)]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace fedsc
