// Subspace-preserving representation error, the standard diagnostic of the
// SSC literature (You et al. call it e%): the fraction of affinity /
// coefficient mass that connects points of *different* ground-truth
// clusters. 0 means the graph satisfies the self-expressiveness property
// (SEP) exactly — the criterion of the paper's Theorem 1.

#ifndef FEDSC_METRICS_SUBSPACE_PRESERVING_H_
#define FEDSC_METRICS_SUBSPACE_PRESERVING_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "linalg/sparse.h"

namespace fedsc {

// Returns 100 * (cross-cluster |weight| mass) / (total |weight| mass), in
// [0, 100]. An empty graph scores 0.
Result<double> SubspacePreservingError(const SparseMatrix& affinity,
                                       const std::vector<int64_t>& truth);

// True iff no edge crosses ground-truth clusters (SEP holds exactly).
Result<bool> HoldsSelfExpressiveness(const SparseMatrix& affinity,
                                     const std::vector<int64_t>& truth);

}  // namespace fedsc

#endif  // FEDSC_METRICS_SUBSPACE_PRESERVING_H_
