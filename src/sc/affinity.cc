#include "sc/affinity.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/thread_pool.h"

namespace fedsc {

SparseMatrix AffinityFromCoefficients(const SparseMatrix& c,
                                      int num_threads) {
  FEDSC_CHECK(c.rows() == c.cols()) << "coefficient matrix must be square";
  // Symmetrization reads disjoint CSR row ranges; the per-range triplet
  // lists concatenate in row order, matching the serial stream exactly.
  std::vector<std::vector<Triplet>> chunk_triplets(static_cast<size_t>(
      std::max(1, ParallelChunkCount(0, c.rows(), num_threads))));
  ParallelForRanges(
      0, c.rows(), num_threads, [&](int64_t r0, int64_t r1, int chunk) {
        std::vector<Triplet>& triplets =
            chunk_triplets[static_cast<size_t>(chunk)];
        for (int64_t r = r0; r < r1; ++r) {
          for (int64_t k = c.row_ptr()[static_cast<size_t>(r)];
               k < c.row_ptr()[static_cast<size_t>(r) + 1]; ++k) {
            const int64_t col = c.col_idx()[static_cast<size_t>(k)];
            const double v = std::fabs(c.values()[static_cast<size_t>(k)]);
            if (v == 0.0) continue;
            triplets.push_back({r, col, v});
            triplets.push_back({col, r, v});
          }
        }
      });
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(2 * c.nnz()));
  for (const auto& chunk : chunk_triplets) {
    triplets.insert(triplets.end(), chunk.begin(), chunk.end());
  }
  return SparseMatrix::FromTriplets(c.rows(), c.cols(), std::move(triplets));
}

SparseMatrix SparsifyCoefficients(const Matrix& c, int64_t top_k,
                                  double drop_tol, int num_threads) {
  FEDSC_CHECK(c.rows() == c.cols()) << "coefficient matrix must be square";
  const int64_t n = c.rows();
  // Per-column top-k selection is independent; per-range triplet lists
  // concatenate in column order, matching the serial stream exactly.
  std::vector<std::vector<Triplet>> chunk_triplets(static_cast<size_t>(
      std::max(1, ParallelChunkCount(0, n, num_threads))));
  ParallelForRanges(0, n, num_threads, [&](int64_t c0, int64_t c1,
                                           int chunk) {
    std::vector<Triplet>& triplets =
        chunk_triplets[static_cast<size_t>(chunk)];
    std::vector<int64_t> order(static_cast<size_t>(n));
    for (int64_t j = c0; j < c1; ++j) {
      const double* col = c.ColData(j);
      double max_abs = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        if (i != j) max_abs = std::max(max_abs, std::fabs(col[i]));
      }
      if (max_abs <= 0.0) continue;
      const double threshold = drop_tol * max_abs;

      if (top_k > 0 && top_k < n - 1) {
        std::iota(order.begin(), order.end(), 0);
        const auto kth = order.begin() + top_k;
        std::nth_element(order.begin(), kth, order.end(),
                         [&](int64_t a, int64_t b) {
                           const double fa =
                               a == j ? -1.0 : std::fabs(col[a]);
                           const double fb =
                               b == j ? -1.0 : std::fabs(col[b]);
                           return fa > fb;
                         });
        for (auto it = order.begin(); it != kth; ++it) {
          const int64_t i = *it;
          if (i == j) continue;
          const double v = col[i];
          if (std::fabs(v) > threshold) triplets.push_back({i, j, v});
        }
      } else {
        for (int64_t i = 0; i < n; ++i) {
          if (i == j) continue;
          const double v = col[i];
          if (std::fabs(v) > threshold) triplets.push_back({i, j, v});
        }
      }
    }
  });
  std::vector<Triplet> triplets;
  for (const auto& chunk : chunk_triplets) {
    triplets.insert(triplets.end(), chunk.begin(), chunk.end());
  }
  return SparseMatrix::FromTriplets(n, n, std::move(triplets));
}

SparseMatrix AffinityFromLandmarkCoefficients(const SparseMatrix& c,
                                              int64_t top_q,
                                              int num_threads) {
  const int64_t n = c.cols();  // points
  // Row i of the transpose is point i's atom support.
  const SparseMatrix ct = c.Transposed();
  std::vector<std::vector<Triplet>> chunk_triplets(static_cast<size_t>(
      std::max(1, ParallelChunkCount(0, n, num_threads))));
  ParallelForRanges(0, n, num_threads, [&](int64_t i0, int64_t i1,
                                           int chunk) {
    std::vector<Triplet>& triplets =
        chunk_triplets[static_cast<size_t>(chunk)];
    Vector scores(static_cast<size_t>(n), 0.0);
    std::vector<int64_t> touched;
    for (int64_t i = i0; i < i1; ++i) {
      touched.clear();
      for (int64_t k = ct.row_ptr()[static_cast<size_t>(i)];
           k < ct.row_ptr()[static_cast<size_t>(i) + 1]; ++k) {
        const int64_t a = ct.col_idx()[static_cast<size_t>(k)];
        const double v_ia = std::fabs(ct.values()[static_cast<size_t>(k)]);
        if (v_ia == 0.0) continue;
        for (int64_t m = c.row_ptr()[static_cast<size_t>(a)];
             m < c.row_ptr()[static_cast<size_t>(a) + 1]; ++m) {
          const int64_t j = c.col_idx()[static_cast<size_t>(m)];
          if (j == i) continue;
          const double v_aj = std::fabs(c.values()[static_cast<size_t>(m)]);
          if (v_aj == 0.0) continue;
          if (scores[static_cast<size_t>(j)] == 0.0) touched.push_back(j);
          scores[static_cast<size_t>(j)] += v_ia * v_aj;
        }
      }
      // Touched indices accumulate in CSR traversal order; restore index
      // order so the emitted stream is a pure function of the input.
      std::sort(touched.begin(), touched.end());
      auto* keep_begin = touched.data();
      auto* keep_end = keep_begin + touched.size();
      if (top_q > 0 && top_q < static_cast<int64_t>(touched.size())) {
        keep_end = keep_begin + top_q;
        std::nth_element(keep_begin, keep_end - 1,
                         keep_begin + touched.size(),
                         [&](int64_t a, int64_t b) {
                           const double sa = scores[static_cast<size_t>(a)];
                           const double sb = scores[static_cast<size_t>(b)];
                           if (sa != sb) return sa > sb;
                           return a < b;
                         });
        std::sort(keep_begin, keep_end);
      }
      for (auto* it = keep_begin; it != keep_end; ++it) {
        const double s = scores[static_cast<size_t>(*it)];
        triplets.push_back({i, *it, s});
        triplets.push_back({*it, i, s});
      }
      for (int64_t j : touched) scores[static_cast<size_t>(j)] = 0.0;
    }
  });
  std::vector<Triplet> triplets;
  for (const auto& chunk : chunk_triplets) {
    triplets.insert(triplets.end(), chunk.begin(), chunk.end());
  }
  return SparseMatrix::FromTriplets(n, n, std::move(triplets));
}

}  // namespace fedsc
