#include "sc/affinity.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/thread_pool.h"

namespace fedsc {

SparseMatrix AffinityFromCoefficients(const SparseMatrix& c,
                                      int num_threads) {
  FEDSC_CHECK(c.rows() == c.cols()) << "coefficient matrix must be square";
  // Symmetrization reads disjoint CSR row ranges; the per-range triplet
  // lists concatenate in row order, matching the serial stream exactly.
  std::vector<std::vector<Triplet>> chunk_triplets(static_cast<size_t>(
      std::max(1, ParallelChunkCount(0, c.rows(), num_threads))));
  ParallelForRanges(
      0, c.rows(), num_threads, [&](int64_t r0, int64_t r1, int chunk) {
        std::vector<Triplet>& triplets =
            chunk_triplets[static_cast<size_t>(chunk)];
        for (int64_t r = r0; r < r1; ++r) {
          for (int64_t k = c.row_ptr()[static_cast<size_t>(r)];
               k < c.row_ptr()[static_cast<size_t>(r) + 1]; ++k) {
            const int64_t col = c.col_idx()[static_cast<size_t>(k)];
            const double v = std::fabs(c.values()[static_cast<size_t>(k)]);
            if (v == 0.0) continue;
            triplets.push_back({r, col, v});
            triplets.push_back({col, r, v});
          }
        }
      });
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(2 * c.nnz()));
  for (const auto& chunk : chunk_triplets) {
    triplets.insert(triplets.end(), chunk.begin(), chunk.end());
  }
  return SparseMatrix::FromTriplets(c.rows(), c.cols(), std::move(triplets));
}

SparseMatrix SparsifyCoefficients(const Matrix& c, int64_t top_k,
                                  double drop_tol, int num_threads) {
  FEDSC_CHECK(c.rows() == c.cols()) << "coefficient matrix must be square";
  const int64_t n = c.rows();
  // Per-column top-k selection is independent; per-range triplet lists
  // concatenate in column order, matching the serial stream exactly.
  std::vector<std::vector<Triplet>> chunk_triplets(static_cast<size_t>(
      std::max(1, ParallelChunkCount(0, n, num_threads))));
  ParallelForRanges(0, n, num_threads, [&](int64_t c0, int64_t c1,
                                           int chunk) {
    std::vector<Triplet>& triplets =
        chunk_triplets[static_cast<size_t>(chunk)];
    std::vector<int64_t> order(static_cast<size_t>(n));
    for (int64_t j = c0; j < c1; ++j) {
      const double* col = c.ColData(j);
      double max_abs = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        if (i != j) max_abs = std::max(max_abs, std::fabs(col[i]));
      }
      if (max_abs <= 0.0) continue;
      const double threshold = drop_tol * max_abs;

      if (top_k > 0 && top_k < n - 1) {
        std::iota(order.begin(), order.end(), 0);
        const auto kth = order.begin() + top_k;
        std::nth_element(order.begin(), kth, order.end(),
                         [&](int64_t a, int64_t b) {
                           const double fa =
                               a == j ? -1.0 : std::fabs(col[a]);
                           const double fb =
                               b == j ? -1.0 : std::fabs(col[b]);
                           return fa > fb;
                         });
        for (auto it = order.begin(); it != kth; ++it) {
          const int64_t i = *it;
          if (i == j) continue;
          const double v = col[i];
          if (std::fabs(v) > threshold) triplets.push_back({i, j, v});
        }
      } else {
        for (int64_t i = 0; i < n; ++i) {
          if (i == j) continue;
          const double v = col[i];
          if (std::fabs(v) > threshold) triplets.push_back({i, j, v});
        }
      }
    }
  });
  std::vector<Triplet> triplets;
  for (const auto& chunk : chunk_triplets) {
    triplets.insert(triplets.end(), chunk.begin(), chunk.end());
  }
  return SparseMatrix::FromTriplets(n, n, std::move(triplets));
}

}  // namespace fedsc
