// Shared helpers for building affinity graphs from self-expression
// coefficients: W = |C| + |C|^T (Section III-A of the paper), with optional
// per-column top-k sparsification.

#ifndef FEDSC_SC_AFFINITY_H_
#define FEDSC_SC_AFFINITY_H_

#include <cstdint>

#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace fedsc {

// Both helpers fan the per-row / per-column work out over `num_threads`
// fixed index ranges; results are bit-identical for every thread count.

// W = |C| + |C|^T from a sparse coefficient matrix.
SparseMatrix AffinityFromCoefficients(const SparseMatrix& c,
                                      int num_threads = 1);

// Sparsifies a dense coefficient matrix column-wise: keeps the top_k largest
// |c_ij| per column (all if top_k <= 0), drops entries with
// |c_ij| <= drop_tol * max_i |c_ij|, and zeroes the diagonal.
SparseMatrix SparsifyCoefficients(const Matrix& c, int64_t top_k,
                                  double drop_tol = 1e-8,
                                  int num_threads = 1);

}  // namespace fedsc

#endif  // FEDSC_SC_AFFINITY_H_
