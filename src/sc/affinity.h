// Shared helpers for building affinity graphs from self-expression
// coefficients: W = |C| + |C|^T (Section III-A of the paper), with optional
// per-column top-k sparsification.

#ifndef FEDSC_SC_AFFINITY_H_
#define FEDSC_SC_AFFINITY_H_

#include <cstdint>

#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace fedsc {

// Both helpers fan the per-row / per-column work out over `num_threads`
// fixed index ranges; results are bit-identical for every thread count.

// W = |C| + |C|^T from a sparse coefficient matrix.
SparseMatrix AffinityFromCoefficients(const SparseMatrix& c,
                                      int num_threads = 1);

// Sparsifies a dense coefficient matrix column-wise: keeps the top_k largest
// |c_ij| per column (all if top_k <= 0), drops entries with
// |c_ij| <= drop_tol * max_i |c_ij|, and zeroes the diagonal.
SparseMatrix SparsifyCoefficients(const Matrix& c, int64_t top_k,
                                  double drop_tol = 1e-8,
                                  int num_threads = 1);

// Landmark-mediated affinity for the sketched path: from a d x N coefficient
// matrix C (row a = dictionary atom a), builds the sparsified
// W = |C|^T |C| keeping each point's top_q strongest neighbors — without
// ever forming the dense N x N product. Per point the scores over shared
// atoms accumulate into a dense length-N scratch reset via the touched list,
// so peak memory is O(N * q) output triplets plus O(N) scratch per worker.
// Both (i, j) and (j, i) enter the triplet stream; mutual selections sum in
// FromTriplets, mirroring the |C| + |C|^T doubling of the exact path.
// top_q <= 0 keeps every co-supported neighbor. Bit-identical for every
// thread count (per-range triplet lists concatenate in point order).
SparseMatrix AffinityFromLandmarkCoefficients(const SparseMatrix& c,
                                              int64_t top_q,
                                              int num_threads = 1);

}  // namespace fedsc

#endif  // FEDSC_SC_AFFINITY_H_
