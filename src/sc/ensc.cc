#include "sc/ensc.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/thread_pool.h"
#include "linalg/blas.h"

namespace fedsc {

namespace {

double SoftThreshold(double v, double t) {
  if (v > t) return v - t;
  if (v < -t) return v + t;
  return 0.0;
}

// FISTA for min_c mix ||c||_1 + (1-mix)/2 ||c||^2 + gamma/2 ||b - A c||^2
// over a small dictionary A (n x m). The prox of the elastic-net penalty
// with step t is soft-threshold by t*mix followed by scaling 1/(1+t(1-mix)).
Vector FistaElasticNet(const Matrix& a, const Vector& b, double mix,
                       double gamma, int max_iterations, double tol) {
  const int64_t n = a.rows();
  const int64_t m = a.cols();
  // Lipschitz constant of the smooth part: gamma * ||A||_2^2, bounded by
  // gamma * ||A||_F^2 (cheap and safe for small m).
  double lipschitz = 0.0;
  for (int64_t j = 0; j < m; ++j) {
    lipschitz += Dot(a.ColData(j), a.ColData(j), n);
  }
  lipschitz = std::max(lipschitz * gamma, 1e-12);
  const double step = 1.0 / lipschitz;

  Vector c(static_cast<size_t>(m), 0.0);
  Vector y = c;
  Vector grad(static_cast<size_t>(m), 0.0);
  Vector residual(static_cast<size_t>(n), 0.0);
  double momentum = 1.0;

  for (int iter = 0; iter < max_iterations; ++iter) {
    // grad = -gamma A^T (b - A y)
    std::copy(b.begin(), b.end(), residual.begin());
    Gemv(Trans::kNo, -1.0, a, y.data(), 1.0, residual.data());
    Gemv(Trans::kTrans, -gamma, a, residual.data(), 0.0, grad.data());

    double max_change = 0.0;
    Vector next(static_cast<size_t>(m));
    const double shrink = 1.0 / (1.0 + step * (1.0 - mix));
    for (int64_t i = 0; i < m; ++i) {
      const double v = y[static_cast<size_t>(i)] -
                       step * grad[static_cast<size_t>(i)];
      next[static_cast<size_t>(i)] =
          SoftThreshold(v, step * mix) * shrink;
      max_change = std::max(max_change,
                            std::fabs(next[static_cast<size_t>(i)] -
                                      c[static_cast<size_t>(i)]));
    }
    const double next_momentum =
        (1.0 + std::sqrt(1.0 + 4.0 * momentum * momentum)) / 2.0;
    const double beta = (momentum - 1.0) / next_momentum;
    for (int64_t i = 0; i < m; ++i) {
      y[static_cast<size_t>(i)] =
          next[static_cast<size_t>(i)] +
          beta * (next[static_cast<size_t>(i)] - c[static_cast<size_t>(i)]);
    }
    c = std::move(next);
    momentum = next_momentum;
    if (max_change < tol) break;
  }
  return c;
}

}  // namespace

Result<SparseMatrix> EnscSelfExpression(const Matrix& x,
                                        const EnscOptions& options) {
  const int64_t n = x.rows();
  const int64_t num_points = x.cols();
  if (num_points < 2) {
    return Status::InvalidArgument("EnSC needs at least 2 points");
  }
  if (options.mix <= 0.0 || options.mix > 1.0) {
    return Status::InvalidArgument("EnSC mix must be in (0, 1]");
  }

  // Mutual coherence floor (same rule as SSC) sets the data weight. The
  // per-column maxima land in disjoint slots, so the pass fans out; min over
  // them is exact regardless of order, keeping mu bit-identical.
  Vector col_max(static_cast<size_t>(num_points), 0.0);
  ParallelForRanges(0, num_points, options.num_threads,
                    [&](int64_t c0, int64_t c1, int /*chunk*/) {
                      Vector corr(static_cast<size_t>(num_points), 0.0);
                      for (int64_t j = c0; j < c1; ++j) {
                        Gemv(Trans::kTrans, 1.0, x, x.ColData(j), 0.0,
                             corr.data());
                        double max_abs = 0.0;
                        for (int64_t i = 0; i < num_points; ++i) {
                          if (i != j) {
                            max_abs = std::max(
                                max_abs,
                                std::fabs(corr[static_cast<size_t>(i)]));
                          }
                        }
                        col_max[static_cast<size_t>(j)] = max_abs;
                      }
                    });
  double mu = std::numeric_limits<double>::infinity();
  for (double v : col_max) mu = std::min(mu, v);
  if (mu <= 0.0) {
    return Status::FailedPrecondition(
        "all points are mutually orthogonal; self-expression is degenerate");
  }
  const double gamma = options.gamma_scale / mu;

  // Per-column active-set solves are independent; fan out over fixed column
  // ranges, concatenating the per-range triplets in column order so the
  // stream matches the serial pass exactly.
  std::vector<std::vector<Triplet>> chunk_triplets(static_cast<size_t>(
      std::max(1, ParallelChunkCount(0, num_points, options.num_threads))));

  ParallelForRanges(0, num_points, options.num_threads, [&](int64_t chunk_c0,
                                                            int64_t chunk_c1,
                                                            int chunk) {
  std::vector<Triplet>& triplets =
      chunk_triplets[static_cast<size_t>(chunk)];
  Vector corr(static_cast<size_t>(num_points), 0.0);
  std::vector<int64_t> order(static_cast<size_t>(num_points));
  Vector delta(static_cast<size_t>(n), 0.0);

  for (int64_t j = chunk_c0; j < chunk_c1; ++j) {
    const Vector b = x.Col(j);
    // Rank atoms by correlation with x_j; the initial active set takes the
    // most correlated ones.
    Gemv(Trans::kTrans, 1.0, x, b.data(), 0.0, corr.data());
    corr[static_cast<size_t>(j)] = -1.0;
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int64_t p, int64_t q) {
      return std::fabs(corr[static_cast<size_t>(p)]) >
             std::fabs(corr[static_cast<size_t>(q)]);
    });

    std::vector<int64_t> active;
    std::vector<char> in_active(static_cast<size_t>(num_points), 0);
    in_active[static_cast<size_t>(j)] = 1;
    for (int64_t t = 0;
         t < num_points &&
         static_cast<int64_t>(active.size()) < options.initial_active;
         ++t) {
      const int64_t i = order[static_cast<size_t>(t)];
      if (in_active[static_cast<size_t>(i)]) continue;
      active.push_back(i);
      in_active[static_cast<size_t>(i)] = 1;
    }

    Vector coeffs;
    for (int round = 0; round < options.max_outer_rounds; ++round) {
      const Matrix sub = x.GatherCols(active);
      coeffs = FistaElasticNet(sub, b, options.mix, gamma,
                               options.max_fista_iterations,
                               options.fista_tol);

      // Oracle check: delta = gamma (b - sub * coeffs); excluded atoms must
      // satisfy |x_i^T delta| <= mix (+ small slack).
      std::copy(b.begin(), b.end(), delta.begin());
      Gemv(Trans::kNo, -1.0, sub, coeffs.data(), 1.0, delta.data());
      Scal(gamma, delta.data(), n);
      Gemv(Trans::kTrans, 1.0, x, delta.data(), 0.0, corr.data());

      std::vector<int64_t> violators;
      for (int64_t i = 0; i < num_points; ++i) {
        if (in_active[static_cast<size_t>(i)]) continue;
        if (std::fabs(corr[static_cast<size_t>(i)]) >
            options.mix + 1e-6) {
          violators.push_back(i);
        }
      }
      if (violators.empty()) break;
      std::sort(violators.begin(), violators.end(), [&](int64_t p, int64_t q) {
        return std::fabs(corr[static_cast<size_t>(p)]) >
               std::fabs(corr[static_cast<size_t>(q)]);
      });
      const int64_t grow =
          std::min<int64_t>(options.growth,
                            static_cast<int64_t>(violators.size()));
      for (int64_t t = 0; t < grow; ++t) {
        active.push_back(violators[static_cast<size_t>(t)]);
        in_active[static_cast<size_t>(violators[static_cast<size_t>(t)])] = 1;
      }
    }

    for (size_t t = 0; t < active.size(); ++t) {
      if (t < coeffs.size() && std::fabs(coeffs[t]) > 1e-10) {
        triplets.push_back({active[t], j, coeffs[t]});
      }
    }
  }
  });

  std::vector<Triplet> triplets;
  for (const auto& chunk : chunk_triplets) {
    triplets.insert(triplets.end(), chunk.begin(), chunk.end());
  }
  return SparseMatrix::FromTriplets(num_points, num_points,
                                    std::move(triplets));
}

}  // namespace fedsc
