// Elastic-net subspace clustering (You et al., ref [26] of the paper).
//
// Per-point objective (their parameterization):
//
//   min_c  mix * ||c||_1 + (1 - mix)/2 ||c||_2^2
//          + gamma/2 ||x_j - X c||_2^2          s.t. c_j = 0
//
// solved with FISTA over an *active set* that grows until the oracle
// condition holds: every excluded atom i satisfies
// |x_i^T delta| <= mix, where delta = gamma (x_j - X c) is the oracle point.
// (The paper's reference uses an oracle-guided active set; this
// correlation-ranked variant reaches the same optimum — the KKT check is
// exact — and is documented as a substitution in DESIGN.md.)

#ifndef FEDSC_SC_ENSC_H_
#define FEDSC_SC_ENSC_H_

#include <cstdint>

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace fedsc {

struct EnscOptions {
  // L1/L2 mixing in (0, 1]; 1 recovers pure SSC-Lasso.
  double mix = 0.9;
  // Data-term weight gamma = gamma_scale / mu with mu the mutual coherence
  // floor (mirrors SscAdmmOptions::alpha).
  double gamma_scale = 50.0;
  // Initial active-set size and growth per outer round.
  int64_t initial_active = 16;
  int64_t growth = 16;
  int max_outer_rounds = 8;
  int max_fista_iterations = 200;
  double fista_tol = 1e-7;
  // Workers for the per-column solves (columns are independent; results are
  // bit-identical for every thread count).
  int num_threads = 1;
};

// Sparse self-expression matrix C; columns of x should be l2-normalized.
Result<SparseMatrix> EnscSelfExpression(const Matrix& x,
                                        const EnscOptions& options = {});

}  // namespace fedsc

#endif  // FEDSC_SC_ENSC_H_
