#include "sc/esc.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"

namespace fedsc {

namespace {

// OMP coding of `target` over the columns of `dictionary` listed in `atoms`;
// returns the support (indices into `atoms`) and coefficients, and writes
// the residual norm. Small supports: normal equations are fine.
struct Coding {
  std::vector<int64_t> support;  // indices into the atom list
  Vector coefficients;
  double residual_norm = 0.0;
};

Coding OmpCode(const Matrix& x, const std::vector<int64_t>& atoms,
               const double* target, int64_t max_support) {
  const int64_t n = x.rows();
  Coding out;
  Vector residual(target, target + n);
  out.residual_norm = Norm2(residual.data(), n);
  if (atoms.empty()) return out;

  std::vector<char> used(atoms.size(), 0);
  const int64_t k_max =
      std::min<int64_t>(max_support, static_cast<int64_t>(atoms.size()));
  for (int64_t step = 0; step < k_max; ++step) {
    if (out.residual_norm < 1e-9) break;
    int64_t best = -1;
    double best_score = 1e-14;
    for (size_t a = 0; a < atoms.size(); ++a) {
      if (used[a]) continue;
      const double score =
          std::fabs(Dot(x.ColData(atoms[a]), residual.data(), n));
      if (score > best_score) {
        best_score = score;
        best = static_cast<int64_t>(a);
      }
    }
    if (best < 0) break;
    used[static_cast<size_t>(best)] = 1;
    out.support.push_back(best);

    // Least squares on the chosen atoms; Gram rides the symmetric Syrk
    // kernel (panel path at these support sizes).
    std::vector<int64_t> columns;
    columns.reserve(out.support.size());
    for (int64_t a : out.support) {
      columns.push_back(atoms[static_cast<size_t>(a)]);
    }
    const Matrix sub = x.GatherCols(columns);
    Matrix gram = Gram(sub);
    for (int64_t d = 0; d < gram.rows(); ++d) gram(d, d) += 1e-12;
    Vector rhs(out.support.size(), 0.0);
    Gemv(Trans::kTrans, 1.0, sub, target, 0.0, rhs.data());
    auto solved = SolveSpd(gram, Matrix::FromColumn(rhs));
    if (!solved.ok()) break;
    out.coefficients = solved->Col(0);

    std::copy(target, target + n, residual.begin());
    Gemv(Trans::kNo, -1.0, sub, out.coefficients.data(), 1.0,
         residual.data());
    out.residual_norm = Norm2(residual.data(), n);
  }
  return out;
}

}  // namespace

Result<std::vector<int64_t>> SelectExemplars(const Matrix& x,
                                             const EscOptions& options) {
  const int64_t num_points = x.cols();
  if (num_points < 1) return Status::InvalidArgument("no points");
  if (options.num_exemplars < 1) {
    return Status::InvalidArgument("need num_exemplars >= 1");
  }
  const int64_t k =
      std::min<int64_t>(options.num_exemplars, num_points);
  Rng rng(options.seed);

  std::vector<int64_t> exemplars{rng.UniformInt(num_points)};
  std::vector<char> chosen(static_cast<size_t>(num_points), 0);
  chosen[static_cast<size_t>(exemplars[0])] = 1;

  while (static_cast<int64_t>(exemplars.size()) < k) {
    // Farthest-first: the point with the largest OMP residual over the
    // current exemplar set joins it.
    int64_t worst = -1;
    double worst_residual = -1.0;
    for (int64_t j = 0; j < num_points; ++j) {
      if (chosen[static_cast<size_t>(j)]) continue;
      const Coding coding =
          OmpCode(x, exemplars, x.ColData(j), options.support);
      if (coding.residual_norm > worst_residual) {
        worst_residual = coding.residual_norm;
        worst = j;
      }
    }
    if (worst < 0) break;
    exemplars.push_back(worst);
    chosen[static_cast<size_t>(worst)] = 1;
  }
  return exemplars;
}

Result<SparseMatrix> EscAffinity(const Matrix& x, const EscOptions& options) {
  const int64_t num_points = x.cols();
  if (num_points < 2) {
    return Status::InvalidArgument("ESC needs at least 2 points");
  }
  if (options.q_neighbors < 1 || options.q_neighbors >= num_points) {
    return Status::InvalidArgument("ESC needs 1 <= q_neighbors < N");
  }
  FEDSC_ASSIGN_OR_RETURN(const std::vector<int64_t> exemplars,
                         SelectExemplars(x, options));
  const int64_t k = static_cast<int64_t>(exemplars.size());

  // Representation vectors: column j of R holds x_j's coding over E.
  Matrix representations(k, num_points);
  for (int64_t j = 0; j < num_points; ++j) {
    const Coding coding = OmpCode(x, exemplars, x.ColData(j),
                                  options.support);
    for (size_t t = 0; t < coding.support.size(); ++t) {
      if (t < coding.coefficients.size()) {
        representations(coding.support[t], j) = coding.coefficients[t];
      }
    }
  }
  representations.NormalizeColumns();

  // q-NN graph by |cosine| in representation space.
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(2 * options.q_neighbors * num_points));
  Vector similarity(static_cast<size_t>(num_points), 0.0);
  std::vector<int64_t> order(static_cast<size_t>(num_points));
  for (int64_t j = 0; j < num_points; ++j) {
    Gemv(Trans::kTrans, 1.0, representations, representations.ColData(j),
         0.0, similarity.data());
    for (auto& v : similarity) v = std::fabs(v);
    similarity[static_cast<size_t>(j)] = -1.0;
    std::iota(order.begin(), order.end(), 0);
    const auto kth = order.begin() + options.q_neighbors;
    std::nth_element(order.begin(), kth, order.end(),
                     [&](int64_t a, int64_t b) {
                       return similarity[static_cast<size_t>(a)] >
                              similarity[static_cast<size_t>(b)];
                     });
    for (auto it = order.begin(); it != kth; ++it) {
      const double w = similarity[static_cast<size_t>(*it)];
      if (w <= 0.0) continue;
      triplets.push_back({*it, j, w});
      triplets.push_back({j, *it, w});
    }
  }
  return SparseMatrix::FromTriplets(num_points, num_points,
                                    std::move(triplets));
}

}  // namespace fedsc
