// Exemplar-based subspace clustering (You et al. 2018, ref [25] of the
// paper — the scalable, class-imbalance-robust member of the SSC family).
//
// 1. Select a small exemplar set E by farthest-first search in
//    representation cost: repeatedly add the point that the current
//    exemplars reconstruct worst.
// 2. Sparse-code every point over E (orthogonal matching pursuit).
// 3. Connect each point to its q nearest neighbors in representation space
//    (cosine similarity of coding vectors).
//
// Cost is O(k) codings per point instead of O(N), so it scales to datasets
// the full SSC program cannot touch. Not part of the paper's evaluation
// tables; shipped as the natural scalable alternative for large
// federations' central step and exposed through ScMethod::kEsc.

#ifndef FEDSC_SC_ESC_H_
#define FEDSC_SC_ESC_H_

#include <cstdint>

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace fedsc {

struct EscOptions {
  // Number of exemplars to select; clamped to N. A few per expected cluster
  // suffices. Must be >= 1.
  int64_t num_exemplars = 32;
  // OMP support size when coding points over the exemplars.
  int64_t support = 5;
  // Neighbors per point in the representation-space affinity graph.
  int64_t q_neighbors = 6;
  uint64_t seed = 0x5eed'E5CULL;
};

// Indices of the selected exemplars (farthest-first in representation
// residual), exposed for inspection/tests.
Result<std::vector<int64_t>> SelectExemplars(const Matrix& x,
                                             const EscOptions& options);

// Symmetric affinity graph over the (l2-normalized) columns of x.
Result<SparseMatrix> EscAffinity(const Matrix& x,
                                 const EscOptions& options = {});

}  // namespace fedsc

#endif  // FEDSC_SC_ESC_H_
