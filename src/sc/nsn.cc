#include "sc/nsn.h"

#include <algorithm>
#include <cmath>

#include "linalg/blas.h"

namespace fedsc {

Result<SparseMatrix> NsnAffinity(const Matrix& x, const NsnOptions& options) {
  const int64_t n = x.rows();
  const int64_t num_points = x.cols();
  if (num_points < 2) {
    return Status::InvalidArgument("NSN needs at least 2 points");
  }
  if (options.num_neighbors < 1 || options.num_neighbors >= num_points) {
    return Status::InvalidArgument("NSN needs 1 <= num_neighbors < N");
  }
  const int64_t dim_cap = options.max_subspace_dim > 0
                              ? std::min(options.max_subspace_dim, n)
                              : n;

  std::vector<Triplet> triplets;
  triplets.reserve(
      static_cast<size_t>(2 * options.num_neighbors * num_points));

  // score[i] accumulates ||Q^T x_i||^2 for the growing orthonormal basis Q
  // of the greedy subspace; adding basis vector q adds (q^T x_i)^2.
  Vector score(static_cast<size_t>(num_points), 0.0);
  Vector projections(static_cast<size_t>(num_points), 0.0);
  Matrix basis(n, dim_cap);
  Vector candidate(static_cast<size_t>(n), 0.0);

  for (int64_t j = 0; j < num_points; ++j) {
    std::fill(score.begin(), score.end(), 0.0);
    std::vector<char> selected(static_cast<size_t>(num_points), 0);
    selected[static_cast<size_t>(j)] = 1;

    // Seed the subspace with the point itself.
    int64_t basis_size = 0;
    std::copy(x.ColData(j), x.ColData(j) + n, basis.ColData(0));
    if (Norm2(basis.ColData(0), n) > 1e-12) {
      Scal(1.0 / Norm2(basis.ColData(0), n), basis.ColData(0), n);
      basis_size = 1;
      Gemv(Trans::kTrans, 1.0, x, basis.ColData(0), 0.0, projections.data());
      for (int64_t i = 0; i < num_points; ++i) {
        score[static_cast<size_t>(i)] +=
            projections[static_cast<size_t>(i)] *
            projections[static_cast<size_t>(i)];
      }
    }

    for (int64_t step = 0; step < options.num_neighbors; ++step) {
      // Neighbor with the largest projection onto the current subspace.
      int64_t best = -1;
      double best_score = -1.0;
      for (int64_t i = 0; i < num_points; ++i) {
        if (selected[static_cast<size_t>(i)]) continue;
        if (score[static_cast<size_t>(i)] > best_score) {
          best_score = score[static_cast<size_t>(i)];
          best = i;
        }
      }
      if (best < 0) break;
      selected[static_cast<size_t>(best)] = 1;
      triplets.push_back({best, j, 1.0});
      triplets.push_back({j, best, 1.0});

      // Grow the subspace with the new neighbor (until the cap).
      if (basis_size < dim_cap) {
        std::copy(x.ColData(best), x.ColData(best) + n, candidate.begin());
        for (int pass = 0; pass < 2; ++pass) {
          for (int64_t b = 0; b < basis_size; ++b) {
            const double proj = Dot(basis.ColData(b), candidate.data(), n);
            Axpy(-proj, basis.ColData(b), candidate.data(), n);
          }
        }
        const double norm = Norm2(candidate.data(), n);
        if (norm > 1e-10) {
          Scal(1.0 / norm, candidate.data(), n);
          basis.SetCol(basis_size, candidate.data());
          Gemv(Trans::kTrans, 1.0, x, basis.ColData(basis_size), 0.0,
               projections.data());
          for (int64_t i = 0; i < num_points; ++i) {
            score[static_cast<size_t>(i)] +=
                projections[static_cast<size_t>(i)] *
                projections[static_cast<size_t>(i)];
          }
          ++basis_size;
        }
      }
    }
  }

  // Mutual selections produce duplicate triplets that FromTriplets sums;
  // clamp back to a 0/1 graph.
  SparseMatrix affinity = SparseMatrix::FromTriplets(num_points, num_points,
                                                     std::move(triplets));
  for (auto& v : *affinity.mutable_values()) v = 1.0;
  return affinity;
}

}  // namespace fedsc
