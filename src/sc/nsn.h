// Nearest Subspace Neighbor (Park, Caramanis & Sanghavi, ref [27] of the
// paper): for each point, greedily collect neighbors that maximize the norm
// of their projection onto the subspace spanned so far, then build a 0/1
// neighborhood affinity.

#ifndef FEDSC_SC_NSN_H_
#define FEDSC_SC_NSN_H_

#include <cstdint>

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace fedsc {

struct NsnOptions {
  // Number of neighbors collected per point.
  int64_t num_neighbors = 10;
  // Cap on the dimension of the greedy subspace; once reached, remaining
  // neighbors are picked by projection onto the fixed subspace (the kmax
  // parameter of the original algorithm). <= 0 means no cap.
  int64_t max_subspace_dim = 0;
};

// Symmetric 0/1 neighbor affinity over the (l2-normalized) columns of x.
Result<SparseMatrix> NsnAffinity(const Matrix& x, const NsnOptions& options);

}  // namespace fedsc

#endif  // FEDSC_SC_NSN_H_
