#include "sc/pipeline.h"

#include "common/stopwatch.h"
#include "sc/affinity.h"

namespace fedsc {

const char* ScMethodName(ScMethod method) {
  switch (method) {
    case ScMethod::kSsc:
      return "SSC";
    case ScMethod::kSscOmp:
      return "SSCOMP";
    case ScMethod::kEnsc:
      return "EnSC";
    case ScMethod::kTsc:
      return "TSC";
    case ScMethod::kNsn:
      return "NSN";
    case ScMethod::kEsc:
      return "ESC";
  }
  return "?";
}

Result<SparseMatrix> BuildAffinity(const Matrix& x,
                                   const ScPipelineOptions& options) {
  switch (options.method) {
    case ScMethod::kSsc: {
      FEDSC_ASSIGN_OR_RETURN(SparseMatrix c,
                             SscSelfExpression(x, options.ssc));
      return AffinityFromCoefficients(c);
    }
    case ScMethod::kSscOmp: {
      FEDSC_ASSIGN_OR_RETURN(SparseMatrix c,
                             SscOmpSelfExpression(x, options.ssc_omp));
      return AffinityFromCoefficients(c);
    }
    case ScMethod::kEnsc: {
      FEDSC_ASSIGN_OR_RETURN(SparseMatrix c,
                             EnscSelfExpression(x, options.ensc));
      return AffinityFromCoefficients(c);
    }
    case ScMethod::kTsc:
      return TscAffinity(x, options.tsc);
    case ScMethod::kNsn:
      return NsnAffinity(x, options.nsn);
    case ScMethod::kEsc:
      return EscAffinity(x, options.esc);
  }
  return Status::InvalidArgument("unknown subspace clustering method");
}

Result<ScResult> RunSubspaceClustering(const Matrix& x, int64_t num_clusters,
                                       const ScPipelineOptions& options) {
  if (num_clusters < 1 || num_clusters > x.cols()) {
    return Status::InvalidArgument("need 1 <= num_clusters <= N");
  }
  Stopwatch timer;
  Matrix normalized;
  const Matrix* input = &x;
  if (options.normalize_columns) {
    normalized = x;
    normalized.NormalizeColumns();
    input = &normalized;
  }
  FEDSC_ASSIGN_OR_RETURN(SparseMatrix affinity,
                         BuildAffinity(*input, options));
  FEDSC_ASSIGN_OR_RETURN(
      SpectralResult spectral,
      SpectralCluster(affinity, num_clusters, options.spectral));
  ScResult result;
  result.labels = std::move(spectral.labels);
  result.affinity = std::move(affinity);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace fedsc
