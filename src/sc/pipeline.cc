#include "sc/pipeline.h"

#include <utility>

#include "common/stopwatch.h"
#include "common/trace.h"
#include "sc/affinity.h"

namespace fedsc {

const char* ScMethodName(ScMethod method) {
  switch (method) {
    case ScMethod::kSsc:
      return "SSC";
    case ScMethod::kSscOmp:
      return "SSCOMP";
    case ScMethod::kEnsc:
      return "EnSC";
    case ScMethod::kTsc:
      return "TSC";
    case ScMethod::kNsn:
      return "NSN";
    case ScMethod::kEsc:
      return "ESC";
  }
  return "?";
}

Result<SparseMatrix> BuildAffinity(const Matrix& x,
                                   const ScPipelineOptions& options) {
  FEDSC_TRACE_SPAN("sc/affinity", {{"method", ScMethodName(options.method)},
                                   {"points", x.cols()}});
  // The pipeline knob lifts method-level defaults; an explicit per-method
  // setting above 1 is respected as-is, even when the pipeline asks for
  // more.
  const auto resolved = [&options](int method_threads) {
    return method_threads > 1 ? method_threads : options.num_threads;
  };
  switch (options.method) {
    case ScMethod::kSsc: {
      SscAdmmOptions ssc = options.ssc;
      ssc.num_threads = resolved(ssc.num_threads);
      FEDSC_ASSIGN_OR_RETURN(SparseMatrix c, SscSelfExpression(x, ssc));
      return AffinityFromCoefficients(c, options.num_threads);
    }
    case ScMethod::kSscOmp: {
      SscOmpOptions omp = options.ssc_omp;
      omp.num_threads = resolved(omp.num_threads);
      FEDSC_ASSIGN_OR_RETURN(SparseMatrix c, SscOmpSelfExpression(x, omp));
      return AffinityFromCoefficients(c, options.num_threads);
    }
    case ScMethod::kEnsc: {
      EnscOptions ensc = options.ensc;
      ensc.num_threads = resolved(ensc.num_threads);
      FEDSC_ASSIGN_OR_RETURN(SparseMatrix c, EnscSelfExpression(x, ensc));
      return AffinityFromCoefficients(c, options.num_threads);
    }
    case ScMethod::kTsc: {
      TscOptions tsc = options.tsc;
      tsc.num_threads = resolved(tsc.num_threads);
      return TscAffinity(x, tsc);
    }
    case ScMethod::kNsn:
      return NsnAffinity(x, options.nsn);
    case ScMethod::kEsc:
      return EscAffinity(x, options.esc);
  }
  return Status::InvalidArgument("unknown subspace clustering method");
}

Result<ScResult> RunSubspaceClustering(const Matrix& x, int64_t num_clusters,
                                       const ScPipelineOptions& options) {
  if (num_clusters < 1 || num_clusters > x.cols()) {
    return Status::InvalidArgument("need 1 <= num_clusters <= N");
  }
  Stopwatch timer;
  Matrix normalized;
  const Matrix* input = &x;
  if (options.normalize_columns) {
    normalized = x;
    normalized.NormalizeColumns();
    input = &normalized;
  }
  FEDSC_ASSIGN_OR_RETURN(SparseMatrix affinity,
                         BuildAffinity(*input, options));
  SpectralResult spectral;
  {
    FEDSC_TRACE_SPAN("sc/spectral", {{"k", num_clusters}});
    // Same lift as the per-method solvers: the pipeline-level thread count
    // applies unless the spectral options set their own.
    SpectralOptions spectral_options = options.spectral;
    spectral_options.num_threads =
        spectral_options.num_threads > 1 ? spectral_options.num_threads
                                         : options.num_threads;
    FEDSC_ASSIGN_OR_RETURN(
        spectral, SpectralCluster(affinity, num_clusters, spectral_options));
  }
  ScResult result;
  result.labels = std::move(spectral.labels);
  result.affinity = std::move(affinity);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace fedsc
