#include "sc/pipeline.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "sc/affinity.h"

namespace fedsc {

namespace {

bool MethodSupportsSketch(ScMethod method) {
  return method == ScMethod::kSsc || method == ScMethod::kSscOmp ||
         method == ScMethod::kTsc;
}

// Builds the sketch and solves the d x N coefficients for the sketched
// path. `resolved_dim` must already be the SketchDimForShape resolution.
Result<SparseMatrix> SketchedCoefficients(const Matrix& x,
                                          const ScPipelineOptions& options,
                                          int64_t resolved_dim,
                                          SketchResult* sketch_out) {
  if (!MethodSupportsSketch(options.method)) {
    return Status::InvalidArgument(
        std::string("central = sketch is not supported for method ") +
        ScMethodName(options.method) + " (supported: SSC, SSCOMP, TSC)");
  }
  const auto resolved = [&options](int method_threads) {
    return method_threads > 1 ? method_threads : options.num_threads;
  };
  SketchOptions sketch_options = options.sketch;
  sketch_options.dim = resolved_dim;
  sketch_options.num_threads = resolved(sketch_options.num_threads);
  FEDSC_ASSIGN_OR_RETURN(SketchResult sketch, SketchDictionary(x, sketch_options));
  SparseMatrix coefficients;
  switch (options.method) {
    case ScMethod::kSsc: {
      SscAdmmOptions ssc = options.ssc;
      ssc.num_threads = resolved(ssc.num_threads);
      FEDSC_ASSIGN_OR_RETURN(coefficients,
                             SscSketchedSelfExpression(x, sketch, ssc));
      break;
    }
    case ScMethod::kSscOmp: {
      SscOmpOptions omp = options.ssc_omp;
      omp.num_threads = resolved(omp.num_threads);
      FEDSC_ASSIGN_OR_RETURN(coefficients,
                             SscOmpSketchedSelfExpression(x, sketch, omp));
      break;
    }
    case ScMethod::kTsc: {
      TscOptions tsc = options.tsc;
      tsc.num_threads = resolved(tsc.num_threads);
      tsc.q = std::max<int64_t>(tsc.q, 1);
      FEDSC_ASSIGN_OR_RETURN(coefficients,
                             TscLandmarkCoefficients(x, sketch, tsc));
      break;
    }
    default:
      return Status::InvalidArgument("unreachable: unsupported sketch method");
  }
  // Deterministic provenance of the sketched solve (serial coordinator
  // code; the exact path leaves these gauges untouched).
  FEDSC_METRIC_GAUGE("sc.sketch.dim", MetricKind::kDeterministic)
      .Set(static_cast<double>(resolved_dim));
  FEDSC_METRIC_GAUGE("sc.sketch.landmarks", MetricKind::kDeterministic)
      .Set(static_cast<double>(sketch.landmarks.size()));
  FEDSC_METRIC_GAUGE("sc.sketch.coeff_nnz", MetricKind::kDeterministic)
      .Set(static_cast<double>(coefficients.nnz()));
  if (sketch_out != nullptr) *sketch_out = std::move(sketch);
  return coefficients;
}

}  // namespace

const char* ScMethodName(ScMethod method) {
  switch (method) {
    case ScMethod::kSsc:
      return "SSC";
    case ScMethod::kSscOmp:
      return "SSCOMP";
    case ScMethod::kEnsc:
      return "EnSC";
    case ScMethod::kTsc:
      return "TSC";
    case ScMethod::kNsn:
      return "NSN";
    case ScMethod::kEsc:
      return "ESC";
  }
  return "?";
}

const char* CentralPathName(CentralPath path) {
  switch (path) {
    case CentralPath::kAuto:
      return "auto";
    case CentralPath::kExact:
      return "exact";
    case CentralPath::kSketched:
      return "sketched";
  }
  return "?";
}

int64_t SketchDimForShape(int64_t n, int64_t requested) {
  if (requested > 0) return requested;
  const int64_t dim = std::clamp<int64_t>(n / 16, 128, 1024);
  return std::min(dim, std::max<int64_t>(n - 1, 1));
}

CentralPath ResolveCentralPath(const ScPipelineOptions& options, int64_t n,
                               int64_t num_clusters) {
  const int64_t dim = SketchDimForShape(n, options.sketch.dim);
  switch (options.central) {
    case CentralPath::kExact:
      return CentralPath::kExact;
    case CentralPath::kSketched:
      // The one documented fallback: a sketch at least as wide as the data
      // has nothing to compress, so the exact solve runs instead.
      return dim >= n ? CentralPath::kExact : CentralPath::kSketched;
    case CentralPath::kAuto:
      if (MethodSupportsSketch(options.method) && n >= kSketchedCutoffN &&
          dim < n && (num_clusters <= 0 || num_clusters <= dim)) {
        return CentralPath::kSketched;
      }
      return CentralPath::kExact;
  }
  return CentralPath::kExact;
}

Result<SparseMatrix> BuildAffinity(const Matrix& x,
                                   const ScPipelineOptions& options) {
  FEDSC_TRACE_SPAN("sc/affinity", {{"method", ScMethodName(options.method)},
                                   {"points", x.cols()}});
  if (ResolveCentralPath(options, x.cols(), 0) == CentralPath::kSketched) {
    const int64_t dim = SketchDimForShape(x.cols(), options.sketch.dim);
    FEDSC_ASSIGN_OR_RETURN(SparseMatrix coefficients,
                           SketchedCoefficients(x, options, dim, nullptr));
    return AffinityFromLandmarkCoefficients(coefficients,
                                            options.sketch_top_q,
                                            options.num_threads);
  }
  // The pipeline knob lifts method-level defaults; an explicit per-method
  // setting above 1 is respected as-is, even when the pipeline asks for
  // more.
  const auto resolved = [&options](int method_threads) {
    return method_threads > 1 ? method_threads : options.num_threads;
  };
  switch (options.method) {
    case ScMethod::kSsc: {
      SscAdmmOptions ssc = options.ssc;
      ssc.num_threads = resolved(ssc.num_threads);
      FEDSC_ASSIGN_OR_RETURN(SparseMatrix c, SscSelfExpression(x, ssc));
      return AffinityFromCoefficients(c, options.num_threads);
    }
    case ScMethod::kSscOmp: {
      SscOmpOptions omp = options.ssc_omp;
      omp.num_threads = resolved(omp.num_threads);
      FEDSC_ASSIGN_OR_RETURN(SparseMatrix c, SscOmpSelfExpression(x, omp));
      return AffinityFromCoefficients(c, options.num_threads);
    }
    case ScMethod::kEnsc: {
      EnscOptions ensc = options.ensc;
      ensc.num_threads = resolved(ensc.num_threads);
      FEDSC_ASSIGN_OR_RETURN(SparseMatrix c, EnscSelfExpression(x, ensc));
      return AffinityFromCoefficients(c, options.num_threads);
    }
    case ScMethod::kTsc: {
      TscOptions tsc = options.tsc;
      tsc.num_threads = resolved(tsc.num_threads);
      return TscAffinity(x, tsc);
    }
    case ScMethod::kNsn:
      return NsnAffinity(x, options.nsn);
    case ScMethod::kEsc:
      return EscAffinity(x, options.esc);
  }
  return Status::InvalidArgument("unknown subspace clustering method");
}

Result<ScResult> RunSubspaceClustering(const Matrix& x, int64_t num_clusters,
                                       const ScPipelineOptions& options) {
  if (num_clusters < 1 || num_clusters > x.cols()) {
    return Status::InvalidArgument("need 1 <= num_clusters <= N");
  }
  Stopwatch timer;
  Matrix normalized;
  const Matrix* input = &x;
  if (options.normalize_columns) {
    normalized = x;
    normalized.NormalizeColumns();
    input = &normalized;
  }

  if (ResolveCentralPath(options, x.cols(), num_clusters) ==
      CentralPath::kSketched) {
    const int64_t dim = SketchDimForShape(x.cols(), options.sketch.dim);
    if (num_clusters > dim) {
      return Status::InvalidArgument(
          "sketched central clustering needs num_clusters <= sketch dim (" +
          std::to_string(num_clusters) + " > " + std::to_string(dim) +
          "); widen --sketch-dim or use central = exact");
    }
    SparseMatrix coefficients;
    {
      FEDSC_TRACE_SPAN("sc/affinity",
                       {{"method", ScMethodName(options.method)},
                        {"points", x.cols()},
                        {"path", "sketched"}});
      FEDSC_ASSIGN_OR_RETURN(
          coefficients, SketchedCoefficients(*input, options, dim, nullptr));
    }
    // The sparsified landmark affinity is what downstream consumers (the
    // induced-connectivity metric, report surfaces) see; the spectral step
    // clusters the full factorized graph |C|^T |C| via its d x d core.
    SparseMatrix affinity = AffinityFromLandmarkCoefficients(
        coefficients, options.sketch_top_q, options.num_threads);
    SpectralResult spectral;
    {
      FEDSC_TRACE_SPAN("sc/spectral", {{"k", num_clusters}});
      SpectralOptions spectral_options = options.spectral;
      spectral_options.num_threads =
          spectral_options.num_threads > 1 ? spectral_options.num_threads
                                           : options.num_threads;
      FEDSC_ASSIGN_OR_RETURN(
          spectral, SpectralClusterLandmark(coefficients, num_clusters,
                                            spectral_options));
    }
    ScResult result;
    result.labels = std::move(spectral.labels);
    result.affinity = std::move(affinity);
    result.seconds = timer.ElapsedSeconds();
    return result;
  }

  // Pin the affinity builder to the exact path: a kAuto resolution that
  // chose exact here (e.g. num_clusters > sketch dim) must not re-resolve
  // sketched inside BuildAffinity, which never sees num_clusters.
  ScPipelineOptions exact_options = options;
  exact_options.central = CentralPath::kExact;
  FEDSC_ASSIGN_OR_RETURN(SparseMatrix affinity,
                         BuildAffinity(*input, exact_options));
  SpectralResult spectral;
  {
    FEDSC_TRACE_SPAN("sc/spectral", {{"k", num_clusters}});
    // Same lift as the per-method solvers: the pipeline-level thread count
    // applies unless the spectral options set their own.
    SpectralOptions spectral_options = options.spectral;
    spectral_options.num_threads =
        spectral_options.num_threads > 1 ? spectral_options.num_threads
                                         : options.num_threads;
    FEDSC_ASSIGN_OR_RETURN(
        spectral, SpectralCluster(affinity, num_clusters, spectral_options));
  }
  ScResult result;
  result.labels = std::move(spectral.labels);
  result.affinity = std::move(affinity);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace fedsc
