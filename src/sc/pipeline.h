// End-to-end centralized subspace clustering: affinity construction with any
// of the library's methods, then normalized spectral clustering. Benches use
// this to run the paper's centralized baselines (SSC, SSC-OMP, EnSC, TSC,
// NSN) under one interface.

#ifndef FEDSC_SC_PIPELINE_H_
#define FEDSC_SC_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/spectral.h"
#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "sc/ensc.h"
#include "sc/esc.h"
#include "sc/nsn.h"
#include "sc/ssc_admm.h"
#include "sc/ssc_omp.h"
#include "sc/tsc.h"

namespace fedsc {

enum class ScMethod { kSsc, kSscOmp, kEnsc, kTsc, kNsn, kEsc };

const char* ScMethodName(ScMethod method);

struct ScPipelineOptions {
  ScMethod method = ScMethod::kSsc;
  SscAdmmOptions ssc;
  SscOmpOptions ssc_omp;
  EnscOptions ensc;
  EscOptions esc;
  TscOptions tsc;
  NsnOptions nsn;
  SpectralOptions spectral;
  // Normalize input columns to unit l2 norm before clustering (the paper's
  // standing assumption).
  bool normalize_columns = true;
  // Pipeline-level worker count. Raises the per-method num_threads (SSC,
  // SSC-OMP, EnSC, TSC) and the affinity symmetrization to this value when
  // they are left at their default of 1; a method-level setting above 1
  // wins. Results are bit-identical for every thread count.
  int num_threads = 1;
};

struct ScResult {
  std::vector<int64_t> labels;  // size N, values in [0, num_clusters)
  SparseMatrix affinity;        // the symmetric W spectral clustering saw
  double seconds = 0.0;         // wall-clock of affinity + spectral steps
};

// Builds W with the selected method over the columns of x and segments them
// into num_clusters groups.
Result<ScResult> RunSubspaceClustering(const Matrix& x, int64_t num_clusters,
                                       const ScPipelineOptions& options = {});

// Affinity-only entry point (shared by the federated scheme).
Result<SparseMatrix> BuildAffinity(const Matrix& x,
                                   const ScPipelineOptions& options);

}  // namespace fedsc

#endif  // FEDSC_SC_PIPELINE_H_
