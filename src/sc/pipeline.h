// End-to-end centralized subspace clustering: affinity construction with any
// of the library's methods, then normalized spectral clustering. Benches use
// this to run the paper's centralized baselines (SSC, SSC-OMP, EnSC, TSC,
// NSN) under one interface.

#ifndef FEDSC_SC_PIPELINE_H_
#define FEDSC_SC_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/spectral.h"
#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "sc/ensc.h"
#include "sc/esc.h"
#include "sc/nsn.h"
#include "sc/sketch.h"
#include "sc/ssc_admm.h"
#include "sc/ssc_omp.h"
#include "sc/tsc.h"

namespace fedsc {

enum class ScMethod { kSsc, kSscOmp, kEnsc, kTsc, kNsn, kEsc };

const char* ScMethodName(ScMethod method);

// Which central-clustering engine runs. Mirrors the GemmOptions::kernel /
// QrOptions::variant dispatch contract: the choice is RESULT-AFFECTING (the
// sketched path solves against a d-column dictionary and clusters the
// landmark-factorized graph, so labels and affinities differ from the exact
// path), and under kAuto it is a pure function of (method, N, k, sketch dim)
// — never of the thread count — so outputs stay deterministic per
// (input, options).
enum class CentralPath {
  // Sketched when the method supports it (kSsc, kSscOmp, kTsc) and
  // N >= kSketchedCutoffN and k <= sketch dim < N; exact otherwise.
  kAuto,
  // Pin today's O(N^2)-O(N^3) path at every size: reproduces pre-sketch
  // results bit-for-bit (the escape hatch mirroring GemmKernel::kPanel).
  kExact,
  // Force the sketched path at every size (dim >= N still falls back to
  // exact; an unsupported method is a typed error).
  kSketched,
};

const char* CentralPathName(CentralPath path);

// The kAuto pooled-sample count at and above which the sketched path
// engages. Result-affecting, like kBlockedGemmCutoff: labels are
// discontinuous across it but deterministic on both sides. Below it the
// exact solve is cheap enough that sketching only costs accuracy.
inline constexpr int64_t kSketchedCutoffN = 4096;

// The sketch width the pipeline uses when options.sketch.dim == 0: a pure
// shape rule, d = clamp(N / 16, 128, 1024) (capped below N - 1).
int64_t SketchDimForShape(int64_t n, int64_t requested);

// Resolves which path RunSubspaceClustering will take for an N-point
// problem, as recorded in the journal's central_start event. Pure function
// of (options, n, num_clusters); pass num_clusters = 0 when unknown
// (affinity-only callers). An explicit kSketched resolves to kExact only in
// the documented degenerate case sketch dim >= N; unsupported methods or
// k > dim keep kSketched and surface a typed InvalidArgument at run time.
struct ScPipelineOptions;
CentralPath ResolveCentralPath(const ScPipelineOptions& options, int64_t n,
                               int64_t num_clusters);

struct ScPipelineOptions {
  ScMethod method = ScMethod::kSsc;
  SscAdmmOptions ssc;
  SscOmpOptions ssc_omp;
  EnscOptions ensc;
  EscOptions esc;
  TscOptions tsc;
  NsnOptions nsn;
  SpectralOptions spectral;
  // Normalize input columns to unit l2 norm before clustering (the paper's
  // standing assumption).
  bool normalize_columns = true;
  // Central-clustering engine dispatch (see CentralPath above). kExact pins
  // the pre-sketch bits; kAuto flips to the sketched path at
  // kSketchedCutoffN for the methods that support it.
  CentralPath central = CentralPath::kAuto;
  // Sketch construction for the sketched path. sketch.dim == 0 resolves to
  // SketchDimForShape(N); sketch.num_threads is lifted by num_threads like
  // the per-method solvers.
  SketchOptions sketch;
  // Neighbors kept per point when the landmark-mediated affinity
  // W = |C|^T |C| is sparsified (sketched path only).
  int64_t sketch_top_q = 8;
  // Pipeline-level worker count. Raises the per-method num_threads (SSC,
  // SSC-OMP, EnSC, TSC) and the affinity symmetrization to this value when
  // they are left at their default of 1; a method-level setting above 1
  // wins. Results are bit-identical for every thread count.
  int num_threads = 1;
};

struct ScResult {
  std::vector<int64_t> labels;  // size N, values in [0, num_clusters)
  SparseMatrix affinity;        // the symmetric W spectral clustering saw
  double seconds = 0.0;         // wall-clock of affinity + spectral steps
};

// Builds W with the selected method over the columns of x and segments them
// into num_clusters groups.
Result<ScResult> RunSubspaceClustering(const Matrix& x, int64_t num_clusters,
                                       const ScPipelineOptions& options = {});

// Affinity-only entry point (shared by the federated scheme).
Result<SparseMatrix> BuildAffinity(const Matrix& x,
                                   const ScPipelineOptions& options);

}  // namespace fedsc

#endif  // FEDSC_SC_PIPELINE_H_
