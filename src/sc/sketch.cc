#include "sc/sketch.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"

namespace fedsc {

namespace {

// Dictionary column j = X s_j / sqrt(d) with s_j a fresh random-sign vector
// from Rng(MixSeeds(seed, j)). Generating the signs per output column keeps
// the draw independent of the thread partition, and the Gemv runs inline on
// the worker, so the dictionary is bit-identical for every thread count.
Matrix JlDictionary(const Matrix& x, int64_t dim, uint64_t seed,
                    int num_threads) {
  const int64_t n = x.cols();
  Matrix dictionary(x.rows(), dim);
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim));
  ParallelForRanges(0, dim, num_threads, [&](int64_t j0, int64_t j1, int) {
    Vector signs(static_cast<size_t>(n), 0.0);
    for (int64_t j = j0; j < j1; ++j) {
      Rng rng(MixSeeds(seed, static_cast<uint64_t>(j)));
      for (int64_t i = 0; i < n; ++i) {
        signs[static_cast<size_t>(i)] =
            (rng.Next() & 1) != 0 ? scale : -scale;
      }
      Gemv(Trans::kNo, 1.0, x, signs.data(), 0.0, dictionary.ColData(j));
    }
  });
  return dictionary;
}

std::vector<int64_t> UniformLandmarks(int64_t n, int64_t dim, uint64_t seed) {
  Rng rng(MixSeeds(seed, 0));
  std::vector<int64_t> landmarks = rng.SampleWithoutReplacement(n, dim);
  std::sort(landmarks.begin(), landmarks.end());
  return landmarks;
}

// Efraimidis-Spirakis weighted sampling without replacement: column j gets
// key log(U_j) / w_j (U_j from its own seeded stream) and the d largest keys
// win. Keys are written into disjoint slots, so the draw is thread-count
// independent; ties break by index for a fully deterministic selection.
std::vector<int64_t> LeverageLandmarks(const Vector& scores, int64_t dim,
                                       uint64_t seed, int num_threads) {
  const int64_t n = static_cast<int64_t>(scores.size());
  Vector keys(static_cast<size_t>(n), 0.0);
  ParallelForRanges(0, n, num_threads, [&](int64_t j0, int64_t j1, int) {
    for (int64_t j = j0; j < j1; ++j) {
      Rng rng(MixSeeds(seed, static_cast<uint64_t>(j)));
      const double u = std::max(rng.Uniform(), 1e-300);
      const double w = std::max(scores[static_cast<size_t>(j)], 1e-12);
      keys[static_cast<size_t>(j)] = std::log(u) / w;
    }
  });
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  const auto kth = order.begin() + dim;
  std::nth_element(order.begin(), kth, order.end(),
                   [&](int64_t a, int64_t b) {
                     const double ka = keys[static_cast<size_t>(a)];
                     const double kb = keys[static_cast<size_t>(b)];
                     if (ka != kb) return ka > kb;
                     return a < b;
                   });
  std::vector<int64_t> landmarks(order.begin(), kth);
  std::sort(landmarks.begin(), landmarks.end());
  return landmarks;
}

}  // namespace

const char* SketchKindName(SketchKind kind) {
  switch (kind) {
    case SketchKind::kJl:
      return "jl";
    case SketchKind::kUniformLandmarks:
      return "uniform";
    case SketchKind::kLeverageLandmarks:
      return "leverage";
  }
  return "?";
}

Result<Vector> RidgeLeverageScores(const Matrix& x, double ridge,
                                   int num_threads) {
  const int64_t d_ambient = x.rows();
  const int64_t n = x.cols();
  if (n < 1 || d_ambient < 1) {
    return Status::InvalidArgument("leverage scores need a non-empty matrix");
  }
  Matrix s = OuterGram(x, num_threads);  // X X^T, via Syrk
  for (int64_t i = 0; i < d_ambient; ++i) s(i, i) += ridge;
  FEDSC_ASSIGN_OR_RETURN(const Matrix s_inverse, SpdInverse(s));
  Vector scores(static_cast<size_t>(n), 0.0);
  ParallelForRanges(0, n, num_threads, [&](int64_t j0, int64_t j1, int) {
    Vector tmp(static_cast<size_t>(d_ambient), 0.0);
    for (int64_t j = j0; j < j1; ++j) {
      Gemv(Trans::kNo, 1.0, s_inverse, x.ColData(j), 0.0, tmp.data());
      scores[static_cast<size_t>(j)] =
          Dot(tmp.data(), x.ColData(j), d_ambient);
    }
  });
  return scores;
}

Result<SketchResult> SketchDictionary(const Matrix& x,
                                      const SketchOptions& options) {
  const int64_t n = x.cols();
  if (options.dim < 1) {
    return Status::InvalidArgument("sketch dim must be >= 1, got " +
                                   std::to_string(options.dim));
  }
  if (options.dim >= n) {
    return Status::InvalidArgument(
        "sketch dim must be < N (" + std::to_string(options.dim) +
        " >= " + std::to_string(n) + "); use the exact path instead");
  }
  FEDSC_TRACE_SPAN("sc/sketch", {{"kind", SketchKindName(options.kind)},
                                 {"points", n},
                                 {"dim", options.dim}});
  SketchResult result;
  switch (options.kind) {
    case SketchKind::kJl:
      result.dictionary =
          JlDictionary(x, options.dim, options.seed, options.num_threads);
      break;
    case SketchKind::kUniformLandmarks:
      result.landmarks = UniformLandmarks(n, options.dim, options.seed);
      result.dictionary = x.GatherCols(result.landmarks);
      break;
    case SketchKind::kLeverageLandmarks: {
      // Ridge relative to the mean diagonal of X X^T keeps the scores scale
      // free; the trace equals ||X||_F^2, which one pass over the data gives.
      const double frob = x.FrobeniusNorm();
      const double ridge = std::max(
          options.leverage_ridge * frob * frob /
              static_cast<double>(std::max<int64_t>(x.rows(), 1)),
          1e-300);
      FEDSC_ASSIGN_OR_RETURN(
          const Vector scores,
          RidgeLeverageScores(x, ridge, options.num_threads));
      result.landmarks = LeverageLandmarks(scores, options.dim, options.seed,
                                           options.num_threads);
      result.dictionary = x.GatherCols(result.landmarks);
      break;
    }
  }
  FEDSC_METRIC_COUNTER("sc.sketch.builds").Increment();
  return result;
}

}  // namespace fedsc
