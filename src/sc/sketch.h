// Right-sketch dictionaries for scalable central clustering (Traganitis &
// Giannakis, "Sketched Subspace Clustering"): instead of letting every point
// express itself against all N-1 peers, the self-expression solves run
// against a D x d dictionary B = X S built from the pooled data, so the
// per-column cost drops from O(N * D) to O(d * D).
//
// Two sketch families are provided:
//  * JL (subsampled random signs): B = X S / sqrt(d) with S in {-1, +1}^{N x d}.
//    Dense combinations of the data; no landmark identity.
//  * Column landmarks (uniform or ridge-leverage-score sampling): B gathers d
//    actual data columns, so coefficient row a corresponds to pooled sample
//    landmarks[a] — this is what the landmark-mediated affinity and the
//    Nystrom spectral extension consume.
//
// Determinism contract: the sketch is a pure function of (data, options.seed,
// shape). Every random draw comes from Rng(MixSeeds(seed, j)) keyed by the
// column index j, never from a shared stream, so the result is bit-identical
// for every thread count and independent of scheduling order.

#ifndef FEDSC_SC_SKETCH_H_
#define FEDSC_SC_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace fedsc {

enum class SketchKind {
  // B = X S / sqrt(d) with i.i.d. random-sign S (Achlioptas-style JL).
  kJl,
  // d distinct data columns sampled uniformly without replacement.
  kUniformLandmarks,
  // d distinct data columns sampled by exact ridge leverage scores
  // (Efraimidis-Spirakis weighted reservoir keys over l_j = x_j^T
  // (X X^T + ridge I)^{-1} x_j). Skewed cluster sizes keep small clusters
  // represented: their directions concentrate on few columns, which raises
  // those columns' leverage.
  kLeverageLandmarks,
};

const char* SketchKindName(SketchKind kind);

struct SketchOptions {
  // Sketch width d. Must satisfy 1 <= dim < N at SketchDictionary call time
  // (the pipeline resolves dim == 0 to its shape rule and falls back to the
  // exact path when dim >= N before ever calling this).
  int64_t dim = 0;
  SketchKind kind = SketchKind::kUniformLandmarks;
  uint64_t seed = 0;
  // Ridge for the leverage scores, relative to trace(X X^T) / D.
  double leverage_ridge = 1e-6;
  // Workers for the per-column draws / score evaluations. Bit-identical
  // results for every thread count.
  int num_threads = 1;
};

struct SketchResult {
  Matrix dictionary;  // D x d
  // Data-column index of each dictionary atom, ascending; empty for kJl.
  std::vector<int64_t> landmarks;
};

// Builds the sketch dictionary over the columns of x. Requires
// 1 <= options.dim < N.
Result<SketchResult> SketchDictionary(const Matrix& x,
                                      const SketchOptions& options);

// Exact ridge leverage scores l_j = x_j^T (X X^T + ridge I)^{-1} x_j for
// every column (exposed for tests; O(N * D^2 + D^3)). `ridge` is absolute.
Result<Vector> RidgeLeverageScores(const Matrix& x, double ridge,
                                   int num_threads = 1);

}  // namespace fedsc

#endif  // FEDSC_SC_SKETCH_H_
