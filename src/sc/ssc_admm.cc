#include "sc/ssc_admm.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "sc/affinity.h"

namespace fedsc {

namespace {

// mu = min_i max_{j != i} |x_j^T x_i|, from the Gram matrix. Column panels
// reduce to a per-chunk min-of-max, combined in chunk order below — min and
// max are exact in any order (the same reduction shape as the ADMM stopping
// rule), so the result is bit-identical for every thread count.
double MutualCoherenceFloor(const Matrix& gram, int num_threads) {
  const int64_t n = gram.rows();
  const int chunks =
      std::max(1, ParallelChunkCount(0, n, num_threads));
  std::vector<double> chunk_mu(static_cast<size_t>(chunks),
                               std::numeric_limits<double>::infinity());
  ParallelForRanges(0, n, num_threads,
                    [&](int64_t i0, int64_t i1, int chunk) {
                      double mu = std::numeric_limits<double>::infinity();
                      for (int64_t i = i0; i < i1; ++i) {
                        double max_abs = 0.0;
                        const double* col = gram.ColData(i);
                        for (int64_t j = 0; j < n; ++j) {
                          if (j != i) {
                            max_abs = std::max(max_abs, std::fabs(col[j]));
                          }
                        }
                        mu = std::min(mu, max_abs);
                      }
                      chunk_mu[static_cast<size_t>(chunk)] = mu;
                    });
  double mu = std::numeric_limits<double>::infinity();
  for (double v : chunk_mu) mu = std::min(mu, v);
  return mu;
}

double SoftThreshold(double v, double t) {
  if (v > t) return v - t;
  if (v < -t) return v + t;
  return 0.0;
}

// The SYRK-backed Gram costs nn*(nn+1)*kk flops (half the GEMM's
// 2*nn*kk*nn); recorded so --metrics-out makes the win visible.
void RecordGramFlops(int64_t nn, int64_t kk) {
  FEDSC_METRIC_COUNTER("sc.ssc_admm.gram_flops").Add(nn * (nn + 1) * kk);
}

}  // namespace

double SscLambda(const Matrix& x, double alpha, int num_threads) {
  return SscLambdaFromGram(Gram(x, num_threads), alpha, num_threads);
}

double SscLambdaFromGram(const Matrix& gram, double alpha, int num_threads) {
  const double mu = MutualCoherenceFloor(gram, num_threads);
  return mu > 0.0 ? alpha / mu : alpha;
}

Result<SparseMatrix> SscSelfExpression(const Matrix& x,
                                       const SscAdmmOptions& options,
                                       SscAdmmInfo* info) {
  const int64_t n = x.rows();
  const int64_t num_points = x.cols();
  if (num_points < 2) {
    return Status::InvalidArgument("SSC needs at least 2 points");
  }
  if (options.alpha <= 1.0) {
    return Status::InvalidArgument("SSC alpha must exceed 1");
  }
  FEDSC_TRACE_SPAN("sc/ssc_admm", {{"points", num_points}, {"dim", n}});

  const Matrix gram = Gram(x, options.num_threads);  // X^T X, via Syrk
  RecordGramFlops(num_points, n);
  const double mu = MutualCoherenceFloor(gram, options.num_threads);
  if (mu <= 0.0) {
    return Status::FailedPrecondition(
        "all points are mutually orthogonal; self-expression is degenerate");
  }
  const double lambda = options.alpha / mu;
  const double rho = options.rho > 0.0 ? options.rho : options.alpha;

  // Precompute the Z-update operator. Z-update solves
  //   (lambda X^T X + rho I) Z = lambda X^T X + rho (C - U).
  // Small-N path: invert the N x N system directly. Large-N path (n < N):
  // Woodbury,
  //   (lambda G + rho I)^{-1} M
  //     = (1/rho) (M - lambda X^T (rho I_n + lambda X X^T)^{-1} X M).
  const bool use_woodbury = n < num_points;
  Matrix h_inverse;       // (lambda G + rho I)^{-1}, direct path
  Matrix s_inverse;       // (rho I_n + lambda X X^T)^{-1}, Woodbury path
  if (use_woodbury) {
    Matrix s = OuterGram(x, options.num_threads);  // X X^T, via Syrk
    RecordGramFlops(n, num_points);
    s *= lambda;
    for (int64_t i = 0; i < n; ++i) s(i, i) += rho;
    FEDSC_ASSIGN_OR_RETURN(s_inverse, SpdInverse(s));
  } else {
    Matrix h = gram;
    h *= lambda;
    for (int64_t i = 0; i < num_points; ++i) h(i, i) += rho;
    FEDSC_ASSIGN_OR_RETURN(h_inverse, SpdInverse(h));
  }

  Matrix c(num_points, num_points);
  Matrix u(num_points, num_points);
  Matrix z(num_points, num_points);
  Matrix rhs(num_points, num_points);
  Matrix xm;  // scratch for the Woodbury path
  Matrix sxm;
  if (use_woodbury) {
    xm = Matrix(n, num_points);
    sxm = Matrix(n, num_points);
  }

  // Applies (lambda G + rho I)^{-1} to `rhs`, writing into `z`.
  auto apply_inverse = [&](const Matrix& m, Matrix* out) {
    if (use_woodbury) {
      if (xm.cols() != m.cols()) {
        xm = Matrix(n, m.cols());
        sxm = Matrix(n, m.cols());
      }
      // (1/rho) (m - lambda X^T S^{-1} X m)
      Gemm(Trans::kNo, Trans::kNo, 1.0, x, m, 0.0, &xm, options.num_threads);
      Gemm(Trans::kNo, Trans::kNo, 1.0, s_inverse, xm, 0.0, &sxm,
           options.num_threads);
      *out = m;
      Gemm(Trans::kTrans, Trans::kNo, -lambda, x, sxm, 1.0, out,
           options.num_threads);
      *out *= 1.0 / rho;
    } else {
      Gemm(Trans::kNo, Trans::kNo, 1.0, h_inverse, m, 0.0, out,
           options.num_threads);
    }
  };

  // Affine mode: Sherman-Morrison data for (lambda G + rho I + rho 1 1^T),
  // plus the scaled dual of the 1^T Z = 1^T constraint.
  Vector h_ones;          // H * 1
  double affine_scale = 0.0;  // rho / (1 + rho * 1^T H 1)
  Vector u_affine;        // scaled dual, length N
  if (options.affine) {
    Matrix ones(num_points, 1);
    ones.Fill(1.0);
    Matrix h1(num_points, 1);
    apply_inverse(ones, &h1);
    h_ones = h1.Col(0);
    double dot_1h1 = 0.0;
    for (double v : h_ones) dot_1h1 += v;
    affine_scale = rho / (1.0 + rho * dot_1h1);
    u_affine.assign(static_cast<size_t>(num_points), 0.0);
  }

  Stopwatch deadline_timer;
  double residual = std::numeric_limits<double>::infinity();
  int iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    if (options.deadline_seconds > 0.0 &&
        deadline_timer.ElapsedSeconds() > options.deadline_seconds) {
      return Status::DeadlineExceeded("SSC ADMM exceeded its time budget of " +
                                      std::to_string(options.deadline_seconds) +
                                      "s");
    }
    // rhs = lambda G + rho (C - U) [+ rho 1 (1 - u_affine)^T in affine mode]
    rhs = c;
    rhs -= u;
    rhs *= rho;
    Axpy(lambda, gram.data(), rhs.data(), gram.size());
    if (options.affine) {
      for (int64_t j = 0; j < num_points; ++j) {
        const double w = rho * (1.0 - u_affine[static_cast<size_t>(j)]);
        double* col = rhs.ColData(j);
        for (int64_t i = 0; i < num_points; ++i) col[i] += w;
      }
    }

    apply_inverse(rhs, &z);
    if (options.affine) {
      // Sherman-Morrison correction for the rho 1 1^T term:
      // Z -= (H 1) * affine_scale * (1^T Z).
      for (int64_t j = 0; j < num_points; ++j) {
        double* col = z.ColData(j);
        double colsum = 0.0;
        for (int64_t i = 0; i < num_points; ++i) colsum += col[i];
        Axpy(-affine_scale * colsum, h_ones.data(), col, num_points);
      }
      // Dual update for 1^T Z = 1^T.
      for (int64_t j = 0; j < num_points; ++j) {
        double colsum = 0.0;
        const double* col = z.ColData(j);
        for (int64_t i = 0; i < num_points; ++i) colsum += col[i];
        u_affine[static_cast<size_t>(j)] += colsum - 1.0;
      }
    }

    // C-update: soft-threshold Z + U at 1/rho, zero the diagonal. Track the
    // largest change for the stopping rule. Column panels are disjoint, and
    // the stopping-rule maxima reduce per chunk then combine — max is exact
    // in any order, so the residual is bit-identical across thread counts.
    const double threshold = 1.0 / rho;
    const int chunks = std::max(
        1, ParallelChunkCount(0, num_points, options.num_threads));
    std::vector<double> chunk_dc(static_cast<size_t>(chunks), 0.0);
    std::vector<double> chunk_zc(static_cast<size_t>(chunks), 0.0);
    ParallelForRanges(
        0, num_points, options.num_threads,
        [&](int64_t j0, int64_t j1, int chunk) {
          double max_dc = 0.0;
          double max_zc = 0.0;
          for (int64_t j = j0; j < j1; ++j) {
            double* cj = c.ColData(j);
            const double* zj = z.ColData(j);
            double* uj = u.ColData(j);
            for (int64_t i = 0; i < num_points; ++i) {
              const double next =
                  i == j ? 0.0 : SoftThreshold(zj[i] + uj[i], threshold);
              max_dc = std::max(max_dc, std::fabs(next - cj[i]));
              cj[i] = next;
              const double gap = zj[i] - next;
              max_zc = std::max(max_zc, std::fabs(gap));
              uj[i] += gap;  // dual update folded into the same pass
            }
          }
          chunk_dc[static_cast<size_t>(chunk)] = max_dc;
          chunk_zc[static_cast<size_t>(chunk)] = max_zc;
        });

    residual = 0.0;
    for (int t = 0; t < chunks; ++t) {
      residual = std::max(residual, chunk_dc[static_cast<size_t>(t)]);
      residual = std::max(residual, chunk_zc[static_cast<size_t>(t)]);
    }
    if (residual < options.tol) break;
  }
  const bool converged = residual < options.tol;
  // The break above skips the loop's increment, so count it explicitly.
  const int iterations = converged ? iteration + 1 : iteration;
  if (!converged) {
    FEDSC_LOG(Debug) << "SSC ADMM stopped at max_iterations with residual "
                     << residual;
  }
  if (info != nullptr) {
    info->iterations = iterations;
    info->final_residual = residual;
    info->converged = converged;
  }
  FEDSC_METRIC_COUNTER("sc.ssc_admm.solves").Increment();
  FEDSC_METRIC_COUNTER("sc.ssc_admm.iterations").Add(iterations);
  if (converged) FEDSC_METRIC_COUNTER("sc.ssc_admm.converged").Increment();
  FEDSC_METRIC_HISTOGRAM("sc.ssc_admm.iterations_per_solve").Record(iterations);
  // Last-writer-wins across concurrent device solves, hence kExecution.
  FEDSC_METRIC_GAUGE("sc.ssc_admm.last_residual", MetricKind::kExecution)
      .Set(residual);

  return SparsifyCoefficients(c, options.top_k, options.drop_tol,
                              options.num_threads);
}

namespace {

// Column-block width for the sketched solve. A pure constant (never derived
// from the thread count): the per-block GEMM shapes, stopping decisions, and
// triplet order depend only on (N, kSketchBlockCols), so results are
// bit-identical for every thread count.
constexpr int64_t kSketchBlockCols = 256;

}  // namespace

Result<SparseMatrix> SscSketchedSelfExpression(const Matrix& x,
                                               const SketchResult& sketch,
                                               const SscAdmmOptions& options,
                                               SscAdmmInfo* info) {
  const Matrix& b = sketch.dictionary;
  const int64_t n = x.rows();
  const int64_t num_points = x.cols();
  const int64_t num_atoms = b.cols();
  if (num_points < 1) {
    return Status::InvalidArgument("sketched SSC needs at least 1 point");
  }
  if (num_atoms < 1) {
    return Status::InvalidArgument("sketched SSC needs a non-empty "
                                   "dictionary");
  }
  if (b.rows() != n) {
    return Status::InvalidArgument(
        "dictionary ambient dim " + std::to_string(b.rows()) +
        " does not match data dim " + std::to_string(n));
  }
  if (options.alpha <= 1.0) {
    return Status::InvalidArgument("SSC alpha must exceed 1");
  }
  if (options.affine) {
    return Status::InvalidArgument(
        "the affine constraint is not supported on the sketched SSC path");
  }
  FEDSC_TRACE_SPAN("sc/ssc_admm_sketched",
                   {{"points", num_points}, {"atoms", num_atoms}, {"dim", n}});

  // Landmark sketches: atom index of each data column that is a landmark
  // (-1 otherwise); that atom's coefficient is pinned to zero.
  std::vector<int64_t> self_atom(static_cast<size_t>(num_points), -1);
  for (size_t a = 0; a < sketch.landmarks.size(); ++a) {
    self_atom[static_cast<size_t>(sketch.landmarks[a])] =
        static_cast<int64_t>(a);
  }

  // lambda = alpha / mu with mu = min_j max_a |b_a^T x_j| (self atom
  // excluded) — the dictionary/data analogue of Proposition 1's mutual
  // coherence floor. Min-of-max reduces exactly in any order.
  const int mu_chunks = std::max(
      1, ParallelChunkCount(0, num_points, options.num_threads));
  std::vector<double> chunk_mu(static_cast<size_t>(mu_chunks),
                               std::numeric_limits<double>::infinity());
  ParallelForRanges(
      0, num_points, options.num_threads,
      [&](int64_t j0, int64_t j1, int chunk) {
        Vector scores(static_cast<size_t>(num_atoms), 0.0);
        double mu = std::numeric_limits<double>::infinity();
        for (int64_t j = j0; j < j1; ++j) {
          Gemv(Trans::kTrans, 1.0, b, x.ColData(j), 0.0, scores.data());
          const int64_t forbidden = self_atom[static_cast<size_t>(j)];
          double max_abs = 0.0;
          for (int64_t a = 0; a < num_atoms; ++a) {
            if (a == forbidden) continue;
            max_abs = std::max(max_abs,
                               std::fabs(scores[static_cast<size_t>(a)]));
          }
          mu = std::min(mu, max_abs);
        }
        chunk_mu[static_cast<size_t>(chunk)] = mu;
      });
  double mu = std::numeric_limits<double>::infinity();
  for (double v : chunk_mu) mu = std::min(mu, v);
  if (!(mu > 0.0)) {
    return Status::FailedPrecondition(
        "every dictionary atom is orthogonal to some point; sketched "
        "self-expression is degenerate");
  }
  const double lambda = options.alpha / mu;
  const double rho = options.rho > 0.0 ? options.rho : options.alpha;

  // Shared d x d Z-update operator: (lambda B^T B + rho I)^{-1}.
  Matrix h = Gram(b, options.num_threads);
  RecordGramFlops(num_atoms, n);
  h *= lambda;
  for (int64_t a = 0; a < num_atoms; ++a) h(a, a) += rho;
  FEDSC_ASSIGN_OR_RETURN(const Matrix h_inverse, SpdInverse(h));

  const int64_t num_blocks =
      (num_points + kSketchBlockCols - 1) / kSketchBlockCols;
  std::vector<std::vector<Triplet>> chunk_triplets(static_cast<size_t>(
      std::max(1, ParallelChunkCount(0, num_blocks, options.num_threads))));
  std::vector<int> block_iterations(static_cast<size_t>(num_blocks), 0);
  std::vector<double> block_residual(static_cast<size_t>(num_blocks), 0.0);
  std::vector<char> block_converged(static_cast<size_t>(num_blocks), 0);
  std::atomic<bool> deadline_hit{false};
  Stopwatch deadline_timer;

  ParallelForRanges(0, num_blocks, options.num_threads, [&](int64_t blk0,
                                                            int64_t blk1,
                                                            int chunk) {
    std::vector<Triplet>& triplets =
        chunk_triplets[static_cast<size_t>(chunk)];
    std::vector<int64_t> order(static_cast<size_t>(num_atoms));
    for (int64_t blk = blk0; blk < blk1; ++blk) {
      if (options.deadline_seconds > 0.0 &&
          deadline_timer.ElapsedSeconds() > options.deadline_seconds) {
        deadline_hit.store(true, std::memory_order_relaxed);
        return;
      }
      const int64_t j0 = blk * kSketchBlockCols;
      const int64_t j1 = std::min(num_points, j0 + kSketchBlockCols);
      const int64_t nb = j1 - j0;
      const Matrix xb = x.ColRange(j0, j1);
      Matrix g(num_atoms, nb);  // lambda B^T X_blk, reused every iteration
      Gemm(Trans::kTrans, Trans::kNo, lambda, b, xb, 0.0, &g);

      Matrix c(num_atoms, nb);
      Matrix u(num_atoms, nb);
      Matrix z(num_atoms, nb);
      Matrix rhs(num_atoms, nb);
      const double threshold = 1.0 / rho;
      double residual = std::numeric_limits<double>::infinity();
      int iteration = 0;
      for (; iteration < options.max_iterations; ++iteration) {
        rhs = c;
        rhs -= u;
        rhs *= rho;
        Axpy(1.0, g.data(), rhs.data(), g.size());
        Gemm(Trans::kNo, Trans::kNo, 1.0, h_inverse, rhs, 0.0, &z);

        double max_dc = 0.0;
        double max_zc = 0.0;
        for (int64_t jj = 0; jj < nb; ++jj) {
          const int64_t forbidden =
              self_atom[static_cast<size_t>(j0 + jj)];
          double* cj = c.ColData(jj);
          const double* zj = z.ColData(jj);
          double* uj = u.ColData(jj);
          for (int64_t a = 0; a < num_atoms; ++a) {
            const double next =
                a == forbidden ? 0.0
                               : SoftThreshold(zj[a] + uj[a], threshold);
            max_dc = std::max(max_dc, std::fabs(next - cj[a]));
            cj[a] = next;
            const double gap = zj[a] - next;
            max_zc = std::max(max_zc, std::fabs(gap));
            uj[a] += gap;
          }
        }
        residual = std::max(max_dc, max_zc);
        if (residual < options.tol) break;
      }
      const bool converged = residual < options.tol;
      block_iterations[static_cast<size_t>(blk)] =
          converged ? iteration + 1 : iteration;
      block_residual[static_cast<size_t>(blk)] = residual;
      block_converged[static_cast<size_t>(blk)] = converged ? 1 : 0;

      // Sparsify the block's columns in place (same top-k / drop-tol rule
      // as SparsifyCoefficients, over the d atoms).
      for (int64_t jj = 0; jj < nb; ++jj) {
        const int64_t j = j0 + jj;
        const double* col = c.ColData(jj);
        double max_abs = 0.0;
        for (int64_t a = 0; a < num_atoms; ++a) {
          max_abs = std::max(max_abs, std::fabs(col[a]));
        }
        if (max_abs <= 0.0) continue;
        const double drop = options.drop_tol * max_abs;
        if (options.top_k > 0 && options.top_k < num_atoms) {
          std::iota(order.begin(), order.end(), 0);
          const auto kth = order.begin() + options.top_k;
          std::nth_element(order.begin(), kth, order.end(),
                           [&](int64_t p, int64_t q) {
                             const double fp = std::fabs(col[p]);
                             const double fq = std::fabs(col[q]);
                             if (fp != fq) return fp > fq;
                             return p < q;
                           });
          std::sort(order.begin(), kth);
          for (auto it = order.begin(); it != kth; ++it) {
            const double v = col[*it];
            if (std::fabs(v) > drop) triplets.push_back({*it, j, v});
          }
        } else {
          for (int64_t a = 0; a < num_atoms; ++a) {
            const double v = col[a];
            if (std::fabs(v) > drop) triplets.push_back({a, j, v});
          }
        }
      }
    }
  });

  if (deadline_hit.load(std::memory_order_relaxed)) {
    return Status::DeadlineExceeded(
        "sketched SSC ADMM exceeded its time budget of " +
        std::to_string(options.deadline_seconds) + "s");
  }

  int iterations = 0;
  double residual = 0.0;
  bool converged = true;
  for (int64_t blk = 0; blk < num_blocks; ++blk) {
    iterations = std::max(iterations,
                          block_iterations[static_cast<size_t>(blk)]);
    residual = std::max(residual, block_residual[static_cast<size_t>(blk)]);
    converged = converged && block_converged[static_cast<size_t>(blk)] != 0;
  }
  if (!converged) {
    FEDSC_LOG(Debug) << "sketched SSC ADMM stopped at max_iterations with "
                     << "residual " << residual;
  }
  if (info != nullptr) {
    info->iterations = iterations;
    info->final_residual = residual;
    info->converged = converged;
  }
  FEDSC_METRIC_COUNTER("sc.ssc_admm.solves").Increment();
  FEDSC_METRIC_COUNTER("sc.ssc_admm.sketched_solves").Increment();
  FEDSC_METRIC_COUNTER("sc.ssc_admm.iterations").Add(iterations);
  if (converged) FEDSC_METRIC_COUNTER("sc.ssc_admm.converged").Increment();
  FEDSC_METRIC_HISTOGRAM("sc.ssc_admm.iterations_per_solve")
      .Record(iterations);
  FEDSC_METRIC_GAUGE("sc.ssc_admm.last_residual", MetricKind::kExecution)
      .Set(residual);

  std::vector<Triplet> triplets;
  for (const auto& chunk : chunk_triplets) {
    triplets.insert(triplets.end(), chunk.begin(), chunk.end());
  }
  return SparseMatrix::FromTriplets(num_atoms, num_points,
                                    std::move(triplets));
}

}  // namespace fedsc
