#include "sc/ssc_admm.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "sc/affinity.h"

namespace fedsc {

namespace {

// mu = min_i max_{j != i} |x_j^T x_i|, from the Gram matrix. Column panels
// reduce to a per-chunk min-of-max, combined in chunk order below — min and
// max are exact in any order (the same reduction shape as the ADMM stopping
// rule), so the result is bit-identical for every thread count.
double MutualCoherenceFloor(const Matrix& gram, int num_threads) {
  const int64_t n = gram.rows();
  const int chunks =
      std::max(1, ParallelChunkCount(0, n, num_threads));
  std::vector<double> chunk_mu(static_cast<size_t>(chunks),
                               std::numeric_limits<double>::infinity());
  ParallelForRanges(0, n, num_threads,
                    [&](int64_t i0, int64_t i1, int chunk) {
                      double mu = std::numeric_limits<double>::infinity();
                      for (int64_t i = i0; i < i1; ++i) {
                        double max_abs = 0.0;
                        const double* col = gram.ColData(i);
                        for (int64_t j = 0; j < n; ++j) {
                          if (j != i) {
                            max_abs = std::max(max_abs, std::fabs(col[j]));
                          }
                        }
                        mu = std::min(mu, max_abs);
                      }
                      chunk_mu[static_cast<size_t>(chunk)] = mu;
                    });
  double mu = std::numeric_limits<double>::infinity();
  for (double v : chunk_mu) mu = std::min(mu, v);
  return mu;
}

double SoftThreshold(double v, double t) {
  if (v > t) return v - t;
  if (v < -t) return v + t;
  return 0.0;
}

// The SYRK-backed Gram costs nn*(nn+1)*kk flops (half the GEMM's
// 2*nn*kk*nn); recorded so --metrics-out makes the win visible.
void RecordGramFlops(int64_t nn, int64_t kk) {
  FEDSC_METRIC_COUNTER("sc.ssc_admm.gram_flops").Add(nn * (nn + 1) * kk);
}

}  // namespace

double SscLambda(const Matrix& x, double alpha, int num_threads) {
  return SscLambdaFromGram(Gram(x, num_threads), alpha, num_threads);
}

double SscLambdaFromGram(const Matrix& gram, double alpha, int num_threads) {
  const double mu = MutualCoherenceFloor(gram, num_threads);
  return mu > 0.0 ? alpha / mu : alpha;
}

Result<SparseMatrix> SscSelfExpression(const Matrix& x,
                                       const SscAdmmOptions& options,
                                       SscAdmmInfo* info) {
  const int64_t n = x.rows();
  const int64_t num_points = x.cols();
  if (num_points < 2) {
    return Status::InvalidArgument("SSC needs at least 2 points");
  }
  if (options.alpha <= 1.0) {
    return Status::InvalidArgument("SSC alpha must exceed 1");
  }
  FEDSC_TRACE_SPAN("sc/ssc_admm", {{"points", num_points}, {"dim", n}});

  const Matrix gram = Gram(x, options.num_threads);  // X^T X, via Syrk
  RecordGramFlops(num_points, n);
  const double mu = MutualCoherenceFloor(gram, options.num_threads);
  if (mu <= 0.0) {
    return Status::FailedPrecondition(
        "all points are mutually orthogonal; self-expression is degenerate");
  }
  const double lambda = options.alpha / mu;
  const double rho = options.rho > 0.0 ? options.rho : options.alpha;

  // Precompute the Z-update operator. Z-update solves
  //   (lambda X^T X + rho I) Z = lambda X^T X + rho (C - U).
  // Small-N path: invert the N x N system directly. Large-N path (n < N):
  // Woodbury,
  //   (lambda G + rho I)^{-1} M
  //     = (1/rho) (M - lambda X^T (rho I_n + lambda X X^T)^{-1} X M).
  const bool use_woodbury = n < num_points;
  Matrix h_inverse;       // (lambda G + rho I)^{-1}, direct path
  Matrix s_inverse;       // (rho I_n + lambda X X^T)^{-1}, Woodbury path
  if (use_woodbury) {
    Matrix s = OuterGram(x, options.num_threads);  // X X^T, via Syrk
    RecordGramFlops(n, num_points);
    s *= lambda;
    for (int64_t i = 0; i < n; ++i) s(i, i) += rho;
    FEDSC_ASSIGN_OR_RETURN(s_inverse, SpdInverse(s));
  } else {
    Matrix h = gram;
    h *= lambda;
    for (int64_t i = 0; i < num_points; ++i) h(i, i) += rho;
    FEDSC_ASSIGN_OR_RETURN(h_inverse, SpdInverse(h));
  }

  Matrix c(num_points, num_points);
  Matrix u(num_points, num_points);
  Matrix z(num_points, num_points);
  Matrix rhs(num_points, num_points);
  Matrix xm;  // scratch for the Woodbury path
  Matrix sxm;
  if (use_woodbury) {
    xm = Matrix(n, num_points);
    sxm = Matrix(n, num_points);
  }

  // Applies (lambda G + rho I)^{-1} to `rhs`, writing into `z`.
  auto apply_inverse = [&](const Matrix& m, Matrix* out) {
    if (use_woodbury) {
      if (xm.cols() != m.cols()) {
        xm = Matrix(n, m.cols());
        sxm = Matrix(n, m.cols());
      }
      // (1/rho) (m - lambda X^T S^{-1} X m)
      Gemm(Trans::kNo, Trans::kNo, 1.0, x, m, 0.0, &xm, options.num_threads);
      Gemm(Trans::kNo, Trans::kNo, 1.0, s_inverse, xm, 0.0, &sxm,
           options.num_threads);
      *out = m;
      Gemm(Trans::kTrans, Trans::kNo, -lambda, x, sxm, 1.0, out,
           options.num_threads);
      *out *= 1.0 / rho;
    } else {
      Gemm(Trans::kNo, Trans::kNo, 1.0, h_inverse, m, 0.0, out,
           options.num_threads);
    }
  };

  // Affine mode: Sherman-Morrison data for (lambda G + rho I + rho 1 1^T),
  // plus the scaled dual of the 1^T Z = 1^T constraint.
  Vector h_ones;          // H * 1
  double affine_scale = 0.0;  // rho / (1 + rho * 1^T H 1)
  Vector u_affine;        // scaled dual, length N
  if (options.affine) {
    Matrix ones(num_points, 1);
    ones.Fill(1.0);
    Matrix h1(num_points, 1);
    apply_inverse(ones, &h1);
    h_ones = h1.Col(0);
    double dot_1h1 = 0.0;
    for (double v : h_ones) dot_1h1 += v;
    affine_scale = rho / (1.0 + rho * dot_1h1);
    u_affine.assign(static_cast<size_t>(num_points), 0.0);
  }

  Stopwatch deadline_timer;
  double residual = std::numeric_limits<double>::infinity();
  int iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    if (options.deadline_seconds > 0.0 &&
        deadline_timer.ElapsedSeconds() > options.deadline_seconds) {
      return Status::DeadlineExceeded("SSC ADMM exceeded its time budget of " +
                                      std::to_string(options.deadline_seconds) +
                                      "s");
    }
    // rhs = lambda G + rho (C - U) [+ rho 1 (1 - u_affine)^T in affine mode]
    rhs = c;
    rhs -= u;
    rhs *= rho;
    Axpy(lambda, gram.data(), rhs.data(), gram.size());
    if (options.affine) {
      for (int64_t j = 0; j < num_points; ++j) {
        const double w = rho * (1.0 - u_affine[static_cast<size_t>(j)]);
        double* col = rhs.ColData(j);
        for (int64_t i = 0; i < num_points; ++i) col[i] += w;
      }
    }

    apply_inverse(rhs, &z);
    if (options.affine) {
      // Sherman-Morrison correction for the rho 1 1^T term:
      // Z -= (H 1) * affine_scale * (1^T Z).
      for (int64_t j = 0; j < num_points; ++j) {
        double* col = z.ColData(j);
        double colsum = 0.0;
        for (int64_t i = 0; i < num_points; ++i) colsum += col[i];
        Axpy(-affine_scale * colsum, h_ones.data(), col, num_points);
      }
      // Dual update for 1^T Z = 1^T.
      for (int64_t j = 0; j < num_points; ++j) {
        double colsum = 0.0;
        const double* col = z.ColData(j);
        for (int64_t i = 0; i < num_points; ++i) colsum += col[i];
        u_affine[static_cast<size_t>(j)] += colsum - 1.0;
      }
    }

    // C-update: soft-threshold Z + U at 1/rho, zero the diagonal. Track the
    // largest change for the stopping rule. Column panels are disjoint, and
    // the stopping-rule maxima reduce per chunk then combine — max is exact
    // in any order, so the residual is bit-identical across thread counts.
    const double threshold = 1.0 / rho;
    const int chunks = std::max(
        1, ParallelChunkCount(0, num_points, options.num_threads));
    std::vector<double> chunk_dc(static_cast<size_t>(chunks), 0.0);
    std::vector<double> chunk_zc(static_cast<size_t>(chunks), 0.0);
    ParallelForRanges(
        0, num_points, options.num_threads,
        [&](int64_t j0, int64_t j1, int chunk) {
          double max_dc = 0.0;
          double max_zc = 0.0;
          for (int64_t j = j0; j < j1; ++j) {
            double* cj = c.ColData(j);
            const double* zj = z.ColData(j);
            double* uj = u.ColData(j);
            for (int64_t i = 0; i < num_points; ++i) {
              const double next =
                  i == j ? 0.0 : SoftThreshold(zj[i] + uj[i], threshold);
              max_dc = std::max(max_dc, std::fabs(next - cj[i]));
              cj[i] = next;
              const double gap = zj[i] - next;
              max_zc = std::max(max_zc, std::fabs(gap));
              uj[i] += gap;  // dual update folded into the same pass
            }
          }
          chunk_dc[static_cast<size_t>(chunk)] = max_dc;
          chunk_zc[static_cast<size_t>(chunk)] = max_zc;
        });

    residual = 0.0;
    for (int t = 0; t < chunks; ++t) {
      residual = std::max(residual, chunk_dc[static_cast<size_t>(t)]);
      residual = std::max(residual, chunk_zc[static_cast<size_t>(t)]);
    }
    if (residual < options.tol) break;
  }
  const bool converged = residual < options.tol;
  // The break above skips the loop's increment, so count it explicitly.
  const int iterations = converged ? iteration + 1 : iteration;
  if (!converged) {
    FEDSC_LOG(Debug) << "SSC ADMM stopped at max_iterations with residual "
                     << residual;
  }
  if (info != nullptr) {
    info->iterations = iterations;
    info->final_residual = residual;
    info->converged = converged;
  }
  FEDSC_METRIC_COUNTER("sc.ssc_admm.solves").Increment();
  FEDSC_METRIC_COUNTER("sc.ssc_admm.iterations").Add(iterations);
  if (converged) FEDSC_METRIC_COUNTER("sc.ssc_admm.converged").Increment();
  FEDSC_METRIC_HISTOGRAM("sc.ssc_admm.iterations_per_solve").Record(iterations);
  // Last-writer-wins across concurrent device solves, hence kExecution.
  FEDSC_METRIC_GAUGE("sc.ssc_admm.last_residual", MetricKind::kExecution)
      .Set(residual);

  return SparsifyCoefficients(c, options.top_k, options.drop_tol,
                              options.num_threads);
}

}  // namespace fedsc
