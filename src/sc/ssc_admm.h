// Sparse subspace clustering self-expression via ADMM (Elhamifar & Vidal,
// ref [9] of the paper; ADMM per Boyd et al., ref [50]).
//
// Solves the Lasso program (Eq. 2 of the paper) for all points at once:
//
//   min_C  ||C||_1 + lambda/2 ||X - X C||_F^2   s.t.  diag(C) = 0
//
// with lambda = alpha / mu, mu = min_i max_{j != i} |x_j^T x_i| (Proposition
// 1 of Elhamifar-Vidal; the paper uses alpha = 50). The linear system of the
// Z-update is inverted once through whichever of the N x N and n x n
// (Woodbury) formulations is smaller, so the per-iteration cost is
// O(min(n, N) * N^2).

#ifndef FEDSC_SC_SSC_ADMM_H_
#define FEDSC_SC_SSC_ADMM_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "sc/sketch.h"

namespace fedsc {

struct SscAdmmOptions {
  // lambda = alpha / mu. Must be > 1 for the Lasso solution to be nonzero.
  double alpha = 50.0;
  // Adds the affine constraint 1^T c_i = 1, for data on a union of *affine*
  // subspaces (Elhamifar-Vidal Section 4.1; e.g. motion trajectories). The
  // constraint enters the ADMM as a penalty rho/2 ||1^T C - 1^T||^2 with its
  // own dual variable, and the augmented system is inverted with a
  // Sherman-Morrison rank-1 update on top of the usual operator.
  bool affine = false;
  // ADMM penalty parameter; <= 0 picks rho = alpha (Elhamifar-Vidal's
  // reference implementation default).
  double rho = -1.0;
  int max_iterations = 200;
  // Stop when max(||Z - C||_inf, ||C - C_prev||_inf) < tol.
  double tol = 2e-4;
  // Sparsification of the returned coefficients (see SparsifyCoefficients).
  int64_t top_k = 0;
  double drop_tol = 1e-6;
  // Wall-clock budget; > 0 aborts with DeadlineExceeded when the solve
  // overruns it (the paper's Table III enforces a 1-day cut-off on
  // centralized SSC the same way).
  double deadline_seconds = 0.0;
  // Workers for the matrix-form updates: the Gram/Z-update GEMMs and the
  // soft-threshold pass partition their output column panels, and the final
  // sparsification fans out per column — all bit-identical for every thread
  // count.
  int num_threads = 1;
};

// How a solve went, for callers that want to report or assert on convergence
// (the iteration count and residual also feed the sc.ssc_admm.* metrics).
struct SscAdmmInfo {
  int iterations = 0;        // ADMM iterations actually run
  double final_residual = 0.0;  // max(||Z-C||_inf, ||C-C_prev||_inf) at exit
  bool converged = false;    // residual dropped below tol within the budget
};

// Sparse self-expression matrix C for the columns of x (which should be
// l2-normalized). Requires N >= 2. `info`, when non-null, receives the
// solve's convergence record.
Result<SparseMatrix> SscSelfExpression(const Matrix& x,
                                       const SscAdmmOptions& options = {},
                                       SscAdmmInfo* info = nullptr);

// Sketched variant (Traganitis-Giannakis): solves the same Lasso with the
// d-column dictionary B = sketch.dictionary in place of X,
//
//   min_C ||C||_1 + lambda/2 ||X - B C||_F^2,   C in R^{d x N},
//
// so the Z-update inverts one d x d operator shared by every column and the
// per-iteration cost is O(d^2 N) instead of O(N^2 min(n, N)). The Lasso
// separates per column, so columns are processed in fixed-size blocks (a
// pure function of N, never of the thread count) with block-local stopping;
// results are bit-identical for every thread count. For landmark sketches a
// landmark column's own atom is pinned to zero (the diag(C) = 0 analogue).
// The affine mode is not supported on this path. Returns the d x N
// coefficient matrix.
Result<SparseMatrix> SscSketchedSelfExpression(
    const Matrix& x, const SketchResult& sketch,
    const SscAdmmOptions& options = {}, SscAdmmInfo* info = nullptr);

// The lambda the solver would use for `x` (exposed for tests/diagnostics).
// Builds the Gram with `num_threads` workers via the Syrk hot path.
double SscLambda(const Matrix& x, double alpha, int num_threads = 1);

// Same, from a Gram the caller already has (e.g. the one SscSelfExpression
// builds anyway) so the X^T X product is never paid twice.
double SscLambdaFromGram(const Matrix& gram, double alpha,
                         int num_threads = 1);

}  // namespace fedsc

#endif  // FEDSC_SC_SSC_ADMM_H_
