#include "sc/ssc_omp.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"

namespace fedsc {

Result<SparseMatrix> SscOmpSketchedSelfExpression(const Matrix& x,
                                                  const SketchResult& sketch,
                                                  const SscOmpOptions& options) {
  const Matrix& dictionary = sketch.dictionary;
  const int64_t n = x.rows();
  const int64_t num_points = x.cols();
  const int64_t num_atoms = dictionary.cols();
  if (num_atoms < 1) {
    return Status::InvalidArgument("sketched SSC-OMP needs a non-empty "
                                   "dictionary");
  }
  if (dictionary.rows() != n) {
    return Status::InvalidArgument(
        "dictionary ambient dim " + std::to_string(dictionary.rows()) +
        " does not match data dim " + std::to_string(n));
  }
  if (options.max_support < 1) {
    return Status::InvalidArgument("SSC-OMP max_support must be >= 1");
  }

  // Landmark sketches: atom index of each data column that is a landmark
  // (-1 otherwise), so a landmark column never expresses itself through its
  // own atom.
  std::vector<int64_t> self_atom(static_cast<size_t>(num_points), -1);
  for (size_t a = 0; a < sketch.landmarks.size(); ++a) {
    self_atom[static_cast<size_t>(sketch.landmarks[a])] =
        static_cast<int64_t>(a);
  }

  // Same fan-out/concatenation pattern as the exact path: fixed column
  // ranges, per-range triplet lists stitched in column order.
  std::vector<std::vector<Triplet>> chunk_triplets(static_cast<size_t>(
      std::max(1, ParallelChunkCount(0, num_points, options.num_threads))));

  ParallelForRanges(0, num_points, options.num_threads, [&](int64_t c0,
                                                            int64_t c1,
                                                            int chunk) {
    std::vector<Triplet>& triplets =
        chunk_triplets[static_cast<size_t>(chunk)];
    Vector residual(static_cast<size_t>(n), 0.0);
    Vector scores(static_cast<size_t>(num_atoms), 0.0);
    std::vector<int64_t> support;
    std::vector<char> in_support(static_cast<size_t>(num_atoms), 0);

    for (int64_t j = c0; j < c1; ++j) {
      const int64_t forbidden = self_atom[static_cast<size_t>(j)];
      const int64_t k_max = std::min<int64_t>(
          options.max_support, num_atoms - (forbidden >= 0 ? 1 : 0));
      if (k_max < 1) continue;
      std::copy(x.ColData(j), x.ColData(j) + n, residual.begin());
      support.clear();
      std::fill(in_support.begin(), in_support.end(), 0);
      if (forbidden >= 0) in_support[static_cast<size_t>(forbidden)] = 1;
      Vector coeffs;

      for (int64_t step = 0; step < k_max; ++step) {
        if (Norm2(residual.data(), n) < options.residual_tol) break;
        Gemv(Trans::kTrans, 1.0, dictionary, residual.data(), 0.0,
             scores.data());
        int64_t best = -1;
        double best_score = 0.0;
        for (int64_t a = 0; a < num_atoms; ++a) {
          if (in_support[static_cast<size_t>(a)]) continue;
          const double s = std::fabs(scores[static_cast<size_t>(a)]);
          if (s > best_score) {
            best_score = s;
            best = a;
          }
        }
        if (best < 0 || best_score <= 1e-14) break;
        support.push_back(best);
        in_support[static_cast<size_t>(best)] = 1;

        const Matrix sub = dictionary.GatherCols(support);
        Matrix gram = Gram(sub);
        for (int64_t d = 0; d < gram.rows(); ++d) gram(d, d) += 1e-12;
        const Vector rhs = Gemv(Trans::kTrans, sub, x.Col(j));
        auto solved = SolveSpd(gram, Matrix::FromColumn(rhs));
        if (!solved.ok()) break;
        coeffs = solved->Col(0);

        std::copy(x.ColData(j), x.ColData(j) + n, residual.begin());
        Gemv(Trans::kNo, -1.0, sub, coeffs.data(), 1.0, residual.data());
      }

      for (size_t t = 0; t < support.size(); ++t) {
        if (coeffs.size() > t && coeffs[t] != 0.0) {
          triplets.push_back({support[t], j, coeffs[t]});
        }
      }
    }
  });

  std::vector<Triplet> triplets;
  for (const auto& chunk : chunk_triplets) {
    triplets.insert(triplets.end(), chunk.begin(), chunk.end());
  }
  return SparseMatrix::FromTriplets(num_atoms, num_points,
                                    std::move(triplets));
}

Result<SparseMatrix> SscOmpSelfExpression(const Matrix& x,
                                          const SscOmpOptions& options) {
  const int64_t n = x.rows();
  const int64_t num_points = x.cols();
  if (num_points < 2) {
    return Status::InvalidArgument("SSC-OMP needs at least 2 points");
  }
  if (options.max_support < 1) {
    return Status::InvalidArgument("SSC-OMP max_support must be >= 1");
  }
  const int64_t k_max =
      std::min<int64_t>(options.max_support, num_points - 1);

  // Each column's pursuit is independent: the solves fan out over fixed
  // column ranges, each range collecting its triplets locally. The per-range
  // lists concatenate in column order below, reproducing the serial triplet
  // order exactly (FromTriplets sums duplicates in input order, so order is
  // part of the determinism contract).
  std::vector<std::vector<Triplet>> chunk_triplets(static_cast<size_t>(
      std::max(1, ParallelChunkCount(0, num_points, options.num_threads))));

  ParallelForRanges(0, num_points, options.num_threads, [&](int64_t c0,
                                                            int64_t c1,
                                                            int chunk) {
    std::vector<Triplet>& triplets =
        chunk_triplets[static_cast<size_t>(chunk)];
    triplets.reserve(static_cast<size_t>(k_max * (c1 - c0)));

    Vector residual(static_cast<size_t>(n), 0.0);
    Vector scores(static_cast<size_t>(num_points), 0.0);
    std::vector<int64_t> support;
    std::vector<char> in_support(static_cast<size_t>(num_points), 0);

    for (int64_t j = c0; j < c1; ++j) {
      std::copy(x.ColData(j), x.ColData(j) + n, residual.begin());
      support.clear();
      std::fill(in_support.begin(), in_support.end(), 0);
      in_support[static_cast<size_t>(j)] = 1;  // c_jj = 0
      Vector coeffs;

      for (int64_t step = 0; step < k_max; ++step) {
        if (Norm2(residual.data(), n) < options.residual_tol) break;
        // Most correlated unused atom.
        Gemv(Trans::kTrans, 1.0, x, residual.data(), 0.0, scores.data());
        int64_t best = -1;
        double best_score = 0.0;
        for (int64_t i = 0; i < num_points; ++i) {
          if (in_support[static_cast<size_t>(i)]) continue;
          const double s = std::fabs(scores[static_cast<size_t>(i)]);
          if (s > best_score) {
            best_score = s;
            best = i;
          }
        }
        if (best < 0 || best_score <= 1e-14) break;
        support.push_back(best);
        in_support[static_cast<size_t>(best)] = 1;

        // Least squares on the current support via normal equations
        // (supports stay tiny, and a diagonal jitter guards collinear
        // atoms). Gram runs on the symmetric Syrk kernel; at these sizes
        // that is the panel path, bit-identical to the old GEMM-backed Gram.
        const Matrix sub = x.GatherCols(support);
        Matrix gram = Gram(sub);
        for (int64_t d = 0; d < gram.rows(); ++d) gram(d, d) += 1e-12;
        const Vector rhs = Gemv(Trans::kTrans, sub, x.Col(j));
        auto solved = SolveSpd(gram, Matrix::FromColumn(rhs));
        if (!solved.ok()) break;
        coeffs = solved->Col(0);

        // residual = x_j - sub * coeffs
        std::copy(x.ColData(j), x.ColData(j) + n, residual.begin());
        Gemv(Trans::kNo, -1.0, sub, coeffs.data(), 1.0, residual.data());
      }

      for (size_t t = 0; t < support.size(); ++t) {
        if (coeffs.size() > t && coeffs[t] != 0.0) {
          triplets.push_back({support[t], j, coeffs[t]});
        }
      }
    }
  });

  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(k_max * num_points));
  for (const auto& chunk : chunk_triplets) {
    triplets.insert(triplets.end(), chunk.begin(), chunk.end());
  }
  return SparseMatrix::FromTriplets(num_points, num_points,
                                    std::move(triplets));
}

}  // namespace fedsc
