// SSC-OMP (You, Robinson & Vidal, ref [42] of the paper): per-point sparse
// self-expression by orthogonal matching pursuit instead of the Lasso.
// Greedy, O(k_max * n * N) per point; the scalable centralized baseline.

#ifndef FEDSC_SC_SSC_OMP_H_
#define FEDSC_SC_SSC_OMP_H_

#include <cstdint>

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "sc/sketch.h"

namespace fedsc {

struct SscOmpOptions {
  // Maximum support size per point (set near the expected subspace
  // dimension).
  int64_t max_support = 10;
  // Stop early once the residual norm drops below this threshold.
  double residual_tol = 1e-6;
  // Workers for the per-column pursuits (columns are independent; results
  // are bit-identical for every thread count).
  int num_threads = 1;
};

// Sparse self-expression matrix C with OMP-selected supports; columns of x
// should be l2-normalized.
Result<SparseMatrix> SscOmpSelfExpression(const Matrix& x,
                                          const SscOmpOptions& options = {});

// Sketched variant: every column pursues atoms of sketch.dictionary (D x d)
// instead of its N - 1 peers, dropping the per-column cost from O(k * N * D)
// to O(k * d * D). Returns the d x N coefficient matrix (row a = dictionary
// atom a). For landmark sketches a column that is itself a landmark never
// selects its own atom (the diag(C) = 0 analogue). Bit-identical for every
// thread count.
Result<SparseMatrix> SscOmpSketchedSelfExpression(
    const Matrix& x, const SketchResult& sketch,
    const SscOmpOptions& options = {});

}  // namespace fedsc

#endif  // FEDSC_SC_SSC_OMP_H_
