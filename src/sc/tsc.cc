#include "sc/tsc.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/thread_pool.h"
#include "linalg/blas.h"

namespace fedsc {

Result<SparseMatrix> TscAffinity(const Matrix& x, const TscOptions& options) {
  const int64_t n = x.rows();
  const int64_t num_points = x.cols();
  if (num_points < 2) {
    return Status::InvalidArgument("TSC needs at least 2 points");
  }
  if (options.q < 1 || options.q >= num_points) {
    return Status::InvalidArgument("TSC needs 1 <= q < N, got q=" +
                                   std::to_string(options.q));
  }

  // Neighbor selection is independent per column; fan out over fixed column
  // ranges and concatenate the per-range triplet lists in column order so
  // the triplet stream matches the serial pass bit-for-bit.
  std::vector<std::vector<Triplet>> chunk_triplets(static_cast<size_t>(
      std::max(1, ParallelChunkCount(0, num_points, options.num_threads))));

  ParallelForRanges(0, num_points, options.num_threads, [&](int64_t c0,
                                                            int64_t c1,
                                                            int chunk) {
    std::vector<Triplet>& triplets =
        chunk_triplets[static_cast<size_t>(chunk)];
    triplets.reserve(static_cast<size_t>(2 * options.q * (c1 - c0)));
    Vector corr(static_cast<size_t>(num_points), 0.0);
    std::vector<int64_t> order(static_cast<size_t>(num_points));

    for (int64_t j = c0; j < c1; ++j) {
      // |x_i^T x_j| for all i (one column of |X^T X| at a time keeps memory
      // O(N) even for large N).
      Gemv(Trans::kTrans, 1.0, x, x.ColData(j), 0.0, corr.data());
      for (auto& v : corr) v = std::fabs(v);
      corr[static_cast<size_t>(j)] = -1.0;  // never self-select

      std::iota(order.begin(), order.end(), 0);
      const auto kth = order.begin() + options.q;
      std::nth_element(order.begin(), kth, order.end(),
                       [&](int64_t a, int64_t b) {
                         return corr[static_cast<size_t>(a)] >
                                corr[static_cast<size_t>(b)];
                       });
      for (auto it = order.begin(); it != kth; ++it) {
        const int64_t i = *it;
        const double c = std::min(1.0, corr[static_cast<size_t>(i)]);
        if (c <= 0.0) continue;
        const double weight = std::exp(-2.0 * std::acos(c));
        triplets.push_back({i, j, weight});
        triplets.push_back({j, i, weight});
      }
    }
  });
  (void)n;

  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(2 * options.q * num_points));
  for (const auto& chunk : chunk_triplets) {
    triplets.insert(triplets.end(), chunk.begin(), chunk.end());
  }

  // Duplicate (i, j) entries (mutual neighbors) sum; halve them back to the
  // single-edge weight by averaging.
  SparseMatrix summed =
      SparseMatrix::FromTriplets(num_points, num_points, std::move(triplets));
  // An edge appears either twice (one direction selected) or four times
  // (both directions selected, same weight). Rebuild with max-normalized
  // semantics: divide every stored value by its multiplicity... simpler and
  // equivalent: since both directions carry identical weights, dividing by 2
  // when the edge was selected once and by 4 when twice gives the same graph
  // up to a factor of 2 on mutual edges, which is the standard "adjacency
  // union" construction. Keep the summed weights: spectral clustering is
  // invariant to that mild reweighting and mutual neighbors deserve the
  // extra affinity.
  return summed;
}

Result<SparseMatrix> TscLandmarkCoefficients(const Matrix& x,
                                             const SketchResult& sketch,
                                             const TscOptions& options) {
  const Matrix& dictionary = sketch.dictionary;
  const int64_t n = x.rows();
  const int64_t num_points = x.cols();
  const int64_t num_atoms = dictionary.cols();
  if (num_points < 1) {
    return Status::InvalidArgument("TSC needs at least 1 point");
  }
  if (num_atoms < 1) {
    return Status::InvalidArgument("sketched TSC needs a non-empty "
                                   "dictionary");
  }
  if (dictionary.rows() != n) {
    return Status::InvalidArgument(
        "dictionary ambient dim " + std::to_string(dictionary.rows()) +
        " does not match data dim " + std::to_string(n));
  }
  if (options.q < 1) {
    return Status::InvalidArgument("TSC needs q >= 1, got q=" +
                                   std::to_string(options.q));
  }

  std::vector<int64_t> self_atom(static_cast<size_t>(num_points), -1);
  for (size_t a = 0; a < sketch.landmarks.size(); ++a) {
    self_atom[static_cast<size_t>(sketch.landmarks[a])] =
        static_cast<int64_t>(a);
  }

  // Same fan-out/concatenation pattern as the exact path: fixed column
  // ranges, per-range triplet lists stitched in column order.
  std::vector<std::vector<Triplet>> chunk_triplets(static_cast<size_t>(
      std::max(1, ParallelChunkCount(0, num_points, options.num_threads))));

  ParallelForRanges(0, num_points, options.num_threads, [&](int64_t c0,
                                                            int64_t c1,
                                                            int chunk) {
    std::vector<Triplet>& triplets =
        chunk_triplets[static_cast<size_t>(chunk)];
    Vector corr(static_cast<size_t>(num_atoms), 0.0);
    std::vector<int64_t> order(static_cast<size_t>(num_atoms));

    for (int64_t j = c0; j < c1; ++j) {
      Gemv(Trans::kTrans, 1.0, dictionary, x.ColData(j), 0.0, corr.data());
      for (auto& v : corr) v = std::fabs(v);
      const int64_t forbidden = self_atom[static_cast<size_t>(j)];
      if (forbidden >= 0) corr[static_cast<size_t>(forbidden)] = -1.0;
      const int64_t q = std::min<int64_t>(
          options.q, num_atoms - (forbidden >= 0 ? 1 : 0));
      if (q < 1) continue;

      std::iota(order.begin(), order.end(), 0);
      const auto kth = order.begin() + q;
      std::nth_element(order.begin(), kth, order.end(),
                       [&](int64_t a, int64_t b) {
                         const double fa = corr[static_cast<size_t>(a)];
                         const double fb = corr[static_cast<size_t>(b)];
                         if (fa != fb) return fa > fb;
                         return a < b;
                       });
      for (auto it = order.begin(); it != kth; ++it) {
        const int64_t a = *it;
        const double c = std::min(1.0, corr[static_cast<size_t>(a)]);
        if (c <= 0.0) continue;
        const double weight = std::exp(-2.0 * std::acos(c));
        triplets.push_back({a, j, weight});
      }
    }
  });

  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(options.q * num_points));
  for (const auto& chunk : chunk_triplets) {
    triplets.insert(triplets.end(), chunk.begin(), chunk.end());
  }
  return SparseMatrix::FromTriplets(num_atoms, num_points,
                                    std::move(triplets));
}

}  // namespace fedsc
