// Thresholding-based subspace clustering (Heckel & Bölcskei, ref [10] of
// the paper): connect every point to its q nearest neighbors in spherical
// distance, weighting edges by exp(-2 * arccos(|<x_i, x_j>|)).

#ifndef FEDSC_SC_TSC_H_
#define FEDSC_SC_TSC_H_

#include <cstdint>

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace fedsc {

struct TscOptions {
  // Number of nearest neighbors kept per point. Must satisfy 1 <= q < N.
  int64_t q = 3;
  // Workers for the per-column neighbor selection (columns are independent;
  // results are bit-identical for every thread count).
  int num_threads = 1;
};

// Symmetric TSC affinity graph over the (l2-normalized) columns of x.
Result<SparseMatrix> TscAffinity(const Matrix& x, const TscOptions& options);

}  // namespace fedsc

#endif  // FEDSC_SC_TSC_H_
