// Thresholding-based subspace clustering (Heckel & Bölcskei, ref [10] of
// the paper): connect every point to its q nearest neighbors in spherical
// distance, weighting edges by exp(-2 * arccos(|<x_i, x_j>|)).

#ifndef FEDSC_SC_TSC_H_
#define FEDSC_SC_TSC_H_

#include <cstdint>

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "sc/sketch.h"

namespace fedsc {

struct TscOptions {
  // Number of nearest neighbors kept per point. Must satisfy 1 <= q < N.
  int64_t q = 3;
  // Workers for the per-column neighbor selection (columns are independent;
  // results are bit-identical for every thread count).
  int num_threads = 1;
};

// Symmetric TSC affinity graph over the (l2-normalized) columns of x.
Result<SparseMatrix> TscAffinity(const Matrix& x, const TscOptions& options);

// Sketched variant: every point keeps its q nearest *dictionary atoms*
// (spherical distance against sketch.dictionary) instead of its q nearest
// peers, so the per-column cost is O(q + d * D) instead of O(q + N * D).
// Returns the nonnegative d x N coefficient matrix (row a = atom a) whose
// landmark-mediated product |C|^T |C| plays the role of the TSC graph. For
// landmark sketches a column never selects its own atom. Bit-identical for
// every thread count.
Result<SparseMatrix> TscLandmarkCoefficients(const Matrix& x,
                                             const SketchResult& sketch,
                                             const TscOptions& options);

}  // namespace fedsc

#endif  // FEDSC_SC_TSC_H_
