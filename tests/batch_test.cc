// Batched tall-skinny factorizations (linalg/batch.h): the looped engine
// must reproduce the per-panel PrincipalSubspace bits exactly (it IS the
// pre-batched loop, fanned out), the Gram engine must span the same
// subspace with orthonormal columns and the same rank decisions, kAuto must
// be a pure function of each panel's shape, and every engine must be
// bit-identical across thread counts.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/batch.h"
#include "linalg/blas.h"
#include "linalg/qr.h"
#include "linalg/svd.h"

namespace fedsc {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t j = 0; j < cols; ++j) {
    for (int64_t i = 0; i < rows; ++i) m(i, j) = rng->Gaussian();
  }
  return m;
}

// rows x cols panel whose columns live in a `rank`-dimensional subspace.
Matrix RankDeficientPanel(int64_t rows, int64_t cols, int64_t rank,
                          Rng* rng) {
  const Matrix u = RandomMatrix(rows, rank, rng);
  const Matrix c = RandomMatrix(rank, cols, rng);
  Matrix panel(rows, cols);
  Gemm(Trans::kNo, Trans::kNo, 1.0, u, c, 0.0, &panel);
  return panel;
}

// The ragged batch every test here starts from: full-rank and
// rank-deficient panels at n_i in {1, 3, 17, 50}, all D = 40 rows.
std::vector<Matrix> RaggedBatch(Rng* rng) {
  std::vector<Matrix> panels;
  panels.push_back(RandomMatrix(40, 1, rng));
  panels.push_back(RandomMatrix(40, 3, rng));
  panels.push_back(RankDeficientPanel(40, 17, 4, rng));
  panels.push_back(RandomMatrix(40, 17, rng));
  panels.push_back(RankDeficientPanel(40, 50, 2, rng));
  panels.push_back(RandomMatrix(40, 50, rng));
  return panels;
}

void ExpectBitEqual(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (int64_t j = 0; j < a.cols(); ++j) {
    for (int64_t i = 0; i < a.rows(); ++i) {
      ASSERT_EQ(a(i, j), b(i, j)) << what << " at (" << i << ", " << j << ")";
    }
  }
}

// Largest entry of U_a U_a^T - U_b U_b^T: zero iff the two orthonormal
// bases span the same subspace, and small iff the principal angles are.
double ProjectorDistance(const Matrix& a, const Matrix& b) {
  Matrix pa(a.rows(), a.rows());
  Matrix pb(b.rows(), b.rows());
  Gemm(Trans::kNo, Trans::kTrans, 1.0, a, a, 0.0, &pa);
  Gemm(Trans::kNo, Trans::kTrans, 1.0, b, b, 0.0, &pb);
  double worst = 0.0;
  for (int64_t j = 0; j < pa.cols(); ++j) {
    for (int64_t i = 0; i < pa.rows(); ++i) {
      worst = std::max(worst, std::abs(pa(i, j) - pb(i, j)));
    }
  }
  return worst;
}

double OrthonormalityError(const Matrix& u) {
  Matrix gram(u.cols(), u.cols());
  Gemm(Trans::kTrans, Trans::kNo, 1.0, u, u, 0.0, &gram);
  double worst = 0.0;
  for (int64_t j = 0; j < gram.cols(); ++j) {
    for (int64_t i = 0; i < gram.rows(); ++i) {
      const double want = i == j ? 1.0 : 0.0;
      worst = std::max(worst, std::abs(gram(i, j) - want));
    }
  }
  return worst;
}

TEST(BatchedSubspaceTest, LoopedEngineMatchesPrincipalSubspaceExactly) {
  Rng rng(311);
  const std::vector<Matrix> panels = RaggedBatch(&rng);
  for (int64_t rank : {int64_t{0}, int64_t{3}}) {
    BatchedSubspaceOptions options;
    options.engine = BatchEngine::kLooped;
    options.rank = rank;
    const std::vector<Result<Matrix>> batched =
        BatchedPrincipalSubspace(panels, options);
    ASSERT_EQ(batched.size(), panels.size());
    for (size_t i = 0; i < panels.size(); ++i) {
      const auto direct =
          PrincipalSubspace(panels[i], rank, options.rel_tol, options.svd);
      ASSERT_EQ(batched[i].ok(), direct.ok()) << "panel " << i;
      if (direct.ok()) {
        ExpectBitEqual(*batched[i], *direct, "looped basis");
      }
    }
  }
}

TEST(BatchedSubspaceTest, ResultsAreBitIdenticalAcrossThreadCounts) {
  Rng rng(313);
  const std::vector<Matrix> panels = RaggedBatch(&rng);
  for (BatchEngine engine :
       {BatchEngine::kAuto, BatchEngine::kLooped, BatchEngine::kGram}) {
    BatchedSubspaceOptions options;
    options.engine = engine;
    options.num_threads = 1;
    const std::vector<Result<Matrix>> serial =
        BatchedPrincipalSubspace(panels, options);
    for (int nt : {2, 8}) {
      options.num_threads = nt;
      const std::vector<Result<Matrix>> threaded =
          BatchedPrincipalSubspace(panels, options);
      ASSERT_EQ(threaded.size(), serial.size());
      for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i].ok(), threaded[i].ok()) << "panel " << i;
        if (serial[i].ok()) {
          ExpectBitEqual(*serial[i], *threaded[i], "thread invariance");
        }
      }
    }
  }
}

TEST(BatchedSubspaceTest, GramEngineSpansTheSameSubspaceWithTheSameRank) {
  Rng rng(317);
  const std::vector<Matrix> panels = RaggedBatch(&rng);
  BatchedSubspaceOptions gram;
  gram.engine = BatchEngine::kGram;
  BatchedSubspaceOptions looped;
  looped.engine = BatchEngine::kLooped;
  const auto via_gram = BatchedPrincipalSubspace(panels, gram);
  const auto via_svd = BatchedPrincipalSubspace(panels, looped);
  for (size_t i = 0; i < panels.size(); ++i) {
    ASSERT_TRUE(via_gram[i].ok()) << via_gram[i].status().ToString();
    ASSERT_TRUE(via_svd[i].ok());
    // Same rank decision on these well-separated spectra (exactly
    // rank-deficient panels have sigma ratios far below any tolerance).
    ASSERT_EQ(via_gram[i]->cols(), via_svd[i]->cols()) << "panel " << i;
    // The Gram route squares the condition number, so agreement is to
    // ~sqrt(eps), not ulps — that is the documented contract.
    EXPECT_LT(ProjectorDistance(*via_gram[i], *via_svd[i]), 1e-6)
        << "panel " << i;
    EXPECT_LT(OrthonormalityError(*via_gram[i]), 1e-10) << "panel " << i;
  }
}

TEST(BatchedSubspaceTest, AutoEngineIsAPureFunctionOfShapeAndRank) {
  Rng rng(331);
  // Tall-skinny: inside the Gram regime. Wide: outside it (cols > max),
  // and squat: outside it (rows < aspect * cols).
  const Matrix tall = RandomMatrix(64, 8, &rng);
  const Matrix wide = RandomMatrix(200, kGramEngineMaxCols + 1, &rng);
  const Matrix squat = RandomMatrix(20, 16, &rng);
  ASSERT_LT(squat.rows(), kGramEngineMinAspect * squat.cols());

  // Fixed rank: the tall panel takes the Gram route, the others stay
  // looped.
  {
    BatchedSubspaceOptions auto_opts;
    auto_opts.rank = 2;
    BatchedSubspaceOptions gram = auto_opts;
    gram.engine = BatchEngine::kGram;
    BatchedSubspaceOptions looped = auto_opts;
    looped.engine = BatchEngine::kLooped;

    const auto picked = BatchedPrincipalSubspace({tall, wide, squat},
                                                 auto_opts);
    const auto as_gram = BatchedPrincipalSubspace({tall}, gram);
    const auto as_looped = BatchedPrincipalSubspace({wide, squat}, looped);
    ExpectBitEqual(*picked[0], *as_gram[0], "tall panel takes the Gram route");
    ExpectBitEqual(*picked[1], *as_looped[0], "wide panel stays looped");
    ExpectBitEqual(*picked[2], *as_looped[1], "squat panel stays looped");
  }

  // Auto rank: every panel stays looped regardless of shape — rank
  // detection through the Gram noise floor could decide marginal spectra
  // differently, so kAuto never substitutes it.
  {
    BatchedSubspaceOptions auto_opts;
    auto_opts.rank = 0;
    BatchedSubspaceOptions looped = auto_opts;
    looped.engine = BatchEngine::kLooped;

    const auto picked = BatchedPrincipalSubspace({tall, wide, squat},
                                                 auto_opts);
    const auto as_looped =
        BatchedPrincipalSubspace({tall, wide, squat}, looped);
    for (size_t i = 0; i < 3; ++i) {
      ExpectBitEqual(*picked[i], *as_looped[i],
                     "auto-rank panels stay looped");
    }
  }
}

TEST(BatchedSubspaceTest, ErrorsStayInTheirSlot) {
  Rng rng(337);
  std::vector<Matrix> panels;
  panels.push_back(RandomMatrix(12, 5, &rng));  // fine
  panels.push_back(Matrix(12, 0));              // empty: invalid argument
  panels.push_back(Matrix(12, 4));              // all-zero: rank 0
  panels.push_back(RandomMatrix(12, 3, &rng));  // fine
  for (BatchEngine engine :
       {BatchEngine::kAuto, BatchEngine::kLooped, BatchEngine::kGram}) {
    BatchedSubspaceOptions options;
    options.engine = engine;
    const auto bases = BatchedPrincipalSubspace(panels, options);
    EXPECT_TRUE(bases[0].ok());
    EXPECT_EQ(bases[1].status().code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(bases[2].status().code(), StatusCode::kFailedPrecondition);
    EXPECT_TRUE(bases[3].ok());
  }
}

TEST(BatchedSubspaceTest, GatherOverloadMatchesExplicitPanels) {
  Rng rng(347);
  const Matrix parent = RandomMatrix(24, 30, &rng);
  std::vector<std::vector<int64_t>> groups = {
      {0, 5, 7}, {}, {1, 2, 3, 4, 8, 13, 21}, {29}};
  std::vector<Matrix> panels;
  for (const auto& group : groups) panels.push_back(parent.GatherCols(group));
  BatchedSubspaceOptions options;
  const auto via_groups = BatchedPrincipalSubspace(parent, groups, options);
  const auto via_panels = BatchedPrincipalSubspace(panels, options);
  ASSERT_EQ(via_groups.size(), via_panels.size());
  for (size_t i = 0; i < via_groups.size(); ++i) {
    ASSERT_EQ(via_groups[i].ok(), via_panels[i].ok()) << "group " << i;
    if (via_groups[i].ok()) {
      ExpectBitEqual(*via_groups[i], *via_panels[i], "gather overload");
    }
  }
}

TEST(BatchedThinQrTest, MatchesHouseholderQrExactlyOnRaggedBatches) {
  Rng rng(353);
  std::vector<Matrix> panels = RaggedBatch(&rng);
  panels.push_back(RandomMatrix(3, 17, &rng));  // wide panel, k = 3
  const QrOptions qr_options;
  for (int nt : {1, 2, 8}) {
    const auto batched = BatchedThinQr(panels, qr_options, nt);
    ASSERT_EQ(batched.size(), panels.size());
    for (size_t i = 0; i < panels.size(); ++i) {
      const auto direct = HouseholderQr(panels[i], qr_options);
      ASSERT_EQ(batched[i].ok(), direct.ok()) << "panel " << i;
      if (direct.ok()) {
        ExpectBitEqual(batched[i]->q, direct->q, "thin-QR Q");
        ExpectBitEqual(batched[i]->r, direct->r, "thin-QR R");
      }
    }
  }
}

}  // namespace
}  // namespace fedsc
