#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/blas.h"

namespace fedsc {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t j = 0; j < cols; ++j) {
    for (int64_t i = 0; i < rows; ++i) m(i, j) = rng->Gaussian();
  }
  return m;
}

// Naive triple loop reference for C = alpha op(A) op(B) + beta C.
Matrix ReferenceGemm(Trans ta, Trans tb, double alpha, const Matrix& a,
                     const Matrix& b, double beta, const Matrix& c0) {
  const int64_t m = ta == Trans::kNo ? a.rows() : a.cols();
  const int64_t k = ta == Trans::kNo ? a.cols() : a.rows();
  const int64_t n = tb == Trans::kNo ? b.cols() : b.rows();
  Matrix c = c0;
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t i = 0; i < m; ++i) {
      double sum = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const double av = ta == Trans::kNo ? a(i, p) : a(p, i);
        const double bv = tb == Trans::kNo ? b(p, j) : b(j, p);
        sum += av * bv;
      }
      c(i, j) = alpha * sum + beta * c0(i, j);
    }
  }
  return c;
}

TEST(BlasTest, DotBasics) {
  const Vector x{1, 2, 3, 4, 5};
  const Vector y{5, 4, 3, 2, 1};
  EXPECT_EQ(Dot(x, y), 35.0);
  EXPECT_NEAR(Norm2(x), std::sqrt(55.0), 1e-12);
}

TEST(BlasTest, AxpyAndScal) {
  Vector y{1, 1, 1};
  const Vector x{1, 2, 3};
  Axpy(2.0, x.data(), y.data(), 3);
  EXPECT_EQ(y, (Vector{3, 5, 7}));
  Scal(0.5, y.data(), 3);
  EXPECT_EQ(y, (Vector{1.5, 2.5, 3.5}));
}

struct GemmCase {
  Trans ta;
  Trans tb;
  double alpha;
  double beta;
};

class GemmParamTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParamTest, MatchesReference) {
  const GemmCase param = GetParam();
  Rng rng(31);
  for (auto [m, k, n] : {std::tuple<int64_t, int64_t, int64_t>{3, 4, 5},
                         {1, 7, 2},
                         {8, 1, 8},
                         {13, 11, 9}}) {
    const Matrix a = param.ta == Trans::kNo ? RandomMatrix(m, k, &rng)
                                            : RandomMatrix(k, m, &rng);
    const Matrix b = param.tb == Trans::kNo ? RandomMatrix(k, n, &rng)
                                            : RandomMatrix(n, k, &rng);
    const Matrix c0 = RandomMatrix(m, n, &rng);
    Matrix c = c0;
    Gemm(param.ta, param.tb, param.alpha, a, b, param.beta, &c);
    const Matrix expected =
        ReferenceGemm(param.ta, param.tb, param.alpha, a, b, param.beta, c0);
    EXPECT_TRUE(AllClose(c, expected, 1e-10))
        << "shape " << m << "x" << k << "x" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransCombos, GemmParamTest,
    ::testing::Values(GemmCase{Trans::kNo, Trans::kNo, 1.0, 0.0},
                      GemmCase{Trans::kTrans, Trans::kNo, 1.0, 0.0},
                      GemmCase{Trans::kNo, Trans::kTrans, 1.0, 0.0},
                      GemmCase{Trans::kTrans, Trans::kTrans, 1.0, 0.0},
                      GemmCase{Trans::kNo, Trans::kNo, -2.5, 1.0},
                      GemmCase{Trans::kTrans, Trans::kNo, 0.5, 3.0},
                      GemmCase{Trans::kNo, Trans::kTrans, 2.0, -1.0},
                      GemmCase{Trans::kTrans, Trans::kTrans, -1.0, 0.5}));

TEST(BlasTest, GemvMatchesGemm) {
  Rng rng(37);
  const Matrix a = RandomMatrix(6, 4, &rng);
  const Vector x{1, -2, 3, -4};
  const Vector y = Gemv(Trans::kNo, a, x);
  const Matrix via_gemm = MatMul(a, Matrix::FromColumn(x));
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(y[static_cast<size_t>(i)], via_gemm(i, 0), 1e-12);
  }
  const Vector yt = Gemv(Trans::kTrans, a, Vector{1, 2, 3, 4, 5, 6});
  const Matrix via_tn =
      MatMulTN(a, Matrix::FromColumn(Vector{1, 2, 3, 4, 5, 6}));
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(yt[static_cast<size_t>(i)], via_tn(i, 0), 1e-12);
  }
}

TEST(BlasTest, GemvAccumulatesWithBeta) {
  const Matrix a = Matrix::Identity(3);
  Vector y{1, 1, 1};
  const Vector x{2, 3, 4};
  Gemv(Trans::kNo, 1.0, a, x.data(), 2.0, y.data());
  EXPECT_EQ(y, (Vector{4, 5, 6}));
}

TEST(BlasTest, GramIsSymmetricPsd) {
  Rng rng(41);
  const Matrix x = RandomMatrix(5, 8, &rng);
  const Matrix g = Gram(x);
  EXPECT_EQ(g.rows(), 8);
  EXPECT_TRUE(AllClose(g, g.Transposed(), 1e-12));
  for (int64_t i = 0; i < 8; ++i) EXPECT_GE(g(i, i), 0.0);
  const Matrix og = OuterGram(x);
  EXPECT_EQ(og.rows(), 5);
  EXPECT_TRUE(AllClose(og, og.Transposed(), 1e-12));
}

TEST(BlasDeathTest, ShapeMismatchDies) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  Matrix c(2, 3);
  EXPECT_DEATH(Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, &c),
               "gemm inner dims");
}

}  // namespace
}  // namespace fedsc
