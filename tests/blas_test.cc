#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/blas.h"

namespace fedsc {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t j = 0; j < cols; ++j) {
    for (int64_t i = 0; i < rows; ++i) m(i, j) = rng->Gaussian();
  }
  return m;
}

// Naive triple loop reference for C = alpha op(A) op(B) + beta C.
Matrix ReferenceGemm(Trans ta, Trans tb, double alpha, const Matrix& a,
                     const Matrix& b, double beta, const Matrix& c0) {
  const int64_t m = ta == Trans::kNo ? a.rows() : a.cols();
  const int64_t k = ta == Trans::kNo ? a.cols() : a.rows();
  const int64_t n = tb == Trans::kNo ? b.cols() : b.rows();
  Matrix c = c0;
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t i = 0; i < m; ++i) {
      double sum = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const double av = ta == Trans::kNo ? a(i, p) : a(p, i);
        const double bv = tb == Trans::kNo ? b(p, j) : b(j, p);
        sum += av * bv;
      }
      c(i, j) = alpha * sum + beta * c0(i, j);
    }
  }
  return c;
}

TEST(BlasTest, DotBasics) {
  const Vector x{1, 2, 3, 4, 5};
  const Vector y{5, 4, 3, 2, 1};
  EXPECT_EQ(Dot(x, y), 35.0);
  EXPECT_NEAR(Norm2(x), std::sqrt(55.0), 1e-12);
}

TEST(BlasTest, AxpyAndScal) {
  Vector y{1, 1, 1};
  const Vector x{1, 2, 3};
  Axpy(2.0, x.data(), y.data(), 3);
  EXPECT_EQ(y, (Vector{3, 5, 7}));
  Scal(0.5, y.data(), 3);
  EXPECT_EQ(y, (Vector{1.5, 2.5, 3.5}));
}

struct GemmCase {
  Trans ta;
  Trans tb;
  double alpha;
  double beta;
};

class GemmParamTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParamTest, MatchesReference) {
  const GemmCase param = GetParam();
  Rng rng(31);
  for (auto [m, k, n] : {std::tuple<int64_t, int64_t, int64_t>{3, 4, 5},
                         {1, 7, 2},
                         {8, 1, 8},
                         {13, 11, 9}}) {
    const Matrix a = param.ta == Trans::kNo ? RandomMatrix(m, k, &rng)
                                            : RandomMatrix(k, m, &rng);
    const Matrix b = param.tb == Trans::kNo ? RandomMatrix(k, n, &rng)
                                            : RandomMatrix(n, k, &rng);
    const Matrix c0 = RandomMatrix(m, n, &rng);
    Matrix c = c0;
    Gemm(param.ta, param.tb, param.alpha, a, b, param.beta, &c);
    const Matrix expected =
        ReferenceGemm(param.ta, param.tb, param.alpha, a, b, param.beta, c0);
    EXPECT_TRUE(AllClose(c, expected, 1e-10))
        << "shape " << m << "x" << k << "x" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransCombos, GemmParamTest,
    ::testing::Values(GemmCase{Trans::kNo, Trans::kNo, 1.0, 0.0},
                      GemmCase{Trans::kTrans, Trans::kNo, 1.0, 0.0},
                      GemmCase{Trans::kNo, Trans::kTrans, 1.0, 0.0},
                      GemmCase{Trans::kTrans, Trans::kTrans, 1.0, 0.0},
                      GemmCase{Trans::kNo, Trans::kNo, -2.5, 1.0},
                      GemmCase{Trans::kTrans, Trans::kNo, 0.5, 3.0},
                      GemmCase{Trans::kNo, Trans::kTrans, 2.0, -1.0},
                      GemmCase{Trans::kTrans, Trans::kTrans, -1.0, 0.5}));

TEST(BlasTest, GemvMatchesGemm) {
  Rng rng(37);
  const Matrix a = RandomMatrix(6, 4, &rng);
  const Vector x{1, -2, 3, -4};
  const Vector y = Gemv(Trans::kNo, a, x);
  const Matrix via_gemm = MatMul(a, Matrix::FromColumn(x));
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(y[static_cast<size_t>(i)], via_gemm(i, 0), 1e-12);
  }
  const Vector yt = Gemv(Trans::kTrans, a, Vector{1, 2, 3, 4, 5, 6});
  const Matrix via_tn =
      MatMulTN(a, Matrix::FromColumn(Vector{1, 2, 3, 4, 5, 6}));
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(yt[static_cast<size_t>(i)], via_tn(i, 0), 1e-12);
  }
}

TEST(BlasTest, GemvAccumulatesWithBeta) {
  const Matrix a = Matrix::Identity(3);
  Vector y{1, 1, 1};
  const Vector x{2, 3, 4};
  Gemv(Trans::kNo, 1.0, a, x.data(), 2.0, y.data());
  EXPECT_EQ(y, (Vector{4, 5, 6}));
}

TEST(BlasTest, GramIsSymmetricPsd) {
  Rng rng(41);
  const Matrix x = RandomMatrix(5, 8, &rng);
  const Matrix g = Gram(x);
  EXPECT_EQ(g.rows(), 8);
  EXPECT_TRUE(AllClose(g, g.Transposed(), 1e-12));
  for (int64_t i = 0; i < 8; ++i) EXPECT_GE(g(i, i), 0.0);
  const Matrix og = OuterGram(x);
  EXPECT_EQ(og.rows(), 5);
  EXPECT_TRUE(AllClose(og, og.Transposed(), 1e-12));
}

void ExpectBitEqual(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (int64_t j = 0; j < a.cols(); ++j) {
    for (int64_t i = 0; i < a.rows(); ++i) {
      ASSERT_EQ(a(i, j), b(i, j))
          << what << " differs at (" << i << ", " << j << ")";
    }
  }
}

// The blocked packed engine and the legacy panel kernels accumulate in
// different orders, so they agree to rounding — not bit-for-bit. Sweep
// degenerate and awkward shapes (1-wide panels, non-multiples of the
// micro-tile, sizes straddling the kc blocking) under every transpose combo
// and the alpha/beta special cases the dispatcher short-circuits on.
TEST(BlockedGemmTest, AgreesWithPanelAcrossShapesAndScalars) {
  const int64_t dims[] = {1, 3, 17, 64, 257};
  const Trans kinds[] = {Trans::kNo, Trans::kTrans};
  const double scalars[][2] = {
      {1.0, 0.0}, {-0.5, 1.0}, {0.0, -0.5}, {1.0, -0.5}};
  GemmOptions panel;
  panel.kernel = GemmKernel::kPanel;
  GemmOptions blocked;
  blocked.kernel = GemmKernel::kBlocked;

  Rng rng(101);
  for (int64_t m : dims) {
    for (int64_t k : dims) {
      for (int64_t n : dims) {
        const Matrix a_n = RandomMatrix(m, k, &rng);
        const Matrix a_t = RandomMatrix(k, m, &rng);
        const Matrix b_n = RandomMatrix(k, n, &rng);
        const Matrix b_t = RandomMatrix(n, k, &rng);
        const Matrix c0 = RandomMatrix(m, n, &rng);
        for (Trans ta : kinds) {
          for (Trans tb : kinds) {
            const Matrix& a = ta == Trans::kNo ? a_n : a_t;
            const Matrix& b = tb == Trans::kNo ? b_n : b_t;
            for (const auto& ab : scalars) {
              Matrix cp = c0;
              Matrix cb = c0;
              Gemm(ta, tb, ab[0], a, b, ab[1], &cp, panel);
              Gemm(ta, tb, ab[0], a, b, ab[1], &cb, blocked);
              ASSERT_TRUE(AllClose(cb, cp, 1e-10))
                  << "shape " << m << "x" << k << "x" << n << " trans "
                  << (ta == Trans::kTrans) << (tb == Trans::kTrans)
                  << " alpha " << ab[0] << " beta " << ab[1];
            }
          }
        }
      }
    }
  }
}

TEST(BlockedGemmTest, AutoDispatchLargeMatchesReference) {
  // 65*40*50 = 130000 sits above kBlockedGemmCutoff, so the default path is
  // the blocked engine; check it against the naive reference directly.
  ASSERT_GE(int64_t{65} * 40 * 50, kBlockedGemmCutoff);
  Rng rng(113);
  const Trans kinds[] = {Trans::kNo, Trans::kTrans};
  for (Trans ta : kinds) {
    for (Trans tb : kinds) {
      const Matrix a = ta == Trans::kNo ? RandomMatrix(65, 40, &rng)
                                        : RandomMatrix(40, 65, &rng);
      const Matrix b = tb == Trans::kNo ? RandomMatrix(40, 50, &rng)
                                        : RandomMatrix(50, 40, &rng);
      const Matrix c0 = RandomMatrix(65, 50, &rng);
      Matrix c = c0;
      Gemm(ta, tb, -0.5, a, b, 1.0, &c);
      const Matrix expected = ReferenceGemm(ta, tb, -0.5, a, b, 1.0, c0);
      ASSERT_TRUE(AllClose(c, expected, 1e-10))
          << "trans " << (ta == Trans::kTrans) << (tb == Trans::kTrans);
    }
  }
}

// GemmKernel::kPanel is the escape hatch that reproduces the
// pre-blocked-engine results bit-for-bit. The panel kernels produce each
// output column independently, and a single-column product is always below
// the kAuto cutoff, so column j of a pinned large product must be
// bit-identical to the small kAuto call on that column alone — which is
// exactly what yesterday's dispatcher computed.
TEST(BlockedGemmTest, PanelPinReproducesLegacyBitsColumnByColumn) {
  constexpr int64_t m = 60, k = 70, n = 90;
  ASSERT_GE(m * k * n, kBlockedGemmCutoff);  // kAuto would go blocked
  GemmOptions pin;
  pin.kernel = GemmKernel::kPanel;

  Rng rng(131);
  const Trans kinds[] = {Trans::kNo, Trans::kTrans};
  for (Trans ta : kinds) {
    for (Trans tb : kinds) {
      const Matrix a = ta == Trans::kNo ? RandomMatrix(m, k, &rng)
                                        : RandomMatrix(k, m, &rng);
      const Matrix b = tb == Trans::kNo ? RandomMatrix(k, n, &rng)
                                        : RandomMatrix(n, k, &rng);
      Matrix c(m, n);
      Gemm(ta, tb, 1.0, a, b, 0.0, &c, pin);
      for (int64_t j = 0; j < n; ++j) {
        Vector bj(static_cast<size_t>(k));
        for (int64_t p = 0; p < k; ++p) {
          bj[static_cast<size_t>(p)] = tb == Trans::kNo ? b(p, j) : b(j, p);
        }
        Matrix cj(m, 1);
        Gemm(ta, Trans::kNo, 1.0, a, Matrix::FromColumn(bj), 0.0, &cj);
        for (int64_t i = 0; i < m; ++i) {
          ASSERT_EQ(c(i, j), cj(i, 0))
              << "column " << j << " row " << i << " trans "
              << (ta == Trans::kTrans) << (tb == Trans::kTrans);
        }
      }
    }
  }
}

TEST(SyrkTest, MatchesReferenceGemmAndIsBitwiseSymmetric) {
  // (kk, nn) pairs spanning the panel path, the cutoff edge, and blocked
  // shapes with edge micro-tiles in both directions.
  const int64_t shapes[][2] = {{7, 5}, {40, 30}, {20, 300}, {257, 64}};
  Rng rng(141);
  for (const auto& s : shapes) {
    const int64_t kk = s[0], nn = s[1];
    const Matrix r = RandomMatrix(nn, nn, &rng);
    Matrix c0(nn, nn);
    for (int64_t j = 0; j < nn; ++j) {
      for (int64_t i = 0; i < nn; ++i) c0(i, j) = r(i, j) + r(j, i);
    }
    for (Trans trans : {Trans::kTrans, Trans::kNo}) {
      // kTrans: X is kk x nn, C = a X^T X + b C. kNo: X is nn x kk.
      const Matrix x = trans == Trans::kTrans ? RandomMatrix(kk, nn, &rng)
                                              : RandomMatrix(nn, kk, &rng);
      Matrix c = c0;
      Syrk(trans, 0.7, x, 0.5, &c);
      const Trans tb = trans == Trans::kTrans ? Trans::kNo : Trans::kTrans;
      const Matrix expected = ReferenceGemm(trans, tb, 0.7, x, x, 0.5, c0);
      ASSERT_TRUE(AllClose(c, expected, 1e-10))
          << "kk " << kk << " nn " << nn;
      for (int64_t j = 0; j < nn; ++j) {
        for (int64_t i = 0; i < j; ++i) {
          ASSERT_EQ(c(i, j), c(j, i))
              << "mirror broke exact symmetry at (" << i << ", " << j << ")";
        }
      }
    }
  }
}

TEST(SyrkTest, SubCutoffGramBitMatchesGemmBackedGram) {
  // Below the cutoff Gram/OuterGram take the panel Syrk, whose per-element
  // op sequence is the full-GEMM panel restricted to the lower triangle
  // (and Dot / scalar products are bitwise symmetric) — so the Syrk rewrite
  // changed no bits for the small Grams inside the OMP/ESC solvers.
  Rng rng(151);
  const Matrix x = RandomMatrix(12, 20, &rng);  // 20*12*20 is sub-cutoff
  ExpectBitEqual(Gram(x), MatMulTN(x, x), "Gram vs MatMulTN");
  ExpectBitEqual(OuterGram(x), MatMulNT(x, x), "OuterGram vs MatMulNT");
}

TEST(SyrkDeathTest, ShapeMismatchDies) {
  Rng rng(161);
  const Matrix x = RandomMatrix(4, 6, &rng);
  Matrix c(4, 4);  // kTrans wants 6x6
  EXPECT_DEATH(Syrk(Trans::kTrans, 1.0, x, 0.0, &c), "syrk output");
}

TEST(BlasDeathTest, ShapeMismatchDies) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  Matrix c(2, 3);
  EXPECT_DEATH(Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, &c),
               "gemm inner dims");
}

// ---- Runtime ISA dispatch (GemmOptions::isa, common/isa.h) ----

GemmIsa PinForTier(CpuIsa tier) {
  switch (tier) {
    case CpuIsa::kGeneric:
      return GemmIsa::kGeneric;
    case CpuIsa::kAvx2:
      return GemmIsa::kAvx2;
    case CpuIsa::kAvx512:
      return GemmIsa::kAvx512;
  }
  return GemmIsa::kGeneric;
}

TEST(GemmIsaTest, ResolutionIsPureAndNamesRoundTrip) {
  // Explicit pins resolve to themselves; kAuto resolves to the process-wide
  // dispatch (cpuid, or FEDSC_FORCE_ISA) and never changes within a run.
  EXPECT_EQ(ResolveGemmIsa(GemmIsa::kGeneric), CpuIsa::kGeneric);
  const CpuIsa first = ResolveGemmIsa(GemmIsa::kAuto);
  EXPECT_EQ(first, ResolveGemmIsa(GemmIsa::kAuto));
  EXPECT_EQ(first, ResolveDefaultIsa().chosen);
  EXPECT_TRUE(CpuIsaSupported(first));
  EXPECT_TRUE(CpuIsaSupported(CpuIsa::kGeneric));
  EXPECT_TRUE(CpuIsaSupported(BestSupportedIsa()));

  EXPECT_STREQ(GemmIsaName(GemmIsa::kAuto), "auto");
  EXPECT_STREQ(GemmIsaName(GemmIsa::kGeneric), "generic");
  EXPECT_STREQ(GemmIsaName(GemmIsa::kAvx2), "avx2");
  EXPECT_STREQ(GemmIsaName(GemmIsa::kAvx512), "avx512");
  EXPECT_STREQ(CpuIsaName(CpuIsa::kGeneric), "generic");
  EXPECT_STREQ(CpuIsaName(CpuIsa::kAvx2), "avx2");
  EXPECT_STREQ(CpuIsaName(CpuIsa::kAvx512), "avx512");
}

// Every tier the host supports must produce exactly the same bits for
// nt in {1, 2, 8} (the determinism contract), and the tiers must agree with
// the pinned-generic result to the documented ulp policy. The 61x70x90
// shape sits above the kAuto cutoff and leaves ragged micro-tile edges in
// every tier (61 % 24, 90 % 8, ...), which is where a packing bug would
// show as garbage, not ulps.
TEST(GemmIsaTest, TiersAreThreadInvariantAndAgreeToUlpPolicy) {
  constexpr int64_t m = 61, k = 70, n = 90;
  ASSERT_GE(m * k * n, kBlockedGemmCutoff);
  Rng rng(211);
  const Matrix a = RandomMatrix(m, k, &rng);
  const Matrix b = RandomMatrix(k, n, &rng);
  const Matrix c0 = RandomMatrix(m, n, &rng);

  GemmOptions generic;
  generic.kernel = GemmKernel::kBlocked;
  generic.isa = GemmIsa::kGeneric;
  Matrix reference = c0;
  Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, -0.5, &reference, generic);

  const CpuIsa tiers[] = {CpuIsa::kGeneric, CpuIsa::kAvx2, CpuIsa::kAvx512};
  for (CpuIsa tier : tiers) {
    if (!CpuIsaSupported(tier)) continue;
    GemmOptions opts = generic;
    opts.isa = PinForTier(tier);
    opts.num_threads = 1;
    Matrix base = c0;
    Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, -0.5, &base, opts);
    for (int nt : {2, 8}) {
      opts.num_threads = nt;
      Matrix threaded = c0;
      Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, -0.5, &threaded, opts);
      for (int64_t j = 0; j < n; ++j) {
        for (int64_t i = 0; i < m; ++i) {
          ASSERT_EQ(base(i, j), threaded(i, j))
              << CpuIsaName(tier) << " nt=" << nt << " at (" << i << ", "
              << j << ")";
        }
      }
    }
    ASSERT_TRUE(AllClose(base, reference, 1e-12)) << CpuIsaName(tier);
  }
}

TEST(GemmIsaTest, SyrkTiersAreThreadInvariantAndAgreeToUlpPolicy) {
  Rng rng(223);
  const Matrix x = RandomMatrix(70, 61, &rng);  // X^T X is 61x61, ragged
  GemmOptions generic;
  generic.kernel = GemmKernel::kBlocked;
  generic.isa = GemmIsa::kGeneric;
  Matrix reference(61, 61);
  Syrk(Trans::kTrans, 1.0, x, 0.0, &reference, generic);

  const CpuIsa tiers[] = {CpuIsa::kGeneric, CpuIsa::kAvx2, CpuIsa::kAvx512};
  for (CpuIsa tier : tiers) {
    if (!CpuIsaSupported(tier)) continue;
    GemmOptions opts = generic;
    opts.isa = PinForTier(tier);
    opts.num_threads = 1;
    Matrix base(61, 61);
    Syrk(Trans::kTrans, 1.0, x, 0.0, &base, opts);
    for (int nt : {2, 8}) {
      opts.num_threads = nt;
      Matrix threaded(61, 61);
      Syrk(Trans::kTrans, 1.0, x, 0.0, &threaded, opts);
      for (int64_t j = 0; j < 61; ++j) {
        for (int64_t i = 0; i < 61; ++i) {
          ASSERT_EQ(base(i, j), threaded(i, j))
              << CpuIsaName(tier) << " nt=" << nt;
        }
      }
    }
    ASSERT_TRUE(AllClose(base, reference, 1e-12)) << CpuIsaName(tier);
  }
}

// GemmOptions::isa is pure dispatch: kAuto must produce exactly the bits of
// explicitly pinning the tier it resolves to — no auto-only fast paths.
TEST(GemmIsaTest, AutoDispatchBitMatchesThePinnedResolvedTier) {
  Rng rng(227);
  const Matrix a = RandomMatrix(50, 40, &rng);
  const Matrix b = RandomMatrix(40, 45, &rng);
  GemmOptions auto_opts;
  auto_opts.kernel = GemmKernel::kBlocked;
  GemmOptions pinned = auto_opts;
  pinned.isa = PinForTier(ResolveGemmIsa(GemmIsa::kAuto));
  Matrix c_auto(50, 45);
  Matrix c_pinned(50, 45);
  Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, &c_auto, auto_opts);
  Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, &c_pinned, pinned);
  for (int64_t j = 0; j < 45; ++j) {
    for (int64_t i = 0; i < 50; ++i) {
      ASSERT_EQ(c_auto(i, j), c_pinned(i, j));
    }
  }
}

}  // namespace
}  // namespace fedsc
