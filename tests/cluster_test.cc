#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "cluster/kmeans.h"
#include "cluster/spectral.h"
#include "common/rng.h"
#include "linalg/sparse.h"
#include "metrics/clustering_metrics.h"

namespace fedsc {
namespace {

// k well-separated Gaussian blobs in R^dim; returns points + truth labels.
std::pair<Matrix, std::vector<int64_t>> MakeBlobs(int64_t k, int64_t per_blob,
                                                  int64_t dim, double spread,
                                                  Rng* rng) {
  Matrix points(dim, k * per_blob);
  std::vector<int64_t> truth;
  for (int64_t c = 0; c < k; ++c) {
    Vector center(static_cast<size_t>(dim));
    for (auto& v : center) v = 20.0 * rng->Gaussian();
    for (int64_t p = 0; p < per_blob; ++p) {
      const int64_t col = c * per_blob + p;
      for (int64_t i = 0; i < dim; ++i) {
        points(i, col) = center[static_cast<size_t>(i)] +
                         spread * rng->Gaussian();
      }
      truth.push_back(c);
    }
  }
  return {std::move(points), std::move(truth)};
}

TEST(KMeansTest, SeparatedBlobsClusterPerfectly) {
  Rng rng(1);
  auto [points, truth] = MakeBlobs(4, 30, 5, 0.3, &rng);
  auto result = KMeans(points, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ClusteringAccuracy(truth, result->labels), 100.0);
  EXPECT_EQ(result->centroids.cols(), 4);
}

TEST(KMeansTest, SingleClusterGivesCentroidMean) {
  Matrix points = Matrix::FromColumns({{0, 0}, {2, 0}, {4, 0}});
  auto result = KMeans(points, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->centroids(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(result->centroids(1, 0), 0.0, 1e-12);
  for (int64_t l : result->labels) EXPECT_EQ(l, 0);
}

TEST(KMeansTest, KEqualsNIsExact) {
  Matrix points = Matrix::FromColumns({{0, 0}, {5, 0}, {0, 5}});
  auto result = KMeans(points, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-18);
  std::set<int64_t> labels(result->labels.begin(), result->labels.end());
  EXPECT_EQ(labels.size(), 3u);
}

TEST(KMeansTest, DuplicatePointsDoNotCrash) {
  Matrix points(3, 10);  // all zeros
  auto result = KMeans(points, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels.size(), 10u);
}

TEST(KMeansTest, InvalidKRejected) {
  Matrix points(2, 5);
  EXPECT_FALSE(KMeans(points, 0).ok());
  EXPECT_FALSE(KMeans(points, 6).ok());
}

TEST(KMeansTest, MoreRestartsNeverWorse) {
  Rng rng(2);
  auto [points, truth] = MakeBlobs(6, 20, 4, 1.5, &rng);
  KMeansOptions one;
  one.num_init = 1;
  one.seed = 99;
  KMeansOptions many;
  many.num_init = 8;
  many.seed = 99;
  auto r1 = KMeans(points, 6, one);
  auto r8 = KMeans(points, 6, many);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r8.ok());
  EXPECT_LE(r8->inertia, r1->inertia + 1e-9);
}

TEST(KMeansTest, FarthestFirstInitWorks) {
  Rng rng(3);
  auto [points, truth] = MakeBlobs(3, 25, 4, 0.2, &rng);
  KMeansOptions options;
  options.init = KMeansInit::kFarthestFirst;
  auto result = KMeans(points, 3, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ClusteringAccuracy(truth, result->labels), 100.0);
}

TEST(FarthestFirstTest, PicksDistinctSpreadIndices) {
  Rng rng(4);
  Matrix points = Matrix::FromColumns(
      {{0, 0}, {0.1, 0}, {10, 0}, {10.1, 0}, {0, 10}});
  const auto picked = FarthestFirstIndices(points, 3, &rng);
  ASSERT_EQ(picked.size(), 3u);
  std::set<int64_t> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 3u);
  // The three picks must hit all three far-apart groups {0,1}, {2,3}, {4}.
  std::set<int64_t> groups;
  for (int64_t i : picked) groups.insert(i <= 1 ? 0 : (i <= 3 ? 1 : 2));
  EXPECT_EQ(groups.size(), 3u);
}

Matrix BlockAffinity(const std::vector<int64_t>& sizes) {
  int64_t n = 0;
  for (int64_t s : sizes) n += s;
  Matrix w(n, n);
  int64_t offset = 0;
  for (int64_t s : sizes) {
    for (int64_t i = 0; i < s; ++i) {
      for (int64_t j = 0; j < s; ++j) {
        if (i != j) w(offset + i, offset + j) = 1.0;
      }
    }
    offset += s;
  }
  return w;
}

TEST(SpectralTest, RecoversBlocksDense) {
  const Matrix w = BlockAffinity({10, 15, 12});
  std::vector<int64_t> truth;
  for (int64_t c = 0; c < 3; ++c) {
    for (int64_t i = 0; i < std::vector<int64_t>{10, 15, 12}[c]; ++i) {
      truth.push_back(c);
    }
  }
  auto result = SpectralCluster(w, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ClusteringAccuracy(truth, result->labels), 100.0);
}

TEST(SpectralTest, SparseLanczosPathMatchesTruth) {
  // Force the Lanczos path with a low threshold.
  std::vector<int64_t> sizes{40, 50, 35};
  const Matrix w = BlockAffinity(sizes);
  std::vector<int64_t> truth;
  for (size_t c = 0; c < sizes.size(); ++c) {
    for (int64_t i = 0; i < sizes[c]; ++i) {
      truth.push_back(static_cast<int64_t>(c));
    }
  }
  SpectralOptions options;
  options.lanczos_threshold = 10;
  auto result = SpectralCluster(SparsifyDense(w), 3, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ClusteringAccuracy(truth, result->labels), 100.0);
}

TEST(SpectralTest, WeaklyCoupledBlocksStillSeparate) {
  Matrix w = BlockAffinity({12, 12});
  // faint cross edges
  for (int64_t i = 0; i < 12; ++i) {
    w(i, 12 + i) = 0.01;
    w(12 + i, i) = 0.01;
  }
  std::vector<int64_t> truth(24, 0);
  std::fill(truth.begin() + 12, truth.end(), 1);
  auto result = SpectralCluster(w, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ClusteringAccuracy(truth, result->labels), 100.0);
}

TEST(SpectralTest, RejectsBadArguments) {
  EXPECT_FALSE(SpectralCluster(Matrix(3, 4), 2).ok());
  EXPECT_FALSE(SpectralCluster(Matrix::Identity(3), 0).ok());
  EXPECT_FALSE(SpectralCluster(Matrix::Identity(3), 4).ok());
}

TEST(SpectralTest, EmbeddingHasRequestedShape) {
  const Matrix w = BlockAffinity({6, 6});
  auto result = SpectralCluster(w, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->embedding.rows(), 12);
  EXPECT_EQ(result->embedding.cols(), 2);
}

TEST(SpectralTest, ReportsKMeansIterationsOfBestRestart) {
  const Matrix w = BlockAffinity({10, 15, 12});
  SpectralOptions options;
  auto result = SpectralCluster(w, 3, options);
  ASSERT_TRUE(result.ok());
  // Lloyd always runs at least one iteration, and a converged run on clean
  // blocks stops well before the budget.
  EXPECT_GT(result->kmeans_iterations, 0);
  EXPECT_LT(result->kmeans_iterations, options.kmeans.max_iterations);
}

}  // namespace
}  // namespace fedsc
