// Round-trip property tests for the uplink codec layer (fed/codec.h) and
// byte-level golden-fixture pins for the wire format (fed/wire.h).
//
// The golden blobs under tests/testdata/ freeze wire version 1: if any of
// the GoldenFixture tests fail after a format change, the change must bump
// kWireVersion (and keep decoding version 1) rather than silently rewriting
// the fixtures. Regenerate on purpose with:
//   FEDSC_UPDATE_GOLDEN=1 ./codec_test

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fed/codec.h"
#include "fed/faults.h"
#include "fed/network.h"
#include "fed/wire.h"
#include "linalg/blas.h"
#include "linalg/matrix.h"

namespace fedsc {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed,
                    double scale = 1.0) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = scale * (2.0 * rng.Uniform() - 1.0);
  }
  return m;
}

// rows x cols matrix whose columns span a `rank`-dimensional subspace.
Matrix LowRankMatrix(int64_t rows, int64_t cols, int64_t rank,
                     uint64_t seed) {
  const Matrix u = RandomMatrix(rows, rank, seed);
  const Matrix c = RandomMatrix(rank, cols, seed ^ 0x9e3779b9ULL);
  Matrix x(rows, cols);
  Gemm(Trans::kNo, Trans::kNo, 1.0, u, c, 0.0, &x);
  return x;
}

std::vector<uint8_t> MustEncode(const Matrix& samples,
                                const CodecOptions& options) {
  auto wire = EncodeUpload(samples, options);
  EXPECT_TRUE(wire.ok()) << wire.status().ToString();
  return wire.ok() ? *wire : std::vector<uint8_t>{};
}

DecodedUpload MustDecode(const std::vector<uint8_t>& wire) {
  auto decoded = DecodeUpload(wire);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  return decoded.ok() ? std::move(*decoded) : DecodedUpload{};
}

TEST(Crc32Test, MatchesTheIeeeCheckValue) {
  // The canonical CRC-32/IEEE check: crc("123456789") == 0xCBF43926.
  const char* check = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(check), 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(CodecTest, RawF64RoundTripsBitForBit) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const Matrix samples = RandomMatrix(24, 7, seed, 10.0);
    const std::vector<uint8_t> wire = MustEncode(samples, CodecOptions{});
    EXPECT_EQ(static_cast<int64_t>(wire.size()),
              EncodedWireBytes(24, 7, CodecOptions{}));
    const DecodedUpload decoded = MustDecode(wire);
    EXPECT_EQ(decoded.mode, CodecMode::kRawSamples);
    EXPECT_EQ(decoded.version, kWireVersion);
    ASSERT_EQ(decoded.samples.rows(), 24);
    ASSERT_EQ(decoded.samples.cols(), 7);
    EXPECT_TRUE(AllClose(decoded.samples, samples, 0.0));  // bit-exact
  }
}

TEST(CodecTest, RawF32RoundTripsToFloatPrecision) {
  const Matrix samples = RandomMatrix(9, 5, 11, 3.0);
  CodecOptions options;
  options.raw_f32 = true;
  const std::vector<uint8_t> wire = MustEncode(samples, options);
  EXPECT_EQ(static_cast<int64_t>(wire.size()),
            EncodedWireBytes(9, 5, options));
  const DecodedUpload decoded = MustDecode(wire);
  ASSERT_EQ(decoded.samples.rows(), 9);
  ASSERT_EQ(decoded.samples.cols(), 5);
  for (int64_t i = 0; i < samples.size(); ++i) {
    // Exactly the f32 rounding of the input, no more loss.
    EXPECT_EQ(decoded.samples.data()[i],
              static_cast<double>(static_cast<float>(samples.data()[i])));
  }
}

TEST(CodecTest, RawRoundTripsDegenerateShapes) {
  // Zero samples, a single scalar, and one-dimensional ambient space.
  for (auto [rows, cols] : {std::pair<int64_t, int64_t>{4, 0},
                            {1, 1},
                            {1, 6},
                            {5, 1}}) {
    const Matrix samples = RandomMatrix(rows, cols, 17);
    const DecodedUpload decoded =
        MustDecode(MustEncode(samples, CodecOptions{}));
    ASSERT_EQ(decoded.samples.rows(), rows);
    ASSERT_EQ(decoded.samples.cols(), cols);
    EXPECT_TRUE(AllClose(decoded.samples, samples, 0.0));
  }
}

TEST(CodecTest, UniformQuantErrorIsAtMostHalfStep) {
  for (int bits : {2, 8, 32}) {
    CodecOptions options;
    options.mode = CodecMode::kUniformQuant;
    options.quant_bits = bits;
    options.quant_range = 1.5;
    // Values inside the clamp range: |error| <= step / 2.
    const Matrix samples = RandomMatrix(16, 9, 100 + bits, 1.5);
    const std::vector<uint8_t> wire = MustEncode(samples, options);
    EXPECT_EQ(static_cast<int64_t>(wire.size()),
              EncodedWireBytes(16, 9, options));
    const DecodedUpload decoded = MustDecode(wire);
    EXPECT_EQ(decoded.mode, CodecMode::kUniformQuant);
    const double levels =
        static_cast<double>((uint64_t{1} << bits) - 1);
    const double half_step = 1.5 / levels;  // (2 * range / levels) / 2
    for (int64_t i = 0; i < samples.size(); ++i) {
      EXPECT_LE(std::fabs(decoded.samples.data()[i] - samples.data()[i]),
                half_step * (1.0 + 1e-12))
          << "bits=" << bits << " i=" << i;
    }
  }
}

TEST(CodecTest, UniformQuantMatchesTheLegacyChannelGrid) {
  // The serialized quantizer must land on exactly the in-place grid the
  // Channel has always used, so flipping a quantized channel to the wire
  // path is result-preserving (values outside the range clamp to its edge).
  CodecOptions options;
  options.mode = CodecMode::kUniformQuant;
  options.quant_bits = 8;
  options.quant_range = 1.5;
  Matrix samples = RandomMatrix(10, 4, 23, 3.0);  // exercises clamping
  const DecodedUpload decoded = MustDecode(MustEncode(samples, options));
  const double range = 1.5;
  const double levels = 255.0;
  const double step = 2.0 * range / levels;
  for (int64_t i = 0; i < samples.size(); ++i) {
    const double clamped =
        std::min(range, std::max(-range, samples.data()[i]));
    const double expected =
        -range + step * std::round((clamped + range) / step);
    EXPECT_EQ(decoded.samples.data()[i], expected) << "i=" << i;
  }
}

// The vectorizable grid kernels must reproduce the scalar reference loops
// bit for bit — including grid ties (where a naive floor(u + 0.5) would
// round differently from llround), clamped values, and non-finite inputs —
// so swapping them in changed no wire byte anywhere.
TEST(CodecTest, QuantizerKernelsMatchTheScalarReferenceBitForBit) {
  for (int bits : {2, 8, 17, 32}) {
    const double range = 1.5;
    const double levels =
        static_cast<double>((uint64_t{1} << bits) - 1);
    const double step = 2.0 * range / levels;

    std::vector<double> values;
    const Matrix noise = RandomMatrix(16, 9, 500 + bits, 3.0);
    values.assign(noise.data(), noise.data() + noise.size());
    values.push_back(std::nan(""));
    values.push_back(std::numeric_limits<double>::infinity());
    values.push_back(-std::numeric_limits<double>::infinity());
    values.push_back(range);
    values.push_back(-range);
    values.push_back(0.0);
    for (uint64_t k : {uint64_t{0}, uint64_t{1}, uint64_t{7}}) {
      // As close to the k + 0.5 grid tie as doubles land.
      values.push_back((static_cast<double>(k) + 0.5) * step - range);
    }
    const int64_t count = static_cast<int64_t>(values.size());

    std::vector<uint64_t> fast(values.size());
    std::vector<uint64_t> reference(values.size());
    internal_codec::QuantizeIndices(values.data(), count, range, step,
                                    fast.data());
    internal_codec::QuantizeIndicesScalar(values.data(), count, range, step,
                                          reference.data());
    for (int64_t i = 0; i < count; ++i) {
      ASSERT_EQ(fast[i], reference[i]) << "bits=" << bits << " i=" << i
                                       << " value=" << values[i];
    }

    // Dequant over the real indices plus deliberately out-of-grid ones
    // (corruption the CRC missed must clamp identically on both paths).
    std::vector<uint64_t> indices = reference;
    indices.push_back(static_cast<uint64_t>(levels) + 1);
    indices.push_back(~uint64_t{0});
    std::vector<double> dfast(indices.size());
    std::vector<double> dreference(indices.size());
    const int64_t dcount = static_cast<int64_t>(indices.size());
    internal_codec::DequantizeValues(indices.data(), dcount, range, step,
                                     static_cast<uint64_t>(levels),
                                     dfast.data());
    internal_codec::DequantizeValuesScalar(indices.data(), dcount, range,
                                           step,
                                           static_cast<uint64_t>(levels),
                                           dreference.data());
    for (int64_t i = 0; i < dcount; ++i) {
      ASSERT_EQ(dfast[i], dreference[i]) << "bits=" << bits << " i=" << i;
    }
  }
}

TEST(CodecTest, UniformQuantDegenerateShapesAndWidths) {
  for (int bits : {2, 8, 32}) {
    CodecOptions options;
    options.mode = CodecMode::kUniformQuant;
    options.quant_bits = bits;
    for (auto [rows, cols] : {std::pair<int64_t, int64_t>{3, 0},
                              {1, 1},
                              {1, 7},
                              {13, 1}}) {
      const Matrix samples = RandomMatrix(rows, cols, 7, 1.5);
      const std::vector<uint8_t> wire = MustEncode(samples, options);
      EXPECT_EQ(static_cast<int64_t>(wire.size()),
                EncodedWireBytes(rows, cols, options));
      const DecodedUpload decoded = MustDecode(wire);
      ASSERT_EQ(decoded.samples.rows(), rows);
      ASSERT_EQ(decoded.samples.cols(), cols);
    }
  }
}

TEST(CodecTest, BasisCoeffsReconstructsLowRankDataExactly) {
  // 64-dim ambient, 24 columns spanning a rank-4 subspace: the split ships
  // 4 * (64 + 24) = 352 values instead of 64 * 24 = 1536.
  const Matrix samples = LowRankMatrix(64, 24, 4, 31);
  CodecOptions options;
  options.mode = CodecMode::kBasisCoeffs;
  const std::vector<uint8_t> wire = MustEncode(samples, options);
  const int64_t raw_bytes = EncodedWireBytes(64, 24, CodecOptions{});
  EXPECT_LT(static_cast<int64_t>(wire.size()), raw_bytes / 2);
  const DecodedUpload decoded = MustDecode(wire);
  EXPECT_EQ(decoded.mode, CodecMode::kBasisCoeffs);
  ASSERT_EQ(decoded.samples.rows(), 64);
  ASSERT_EQ(decoded.samples.cols(), 24);
  EXPECT_TRUE(AllClose(decoded.samples, samples, 1e-9));
}

TEST(CodecTest, BasisCoeffsFallsBackToRawWhenCompressionDoesNotPay) {
  CodecOptions options;
  options.mode = CodecMode::kBasisCoeffs;
  // Full-rank square-ish data: k * (D + S) >= D * S, so basis mode must
  // quietly ship raw sections instead of inflating the message.
  const Matrix full_rank = RandomMatrix(6, 5, 41);
  const std::vector<uint8_t> wire = MustEncode(full_rank, options);
  EXPECT_EQ(static_cast<int64_t>(wire.size()),
            EncodedWireBytes(6, 5, CodecOptions{}));
  const DecodedUpload decoded = MustDecode(wire);
  EXPECT_EQ(decoded.mode, CodecMode::kRawSamples);
  EXPECT_TRUE(AllClose(decoded.samples, full_rank, 0.0));  // raw => exact

  // Degenerate shapes never crash the basis path either.
  for (auto [rows, cols] : {std::pair<int64_t, int64_t>{4, 0},
                            {1, 1},
                            {1, 5}}) {
    const Matrix m = RandomMatrix(rows, cols, 43);
    const DecodedUpload d = MustDecode(MustEncode(m, options));
    ASSERT_EQ(d.samples.rows(), rows);
    ASSERT_EQ(d.samples.cols(), cols);
    EXPECT_TRUE(AllClose(d.samples, m, 1e-9));
  }
}

TEST(CodecTest, ValidatesOptions) {
  CodecOptions bad_bits;
  bad_bits.mode = CodecMode::kUniformQuant;
  bad_bits.quant_bits = 1;
  EXPECT_FALSE(ValidateCodecOptions(bad_bits).ok());
  bad_bits.quant_bits = 33;
  EXPECT_FALSE(ValidateCodecOptions(bad_bits).ok());
  CodecOptions bad_range;
  bad_range.mode = CodecMode::kUniformQuant;
  bad_range.quant_range = 0.0;
  EXPECT_FALSE(ValidateCodecOptions(bad_range).ok());
  CodecOptions bad_limits;
  bad_limits.limits.max_elements = 0;
  EXPECT_FALSE(ValidateCodecOptions(bad_limits).ok());
  EXPECT_TRUE(ValidateCodecOptions(CodecOptions{}).ok());
}

TEST(ChannelTest, WireFaultedUplinkIsRejectedAsWireCorrupt) {
  FaultPlanOptions fault_options;
  fault_options.wire_corrupt_rate = 1.0;
  auto plan = FaultPlan::Create(5, fault_options);
  ASSERT_TRUE(plan.ok());
  Channel channel(ChannelOptions{});
  RetryOptions retry;
  retry.max_attempts = 3;
  const Matrix payload = RandomMatrix(8, 3, 53);
  for (int64_t z = 0; z < 5; ++z) {
    SimClock clock;
    const UplinkOutcome outcome =
        channel.UplinkWithRetry(z, payload, *plan, retry, &clock);
    EXPECT_FALSE(outcome.delivered) << "device " << z;
    EXPECT_EQ(outcome.status.code(), StatusCode::kWireCorrupt)
        << "device " << z << ": " << outcome.status.ToString();
    // Corruption is detected on arrival, not retried into oblivion.
    EXPECT_EQ(outcome.attempts, 1);
  }
  // Every corrupted message still consumed uplink bandwidth.
  EXPECT_GT(channel.stats().uplink_wire_bytes, 0);
}

TEST(FaultPlanTest, WireFaultsAreDeterministicAndDetectable) {
  FaultPlanOptions fault_options;
  fault_options.wire_corrupt_rate = 1.0;
  auto plan = FaultPlan::Create(10, fault_options);
  ASSERT_TRUE(plan.ok());
  auto replay = FaultPlan::Create(10, fault_options);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(plan->Fingerprint(), replay->Fingerprint());

  const Matrix samples = RandomMatrix(12, 6, 61);
  const std::vector<uint8_t> clean = MustEncode(samples, CodecOptions{});
  bool saw_fault = false;
  for (int64_t z = 0; z < 10; ++z) {
    std::vector<uint8_t> damaged = clean;
    const bool mutated = plan->ApplyWireFault(z, &damaged);
    EXPECT_TRUE(mutated) << "device " << z;
    saw_fault = saw_fault || mutated;
    std::vector<uint8_t> damaged_again = clean;
    plan->ApplyWireFault(z, &damaged_again);
    EXPECT_EQ(damaged, damaged_again) << "device " << z;
    auto decoded = DecodeUpload(damaged);
    ASSERT_FALSE(decoded.ok()) << "device " << z;
    EXPECT_EQ(decoded.status().code(), StatusCode::kWireCorrupt)
        << "device " << z;
  }
  EXPECT_TRUE(saw_fault);
}

TEST(FaultPlanTest, ZeroWireRatePreservesLegacySchedules) {
  // With wire_corrupt_rate at its default the pre-existing draws (dropout,
  // straggler, transient, payload, seeds) must be bit-identical to what the
  // plan produced before wire faults existed: the new draws are appended
  // after them in each device's stream.
  FaultPlanOptions fault_options;
  fault_options.dropout_rate = 0.2;
  fault_options.straggler_rate = 0.3;
  fault_options.transient_rate = 0.25;
  fault_options.corrupt_rate = 0.2;
  fault_options.seed = 77;
  auto plan = FaultPlan::Create(64, fault_options);
  ASSERT_TRUE(plan.ok());
  for (int64_t z = 0; z < 64; ++z) {
    // Recompute the legacy draw sequence by hand.
    Rng rng(MixSeeds(77, static_cast<uint64_t>(z)));
    const DeviceFaultSchedule d = plan->ScheduleFor(z);
    EXPECT_EQ(d.dropped, rng.Uniform() < fault_options.dropout_rate);
    EXPECT_EQ(d.straggler, rng.Uniform() < fault_options.straggler_rate);
    int transient = 0;
    if (rng.Uniform() < fault_options.transient_rate) {
      transient = 1 + static_cast<int>(rng.UniformInt(2));
    }
    EXPECT_EQ(d.transient_failures, transient);
    rng.Uniform();  // u_corrupt
    rng.Uniform();  // u_byzantine
    EXPECT_EQ(d.payload_seed, rng.Next());
    EXPECT_EQ(d.delay_seed, rng.Next());
    EXPECT_EQ(d.wire, WireFault::kNone);
  }
}

// ---------------------------------------------------------------------------
// Golden wire fixtures: byte-level format stability.

struct GoldenCase {
  const char* file;
  CodecOptions options;
  Matrix samples;
};

std::vector<GoldenCase> GoldenCases() {
  std::vector<GoldenCase> cases;
  {
    GoldenCase raw;
    raw.file = "raw_f64_4x3.wire";
    raw.samples = RandomMatrix(4, 3, 1001, 2.0);
    cases.push_back(std::move(raw));
  }
  {
    GoldenCase f32;
    f32.file = "raw_f32_4x3.wire";
    f32.options.raw_f32 = true;
    f32.samples = RandomMatrix(4, 3, 1002, 2.0);
    cases.push_back(std::move(f32));
  }
  {
    GoldenCase quant;
    quant.file = "quant_5bit_6x4.wire";
    quant.options.mode = CodecMode::kUniformQuant;
    quant.options.quant_bits = 5;  // exercises cross-byte bit packing
    quant.options.quant_range = 1.5;
    quant.samples = RandomMatrix(6, 4, 1003, 1.5);
    cases.push_back(std::move(quant));
  }
  {
    GoldenCase basis;
    basis.file = "basis_16x8_rank2.wire";
    basis.options.mode = CodecMode::kBasisCoeffs;
    basis.samples = LowRankMatrix(16, 8, 2, 1004);
    cases.push_back(std::move(basis));
  }
  return cases;
}

std::string GoldenPath(const char* file) {
  return std::string(FEDSC_TESTDATA_DIR) + "/" + file;
}

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  uint8_t buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out->insert(out->end(), buffer, buffer + n);
  }
  std::fclose(f);
  return true;
}

TEST(GoldenFixtureTest, EncodingsMatchTheCommittedBytes) {
  const bool update = std::getenv("FEDSC_UPDATE_GOLDEN") != nullptr;
  for (const GoldenCase& c : GoldenCases()) {
    const std::vector<uint8_t> wire = MustEncode(c.samples, c.options);
    const std::string path = GoldenPath(c.file);
    if (update) {
      std::FILE* f = std::fopen(path.c_str(), "wb");
      ASSERT_NE(f, nullptr) << "cannot write " << path;
      ASSERT_EQ(std::fwrite(wire.data(), 1, wire.size(), f), wire.size());
      std::fclose(f);
      continue;
    }
    std::vector<uint8_t> committed;
    ASSERT_TRUE(ReadFileBytes(path, &committed))
        << "missing golden fixture " << path
        << " (generate with FEDSC_UPDATE_GOLDEN=1)";
    if (c.options.mode == CodecMode::kBasisCoeffs) {
      // The basis payload is SVD output, whose last ulp varies with the
      // compiler flag set (plain vs sanitizer builds), so byte-pinning it
      // would pin the toolchain, not the format. Pin the container layout
      // instead: total size, the full 36-byte header (its CRC covers only
      // the deterministic metadata), and each section header minus its
      // payload CRC.
      ASSERT_EQ(wire.size(), committed.size()) << c.file;
      ASSERT_GE(wire.size(), kWireHeaderBytes + 2 * kWireSectionHeaderBytes);
      EXPECT_TRUE(std::equal(wire.begin(), wire.begin() + kWireHeaderBytes,
                             committed.begin()))
          << c.file << ": message header changed";
      size_t offset = kWireHeaderBytes;
      for (int section = 0; section < 2; ++section) {
        ASSERT_LE(offset + kWireSectionHeaderBytes, wire.size()) << c.file;
        EXPECT_TRUE(std::equal(wire.begin() + offset,
                               wire.begin() + offset + 20,
                               committed.begin() + offset))
            << c.file << ": section " << section << " header changed";
        uint64_t payload_bytes = 0;
        std::memcpy(&payload_bytes, wire.data() + offset + 12,
                    sizeof(payload_bytes));
        offset += kWireSectionHeaderBytes + payload_bytes;
      }
      EXPECT_EQ(offset, wire.size()) << c.file;
      continue;
    }
    // Byte-for-byte: any mismatch means the wire layout changed without a
    // version bump.
    EXPECT_EQ(wire, committed) << c.file;
  }
}

TEST(GoldenFixtureTest, CommittedBytesDecodeToTheOriginalSamples) {
  if (std::getenv("FEDSC_UPDATE_GOLDEN") != nullptr) {
    GTEST_SKIP() << "regenerating fixtures";
  }
  for (const GoldenCase& c : GoldenCases()) {
    std::vector<uint8_t> committed;
    ASSERT_TRUE(ReadFileBytes(GoldenPath(c.file), &committed)) << c.file;
    auto decoded = DecodeUpload(committed);
    ASSERT_TRUE(decoded.ok()) << c.file << ": "
                              << decoded.status().ToString();
    EXPECT_EQ(decoded->version, kWireVersion) << c.file;
    ASSERT_EQ(decoded->samples.rows(), c.samples.rows()) << c.file;
    ASSERT_EQ(decoded->samples.cols(), c.samples.cols()) << c.file;
    if (c.options.mode == CodecMode::kRawSamples && !c.options.raw_f32) {
      EXPECT_TRUE(AllClose(decoded->samples, c.samples, 0.0)) << c.file;
    } else if (c.options.mode == CodecMode::kBasisCoeffs) {
      EXPECT_TRUE(AllClose(decoded->samples, c.samples, 1e-9)) << c.file;
    } else {
      // f32 rounding / 5-bit quantization (half-step = 1.5 / 31 ~ 0.0484).
      EXPECT_TRUE(AllClose(decoded->samples, c.samples, 0.05)) << c.file;
    }
  }
}

}  // namespace
}  // namespace fedsc
