#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace fedsc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "invalid argument: bad k");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::NotConverged("x");
  Status copy = s;
  EXPECT_EQ(copy, s);
  Status assigned;
  assigned = s;
  EXPECT_EQ(assigned.code(), StatusCode::kNotConverged);
}

TEST(StatusTest, EveryCodeHasName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
        StatusCode::kNotConverged, StatusCode::kInternal,
        StatusCode::kDeadlineExceeded, StatusCode::kNotFound}) {
    EXPECT_STRNE(StatusCodeName(code), "unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacro) {
  auto fails = []() -> Status {
    FEDSC_RETURN_NOT_OK(Status::OutOfRange("boom"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kOutOfRange);
  auto passes = []() -> Status {
    FEDSC_RETURN_NOT_OK(Status::OK());
    return Status::InvalidArgument("reached");
  };
  EXPECT_EQ(passes().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(std::move(r).ValueOr(42), 42);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("inner");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    FEDSC_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 6);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kInternal);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversAndBounds) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(7);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, UnitSphereHasUnitNormAndIsotropy) {
  Rng rng(13);
  const int64_t dim = 8;
  std::vector<double> mean(dim, 0.0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const std::vector<double> v = rng.UnitSphere(dim);
    double norm2 = 0.0;
    for (double x : v) norm2 += x * x;
    ASSERT_NEAR(norm2, 1.0, 1e-12);
    for (int64_t j = 0; j < dim; ++j) mean[static_cast<size_t>(j)] += v[j];
  }
  for (double m : mean) EXPECT_NEAR(m / n, 0.0, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(20, 8);
    ASSERT_EQ(sample.size(), 8u);
    std::set<int64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (int64_t v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 0).size(), 0u);
  const auto all = rng.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(std::set<int64_t>(all.begin(), all.end()).size(), 5u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> values(50);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ForkStreamsAreIndependent) {
  Rng parent(23);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.Next() == child.Next();
  EXPECT_LT(same, 2);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(sink, 0.0);  // keep the loop observable
  EXPECT_GT(watch.ElapsedSeconds(), 0.0);
  const double before = watch.ElapsedSeconds();
  watch.Restart();
  EXPECT_LE(watch.ElapsedSeconds(), before + 1.0);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  // The pool is reusable after Wait().
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 101);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(50);
    for (auto& h : hits) h.store(0);
    ParallelFor(0, 50, threads, [&hits](int64_t i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, EmptyAndSingletonRanges) {
  int calls = 0;
  ParallelFor(3, 3, 4, [&calls](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(7, 8, 4, [&calls](int64_t i) {
    ++calls;
    EXPECT_EQ(i, 7);
  });
  EXPECT_EQ(calls, 1);
}

TEST(LoggingTest, LevelFiltering) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Suppressed and emitted messages must both be safe to construct.
  FEDSC_LOG(Debug) << "suppressed " << 42;
  FEDSC_LOG(Error) << "emitted " << 43;
  SetLogLevel(original);
}

}  // namespace
}  // namespace fedsc
